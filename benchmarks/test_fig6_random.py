"""Figure 6 — random benchmark: fully connected random traffic."""

import pytest

from repro.bench.workloads import random_throughput
from repro.machine.balance import BALANCE_21000


@pytest.mark.figure("fig6")
def test_fig6_point_10p_1024B(benchmark):
    m = benchmark.pedantic(
        random_throughput, args=(10, 1024), kwargs=dict(messages=24),
        rounds=3, iterations=1,
    )
    assert m.throughput > 80_000


@pytest.mark.figure("fig6")
def test_fig6_throughput_grows_with_processes():
    """"message throughput increases as additional processes are added
    ... MPF can support concurrent operation on multiple LNVC's"."""
    for length in (64, 256):
        t2 = random_throughput(2, length, messages=24).throughput
        t10 = random_throughput(10, length, messages=24).throughput
        assert t10 > 2.5 * t2


@pytest.mark.figure("fig6")
def test_fig6_decreasing_slope():
    """"We expect increasing overhead with more processes ... evident in
    the decreasing slope of the throughput curves"."""
    t2 = random_throughput(2, 256, messages=24).throughput
    t10 = random_throughput(10, 256, messages=24).throughput
    t20 = random_throughput(20, 256, messages=24).throughput
    slope_early = (t10 - t2) / 8
    slope_late = (t20 - t10) / 10
    assert slope_late < slope_early


@pytest.mark.figure("fig6")
def test_fig6_paging_bends_1024B_down():
    """"For 1024-byte messages, paging overhead increases rapidly for
    more than 10 processes; this is the reason for the decrease in
    observed throughput"."""
    m10 = random_throughput(10, 1024, messages=24)
    m20 = random_throughput(20, 1024, messages=24)
    assert m20.run.report.page_faults > 5 * max(1.0, m10.run.report.page_faults)
    # Without paging the same sweep keeps growing.
    n10 = random_throughput(10, 1024, messages=24,
                            machine=BALANCE_21000.without_paging())
    n20 = random_throughput(20, 1024, messages=24,
                            machine=BALANCE_21000.without_paging())
    assert n20.throughput > n10.throughput
    # With paging, 20 processes lose a visible share vs the no-VM world.
    assert m20.throughput < 0.8 * n20.throughput


@pytest.mark.figure("fig6")
def test_fig6_small_messages_no_paging_at_10():
    """256-byte messages only begin to fault near 20 processes."""
    m10 = random_throughput(10, 256, messages=24)
    assert m10.run.report.page_faults == 0
