"""Figure 3 — base benchmark: loop-back throughput vs message length."""

import pytest

from repro.bench.workloads import base_throughput


@pytest.mark.figure("fig3")
def test_fig3_point_1024B(benchmark):
    """Benchmark the simulator on the paper's headline base point."""
    m = benchmark(base_throughput, 1024, 32)
    # The paper's curve passes ~18-23 KB/s at 1 KiB messages.
    assert 15_000 < m.throughput < 30_000


@pytest.mark.figure("fig3")
def test_fig3_shape():
    """Throughput rises with message length toward an asymptote."""
    ys = [base_throughput(L, messages=32).throughput
          for L in (16, 128, 512, 2048)]
    assert ys == sorted(ys), "throughput must rise with message length"
    # Diminishing returns: the last doubling gains far less than the first.
    assert (ys[1] - ys[0]) > (ys[3] - ys[2])
    # Asymptote in the paper's band.
    assert 20_000 < ys[-1] < 30_000


@pytest.mark.figure("fig3")
def test_fig3_copy_bound_at_large_messages():
    """Paper: "message copying costs dominate; memory bandwidth is the
    performance limiting factor" — fixed costs stop mattering."""
    m1 = base_throughput(1024, messages=32)
    m2 = base_throughput(2048, messages=32)
    # Less than 15% gain from doubling an already-large message.
    assert m2.throughput < 1.15 * m1.throughput
