"""Ablation benchmarks for the design choices DESIGN.md calls out."""

import pytest

from repro.bench.figures import (
    ablation_block,
    ablation_o2o,
    ablation_paging,
    ablation_sync,
)


def _series(result, label):
    for s in result.series:
        if s.label.startswith(label):
            return s
    raise AssertionError(f"no series {label!r} in {result.figure}")


@pytest.mark.figure("ablation_sync")
def test_ablation_sync(benchmark):
    result = benchmark.pedantic(ablation_sync, args=(True,), rounds=1, iterations=1)
    lnvc = _series(result, "LNVC")
    sync = _series(result, "sync")
    # Direct transfer wins at every length, and the gap widens: the
    # per-block costs the paper's §5 predicts synchronous passing removes.
    ratios = [a / b for a, b in zip(lnvc.ys(), sync.ys())]
    assert all(r > 2 for r in ratios)
    assert ratios[-1] > ratios[0]


@pytest.mark.figure("ablation_o2o")
def test_ablation_o2o(benchmark):
    result = benchmark.pedantic(ablation_o2o, args=(True,), rounds=1, iterations=1)
    lnvc = _series(result, "LNVC")
    ring = _series(result, "O2O")
    assert all(a > 5 * b for a, b in zip(lnvc.ys(), ring.ys()))


@pytest.mark.figure("ablation_block")
def test_ablation_block(benchmark):
    result = benchmark.pedantic(ablation_block, args=(True,), rounds=1, iterations=1)
    ys = result.series[0].ys()
    assert ys == sorted(ys), "bigger blocks must raise bulk throughput"
    assert ys[-1] > 2 * ys[0]


@pytest.mark.figure("ablation_paging")
def test_ablation_paging(benchmark):
    result = benchmark.pedantic(ablation_paging, args=(True,), rounds=1, iterations=1)
    on = _series(result, "paging on")
    off = _series(result, "paging off")
    # Identical at low process counts, divergent at 20.
    assert on.ys()[0] == pytest.approx(off.ys()[0])
    assert on.ys()[-1] < 0.8 * off.ys()[-1]
