"""Figure 4 — fcfs benchmark: 1 sender, N FCFS receivers."""

import pytest

from repro.bench.workloads import fcfs_throughput


@pytest.mark.figure("fig4")
def test_fig4_point_16rx_1024B(benchmark):
    m = benchmark.pedantic(
        fcfs_throughput, args=(16, 1024), kwargs=dict(messages=48),
        rounds=3, iterations=1,
    )
    # Sender-bound plateau: the paper sits around 40-50 KB/s.
    assert 25_000 < m.throughput < 60_000


@pytest.mark.figure("fig4")
def test_fig4_large_messages_roughly_flat():
    """1024B throughput is sender-limited: adding receivers changes
    little ("contention is masked by message copying costs")."""
    t1 = fcfs_throughput(1, 1024, messages=48).throughput
    t16 = fcfs_throughput(16, 1024, messages=48).throughput
    assert t16 > 0.6 * t1


@pytest.mark.figure("fig4")
def test_fig4_small_messages_decline_with_receivers():
    """Paper: "decreasing throughputs for 16-byte and 128-byte messages
    are caused by increased LNVC contention"."""
    for length in (16, 128):
        t1 = fcfs_throughput(1, length, messages=48).throughput
        t16 = fcfs_throughput(16, length, messages=48).throughput
        assert t16 < t1, f"{length}B should decline with 16 receivers"


@pytest.mark.figure("fig4")
def test_fig4_larger_messages_higher_throughput():
    """"The benefit of larger messages is evident"."""
    n = 8
    ts = [fcfs_throughput(n, L, messages=48).throughput for L in (16, 128, 1024)]
    assert ts == sorted(ts)
