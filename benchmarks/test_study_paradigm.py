"""Study P — message passing vs shared memory (the §5 research issue)."""

import pytest

from repro.apps.paradigm import paradigm_penalty
from repro.bench.figures import study_paradigm


@pytest.mark.figure("study_paradigm")
def test_study_point_jacobi_4p(benchmark):
    mp_t, shm_t, penalty = benchmark.pedantic(
        paradigm_penalty, args=("jacobi", 128, 4), rounds=1, iterations=1
    )
    assert mp_t > shm_t > 0
    assert penalty > 1.0


@pytest.mark.figure("study_paradigm")
def test_study_penalty_always_above_one():
    """On a shared-memory machine the native paradigm never loses on
    these fine-grained kernels — the paper's premise."""
    result = study_paradigm(True)
    for series in result.series:
        assert all(p.y > 1.0 for p in series.points), series.label


@pytest.mark.figure("study_paradigm")
def test_study_sum_penalty_grows_with_processes():
    """The allreduce costs more circuits and messages as P grows, while
    the shared accumulator adds only barrier arrivals."""
    _, _, p2 = paradigm_penalty("sum", 128, 2)
    _, _, p8 = paradigm_penalty("sum", 128, 8)
    assert p8 > p2
