"""Figure 7 — Gauss-Jordan with partial pivoting: speedup vs processes."""

import pytest

from repro.apps.gauss_jordan import gj_speedup


@pytest.mark.figure("fig7")
def test_fig7_point_96x96_8p(benchmark):
    s = benchmark.pedantic(gj_speedup, args=(96, 8), rounds=1, iterations=1)
    # "real speedups can be obtained in the MPF environment."
    assert s > 2.5


@pytest.mark.figure("fig7")
def test_fig7_larger_matrices_speed_up_better():
    """"Speedup is greater with larger matrices"."""
    sizes = (32, 48, 96)
    speedups = [gj_speedup(n, 8) for n in sizes]
    assert speedups == sorted(speedups)


@pytest.mark.figure("fig7")
def test_fig7_small_matrix_declines_with_excess_parallelism():
    """"In the extreme, excessive parallelization yields insufficient
    computation per iteration, and speedup declines"."""
    assert gj_speedup(32, 16) < gj_speedup(32, 4)


@pytest.mark.figure("fig7")
def test_fig7_large_matrix_uses_more_processors():
    """"Larger matrices permit effective use of more processors"."""
    gain_small = gj_speedup(32, 8) / gj_speedup(32, 2)
    gain_large = gj_speedup(96, 8) / gj_speedup(96, 2)
    assert gain_large > gain_small
