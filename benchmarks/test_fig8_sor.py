"""Figure 8 — SOR Poisson solver: per-iteration speedup vs dimension."""

import pytest

from repro.apps.sor import sor_per_iteration_speedup


@pytest.mark.figure("fig8")
def test_fig8_point_65x65_N4(benchmark):
    s = benchmark.pedantic(
        sor_per_iteration_speedup, args=(65, 4),
        kwargs=dict(iterations=4), rounds=1, iterations=1,
    )
    # Largest grid gains clearly over the 4-process baseline.
    assert s > 1.5


@pytest.mark.figure("fig8")
def test_fig8_baseline_is_unity():
    assert sor_per_iteration_speedup(33, 2, iterations=4) == pytest.approx(1.0)


@pytest.mark.figure("fig8")
def test_fig8_larger_grids_gain_more():
    """Area/perimeter: computation grows with subgrid area, halo
    communication with its perimeter, so large grids keep winning."""
    s33 = sor_per_iteration_speedup(33, 4, iterations=4)
    s65 = sor_per_iteration_speedup(65, 4, iterations=4)
    assert s65 > s33


@pytest.mark.figure("fig8")
def test_fig8_smallest_grid_loses():
    """The 9x9 problem has so little compute per subgrid that more
    processors hurt — the paper's bottom curve."""
    assert sor_per_iteration_speedup(9, 4, iterations=4) < 1.0


@pytest.mark.figure("fig8")
def test_fig8_monotone_in_N_for_65():
    s = [sor_per_iteration_speedup(65, n, iterations=4) for n in (2, 3, 4)]
    assert s == sorted(s)
