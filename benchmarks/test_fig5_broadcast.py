"""Figure 5 — broadcast benchmark: 1 sender, N BROADCAST receivers."""

import pytest

from repro.bench.workloads import broadcast_throughput, fcfs_throughput


@pytest.mark.figure("fig5")
def test_fig5_point_16rx_1024B(benchmark):
    m = benchmark.pedantic(
        broadcast_throughput, args=(16, 1024), kwargs=dict(messages=48),
        rounds=3, iterations=1,
    )
    # The paper's headline number: 687,245 B/s; shape band +/- 35%.
    assert 450_000 < m.throughput < 900_000


@pytest.mark.figure("fig5")
def test_fig5_scales_with_receivers():
    """Effective throughput grows near-linearly: receivers copy
    concurrently."""
    t1 = broadcast_throughput(1, 1024, messages=48).throughput
    t8 = broadcast_throughput(8, 1024, messages=48).throughput
    t16 = broadcast_throughput(16, 1024, messages=48).throughput
    assert t8 > 5 * t1
    assert t16 > 1.5 * t8


@pytest.mark.figure("fig5")
def test_fig5_broadcast_beats_fcfs_fanout():
    """At equal configuration the broadcast LNVC delivers many times
    the fcfs LNVC's bytes (every receiver gets a copy)."""
    n, length = 8, 1024
    bc = broadcast_throughput(n, length, messages=48).throughput
    fc = fcfs_throughput(n, length, messages=48).throughput
    assert bc > 4 * fc


@pytest.mark.figure("fig5")
def test_fig5_sublinear_for_small_messages():
    """Paper: "message throughput is sub-linear with the number of
    processes when the message length is small; contention is again the
    reason"."""
    t1 = broadcast_throughput(1, 16, messages=48).throughput
    t16 = broadcast_throughput(16, 16, messages=48).throughput
    assert t16 < 14 * t1
