"""Benchmark-suite configuration.

Each file regenerates one paper figure: it benchmarks (wall-clock) the
simulation of a representative point and asserts the *shape* of the
simulated series against the paper's qualitative claims.  Full sweeps:
``python -m repro.bench all``.
"""

import pytest


def pytest_configure(config):
    config.addinivalue_line(
        "markers", "figure(name): marks a benchmark as regenerating a paper figure"
    )
