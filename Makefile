# Convenience targets for the MPF reproduction.

PY ?= python
# Point-runner processes for figure sweeps; output is byte-identical to
# a serial run (each point is an independent deterministic simulation).
JOBS ?= 4
# Section-fusion escape hatch: `make figures FUSION=off` forces the
# unfused effect-per-event engine paths.  Output is byte-identical
# either way (the fused engine's acceptance gate); the knob exists for
# debugging and A/B timing.
FUSION ?= on
# Epoch-batching escape hatch: `make figures EPOCH=off` forces the
# classic one-heap-pop-per-event loop.  Output is byte-identical either
# way (the batcher's acceptance gate); the knob exists for debugging
# and A/B timing of the quiescent-stretch retirer.
EPOCH ?= on

.PHONY: install test bench shapes figures figures-quick check trace-smoke \
	serve telemetry-smoke regress profile clean

install:
	pip install -e '.[dev]' || pip install -e '.[dev]' --no-build-isolation

test:
	$(PY) -m pytest tests/ -q

bench:
	$(PY) -m pytest benchmarks/ --benchmark-only -q

shapes:
	$(PY) -m pytest benchmarks/ --benchmark-disable -q

# Model-check the primitives: every scenario over seeded schedules (must
# stay clean), plus one injected bug per fault family (the checker must
# catch it, or the target fails).  See docs/checking.md.
check:
	$(PY) -m repro.check explore --scenario fcfs-race --seeds 200
	$(PY) -m repro.check explore --scenario connect-churn --seeds 200
	$(PY) -m repro.check explore --scenario freelist-churn --seeds 200
	$(PY) -m repro.check explore --scenario mixed-protocol --seeds 200
	$(PY) -m repro.check explore --scenario shard-steal --seeds 200
	$(PY) -m repro.check explore --scenario ring-wrap --seeds 200
	$(PY) -m repro.check explore --scenario ring-wrap --seeds 200 --policy dfs
	$(PY) -m repro.check explore --scenario fcfs-race --seeds 200 --fault torn-send --expect-fail
	$(PY) -m repro.check explore --scenario mixed-protocol --seeds 50 --fault drop-wake --expect-fail
	$(PY) -m repro.check explore --scenario ring-wrap --seeds 50 --fault drop-wake --expect-fail
	$(PY) -m repro.check explore --scenario fcfs-race --runtime threads --repeats 10

# Causal-tracing smoke: run the fig4 contention sweep with per-message
# tracing, then validate the Prometheus exposition and the DOT flow
# graph it exported (per-runtime suffixed files).  See docs/tracing.md.
trace-smoke:
	$(PY) -m repro.bench trace fig4 --quick --causal \
		--prom /tmp/mpf_fig4.prom --flow /tmp/mpf_fig4.dot
	$(PY) -c "\
	from repro.obs import check_dot, parse_exposition; \
	[parse_exposition(open(f'/tmp/mpf_fig4-{k}.prom').read()) \
	 for k in ('sim', 'procs')]; \
	edges = [check_dot(open(f'/tmp/mpf_fig4-{k}.dot').read()) \
	         for k in ('sim', 'procs')]; \
	assert min(edges) > 0, edges; \
	print(f'trace smoke ok: flow edges {edges}')"

# Open-loop serving smoke: a CI-sized sweep on the simulator and on
# real threads, then validate the SLO JSON documents and the Prometheus
# exposition of the traced knee point.  See docs/serving.md.
serve:
	$(PY) -m repro.bench serve --quick \
		--json /tmp/mpf_serve_sim.json --prom /tmp/mpf_serve.prom
	$(PY) -m repro.bench serve --quick --runtime threads \
		--loads 60,200 --duration 1.5 --json /tmp/mpf_serve_threads.json
	$(PY) -c "\
	import json; \
	from repro.obs import parse_exposition; \
	from repro.serve import validate_slo; \
	docs = [json.load(open(f'/tmp/mpf_serve_{k}.json')) \
	        for k in ('sim', 'threads')]; \
	[validate_slo(d) for d in docs]; \
	parse_exposition(open('/tmp/mpf_serve.prom').read()); \
	print('serve smoke ok:', \
	      [f'{d[\"runtime\"]}: {d[\"total_mpf_messages\"]} msgs' \
	       for d in docs])"

# Windowed-telemetry smoke: a quick threads serve probe with the live
# scrape endpoint up, the archived mpf-serve-timeline/1 document
# re-validated strictly, and the mid-run scrape + health attribution
# tests (which poll /metrics while a real threads probe is in flight).
# See docs/telemetry.md.
telemetry-smoke:
	$(PY) -m repro.bench serve --quick --runtime threads \
		--loads 60,200 --duration 1.5 \
		--timeline /tmp/mpf_serve-timeline.json --live
	$(PY) -c "\
	import json; \
	from repro.serve.slo import validate_timeline; \
	doc = json.load(open('/tmp/mpf_serve-timeline.json')); \
	validate_timeline(doc); \
	print('telemetry smoke ok:', \
	      len(doc['timeline']['windows']), 'windows,', \
	      len(doc['findings']), 'finding(s),', \
	      'clock', doc['timeline']['clock'])"
	$(PY) -m pytest tests/obs/test_live.py tests/obs/test_health.py \
		tests/serve/test_timeline_doc.py -q

# Wall-clock trajectory gate over the committed BENCH_*.json archives:
# fails when the newest snapshot regressed figure-by-figure past the
# noise-aware threshold.  See docs/telemetry.md.
regress:
	$(PY) -m repro.bench regress

figures:
	MPF_FUSION=$(FUSION) MPF_EPOCH=$(EPOCH) $(PY) -m repro.bench all --jobs $(JOBS) \
		--json figures_full.json | tee figures_full.txt

figures-quick:
	MPF_FUSION=$(FUSION) MPF_EPOCH=$(EPOCH) $(PY) -m repro.bench all --quick --plot

# Re-measure against the committed archive (figures_full.json is reused
# as the reference, not regenerated).
compare:
	MPF_FUSION=$(FUSION) MPF_EPOCH=$(EPOCH) $(PY) -m repro.bench all --jobs $(JOBS) \
		--json /tmp/mpf_after.json >/dev/null && \
	$(PY) -m repro.bench.compare figures_full.json /tmp/mpf_after.json

# cProfile one figure plus the hottest-effect-label report.
# `make profile FIG=fig6 FUSION=off` profiles the unfused paths.
FIG ?= fig7
profile:
	MPF_FUSION=$(FUSION) MPF_EPOCH=$(EPOCH) $(PY) -m repro.bench profile $(FIG) --quick --top 10

clean:
	rm -rf build dist *.egg-info src/*.egg-info .pytest_cache \
	       $(shell find . -name __pycache__ -type d 2>/dev/null)
