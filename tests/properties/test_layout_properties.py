"""Property-based tests of segment layout and formatting."""

from hypothesis import given, settings, strategies as st

from repro.core.freelist import fl_count
from repro.core.layout import HDR, MPFConfig, SegmentLayout, check_region, format_region
from repro.core.region import SharedRegion
from repro.core.structs import LNVC, MSG, RECV, SEND


@st.composite
def configs(draw):
    return MPFConfig(
        max_lnvcs=draw(st.integers(1, 64)),
        max_processes=draw(st.integers(1, 64)),
        block_size=draw(st.integers(1, 128)),
        max_messages=draw(st.integers(1, 256)),
        message_pool_bytes=draw(st.integers(256, 1 << 16)),
        ext_slots=draw(st.integers(0, 8)),
        ext_bytes=draw(st.integers(0, 1024)),
    )


@given(configs())
@settings(max_examples=150, deadline=None)
def test_pools_never_overlap(cfg):
    lay = SegmentLayout(cfg)
    spans = [
        ("hdr", 0, HDR.size),
        ("lnvc", lay.lnvc_base, lay.lnvc_base + cfg.max_lnvcs * LNVC.size),
        ("send", lay.send_base, lay.send_base + cfg.n_send * SEND.size),
        ("recv", lay.recv_base, lay.recv_base + cfg.n_recv * RECV.size),
        ("msg", lay.msg_base, lay.msg_base + cfg.max_messages * MSG.size),
        ("blk", lay.blk_base, lay.blk_base + cfg.n_blocks * lay.blk_stride),
        ("ext", lay.ext_base, lay.ext_base + cfg.ext_bytes),
    ]
    for (n1, a0, a1), (n2, b0, b1) in zip(spans, spans[1:]):
        assert a1 <= b0, f"{n1} overlaps {n2}"
    assert spans[-1][2] <= lay.total_size


@given(configs())
@settings(max_examples=60, deadline=None)
def test_format_then_check_roundtrip(cfg):
    region = SharedRegion(bytearray(SegmentLayout(cfg).total_size))
    lay = format_region(region, cfg)
    assert check_region(region, cfg).total_size == lay.total_size
    # Every pool starts completely free.
    assert fl_count(region, HDR.u32["free_msg"]) == cfg.max_messages
    assert fl_count(region, HDR.u32["free_blk"]) == cfg.n_blocks
    assert fl_count(region, HDR.u32["free_send"]) == cfg.n_send
    assert fl_count(region, HDR.u32["free_recv"]) == cfg.n_recv


@given(configs())
@settings(max_examples=60, deadline=None)
def test_lock_channel_pairing_invariant(cfg):
    """Channel k must pair with lock FIRST_LNVC_LOCK + k for every slot,
    including extension slots — the invariant the runtimes rely on."""
    from repro.core.protocol import FIRST_LNVC_LOCK

    assert cfg.n_locks == FIRST_LNVC_LOCK + cfg.n_channels
