"""Property-based tests for the intrusive free lists."""

from hypothesis import given, settings, strategies as st

from repro.core.freelist import fl_alloc, fl_count, fl_free, init_freelist
from repro.core.protocol import NIL
from repro.core.region import SharedRegion

HEAD, BASE = 0, 16


@st.composite
def pool_and_ops(draw):
    count = draw(st.integers(1, 20))
    stride = draw(st.integers(4, 32).map(lambda v: (v // 4) * 4))
    ops = draw(st.lists(st.booleans(), max_size=60))  # True=alloc, False=free
    return count, stride, ops


@given(pool_and_ops())
@settings(max_examples=200, deadline=None)
def test_alloc_free_invariants(params):
    """Under any alloc/free sequence: no double-handout, every offset
    stays a valid record, and live + free == capacity."""
    count, stride, ops = params
    region = SharedRegion(bytearray(BASE + count * stride))
    init_freelist(region, HEAD, BASE, stride, count)
    live: set[int] = set()
    for is_alloc in ops:
        if is_alloc:
            off = fl_alloc(region, HEAD)
            if off == NIL:
                assert len(live) == count  # NIL only when exhausted
            else:
                assert off not in live, "double handout"
                assert (off - BASE) % stride == 0
                assert BASE <= off < BASE + count * stride
                live.add(off)
        elif live:
            off = live.pop()
            fl_free(region, HEAD, off)
        assert fl_count(region, HEAD, limit=count + 1) == count - len(live)


@given(st.integers(1, 50), st.integers(4, 64))
@settings(max_examples=100, deadline=None)
def test_drain_yields_each_record_once(count, stride):
    stride = (stride // 4) * 4
    region = SharedRegion(bytearray(BASE + count * stride))
    init_freelist(region, HEAD, BASE, stride, count)
    seen = set()
    while (off := fl_alloc(region, HEAD)) != NIL:
        assert off not in seen
        seen.add(off)
    assert len(seen) == count


@given(st.lists(st.integers(0, 19), min_size=1, max_size=20, unique=True))
@settings(max_examples=100, deadline=None)
def test_free_order_irrelevant_to_capacity(free_order):
    count, stride = 20, 8
    region = SharedRegion(bytearray(BASE + count * stride))
    init_freelist(region, HEAD, BASE, stride, count)
    offs = [fl_alloc(region, HEAD) for _ in range(count)]
    for i in free_order:
        fl_free(region, HEAD, offs[i])
    assert fl_count(region, HEAD) == len(free_order)
