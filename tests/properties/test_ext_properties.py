"""Property-based tests for the §5 extension facilities."""

from hypothesis import given, settings, strategies as st

from repro.core.layout import MPFConfig
from repro.ext.o2o import O2ORing
from repro.ext.sync_channel import SyncChannels
from repro.runtime.sim import SimRuntime

payload_lists = st.lists(st.binary(min_size=0, max_size=48), min_size=1,
                         max_size=20)


@given(payload_lists, st.integers(2, 8))
@settings(max_examples=60, deadline=None)
def test_o2o_ring_fifo_any_capacity(payloads, capacity):
    """The lock-free ring delivers every payload once, in order, for any
    capacity >= 2 and any message sequence that fits the slots."""
    cfg = MPFConfig(
        max_lnvcs=4, max_processes=2,
        ext_bytes=O2ORing.bytes_needed(capacity, 48),
    )

    def producer(env):
        ring = O2ORing(env.view, 0, capacity=capacity, slot_bytes=48)
        for p in payloads:
            yield from ring.send(p)

    def consumer(env):
        ring = O2ORing(env.view, 0, capacity=capacity, slot_bytes=48)
        got = []
        for _ in payloads:
            got.append((yield from ring.receive()))
        return got

    result = SimRuntime().run([producer, consumer], cfg=cfg)
    assert result.results["p1"] == payloads


@given(payload_lists)
@settings(max_examples=40, deadline=None)
def test_sync_channel_rendezvous_sequence(payloads):
    """Every rendezvous hands over exactly one payload, in order, and
    the sender never completes before its receiver's pickup."""
    cfg = MPFConfig(
        max_lnvcs=4, max_processes=2, ext_slots=1,
        ext_bytes=SyncChannels.bytes_needed(1, 64),
    )

    def sender(env):
        ch = SyncChannels(env.view, 1, 64)
        stamps = []
        for p in payloads:
            yield from ch.send(0, env.rank, p)
            stamps.append(env.now())
        return stamps

    def receiver(env):
        ch = SyncChannels(env.view, 1, 64)
        got, stamps = [], []
        for _ in payloads:
            _, data = yield from ch.receive(0, env.rank)
            got.append(data)
            stamps.append(env.now())
        return got, stamps

    result = SimRuntime().run([sender, receiver], cfg=cfg)
    got, recv_stamps = result.results["p1"]
    send_stamps = result.results["p0"]
    assert got == payloads
    # Rendezvous property: each send completes at-or-after the pickup
    # that satisfied it began (receiver stamped after copying).
    for s, r in zip(send_stamps, recv_stamps):
        assert s >= r - 1e-9
