"""Property: the simulator is exactly deterministic over random programs."""

from hypothesis import given, settings, strategies as st

from repro.core.protocol import BROADCAST, FCFS
from repro.runtime.sim import SimRuntime


@st.composite
def random_program(draw):
    """A random but deadlock-free fan-out program description."""
    n_receivers = draw(st.integers(1, 4))
    protocols = draw(
        st.lists(st.sampled_from([FCFS, BROADCAST]),
                 min_size=n_receivers, max_size=n_receivers)
    )
    n_fcfs = sum(1 for p in protocols if p is FCFS)
    # Each FCFS message goes to one receiver; every broadcast receiver
    # sees all messages.  Choose a count every receiver can satisfy.
    n_messages = draw(st.integers(max(1, n_fcfs), 10))
    if n_fcfs:
        n_messages -= n_messages % n_fcfs  # split evenly
        n_messages = max(n_messages, n_fcfs)
    lengths = draw(
        st.lists(st.integers(0, 200), min_size=n_messages, max_size=n_messages)
    )
    return protocols, lengths


def build(protocols, lengths):
    n_fcfs = sum(1 for p in protocols if p is FCFS)
    n_messages = len(lengths)

    def sender(env):
        cid = yield from env.open_send("c")
        ready = yield from env.open_receive("ready", FCFS)
        for _ in range(len(protocols)):
            yield from env.message_receive(ready)
        for i, length in enumerate(lengths):
            yield from env.message_send(cid, bytes([i % 256]) * length)
        return env.now()

    def make_receiver(proto, quota):
        def receiver(env):
            cid = yield from env.open_receive("c", proto)
            r = yield from env.open_send("ready")
            yield from env.message_send(r, b"up")
            sizes = []
            for _ in range(quota):
                sizes.append(len((yield from env.message_receive(cid))))
            return (env.now(), sizes)

        return receiver

    workers = [sender]
    for proto in protocols:
        quota = n_messages if proto is BROADCAST else n_messages // n_fcfs
        workers.append(make_receiver(proto, quota))
    return workers


@given(random_program())
@settings(max_examples=40, deadline=None)
def test_identical_runs_identical_results(program):
    protocols, lengths = program
    a = SimRuntime().run(build(protocols, lengths))
    b = SimRuntime().run(build(protocols, lengths))
    assert a.elapsed == b.elapsed
    assert a.results == b.results
    assert a.header == b.header
    assert a.report.events == b.report.events
    assert a.report.lock_wait_seconds == b.report.lock_wait_seconds


@given(random_program())
@settings(max_examples=25, deadline=None)
def test_broadcast_receivers_see_full_stream(program):
    protocols, lengths = program
    result = SimRuntime().run(build(protocols, lengths))
    for i, proto in enumerate(protocols):
        _, sizes = result.results[f"p{i + 1}"]
        if proto is BROADCAST:
            assert sizes == lengths  # full stream, in order
    # FCFS receivers partition the stream.
    fcfs_sizes = sorted(
        s
        for i, proto in enumerate(protocols)
        if proto is FCFS
        for s in result.results[f"p{i + 1}"][1]
    )
    if fcfs_sizes:
        assert fcfs_sizes == sorted(lengths)
