"""Metamorphic property: the simulator and the thread runtime agree.

Hypothesis generates small producer/consumer programs; both runtimes
execute them; final segment statistics and the multiset of delivered
payloads must match.  This cross-checks the byte-level protocol under
deterministic scheduling *and* real preemption with one oracle: itself.
"""

from hypothesis import given, settings, strategies as st

from repro.core.protocol import FCFS
from repro.runtime.sim import SimRuntime
from repro.runtime.threads import ThreadRuntime


@st.composite
def small_program(draw):
    n_consumers = draw(st.integers(1, 3))
    n_messages = draw(st.integers(n_consumers, 12))
    lengths = draw(
        st.lists(st.integers(0, 120), min_size=n_messages, max_size=n_messages)
    )
    return n_consumers, lengths


def build_workers(n_consumers, lengths):
    n_messages = len(lengths)
    base, rem = divmod(n_messages, n_consumers)
    quotas = [base + (1 if i < rem else 0) for i in range(n_consumers)]

    def producer(env):
        cid = yield from env.open_send("stream")
        ready = yield from env.open_receive("ready", FCFS)
        for _ in range(n_consumers):
            yield from env.message_receive(ready)
        for i, length in enumerate(lengths):
            yield from env.message_send(cid, bytes([i % 251]) * length)
        yield from env.close_send(cid)
        yield from env.close_receive(ready)
        return n_messages

    def consumer(env):
        cid = yield from env.open_receive("stream", FCFS)
        r = yield from env.open_send("ready")
        yield from env.message_send(r, b"up")
        got = []
        for _ in range(quotas[env.rank - 1]):
            got.append((yield from env.message_receive(cid)))
        yield from env.close_send(r)
        yield from env.close_receive(cid)
        return got

    return [producer] + [consumer] * n_consumers


@given(small_program())
@settings(max_examples=25, deadline=None)
def test_sim_and_threads_deliver_identically(program):
    n_consumers, lengths = program
    workers = build_workers(n_consumers, lengths)
    sim = SimRuntime().run(workers)
    thr = ThreadRuntime(join_timeout=60).run(workers)

    def delivered(result):
        out = []
        for name, value in result.results.items():
            if name != "p0":
                out.extend(value)
        return sorted(out)

    assert delivered(sim) == delivered(thr)
    for field in ("total_sends", "total_receives", "total_bytes_sent",
                  "total_bytes_received", "live_msgs", "live_lnvcs"):
        assert sim.header[field] == thr.header[field], field
    # Each consumer's substream is ordered by send index on both runtimes.
    for result in (sim, thr):
        for name, value in result.results.items():
            if name == "p0" or not value:
                continue
            idxs = [m[0] for m in value if m]
            assert idxs == sorted(idxs)
