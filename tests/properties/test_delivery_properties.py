"""Property-based tests of the LNVC delivery semantics.

These drive randomized single-threaded op sequences through the real
byte-level data structures and assert the paper's delivery contract:

* payload integrity for arbitrary byte strings and block sizes,
* per-circuit FIFO ordering (virtual circuits are sequence preserving),
* FCFS exactly-once across any receiver set,
* BROADCAST all-see-all-in-order,
* conservation: allocator counters return to zero when everything is
  consumed and closed.
"""

from hypothesis import given, settings, strategies as st

from repro.core import ops
from repro.core.inspect import check_invariants
from repro.core.layout import HDR
from repro.core.protocol import BROADCAST, FCFS
from repro.testing import BlockedError, DirectRunner, make_view

payloads = st.binary(min_size=0, max_size=300)


@given(payloads, st.integers(1, 64))
@settings(max_examples=150, deadline=None)
def test_payload_roundtrip_any_block_size(payload, block_size):
    v = make_view(block_size=block_size)
    r = DirectRunner(v)
    cid = r.run(ops.open_send(v, 0, "c"))
    r.run(ops.open_receive(v, 0, "c", FCFS))
    r.run(ops.message_send(v, 0, cid, payload))
    assert r.run(ops.message_receive(v, 0, cid)) == payload
    check_invariants(v)


@given(st.lists(payloads, min_size=1, max_size=20))
@settings(max_examples=100, deadline=None)
def test_fifo_order_any_message_sequence(messages):
    v = make_view(max_messages=64, message_pool_bytes=1 << 17)
    r = DirectRunner(v)
    cid = r.run(ops.open_send(v, 0, "c"))
    r.run(ops.open_receive(v, 0, "c", FCFS))
    for m in messages:
        r.run(ops.message_send(v, 0, cid, m))
    got = [r.run(ops.message_receive(v, 0, cid)) for _ in messages]
    assert got == messages


@given(
    st.integers(1, 4),               # FCFS receivers
    st.integers(0, 3),               # BROADCAST receivers
    st.lists(st.binary(min_size=1, max_size=30), min_size=1, max_size=12),
    st.randoms(use_true_random=False),
)
@settings(max_examples=100, deadline=None)
def test_delivery_contract_mixed_receivers(n_fcfs, n_bcast, messages, rng):
    # Make payloads unique so positional order checks are well defined.
    messages = [bytes([i]) + m for i, m in enumerate(messages)]
    v = make_view(max_messages=128)
    r = DirectRunner(v)
    cid = r.run(ops.open_send(v, 0, "c"))
    fcfs = list(range(10, 10 + n_fcfs))
    bcast = list(range(20, 20 + n_bcast))
    for pid in fcfs:
        r.run(ops.open_receive(v, pid, "c", FCFS))
    for pid in bcast:
        r.run(ops.open_receive(v, pid, "c", BROADCAST))

    for m in messages:
        r.run(ops.message_send(v, 0, cid, m))

    # FCFS: drain in random receiver order; union is exactly the stream,
    # and each receiver's sub-stream is in order.
    per_fcfs = {pid: [] for pid in fcfs}
    for _ in messages:
        pid = rng.choice(fcfs)
        per_fcfs[pid].append(r.run(ops.message_receive(v, pid, cid)))
    for pid in fcfs:
        with_pos = [(messages.index(m), m) for m in per_fcfs[pid]]
        assert with_pos == sorted(with_pos)  # time-ordered sub-stream
    union = [m for seq in per_fcfs.values() for m in seq]
    assert sorted(union) == sorted(messages)  # exactly-once

    # BROADCAST: everyone sees the full stream, in order.
    for pid in bcast:
        got = [r.run(ops.message_receive(v, pid, cid)) for _ in messages]
        assert got == messages

    # Everything consumed: a further receive would block, and the
    # allocator is fully drained.
    for pid in fcfs:
        try:
            r.run(ops.message_receive(v, pid, cid))
            raise AssertionError("should have blocked")
        except BlockedError:
            pass
    assert HDR.get(v.region, "live_msgs") == 0
    check_invariants(v)


@given(
    st.lists(
        st.tuples(st.sampled_from(["send", "recv", "open", "close"]),
                  st.integers(0, 3)),
        max_size=40,
    )
)
@settings(max_examples=100, deadline=None)
def test_random_op_soup_never_corrupts(script):
    """Fuzz: random opens/closes/sends/receives either succeed or raise a
    typed MPFError, and conservation of headers/blocks always holds."""
    from repro.core.errors import MPFError

    v = make_view(max_messages=32, message_pool_bytes=1 << 14)
    r = DirectRunner(v)
    open_ids: dict[int, int] = {}
    queued = 0
    for action, pid in script:
        try:
            if action == "open":
                cid = r.run(ops.open_send(v, pid, "soup"))
                r.run(ops.open_receive(v, pid, "soup", FCFS))
                open_ids[pid] = cid
            elif action == "send" and pid in open_ids:
                r.run(ops.message_send(v, pid, open_ids[pid], b"x" * pid))
                queued += 1
            elif action == "recv" and pid in open_ids and queued:
                r.run(ops.message_receive(v, pid, open_ids[pid]))
                queued -= 1
            elif action == "close" and pid in open_ids:
                cid = open_ids.pop(pid)
                r.run(ops.close_send(v, pid, cid))
                r.run(ops.close_receive(v, pid, cid))
                if not open_ids:
                    queued = 0  # circuit deleted, messages discarded
        except MPFError:
            pass
        live = HDR.get(v.region, "live_msgs")
        assert live == queued, f"conservation broken: {live} != {queued}"
        check_invariants(v)
    assert not r.held
