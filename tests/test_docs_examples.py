"""Every ```python block in docs/*.md must execute.

The docs promise "every snippet is complete and runnable"; this test is
that promise, enforced.  Blocks of one file run sequentially in a single
namespace (tutorial-style documents build on earlier snippets), so a
failure reports the file and the line the block starts on.

Blocks that need real OS facilities (``fork`` for ``ProcRuntime``,
``/dev/shm`` for ``PosixSegment``) make the whole file skip on platforms
without them — the snippets are interdependent, so partial execution
would produce confusing NameErrors instead of a clean skip.
"""

from __future__ import annotations

import multiprocessing
from pathlib import Path

import pytest

DOCS_DIR = Path(__file__).resolve().parent.parent / "docs"
DOC_FILES = sorted(DOCS_DIR.glob("*.md"))

#: Substrings that mark a block as needing the fork start method.
_FORK_MARKERS = ("ProcRuntime", "PosixSegment")


def _python_blocks(path: Path) -> list[tuple[int, str]]:
    """``(start_line, source)`` for each ```python fenced block."""
    blocks: list[tuple[int, str]] = []
    buf: list[str] | None = None
    start = 0
    for lineno, line in enumerate(path.read_text().splitlines(), start=1):
        stripped = line.strip()
        if buf is None:
            if stripped == "```python":
                buf, start = [], lineno + 1
        elif stripped == "```":
            blocks.append((start, "\n".join(buf)))
            buf = None
        else:
            buf.append(line)
    assert buf is None, f"{path.name}: unterminated ```python block at {start}"
    return blocks


def _fork_available() -> bool:
    return "fork" in multiprocessing.get_all_start_methods()


@pytest.mark.parametrize("path", DOC_FILES, ids=lambda p: p.name)
def test_docs_python_blocks_execute(path: Path, capsys) -> None:
    blocks = _python_blocks(path)
    if not blocks:
        pytest.skip(f"{path.name} has no ```python blocks")
    if not _fork_available() and any(
        marker in src for _, src in blocks for marker in _FORK_MARKERS
    ):
        pytest.skip(f"{path.name} needs the fork start method")

    namespace: dict[str, object] = {"__name__": f"docs_{path.stem}"}
    for start, src in blocks:
        code = compile(src, f"{path.name}:{start}", "exec")
        try:
            exec(code, namespace)  # noqa: S102 - executing our own docs
        except Exception as exc:  # pragma: no cover - failure reporting
            pytest.fail(
                f"{path.name} block at line {start} raised "
                f"{type(exc).__name__}: {exc}"
            )
