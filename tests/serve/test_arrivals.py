"""Open-loop arrival generators: determinism, digests, trace replay."""

import pytest

from repro.serve import PoissonArrivals, TraceArrivals, schedule_digest


def test_poisson_is_deterministic_per_seed():
    a = PoissonArrivals(100.0, 500, seed=7).times()
    b = PoissonArrivals(100.0, 500, seed=7).times()
    assert a == b
    assert PoissonArrivals(100.0, 500, seed=8).times() != a


def test_poisson_times_are_sorted_and_positive():
    times = PoissonArrivals(50.0, 200, seed=1).times()
    assert len(times) == 200
    assert all(t > 0 for t in times)
    assert list(times) == sorted(times)


def test_poisson_mean_rate_is_close():
    times = PoissonArrivals(100.0, 5000, seed=3).times()
    realized = len(times) / times[-1]
    assert abs(realized - 100.0) / 100.0 < 0.05


def test_poisson_validates_inputs():
    with pytest.raises(ValueError):
        PoissonArrivals(0.0, 10)
    with pytest.raises(ValueError):
        PoissonArrivals(10.0, 0)


def test_schedule_digest_is_stable_and_order_sensitive():
    times = (0.001, 0.5, 1.25)
    assert schedule_digest(times) == schedule_digest(list(times))
    assert schedule_digest(times) != schedule_digest(times[::-1])
    assert len(schedule_digest(times)) == 16


def test_trace_arrivals_absolute_times():
    t = TraceArrivals([0.1, 0.4, 0.9])
    assert t.times() == (0.1, 0.4, 0.9)


def test_trace_arrivals_gap_form():
    t = TraceArrivals([0.1, 0.3, 0.5], gaps=True)
    assert t.times() == pytest.approx((0.1, 0.4, 0.9))


def test_trace_arrivals_rejects_unsorted_or_negative():
    with pytest.raises(ValueError):
        TraceArrivals([0.5, 0.1])
    with pytest.raises(ValueError):
        TraceArrivals([-0.1, 0.2])
    with pytest.raises(ValueError):
        TraceArrivals([])


def test_trace_replay_matches_input_schedule():
    # A trace-driven serve run must process exactly the input schedule:
    # same digest, every request admitted and completed.
    from repro.serve import ServeShape
    from repro.serve.sweep import run_point

    shape = ServeShape(clients=2, frontends=2, workers=2)
    traces = [TraceArrivals([0.01 * i for i in range(1, 21)]).times(),
              TraceArrivals([0.015 * i for i in range(1, 16)]).times()]
    point, _ = run_point(shape, rate=0.0, n_requests=0, schedules=traces)
    assert point["schedule_digest"] == schedule_digest(
        [t for s in traces for t in s])
    assert point["offered"] == 35
    assert point["completed"] == 35
    assert point["shed"] == 0
