"""The ``mpf-serve-timeline/1`` document and the probe that feeds it.

The ISSUE's acceptance shape: a quick traced serve point at knee load
produces a valid timeline document whose findings name the first
saturating tier and its onset window; a strict validator rejects
malformed documents; and the windowed series are runtime-portable at
the circuit-name level (sim vs threads by counter digest).
"""

import copy
import json
import sys

import pytest

from repro.obs import HealthEngine, Recorder, serve_tier_of
from repro.serve.slo import build_timeline_doc, validate_timeline
from repro.serve.sweep import run_point
from repro.serve.topology import ServeShape

KNEE_RPS, KNEE_N = 400.0, 800


@pytest.fixture(scope="module")
def knee_probe():
    """One causally-traced, timelined sim point at quick-sweep knee load."""
    shape = ServeShape(policy="shed").with_load_features(batch=8, shards=8)
    point, rec = run_point(shape, KNEE_RPS, KNEE_N, seed=1987,
                           runtime="sim", causal=True, timeline=True)
    health = HealthEngine(rec.timeline, tier_of=serve_tier_of)
    health.poll()
    return point, rec, health


def test_knee_findings_name_first_saturating_tier(knee_probe):
    _, rec, health = knee_probe
    sat = [f for f in health.findings if f.kind == "saturating-tier"]
    assert len(sat) == 1
    assert sat[0].series.startswith("tier:")
    tier = sat[0].data["tier"]
    assert tier in ("frontends", "workers", "aggregator")
    assert sat[0].onset_window is not None
    assert sat[0].onset_time == pytest.approx(
        sat[0].onset_window * rec.timeline.width)
    assert tier in sat[0].detail and "window" in sat[0].detail


def test_timeline_doc_builds_and_validates(knee_probe):
    _, rec, health = knee_probe
    doc = build_timeline_doc("sim", 1987, KNEE_RPS, rec.timeline,
                             health.findings)
    validate_timeline(doc)  # strict: raises on any malformation
    assert doc["schema"] == "mpf-serve-timeline/1"
    assert doc["timeline"]["clock"] == "sim"
    assert doc["comparison"] is None
    idxs = [w["index"] for w in doc["timeline"]["windows"]]
    assert idxs == sorted(idxs) and len(set(idxs)) == len(idxs)
    # Round-trips as plain JSON.
    assert validate_timeline(json.loads(json.dumps(doc))) is None
    # Serve circuit names reached the document (tier attribution input).
    assert any(n.startswith("serve.") for n in
               doc["timeline"]["names"].values())


def test_timeline_doc_embeds_closed_loop_comparison(knee_probe):
    from repro.serve.cli import _closed_loop_comparison

    _, rec, health = knee_probe
    comparison = _closed_loop_comparison(rec.timeline, "sim",
                                         rec.timeline.width)
    doc = build_timeline_doc("sim", 1987, KNEE_RPS, rec.timeline,
                             health.findings, comparison)
    validate_timeline(doc)
    for leg in ("open_loop", "closed_loop"):
        assert doc["comparison"][leg]["width"] == rec.timeline.width
        assert doc["comparison"][leg]["sends_per_window"]
    assert "sends per window" in doc["comparison"]["figure"]


@pytest.mark.parametrize("mutate, match", [
    (lambda d: d.update(schema="mpf-serve-timeline/2"), "schema"),
    (lambda d: d.update(probe_rps="fast"), "probe_rps"),
    (lambda d: d["timeline"].update(clock="cpu"), "clock"),
    (lambda d: d["timeline"].update(windows=[]), "windows"),
    (lambda d: d["timeline"]["windows"].__setitem__(
        0, d["timeline"]["windows"][1]), "increasing"),
    (lambda d: d["timeline"]["windows"][0]["gauges"].update(
        bad={"n": 1, "sum": 2.0}), "gauge"),
    (lambda d: d["timeline"]["windows"][0]["digests"].update(
        bad={"x": 1}), "digest"),
    (lambda d: d["findings"].append({"kind": "queue-growth"}), "finding"),
    (lambda d: d.update(comparison={"open_loop": {}}), "comparison"),
])
def test_validate_timeline_rejects_malformed(knee_probe, mutate, match):
    _, rec, health = knee_probe
    doc = build_timeline_doc("sim", 1987, KNEE_RPS, rec.timeline,
                             health.findings)
    bad = copy.deepcopy(doc)
    mutate(bad)
    with pytest.raises(ValueError, match=match):
        validate_timeline(bad)


def test_probe_point_unchanged_by_timeline():
    """Attaching the timeline+tracer must not move the SLO point — the
    serving-layer face of the byte-identity pin."""
    shape = ServeShape(policy="shed").with_load_features(batch=8)
    plain, _ = run_point(shape, 200.0, 200, seed=11, runtime="sim")
    timed, rec = run_point(shape, 200.0, 200, seed=11, runtime="sim",
                           causal=True, timeline=True)
    assert timed == plain
    assert rec.timeline.windows  # and the telemetry actually recorded


def test_prebuilt_recorder_overrides_flags():
    """The live endpoint hands run_point a recorder built before the
    run; the flags must not replace it."""
    shape = ServeShape(policy="shed").with_load_features(batch=8)
    mine = Recorder(timeline=True, timeline_width=0.1)
    _, rec = run_point(shape, 100.0, 50, seed=3, runtime="sim",
                       causal=False, timeline=False, recorder=mine)
    assert rec is mine
    assert mine.timeline.windows
    assert mine.timeline.width == 0.1


@pytest.mark.skipif(not sys.platform.startswith("linux"),
                    reason="POSIX runtimes")
def test_live_scrape_during_threads_probe():
    """The telemetry-smoke CI gate's shape: a live endpoint over a real
    threads serve probe, scraped mid-run under a strict parse, then the
    finished probe archived as a valid timeline document."""
    import threading
    import time

    from repro.obs import LiveTelemetryServer, fetch_metrics

    shape = ServeShape(policy="stall").with_load_features(batch=8, shards=8)
    rec = Recorder(causal=True, causal_max_events=65536, timeline=True)
    health = HealthEngine(rec.timeline, tier_of=serve_tier_of)
    server = LiveTelemetryServer(rec, health=health)
    url = server.start()
    runner = threading.Thread(
        target=lambda: run_point(shape, 120.0, 180, seed=1987,
                                 runtime="threads", recorder=rec))
    runner.start()
    try:
        mid = None
        deadline = time.perf_counter() + 30
        while time.perf_counter() < deadline:
            metrics = fetch_metrics(url)  # strict: raises on bad lines
            windows = next(iter(metrics.get("mpf_timeline_windows",
                                            [({}, 0.0)])))[1]
            if windows >= 2:
                mid = metrics
                break
            time.sleep(0.05)
        assert mid is not None, "no timeline windows appeared mid-run"
        assert "mpf_timeline_count_total" in mid
    finally:
        runner.join(timeout=120)
        server.stop()
    health.poll()
    doc = build_timeline_doc("threads", 1987, 120.0, rec.timeline,
                             health.findings)
    validate_timeline(doc)
    assert doc["timeline"]["clock"] == "wall"


@pytest.mark.skipif(not sys.platform.startswith("linux"),
                    reason="POSIX runtimes")
def test_series_parity_sim_vs_threads_by_digest():
    """Same seeded below-knee point, stall policy (no timing-dependent
    sheds): circuit-name-level counter totals agree across runtimes
    even though the wall-clock windowing differs."""
    shape = ServeShape(policy="stall").with_load_features(batch=8, shards=8)

    def digest(runtime):
        _, rec = run_point(shape, 60.0, 60, seed=7, runtime=runtime,
                           timeline=True)
        tl = rec.timeline
        out: dict[str, float] = {}
        for key, n in tl.totals()["counters"].items():
            series, metric = key.split("|", 1)
            if not series.startswith("circuit:") or metric not in (
                    "sent", "recv", "bytes_sent", "bytes_recv"):
                continue
            label = tl.series_label(series)
            out[f"{label}|{metric}"] = out.get(f"{label}|{metric}", 0) + n
        return tl.clock_kind, out

    sim_clock, sim_digest = digest("sim")
    thr_clock, thr_digest = digest("threads")
    assert (sim_clock, thr_clock) == ("sim", "wall")
    assert sim_digest == thr_digest
    assert any(k.startswith("circuit:serve.work.") for k in sim_digest)
