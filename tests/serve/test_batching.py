"""Batch wire format: roundtrips, DONE markers, size validation."""

import pytest

from repro.serve import REQUEST_RECORD, decode_batch, encode_batch
from repro.serve.batching import (
    BATCH_HEADER,
    KIND_DATA,
    batch_bytes,
    encode_done,
)

RECORDS = [(0, 1, 0.125), (3, 2, 0.25), (65535, 4_000_000_000, 1.5)]


def test_roundtrip_preserves_records():
    payload = encode_batch(RECORDS, slot_bytes=32)
    assert decode_batch(payload, slot_bytes=32) == RECORDS


def test_minimum_slot_is_the_record_size():
    payload = encode_batch(RECORDS, slot_bytes=REQUEST_RECORD.size)
    assert decode_batch(payload, REQUEST_RECORD.size) == RECORDS
    with pytest.raises(ValueError):
        encode_batch(RECORDS, slot_bytes=REQUEST_RECORD.size - 1)


def test_batch_bytes_accounts_header_and_slots():
    assert batch_bytes(0, 64) == BATCH_HEADER.size
    assert batch_bytes(3, 64) == BATCH_HEADER.size + 3 * 64
    assert len(encode_batch(RECORDS, 64)) == batch_bytes(len(RECORDS), 64)


def test_done_marker_decodes_to_none():
    done = encode_done()
    assert decode_batch(done, slot_bytes=64) is None
    assert done[0] != KIND_DATA


def test_decode_rejects_length_mismatch():
    payload = encode_batch(RECORDS, slot_bytes=32)
    with pytest.raises(ValueError):
        decode_batch(payload, slot_bytes=16)
    with pytest.raises(ValueError):
        decode_batch(payload + b"\0", slot_bytes=32)


def test_decode_rejects_unknown_kind():
    bogus = bytes([0x7F]) + encode_batch(RECORDS, 32)[1:]
    with pytest.raises(ValueError):
        decode_batch(bogus, slot_bytes=32)


def test_empty_batch_roundtrips():
    payload = encode_batch([], slot_bytes=32)
    assert decode_batch(payload, slot_bytes=32) == []
