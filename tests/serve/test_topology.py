"""Topology builder end-to-end: shapes, configs, cross-runtime runs."""

import pytest

from repro.serve import ServeShape, serve_config
from repro.serve.sweep import client_schedules, run_point
from repro.serve.topology import serve_machine

SMALL = ServeShape(clients=2, frontends=2, workers=3)


class TestShape:
    def test_counts_and_circuits(self):
        assert SMALL.nprocs == 2 + 2 + 3 + 1
        assert SMALL.circuits == 2 + 3 + 1

    def test_validation(self):
        with pytest.raises(ValueError):
            ServeShape(clients=0)
        with pytest.raises(ValueError):
            ServeShape(batch=0)
        with pytest.raises(ValueError):
            ServeShape(policy="drop")
        with pytest.raises(ValueError):
            ServeShape(reply_bytes=8)  # smaller than the request record

    def test_with_load_features_clones(self):
        shape = SMALL.with_load_features(batch=8, shards=4)
        assert (shape.batch, shape.freelist_shards) == (8, 4)
        assert SMALL.batch == 1  # original untouched
        assert shape.clients == SMALL.clients


class TestConfig:
    def test_headers_never_bind_before_blocks(self):
        cfg = serve_config(SMALL)
        # Worst case all-minimal messages: each holds >= 1 block, so
        # max_messages > n_blocks means header exhaustion is unreachable
        # and backpressure always comes from the block pool.
        assert cfg.max_messages > cfg.n_blocks

    def test_sharding_passthrough(self):
        cfg = serve_config(SMALL.with_load_features(shards=8))
        assert cfg.freelist_shards == 8
        assert serve_config(SMALL).freelist_shards == 1

    def test_machine_scales_cpus_and_disables_paging(self):
        big = ServeShape(clients=16, frontends=16, workers=16)
        m = serve_machine(big)
        assert m.n_cpus >= big.nprocs
        assert not m.paging_enabled


class TestEndToEnd:
    def test_all_requests_complete_below_saturation(self):
        point, _ = run_point(SMALL, rate=100.0, n_requests=200)
        assert point["completed"] == point["offered"] == 200
        assert point["shed"] == 0
        assert 0 < point["p50_ms"] <= point["p99_ms"] <= point["p999_ms"]
        assert point["goodput_rps"] > 0

    def test_batching_completes_the_same_requests(self):
        batched = SMALL.with_load_features(batch=4)
        a, _ = run_point(SMALL, rate=100.0, n_requests=200)
        b, _ = run_point(batched, rate=100.0, n_requests=200)
        assert a["completed"] == b["completed"] == 200
        # Batching amortizes per-message overhead: fewer MPF messages
        # for the same logical work.
        assert b["mpf_messages"] < a["mpf_messages"]

    def test_sharded_run_is_conserving_and_complete(self):
        sharded = SMALL.with_load_features(batch=4, shards=4)
        point, _ = run_point(sharded, rate=150.0, n_requests=300)
        assert point["completed"] == 300

    def test_poisson_schedule_reproducible_across_runtimes(self):
        # The seeded arrival schedule is generated identically for every
        # runtime: same digest, same offered count, and the service
        # completes the same logical requests on sim and real threads.
        shape = ServeShape(clients=2, frontends=2, workers=2)
        sim, _ = run_point(shape, rate=150.0, n_requests=60, seed=42,
                           runtime="sim")
        thr, _ = run_point(shape, rate=150.0, n_requests=60, seed=42,
                           runtime="threads")
        assert sim["schedule_digest"] == thr["schedule_digest"]
        assert sim["offered"] == thr["offered"] == 60
        assert sim["completed"] == thr["completed"] == 60

    def test_causal_tracing_attaches_bounded_tracer(self):
        point, rec = run_point(SMALL, rate=100.0, n_requests=100,
                               causal=True, causal_max_events=256)
        assert rec is not None and rec.causal is not None
        assert len(rec.causal.events) <= 256
        assert point["completed"] == 100


class TestSchedules:
    def test_split_preserves_total_and_digest_determinism(self):
        a, da = client_schedules(200.0, 1000, seed=7, clients=4)
        b, db = client_schedules(200.0, 1000, seed=7, clients=4)
        assert sum(len(s) for s in a) == 1000
        assert da == db
        assert a == b
        _, dc = client_schedules(200.0, 1000, seed=8, clients=4)
        assert dc != da
