"""Overload behavior: bounded admission, shed vs stall, degradation."""

import pytest

from repro.serve import OverloadStats, ServeShape
from repro.serve.overload import AdmissionQueue
from repro.serve.sweep import run_point

#: A deliberately small service that saturates at a few hundred rps.
TIGHT = ServeShape(clients=2, frontends=2, workers=2, pool_batches=8,
                   queue_cap=4)


def test_admission_queue_bounds_and_counts():
    stats = OverloadStats()
    q = AdmissionQueue(cap=2, stats=stats)
    assert q.push(b"a", 3) and q.push(b"b", 3)
    assert not q.push(b"c", 3)  # full: shed at admission
    assert stats.admitted == 6
    assert stats.shed_overflow == 3
    assert len(q) == 2
    assert q.head() == (b"a", 3)
    q.pop()
    assert q.head() == (b"b", 3)


def test_admission_queue_rejects_zero_cap():
    with pytest.raises(ValueError):
        AdmissionQueue(cap=0, stats=OverloadStats())


def test_overload_stats_merge_and_shed_property():
    a = OverloadStats(admitted=5, shed_overflow=2, shed_backpressure=1,
                      backpressure_events=4, stalls=3, stall_seconds=0.5)
    b = OverloadStats(admitted=1, shed_overflow=1)
    a.merge(b)
    assert a.admitted == 6 and a.shed_overflow == 3
    assert a.shed == 4  # overflow + backpressure
    assert a.to_dict()["stall_seconds"] == 0.5


def test_shed_policy_degrades_gracefully():
    point, _ = run_point(TIGHT, rate=800.0, n_requests=800)
    assert point["shed"] > 0  # overload surfaced as drops...
    assert point["completed"] + point["shed"] == point["offered"]
    assert point["goodput_rps"] < 800.0  # ...and goodput saturated


def test_stall_policy_preserves_requests_at_latency_cost():
    import dataclasses

    shape = dataclasses.replace(TIGHT, policy="stall")
    point, _ = run_point(shape, rate=800.0, n_requests=800)
    assert point["shed"] == 0  # nothing dropped
    assert point["completed"] == point["offered"]
    assert point["stalls"] > 0  # but the client fell behind


def test_underload_is_clean_under_both_policies():
    import dataclasses

    for policy in ("shed", "stall"):
        shape = dataclasses.replace(TIGHT, policy=policy)
        point, _ = run_point(shape, rate=50.0, n_requests=100)
        assert point["completed"] == point["offered"]
        assert point["shed"] == 0
        assert point["p99_ms"] > 0.0
