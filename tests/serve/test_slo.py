"""SLO report: knee detection, document schema, presentation."""

import json

import pytest

from repro.serve import SLOReport, detect_knee, validate_slo
from repro.serve.slo import POINT_FIELDS


def _point(offered, goodput, **extra):
    p = {k: 0 for k in POINT_FIELDS}
    p.update(offered_rps=offered, goodput_rps=goodput,
             p50_ms=1.0, p99_ms=2.0, p999_ms=3.0, window_s=1.0)
    p.update(extra)
    return p


def test_knee_at_first_load_past_capacity():
    points = [_point(100, 96), _point(200, 190), _point(400, 260),
              _point(800, 265)]
    assert detect_knee(points) == 400  # capacity 265; 400 > 265/0.9


def test_no_knee_when_unsaturated():
    points = [_point(100, 93), _point(200, 188), _point(400, 381)]
    assert detect_knee(points) is None


def test_knee_tolerates_short_window_edge_effects():
    # A 27% shortfall at the lowest load (batch-fill + drain edges on a
    # tiny schedule) must not place the knee there while the curve still
    # scales; capacity-relative detection puts it where growth stops.
    points = [_point(60, 44), _point(200, 169), _point(400, 340)]
    assert detect_knee(points) == 400
    # And with the top point still scaling, there is no knee at all.
    scaling = [_point(60, 44), _point(200, 169), _point(400, 372)]
    assert detect_knee(scaling) is None


def _report():
    report = SLOReport(runtime="sim", seed=1987)
    report.add_config("baseline", {"batch": 1}, [
        _point(100, 96, mpf_messages=300),
        _point(400, 260, mpf_messages=900),
        _point(800, 262, mpf_messages=1100),
    ])
    report.findings.append("traced probe at 800 rps")
    return report


def test_report_document_validates_and_counts_messages():
    doc = _report().to_dict()
    validate_slo(doc)  # must not raise
    assert doc["total_mpf_messages"] == 2300
    json.loads(json.dumps(doc))  # JSON-serializable


def test_knee_goodput_is_the_saturated_plateau():
    report = _report()
    # Capacity 262; the first load past 262/0.9 is 400.
    assert report.configs["baseline"]["knee_rps"] == 400
    assert report.knee_goodput("baseline") == 262


def test_format_table_shows_knee_and_findings():
    text = _report().format_table()
    assert "knee @ 400" in text
    assert "traced probe" in text
    assert "p999" in text


@pytest.mark.parametrize("mutate,path_bit", [
    (lambda d: d.pop("schema"), "schema"),
    (lambda d: d.update(seed="x"), "seed"),
    (lambda d: d.update(configs={}), "configs"),
    (lambda d: d["configs"]["baseline"]["points"][0].pop("p999_ms"),
     "p999_ms"),
    (lambda d: d["configs"]["baseline"]["points"].reverse(), "sorted"),
    (lambda d: d.pop("total_mpf_messages"), "total_mpf_messages"),
])
def test_validate_slo_rejects_malformed_documents(mutate, path_bit):
    doc = _report().to_dict()
    mutate(doc)
    with pytest.raises(ValueError) as err:
        validate_slo(doc)
    assert path_bit in str(err.value)
