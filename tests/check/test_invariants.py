"""The structural invariants: clean on correct state, loud on corruption."""

from __future__ import annotations

import pytest

from repro.core import ops
from repro.core.inspect import (
    InvariantViolation,
    check_invariants,
    collect_violations,
)
from repro.core.layout import HDR
from repro.core.protocol import FCFS, NIL
from repro.core.structs import LNVC, MSG
from repro.check.invariants import (
    check_broadcast_delivery,
    check_fcfs_delivery,
)
from repro.testing import DirectRunner, make_view


def _busy_view():
    """A view with an open circuit and two queued messages."""
    v = make_view()
    r = DirectRunner(v)
    cid = r.run(ops.open_send(v, 0, "c"))
    r.run(ops.open_receive(v, 1, "c", FCFS))
    r.run(ops.message_send(v, 0, cid, b"one"))
    r.run(ops.message_send(v, 0, cid, b"two"))
    return v, r, cid


def test_clean_state_has_no_violations():
    v, r, cid = _busy_view()
    assert collect_violations(v, level="steady") == []
    assert collect_violations(v, level="final") == []
    check_invariants(v)  # must not raise


def test_drained_state_passes_expect_empty():
    v, r, cid = _busy_view()
    for _ in range(2):
        r.run(ops.message_receive(v, 1, cid))
    r.run(ops.close_receive(v, 1, cid))
    r.run(ops.close_send(v, 0, cid))
    check_invariants(v, expect_empty=True)


def test_expect_empty_rejects_leftover_circuit():
    v, r, cid = _busy_view()
    with pytest.raises(InvariantViolation):
        check_invariants(v, expect_empty=True)


def test_leaked_header_counter_detected():
    v, r, cid = _busy_view()
    HDR.set(v.region, "live_msgs", HDR.get(v.region, "live_msgs") + 1)
    found = collect_violations(v, level="steady")
    assert any("header-pool identity" in f for f in found)


def test_torn_fifo_link_detected():
    # Sever the FIFO chain behind the circuit's back: nmsgs still says 2
    # but only one message is reachable -- the torn-send signature.
    v, r, cid = _busy_view()
    base = v.layout.lnvc_off(0)
    head = LNVC.get(v.region, base, "fifo_head")
    MSG.set(v.region, head, "next_msg", NIL)
    found = collect_violations(v, level="final")
    assert any("FIFO holds" in f for f in found)
    with pytest.raises(InvariantViolation) as excinfo:
        check_invariants(v)
    assert "FIFO holds" in str(excinfo.value)


def test_fifo_cycle_detected_not_hung():
    v, r, cid = _busy_view()
    base = v.layout.lnvc_off(0)
    head = LNVC.get(v.region, base, "fifo_head")
    MSG.set(v.region, head, "next_msg", head)  # self-loop
    found = collect_violations(v, level="steady")
    assert any("cyclic" in f for f in found)


def test_fcfs_oracle_accepts_exactly_once_in_order():
    sent = [bytes([0, 0]), bytes([0, 1]), bytes([1, 0])]
    received = [[bytes([0, 0]), bytes([1, 0])], [bytes([0, 1])]]
    assert check_fcfs_delivery(sent, received, senders=(0, 1)) == []


def test_fcfs_oracle_rejects_duplicate_and_reorder():
    sent = [bytes([0, 0]), bytes([0, 1])]
    dup = [[bytes([0, 0])], [bytes([0, 0])]]
    assert check_fcfs_delivery(sent, dup, senders=(0,)) != []
    swapped = [[bytes([0, 1]), bytes([0, 0])], []]
    assert check_fcfs_delivery(sent, swapped, senders=(0,)) != []


def test_broadcast_oracle():
    sent = [b"x", b"y"]
    assert check_broadcast_delivery(sent, [b"x", b"y"], "p3") == []
    assert check_broadcast_delivery(sent, [b"y", b"x"], "p3") != []
    assert check_broadcast_delivery(sent, [b"x"], "p3") != []
