"""Controlled scheduling: determinism, policies, and clean scenarios."""

from __future__ import annotations

import pytest

from repro.check import (
    SCENARIOS,
    BoundedPolicy,
    PrefixPolicy,
    RandomPolicy,
    explore,
    explore_dfs,
    run_schedule,
    run_threads,
)


def test_same_seed_same_schedule():
    sc = SCENARIOS["fcfs-race"]
    a = run_schedule(sc, RandomPolicy(42))
    b = run_schedule(sc, RandomPolicy(42))
    assert a.status == b.status == "ok"
    assert a.decisions == b.decisions
    assert a.widths == b.widths
    assert a.events == b.events


def test_different_seeds_diverge():
    # Not guaranteed for any single pair, but over ten seeds at least
    # two must differ or the "random" policy is not randomizing.
    sc = SCENARIOS["fcfs-race"]
    runs = [tuple(run_schedule(sc, RandomPolicy(s)).decisions)
            for s in range(10)]
    assert len(set(runs)) > 1


@pytest.mark.parametrize("name", sorted(SCENARIOS))
def test_scenario_clean_over_seeds(name):
    result = explore(SCENARIOS[name], seeds=range(15))
    assert result.failure is None, result.failure.detail
    assert result.by_status == {"ok": 15}


def test_steady_probes_actually_ran():
    out = run_schedule(SCENARIOS["fcfs-race"], RandomPolicy(0))
    assert out.status == "ok"
    assert out.steady_checks > 0


def test_decisions_match_widths():
    out = run_schedule(SCENARIOS["connect-churn"], RandomPolicy(1))
    assert out.status == "ok"
    assert len(out.decisions) == len(out.widths)
    assert all(0 <= d < w for d, w in zip(out.decisions, out.widths))
    assert all(w > 1 for w in out.widths)  # only real choices recorded


def test_prefix_policy_is_deterministic_replay():
    sc = SCENARIOS["mixed-protocol"]
    first = run_schedule(sc, RandomPolicy(7))
    again = run_schedule(sc, PrefixPolicy(first.decisions))
    assert again.status == first.status == "ok"
    assert again.decisions == first.decisions


def test_bounded_policy_clean():
    result = explore(SCENARIOS["fcfs-race"], seeds=range(10),
                     policy="bounded", bound=2)
    assert result.failure is None
    assert result.by_status == {"ok": 10}


def test_dfs_explores_distinct_schedules():
    seen = []
    result = explore_dfs(SCENARIOS["fcfs-race"], max_runs=12,
                         on_run=lambda i, out: seen.append(tuple(out.decisions)))
    assert result.failure is None
    assert result.runs == len(seen) == 12
    assert len(set(seen)) == 12  # DFS never repeats a schedule


def test_bounded_policy_respects_bound():
    out = run_schedule(SCENARIOS["fcfs-race"], BoundedPolicy(3, bound=0))
    assert out.status == "ok"


def test_threads_cross_validation_clean():
    assert run_threads(SCENARIOS["fcfs-race"], repeats=3,
                       join_timeout=30.0) == []
