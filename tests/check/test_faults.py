"""Fault injection: the checker must detect the bugs it claims to detect."""

from __future__ import annotations

from repro.check import SCENARIOS, RandomPolicy, explore, run_schedule


def test_torn_send_caught_as_invariant_violation():
    result = explore(SCENARIOS["fcfs-race"], seeds=range(50),
                     fault="torn-send")
    assert result.failure is not None, "torn-send went undetected"
    assert result.failure.status == "invariant"
    # The orphaned message shows up as a counter-vs-FIFO mismatch (or a
    # downstream conservation break once the run stalls).
    assert "FIFO holds" in result.failure.detail or \
        "reachability broken" in result.failure.detail


def test_torn_send_caught_under_churn():
    result = explore(SCENARIOS["connect-churn"], seeds=range(50),
                     fault="torn-send")
    assert result.failure is not None
    assert result.failure.status == "invariant"


def test_drop_wake_caught_as_lost_wakeup():
    result = explore(SCENARIOS["mixed-protocol"], seeds=range(20),
                     fault="drop-wake")
    assert result.failure is not None, "drop-wake went undetected"
    out = result.failure
    assert out.status == "deadlock"
    assert out.report is not None
    assert out.report.kind == "lost-wakeup"
    # Sleepers on a circuit with deliverable traffic, by protocol.
    deliverable = [b for b in out.report.blocked if b.deliverable]
    assert deliverable, out.report.render()
    assert {b.proto for b in out.report.blocked} <= {"FCFS", "BROADCAST"}
    assert "lost wakeup" in out.detail


def test_stall_report_renders_blocked_workers():
    result = explore(SCENARIOS["mixed-protocol"], seeds=range(20),
                     fault="drop-wake")
    text = result.failure.report.render()
    assert "sleeping on circuit" in text
    for b in result.failure.report.blocked:
        assert b.name in text


def test_fault_runs_are_deterministic():
    sc = SCENARIOS["mixed-protocol"]
    a = run_schedule(sc, RandomPolicy(5), fault="drop-wake")
    b = run_schedule(sc, RandomPolicy(5), fault="drop-wake")
    assert a.status == b.status
    assert a.decisions == b.decisions
