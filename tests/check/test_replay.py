"""Record / replay / minimize: a failure is a file, not a fluke."""

from __future__ import annotations

import time

import pytest

from repro.check import (
    SCENARIOS,
    explore,
    make_trace,
    minimize_trace,
    replay_trace,
)
from repro.obs import read_decision_trace, write_decision_trace


def _failing_trace():
    scenario = SCENARIOS["fcfs-race"]
    result = explore(scenario, seeds=range(50), fault="torn-send")
    assert result.failure is not None
    return make_trace(scenario, result.failure, fault="torn-send",
                      seed=result.failure_seed, policy="random")


def test_trace_roundtrips_through_file(tmp_path):
    trace = _failing_trace()
    path = tmp_path / "fail.json"
    write_decision_trace(trace, path)
    assert read_decision_trace(path) == trace


def test_replay_reproduces_failure_fast():
    trace = _failing_trace()
    t0 = time.perf_counter()
    outcome = replay_trace(trace)
    elapsed = time.perf_counter() - t0
    assert outcome.status == trace["status"]
    assert elapsed < 1.0, f"replay took {elapsed:.2f}s (must be < 1s)"


def test_minimized_trace_still_reproduces_fast():
    trace = _failing_trace()
    minimized, stats = minimize_trace(trace)
    assert stats["minimized_decisions"] <= stats["original_decisions"]
    assert stats["minimized_decisions"] == len(minimized["decisions"])
    assert minimized["minimized_from"] == stats["original_decisions"]
    t0 = time.perf_counter()
    outcome = replay_trace(minimized)
    elapsed = time.perf_counter() - t0
    assert outcome.status == trace["status"]
    assert elapsed < 1.0, f"minimized replay took {elapsed:.2f}s"


def test_minimize_rejects_clean_trace():
    scenario = SCENARIOS["fcfs-race"]
    from repro.check import RandomPolicy, run_schedule

    out = run_schedule(scenario, RandomPolicy(0))
    assert out.status == "ok"
    trace = make_trace(scenario, out, seed=0)
    trace["status"] = "invariant"  # lie: claims to fail
    with pytest.raises(ValueError, match="does not reproduce"):
        minimize_trace(trace)


def test_read_trace_rejects_bad_format(tmp_path):
    path = tmp_path / "bad.json"
    path.write_text('{"format": 99, "decisions": []}')
    with pytest.raises(ValueError):
        read_decision_trace(path)
