"""Error-path recovery: typed allocation failures leave no damage behind.

The paper's allocator can refuse (message pool or descriptor pool
exhausted); the contract is that a refused operation is a *clean* refusal
— a worker may catch the typed error, back off, and retry, and the
segment's accounting stays consistent throughout.  Exercised on the
simulator and on real threads, verified with
:func:`repro.core.inspect.check_invariants`.
"""

from __future__ import annotations

import pytest

from repro.core.errors import OutOfDescriptorsError, OutOfMessageMemoryError
from repro.core.inspect import check_invariants
from repro.core.layout import MPFConfig
from repro.core.protocol import FCFS
from repro.runtime.sim import SimRuntime
from repro.runtime.threads import ThreadRuntime

#: Generous: the back-off is free on threads, so a worker can spin many
#: times inside one GIL slice before its peer is scheduled (see the
#: freelist-churn scenario for the same reasoning).
RETRY_CAP = 100_000

MSGS = 6
POOL_CFG = MPFConfig(max_lnvcs=4, max_processes=4, max_messages=2,
                     message_pool_bytes=1 << 10)
DESC_CFG = MPFConfig(max_lnvcs=4, max_processes=4, max_messages=8,
                     message_pool_bytes=1 << 12,
                     send_descriptors=2, recv_descriptors=4)


def _runtimes():
    return [SimRuntime(), ThreadRuntime(join_timeout=60.0)]


def _pool_workers():
    """One receiver, one sender; the 2-header pool forces send retries."""

    def receiver(env):
        data = yield from env.open_receive("data", FCFS)
        got = 0
        for _ in range(MSGS):
            yield from env.message_receive(data)
            got += 1
        yield from env.close_receive(data)
        return got

    def sender(env):
        data = yield from env.open_send("data")
        retries = 0
        for i in range(MSGS):
            for _ in range(RETRY_CAP):
                try:
                    yield from env.message_send(data, bytes([i]) * 5)
                    break
                except OutOfMessageMemoryError:
                    retries += 1
                    yield from env.compute(instrs=5)
            else:
                raise RuntimeError("retry cap exceeded")
        yield from env.close_send(data)
        return retries

    return [receiver, sender]


def _descriptor_workers():
    """Three workers cycle a 2-slot send-descriptor pool: whoever finds
    it exhausted must ride out ``OutOfDescriptorsError`` until a peer's
    close frees a slot."""

    def opener(env):
        retries = 0
        for _ in range(5):
            for _ in range(RETRY_CAP):
                try:
                    cid = yield from env.open_send(f"c{env.rank}")
                    break
                except OutOfDescriptorsError:
                    retries += 1
                    yield from env.compute(instrs=3)
            else:
                raise RuntimeError("retry cap exceeded")
            yield from env.compute(instrs=3)
            yield from env.close_send(cid)
        return retries

    return [opener, opener, opener]


@pytest.mark.parametrize("runtime", _runtimes(), ids=lambda rt: rt.kind)
def test_pool_exhaustion_recovery_leaves_clean_segment(runtime):
    result = runtime.run(_pool_workers(), cfg=POOL_CFG)
    assert result.results["p0"] == MSGS
    check_invariants(runtime.last_view, expect_empty=True)


@pytest.mark.parametrize("runtime", _runtimes(), ids=lambda rt: rt.kind)
def test_descriptor_exhaustion_recovery_leaves_clean_segment(runtime):
    result = runtime.run(_descriptor_workers(), cfg=DESC_CFG)
    assert all(isinstance(result.results[f"p{i}"], int) for i in range(3))
    check_invariants(runtime.last_view, expect_empty=True)


def test_pool_refusal_is_observable_on_sim():
    """At least one refusal actually happens with a 2-header pool when
    the receiver is intentionally slow (so the test exercises the error
    path rather than vacuously passing)."""

    def receiver(env):
        data = yield from env.open_receive("data", FCFS)
        for _ in range(MSGS):
            yield from env.compute(instrs=5000)  # dawdle; pool fills up
            yield from env.message_receive(data)
        yield from env.close_receive(data)
        return "done"

    workers = _pool_workers()
    rt = SimRuntime()
    result = rt.run([receiver, workers[1]], cfg=POOL_CFG)
    assert result.results["p1"] > 0, "expected at least one pool refusal"
    check_invariants(rt.last_view, expect_empty=True)
