"""The ``python -m repro.check`` CLI: subcommands and exit codes."""

from __future__ import annotations

from repro.check.cli import main
from repro.obs import read_decision_trace


def test_list_names_every_scenario(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    for name in ("fcfs-race", "connect-churn", "freelist-churn",
                 "mixed-protocol"):
        assert name in out


def test_explore_clean_exits_zero(capsys):
    assert main(["explore", "--scenario", "fcfs-race", "--seeds", "20"]) == 0
    assert "ok: 20" in capsys.readouterr().out


def test_explore_clean_with_expect_fail_exits_one(capsys):
    assert main(["explore", "--scenario", "fcfs-race", "--seeds", "5",
                 "--expect-fail"]) == 1


def test_explore_unknown_fault_exits_two(capsys):
    assert main(["explore", "--scenario", "fcfs-race", "--seeds", "5",
                 "--fault", "drop-wake"]) == 2
    assert "does not support" in capsys.readouterr().out


def test_explore_fault_found_exits_one_without_expect_fail(capsys):
    assert main(["explore", "--scenario", "mixed-protocol", "--seeds", "20",
                 "--fault", "drop-wake"]) == 1
    assert "FAILING SCHEDULE" in capsys.readouterr().out


def test_fault_injection_pipeline(tmp_path, capsys):
    """The CI smoke pipeline: explore --expect-fail, replay, minimize."""
    trace = tmp_path / "fail.json"
    assert main(["explore", "--scenario", "fcfs-race", "--seeds", "50",
                 "--fault", "torn-send", "--expect-fail",
                 "--trace", str(trace)]) == 0
    assert trace.exists()
    assert read_decision_trace(trace)["status"] == "invariant"

    assert main(["replay", "--trace", str(trace)]) == 0
    out = capsys.readouterr().out
    assert "invariant" in out

    small = tmp_path / "small.json"
    assert main(["minimize", "--trace", str(trace),
                 "--out", str(small)]) == 0
    assert main(["replay", "--trace", str(small)]) == 0


def test_explore_minimizes_inline(tmp_path, capsys):
    trace = tmp_path / "min.json"
    assert main(["explore", "--scenario", "mixed-protocol", "--seeds", "20",
                 "--fault", "drop-wake", "--expect-fail",
                 "--trace", str(trace), "--minimize"]) == 0
    data = read_decision_trace(trace)
    assert data["status"] == "deadlock"
    assert "minimized_from" in data


def test_replay_detects_status_mismatch(tmp_path, capsys):
    trace = tmp_path / "lie.json"
    assert main(["explore", "--scenario", "fcfs-race", "--seeds", "50",
                 "--fault", "torn-send", "--expect-fail",
                 "--trace", str(trace)]) == 0
    data = read_decision_trace(trace)
    data["status"] = "deadlock"  # lie about the verdict
    from repro.obs import write_decision_trace

    write_decision_trace(data, trace)
    assert main(["replay", "--trace", str(trace)]) == 1
    assert "MISMATCH" in capsys.readouterr().out


def test_inspect_cli_replays_a_trace(tmp_path, capsys):
    from repro.inspect_cli import main as inspect_main

    trace = tmp_path / "fail.json"
    assert main(["explore", "--scenario", "fcfs-race", "--seeds", "50",
                 "--fault", "torn-send", "--expect-fail",
                 "--trace", str(trace)]) == 0
    capsys.readouterr()
    assert inspect_main(["--replay", str(trace)]) == 0
    out = capsys.readouterr().out
    assert "invariant" in out
    assert "segment:" in out  # the inspector dump of the corrupted state


def test_inspect_cli_replay_missing_file(tmp_path, capsys):
    from repro.inspect_cli import main as inspect_main

    assert inspect_main(["--replay", str(tmp_path / "nope.json")]) == 2


def test_threads_runtime_smoke(capsys):
    assert main(["explore", "--scenario", "fcfs-race",
                 "--runtime", "threads", "--repeats", "2"]) == 0
    assert "clean" in capsys.readouterr().out
