"""Live scrape endpoint and the ``top`` view.

Pins the mid-run observability contract: the stdlib HTTP server serves
a parseable Prometheus exposition, JSON findings and the timeline doc
*while workers are still feeding the recorder*; ``mpf-inspect top``
renders a frame from whatever the scrape returned.
"""

import json
import sys
import urllib.error
import urllib.request

import pytest

from repro.core.protocol import FCFS
from repro.obs import (
    HealthEngine,
    LiveTelemetryServer,
    Recorder,
    fetch_metrics,
    render_top,
    serve_tier_of,
    top_main,
)
from repro.obs.prom import parse_exposition
from repro.runtime.sim import SimRuntime


def fed_recorder() -> Recorder:
    """A recorder whose timeline saw real traffic (one quick sim run)."""
    def sender(env):
        cid = yield from env.open_send("pipe")
        for i in range(6):
            yield from env.message_send(cid, b"x" * 16)
        yield from env.message_send(cid, b"")
        yield from env.close_send(cid)

    def receiver(env):
        cid = yield from env.open_receive("pipe", FCFS)
        while (yield from env.message_receive(cid)):
            pass
        yield from env.close_receive(cid)

    rec = Recorder(causal=True, causal_max_events=4096, timeline=True)
    SimRuntime(recorder=rec).run([sender, receiver])
    return rec


def get_json(url: str):
    with urllib.request.urlopen(url, timeout=5) as resp:
        assert resp.headers["Content-Type"] == "application/json"
        return json.loads(resp.read().decode())


def test_metrics_endpoint_serves_parseable_exposition():
    rec = fed_recorder()
    with LiveTelemetryServer(rec) as server:
        metrics = fetch_metrics(server.url)
    # Strict parse (parse_exposition raises on malformed lines) plus the
    # timeline families the ISSUE's scrape gate requires.
    assert "mpf_timeline_count_total" in metrics
    assert "mpf_timeline_windows" in metrics
    assert "mpf_engine_events_total" in metrics
    sent = sum(v for lbl, v in metrics["mpf_timeline_count_total"]
               if lbl.get("metric") == "sent")
    assert sent == 7
    # Series labels are name-resolved, not slot numbers.
    series = {lbl.get("series") for lbl, _ in
              metrics["mpf_timeline_count_total"]}
    assert "circuit:pipe" in series
    # The endpoint text equals the recorder's own exposition.
    assert parse_exposition(rec.prometheus()) == metrics


def test_findings_and_timeline_endpoints():
    rec = fed_recorder()
    health = HealthEngine(rec.timeline, tier_of=serve_tier_of)
    with LiveTelemetryServer(rec, health=health) as server:
        findings = get_json(server.url + "/findings")
        tl = get_json(server.url + "/timeline")
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            get_json(server.url + "/nope")
    assert excinfo.value.code == 404
    assert isinstance(findings, list)  # healthy run: probably empty
    assert tl["width"] == rec.timeline.width
    assert tl["clock"] == "sim"
    assert tl["windows"] and tl["names"]


def test_scrape_races_live_feeding():
    """Scrapes interleaved with worker-side taps must stay parseable —
    the mid-run contract (the CI smoke gate does this over a real
    threads run; here the feeder is inline for determinism)."""
    rec = Recorder(timeline=True)
    with LiveTelemetryServer(rec) as server:
        for i in range(50):
            rec.timeline.tap_send(i % 4, 64, i % 3)
            rec.timeline.name_slot(i % 4, f"c{i % 4}")
            metrics = fetch_metrics(server.url)
            assert "mpf_timeline_count_total" in metrics
    total = sum(v for lbl, v in metrics["mpf_timeline_count_total"]
                if lbl.get("metric") == "sent")
    assert total == 50


def test_server_without_timeline_still_serves():
    rec = Recorder()
    with LiveTelemetryServer(rec) as server:
        metrics = fetch_metrics(server.url)
        assert get_json(server.url + "/timeline") == {}
        assert get_json(server.url + "/findings") == []
    assert "mpf_timeline_count_total" not in metrics


def test_render_top_table():
    rec = fed_recorder()
    with LiveTelemetryServer(rec) as server:
        metrics = fetch_metrics(server.url)
    frame = render_top(metrics)
    assert "mpf top" in frame and "engine events" in frame
    assert "circuit:pipe" in frame
    header = frame.splitlines()[1]
    for col in ("series", "sent", "recv", "avg", "peak"):
        assert col in header
    assert "\x1b[2J" not in frame
    assert render_top(metrics, clear=True).startswith("\x1b[2J")


def test_render_top_without_timeline_explains():
    assert "no timeline series" in render_top({})


def test_top_main_draws_frames_and_exits():
    rec = fed_recorder()
    frames = []
    with LiveTelemetryServer(rec) as server:
        status = top_main(server.url, interval=0.0, iterations=2,
                          out=frames.append, clear=False)
    assert status == 0
    assert len(frames) == 2
    assert all("circuit:pipe" in f for f in frames)


def test_top_main_reports_unreachable_endpoint():
    out = []
    status = top_main("http://127.0.0.1:9/", interval=0.0, iterations=1,
                      out=out.append)
    assert status == 1
    assert any("cannot scrape" in line for line in out)


@pytest.mark.skipif(not sys.platform.startswith("linux"),
                    reason="POSIX runtimes")
def test_mid_run_scrape_of_threads_run():
    """The acceptance shape: scrape /metrics while a threads run is in
    flight, gated on a strict parse."""
    import threading

    from repro.runtime.threads import ThreadRuntime

    gate = threading.Event()
    mid = threading.Event()

    def sender(env):
        cid = yield from env.open_send("jobs")
        rid = yield from env.open_receive("ready", FCFS)
        yield from env.message_receive(rid)
        for i in range(32):
            yield from env.message_send(cid, bytes([i % 251]))
            if i == 16:
                mid.set()  # half the traffic is in: scrape now
                gate.wait(10)  # hold the run open for the scrape
        yield from env.close_send(cid)
        yield from env.close_receive(rid)

    def receiver(env):
        cid = yield from env.open_receive("jobs", FCFS)
        rdy = yield from env.open_send("ready")
        yield from env.message_send(rdy, b"up")
        for _ in range(32):
            yield from env.message_receive(cid)
        yield from env.close_send(rdy)
        yield from env.close_receive(cid)

    rec = Recorder(timeline=True)
    with LiveTelemetryServer(rec) as server:
        url = server.url
        runner = threading.Thread(
            target=lambda: ThreadRuntime(recorder=rec, join_timeout=60)
            .run([sender, receiver]))
        runner.start()
        try:
            assert mid.wait(10)
            metrics = fetch_metrics(url)  # mid-run: sender gated
        finally:
            gate.set()
            runner.join(timeout=60)
        final = fetch_metrics(url)
    mid_sent = sum(v for lbl, v in metrics["mpf_timeline_count_total"]
                   if lbl.get("metric") == "sent")
    assert mid_sent >= 17  # the in-flight run is already visible
    assert "mpf_lock_acquires_total" in final  # children merged at join
    sent = sum(v for lbl, v in final["mpf_timeline_count_total"]
               if lbl.get("metric") == "sent")
    assert sent == 33  # 32 jobs + 1 ready
