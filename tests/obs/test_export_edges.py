"""Exporter edge cases: empty recorders, span limits, drop accounting.

Satellite guarantees of the causal-tracing PR: every exporter emits a
valid (if empty) document for a recorder that saw nothing, and a
recorder that hit its span limit says so loudly instead of passing a
truncated trace off as complete.
"""

import json

import pytest

from repro.core.protocol import FCFS
from repro.obs import Recorder
from repro.obs.export import chrome_trace, format_summary, to_jsonl
from repro.obs.recorder import Span
from repro.patterns import barrier
from repro.runtime.sim import SimRuntime


def sender(env):
    cid = yield from env.open_send("pipe")
    yield from barrier(env, "go", 2)
    for i in range(6):
        yield from env.message_send(cid, b"m%d" % i)
    yield from env.message_send(cid, b"")
    yield from env.close_send(cid)


def receiver(env):
    cid = yield from env.open_receive("pipe", FCFS)
    yield from barrier(env, "go", 2)
    while (yield from env.message_receive(cid)):
        pass
    yield from env.close_receive(cid)


# -- empty recorders ----------------------------------------------------------


def test_empty_recorder_exports_valid_empty_documents(tmp_path):
    rec = Recorder()
    assert rec.format_summary() == "(nothing recorded)"
    assert "(no lock activity recorded)" in rec.format_lock_profile()
    assert to_jsonl(rec) == ""
    jl = tmp_path / "empty.jsonl"
    rec.write_jsonl(str(jl))
    assert jl.read_text() == ""

    doc = chrome_trace(rec)
    assert doc["traceEvents"] == []
    assert doc["otherData"]["spans_total"] == 0
    assert json.dumps(doc)  # still a loadable trace file
    ct = tmp_path / "empty-trace.json"
    rec.write_chrome_trace(str(ct))
    assert json.loads(ct.read_text())["traceEvents"] == []


def test_spans_disabled_recorder_keeps_counters_and_exports():
    rec = Recorder(limit=0)
    SimRuntime(recorder=rec).run([sender, receiver])
    assert rec.spans == []
    assert rec.total > 0
    assert rec.dropped_spans == rec.total
    assert rec.lock_profile()  # counters complete despite zero spans
    assert to_jsonl(rec) == ""
    doc = chrome_trace(rec)
    assert doc["otherData"]["spans_recorded"] == 0
    assert doc["otherData"]["spans_dropped"] == rec.total
    # Only thread-name metadata remains (processes known from counters).
    assert {e["ph"] for e in doc["traceEvents"]} <= {"M"}


def test_causal_recorder_without_events_omits_causal_trace_keys():
    rec = Recorder(causal=True)
    doc = chrome_trace(rec)
    assert "causal_events" not in doc["otherData"]
    assert doc["traceEvents"] == []


# -- dropped-span accounting (satellite 1) ------------------------------------


def run_limited(limit: int) -> Recorder:
    rec = Recorder(limit=limit)
    SimRuntime(recorder=rec).run([sender, receiver])
    return rec


def test_dropped_spans_invariant_and_warning():
    rec = run_limited(5)
    assert rec.total == len(rec.spans) + rec.dropped_spans
    assert rec.dropped_spans > 0
    text = rec.format_summary()
    assert f"{rec.dropped_spans} of {rec.total} spans dropped" in text
    assert "counters above remain complete" in text


def test_unlimited_recorder_reports_no_drops():
    rec = run_limited(100_000)
    assert rec.dropped_spans == 0
    assert "dropped" not in rec.format_summary()


def test_snapshot_roundtrip_preserves_dropped_spans():
    rec = run_limited(5)
    snap = rec.snapshot()
    assert snap["dropped_spans"] == rec.dropped_spans
    merged = Recorder(limit=5)
    merged.clock = rec.clock
    merged.merge(snap)
    assert merged.dropped_spans == rec.dropped_spans
    assert merged.total == rec.total
    assert merged.snapshot() == snap


def test_merge_counts_spans_that_do_not_fit():
    big = run_limited(100_000)
    parent = Recorder(limit=3)
    parent.clock = big.clock
    parent.merge(big.snapshot())
    assert len(parent.spans) == 3
    assert parent.total == big.total
    assert parent.dropped_spans == big.total - 3
    assert parent.total == len(parent.spans) + parent.dropped_spans


def test_merge_accumulates_drops_from_both_sides():
    a, b = run_limited(5), run_limited(5)
    parent = Recorder(limit=5)
    parent.clock = a.clock
    parent.merge(a.snapshot())
    parent.merge(b.snapshot())
    assert parent.total == a.total + b.total
    assert parent.total == len(parent.spans) + parent.dropped_spans
    assert len(parent.spans) == 5


# -- exporter robustness ------------------------------------------------------


def test_chrome_trace_tolerates_unknown_span_kind():
    rec = Recorder()
    rec._span(Span(0.5, "p0", "mystery", "custom-thing", 0.001))
    doc = chrome_trace(rec)
    slices = [e for e in doc["traceEvents"] if e["ph"] == "X"]
    assert [e["name"] for e in slices] == ["custom-thing"]
    assert json.dumps(doc)


def test_truncated_recorder_chrome_trace_flags_truncation():
    rec = run_limited(5)
    other = chrome_trace(rec)["otherData"]
    assert other["spans_recorded"] == 5
    assert other["spans_dropped"] == rec.dropped_spans
    assert other["spans_total"] == rec.total


@pytest.mark.parametrize("limit", [0, 1, 7])
def test_jsonl_line_count_matches_stored_spans(limit, tmp_path):
    rec = run_limited(limit)
    path = tmp_path / "spans.jsonl"
    rec.write_jsonl(str(path))
    lines = path.read_text().splitlines()
    assert len(lines) == len(rec.spans) == min(limit, rec.total)
    for line in lines:
        json.loads(line)
