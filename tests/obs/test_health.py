"""Online health attribution: detectors, onset localization, emit-once.

Synthetic timelines with hand-placed ramps pin each detector's verdict
exactly — which series, which onset window, which direction — and the
online ``poll`` contract (each finding emitted exactly once, through
the optional callback, while the run is still in flight).
"""

from repro.obs import HealthEngine, Timeline, serve_tier_of
from repro.obs.health import SERVE_TIER_ORDER

WIDTH = 0.05


def ramped_timeline() -> Timeline:
    """Workers saturate at window 5, frontends later at window 7."""
    tl = Timeline(width=WIDTH)
    tl.name_slot(0, "serve.work.0")
    tl.name_slot(1, "serve.front.0")
    tl.name_slot(2, "serve.gate")  # no tier: must stay invisible
    workers = [0, 0, 0, 1, 2, 4, 6, 8, 8, 8]
    fronts = [0, 0, 0, 0, 0, 0, 1, 3, 6, 6]
    for idx, (w, f) in enumerate(zip(workers, fronts)):
        t = (idx + 0.5) * WIDTH
        tl.gauge(t, "circuit:0|depth", float(w))
        tl.gauge(t, "circuit:1|depth", float(f))
        tl.gauge(t, "circuit:2|depth", 50.0)  # flat, and tier-less
    return tl


def by_kind(findings):
    out = {}
    for f in findings:
        out.setdefault(f.kind, []).append(f)
    return out


def test_serve_tier_of_maps_topology_names():
    assert serve_tier_of("serve.front.3") == "frontends"
    assert serve_tier_of("serve.work.0") == "workers"
    assert serve_tier_of("serve.agg") == "aggregator"
    assert serve_tier_of("serve.gate") is None
    assert serve_tier_of("jobs") is None
    assert SERVE_TIER_ORDER == ("frontends", "workers", "aggregator")


def test_saturating_tier_names_first_tier_and_onset_window():
    engine = HealthEngine(ramped_timeline(), tier_of=serve_tier_of)
    kinds = by_kind(engine.scan())
    (sat,) = kinds["saturating-tier"]
    assert sat.series == "tier:workers"
    assert sat.onset_window == 5  # first window >= half the peak of 8
    assert sat.onset_time == 5 * WIDTH
    assert "workers" in sat.detail and "window 5" in sat.detail
    assert sat.data["saturated_tiers"] == ["workers", "frontends"]


def test_backpressure_order_reports_direction():
    engine = HealthEngine(ramped_timeline(), tier_of=serve_tier_of)
    kinds = by_kind(engine.scan())
    (bp,) = kinds["backpressure-order"]
    # workers (downstream of frontends) saturated first: pressure
    # propagated downstream -> upstream.
    assert bp.data["direction"] == "downstream → upstream"
    assert [o["tier"] for o in bp.data["order"]] == ["workers", "frontends"]
    assert "workers@w5" in bp.detail and "frontends@w7" in bp.detail


def test_queue_growth_localizes_circuit_by_name():
    engine = HealthEngine(ramped_timeline(), tier_of=serve_tier_of)
    kinds = by_kind(engine.scan())
    series = {f.series for f in kinds["queue-growth"]}
    # Both ramping circuits fire, name-resolved; the flat tier-less
    # circuit never does (no growth, however deep it sits).
    assert series == {"circuit:serve.work.0", "circuit:serve.front.0"}
    worker = next(f for f in kinds["queue-growth"]
                  if f.series == "circuit:serve.work.0")
    assert worker.onset_window == 5
    assert worker.data["peak_depth"] == 8.0


def test_tier_detectors_silent_without_tier_map():
    engine = HealthEngine(ramped_timeline())
    kinds = by_kind(engine.scan())
    assert "saturating-tier" not in kinds
    assert "backpressure-order" not in kinds
    assert "queue-growth" in kinds  # circuit detector still fires


def test_alloc_pressure_from_pool_ramp():
    tl = Timeline(width=WIDTH)
    for idx, level in enumerate([1, 1, 1, 2, 4, 8, 10, 12, 12]):
        tl.gauge((idx + 0.5) * WIDTH, "pool|live_blocks", float(level))
    engine = HealthEngine(tl)
    kinds = by_kind(engine.scan())
    (pool,) = kinds["alloc-pressure"]
    assert pool.series == "pool"
    assert pool.onset_window is not None
    assert pool.data["late_level"] > pool.data["early_level"]


def test_healthy_run_produces_no_findings():
    tl = Timeline(width=WIDTH)
    tl.name_slot(0, "serve.work.0")
    for idx in range(10):
        tl.gauge((idx + 0.5) * WIDTH, "circuit:0|depth", 1.0)
    assert HealthEngine(tl, tier_of=serve_tier_of).scan() == []


def test_poll_emits_each_finding_exactly_once():
    emitted = []
    engine = HealthEngine(ramped_timeline(), tier_of=serve_tier_of,
                          emit=emitted.append)
    fresh = engine.poll()
    assert fresh and emitted == fresh
    assert engine.poll() == []  # second poll: nothing new
    assert emitted == engine.findings
    keys = [(f.kind, f.series) for f in engine.findings]
    assert len(keys) == len(set(keys))


def test_poll_is_incremental_as_windows_close():
    tl = Timeline(width=WIDTH)
    tl.name_slot(0, "serve.work.0")
    engine = HealthEngine(tl, tier_of=serve_tier_of)
    # Flat early phase: nothing to report yet.
    for idx in range(4):
        tl.gauge((idx + 0.5) * WIDTH, "circuit:0|depth", 0.5)
    assert engine.poll() == []
    # The ramp arrives mid-run; the next poll finds it online.
    for idx, d in enumerate([2, 4, 8, 8], start=4):
        tl.gauge((idx + 0.5) * WIDTH, "circuit:0|depth", float(d))
    fresh = engine.poll()
    assert {f.kind for f in fresh} >= {"queue-growth", "saturating-tier"}
    assert engine.poll() == []


def test_finding_to_dict_is_json_shaped():
    engine = HealthEngine(ramped_timeline(), tier_of=serve_tier_of)
    for f in engine.scan():
        d = f.to_dict()
        assert set(d) == {"kind", "severity", "series", "detail",
                          "onset_window", "onset_time", "data"}
        assert isinstance(d["data"], dict)
