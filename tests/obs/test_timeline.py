"""Windowed timeline telemetry: merge algebra, taps, and inertness.

The load-bearing guarantees pinned here:

* attaching a timeline never perturbs the simulated schedule (fig3
  byte-identity — the tentpole's acceptance criterion, mirroring the
  causal-tracer pin in tests/obs/test_causal.py);
* window merges are associative and commutative, so the rank-order
  procs merge and any thread-join order produce the same timeline;
* the same program produces the same circuit-level counter totals on
  the simulator, real threads and forked processes — the windowed
  series are runtime-portable even though the time axis is not;
* digest buckets match the Recorder Histogram exactly, so per-window
  quantiles agree with the post-hoc aggregates.
"""

import itertools
import json
import sys

import pytest

from repro.core.protocol import FCFS
from repro.obs import Recorder, Timeline, digest_quantile, merge_timelines
from repro.obs.recorder import Histogram
from repro.obs.timeline import _bucket
from repro.runtime.procs import ProcRuntime
from repro.runtime.sim import SimRuntime
from repro.runtime.threads import ThreadRuntime

LINUX_ONLY = pytest.mark.skipif(
    not sys.platform.startswith("linux"), reason="POSIX runtimes"
)


# -- the shared workload: producer -> two FCFS consumers ---------------------
#
# Real runtimes give arbitrary interleavings, so the program uses the
# loss-free joining discipline (a "ready" handshake) before the producer
# sends — the same shape as tests/runtime/test_real_runtimes.py.

N_ITEMS = 6


def producer(env):
    cid = yield from env.open_send("jobs")
    rid = yield from env.open_receive("ready", FCFS)
    for _ in range(2):
        yield from env.message_receive(rid)
    for i in range(N_ITEMS):
        yield from env.message_send(cid, bytes([i]) * 8)
    yield from env.close_send(cid)
    yield from env.close_receive(rid)
    return "sent"


def consumer(env):
    cid = yield from env.open_receive("jobs", FCFS)
    rdy = yield from env.open_send("ready")
    yield from env.message_send(rdy, b"up")
    got = []
    for _ in range(N_ITEMS // 2):
        got.append((yield from env.message_receive(cid)))
    yield from env.close_send(rdy)
    yield from env.close_receive(cid)
    return got


WORKERS = [producer, consumer, consumer]


#: The circuit metrics whose totals are schedule-independent.  Waiting
#: metrics (chan_wait) depend on the interleaving, so they are excluded
#: from cross-runtime parity checks.
DETERMINISTIC = ("sent", "recv", "bytes_sent", "bytes_recv")


def named_counter_totals(tl: Timeline, metrics=None) -> dict[str, float]:
    """Circuit counter totals keyed by circuit *name* (slot-free)."""
    out: dict[str, float] = {}
    for key, n in tl.totals()["counters"].items():
        series, metric = key.split("|", 1)
        if not series.startswith("circuit:"):
            continue
        if metrics is not None and metric not in metrics:
            continue
        label = tl.series_label(series)
        assert not label[8:].isdigit(), f"unnamed circuit series {key}"
        out[f"{label}|{metric}"] = out.get(f"{label}|{metric}", 0) + n
    return out


# -- merge algebra -----------------------------------------------------------


def _synthetic(seed: int) -> Timeline:
    """A deterministic hand-fed timeline (no runtime, explicit times)."""
    tl = Timeline(width=0.5)
    tl.name_slot(0, "jobs")
    for i in range(5):
        t = 0.3 * (i + seed)
        tl.count(t, "circuit:0|sent", 1 + seed)
        tl.gauge(t, "circuit:0|depth", float(i * seed + 1))
        tl.observe(t, "lock:global|wait", 1e-6 * (10 ** (i % 3)) * (seed + 1))
    return tl


def test_merge_is_associative_and_commutative():
    snaps = [_synthetic(s).snapshot() for s in (1, 2, 3)]
    docs = set()
    for order in itertools.permutations(snaps):
        merged = merge_timelines(order)
        docs.add(json.dumps(merged.to_doc(), sort_keys=True))
    assert len(docs) == 1
    # Pairwise pre-merge (associativity) gives the same result too.
    left = merge_timelines(snaps[:2])
    left.merge(snaps[2])
    assert json.dumps(left.to_doc(), sort_keys=True) == docs.pop()


def test_merge_totals_are_sums():
    a, b = _synthetic(1), _synthetic(2)
    merged = merge_timelines([a.snapshot(), b.snapshot()])
    ta, tb, tm = a.totals(), b.totals(), merged.totals()
    key = "circuit:0|sent"
    assert tm["counters"][key] == ta["counters"][key] + tb["counters"][key]
    ga, gb, gm = (t["gauges"]["circuit:0|depth"] for t in (ta, tb, tm))
    assert gm[0] == ga[0] + gb[0] and gm[1] == ga[1] + gb[1]
    assert gm[2] == min(ga[2], gb[2]) and gm[3] == max(ga[3], gb[3])


def test_merge_rejects_width_mismatch():
    tl = Timeline(width=0.5)
    with pytest.raises(ValueError, match="width"):
        tl.merge(Timeline(width=0.1).snapshot())


def test_snapshot_roundtrip_preserves_names_and_windows():
    tl = _synthetic(1)
    back = merge_timelines([tl.snapshot()])
    assert back.names == tl.names
    assert json.dumps(back.to_doc(), sort_keys=True) == json.dumps(
        tl.to_doc(), sort_keys=True
    )


# -- digests match the post-hoc Histogram ------------------------------------


def test_digest_buckets_match_histogram():
    samples = (0.0, 5e-7, 1e-6, 3e-6, 1e-4, 0.5)
    hist = Histogram()
    tl = Timeline(width=1.0)
    for s in samples:
        hist.add(s)
        tl.observe(0.0, "x|wait", s)
    assert tl.totals()["digests"]["x|wait"] == hist.counts
    assert all(_bucket(s) in hist.counts for s in samples)


def test_digest_quantile_nearest_rank():
    counts = {0: 50, 4: 40, 10: 10}  # <=1us, <=16us, <=1024us
    assert digest_quantile(counts, 0.5) == pytest.approx(1e-6)
    assert digest_quantile(counts, 0.9) == pytest.approx(16e-6)
    assert digest_quantile(counts, 0.99) == pytest.approx(1024e-6)
    assert digest_quantile({}, 0.5) == 0.0


# -- tentpole acceptance: the timeline cannot perturb the simulation ---------


def test_fig3_output_byte_identical_with_timeline():
    from repro.bench.figures import fig3

    plain = fig3(quick=True)
    timed = fig3(quick=True, timeline=True)
    assert timed.format_table() == plain.format_table()
    assert json.dumps(timed.to_dict(), sort_keys=True) == json.dumps(
        plain.to_dict(), sort_keys=True
    )


def test_timeline_does_not_change_simulated_time_or_lock_profile():
    plain = Recorder()
    timed = Recorder(causal=True, causal_max_events=4096, timeline=True)
    a = SimRuntime(recorder=plain).run(WORKERS)
    b = SimRuntime(recorder=timed).run(WORKERS)
    assert b.elapsed == a.elapsed
    assert b.header == a.header
    assert timed.lock_profile() == plain.lock_profile()
    assert timed.summary() == plain.summary()


# -- taps feed the expected series on the simulator --------------------------


def test_sim_timeline_counts_match_segment_header():
    rec = Recorder(timeline=True)
    result = SimRuntime(recorder=rec).run(WORKERS)
    tl = rec.timeline
    assert tl.clock_kind == "sim"
    totals = named_counter_totals(tl)
    sends = sum(v for k, v in totals.items() if k.endswith("|sent"))
    recvs = sum(v for k, v in totals.items() if k.endswith("|recv"))
    bytes_sent = sum(v for k, v in totals.items()
                     if k.endswith("|bytes_sent"))
    assert sends == result.header["total_sends"]
    assert recvs == result.header["total_receives"]
    assert bytes_sent == result.header["total_bytes_sent"]
    assert totals["circuit:jobs|sent"] == N_ITEMS
    assert totals["circuit:ready|sent"] == 2
    # Depth gauges and pool levels were sampled.
    gauges = tl.totals()["gauges"]
    assert any(k.endswith("|depth") for k in gauges)
    assert gauges["pool|live_blocks"][0] > 0
    # The run's engine counters landed on the recorder.
    assert rec.machine["events"] > 0
    assert rec.machine["heap_pops"] > 0


def test_sim_timeline_is_deterministic():
    def one():
        rec = Recorder(timeline=True)
        SimRuntime(recorder=rec).run(WORKERS)
        return json.dumps(rec.timeline.to_doc(), sort_keys=True)

    assert one() == one()


# -- cross-runtime series parity ---------------------------------------------


@LINUX_ONLY
@pytest.mark.parametrize("kind", ["threads", "procs"])
def test_real_runtime_counter_totals_match_sim(kind):
    """Wall-clock windowing changes the time axis, never the totals:
    threads merge child timelines at join, procs merge rank-order
    snapshots across the fork — both must equal the sim's books."""
    sim_rec = Recorder(timeline=True)
    SimRuntime(recorder=sim_rec).run(WORKERS)

    rec = Recorder(timeline=True)
    rt = (ThreadRuntime(recorder=rec, join_timeout=60) if kind == "threads"
          else ProcRuntime(recorder=rec, join_timeout=60))
    result = rt.run(WORKERS)
    assert result.results["p0"] == "sent"

    assert named_counter_totals(rec.timeline, DETERMINISTIC) == \
        named_counter_totals(sim_rec.timeline, DETERMINISTIC)
    assert rec.timeline.clock_kind == "wall"
    assert sim_rec.timeline.clock_kind == "sim"
