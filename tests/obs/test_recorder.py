"""Recorder behaviour across runtimes, merging, and exporters."""

import json

import pytest

from repro.core.protocol import FCFS, FIRST_LNVC_LOCK
from repro.obs import Recorder, lock_name
from repro.obs.export import chrome_trace
from repro.patterns import barrier
from repro.runtime.procs import ProcRuntime
from repro.runtime.sim import SimRuntime
from repro.runtime.threads import ThreadRuntime

RUNTIMES = {
    "sim": lambda rec: SimRuntime(recorder=rec),
    "threads": lambda rec: ThreadRuntime(recorder=rec),
    "procs": lambda rec: ProcRuntime(recorder=rec),
}


def sender(env):
    cid = yield from env.open_send("pipe")
    # Rendezvous before sending: without it the sender could finish and
    # close (deleting the circuit and its queue, paper §3.2) before the
    # receiver even opens — real runtimes hit that race, the simulator's
    # deterministic schedule does not.
    yield from barrier(env, "go", 2)
    for i in range(6):
        yield from env.message_send(cid, b"m%d" % i)
    yield from env.message_send(cid, b"")  # stop
    yield from env.close_send(cid)


def receiver(env):
    cid = yield from env.open_receive("pipe", FCFS)
    yield from barrier(env, "go", 2)
    got = 0
    while (yield from env.message_receive(cid)):
        got += 1
    yield from env.close_receive(cid)
    return got


def run_recorded(kind: str) -> Recorder:
    rec = Recorder()
    result = RUNTIMES[kind](rec).run([sender, receiver])
    assert result.results["p1"] == 6
    return rec


# -- the ISSUE acceptance tests: 2-process FCFS on threads and procs --------


@pytest.mark.parametrize("kind", ["threads", "procs"])
def test_lock_profile_counts_two_process_fcfs(kind):
    rec = run_recorded(kind)
    profile = rec.lock_profile()
    assert profile, "real runtime recorded no lock acquisitions"
    # Both workers touch the global directory lock and the circuit lock.
    circuit_locks = [lid for lid in profile if lid >= FIRST_LNVC_LOCK]
    assert circuit_locks
    # Every explicit Acquire has a matching Release per process.
    for proc, counts in rec.summary().items():
        assert counts["Acquire"] == counts["Release"], proc
    # The clock is wall time on real runtimes.
    assert rec.clock == "wall"
    # Per-process attribution names both workers.
    assert set(rec.summary()) == {"p0", "p1"}


def test_acquire_counts_identical_across_runtimes():
    """The protocol is deterministic: the same program performs exactly
    the same lock acquisitions on the simulator, threads and procs."""
    profiles = {kind: run_recorded(kind).lock_profile() for kind in RUNTIMES}
    assert profiles["threads"] == profiles["sim"]
    assert profiles["procs"] == profiles["sim"]


def test_sim_waits_are_simulated_and_deterministic():
    a, b = run_recorded("sim"), run_recorded("sim")
    assert a.clock == "sim"
    assert a.snapshot() == b.snapshot()


# -- aggregates --------------------------------------------------------------


def test_lock_name_layout():
    assert lock_name(0) == "global"
    assert lock_name(1) == "alloc"
    assert lock_name(FIRST_LNVC_LOCK) == "lnvc0"
    assert lock_name(FIRST_LNVC_LOCK + 3) == "lnvc3"


def test_circuit_lock_stats_folds_only_lnvc_locks():
    rec = run_recorded("sim")
    agg = rec.circuit_lock_stats()
    expected = sum(
        ls.acquires for lid, ls in rec.lock_table().items()
        if lid >= FIRST_LNVC_LOCK
    )
    assert agg.acquires == expected
    assert agg.hold_seconds > 0


def test_blocking_receiver_records_chan_wait_and_reacquire():
    rec = run_recorded("sim")
    # The receiver opened before data existed at least once, so it slept
    # on the circuit's wait channel and re-entered the lock on wake.
    assert sum(rec.chan_waits.values()) >= 1
    assert any(ls.reacquires for ls in rec.lock_table().values())


def test_work_split_records_instruction_budgets():
    rec = run_recorded("sim")
    sim_ws = rec.work["send-fixed"]
    assert sim_ws.count >= 7  # 6 payloads + stop, plus barrier traffic
    assert sim_ws.seconds > 0
    wall = run_recorded("threads")
    # Charges are free on real runtimes: budgets recorded, no seconds.
    assert wall.work["send-fixed"].count == sim_ws.count
    assert wall.work["send-fixed"].seconds == 0.0
    assert wall.work["send-fixed"].instrs == sim_ws.instrs


def test_span_limit_bounds_spans_not_counters():
    rec = Recorder(limit=5)
    SimRuntime(recorder=rec).run([sender, receiver])
    assert len(rec.spans) == 5
    assert rec.total > 5
    assert rec.lock_profile()  # counters unaffected


# -- merging -----------------------------------------------------------------


def test_snapshot_merge_roundtrip():
    rec = run_recorded("sim")
    merged = Recorder()
    merged.clock = rec.clock
    merged.merge(rec.snapshot())
    assert merged.lock_profile() == rec.lock_profile()
    assert merged.summary() == rec.summary()
    assert merged.charge_breakdown() == rec.charge_breakdown()
    assert merged.snapshot() == rec.snapshot()


def test_merge_accumulates_two_children():
    parent = Recorder()
    c1, c2 = parent.child(), parent.child()
    c1.on_acquire(0.1, "p0", 2, 0.05, contended=True)
    c1.on_release(0.2, "p0", 2, 0.1)
    c2.on_acquire(0.3, "p1", 2, 0.0, contended=False)
    c2.on_charge(0.4, "p1", "app", 0.0, instrs=10)
    parent.merge(c1.snapshot())
    parent.merge(c2.snapshot())
    ls = parent.lock_table()[2]
    assert ls.acquires == 2
    assert ls.contended == 1
    assert ls.wait_seconds == pytest.approx(0.05)
    assert ls.max_wait == pytest.approx(0.05)
    assert parent.work["app"].instrs == 10
    assert parent.total == 4


def test_histogram_buckets():
    rec = Recorder()
    rec.on_acquire(0.0, "p0", 2, 0.5e-6, contended=False)   # bucket 0
    rec.on_acquire(0.0, "p0", 2, 3e-6, contended=True)      # (2,4] µs
    rec.on_acquire(0.0, "p0", 2, 2e-3, contended=True)      # ≤2.048 ms
    buckets = dict(rec.lock_table()[2].wait_hist.buckets())
    assert buckets["≤1µs"] == 1
    assert buckets["≤4µs"] == 1
    assert sum(buckets.values()) == 3


# -- exporters ---------------------------------------------------------------


def test_format_lock_profile_mentions_clock_and_names():
    rec = run_recorded("sim")
    text = rec.format_lock_profile()
    assert "sim-ms" in text
    assert "global" in text and "lnvc0" in text
    wall = run_recorded("threads")
    assert "wall-ms" in wall.format_lock_profile()


def test_format_summary_lists_labels_and_processes():
    rec = run_recorded("sim")
    text = rec.format_summary()
    assert "send-fixed" in text
    assert "p0" in text and "p1" in text


def test_jsonl_sorted_and_parseable():
    rec = run_recorded("sim")
    lines = [json.loads(line) for line in rec.jsonl().splitlines()]
    assert len(lines) == len(rec.spans)
    times = [(ln["time"], ln["process"]) for ln in lines]
    assert times == sorted(times)
    assert {"time", "process", "kind", "name", "duration"} <= set(lines[0])


def test_chrome_trace_structure():
    rec = run_recorded("sim")
    doc = chrome_trace(rec)
    events = doc["traceEvents"]
    names = {e["name"] for e in events if e["ph"] == "M"}
    assert "thread_name" in names
    slices = [e for e in events if e["ph"] == "X"]
    assert slices and all(e["dur"] >= 0 and e["ts"] >= 0 for e in slices)
    names = {e["name"] for e in slices}
    assert any(n.startswith("hold ") for n in names)   # lock hold spans
    assert "send-fixed" in names                        # charge spans
    assert json.dumps(doc)  # serializable


def test_write_exporters(tmp_path):
    rec = run_recorded("sim")
    jl, ct = tmp_path / "ev.jsonl", tmp_path / "trace.json"
    rec.write_jsonl(str(jl))
    rec.write_chrome_trace(str(ct))
    assert len(jl.read_text().splitlines()) == len(rec.spans)
    assert "traceEvents" in json.loads(ct.read_text())
