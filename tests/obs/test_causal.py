"""Per-message causal tracing: lifecycles, sojourn stats, conservation.

The load-bearing guarantees pinned here:

* attaching a tracer never perturbs the simulated schedule (fig3
  byte-identity — the tentpole's acceptance criterion);
* causal counts agree with the Recorder's work counters AND with the
  segment's own header/inspect totals (three independent books);
* the same program produces the same lifecycle counts on the simulator,
  real threads and forked processes;
* derived analyses (queue timelines, peak depth, stall detection, flow
  graphs, Prometheus exposition, Chrome async spans) stay consistent
  with the raw event list.
"""

import json

import pytest

from repro.core.inspect import inspect_segment
from repro.core.layout import MPFConfig
from repro.core.protocol import BROADCAST, FCFS, NIL
from repro.obs import (
    CausalTracer,
    Recorder,
    busiest_lnvc,
    causal_async_events,
    check_dot,
    detect_stalls,
    flow_dot,
    flow_from_causal,
    flow_from_segment,
    flow_json,
    format_causal_tail,
    format_sojourn,
    pair_deliveries,
    parse_exposition,
    peak_depth,
    queue_depth_timeline,
    sojourn_stats,
)
from repro.patterns import barrier
from repro.runtime.blocking import MPFSystem
from repro.runtime.procs import ProcRuntime
from repro.runtime.sim import SimRuntime
from repro.runtime.threads import ThreadRuntime

RUNTIMES = {
    "sim": lambda rec: SimRuntime(recorder=rec),
    "threads": lambda rec: ThreadRuntime(recorder=rec),
    "procs": lambda rec: ProcRuntime(recorder=rec),
}


def sender(env):
    cid = yield from env.open_send("pipe")
    yield from barrier(env, "go", 2)
    for i in range(6):
        yield from env.message_send(cid, b"m%d" % i)
    yield from env.message_send(cid, b"")  # stop
    yield from env.close_send(cid)


def receiver(env):
    cid = yield from env.open_receive("pipe", FCFS)
    yield from barrier(env, "go", 2)
    got = 0
    while (yield from env.message_receive(cid)):
        got += 1
    yield from env.close_receive(cid)
    return got


def run_traced(kind: str) -> Recorder:
    rec = Recorder(causal=True)
    result = RUNTIMES[kind](rec).run([sender, receiver])
    assert result.results["p1"] == 6
    return rec


# -- the workload's lifecycle arithmetic -------------------------------------
#
# 7 sends on "pipe" (6 payloads + stop), 2 arrivals on the barrier's
# FCFS leg, 1 release on its BROADCAST leg = 10 sends.  The release is
# received by BOTH participants (broadcast), so receives number 11.
# Every message is eventually reaped: 10 frees.

SENDS, RECVS, FREES = 10, 11, 10


@pytest.mark.parametrize("kind", sorted(RUNTIMES))
def test_lifecycle_counts(kind):
    c = run_traced(kind).causal
    assert len(c.sends()) == SENDS
    assert len(c.recvs()) == RECVS
    assert len(c.frees()) == FREES
    assert c.total == SENDS + RECVS + FREES
    assert c.dropped == 0


def test_broadcast_send_appears_in_multiple_pairs():
    c = run_traced("sim").causal
    bcast_recvs = [e for e in c.recvs() if not e.fcfs]
    assert len(bcast_recvs) == 2  # one barrier release, two participants
    assert len({e.key for e in bcast_recvs}) == 1
    pairs = pair_deliveries(c)
    assert len(pairs) == RECVS  # every recv matched to its send
    sends_in_pairs = [s.key for s, _ in pairs]
    assert sends_in_pairs.count(bcast_recvs[0].key) == 2


def test_sim_trace_is_deterministic():
    a, b = run_traced("sim").causal, run_traced("sim").causal
    assert a.snapshot() == b.snapshot()


def test_timestamps_causally_ordered_on_sim():
    c = run_traced("sim").causal
    for e in c.sends() + c.recvs():
        assert e.t0 <= e.t1 <= e.t2 <= e.t3
    for s, r in pair_deliveries(c):
        assert s.t3 <= r.t1  # linked before claimed, in simulated time


# -- conservation: causal trace == Recorder == segment header ----------------


def _partial_drain(env):
    """Loop-back circuit left open with 2 of 5 messages still queued."""
    sid = yield from env.open_send("loop")
    rid = yield from env.open_receive("loop", FCFS)
    for i in range(5):
        yield from env.message_send(sid, bytes(4 + i))
    for _ in range(3):
        yield from env.message_receive(rid)
    return "done"


def test_conservation_across_three_books():
    rec = Recorder(causal=True)
    rt = SimRuntime(recorder=rec)
    rt.run([_partial_drain], cfg=MPFConfig(max_lnvcs=4, max_processes=2))
    c = rec.causal
    info = inspect_segment(rt.last_view)
    circ = info.circuit("loop")
    (key,) = c.lnvc_keys()

    # Book 1 vs book 2: causal counts match the Recorder's work counters.
    assert len(c.sends()) == rec.work["send-fixed"].count == 5
    assert len(c.recvs()) == rec.work["recv-fixed"].count == 3

    # Book 1 vs book 3: causal counts match the segment's own counters.
    assert len(c.sends()) == info.total_sends == circ.total_enqueued
    assert len(c.recvs()) == info.total_receives
    assert len(c.frees()) == 3  # the three drained messages were reaped

    # Byte conservation: sent == freed + still queued (live_bytes).
    sent_bytes = sum(e.length for e in c.sends())
    freed_bytes = sum(e.length for e in c.frees())
    assert sent_bytes - freed_bytes == info.live_bytes
    assert {m.seqno for m in circ.messages} == {
        e.seqno for e in c.sends()
    } - {e.seqno for e in c.frees()}

    # Depth timeline: exact, ends at the segment's queued count, and its
    # peak equals the circuit's hwm_nmsgs high-water mark.
    timeline = queue_depth_timeline(c, *key)
    assert len(timeline) == 5 + 3
    assert timeline[-1][1] == circ.queued == 2
    assert peak_depth(c, *key) == circ.peak_queued == 5


# -- tentpole acceptance: tracing cannot perturb the simulation --------------


def test_fig3_output_byte_identical_with_tracing():
    from repro.bench.figures import fig3

    plain = fig3(quick=True)
    traced = fig3(quick=True, causal=True)
    assert traced.format_table() == plain.format_table()
    assert json.dumps(traced.to_dict(), sort_keys=True) == json.dumps(
        plain.to_dict(), sort_keys=True
    )


def test_tracing_does_not_change_simulated_time_or_lock_profile():
    plain, traced = Recorder(), Recorder(causal=True)
    a = SimRuntime(recorder=plain).run([sender, receiver])
    b = SimRuntime(recorder=traced).run([sender, receiver])
    assert b.elapsed == a.elapsed
    assert traced.lock_profile() == plain.lock_profile()
    assert traced.summary() == plain.summary()


# -- sojourn statistics ------------------------------------------------------


def test_sojourn_stats_cover_every_stage():
    c = run_traced("sim").causal
    stats = sojourn_stats(c)
    # Every circuit that delivered a message gets stats.
    assert set(stats) == {e.lnvc for e in c.recvs()}
    pipe = stats[busiest_lnvc(c)]
    assert pipe["e2e"].count == 7
    for stage in ("alloc", "copy_in", "link", "resident", "copy_out", "e2e"):
        assert pipe[stage].count == 7
        assert pipe[stage].p50 >= 0.0
        assert pipe[stage].p50 <= pipe[stage].p95 <= pipe[stage].p99
    # e2e dominates each of its parts.
    assert pipe["e2e"].p50 >= pipe["copy_in"].p50
    assert pipe["e2e"].p50 >= pipe["resident"].p50


def test_busiest_lnvc_is_the_data_circuit():
    c = run_traced("sim").causal
    key = busiest_lnvc(c)
    assert sum(1 for e in c.sends() if e.lnvc == key) == 7
    assert busiest_lnvc(CausalTracer()) is None


def test_format_sojourn_renders_table():
    c = run_traced("sim").causal
    text = format_sojourn(c)
    assert "e2e-p50" in text and "lnvc" in text
    assert format_sojourn(CausalTracer()) == "(no complete deliveries traced)"


def test_format_causal_tail_lists_recent_events():
    c = run_traced("sim").causal
    text = format_causal_tail(c, n=5)
    assert len(text.splitlines()) == 5
    assert "fcfs take" in text or "reaped" in text


# -- stall / backpressure detection ------------------------------------------


def test_detect_stalls_flags_pool_exhaustion():
    c = CausalTracer()
    c.on_pool(0, 123)  # a successful pop
    c.on_pool(0, NIL)  # pool exhausted
    findings = detect_stalls(c)
    assert any("exhausted" in f for f in findings)


def test_detect_stalls_flags_undrained_queue():
    c = CausalTracer(clock=lambda: 0.0)
    for i in range(8):
        c.on_send(0, 0, 0, i, 4, 1, i + 1, 0.0, 0.0, 0.0)
    findings = detect_stalls(c)
    assert any("not draining" in f for f in findings)


def test_detect_stalls_quiet_on_healthy_run():
    c = run_traced("sim").causal
    assert detect_stalls(c) == []


# -- flow graphs -------------------------------------------------------------


def _bcast_sender(env):
    cid = yield from env.open_send("bc")
    yield from barrier(env, "go", 3)
    for i in range(4):
        yield from env.message_send(cid, b"m%d" % i)
    yield from env.close_send(cid)


def _bcast_receiver(env):
    cid = yield from env.open_receive("bc", BROADCAST)
    yield from barrier(env, "go", 3)
    for _ in range(4):
        yield from env.message_receive(cid)
    yield from env.close_receive(cid)
    return "ok"


def test_flow_from_causal_counts_broadcast_fanout():
    rec = Recorder(causal=True)
    SimRuntime(recorder=rec).run(
        [_bcast_sender, _bcast_receiver, _bcast_receiver]
    )
    g = flow_from_causal(rec.causal)
    bc = [k for k, e in g.sends.items() if e[0] == 4]
    assert len(bc) == 1  # p0 sent 4 messages into the bc circuit
    (sender_pid, bc_lnvc) = bc[0]
    assert sender_pid == 0
    # Both receivers drained all four copies.
    fanout = [w for (lnvc, _pid), w in g.recvs.items() if lnvc == bc_lnvc]
    assert sorted(w[0] for w in fanout) == [4, 4]
    doc = json.loads(flow_json(g))
    assert doc["lnvcs"] and doc["edges"]


def test_flow_dot_is_wellformed_and_deterministic():
    rec = Recorder(causal=True)
    SimRuntime(recorder=rec).run([sender, receiver])
    dot = flow_dot(flow_from_causal(rec.causal))
    assert check_dot(dot) > 0
    rec2 = Recorder(causal=True)
    SimRuntime(recorder=rec2).run([sender, receiver])
    assert flow_dot(flow_from_causal(rec2.causal)) == dot
    with pytest.raises(ValueError):
        check_dot("digraph { broken")


def test_flow_from_segment_matches_live_state():
    rec = Recorder(causal=True)
    rt = SimRuntime(recorder=rec)
    rt.run([_partial_drain], cfg=MPFConfig(max_lnvcs=4, max_processes=2))
    g = flow_from_segment(inspect_segment(rt.last_view))
    assert check_dot(flow_dot(g)) > 0
    # Queued messages attribute their senders; receiver shows 3 reads.
    assert sum(e[0] for e in g.sends.values()) == 2  # 2 still queued
    assert sum(e[0] for e in g.recvs.values()) == 3


# -- Prometheus exposition ---------------------------------------------------


def test_prometheus_exposition_parses_and_conserves():
    rec = run_traced("sim")
    metrics = parse_exposition(rec.prometheus())
    c = rec.causal
    assert sum(v for _, v in metrics["mpf_messages_sent_total"]) == SENDS
    assert sum(v for _, v in metrics["mpf_messages_received_total"]) == RECVS
    assert metrics["mpf_causal_events_total"] == [({}, c.total)]
    sent_bytes = sum(e.length for e in c.sends())
    assert sum(v for _, v in metrics["mpf_message_bytes_sent_total"]) == sent_bytes
    # Sojourn summary carries stage+quantile labels.
    labels = {tuple(sorted(lbl)) for lbl, _ in
              metrics["mpf_message_sojourn_seconds"]}
    assert all(("lnvc", "quantile", "stage") == t for t in labels)


def test_prometheus_without_causal_omits_message_metrics():
    rec = Recorder()
    SimRuntime(recorder=rec).run([sender, receiver])
    metrics = parse_exposition(rec.prometheus())
    assert "mpf_lock_acquires_total" in metrics
    assert "mpf_messages_sent_total" not in metrics


# -- Chrome trace async spans ------------------------------------------------


def test_chrome_trace_gains_async_message_spans():
    rec = run_traced("sim")
    doc = rec.chrome_trace()
    assert json.dumps(doc)
    msg = [e for e in doc["traceEvents"] if e.get("cat") == "msg"]
    begins = [e for e in msg if e["ph"] == "b"]
    ends = [e for e in msg if e["ph"] == "e"]
    keys = {e.key for e in rec.causal.events}
    assert len(begins) == len(ends) == len(keys)
    assert {e["id"] for e in begins} == {
        f"{s}.{g}.{q}" for (s, g, q) in keys
    }
    assert doc["otherData"]["causal_events"] == rec.causal.total
    # Standalone helper agrees with what the exporter embedded.
    assert causal_async_events(rec.causal) == msg


# -- blocking (posix-style) clients ------------------------------------------


def test_blocking_client_traces_wall_clock_lifecycles():
    system = MPFSystem(MPFConfig(max_lnvcs=4, max_processes=2))
    rec = Recorder(causal=True)
    mpf = system.client(0, recorder=rec)
    sid = mpf.open_send("loop")
    rid = mpf.open_receive("loop", FCFS)
    for _ in range(4):
        mpf.message_send(sid, b"x" * 8)
        assert mpf.message_receive(rid) == b"x" * 8
    mpf.close_receive(rid)
    mpf.close_send(sid)
    c = rec.causal
    assert len(c.sends()) == len(c.recvs()) == len(c.frees()) == 4
    # Wall clock: strictly positive, ordered timestamps.
    for e in c.sends():
        assert 0 < e.t0 <= e.t1 <= e.t2 <= e.t3


# -- bounding and merging ----------------------------------------------------


def test_tracer_limit_bounds_events_not_totals():
    c = CausalTracer(limit=2, clock=lambda: 0.0)
    for i in range(5):
        c.on_send(0, 0, 0, i, 4, 1, 1, 0.0, 0.0, 0.0)
    assert len(c.events) == 2
    assert c.total == 5
    assert c.dropped == 3
    assert f"{c.dropped}" in format_sojourn(c) or "dropped" in format_causal_tail(c)


def test_tracer_merge_accounts_for_drops():
    child = CausalTracer(limit=2, clock=lambda: 0.0)
    for i in range(5):
        child.on_send(0, 0, 0, i, 4, 1, 1, 0.0, 0.0, 0.0)
    child.on_pool(0, 123)
    parent = CausalTracer(limit=3)
    parent.merge(child.snapshot())
    assert parent.total == 5
    assert len(parent.events) == 2
    assert parent.dropped == 3
    assert parent.pool_allocs == {0: 1}


def test_recorder_snapshot_roundtrip_preserves_causal():
    rec = run_traced("sim")
    merged = Recorder()
    merged.clock = rec.clock
    merged.merge(rec.snapshot())
    assert merged.causal is not None
    assert merged.snapshot() == rec.snapshot()


# -- model-checker integration ----------------------------------------------


def test_run_schedule_causal_is_inert_and_deterministic():
    from repro.check.scenarios import SCENARIOS
    from repro.check.scheduler import PrefixPolicy, run_schedule

    scenario = SCENARIOS["fcfs-race"]
    plain = run_schedule(scenario, PrefixPolicy([]))
    traced = run_schedule(scenario, PrefixPolicy([]), causal=True)
    assert plain.causal is None
    assert traced.status == plain.status == "ok"
    assert traced.decisions == plain.decisions
    assert traced.events == plain.events
    assert traced.causal is not None and traced.causal.events
    again = run_schedule(scenario, PrefixPolicy([]), causal=True)
    assert again.causal.snapshot() == traced.causal.snapshot()


def test_make_trace_embeds_replayable_causal_tail():
    from repro.check.replay import make_trace, replay_trace
    from repro.check.scenarios import SCENARIOS
    from repro.check.scheduler import PrefixPolicy, run_schedule

    scenario = SCENARIOS["fcfs-race"]
    outcome = run_schedule(scenario, PrefixPolicy([]), causal=True)
    trace = make_trace(scenario, outcome, causal=outcome.causal)
    assert trace["causal_events"]
    assert len(trace["causal_events"]) <= 200
    assert json.dumps(trace)  # persists as plain JSON
    # The extra key is tolerated by replay.
    replayed = replay_trace(trace)
    assert replayed.status == trace["status"]


def test_torn_send_fault_is_visible_in_causal_trace():
    from repro.check.scenarios import SCENARIOS
    from repro.check.scheduler import PrefixPolicy, run_schedule

    scenario = SCENARIOS["fcfs-race"]
    outcome = run_schedule(scenario, PrefixPolicy([]), fault="torn-send",
                           causal=True)
    # Whatever the verdict, the torn sends themselves must be traced.
    key = busiest_lnvc(outcome.causal)
    data_sends = [e for e in outcome.causal.sends() if e.lnvc == key]
    assert len(data_sends) == 8  # 2 senders x 4 racing messages
    assert {e.pid for e in data_sends} == {0, 1}
