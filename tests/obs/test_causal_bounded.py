"""Bounded causal tracing (``causal_max_events=N``): stride sampling,
the exact e2e latency sketch, and the fused-receive grace buffer."""

import pytest

from repro.core.protocol import FCFS
from repro.obs import Recorder
from repro.obs.causal import CausalTracer, StageStats
from repro.patterns import barrier
from repro.runtime.sim import SimRuntime
from repro.runtime.threads import ThreadRuntime

N_MSGS = 200


def sender(env):
    cid = yield from env.open_send("pipe")
    yield from barrier(env, "go", 2)
    for i in range(N_MSGS):
        yield from env.message_send(cid, b"m%d" % i)
    yield from env.message_send(cid, b"")  # stop
    yield from env.close_send(cid)


def receiver(env):
    cid = yield from env.open_receive("pipe", FCFS)
    yield from barrier(env, "go", 2)
    got = 0
    while (yield from env.message_receive(cid)):
        got += 1
    yield from env.close_receive(cid)
    return got


def run_bounded(max_events, runtime="sim"):
    rec = Recorder(causal=True, causal_max_events=max_events)
    rt = SimRuntime(recorder=rec) if runtime == "sim" \
        else ThreadRuntime(recorder=rec)
    result = rt.run([sender, receiver])
    assert result.results["p1"] == N_MSGS
    return rec.causal


def test_stride_doubles_to_respect_the_bound():
    tracer = run_bounded(64)
    assert tracer.stride > 1
    assert len(tracer.events) <= 64
    # The kept subset is exactly the stride-sampled seqnos.
    assert all(e.seqno % tracer.stride == 0 for e in tracer.events)


def test_sampled_lifecycles_stay_complete():
    tracer = run_bounded(64)
    seqnos = {e.seqno for e in tracer.events if e.kind == "send"}
    for ev in tracer.events:
        if ev.kind in ("recv", "free"):
            assert ev.seqno in seqnos  # no torn lifecycles in the sample


def test_e2e_sketch_is_exact_not_sampled():
    tracer = run_bounded(64)
    # Every delivered message contributes one e2e sample, even though
    # the event log keeps only 1-in-stride lifecycles.  The workload
    # delivers N_MSGS + stop + barrier legs.
    assert len(tracer.e2e) >= N_MSGS
    stats = StageStats(list(tracer.e2e))
    assert 0.0 < stats.quantile_fine(0.5) <= stats.p999


def test_unbounded_mode_keeps_every_event():
    tracer = run_bounded(None)
    assert tracer.stride == 1
    sends = sum(1 for e in tracer.events if e.kind == "send")
    assert sends == N_MSGS + 1 + 2 + 1  # payloads, stop, barrier legs


def test_e2e_requires_bounded_mode():
    tracer = CausalTracer()
    with pytest.raises(ValueError):
        tracer.e2e_stats()


def test_grace_buffer_pairs_fused_reaps():
    # Under the fused sim engine the reap of a just-retired message can
    # fire on_free before the section-end on_recv; the grace buffer must
    # still pair those deliveries into e2e samples.  Compare against the
    # delivered count rather than an exact event interleaving.
    tracer = run_bounded(32)
    orphans = getattr(tracer, "_orphans", None)
    assert not orphans  # every recv found its send timestamp
    assert len(tracer.e2e) >= N_MSGS


def test_snapshot_roundtrip_preserves_sketch_and_stride():
    tracer = run_bounded(64)
    snap = tracer.snapshot()
    assert snap["max_events"] == 64
    assert snap["stride"] == tracer.stride
    clone = CausalTracer(max_events=64)
    clone.merge(snap)
    assert clone.stride >= tracer.stride
    assert len(clone.e2e) == len(tracer.e2e)


def test_bounded_tracing_on_threads_runtime():
    tracer = run_bounded(64, runtime="threads")
    assert len(tracer.events) <= 64
    assert len(tracer.e2e) >= N_MSGS


def test_quantile_fine_nearest_rank():
    stats = StageStats([float(i) for i in range(1, 1001)])
    assert stats.quantile_fine(0.5) == 500.0
    assert stats.quantile_fine(0.999) == 999.0
    assert stats.p999 == 999.0
    # The coarse archive-facing quantile is untouched by the fine path.
    assert stats.quantile(0.5) == stats.p50


def test_stats_quantiles_empty_and_singleton():
    assert StageStats([]).quantile_fine(0.99) == 0.0
    assert StageStats([3.5]).p999 == 3.5
