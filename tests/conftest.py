"""Shared pytest fixtures for the MPF reproduction test suite."""

from __future__ import annotations

import pytest

from repro.testing import DirectRunner, make_view


@pytest.fixture
def view():
    """A freshly formatted small segment."""
    return make_view()


@pytest.fixture
def runner(view):
    """A :class:`repro.testing.DirectRunner` over the ``view`` fixture."""
    return DirectRunner(view)
