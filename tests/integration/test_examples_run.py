"""Every example script must run to completion successfully.

Examples are executable documentation; this keeps them from rotting.
Each asserts its own correctness internally (solutions verified, totals
checked), so a zero exit code is a real guarantee.
"""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES = sorted(
    (pathlib.Path(__file__).resolve().parents[2] / "examples").glob("*.py")
)


def test_examples_exist():
    names = {p.name for p in EXAMPLES}
    assert {"quickstart.py", "gauss_jordan_demo.py", "sor_demo.py"} <= names
    assert len(EXAMPLES) >= 3


@pytest.mark.parametrize("script", EXAMPLES, ids=lambda p: p.name)
def test_example_runs_clean(script):
    if script.name == "independent_processes.py" and not sys.platform.startswith(
        "linux"
    ):
        pytest.skip("POSIX shared memory")
    proc = subprocess.run(
        [sys.executable, str(script)],
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert proc.returncode == 0, (
        f"{script.name} failed:\n{proc.stdout}\n{proc.stderr}"
    )
    assert proc.stdout.strip(), f"{script.name} printed nothing"
