"""Integration scenarios drawn directly from the paper's text."""

import pytest

from repro.core.inspect import inspect_segment
from repro.core.protocol import BROADCAST, FCFS
from repro.machine.engine import DeadlockError
from repro.runtime.sim import SimRuntime
from repro.runtime.threads import ThreadRuntime


def test_conversation_participants_enter_and_leave_freely():
    """§1: "Participants (parallel processes) can enter or leave a
    conversation at any time" — a rolling membership where each process
    joins, speaks, listens, and leaves while others continue."""

    def participant(env):
        inn = yield from env.open_receive("salon", FCFS)
        out = yield from env.open_send("salon")
        yield from env.message_send(out, f"hello from {env.rank}".encode())
        heard = []
        for _ in range(2):
            msg = yield from env.message_receive(inn)
            heard.append(msg)
            # Everyone forwards one remark: n hellos + n forwards feed
            # exactly the 2n receives, on any interleaving.
            if len(heard) == 1:
                yield from env.message_send(out, b"(passing along) " + msg)
        yield from env.close_send(out)
        yield from env.close_receive(inn)
        return len(heard)

    result = SimRuntime().run([participant] * 4)
    assert all(v == 2 for v in result.results.values())
    assert result.header["live_lnvcs"] == 0


def test_lecture_vs_discussion_vs_dialogue_coexist():
    """§1: LNVCs support dialogue, group discussion and lecture shapes
    simultaneously on distinct circuits of one segment."""

    def speaker(env):
        mic = yield from env.open_send("lecture")
        seats = yield from env.open_receive("rsvp", FCFS)
        for _ in range(2):
            yield from env.message_receive(seats)
        yield from env.message_send(mic, b"slide")
        yield from env.close_send(mic)
        yield from env.close_receive(seats)
        # Dialogue with listener 1 on a private pair of circuits.
        q = yield from env.open_receive("q.to.speaker", FCFS)
        a = yield from env.open_send("a.to.listener")
        question = yield from env.message_receive(q)
        yield from env.message_send(a, b"answer to " + question)
        yield from env.close_send(a)
        yield from env.close_receive(q)

    def listener(env):
        ear = yield from env.open_receive("lecture", BROADCAST)
        hand = yield from env.open_send("rsvp")
        yield from env.message_send(hand, b"in")
        slide = yield from env.message_receive(ear)
        yield from env.close_send(hand)
        yield from env.close_receive(ear)
        if env.rank == 1:
            q = yield from env.open_send("q.to.speaker")
            a = yield from env.open_receive("a.to.listener", FCFS)
            yield from env.message_send(q, b"why?")
            answer = yield from env.message_receive(a)
            yield from env.close_send(q)
            yield from env.close_receive(a)
            return (slide, answer)
        return (slide, None)

    result = SimRuntime().run([speaker, listener, listener])
    assert result.results["p1"] == (b"slide", b"answer to why?")
    assert result.results["p2"] == (b"slide", None)


def test_lost_message_scenario_of_section_3_2():
    """§3.2: "a sending process might want to open a send connection on
    an LNVC, send some messages, and then close the connection.
    However, if none of the processes intending to receive these
    messages have established a receiver connection before the closing
    of the sender connection, the messages could be lost"."""

    def hasty_sender(env):
        cid = yield from env.open_send("risky")
        yield from env.message_send(cid, b"important")
        yield from env.close_send(cid)  # circuit deleted here

    def late_receiver(env):
        yield from env.compute(instrs=1_000_000)
        cid = yield from env.open_receive("risky", FCFS)
        yield from env.message_receive(cid)  # never arrives

    with pytest.raises(DeadlockError):
        SimRuntime().run([hasty_sender, late_receiver])


def test_lost_message_avoided_by_keeping_connection():
    """...and the §3.2 remedy: hold the send connection open until the
    receiver exists, then the queued message is delivered."""

    def careful_sender(env):
        cid = yield from env.open_send("safe")
        yield from env.message_send(cid, b"important")
        ack = yield from env.open_receive("safe.ack", FCFS)
        yield from env.message_receive(ack)
        yield from env.close_send(cid)
        yield from env.close_receive(ack)

    def late_receiver(env):
        yield from env.compute(instrs=1_000_000)
        cid = yield from env.open_receive("safe", FCFS)
        got = yield from env.message_receive(cid)
        ack = yield from env.open_send("safe.ack")
        yield from env.message_send(ack, b"got it")
        yield from env.close_send(ack)
        yield from env.close_receive(cid)
        return got

    result = SimRuntime().run([careful_sender, late_receiver])
    assert result.results["p1"] == b"important"


def test_check_receive_race_documented_in_section_2():
    """§2: after a successful check, "another process with a FCFS
    receive connection for lnvc_id may acquire the message before the
    checking process can receive the message".  We stage exactly that
    interleaving on the simulator."""

    def sender(env):
        cid = yield from env.open_send("c")
        hello = yield from env.open_receive("hello", FCFS)
        for _ in range(2):
            yield from env.message_receive(hello)
        yield from env.message_send(cid, b"the one message")

    def checker(env):
        cid = yield from env.open_receive("c", FCFS)
        h = yield from env.open_send("hello")
        yield from env.message_send(h, b"hi")
        # The thief holds back until told, so this poll terminates.
        while not (yield from env.check_receive(cid)):
            yield from env.compute(instrs=500)
        first = yield from env.check_receive(cid)
        go = yield from env.open_send("go")
        yield from env.message_send(go, b"now")
        yield from env.close_send(go)
        # Dawdle after the positive check; the thief strikes meanwhile.
        yield from env.compute(instrs=2_000_000)
        second = yield from env.check_receive(cid)
        return ("checker", first, second)

    def thief(env):
        cid = yield from env.open_receive("c", FCFS)
        h = yield from env.open_send("hello")
        yield from env.message_send(h, b"hi")
        go = yield from env.open_receive("go", FCFS)
        yield from env.message_receive(go)
        got = yield from env.message_receive(cid)
        yield from env.close_receive(go)
        return ("thief", got)

    result = SimRuntime().run([sender, checker, thief])
    assert result.results["p2"] == ("thief", b"the one message")
    # The checker's positive check went stale before it could receive.
    assert result.results["p1"] == ("checker", 1, 0)


def test_structural_equality_sim_vs_threads():
    """The simulator and the thread runtime execute the same protocol:
    identical final segment state for a nontrivial program."""

    def producer(env):
        cid = yield from env.open_send("stream")
        hello = yield from env.open_receive("hello", FCFS)
        for _ in range(2):
            yield from env.message_receive(hello)
        for i in range(10):
            yield from env.message_send(cid, bytes([i]) * (i + 1))
        # Leave the stream open: queued state must match across runtimes.
        return "ok"

    def consumer(env):
        cid = yield from env.open_receive("stream", FCFS)
        h = yield from env.open_send("hello")
        yield from env.message_send(h, b"hi")
        got = []
        for _ in range(3):
            got.append((yield from env.message_receive(cid)))
        return len(got)

    workers = [producer, consumer, consumer]
    sim = SimRuntime()
    thr = ThreadRuntime(join_timeout=60)
    r1 = sim.run(workers)
    r2 = thr.run(workers)
    i1 = inspect_segment(sim.last_view)
    i2 = inspect_segment(thr.last_view)
    c1, c2 = i1.circuit("stream"), i2.circuit("stream")
    assert c1.queued == c2.queued == 4  # 10 sent, 2x3 consumed
    assert c1.total_enqueued == c2.total_enqueued == 10
    assert r1.header["total_bytes_sent"] == r2.header["total_bytes_sent"]


def test_sim_timing_regression_guard():
    """Golden value: any change to the calibrated cost model shows up
    here first (update EXPERIMENTS.md when it legitimately moves)."""

    def pair():
        def sender(env):
            cid = yield from env.open_send("c")
            for _ in range(4):
                yield from env.message_send(cid, b"x" * 500)

        def receiver(env):
            cid = yield from env.open_receive("c", FCFS)
            for _ in range(4):
                yield from env.message_receive(cid)

        return [sender, receiver]

    a = SimRuntime().run(pair()).elapsed
    b = SimRuntime().run(pair()).elapsed
    assert a == b  # exact determinism
    assert 0.05 < a < 0.2  # ~11ms/send + ~10ms/receive x 4, overlapped
