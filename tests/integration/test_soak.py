"""Soak test: a 20-process mixed workload at the Balance's full size.

One deterministic simulated run exercising every primitive, both
protocols, circuit churn and deep queues at the paper's machine scale,
with conservation checked at the end.  This is the "whole system under
sustained load" test the unit suite cannot provide.
"""

from repro.core.inspect import check_invariants
from repro.core.layout import MPFConfig
from repro.core.protocol import BROADCAST, FCFS
from repro.patterns import barrier
from repro.runtime.sim import SimRuntime


def test_twenty_process_mixed_soak():
    n_workers, rounds = 19, 6  # + 1 hub = the Balance's 20 processors

    def hub(env):
        n = n_workers
        intake = yield from env.open_receive("soak.intake", FCFS)
        news = yield from env.open_send("soak.news")
        rsvp = yield from env.open_receive("soak.rsvp", FCFS)
        for _ in range(n):
            yield from env.message_receive(rsvp)
        handled = 0
        for _ in range(rounds):
            # Broadcast a round marker, then absorb one report per worker.
            yield from env.message_send(news, b"round")
            for _ in range(n):
                got = yield from env.message_receive(intake)
                handled += len(got)
        yield from barrier(env, "soak.done", n + 1)
        yield from env.close_receive(intake)
        yield from env.close_send(news)
        yield from env.close_receive(rsvp)
        return handled

    def worker(env):
        me = env.rank
        news = yield from env.open_receive("soak.news", BROADCAST)
        rsvp = yield from env.open_send("soak.rsvp")
        yield from env.message_send(rsvp, b"in")
        intake = yield from env.open_send("soak.intake")
        # A private churn circuit opened and torn down every round.
        for rnd in range(rounds):
            yield from env.message_receive(news)  # round marker
            scratch = yield from env.open_send(f"soak.scratch.{me}")
            sid = yield from env.open_receive(f"soak.scratch.{me}", FCFS)
            for i in range(4):
                yield from env.message_send(scratch, bytes([me, rnd, i]) * 30)
            total = 0
            while (yield from env.check_receive(sid)):
                total += len((yield from env.message_receive(sid)))
            yield from env.close_send(scratch)
            yield from env.close_receive(sid)
            yield from env.compute(flops=500)
            yield from env.message_send(intake, bytes([me]) * (10 + rnd))
        yield from barrier(env, "soak.done", n_workers + 1)
        yield from env.close_receive(news)
        yield from env.close_send(rsvp)
        yield from env.close_send(intake)
        return "done"

    cfg = MPFConfig(
        max_lnvcs=64,
        max_processes=20,
        max_messages=1024,
        message_pool_bytes=1 << 20,
    )
    runtime = SimRuntime()
    result = runtime.run([hub] + [worker] * n_workers, cfg=cfg)

    # Everyone finished; the hub absorbed every report byte.
    assert result.results["p0"] == sum(
        n_workers * (10 + rnd) for rnd in range(rounds)
    )
    assert all(result.results[f"p{i}"] == "done" for i in range(1, 20))

    # Conservation at scale: nothing leaked anywhere.
    check_invariants(runtime.last_view, expect_empty=True)

    # Substantial traffic actually happened.
    assert result.header["total_sends"] > 500
    assert result.report.lock_acquires > 2000
    # Determinism even for this program.
    again = SimRuntime().run([hub] + [worker] * n_workers, cfg=cfg)
    assert again.elapsed == result.elapsed
