"""The tutorial's runnable snippets, executed (docs/tutorial.md)."""

import struct

import pytest

from repro import BROADCAST, FCFS, SimRuntime, ThreadRuntime, Tracer
from repro.machine.engine import DeadlockError
from repro.patterns import Mailboxes


def loner(env):
    cid = yield from env.open_send("notes-to-self")
    yield from env.open_receive("notes-to-self", FCFS)
    yield from env.message_send(cid, b"remember the milk")
    note = yield from env.message_receive(cid)
    yield from env.close_send(cid)
    yield from env.close_receive(cid)
    return note


def test_section_1_loopback():
    assert SimRuntime().run([loner]).results == {"p0": b"remember the milk"}


def test_section_2_lifetime_bug_detected():
    def hasty(env):
        cid = yield from env.open_send("jobs")
        yield from env.message_send(cid, b"job 1")
        yield from env.close_send(cid)

    def worker(env):
        yield from env.compute(instrs=10_000_000)  # arrives after the close
        cid = yield from env.open_receive("jobs", FCFS)
        return (yield from env.message_receive(cid))

    with pytest.raises(DeadlockError):
        SimRuntime().run([hasty, worker])


def boss(env):
    jobs = yield from env.open_send("jobs")
    rsvp = yield from env.open_receive("rsvp", FCFS)
    for _ in range(3):
        yield from env.message_receive(rsvp)
    for i in range(6):
        yield from env.message_send(jobs, f"task {i}".encode())
    yield from env.close_send(jobs)
    yield from env.close_receive(rsvp)


def make_member(protocol, quota):
    def member(env):
        inbox = yield from env.open_receive("jobs", protocol)
        rsvp = yield from env.open_send("rsvp")
        yield from env.message_send(rsvp, b"here")
        got = []
        for _ in range(quota):
            got.append((yield from env.message_receive(inbox)))
        yield from env.close_send(rsvp)
        yield from env.close_receive(inbox)
        return got

    return member


def test_section_3_fanout():
    r = SimRuntime().run(
        [boss, make_member(FCFS, 3), make_member(FCFS, 3),
         make_member(BROADCAST, 6)]
    )
    split = sorted(r.results["p1"] + r.results["p2"])
    assert split == [f"task {i}".encode() for i in range(6)]
    assert r.results["p3"] == [f"task {i}".encode() for i in range(6)]


def relaxer(env):
    left = env.rank - 1 if env.rank > 0 else None
    right = env.rank + 1 if env.rank < env.nprocs - 1 else None
    boxes = Mailboxes(env, "halo")
    yield from boxes.connect([p for p in (left, right) if p is not None])
    value = float(env.rank)
    for _ in range(10):
        payloads = {p: struct.pack("<d", value) for p in boxes.peers}
        replies = yield from boxes.swap_all(payloads)
        neighbours = [struct.unpack("<d", v)[0] for v in replies.values()]
        value = (value + sum(neighbours)) / (1 + len(neighbours))
        yield from env.compute(flops=4)
    yield from boxes.close()
    return round(value, 3)


def test_section_5_halo_exchange():
    r = SimRuntime().run([relaxer] * 4)
    values = r.result_list()
    # The 1-D averaging flattens toward the mean of 0..3.
    assert all(0.5 < v < 2.5 for v in values)
    assert values == sorted(values)  # monotone along the line
    # Same workers, real threads.
    r2 = ThreadRuntime(join_timeout=60).run([relaxer] * 4)
    assert r2.result_list() == values


def test_section_6_measuring():
    tracer = Tracer()
    result = SimRuntime(trace=tracer).run([loner])
    assert result.elapsed > 0
    assert result.report.lock_acquires > 0
    breakdown = tracer.charge_breakdown()
    assert breakdown["send-copy"] > 0
