"""Edge-case tests for identifiers, statistics and boundary payloads."""

import pytest

from repro.core import ops
from repro.core.errors import UnknownLNVCError
from repro.core.inspect import check_invariants, inspect_segment
from repro.core.protocol import FCFS
from repro.core.structs import LNVC
from repro.core.ops import SLOT_BITS, decode_lnvc_id, encode_lnvc_id
from repro.testing import DirectRunner, make_view


@pytest.fixture
def v():
    return make_view()


@pytest.fixture
def r(v):
    return DirectRunner(v)


class TestIdentifiers:
    @pytest.mark.parametrize("slot,gen", [(0, 0), (1023, 0), (0, 1),
                                          (7, 12345), (1023, 0x3FFFFF)])
    def test_encode_decode_roundtrip(self, slot, gen):
        assert decode_lnvc_id(encode_lnvc_id(slot, gen)) == (slot, gen)

    def test_slot_bits_cover_config_limit(self):
        from repro.core.layout import MPFConfig

        # The id encoding must address every legal slot.
        assert MPFConfig(max_lnvcs=1 << SLOT_BITS).max_lnvcs == 1024

    def test_generation_survives_multiple_recycles(self, v, r):
        ids = []
        for i in range(5):
            cid = r.run(ops.open_send(v, 0, "churn"))
            ids.append(cid)
            r.run(ops.close_send(v, 0, cid))
        assert len(set(ids)) == 5  # every incarnation distinct
        for stale in ids:
            with pytest.raises(UnknownLNVCError):
                r.run(ops.check_receive(v, 0, stale))

    def test_stale_id_does_not_alias_new_circuit(self, v, r):
        old = r.run(ops.open_send(v, 0, "x"))
        r.run(ops.close_send(v, 0, old))
        new = r.run(ops.open_send(v, 0, "x"))
        r.run(ops.message_send(v, 0, new, b"fresh"))
        with pytest.raises(UnknownLNVCError):
            r.run(ops.message_send(v, 0, old, b"stale"))
        r.run(ops.open_receive(v, 0, "x", FCFS))
        assert r.run(ops.message_receive(v, 0, new)) == b"fresh"


class TestQueueHighWaterMark:
    def test_hwm_tracks_deepest_point(self, v, r):
        cid = r.run(ops.open_send(v, 0, "q"))
        r.run(ops.open_receive(v, 0, "q", FCFS))
        for _ in range(5):
            r.run(ops.message_send(v, 0, cid, b"m"))
        for _ in range(5):
            r.run(ops.message_receive(v, 0, cid))
        r.run(ops.message_send(v, 0, cid, b"m"))
        info = inspect_segment(v).circuit("q")
        assert info.queued == 1
        assert info.peak_queued == 5

    def test_hwm_reset_with_circuit(self, v, r):
        cid = r.run(ops.open_send(v, 0, "q"))
        for _ in range(3):
            r.run(ops.message_send(v, 0, cid, b"m"))
        r.run(ops.close_send(v, 0, cid))  # deletes circuit
        r.run(ops.open_send(v, 0, "q"))
        assert inspect_segment(v).circuit("q").peak_queued == 0

    def test_render_mentions_peak(self, v, r):
        from repro.core.inspect import render_segment

        cid = r.run(ops.open_send(v, 0, "q"))
        r.run(ops.message_send(v, 0, cid, b"m"))
        assert "(peak 1)" in render_segment(inspect_segment(v))


class TestBoundaryPayloads:
    def test_empty_message_with_zero_max_len(self, v, r):
        cid = r.run(ops.open_send(v, 0, "q"))
        r.run(ops.open_receive(v, 0, "q", FCFS))
        r.run(ops.message_send(v, 0, cid, b""))
        assert r.run(ops.message_receive(v, 0, cid, max_len=0)) == b""

    def test_single_byte_block_size(self):
        v = make_view(block_size=1)
        r = DirectRunner(v)
        cid = r.run(ops.open_send(v, 0, "q"))
        r.run(ops.open_receive(v, 0, "q", FCFS))
        r.run(ops.message_send(v, 0, cid, b"abc"))
        assert r.run(ops.message_receive(v, 0, cid)) == b"abc"
        check_invariants(v)  # all three blocks back, accounting intact

    def test_message_exactly_filling_pool(self):
        v = make_view(block_size=10, message_pool_bytes=14 * 5)  # 5 blocks
        r = DirectRunner(v)
        cid = r.run(ops.open_send(v, 0, "q"))
        r.run(ops.open_receive(v, 0, "q", FCFS))
        r.run(ops.message_send(v, 0, cid, b"x" * 50))
        assert r.run(ops.message_receive(v, 0, cid)) == b"x" * 50


class TestSearchCosts:
    def test_open_charges_grow_with_table_position(self, v):
        """Name-table scans cost per slot examined — the model charges
        what the algorithm does."""
        r = DirectRunner(v)
        for i in range(6):
            r.run(ops.open_send(v, 0, f"c{i}"))
        r.charged.clear()
        r.run(ops.open_send(v, 1, "c0"))
        early = r.total_instrs()
        r.charged.clear()
        r.run(ops.open_send(v, 1, "c5"))
        late = r.total_instrs()
        assert late > early

    def test_recv_list_walk_charged(self, v):
        r = DirectRunner(v)
        cid = r.run(ops.open_send(v, 0, "q"))
        for pid in range(1, 6):
            r.run(ops.open_receive(v, pid, "q", FCFS))
        r.run(ops.message_send(v, 0, cid, b"m"))
        # Descriptors push at the list head, so the first-opened receiver
        # (pid 1) sits deepest and pays the longest walk.
        r.charged.clear()
        r.run(ops.check_receive(v, 1, cid))  # opened first -> deep in list
        deep = r.total_instrs()
        r.charged.clear()
        r.run(ops.check_receive(v, 5, cid))  # opened last -> list head
        shallow = r.total_instrs()
        assert deep > shallow
