"""Tests for the read-only segment inspector."""

import pytest

from repro.core import ops
from repro.core.inspect import inspect_segment, render_segment
from repro.core.protocol import BROADCAST, FCFS, MsgFlags
from repro.testing import DirectRunner, make_view


@pytest.fixture
def v():
    return make_view()


@pytest.fixture
def r(v):
    return DirectRunner(v)


def test_empty_segment(v):
    info = inspect_segment(v)
    assert info.circuits == []
    assert info.live_msgs == 0
    assert info.free_msg == v.cfg.max_messages


def test_circuit_reported_with_name_and_counts(v, r):
    cid = r.run(ops.open_send(v, 3, "topic"))
    r.run(ops.open_receive(v, 4, "topic", FCFS))
    r.run(ops.open_receive(v, 5, "topic", BROADCAST))
    info = inspect_segment(v)
    c = info.circuit("topic")
    assert c.lnvc_id == cid
    assert (c.n_senders, c.n_fcfs, c.n_bcast) == (1, 1, 1)
    kinds = sorted((x.kind, x.pid) for x in c.connections)
    assert kinds == [("recv", 4), ("recv", 5), ("send", 3)]


def test_messages_listed_in_fifo_order(v, r):
    cid = r.run(ops.open_send(v, 0, "q"))
    for i in range(3):
        r.run(ops.message_send(v, 0, cid, bytes(10 + i)))
    msgs = inspect_segment(v).circuit("q").messages
    assert [m.seqno for m in msgs] == [0, 1, 2]
    assert [m.length for m in msgs] == [10, 11, 12]
    assert all(m.sender == 0 for m in msgs)


def test_broadcast_backlog_per_receiver(v, r):
    cid = r.run(ops.open_send(v, 0, "q"))
    r.run(ops.open_receive(v, 1, "q", BROADCAST))
    r.run(ops.open_receive(v, 2, "q", BROADCAST))
    for _ in range(3):
        r.run(ops.message_send(v, 0, cid, b"z"))
    r.run(ops.message_receive(v, 1, cid))
    backlogs = {
        c.pid: c.backlog
        for c in inspect_segment(v).circuit("q").connections
        if c.kind == "recv"
    }
    assert backlogs == {1: 2, 2: 3}


def test_pool_occupancy_tracks_allocations(v, r):
    cid = r.run(ops.open_send(v, 0, "q"))
    before = inspect_segment(v)
    r.run(ops.message_send(v, 0, cid, b"x" * 25))  # 3 blocks + 1 header
    after = inspect_segment(v)
    assert before.free_msg - after.free_msg == 1
    assert before.free_blk - after.free_blk == 3
    assert after.live_bytes == 25


def test_flags_visible(v, r):
    cid = r.run(ops.open_send(v, 0, "q"))
    r.run(ops.open_receive(v, 1, "q", FCFS))
    r.run(ops.message_send(v, 0, cid, b"m"))
    m = inspect_segment(v).circuit("q").messages[0]
    assert m.flags & MsgFlags.FCFS_EXPECTED
    assert m.flags & MsgFlags.HAD_RECEIVERS


def test_unknown_circuit_raises(v):
    with pytest.raises(KeyError):
        inspect_segment(v).circuit("nope")


def test_render_is_readable(v, r):
    cid = r.run(ops.open_send(v, 0, "report"))
    r.run(ops.open_receive(v, 1, "report", FCFS))
    r.run(ops.message_send(v, 0, cid, b"hello"))
    text = render_segment(inspect_segment(v))
    assert "circuit 'report'" in text
    assert "send pid=0" in text
    assert "recv pid=1 FCFS" in text
    assert "5B in 1 block(s)" in text


def test_inspector_does_not_perturb_state(v, r):
    cid = r.run(ops.open_send(v, 0, "q"))
    r.run(ops.open_receive(v, 0, "q", FCFS))
    r.run(ops.message_send(v, 0, cid, b"payload"))
    snap1 = inspect_segment(v)
    snap2 = inspect_segment(v)
    assert snap1 == snap2
    assert r.run(ops.message_receive(v, 0, cid)) == b"payload"
