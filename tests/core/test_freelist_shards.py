"""Sharded block pool: home-shard preference, steal-on-empty, rollback,
and cross-shard conservation (``freelist_shards > 1``)."""

import pytest

from repro.core import ops
from repro.core.errors import MPFConfigError, OutOfMessageMemoryError
from repro.core.freelist import fl_count
from repro.core.inspect import check_invariants, inspect_segment
from repro.core.layout import MPFConfig
from repro.core.protocol import FCFS
from repro.testing import DirectRunner, make_view

# 28 blocks (14-byte stride) over 4 shards of 7.
POOL = 28 * 14


@pytest.fixture
def v():
    return make_view(freelist_shards=4, message_pool_bytes=POOL,
                     max_messages=32)


@pytest.fixture
def r(v):
    return DirectRunner(v)


def _shard_counts(v):
    return [fl_count(v.region, h) for h in v.layout.shard_heads]


def _open_pair(r, v, sender=0, receiver=1, name="c"):
    cid = r.run(ops.open_send(v, sender, name))
    r.run(ops.open_receive(v, receiver, name, FCFS))
    return cid


def test_format_splits_pool_across_shards(v):
    counts = _shard_counts(v)
    assert sum(counts) == v.layout.cfg.n_blocks == 28
    assert max(counts) - min(counts) <= 1


def test_alloc_prefers_home_shard(r, v):
    cid = _open_pair(r, v, sender=2)  # home shard = 2 % 4
    before = _shard_counts(v)
    r.run(ops.message_send(v, 2, cid, b"x" * 10))  # 1 block
    after = _shard_counts(v)
    assert before[2] - after[2] == 1
    assert all(before[s] == after[s] for s in range(4) if s != 2)


def test_steal_on_empty_crosses_shards(r, v):
    cid = _open_pair(r, v, sender=0)
    # 7 blocks per shard: a 100-byte (10-block) send must empty shard 0
    # and steal the remaining 3 from the next shard up.
    r.run(ops.message_send(v, 0, cid, b"x" * 100))
    counts = _shard_counts(v)
    assert counts[0] == 0
    assert sum(counts) == 28 - 10
    check_invariants(v, level="steady")


def test_free_returns_blocks_to_home_shards(r, v):
    cid = _open_pair(r, v, sender=0, receiver=1)
    r.run(ops.message_send(v, 0, cid, b"x" * 100))
    assert r.run(ops.message_receive(v, 1, cid)) == b"x" * 100
    assert _shard_counts(v) == [7, 7, 7, 7]
    check_invariants(v, level="steady")


def test_shortfall_rolls_back_committed_pops(r, v):
    cid = _open_pair(r, v, sender=0)
    r.run(ops.message_send(v, 0, cid, b"x" * 200))  # 20 of 28 blocks
    before = _shard_counts(v)
    with pytest.raises(OutOfMessageMemoryError):
        r.run(ops.message_send(v, 0, cid, b"y" * 90))  # 9 > 8 free
    assert _shard_counts(v) == before  # partial pops rolled back
    check_invariants(v, level="steady")


def test_conservation_across_shards_under_churn(r, v):
    cid = _open_pair(r, v, sender=3, receiver=1)
    for i in range(12):
        r.run(ops.message_send(v, 3, cid, bytes([i]) * (10 + 7 * i % 40)))
        r.run(ops.message_receive(v, 1, cid))
        check_invariants(v, level="steady")
    assert sum(_shard_counts(v)) == 28


def test_inspect_sums_free_blocks_across_shards(r, v):
    cid = _open_pair(r, v, sender=0)
    r.run(ops.message_send(v, 0, cid, b"x" * 100))
    seg = inspect_segment(v)
    assert seg.free_blk == 28 - 10


def test_sharded_delivery_matches_unsharded():
    got = {}
    for shards in (1, 4):
        v = make_view(freelist_shards=shards, message_pool_bytes=POOL,
                      max_messages=32)
        r = DirectRunner(v)
        cid = _open_pair(r, v)
        out = []
        for i in range(6):
            r.run(ops.message_send(v, 0, cid, f"m{i}".encode() * 4))
            out.append(r.run(ops.message_receive(v, 1, cid)))
        got[shards] = out
    assert got[1] == got[4]


def test_config_rejects_bad_shard_counts():
    with pytest.raises(MPFConfigError):
        MPFConfig(freelist_shards=0)
    with pytest.raises(MPFConfigError):
        # More shards than blocks in the pool.
        MPFConfig(message_pool_bytes=4 * 14, freelist_shards=5)


def test_unsharded_layout_has_no_shard_head_pool():
    v1 = make_view()  # default freelist_shards=1
    assert len(v1.layout.shard_heads) == 1
    cfg = MPFConfig(max_lnvcs=8, max_processes=8, max_messages=64,
                    message_pool_bytes=1 << 16)
    assert cfg.freelist_shards == 1
