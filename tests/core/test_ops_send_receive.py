"""Unit tests for message_send / message_receive (single logical thread)."""

import pytest

from repro.core import ops
from repro.core.errors import (
    BufferOverflowError,
    NotConnectedError,
    OutOfMessageMemoryError,
    UnknownLNVCError,
)
from repro.core.layout import HDR
from repro.core.protocol import BROADCAST, FCFS
from repro.testing import BlockedError, DirectRunner, make_view


def _loop(runner, view, name="loop", pid=0):
    sid = runner.run(ops.open_send(view, pid, name))
    rid = runner.run(ops.open_receive(view, pid, name, FCFS))
    assert sid == rid
    return sid


def test_send_then_receive_roundtrip(view, runner):
    cid = _loop(runner, view)
    runner.run(ops.message_send(view, 0, cid, b"hello, circuit"))
    got = runner.run(ops.message_receive(view, 0, cid))
    assert got == b"hello, circuit"


def test_payload_spanning_many_blocks(view, runner):
    cid = _loop(runner, view)
    payload = bytes(range(256)) * 3  # 768 bytes = 77 ten-byte blocks
    runner.run(ops.message_send(view, 0, cid, payload))
    assert runner.run(ops.message_receive(view, 0, cid)) == payload


def test_payload_exactly_one_block(view, runner):
    cid = _loop(runner, view)
    runner.run(ops.message_send(view, 0, cid, b"0123456789"))
    assert runner.run(ops.message_receive(view, 0, cid)) == b"0123456789"


def test_empty_message(view, runner):
    cid = _loop(runner, view)
    runner.run(ops.message_send(view, 0, cid, b""))
    assert runner.run(ops.message_receive(view, 0, cid)) == b""
    assert HDR.get(view.region, "live_msgs") == 0


def test_fifo_order_preserved(view, runner):
    # "Virtual circuits provide time-ordered message delivery."
    cid = _loop(runner, view)
    for i in range(10):
        runner.run(ops.message_send(view, 0, cid, f"m{i}".encode()))
    for i in range(10):
        assert runner.run(ops.message_receive(view, 0, cid)) == f"m{i}".encode()


def test_send_returns_sequence_numbers(view, runner):
    cid = _loop(runner, view)
    seqs = [runner.run(ops.message_send(view, 0, cid, b"x")) for _ in range(4)]
    assert seqs == [0, 1, 2, 3]


def test_send_accepts_bytes_like(view, runner):
    cid = _loop(runner, view)
    runner.run(ops.message_send(view, 0, cid, bytearray(b"ba")))
    runner.run(ops.message_send(view, 0, cid, memoryview(b"mv")))
    assert runner.run(ops.message_receive(view, 0, cid)) == b"ba"
    assert runner.run(ops.message_receive(view, 0, cid)) == b"mv"


def test_send_rejects_str(view, runner):
    cid = _loop(runner, view)
    with pytest.raises(TypeError):
        runner.run(ops.message_send(view, 0, cid, "not bytes"))


def test_send_requires_send_connection(view, runner):
    cid = runner.run(ops.open_receive(view, 0, "c", FCFS))
    with pytest.raises(NotConnectedError):
        runner.run(ops.message_send(view, 0, cid, b"x"))


def test_send_unknown_circuit(view, runner):
    with pytest.raises(UnknownLNVCError):
        runner.run(ops.message_send(view, 0, 12345, b"x"))


def test_failed_send_leaks_nothing(view, runner):
    cid = runner.run(ops.open_receive(view, 0, "c", FCFS))
    before = HDR.get(view.region, "live_blocks")
    with pytest.raises(NotConnectedError):
        runner.run(ops.message_send(view, 0, cid, b"y" * 100))
    assert HDR.get(view.region, "live_blocks") == before
    assert HDR.get(view.region, "live_msgs") == 0


def test_receive_requires_receive_connection(view, runner):
    cid = runner.run(ops.open_send(view, 0, "c"))
    runner.run(ops.message_send(view, 0, cid, b"x"))
    with pytest.raises(NotConnectedError):
        runner.run(ops.message_receive(view, 0, cid))


def test_receive_blocks_when_empty(view, runner):
    cid = runner.run(ops.open_receive(view, 0, "c", FCFS))
    with pytest.raises(BlockedError):
        runner.run(ops.message_receive(view, 0, cid))


def test_broadcast_receive_blocks_when_caught_up(view, runner):
    sid = runner.run(ops.open_send(view, 0, "c"))
    rid = runner.run(ops.open_receive(view, 0, "c", BROADCAST))
    runner.run(ops.message_send(view, 0, sid, b"one"))
    assert runner.run(ops.message_receive(view, 0, rid)) == b"one"
    with pytest.raises(BlockedError):
        runner.run(ops.message_receive(view, 0, rid))


def test_send_wakes_circuit_channel(view, runner):
    cid = _loop(runner, view)
    runner.run(ops.message_send(view, 0, cid, b"x"))
    slot = view.resolve(cid)
    assert runner.wakes[-1] == slot


def test_max_len_overflow_raises_without_consuming(view, runner):
    cid = _loop(runner, view)
    runner.run(ops.message_send(view, 0, cid, b"a long message"))
    with pytest.raises(BufferOverflowError):
        runner.run(ops.message_receive(view, 0, cid, max_len=4))
    # Not consumed: a full-size receive still gets it.
    assert runner.run(ops.message_receive(view, 0, cid)) == b"a long message"


def test_max_len_exact_fit_accepted(view, runner):
    cid = _loop(runner, view)
    runner.run(ops.message_send(view, 0, cid, b"12345"))
    assert runner.run(ops.message_receive(view, 0, cid, max_len=5)) == b"12345"


def test_header_pool_exhaustion():
    v = make_view(max_messages=2)
    r = DirectRunner(v)
    cid = r.run(ops.open_send(v, 0, "c"))
    r.run(ops.open_receive(v, 0, "c", FCFS))
    r.run(ops.message_send(v, 0, cid, b"a"))
    r.run(ops.message_send(v, 0, cid, b"b"))
    with pytest.raises(OutOfMessageMemoryError, match="header"):
        r.run(ops.message_send(v, 0, cid, b"c"))
    # Consuming one frees a header for the next send.
    r.run(ops.message_receive(v, 0, cid))
    r.run(ops.message_send(v, 0, cid, b"c"))


def test_block_pool_exhaustion_frees_partial_allocation():
    v = make_view(message_pool_bytes=14 * 4, block_size=10)  # 4 blocks
    r = DirectRunner(v)
    cid = r.run(ops.open_send(v, 0, "c"))
    r.run(ops.open_receive(v, 0, "c", FCFS))
    with pytest.raises(OutOfMessageMemoryError, match="block"):
        r.run(ops.message_send(v, 0, cid, b"x" * 50))  # needs 5 blocks
    # The partial allocation was rolled back: 40 bytes still fit.
    r.run(ops.message_send(v, 0, cid, b"y" * 40))
    assert r.run(ops.message_receive(v, 0, cid)) == b"y" * 40


def test_live_counters_track_queue(view, runner):
    cid = _loop(runner, view)
    runner.run(ops.message_send(view, 0, cid, b"z" * 25))  # 3 blocks
    assert HDR.get(view.region, "live_msgs") == 1
    assert HDR.get(view.region, "live_blocks") == 3
    assert HDR.get(view.region, "live_bytes") == 25
    runner.run(ops.message_receive(view, 0, cid))
    assert HDR.get(view.region, "live_msgs") == 0
    assert HDR.get(view.region, "live_blocks") == 0
    assert HDR.get(view.region, "live_bytes") == 0


def test_hwm_counters_monotone(view, runner):
    cid = _loop(runner, view)
    runner.run(ops.message_send(view, 0, cid, b"x" * 30))
    runner.run(ops.message_receive(view, 0, cid))
    runner.run(ops.message_send(view, 0, cid, b"x" * 10))
    assert HDR.get(view.region, "hwm_live_bytes") == 30
    assert HDR.get(view.region, "hwm_live_msgs") == 1


def test_traffic_statistics(view, runner):
    cid = _loop(runner, view)
    runner.run(ops.message_send(view, 0, cid, b"abc"))
    runner.run(ops.message_send(view, 0, cid, b"de"))
    runner.run(ops.message_receive(view, 0, cid))
    assert HDR.get(view.region, "total_sends") == 2
    assert HDR.get(view.region, "total_receives") == 1
    assert HDR.get(view.region, "total_bytes_sent") == 5
    assert HDR.get(view.region, "total_bytes_received") == 3


def test_receive_charges_copy_work(view, runner):
    cid = _loop(runner, view)
    runner.run(ops.message_send(view, 0, cid, b"q" * 64))
    runner.charged.clear()
    runner.run(ops.message_receive(view, 0, cid))
    assert runner.total_copy_bytes() == 64


def test_interleaved_circuits_do_not_cross(view, runner):
    a = _loop(runner, view, "a")
    b = _loop(runner, view, "b")
    runner.run(ops.message_send(view, 0, a, b"for-a"))
    runner.run(ops.message_send(view, 0, b, b"for-b"))
    assert runner.run(ops.message_receive(view, 0, b)) == b"for-b"
    assert runner.run(ops.message_receive(view, 0, a)) == b"for-a"


def test_binary_payload_integrity(view, runner):
    cid = _loop(runner, view)
    payload = bytes(range(256))
    runner.run(ops.message_send(view, 0, cid, payload))
    assert runner.run(ops.message_receive(view, 0, cid)) == payload
