"""Tests for the public testing utilities themselves (repro.testing)."""

import pytest

from repro.core.effects import Acquire, Charge, Release, WaitOn, Wake
from repro.core.work import Work
from repro.testing import BlockedError, DirectRunner, make_view


def gen_of(*effects, result=None):
    def g():
        for e in effects:
            yield e
        return result

    return g()


@pytest.fixture
def runner():
    return DirectRunner(make_view())


def test_returns_generator_value(runner):
    assert runner.run(gen_of(Charge(Work(instrs=5)), result="val")) == "val"


def test_accumulates_charges(runner):
    runner.run(gen_of(Charge(Work(instrs=5)), Charge(Work(instrs=7, copy_bytes=3))))
    assert runner.total_instrs() == 12
    assert runner.total_copy_bytes() == 3


def test_records_wakes(runner):
    runner.run(gen_of(Wake(2), Wake(0)))
    assert runner.wakes == [2, 0]


def test_balanced_locks_ok(runner):
    runner.run(gen_of(Acquire(1), Release(1)))
    assert runner.held == []


def test_detects_unreleased_lock(runner):
    with pytest.raises(AssertionError, match="finished holding"):
        runner.run(gen_of(Acquire(1)))


def test_detects_double_acquire(runner):
    with pytest.raises(AssertionError, match="self-deadlock"):
        runner.run(gen_of(Acquire(1), Acquire(1)))


def test_detects_release_of_unheld(runner):
    with pytest.raises(AssertionError, match="un-held"):
        runner.run(gen_of(Release(3)))


def test_waiton_raises_blocked_and_releases(runner):
    with pytest.raises(BlockedError):
        runner.run(gen_of(Acquire(2), WaitOn(0, 2)))
    assert runner.held == []  # usable for further ops


def test_waiton_without_lock_detected(runner):
    with pytest.raises(AssertionError, match="WaitOn without holding"):
        runner.run(gen_of(WaitOn(0, 2)))


def test_raise_with_held_lock_detected(runner):
    def bad():
        yield Acquire(1)
        raise ValueError("op forgot to release")

    with pytest.raises(AssertionError, match="raised while holding"):
        runner.run(bad())


def test_raise_with_clean_locks_passes_through(runner):
    def ok():
        yield Acquire(1)
        yield Release(1)
        raise ValueError("legitimate failure")

    with pytest.raises(ValueError, match="legitimate"):
        runner.run(ok())


def test_unknown_effect_detected(runner):
    with pytest.raises(AssertionError, match="unknown effect"):
        runner.run(gen_of(object()))


def test_make_view_overrides():
    v = make_view(max_lnvcs=3, block_size=4)
    assert v.cfg.max_lnvcs == 3
    assert v.cfg.block_size == 4
    # Formatted and ready: header magic in place.
    from repro.core.layout import HDR
    from repro.core.protocol import MAGIC

    assert HDR.get(v.region, "magic") == MAGIC
