"""Unit tests for the shared byte region."""

import pytest

from repro.core.region import SharedRegion


def test_u32_roundtrip():
    r = SharedRegion(bytearray(64))
    r.set_u32(8, 0xDEADBEEF)
    assert r.u32(8) == 0xDEADBEEF


def test_u32_is_little_endian():
    r = SharedRegion(bytearray(8))
    r.set_u32(0, 0x01020304)
    assert r.read(0, 4) == b"\x04\x03\x02\x01"


def test_u32_masks_to_32_bits():
    r = SharedRegion(bytearray(8))
    r.set_u32(0, 0x1_0000_0002)
    assert r.u32(0) == 2


def test_add_u32_wraps():
    r = SharedRegion(bytearray(8))
    r.set_u32(0, 0xFFFFFFFF)
    assert r.add_u32(0, 1) == 0


def test_add_u32_negative_delta():
    r = SharedRegion(bytearray(8))
    r.set_u32(0, 10)
    assert r.add_u32(0, -3) == 7
    assert r.u32(0) == 7


def test_u64_roundtrip():
    r = SharedRegion(bytearray(16))
    r.set_u64(8, 1 << 40)
    assert r.u64(8) == 1 << 40


def test_add_u64_accumulates():
    r = SharedRegion(bytearray(8))
    for _ in range(5):
        r.add_u64(0, 1 << 33)
    assert r.u64(0) == 5 << 33


def test_read_write_bytes():
    r = SharedRegion(bytearray(32))
    r.write(5, b"hello")
    assert r.read(5, 5) == b"hello"
    assert r.read(4, 1) == b"\x00"


def test_read_out_of_bounds_raises():
    r = SharedRegion(bytearray(16))
    with pytest.raises(IndexError):
        r.read(10, 10)
    with pytest.raises(IndexError):
        r.read(-1, 4)


def test_write_out_of_bounds_raises():
    r = SharedRegion(bytearray(16))
    with pytest.raises(IndexError):
        r.write(14, b"abcd")


def test_fill():
    r = SharedRegion(bytearray(16))
    r.write(0, b"\xff" * 16)
    r.fill(4, 8)
    assert r.read(0, 16) == b"\xff" * 4 + b"\x00" * 8 + b"\xff" * 4


def test_fill_nonzero_byte():
    r = SharedRegion(bytearray(8))
    r.fill(0, 8, 0xAB)
    assert r.read(0, 8) == b"\xab" * 8


def test_len():
    assert len(SharedRegion(bytearray(100))) == 100


def test_readonly_buffer_rejected():
    with pytest.raises(ValueError):
        SharedRegion(b"immutable bytes!")


def test_memoryview_backing():
    backing = bytearray(32)
    r = SharedRegion(memoryview(backing))
    r.set_u32(0, 42)
    assert backing[0] == 42


def test_writes_visible_through_backing():
    backing = bytearray(8)
    r = SharedRegion(backing)
    r.write(0, b"xy")
    assert bytes(backing[:2]) == b"xy"
