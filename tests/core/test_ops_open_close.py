"""Unit tests for open_send / open_receive / close_send / close_receive."""

import pytest

from repro.core import ops
from repro.core.errors import (
    DuplicateConnectionError,
    MPFNameError,
    NoFreeLNVCError,
    NotConnectedError,
    OutOfDescriptorsError,
    ProtocolViolationError,
    UnknownLNVCError,
)
from repro.core.inspect import check_invariants
from repro.core.layout import HDR
from repro.core.protocol import BROADCAST, FCFS
from repro.core.structs import LNVC

from repro.testing import DirectRunner, make_view


def test_open_send_creates_circuit(view, runner):
    cid = runner.run(ops.open_send(view, 0, "alpha"))
    slot = view.resolve(cid)
    base = view.layout.lnvc_off(slot)
    assert LNVC.get(view.region, base, "n_senders") == 1
    assert view.read_name(slot) == b"alpha"
    assert HDR.get(view.region, "live_lnvcs") == 1


def test_open_send_joins_existing_circuit(view, runner):
    a = runner.run(ops.open_send(view, 0, "alpha"))
    b = runner.run(ops.open_send(view, 1, "alpha"))
    assert a == b
    assert HDR.get(view.region, "live_lnvcs") == 1


def test_open_receive_joins_same_named_circuit(view, runner):
    a = runner.run(ops.open_send(view, 0, "alpha"))
    b = runner.run(ops.open_receive(view, 1, "alpha", FCFS))
    assert a == b


def test_distinct_names_get_distinct_circuits(view, runner):
    a = runner.run(ops.open_send(view, 0, "alpha"))
    b = runner.run(ops.open_send(view, 0, "beta"))
    assert a != b
    assert HDR.get(view.region, "live_lnvcs") == 2


def test_receiver_counts_by_protocol(view, runner):
    cid = runner.run(ops.open_receive(view, 0, "c", FCFS))
    runner.run(ops.open_receive(view, 1, "c", BROADCAST))
    runner.run(ops.open_receive(view, 2, "c", BROADCAST))
    base = view.layout.lnvc_off(view.resolve(cid))
    assert LNVC.get(view.region, base, "n_fcfs") == 1
    assert LNVC.get(view.region, base, "n_bcast") == 2


def test_duplicate_send_rejected(view, runner):
    runner.run(ops.open_send(view, 0, "c"))
    with pytest.raises(DuplicateConnectionError):
        runner.run(ops.open_send(view, 0, "c"))


def test_duplicate_receive_rejected(view, runner):
    runner.run(ops.open_receive(view, 0, "c", FCFS))
    with pytest.raises(DuplicateConnectionError):
        runner.run(ops.open_receive(view, 0, "c", FCFS))


def test_mixed_protocols_rejected_for_one_process(view, runner):
    # Paper §1 footnote 3: "a receiving process of an LNVC cannot use
    # both FCFS and BROADCAST protocols."
    runner.run(ops.open_receive(view, 0, "c", FCFS))
    with pytest.raises(ProtocolViolationError):
        runner.run(ops.open_receive(view, 0, "c", BROADCAST))


def test_process_may_send_and_receive_on_same_circuit(view, runner):
    # Loop-back is legal (the paper's `base` benchmark depends on it).
    s = runner.run(ops.open_send(view, 0, "loop"))
    r = runner.run(ops.open_receive(view, 0, "loop", FCFS))
    assert s == r


def test_same_process_different_circuits_independent(view, runner):
    runner.run(ops.open_receive(view, 0, "c1", FCFS))
    runner.run(ops.open_receive(view, 0, "c2", BROADCAST))  # fine: other circuit


@pytest.mark.parametrize("bad", ["", "x" * 64, 123, None])
def test_invalid_names_rejected(view, runner, bad):
    with pytest.raises(MPFNameError):
        runner.run(ops.open_send(view, 0, bad))


def test_unicode_name_accepted(view, runner):
    cid = runner.run(ops.open_send(view, 0, "conversation-α"))
    assert view.read_name(view.resolve(cid)).decode("utf-8").endswith("α")


def test_table_exhaustion(runner):
    v = make_view(max_lnvcs=2)
    r = DirectRunner(v)
    r.run(ops.open_send(v, 0, "a"))
    r.run(ops.open_send(v, 0, "b"))
    with pytest.raises(NoFreeLNVCError):
        r.run(ops.open_send(v, 0, "c"))


def test_descriptor_exhaustion():
    v = make_view(send_descriptors=2, recv_descriptors=1)
    r = DirectRunner(v)
    r.run(ops.open_send(v, 0, "a"))
    r.run(ops.open_send(v, 1, "a"))
    with pytest.raises(OutOfDescriptorsError):
        r.run(ops.open_send(v, 2, "a"))
    r.run(ops.open_receive(v, 3, "a", FCFS))
    with pytest.raises(OutOfDescriptorsError):
        r.run(ops.open_receive(v, 4, "a", FCFS))


def test_close_send_removes_connection(view, runner):
    cid = runner.run(ops.open_send(view, 0, "c"))
    runner.run(ops.open_send(view, 1, "c"))
    runner.run(ops.close_send(view, 0, cid))
    base = view.layout.lnvc_off(view.resolve(cid))
    assert LNVC.get(view.region, base, "n_senders") == 1


def test_close_last_connection_deletes_circuit(view, runner):
    cid = runner.run(ops.open_send(view, 0, "c"))
    runner.run(ops.close_send(view, 0, cid))
    assert HDR.get(view.region, "live_lnvcs") == 0
    with pytest.raises(UnknownLNVCError):
        view.resolve(cid)


def test_deleted_circuit_id_is_stale_after_name_reuse(view, runner):
    cid = runner.run(ops.open_send(view, 0, "c"))
    runner.run(ops.close_send(view, 0, cid))
    cid2 = runner.run(ops.open_send(view, 0, "c"))
    assert cid2 != cid  # generation bumped
    with pytest.raises(UnknownLNVCError):
        runner.run(ops.close_send(view, 0, cid))


def test_close_send_not_connected(view, runner):
    cid = runner.run(ops.open_send(view, 0, "c"))
    with pytest.raises(NotConnectedError):
        runner.run(ops.close_send(view, 1, cid))


def test_close_receive_not_connected(view, runner):
    cid = runner.run(ops.open_receive(view, 0, "c", FCFS))
    with pytest.raises(NotConnectedError):
        runner.run(ops.close_receive(view, 1, cid))


def test_close_receive_wrong_kind(view, runner):
    cid = runner.run(ops.open_send(view, 0, "c"))
    runner.run(ops.open_receive(view, 1, "c", FCFS))
    with pytest.raises(NotConnectedError):
        runner.run(ops.close_receive(view, 0, cid))


def test_close_unknown_id(view, runner):
    with pytest.raises(UnknownLNVCError):
        runner.run(ops.close_send(view, 0, 9999))


def test_descriptors_recycled_after_close():
    v = make_view(send_descriptors=1)
    r = DirectRunner(v)
    for _ in range(5):
        cid = r.run(ops.open_send(v, 0, "c"))
        r.run(ops.close_send(v, 0, cid))


def test_circuit_slots_recycled():
    v = make_view(max_lnvcs=1)
    r = DirectRunner(v)
    for i in range(4):
        cid = r.run(ops.open_send(v, 0, f"c{i}"))
        r.run(ops.close_send(v, 0, cid))
    assert HDR.get(v.region, "live_lnvcs") == 0


def test_queued_messages_discarded_on_delete(view, runner):
    cid = runner.run(ops.open_send(view, 0, "c"))
    runner.run(ops.message_send(view, 0, cid, b"doomed"))
    runner.run(ops.message_send(view, 0, cid, b"also doomed"))
    assert HDR.get(view.region, "live_msgs") == 2
    runner.run(ops.close_send(view, 0, cid))
    # Paper §2: "the LNVC is deleted and all unread messages are discarded."
    check_invariants(view, expect_empty=True)
