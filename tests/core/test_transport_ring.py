"""Unit and cross-runtime tests for the ring-buffer transport.

The op-level tests drive :func:`repro.core.ops.message_send` /
``message_receive`` on ring circuits through a
:class:`repro.testing.DirectRunner`; the runtime tests run small
multi-process workloads on the simulator (and, on POSIX, the thread and
process runtimes) and assert the two transports deliver identically.

BROADCAST readers join at the ring *tail* — they hear only messages
claimed after their ``open_receive`` — so every multi-process workload
here uses a ready handshake before traffic starts, exactly like the
paper's own benchmark programs.
"""

import sys

import pytest

from repro.core import ops
from repro.core.errors import BufferOverflowError, OutOfDescriptorsError
from repro.core.inspect import check_invariants, inspect_segment
from repro.core.layout import MPFConfig
from repro.core.protocol import BROADCAST, FCFS
from repro.core.structs import RING_READERS
from repro.runtime.sim import SimRuntime
from repro.testing import BlockedError, DirectRunner, make_view


def ring_view(**overrides):
    defaults = dict(transport="ring", ring_slots=4, ring_slot_bytes=64)
    defaults.update(overrides)
    return make_view(**defaults)


# ---------------------------------------------------------------------------
# op-level semantics (DirectRunner)
# ---------------------------------------------------------------------------


def test_broadcast_roundtrip():
    view = ring_view()
    runner = DirectRunner(view)
    runner.run(ops.open_receive(view, 1, "c", BROADCAST))
    cid = runner.run(ops.open_send(view, 0, "c"))
    runner.run(ops.message_send(view, 0, cid, b"hello ring"))
    assert runner.run(ops.message_receive(view, 1, cid)) == b"hello ring"


def test_wrap_preserves_fifo_order():
    # 20 messages through a 4-slot ring: every slot is reused five
    # times; the commit word (generation) must keep them ordered.
    view = ring_view(ring_slots=4)
    runner = DirectRunner(view)
    cid = runner.run(ops.open_receive(view, 1, "c", BROADCAST))
    runner.run(ops.open_send(view, 0, "c"))
    for round_ in range(5):
        for i in range(4):
            payload = bytes([round_, i])
            runner.run(ops.message_send(view, 0, cid, payload))
        for i in range(4):
            got = runner.run(ops.message_receive(view, 1, cid))
            assert got == bytes([round_, i])


def test_full_ring_blocks_sender_and_preserves_for_fcfs_joiner():
    # With no receivers connected, ring messages keep their FCFS
    # obligation for a future joiner (paper semantics), so the ring
    # fills: the (nslots+1)-th send parks on the slot's channel.
    view = ring_view(ring_slots=4)
    runner = DirectRunner(view)
    cid = runner.run(ops.open_send(view, 0, "c"))
    for i in range(4):
        runner.run(ops.message_send(view, 0, cid, bytes([i])))
    with pytest.raises(BlockedError):
        runner.run(ops.message_send(view, 0, cid, b"\xff"))
    # A late FCFS joiner drains the preserved messages, freeing slots.
    runner.run(ops.open_receive(view, 1, "c", FCFS))
    for i in range(4):
        assert runner.run(ops.message_receive(view, 1, cid)) == bytes([i])
    runner.run(ops.message_send(view, 0, cid, b"\xff"))
    assert runner.run(ops.message_receive(view, 1, cid)) == b"\xff"


def test_oversize_send_raises():
    view = ring_view(ring_slot_bytes=16)
    runner = DirectRunner(view)
    cid = runner.run(ops.open_send(view, 0, "c"))
    runner.run(ops.message_send(view, 0, cid, b"x" * 16))  # exactly fits
    with pytest.raises(BufferOverflowError):
        runner.run(ops.message_send(view, 0, cid, b"x" * 17))


def test_receive_max_len_rejects_without_consuming():
    view = ring_view()
    runner = DirectRunner(view)
    cid = runner.run(ops.open_receive(view, 1, "c", BROADCAST))
    runner.run(ops.open_send(view, 0, "c"))
    runner.run(ops.message_send(view, 0, cid, b"0123456789"))
    with pytest.raises(BufferOverflowError):
        runner.run(ops.message_receive(view, 1, cid, max_len=4))
    assert runner.run(ops.message_receive(view, 1, cid)) == b"0123456789"


def test_per_name_transport_override():
    view = make_view(transports=(("fast", "ring"),))
    runner = DirectRunner(view)
    runner.run(ops.open_send(view, 0, "fast"))
    runner.run(ops.open_send(view, 0, "slow"))
    kinds = {c.name: c.transport for c in inspect_segment(view).circuits}
    assert kinds == {"fast": "ring", "slow": "freelist"}


def test_reader_bitmap_exhaustion():
    view = ring_view(max_processes=RING_READERS + 2,
                     max_lnvcs=4, max_messages=8)
    runner = DirectRunner(view)
    for pid in range(RING_READERS):
        runner.run(ops.open_receive(view, pid, "c", BROADCAST))
    with pytest.raises(OutOfDescriptorsError):
        runner.run(ops.open_receive(view, RING_READERS, "c", BROADCAST))
    # FCFS receivers don't occupy bitmap bits, so one still connects.
    runner.run(ops.open_receive(view, RING_READERS, "c", FCFS))


def test_broadcast_fast_path_skips_the_lock():
    # A warm BROADCAST receive takes a committed slot lock-free: the
    # charge stream shows the cursor bump and never the in-lock claim.
    view = ring_view()
    runner = DirectRunner(view)
    cid = runner.run(ops.open_receive(view, 1, "c", BROADCAST))
    runner.run(ops.open_send(view, 0, "c"))
    runner.run(ops.message_send(view, 0, cid, b"cold"))
    runner.run(ops.message_receive(view, 1, cid))  # cold: caches the desc
    runner.run(ops.message_send(view, 0, cid, b"warm"))
    before = len(runner.charged)
    assert runner.run(ops.message_receive(view, 1, cid)) == b"warm"
    labels = [w.label for w in runner.charged[before:]]
    assert "ring-cursor" in labels
    assert "ring-claim" not in labels


def test_slot_generation_not_redelivered():
    # After a wrap, a reader whose cursor already passed a slot must not
    # see the slot's *new* occupant as its old sequence number: seqnos
    # observed by check_receive stay strictly increasing.
    view = ring_view(ring_slots=2)
    runner = DirectRunner(view)
    cid = runner.run(ops.open_receive(view, 1, "c", BROADCAST))
    runner.run(ops.open_send(view, 0, "c"))
    payloads = []
    for i in range(8):
        runner.run(ops.message_send(view, 0, cid, bytes([i])))
        payloads.append(runner.run(ops.message_receive(view, 1, cid)))
    assert payloads == [bytes([i]) for i in range(8)]
    # Nothing left: one more receive would block, not re-deliver.
    with pytest.raises(BlockedError):
        runner.run(ops.message_receive(view, 1, cid))


@pytest.mark.parametrize("transport", ["freelist", "ring"])
def test_invariants_hold_after_traffic(transport):
    view = make_view(transport=transport, ring_slots=4, ring_slot_bytes=32)
    runner = DirectRunner(view)
    cid = runner.run(ops.open_receive(view, 1, "c", BROADCAST))
    runner.run(ops.open_receive(view, 2, "c", FCFS))
    runner.run(ops.open_send(view, 0, "c"))
    for i in range(6):
        runner.run(ops.message_send(view, 0, cid, bytes([i])))
        assert runner.run(ops.message_receive(view, 1, cid)) == bytes([i])
        assert runner.run(ops.message_receive(view, 2, cid)) == bytes([i])
    check_invariants(view, level="final")
    runner.run(ops.close_receive(view, 1, cid))
    runner.run(ops.close_receive(view, 2, cid))
    runner.run(ops.close_send(view, 0, cid))
    check_invariants(view, level="final", expect_empty=True)


# ---------------------------------------------------------------------------
# runtime workloads (concurrent schedules)
# ---------------------------------------------------------------------------

_MSGS = 12


def _fan_workers(n_fcfs=1, n_bcast=2):
    """1 sender -> mixed receivers, with a ready handshake."""
    n_ready = n_fcfs + n_bcast

    def sender(env):
        data = yield from env.open_send("data")
        rdy = yield from env.open_receive("rdy", FCFS)
        for _ in range(n_ready):
            yield from env.message_receive(rdy)
        for i in range(_MSGS):
            yield from env.message_send(data, b"m%d" % i)
        yield from env.close_receive(rdy)
        yield from env.close_send(data)
        return "sent"

    def receiver(proto, quota):
        def body(env):
            data = yield from env.open_receive("data", proto)
            rdy = yield from env.open_send("rdy")
            yield from env.message_send(rdy, b"!")
            got = []
            for _ in range(quota):
                got.append(bytes((yield from env.message_receive(data))))
            yield from env.close_receive(data)
            yield from env.close_send(rdy)
            return got

        return body

    return ([sender]
            + [receiver(FCFS, _MSGS // n_fcfs)] * n_fcfs
            + [receiver(BROADCAST, _MSGS)] * n_bcast)


def _ring_cfg(**overrides):
    defaults = dict(max_lnvcs=4, max_processes=8, max_messages=64,
                    message_pool_bytes=1 << 14, transport="ring",
                    ring_slots=4, ring_slot_bytes=32)
    defaults.update(overrides)
    return MPFConfig(**defaults)


def _check_fan(result, n_fcfs=1, n_bcast=2):
    sent = [b"m%d" % i for i in range(_MSGS)]
    fcfs_got = sorted(sum((result.results[f"p{1 + k}"]
                           for k in range(n_fcfs)), []))
    assert fcfs_got == sorted(sent)
    for k in range(n_bcast):
        assert result.results[f"p{1 + n_fcfs + k}"] == sent


def test_sim_mixed_fan_over_tiny_ring():
    rt = SimRuntime()
    result = rt.run(_fan_workers(), cfg=_ring_cfg())
    _check_fan(result)
    check_invariants(rt.last_view, level="final", expect_empty=True)


def test_sim_two_fcfs_share_the_ring():
    rt = SimRuntime()
    result = rt.run(_fan_workers(n_fcfs=2, n_bcast=1),
                    cfg=_ring_cfg(ring_slots=2))
    _check_fan(result, n_fcfs=2, n_bcast=1)
    check_invariants(rt.last_view, level="final", expect_empty=True)


@pytest.mark.parametrize("transport", ["freelist", "ring"])
def test_sim_transports_deliver_identically(transport):
    rt = SimRuntime()
    result = rt.run(_fan_workers(), cfg=_ring_cfg(transport=transport))
    _check_fan(result)
    assert result.header["live_msgs"] == 0
    assert result.header["live_lnvcs"] == 0


@pytest.mark.skipif(not sys.platform.startswith("linux"),
                    reason="POSIX runtimes")
@pytest.mark.parametrize("kind", ["threads", "procs"])
def test_real_runtimes_ring_parity(kind):
    from repro.runtime.procs import ProcRuntime
    from repro.runtime.threads import ThreadRuntime

    rt = (ThreadRuntime(join_timeout=60) if kind == "threads"
          else ProcRuntime(join_timeout=60))
    result = rt.run(_fan_workers(), cfg=_ring_cfg())
    _check_fan(result)
    assert result.header["live_msgs"] == 0
