"""Unit tests for segment sizing, layout and formatting."""

import pytest

from repro.core.errors import MPFConfigError, RegionFormatError
from repro.core.freelist import fl_count
from repro.core.layout import HDR, MPFConfig, SegmentLayout, check_region, format_region
from repro.core.protocol import MAGIC, VERSION
from repro.core.region import SharedRegion
from repro.core.structs import LNVC, MSG, RECV, SEND, block_stride


def _fresh(cfg):
    region = SharedRegion(bytearray(SegmentLayout(cfg).total_size))
    layout = format_region(region, cfg)
    return region, layout


class TestConfigValidation:
    def test_defaults_are_valid(self):
        cfg = MPFConfig()
        assert cfg.block_size == 10  # the paper's experimental block size

    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(max_lnvcs=0),
            dict(max_processes=0),
            dict(block_size=0),
            dict(max_messages=0),
            dict(send_descriptors=-1),
            dict(message_pool_bytes=4),
        ],
    )
    def test_invalid_parameters_rejected(self, kwargs):
        with pytest.raises(MPFConfigError):
            MPFConfig(**kwargs)

    def test_derived_descriptor_pools(self):
        cfg = MPFConfig(max_lnvcs=4, max_processes=3)
        assert cfg.n_send == 12
        assert cfg.n_recv == 12

    def test_explicit_descriptor_pools(self):
        cfg = MPFConfig(send_descriptors=7, recv_descriptors=9)
        assert cfg.n_send == 7
        assert cfg.n_recv == 9

    def test_derived_pools_capped(self):
        cfg = MPFConfig(max_lnvcs=1000, max_processes=1000)
        assert cfg.n_send == 65536

    def test_n_blocks_from_pool_bytes(self):
        cfg = MPFConfig(block_size=10, message_pool_bytes=1400)
        assert cfg.n_blocks == 1400 // 14

    def test_lock_and_channel_counts(self):
        cfg = MPFConfig(max_lnvcs=5)
        assert cfg.n_locks == 7  # global + alloc + one per circuit
        assert cfg.n_channels == 5


class TestLayout:
    def test_pools_do_not_overlap(self):
        cfg = MPFConfig(max_lnvcs=4, max_processes=4, max_messages=16,
                        message_pool_bytes=1 << 12)
        lay = SegmentLayout(cfg)
        spans = [
            (0, HDR.size),
            (lay.lnvc_base, lay.lnvc_base + cfg.max_lnvcs * LNVC.size),
            (lay.send_base, lay.send_base + cfg.n_send * SEND.size),
            (lay.recv_base, lay.recv_base + cfg.n_recv * RECV.size),
            (lay.msg_base, lay.msg_base + cfg.max_messages * MSG.size),
            (lay.blk_base, lay.blk_base + cfg.n_blocks * lay.blk_stride),
        ]
        for (a0, a1), (b0, b1) in zip(spans, spans[1:]):
            assert a1 <= b0, "pool overlap"
        assert spans[-1][1] <= lay.total_size

    def test_lnvc_slot_offset_roundtrip(self):
        lay = SegmentLayout(MPFConfig(max_lnvcs=8))
        for slot in range(8):
            assert lay.lnvc_slot(lay.lnvc_off(slot)) == slot

    def test_blk_stride_includes_link(self):
        assert SegmentLayout(MPFConfig(block_size=10)).blk_stride == 14
        assert block_stride(1) == 5


class TestFormat:
    def test_header_written(self):
        cfg = MPFConfig(max_lnvcs=4, max_processes=4)
        region, _ = _fresh(cfg)
        assert HDR.get(region, "magic") == MAGIC
        assert HDR.get(region, "version") == VERSION
        assert HDR.get(region, "max_lnvcs") == 4
        assert HDR.get(region, "block_size") == 10

    def test_free_lists_full_after_format(self):
        cfg = MPFConfig(max_lnvcs=4, max_processes=2, max_messages=10,
                        message_pool_bytes=1 << 12)
        region, _ = _fresh(cfg)
        assert fl_count(region, HDR.u32["free_msg"]) == 10
        assert fl_count(region, HDR.u32["free_blk"]) == cfg.n_blocks
        assert fl_count(region, HDR.u32["free_send"]) == cfg.n_send
        assert fl_count(region, HDR.u32["free_recv"]) == cfg.n_recv

    def test_counters_start_zero(self):
        region, _ = _fresh(MPFConfig())
        for f in ("live_msgs", "live_blocks", "live_bytes", "live_lnvcs",
                  "total_sends", "total_receives"):
            assert HDR.get(region, f) == 0

    def test_undersized_region_rejected(self):
        cfg = MPFConfig()
        with pytest.raises(MPFConfigError, match="too small"):
            format_region(SharedRegion(bytearray(128)), cfg)

    def test_reformat_clears_previous_state(self):
        cfg = MPFConfig(max_lnvcs=2, max_processes=2)
        region, _ = _fresh(cfg)
        HDR.set(region, "live_msgs", 99)
        format_region(region, cfg)
        assert HDR.get(region, "live_msgs") == 0


class TestCheckRegion:
    def test_accepts_matching_segment(self):
        cfg = MPFConfig(max_lnvcs=4)
        region, lay = _fresh(cfg)
        assert check_region(region, cfg).total_size == lay.total_size

    def test_rejects_unformatted(self):
        cfg = MPFConfig()
        region = SharedRegion(bytearray(SegmentLayout(cfg).total_size))
        with pytest.raises(RegionFormatError, match="magic"):
            check_region(region, cfg)

    def test_rejects_config_mismatch(self):
        region, _ = _fresh(MPFConfig(max_lnvcs=4))
        with pytest.raises(RegionFormatError, match="does not match"):
            check_region(region, MPFConfig(max_lnvcs=8))

    def test_rejects_tiny_region(self):
        with pytest.raises(RegionFormatError):
            check_region(SharedRegion(bytearray(4)), MPFConfig())
