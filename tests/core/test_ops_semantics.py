"""Delivery-semantics tests: FCFS exactly-once, BROADCAST all-see-all,
mixed protocols, retirement and the close_receive garbage problem."""

import pytest

from repro.core import ops
from repro.core.inspect import check_invariants
from repro.core.layout import HDR
from repro.core.protocol import BROADCAST, FCFS, MsgFlags, NIL
from repro.core.structs import LNVC, MSG
from repro.testing import BlockedError, DirectRunner, make_view


@pytest.fixture
def v():
    return make_view()


@pytest.fixture
def r(v):
    return DirectRunner(v)


def _setup(r, v, n_fcfs=0, n_bcast=0, name="c", sender=0):
    """Open a sender plus receivers; returns (cid, fcfs_pids, bcast_pids)."""
    cid = r.run(ops.open_send(v, sender, name))
    fcfs = list(range(10, 10 + n_fcfs))
    bcast = list(range(20, 20 + n_bcast))
    for pid in fcfs:
        r.run(ops.open_receive(v, pid, name, FCFS))
    for pid in bcast:
        r.run(ops.open_receive(v, pid, name, BROADCAST))
    return cid, fcfs, bcast


class TestFCFS:
    def test_each_message_to_exactly_one_receiver(self, r, v):
        cid, fcfs, _ = _setup(r, v, n_fcfs=3)
        for i in range(6):
            r.run(ops.message_send(v, 0, cid, f"m{i}".encode()))
        got = []
        for i in range(6):
            pid = fcfs[i % 3]
            got.append(r.run(ops.message_receive(v, pid, cid)))
        assert sorted(got) == [f"m{i}".encode() for i in range(6)]
        # All consumed: a seventh receive would block.
        with pytest.raises(BlockedError):
            r.run(ops.message_receive(v, fcfs[0], cid))

    def test_substream_is_time_ordered(self, r, v):
        # "the sequence preserving LNVC forces a time-ordering of this
        # sub-stream as well."
        cid, fcfs, _ = _setup(r, v, n_fcfs=2)
        for i in range(8):
            r.run(ops.message_send(v, 0, cid, bytes([i])))
        seen_by_a = [r.run(ops.message_receive(v, fcfs[0], cid)) for _ in range(3)]
        assert seen_by_a == sorted(seen_by_a)

    def test_fcfs_receiver_gets_messages_sent_before_join(self, r, v):
        # Conversation semantics: messages queue; a later FCFS joiner
        # may consume them (paper §3.2 lost-message discussion).
        cid = r.run(ops.open_send(v, 0, "c"))
        r.run(ops.message_send(v, 0, cid, b"early"))
        rid = r.run(ops.open_receive(v, 5, "c", FCFS))
        assert r.run(ops.message_receive(v, 5, rid)) == b"early"

    def test_queue_drains_as_receivers_consume(self, r, v):
        cid, fcfs, _ = _setup(r, v, n_fcfs=1)
        for i in range(4):
            r.run(ops.message_send(v, 0, cid, bytes([i])))
        assert HDR.get(v.region, "live_msgs") == 4
        r.run(ops.message_receive(v, fcfs[0], cid))
        r.run(ops.message_receive(v, fcfs[0], cid))
        assert HDR.get(v.region, "live_msgs") == 2


class TestBroadcast:
    def test_every_receiver_sees_every_message_in_order(self, r, v):
        cid, _, bcast = _setup(r, v, n_bcast=3)
        msgs = [f"b{i}".encode() for i in range(5)]
        for m in msgs:
            r.run(ops.message_send(v, 0, cid, m))
        for pid in bcast:
            assert [
                r.run(ops.message_receive(v, pid, cid)) for _ in range(5)
            ] == msgs

    def test_receivers_progress_independently(self, r, v):
        cid, _, bcast = _setup(r, v, n_bcast=2)
        for i in range(3):
            r.run(ops.message_send(v, 0, cid, bytes([i])))
        # Receiver A reads all three; B has read nothing yet.
        for i in range(3):
            assert r.run(ops.message_receive(v, bcast[0], cid)) == bytes([i])
        assert HDR.get(v.region, "live_msgs") == 3  # held for B
        for i in range(3):
            assert r.run(ops.message_receive(v, bcast[1], cid)) == bytes([i])
        assert HDR.get(v.region, "live_msgs") == 0

    def test_late_joiner_sees_only_new_messages(self, r, v):
        cid, _, bcast = _setup(r, v, n_bcast=1)
        r.run(ops.message_send(v, 0, cid, b"before"))
        late = 30
        r.run(ops.open_receive(v, late, "c", BROADCAST))
        r.run(ops.message_send(v, 0, cid, b"after"))
        assert r.run(ops.message_receive(v, late, cid)) == b"after"
        # The original receiver still sees both.
        assert r.run(ops.message_receive(v, bcast[0], cid)) == b"before"
        assert r.run(ops.message_receive(v, bcast[0], cid)) == b"after"


class TestMixed:
    def test_message_goes_to_all_bcast_and_one_fcfs(self, r, v):
        # "a message will be sent to all BROADCAST receiving processes
        # and to only one of the FCFS processes."
        cid, fcfs, bcast = _setup(r, v, n_fcfs=2, n_bcast=2)
        r.run(ops.message_send(v, 0, cid, b"shared"))
        assert r.run(ops.message_receive(v, bcast[0], cid)) == b"shared"
        assert r.run(ops.message_receive(v, bcast[1], cid)) == b"shared"
        assert r.run(ops.message_receive(v, fcfs[0], cid)) == b"shared"
        with pytest.raises(BlockedError):
            r.run(ops.message_receive(v, fcfs[1], cid))

    def test_retires_only_after_fcfs_and_all_bcast(self, r, v):
        cid, fcfs, bcast = _setup(r, v, n_fcfs=1, n_bcast=2)
        r.run(ops.message_send(v, 0, cid, b"x"))
        r.run(ops.message_receive(v, fcfs[0], cid))
        r.run(ops.message_receive(v, bcast[0], cid))
        assert HDR.get(v.region, "live_msgs") == 1
        r.run(ops.message_receive(v, bcast[1], cid))
        assert HDR.get(v.region, "live_msgs") == 0


class TestRetirement:
    def test_pure_broadcast_messages_retire_when_all_read(self, r, v):
        cid, _, bcast = _setup(r, v, n_bcast=2)
        r.run(ops.message_send(v, 0, cid, b"x"))
        r.run(ops.message_receive(v, bcast[0], cid))
        r.run(ops.message_receive(v, bcast[1], cid))
        assert HDR.get(v.region, "live_msgs") == 0
        check_invariants(v)

    def test_message_with_no_receivers_is_held(self, r, v):
        cid = r.run(ops.open_send(v, 0, "c"))
        r.run(ops.message_send(v, 0, cid, b"held"))
        assert HDR.get(v.region, "live_msgs") == 1

    def test_fcfs_expected_message_survives_bcast_reads(self, r, v):
        cid, fcfs, bcast = _setup(r, v, n_fcfs=1, n_bcast=1)
        r.run(ops.message_send(v, 0, cid, b"x"))
        r.run(ops.message_receive(v, bcast[0], cid))
        # Still queued: the FCFS obligation is undischarged.
        assert HDR.get(v.region, "live_msgs") == 1

    def test_retired_middle_message_unlinks_lazily(self, r, v):
        # Retirement is lazy (head-only reaping): a message retired while
        # an older one is still pending stays linked until it reaches the
        # head, then both go at once.
        cid, _, bcast = _setup(r, v, n_bcast=2)
        a, b = bcast
        r.run(ops.message_send(v, 0, cid, b"m0"))
        r.run(ops.message_send(v, 0, cid, b"m1"))
        # Both read m1? No — broadcast order forces m0 first; read m0 by
        # A only, then m1 by A only: nothing retires.
        r.run(ops.message_receive(v, a, cid))
        r.run(ops.message_receive(v, a, cid))
        assert HDR.get(v.region, "live_msgs") == 2
        # B reads m0: m0 retires and unlinks; m1 still pending for B.
        r.run(ops.message_receive(v, b, cid))
        assert HDR.get(v.region, "live_msgs") == 1
        r.run(ops.message_receive(v, b, cid))
        assert HDR.get(v.region, "live_msgs") == 0

    def test_fcfs_taken_out_of_order_reaps_in_order(self, r, v):
        # FCFS takes are always oldest-first, so physical reaping from
        # the head matches take order even with broadcast laggards.
        cid, fcfs, bcast = _setup(r, v, n_fcfs=1, n_bcast=1)
        r.run(ops.message_send(v, 0, cid, b"m0"))
        r.run(ops.message_send(v, 0, cid, b"m1"))
        r.run(ops.message_receive(v, fcfs[0], cid))  # takes m0
        r.run(ops.message_receive(v, fcfs[0], cid))  # takes m1
        assert HDR.get(v.region, "live_msgs") == 2  # bcast still owes both
        r.run(ops.message_receive(v, bcast[0], cid))
        assert HDR.get(v.region, "live_msgs") == 1


class TestCloseReceiveGarbage:
    """The paper's 'particularly vexing' §3.2 problem."""

    def test_closing_lagging_bcast_receiver_frees_its_backlog(self, r, v):
        cid, _, bcast = _setup(r, v, n_bcast=2)
        a, b = bcast
        for i in range(4):
            r.run(ops.message_send(v, 0, cid, bytes([i])))
        for _ in range(4):
            r.run(ops.message_receive(v, a, cid))
        assert HDR.get(v.region, "live_msgs") == 4  # b owes all four
        r.run(ops.close_receive(v, b, cid))
        # "all messages unread by the receiver but read by all other
        # connected receiver processes must be deleted."
        assert HDR.get(v.region, "live_msgs") == 0
        check_invariants(v)

    def test_closing_bcast_receiver_keeps_messages_others_owe(self, r, v):
        cid, _, bcast = _setup(r, v, n_bcast=2)
        a, b = bcast
        for i in range(3):
            r.run(ops.message_send(v, 0, cid, bytes([i])))
        r.run(ops.message_receive(v, a, cid))  # a read m0 only
        r.run(ops.close_receive(v, b, cid))
        # m0 retired (read by a, b's obligation cancelled); m1, m2 remain
        # because a still owes them.
        assert HDR.get(v.region, "live_msgs") == 2
        assert r.run(ops.message_receive(v, a, cid)) == bytes([1])

    def test_closing_mid_stream_receiver_decrements_only_unread(self, r, v):
        cid, _, bcast = _setup(r, v, n_bcast=2)
        a, b = bcast
        for i in range(4):
            r.run(ops.message_send(v, 0, cid, bytes([i])))
        r.run(ops.message_receive(v, b, cid))  # b read m0
        r.run(ops.message_receive(v, a, cid))  # a read m0 -> m0 retires
        assert HDR.get(v.region, "live_msgs") == 3
        r.run(ops.close_receive(v, b, cid))
        # a is still connected and owes m1..m3: nothing may vanish yet.
        assert HDR.get(v.region, "live_msgs") == 3
        for i in (1, 2, 3):
            assert r.run(ops.message_receive(v, a, cid)) == bytes([i])
        assert HDR.get(v.region, "live_msgs") == 0

    def test_closing_last_fcfs_keeps_expected_messages(self, r, v):
        # Messages that awaited an FCFS take stay queued for a future
        # joiner even after the last FCFS receiver leaves.
        cid, fcfs, bcast = _setup(r, v, n_fcfs=1, n_bcast=1)
        r.run(ops.message_send(v, 0, cid, b"keep"))
        r.run(ops.message_receive(v, bcast[0], cid))
        r.run(ops.close_receive(v, fcfs[0], cid))
        assert HDR.get(v.region, "live_msgs") == 1
        newcomer = 40
        r.run(ops.open_receive(v, newcomer, "c", FCFS))
        assert r.run(ops.message_receive(v, newcomer, cid)) == b"keep"


class TestFcfsHeadInvariant:
    def test_fcfs_head_tracks_oldest_untaken(self, r, v):
        cid, fcfs, _ = _setup(r, v, n_fcfs=1)
        slot = v.resolve(cid)
        base = v.layout.lnvc_off(slot)
        assert LNVC.get(v.region, base, "fcfs_head") == NIL
        r.run(ops.message_send(v, 0, cid, b"a"))
        head = LNVC.get(v.region, base, "fcfs_head")
        assert head != NIL
        r.run(ops.message_send(v, 0, cid, b"b"))
        assert LNVC.get(v.region, base, "fcfs_head") == head  # still oldest
        r.run(ops.message_receive(v, fcfs[0], cid))
        assert LNVC.get(v.region, base, "fcfs_head") != head

    def test_flags_reflect_receiver_population(self, r, v):
        cid, fcfs, bcast = _setup(r, v, n_fcfs=1, n_bcast=1)
        slot = v.resolve(cid)
        base = v.layout.lnvc_off(slot)
        r.run(ops.message_send(v, 0, cid, b"x"))
        msg = LNVC.get(v.region, base, "fifo_head")
        flags = MsgFlags(MSG.get(v.region, msg, "flags"))
        assert flags & MsgFlags.FCFS_EXPECTED
        assert flags & MsgFlags.HAD_RECEIVERS
        assert MSG.get(v.region, msg, "bcast_pending") == 1
