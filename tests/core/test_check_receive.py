"""Unit tests for check_receive."""

import pytest

from repro.core import ops
from repro.core.errors import NotConnectedError, UnknownLNVCError
from repro.core.protocol import BROADCAST, FCFS
from repro.testing import DirectRunner, make_view


@pytest.fixture
def v():
    return make_view()


@pytest.fixture
def r(v):
    return DirectRunner(v)


def test_empty_circuit_reports_zero(r, v):
    cid = r.run(ops.open_receive(v, 0, "c", FCFS))
    assert r.run(ops.check_receive(v, 0, cid)) == 0


def test_counts_queued_fcfs_messages(r, v):
    cid = r.run(ops.open_send(v, 0, "c"))
    r.run(ops.open_receive(v, 1, "c", FCFS))
    for _ in range(3):
        r.run(ops.message_send(v, 0, cid, b"x"))
    assert r.run(ops.check_receive(v, 1, cid)) == 3


def test_count_decreases_as_messages_consumed(r, v):
    cid = r.run(ops.open_send(v, 0, "c"))
    r.run(ops.open_receive(v, 1, "c", FCFS))
    r.run(ops.message_send(v, 0, cid, b"x"))
    r.run(ops.message_send(v, 0, cid, b"y"))
    r.run(ops.message_receive(v, 1, cid))
    assert r.run(ops.check_receive(v, 1, cid)) == 1


def test_broadcast_count_is_per_receiver(r, v):
    cid = r.run(ops.open_send(v, 0, "c"))
    r.run(ops.open_receive(v, 1, "c", BROADCAST))
    r.run(ops.open_receive(v, 2, "c", BROADCAST))
    r.run(ops.message_send(v, 0, cid, b"x"))
    r.run(ops.message_send(v, 0, cid, b"y"))
    r.run(ops.message_receive(v, 1, cid))
    assert r.run(ops.check_receive(v, 1, cid)) == 1
    assert r.run(ops.check_receive(v, 2, cid)) == 2


def test_fcfs_check_sees_messages_another_fcfs_may_steal(r, v):
    # The documented race: the count is advisory for FCFS (paper §2).
    cid = r.run(ops.open_send(v, 0, "c"))
    r.run(ops.open_receive(v, 1, "c", FCFS))
    r.run(ops.open_receive(v, 2, "c", FCFS))
    r.run(ops.message_send(v, 0, cid, b"x"))
    assert r.run(ops.check_receive(v, 1, cid)) == 1
    assert r.run(ops.check_receive(v, 2, cid)) == 1
    r.run(ops.message_receive(v, 2, cid))  # pid 2 wins the race
    assert r.run(ops.check_receive(v, 1, cid)) == 0


def test_broadcast_count_guaranteed_deliverable(r, v):
    # "If the receive connection is BROADCAST, the message is guaranteed
    # to be present when a message_receive() is executed."
    cid = r.run(ops.open_send(v, 0, "c"))
    r.run(ops.open_receive(v, 1, "c", BROADCAST))
    r.run(ops.open_receive(v, 2, "c", FCFS))
    r.run(ops.message_send(v, 0, cid, b"x"))
    r.run(ops.message_receive(v, 2, cid))  # FCFS consumes its share
    assert r.run(ops.check_receive(v, 1, cid)) == 1
    assert r.run(ops.message_receive(v, 1, cid)) == b"x"


def test_requires_receive_connection(r, v):
    cid = r.run(ops.open_send(v, 0, "c"))
    with pytest.raises(NotConnectedError):
        r.run(ops.check_receive(v, 0, cid))


def test_unknown_circuit(r, v):
    with pytest.raises(UnknownLNVCError):
        r.run(ops.check_receive(v, 0, 31337))


def test_check_does_not_consume(r, v):
    cid = r.run(ops.open_send(v, 0, "c"))
    r.run(ops.open_receive(v, 1, "c", FCFS))
    r.run(ops.message_send(v, 0, cid, b"x"))
    for _ in range(5):
        assert r.run(ops.check_receive(v, 1, cid)) == 1
    assert r.run(ops.message_receive(v, 1, cid)) == b"x"
