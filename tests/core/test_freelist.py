"""Unit tests for the intrusive free lists."""

import pytest

from repro.core.freelist import fl_alloc, fl_count, fl_free, init_freelist
from repro.core.protocol import NIL
from repro.core.region import SharedRegion

HEAD = 0
BASE = 16
STRIDE = 12


def _region(count=5):
    r = SharedRegion(bytearray(BASE + count * STRIDE + 64))
    init_freelist(r, HEAD, BASE, STRIDE, count)
    return r


def test_init_links_all_records():
    r = _region(5)
    assert fl_count(r, HEAD) == 5


def test_init_zero_count_is_empty():
    r = SharedRegion(bytearray(64))
    init_freelist(r, HEAD, BASE, STRIDE, 0)
    assert r.u32(HEAD) == NIL
    assert fl_count(r, HEAD) == 0


def test_alloc_returns_records_in_address_order():
    r = _region(3)
    assert fl_alloc(r, HEAD) == BASE
    assert fl_alloc(r, HEAD) == BASE + STRIDE
    assert fl_alloc(r, HEAD) == BASE + 2 * STRIDE


def test_alloc_exhaustion_returns_nil():
    r = _region(2)
    fl_alloc(r, HEAD)
    fl_alloc(r, HEAD)
    assert fl_alloc(r, HEAD) == NIL


def test_free_is_lifo():
    r = _region(3)
    a = fl_alloc(r, HEAD)
    b = fl_alloc(r, HEAD)
    fl_free(r, HEAD, a)
    fl_free(r, HEAD, b)
    assert fl_alloc(r, HEAD) == b
    assert fl_alloc(r, HEAD) == a


def test_alloc_free_preserves_count():
    r = _region(4)
    offs = [fl_alloc(r, HEAD) for _ in range(4)]
    for off in offs:
        fl_free(r, HEAD, off)
    assert fl_count(r, HEAD) == 4


def test_count_detects_cycle():
    r = _region(2)
    a = fl_alloc(r, HEAD)
    fl_free(r, HEAD, a)
    # Corrupt: make the record point at itself.
    r.set_u32(a, a)
    with pytest.raises(RuntimeError, match="cycle"):
        fl_count(r, HEAD, limit=10)


def test_single_record_pool():
    r = SharedRegion(bytearray(64))
    init_freelist(r, HEAD, BASE, STRIDE, 1)
    assert fl_alloc(r, HEAD) == BASE
    assert fl_alloc(r, HEAD) == NIL
    fl_free(r, HEAD, BASE)
    assert fl_alloc(r, HEAD) == BASE
