"""Unit tests for the cost model and work descriptors."""

from repro.core import ops
from repro.core.costmodel import Costs, DEFAULT_COSTS, costs_with, free_costs
from repro.core.protocol import FCFS
from repro.core.work import Work
from repro.testing import DirectRunner, make_view


def test_default_costs_nonzero():
    for f in Costs.__dataclass_fields__:
        assert getattr(DEFAULT_COSTS, f) > 0


def test_free_costs_all_zero():
    z = free_costs()
    for f in Costs.__dataclass_fields__:
        assert getattr(z, f) == 0


def test_costs_with_overrides_one_field():
    c = costs_with(send_fixed=1)
    assert c.send_fixed == 1
    assert c.recv_fixed == DEFAULT_COSTS.recv_fixed


def test_scaled_multiplies_everything():
    c = DEFAULT_COSTS.scaled(2.0)
    assert c.send_fixed == 2 * DEFAULT_COSTS.send_fixed
    assert c.blk_fill == 2 * DEFAULT_COSTS.blk_fill


def test_scaled_rounds_to_nonnegative_int():
    c = DEFAULT_COSTS.scaled(0.0)
    assert c.send_fixed == 0


def test_work_addition():
    a = Work(instrs=1, copy_bytes=2, blocks=3)
    b = Work(instrs=10, flops=5, label="x")
    c = a + b
    assert (c.instrs, c.copy_bytes, c.blocks, c.flops) == (11, 2, 3, 5)
    assert c.label == "x"


def test_work_is_zero():
    assert Work().is_zero()
    assert not Work(instrs=1).is_zero()
    assert not Work(page_bytes=1).is_zero()


def test_ops_logic_independent_of_cost_constants():
    """The same op sequence must produce identical shared state under a
    zero-cost model — costs inform timing, never behaviour."""
    results = []
    for costs in (DEFAULT_COSTS, free_costs()):
        v = make_view(costs=costs)
        r = DirectRunner(v)
        cid = r.run(ops.open_send(v, 0, "c"))
        r.run(ops.open_receive(v, 1, "c", FCFS))
        r.run(ops.message_send(v, 0, cid, b"payload!"))
        results.append(r.run(ops.message_receive(v, 1, cid)))
    assert results[0] == results[1] == b"payload!"


def test_send_charge_scales_with_blocks():
    v = make_view()
    r = DirectRunner(v)
    cid = r.run(ops.open_send(v, 0, "c"))
    r.run(ops.open_receive(v, 0, "c", FCFS))

    def instrs_for(n):
        r.charged.clear()
        r.run(ops.message_send(v, 0, cid, b"x" * n))
        total = r.total_instrs()
        r.run(ops.message_receive(v, 0, cid))
        return total

    small, large = instrs_for(10), instrs_for(1000)
    assert large > small + 90 * DEFAULT_COSTS.blk_fill  # ~99 extra blocks
