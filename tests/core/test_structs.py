"""Unit tests for record field layouts and accessors."""

from repro.core.protocol import NAME_MAX
from repro.core.region import SharedRegion
from repro.core.structs import LNVC, MSG, RECV, SEND, Record, block_stride


def test_record_field_offsets_sequential():
    rec = Record("T", ("a", "b", "c"))
    assert rec.offsets == {"a": 0, "b": 4, "c": 8}
    assert rec.size == 12


def test_record_tail_bytes_extend_size():
    rec = Record("T", ("a",), tail_bytes=10)
    assert rec.tail_off == 4
    assert rec.size == 14


def test_record_get_set_add():
    rec = Record("T", ("a", "b"))
    r = SharedRegion(bytearray(64))
    rec.set(r, 16, "b", 7)
    assert rec.get(r, 16, "b") == 7
    assert rec.add(r, 16, "b", -2) == 5


def test_record_clear_zeroes_fields_and_tail():
    rec = Record("T", ("a",), tail_bytes=4)
    r = SharedRegion(bytearray(64))
    rec.set(r, 0, "a", 9)
    r.write(4, b"abcd")
    rec.clear(r, 0)
    assert rec.get(r, 0, "a") == 0
    assert r.read(4, 4) == b"\x00" * 4


def test_record_dump_snapshots_fields():
    rec = Record("T", ("x", "y"))
    r = SharedRegion(bytearray(16))
    rec.set(r, 0, "x", 1)
    rec.set(r, 0, "y", 2)
    assert rec.dump(r, 0) == {"x": 1, "y": 2}


def test_records_independent_at_different_bases():
    rec = Record("T", ("a",))
    r = SharedRegion(bytearray(64))
    rec.set(r, 0, "a", 1)
    rec.set(r, rec.size, "a", 2)
    assert rec.get(r, 0, "a") == 1
    assert rec.get(r, rec.size, "a") == 2


def test_lnvc_record_has_paper_fields():
    # The descriptor contents enumerated in paper §3.1.
    for field in ("nmsgs", "fifo_head", "fifo_tail", "fcfs_head",
                  "send_list", "recv_list"):
        assert field in LNVC.offsets


def test_lnvc_name_capacity():
    assert LNVC.size - LNVC.tail_off == NAME_MAX + 1


def test_recv_descriptor_has_individual_head():
    # "BROADCAST receive processes have an additional descriptor field
    # used for individual FIFO head pointers."
    assert "head" in RECV.offsets


def test_msg_header_fields():
    for field in ("length", "first_blk", "next_msg", "bcast_pending",
                  "busy", "flags", "seqno"):
        assert field in MSG.offsets


def test_send_descriptor_minimal():
    assert set(SEND.offsets) == {"pid", "next"}


def test_block_stride():
    assert block_stride(10) == 14  # the paper's 10-byte blocks
    assert block_stride(1) == 5
    assert block_stride(1024) == 1028


def test_free_link_aliases_first_field():
    # Free lists reuse offset 0; every record must have its first field
    # at offset 0 so the aliasing is well defined.
    for rec in (SEND, RECV, MSG, LNVC):
        assert min(rec.offsets.values()) == 0
