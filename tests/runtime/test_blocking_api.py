"""Tests for the blocking convenience facade (MPFSystem / BlockingMPF)."""

import threading

import pytest

from repro.core.errors import BufferOverflowError, NotConnectedError
from repro.core.layout import MPFConfig
from repro.core.protocol import BROADCAST, FCFS
from repro.runtime.blocking import MPFSystem


@pytest.fixture
def system():
    return MPFSystem(MPFConfig(max_lnvcs=8, max_processes=8))


def test_loopback_roundtrip(system):
    mpf = system.client(0)
    cid = mpf.open_send("loop")
    assert mpf.open_receive("loop", FCFS) == cid
    mpf.message_send(cid, b"hi")
    assert mpf.message_receive(cid) == b"hi"
    mpf.close_send(cid)
    mpf.close_receive(cid)


def test_check_receive(system):
    mpf = system.client(0)
    cid = mpf.open_send("c")
    mpf.open_receive("c", FCFS)
    assert mpf.check_receive(cid) == 0
    mpf.message_send(cid, b"x")
    assert mpf.check_receive(cid) == 1


def test_max_len_enforced(system):
    mpf = system.client(0)
    cid = mpf.open_send("c")
    mpf.open_receive("c", FCFS)
    mpf.message_send(cid, b"longish")
    with pytest.raises(BufferOverflowError):
        mpf.message_receive(cid, max_len=2)


def test_pid_validation(system):
    with pytest.raises(ValueError):
        system.client(99)
    with pytest.raises(ValueError):
        system.client(-1)


def test_errors_surface_unwrapped(system):
    mpf = system.client(0)
    cid = mpf.open_receive("c", FCFS)
    with pytest.raises(NotConnectedError):
        mpf.message_send(cid, b"x")


def test_two_threads_blocking_handoff(system):
    """A blocking receive in one thread is satisfied by a send in another."""
    results = {}

    def consumer():
        mpf = system.client(1)
        cid = mpf.open_receive("handoff", FCFS)
        results["got"] = mpf.message_receive(cid)  # blocks
        mpf.close_receive(cid)

    t = threading.Thread(target=consumer)
    t.start()
    producer = system.client(0)
    cid = producer.open_send("handoff")
    producer.message_send(cid, b"wakes the consumer")
    t.join(10)
    assert not t.is_alive()
    assert results["got"] == b"wakes the consumer"
    producer.close_send(cid)


def test_broadcast_to_two_threads(system):
    got = {}
    ready = threading.Barrier(3, timeout=10)

    def listener(pid):
        mpf = system.client(pid)
        cid = mpf.open_receive("pa", BROADCAST)
        ready.wait()  # guarantee both joined before the send
        got[pid] = mpf.message_receive(cid)

    threads = [threading.Thread(target=listener, args=(p,)) for p in (1, 2)]
    for t in threads:
        t.start()
    ready.wait()
    speaker = system.client(0)
    cid = speaker.open_send("pa")
    speaker.message_send(cid, b"announcement")
    for t in threads:
        t.join(10)
        assert not t.is_alive()
    assert got == {1: b"announcement", 2: b"announcement"}
