"""Unit tests for the runtime base helpers and Env surface."""

import pytest

from repro.core.layout import MPFConfig
from repro.runtime.base import RunResult, Runtime
from repro.runtime.sim import SimRuntime


class TestHelpers:
    def test_default_config_from_worker_count(self):
        cfg = Runtime.default_config(10, None)
        assert cfg.max_processes == 10
        assert cfg.max_lnvcs >= 20

    def test_default_config_passthrough(self):
        mine = MPFConfig(max_lnvcs=3, max_processes=2)
        assert Runtime.default_config(2, mine) is mine

    def test_process_names_generated(self):
        assert Runtime.process_names(3, None) == ["p0", "p1", "p2"]

    def test_process_names_validated(self):
        with pytest.raises(ValueError, match="match"):
            Runtime.process_names(2, ["only-one"])
        with pytest.raises(ValueError, match="unique"):
            Runtime.process_names(2, ["same", "same"])


class TestRunResult:
    def test_result_list_ordered_by_rank(self):
        rr = RunResult(results={"p2": "c", "p0": "a", "p1": "b"},
                       elapsed=0.0, kind="sim")
        assert rr.result_list() == ["a", "b", "c"]

    def test_result_list_double_digit_ranks(self):
        names = {f"p{i}": i for i in range(12)}
        rr = RunResult(results=names, elapsed=0.0, kind="sim")
        assert rr.result_list() == list(range(12))


class TestEnvSurface:
    def test_compute_is_a_generator(self):
        def worker(env):
            gen = env.compute(flops=10)
            assert hasattr(gen, "send")
            yield from gen
            return "ok"

        assert SimRuntime().run([worker]).results["p0"] == "ok"

    def test_compute_advances_by_flop_time(self):
        def worker(env):
            t0 = env.now()
            yield from env.compute(flops=1000)
            return env.now() - t0

        from repro.machine.balance import BALANCE_21000

        dt = SimRuntime().run([worker]).results["p0"]
        assert dt == pytest.approx(1000 * BALANCE_21000.flop_seconds)

    def test_compute_instrs_and_flops_combine(self):
        def worker(env):
            t0 = env.now()
            yield from env.compute(flops=100, instrs=1000)
            return env.now() - t0

        from repro.machine.balance import BALANCE_21000

        dt = SimRuntime().run([worker]).results["p0"]
        expected = (100 * BALANCE_21000.flop_seconds
                    + 1000 * BALANCE_21000.instr_seconds)
        assert dt == pytest.approx(expected)

    def test_rank_is_pid_identity(self):
        """Env.rank is the paper's process_id: connections made by one
        rank are invisible to another."""
        from repro.core.errors import NotConnectedError
        from repro.core.protocol import FCFS

        def opener(env):
            cid = yield from env.open_receive("c", FCFS)
            return cid

        def intruder(env):
            yield from env.compute(instrs=10_000)
            cid = yield from env.open_send("c")
            try:
                yield from env.check_receive(cid)
            except NotConnectedError:
                return "denied"
            return "allowed"

        result = SimRuntime().run([opener, intruder])
        assert result.results["p1"] == "denied"
