"""Tests for the mpf-inspect command-line tool."""

import sys
import uuid

import pytest

from repro.core.layout import MPFConfig
from repro.core.protocol import FCFS
from repro.inspect_cli import main
from repro.runtime.posix import PosixSegment

pytestmark = pytest.mark.skipif(
    not sys.platform.startswith("linux"), reason="POSIX shared memory"
)

CFG_FLAGS = [
    "--max-lnvcs", "8", "--max-processes", "4",
    "--max-messages", "64", "--message-pool-bytes", str(1 << 16),
]
CFG = MPFConfig(max_lnvcs=8, max_processes=4, max_messages=64,
                message_pool_bytes=1 << 16)


def _unlink(seg, name):
    """Unlink, restoring the tracker entry the CLI's attach removed.

    In production the CLI runs in its own process, so its unregister
    only affects itself; in-process tests must put the entry back so the
    creator's unlink finds it.
    """
    try:
        from multiprocessing import resource_tracker

        resource_tracker.register(f"/{name}", "shared_memory")
    except Exception:
        pass
    seg.unlink()


def test_inspect_live_segment(capsys):
    name = f"mpfcli-{uuid.uuid4().hex[:10]}"
    seg = PosixSegment.create(name, CFG)
    try:
        mpf = seg.client(0)
        cid = mpf.open_send("queue")
        mpf.open_receive("queue", FCFS)
        mpf.message_send(cid, b"pending message")
        assert main([name, *CFG_FLAGS]) == 0
        out = capsys.readouterr().out
        assert "circuit 'queue'" in out
        assert "1 queued" in out
        assert "15B" in out
    finally:
        _unlink(seg, name)


def test_inspect_missing_segment(capsys):
    assert main([f"mpfcli-{uuid.uuid4().hex[:10]}", *CFG_FLAGS]) == 2
    assert "no shared segment" in capsys.readouterr().err


def test_inspect_config_mismatch(capsys):
    name = f"mpfcli-{uuid.uuid4().hex[:10]}"
    seg = PosixSegment.create(name, CFG)
    try:
        rc = main([name, "--max-lnvcs", "16", *CFG_FLAGS[2:]])
        assert rc == 1
        assert "error:" in capsys.readouterr().err
    finally:
        _unlink(seg, name)


def test_inspect_does_not_disturb_segment(capsys):
    name = f"mpfcli-{uuid.uuid4().hex[:10]}"
    seg = PosixSegment.create(name, CFG)
    try:
        mpf = seg.client(0)
        cid = mpf.open_send("q")
        mpf.open_receive("q", FCFS)
        mpf.message_send(cid, b"still here")
        main([name, *CFG_FLAGS])
        capsys.readouterr()
        assert mpf.message_receive(cid) == b"still here"
    finally:
        _unlink(seg, name)
