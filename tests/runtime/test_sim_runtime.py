"""Tests for the simulated-machine runtime."""

import pytest

from repro.core.layout import MPFConfig
from repro.core.protocol import BROADCAST, FCFS
from repro.machine.balance import BALANCE_21000, MachineConfig
from repro.machine.engine import DeadlockError
from repro.machine.stats import MachineReport
from repro.runtime.sim import SimRuntime


def ping(env):
    cid = yield from env.open_send("ping")
    yield from env.message_send(cid, b"ball")
    got = yield from env.message_receive(
        (yield from env.open_receive("pong", FCFS))
    )
    return got


def pong(env):
    rid = yield from env.open_receive("ping", FCFS)
    got = yield from env.message_receive(rid)
    cid = yield from env.open_send("pong")
    yield from env.message_send(cid, got[::-1])
    return got


def test_two_process_ping_pong():
    result = SimRuntime().run([ping, pong])
    assert result.results == {"p0": b"llab", "p1": b"ball"}
    assert result.kind == "sim"
    assert result.elapsed > 0


def test_elapsed_is_simulated_time_not_wall():
    # A gigantic compute finishes instantly in wall time.
    def cruncher(env):
        yield from env.compute(flops=10**9)
        return env.now()

    result = SimRuntime().run([cruncher])
    assert result.elapsed > 1000.0  # simulated seconds


def test_report_populated():
    result = SimRuntime().run([ping, pong])
    assert isinstance(result.report, MachineReport)
    assert result.report.sim_seconds == result.elapsed
    assert result.report.lock_acquires > 0
    assert result.report.copies >= 2


def test_header_snapshot():
    result = SimRuntime().run([ping, pong])
    assert result.header["total_sends"] == 2
    assert result.header["total_receives"] == 2
    assert result.header["live_msgs"] == 0


def test_deterministic_across_runs():
    a = SimRuntime().run([ping, pong])
    b = SimRuntime().run([ping, pong])
    assert a.elapsed == b.elapsed
    assert a.results == b.results
    assert a.report.events == b.report.events


def test_custom_machine_changes_timing():
    slow = MachineConfig(cpu_hz=1e6)  # 10x slower CPU
    fast = SimRuntime().run([ping, pong]).elapsed
    slower = SimRuntime(machine=slow).run([ping, pong]).elapsed
    assert slower > 5 * fast


def test_blocked_receive_raises_deadlock():
    def stuck(env):
        rid = yield from env.open_receive("nothing", FCFS)
        yield from env.message_receive(rid)

    with pytest.raises(DeadlockError):
        SimRuntime().run([stuck])


def test_lost_message_hazard_reproduced():
    """Paper §3.2: sender closes before receiver joins -> messages lost,
    receiver blocks forever.  The simulator diagnoses it as deadlock."""

    def early_sender(env):
        cid = yield from env.open_send("hazard")
        yield from env.message_send(cid, b"gone")
        yield from env.close_send(cid)

    def late_receiver(env):
        yield from env.compute(instrs=10**6)  # arrive after the close
        rid = yield from env.open_receive("hazard", FCFS)
        yield from env.message_receive(rid)

    with pytest.raises(DeadlockError):
        SimRuntime().run([early_sender, late_receiver])


def test_custom_names():
    def noop(env):
        yield from env.compute(instrs=1)
        return env.rank

    result = SimRuntime().run([noop, noop], names=["alice", "bob"])
    assert result.results == {"alice": 0, "bob": 1}


def test_duplicate_names_rejected():
    def noop(env):
        yield from env.compute(instrs=1)

    with pytest.raises(ValueError):
        SimRuntime().run([noop, noop], names=["x", "x"])


def test_worker_exception_propagates():
    def bad(env):
        yield from env.compute(instrs=1)
        raise RuntimeError("app bug")

    with pytest.raises(RuntimeError, match="app bug"):
        SimRuntime().run([bad])


def test_env_now_tracks_clock():
    stamps = []

    def proc(env):
        stamps.append(env.now())
        yield from env.compute(instrs=1000)
        stamps.append(env.now())

    SimRuntime().run([proc])
    assert stamps[1] - stamps[0] == pytest.approx(1e-3)


def test_env_rank_and_nprocs():
    def proc(env):
        yield from env.compute(instrs=1)
        return (env.rank, env.nprocs)

    result = SimRuntime().run([proc] * 3)
    assert result.result_list() == [(0, 3), (1, 3), (2, 3)]


def test_broadcast_fanout_on_sim():
    def sender(env):
        # Receivers join before the barrier-free send because the sim
        # starts everyone at t=0 and open_receive costs less than the
        # sender's open+compute path below.
        cid = yield from env.open_send("wave")
        yield from env.compute(instrs=100_000)
        yield from env.message_send(cid, b"all")

    def receiver(env):
        rid = yield from env.open_receive("wave", BROADCAST)
        return (yield from env.message_receive(rid))

    result = SimRuntime().run([sender, receiver, receiver, receiver])
    assert [result.results[f"p{i}"] for i in (1, 2, 3)] == [b"all"] * 3


def test_explicit_config_respected():
    def proc(env):
        cid = yield from env.open_send("c")
        yield from env.message_send(cid, b"x")
        return True

    cfg = MPFConfig(max_lnvcs=2, max_processes=1, max_messages=4,
                    message_pool_bytes=1 << 10)
    result = SimRuntime().run([proc], cfg=cfg)
    assert result.results["p0"] is True
