"""Tests for the named-segment POSIX runtime (unrelated processes)."""

import subprocess
import sys
import textwrap
import uuid

import pytest

from repro.core.errors import RegionFormatError
from repro.core.layout import MPFConfig
from repro.core.protocol import FCFS
from repro.runtime.posix import PosixSegment

pytestmark = pytest.mark.skipif(
    not sys.platform.startswith("linux"), reason="POSIX shared memory"
)

CFG = dict(max_lnvcs=8, max_processes=4, max_messages=64,
           message_pool_bytes=1 << 16)


def fresh_name():
    return f"mpftest-{uuid.uuid4().hex[:12]}"


def test_create_use_unlink():
    with PosixSegment.create(fresh_name(), MPFConfig(**CFG)) as seg:
        mpf = seg.client(0)
        cid = mpf.open_send("loop")
        mpf.open_receive("loop", FCFS)
        mpf.message_send(cid, b"roundtrip")
        assert mpf.message_receive(cid) == b"roundtrip"
        mpf.close_send(cid)
        mpf.close_receive(cid)


def test_attach_sees_creator_state():
    name = fresh_name()
    seg = PosixSegment.create(name, MPFConfig(**CFG))
    try:
        a = seg.client(0)
        cid = a.open_send("mail")
        a.message_send(cid, b"from creator")
        other = PosixSegment.attach(name, MPFConfig(**CFG))
        try:
            b = other.client(1)
            rid = b.open_receive("mail", FCFS)
            assert rid == cid
            assert b.message_receive(rid) == b"from creator"
            b.close_receive(rid)
        finally:
            other.close()
        a.close_send(cid)
    finally:
        seg.unlink()


def test_ring_transport_over_named_segment():
    cfg = MPFConfig(transport="ring", ring_slots=4, ring_slot_bytes=32,
                    **CFG)
    with PosixSegment.create(fresh_name(), cfg) as seg:
        mpf = seg.client(0)
        cid = mpf.open_send("loop")
        mpf.open_receive("loop", FCFS)
        # 8 messages through 4 slots: the ring wraps on a real shm
        # segment with flock-file locks, same semantics as in-memory.
        for i in range(8):
            mpf.message_send(cid, b"slot %d" % i)
            assert mpf.message_receive(cid) == b"slot %d" % i
        mpf.close_send(cid)
        mpf.close_receive(cid)


def test_attach_validates_config():
    name = fresh_name()
    seg = PosixSegment.create(name, MPFConfig(**CFG))
    try:
        bad = dict(CFG, max_lnvcs=16)
        with pytest.raises(RegionFormatError):
            PosixSegment.attach(name, MPFConfig(**bad))
    finally:
        seg.unlink()


def test_attach_missing_segment():
    with pytest.raises(FileNotFoundError):
        PosixSegment.attach(fresh_name(), MPFConfig(**CFG))


def test_client_pid_validation():
    with PosixSegment.create(fresh_name(), MPFConfig(**CFG)) as seg:
        with pytest.raises(ValueError):
            seg.client(99)


CHILD_SCRIPT = textwrap.dedent(
    """
    import sys
    from repro.core.layout import MPFConfig
    from repro.core.protocol import FCFS
    from repro.runtime.posix import PosixSegment

    name = sys.argv[1]
    cfg = MPFConfig(max_lnvcs=8, max_processes=4, max_messages=64,
                    message_pool_bytes=1 << 16)
    seg = PosixSegment.attach(name, cfg)
    try:
        mpf = seg.client(1)
        jobs = mpf.open_receive("jobs", FCFS)
        results = mpf.open_send("results")
        while True:
            msg = mpf.message_receive(jobs)
            if msg == b"STOP":
                break
            mpf.message_send(results, msg.upper())
        mpf.close_receive(jobs)
        mpf.close_send(results)
    finally:
        seg.close()
    print("child done")
    """
)


def test_truly_independent_processes():
    """A separately launched Python interpreter attaches by name and
    exchanges messages with this process — the paper's Unix-processes
    deployment, with no fork relationship at all."""
    name = fresh_name()
    seg = PosixSegment.create(name, MPFConfig(**CFG))
    try:
        child = subprocess.Popen(
            [sys.executable, "-c", CHILD_SCRIPT, name],
            stdout=subprocess.PIPE, stderr=subprocess.PIPE, text=True,
        )
        mpf = seg.client(0)
        jobs = mpf.open_send("jobs")
        results = mpf.open_receive("results", FCFS)
        for word in (b"hello", b"independent", b"process"):
            mpf.message_send(jobs, word)
        got = [mpf.message_receive(results) for _ in range(3)]
        mpf.message_send(jobs, b"STOP")
        out, err = child.communicate(timeout=60)
        assert child.returncode == 0, err
        assert "child done" in out
        assert sorted(got) == [b"HELLO", b"INDEPENDENT", b"PROCESS"]
        mpf.close_send(jobs)
        mpf.close_receive(results)
    finally:
        seg.unlink()
