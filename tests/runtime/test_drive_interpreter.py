"""Tests for the real-runtime effect interpreter (drive) in isolation."""

import threading

import pytest

from repro.core.effects import Acquire, Charge, Release, WaitOn, Wake
from repro.core.layout import MPFConfig
from repro.core.protocol import FIRST_LNVC_LOCK
from repro.core.work import Work
from repro.runtime.threads import RealSync, drive


@pytest.fixture
def sync():
    return RealSync(MPFConfig(max_lnvcs=4, max_processes=2),
                    threading.Lock, threading.Condition)


def gen_of(*effects, result=None):
    def g():
        for e in effects:
            yield e
        return result

    return g()


def test_returns_value(sync):
    assert drive(gen_of(result=41), sync) == 41


def test_charge_is_free(sync):
    assert drive(gen_of(Charge(Work(instrs=10**9)), result="x"), sync) == "x"


def test_acquire_release_real_locks(sync):
    drive(gen_of(Acquire(0), Release(0)), sync)
    assert sync.locks[0].acquire(blocking=False)  # actually released
    sync.locks[0].release()


def test_wake_on_idle_channel_is_safe(sync):
    drive(gen_of(Wake(1)), sync)


def test_waiton_chan_lock_mismatch_rejected(sync):
    gen = gen_of(Acquire(FIRST_LNVC_LOCK + 0), WaitOn(1, FIRST_LNVC_LOCK + 0))
    with pytest.raises(RuntimeError, match="expected circuit lock"):
        drive(gen, sync)


def test_non_effect_rejected(sync):
    with pytest.raises(RuntimeError, match="non-effect"):
        drive(gen_of("hello"), sync)


def test_waiton_wake_handoff_between_threads(sync):
    """WaitOn really sleeps on the circuit's condition and Wake really
    resumes it, with the lock properly re-held on resume."""
    slot = 2
    lock_id = FIRST_LNVC_LOCK + slot
    stages = []

    def sleeper():
        def g():
            yield Acquire(lock_id)
            stages.append("sleeping")
            yield WaitOn(slot, lock_id)
            # Lock must be held again here.
            assert not sync.locks[lock_id].acquire(blocking=False)
            stages.append("woke")
            yield Release(lock_id)

        drive(g(), sync)

    t = threading.Thread(target=sleeper)
    t.start()
    while "sleeping" not in stages:
        pass  # the sleeper registers under its own lock; spin briefly
    drive(gen_of(Wake(slot)), sync)
    t.join(10)
    assert not t.is_alive()
    assert stages == ["sleeping", "woke"]


def test_exception_propagates_from_generator(sync):
    def g():
        yield Charge(Work())
        raise KeyError("inner")

    with pytest.raises(KeyError, match="inner"):
        drive(g(), sync)
