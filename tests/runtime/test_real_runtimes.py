"""Tests for the thread and process runtimes, and cross-runtime parity.

Real runtimes give arbitrary interleavings, so these programs use the
loss-free joining discipline of :mod:`repro.patterns` wherever a circuit
must outlive its sender.
"""

import sys

import pytest

from repro.core.errors import DeadlockSuspectedError
from repro.core.protocol import BROADCAST, FCFS
from repro.patterns import all_to_all, barrier, broadcast, gather
from repro.runtime.procs import ProcRuntime
from repro.runtime.sim import SimRuntime
from repro.runtime.threads import ThreadRuntime

THREADS = ThreadRuntime(join_timeout=60)
pytestmark = pytest.mark.skipif(
    not sys.platform.startswith("linux"), reason="POSIX runtimes"
)


def pipeline_workers(n_items=6):
    """Producer -> two FCFS consumers, with a join handshake."""

    def producer(env):
        cid = yield from env.open_send("jobs")
        rid = yield from env.open_receive("ready", FCFS)
        for _ in range(2):
            yield from env.message_receive(rid)
        for i in range(n_items):
            yield from env.message_send(cid, bytes([i]))
        yield from env.close_send(cid)
        yield from env.close_receive(rid)
        return "sent"

    def consumer(env):
        cid = yield from env.open_receive("jobs", FCFS)
        rdy = yield from env.open_send("ready")
        yield from env.message_send(rdy, b"up")
        got = []
        for _ in range(n_items // 2):
            got.append((yield from env.message_receive(cid)))
        yield from env.close_send(rdy)
        yield from env.close_receive(cid)
        return got

    return [producer, consumer, consumer]


def check_pipeline(result):
    assert result.results["p0"] == "sent"
    items = sorted(result.results["p1"] + result.results["p2"])
    assert items == [bytes([i]) for i in range(6)]
    assert result.header["live_msgs"] == 0
    assert result.header["live_lnvcs"] == 0


def test_threads_pipeline():
    check_pipeline(THREADS.run(pipeline_workers()))


def test_procs_pipeline():
    check_pipeline(ProcRuntime(join_timeout=60).run(pipeline_workers()))


def test_threads_broadcast_pattern():
    def worker(env):
        data = yield from broadcast(
            env, "bc", 0, 4, b"from-root" if env.rank == 0 else None
        )
        return data

    result = THREADS.run([worker] * 4)
    assert set(result.results.values()) == {b"from-root"}


def test_threads_gather_pattern():
    def worker(env):
        return (yield from gather(env, "g", 0, 5, bytes([env.rank])))

    result = THREADS.run([worker] * 5)
    assert result.results["p0"] == [bytes([i]) for i in range(5)]


def test_threads_all_to_all():
    n = 4

    def worker(env):
        parts = [f"{env.rank}>{j}".encode() for j in range(n)]
        return (yield from all_to_all(env, "x", n, parts))

    result = THREADS.run([worker] * n)
    for j in range(n):
        assert result.results[f"p{j}"] == [f"{i}>{j}".encode() for i in range(n)]


def test_threads_barrier_actually_synchronizes():
    import threading

    arrived = []
    released = []
    gate = threading.Event()

    def worker(env):
        if env.rank == 3:
            gate.wait(10)  # last arrival delayed in real time
        arrived.append(env.rank)
        yield from barrier(env, "b", 4)
        released.append(env.rank)

    def late_release():
        gate.set()

    import threading as _t

    t = _t.Timer(0.2, late_release)
    t.start()
    THREADS.run([worker] * 4)
    t.join()
    assert len(released) == 4
    # Nobody is released before everyone arrived.
    assert set(arrived) == {0, 1, 2, 3}


def test_threads_worker_exception_propagates():
    def bad(env):
        yield from env.compute(instrs=1)
        raise ValueError("thread bug")

    with pytest.raises(ValueError, match="thread bug"):
        THREADS.run([bad])


def test_threads_blocked_worker_times_out():
    def stuck(env):
        rid = yield from env.open_receive("void", FCFS)
        yield from env.message_receive(rid)

    # DeadlockSuspectedError subclasses TimeoutError, so callers that
    # only know about timeouts keep working...
    with pytest.raises(TimeoutError) as excinfo:
        ThreadRuntime(join_timeout=0.5).run([stuck])
    # ...but the richer type carries a per-thread wait-state dump.
    assert isinstance(excinfo.value, DeadlockSuspectedError)
    dump = excinfo.value.threads["p0"]
    assert dump["blocked_on"] == ("chan", 0)
    assert dump["held"] == []
    assert "blocked_on=('chan', 0)" in str(excinfo.value)


def test_procs_worker_failure_reported():
    def bad(env):
        yield from env.compute(instrs=1)
        raise ValueError("proc bug")

    with pytest.raises(RuntimeError, match="proc bug"):
        ProcRuntime(join_timeout=30).run([bad])


def test_cross_runtime_parity():
    """The same program yields the same logical results on all three
    runtimes — the paper's portability claim, demonstrated."""
    workers = pipeline_workers()
    sim = SimRuntime().run(workers)
    thr = THREADS.run(workers)
    prc = ProcRuntime(join_timeout=60).run(workers)
    for res in (sim, thr, prc):
        check_pipeline(res)
    # Identical aggregate traffic in every world.
    for field in ("total_sends", "total_receives", "total_bytes_sent"):
        assert sim.header[field] == thr.header[field] == prc.header[field]


def test_threads_stress_many_small_messages():
    """Hammer one circuit from several threads to shake out races."""
    n_senders, per = 4, 40

    def sender(env):
        cid = yield from env.open_send("storm")
        rid = yield from env.open_receive("storm.done", BROADCAST)
        for i in range(per):
            yield from env.message_send(cid, bytes([env.rank, i]))
        yield from env.message_receive(rid)
        yield from env.close_send(cid)
        yield from env.close_receive(rid)

    def collector(env):
        cid = yield from env.open_receive("storm", FCFS)
        got = []
        for _ in range(n_senders * per):
            got.append((yield from env.message_receive(cid)))
        did = yield from env.open_send("storm.done")
        yield from env.message_send(did, b"ok")
        yield from env.close_send(did)
        yield from env.close_receive(cid)
        return got

    result = THREADS.run([collector] + [sender] * n_senders)
    got = result.results["p0"]
    assert len(got) == n_senders * per
    # Per-sender order preserved (virtual-circuit time ordering).
    for rank in range(1, n_senders + 1):
        seq = [m[1] for m in got if m[0] == rank]
        assert seq == sorted(seq)
    assert result.header["live_msgs"] == 0
