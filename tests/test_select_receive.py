"""Tests for the select_receive polling multiplexer."""

import pytest

from repro.core.protocol import BROADCAST, FCFS
from repro.patterns import select_receive
from repro.runtime.sim import SimRuntime
from repro.runtime.threads import ThreadRuntime


def test_returns_first_circuit_with_traffic():
    def chooser(env):
        a = yield from env.open_receive("a", FCFS)
        b = yield from env.open_receive("b", FCFS)
        rdy = yield from env.open_send("rdy")
        yield from env.message_send(rdy, b"up")
        which, payload = yield from select_receive(env, (a, b))
        return ("b" if which == b else "a", payload)

    def speaker(env):
        rdy = yield from env.open_receive("rdy", FCFS)
        yield from env.message_receive(rdy)
        cid = yield from env.open_send("b")
        yield from env.message_send(cid, b"on b")

    result = SimRuntime().run([chooser, speaker])
    assert result.results["p0"] == ("b", b"on b")


def test_waits_until_any_traffic():
    def chooser(env):
        a = yield from env.open_receive("a", FCFS)
        b = yield from env.open_receive("b", BROADCAST)
        t0 = env.now()
        which, payload = yield from select_receive(env, (a, b))
        return env.now() - t0, payload

    def slow_speaker(env):
        yield from env.compute(instrs=1_000_000)  # 1 simulated second
        cid = yield from env.open_send("a")
        yield from env.message_send(cid, b"finally")

    result = SimRuntime().run([chooser, slow_speaker])
    waited, payload = result.results["p0"]
    assert waited >= 1.0
    assert payload == b"finally"


def test_polling_priority_is_list_order():
    def chooser(env):
        a = yield from env.open_receive("a", FCFS)
        b = yield from env.open_receive("b", FCFS)
        rdy = yield from env.open_send("rdy")
        yield from env.message_send(rdy, b"up")
        # Wait until both circuits are non-empty, then select: the
        # first-listed circuit must win the tie.
        while not ((yield from env.check_receive(a))
                   and (yield from env.check_receive(b))):
            yield from env.compute(instrs=200)
        got = []
        for _ in range(2):
            which, payload = yield from select_receive(env, (a, b))
            got.append(payload)
        return got

    def speaker(env):
        rdy = yield from env.open_receive("rdy", FCFS)
        yield from env.message_receive(rdy)
        ca = yield from env.open_send("a")
        cb = yield from env.open_send("b")
        yield from env.message_send(cb, b"second")
        yield from env.message_send(ca, b"first")

    result = SimRuntime().run([chooser, speaker])
    assert result.results["p0"] == [b"first", b"second"]


def test_empty_circuit_list_rejected():
    def chooser(env):
        yield from select_receive(env, ())

    with pytest.raises(ValueError):
        SimRuntime().run([chooser])


def test_on_threads_runtime():
    def chooser(env):
        a = yield from env.open_receive("a", FCFS)
        b = yield from env.open_receive("b", FCFS)
        rdy = yield from env.open_send("rdy")
        yield from env.message_send(rdy, b"up")
        which, payload = yield from select_receive(env, (a, b))
        yield from env.close_send(rdy)
        return payload

    def speaker(env):
        rdy = yield from env.open_receive("rdy", FCFS)
        yield from env.message_receive(rdy)
        cid = yield from env.open_send("a")
        yield from env.message_send(cid, b"hello threads")

    result = ThreadRuntime(join_timeout=30).run([chooser, speaker])
    assert result.results["p0"] == b"hello threads"
