"""Tests for the archive-comparison tool."""

import json

import pytest

from repro.bench.compare import PointDelta, compare_archives, main


def archive(values):
    return [
        {
            "figure": "Figure T",
            "series": [
                {
                    "label": "s",
                    "points": [{"x": x, "y": y} for x, y in values],
                }
            ],
        }
    ]


def test_identical_archives_no_deltas_over_zero():
    a = archive([(1, 10.0), (2, 20.0)])
    deltas, missing = compare_archives(a, a)
    assert [d.rel for d in deltas] == [0.0, 0.0]
    assert missing == []


def test_relative_change_computed():
    before = archive([(1, 100.0)])
    after = archive([(1, 110.0)])
    (d,), _ = compare_archives(before, after)
    assert d.rel == pytest.approx(0.10)


def test_zero_baseline():
    (d,), _ = compare_archives(archive([(1, 0.0)]), archive([(1, 5.0)]))
    assert d.rel == float("inf")
    (d,), _ = compare_archives(archive([(1, 0.0)]), archive([(1, 0.0)]))
    assert d.rel == 0.0


def test_missing_points_reported():
    before = archive([(1, 10.0), (2, 20.0)])
    after = archive([(1, 10.0), (3, 30.0)])
    deltas, missing = compare_archives(before, after)
    assert len(deltas) == 1
    assert ("Figure T", "s", 2) in missing
    assert ("Figure T", "s", 3) in missing


def write(tmp_path, name, data):
    p = tmp_path / name
    p.write_text(json.dumps(data))
    return str(p)


def test_cli_pass_within_tolerance(tmp_path, capsys):
    a = write(tmp_path, "a.json", archive([(1, 100.0)]))
    b = write(tmp_path, "b.json", archive([(1, 102.0)]))
    assert main([a, b, "--tolerance", "0.05"]) == 0
    out = capsys.readouterr().out
    assert "+2.0%" in out


def test_cli_fail_over_tolerance(tmp_path, capsys):
    a = write(tmp_path, "a.json", archive([(1, 100.0)]))
    b = write(tmp_path, "b.json", archive([(1, 150.0)]))
    assert main([a, b, "--tolerance", "0.05"]) == 1
    assert "exceeds tolerance" in capsys.readouterr().out


def test_cli_fail_on_missing(tmp_path, capsys):
    a = write(tmp_path, "a.json", archive([(1, 100.0)]))
    b = write(tmp_path, "b.json", archive([(2, 100.0)]))
    assert main([a, b]) == 1
    assert "only in one archive" in capsys.readouterr().out


def test_real_archive_self_compare(tmp_path):
    """The tool accepts real harness output (quick fig3)."""
    from repro.bench.figures import fig3

    data = [fig3(True).to_dict()]
    a = write(tmp_path, "a.json", data)
    assert main([a, a]) == 0
