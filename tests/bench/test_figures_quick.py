"""Quick-mode smoke tests of every figure entry and the CLI."""

import json

import pytest

from repro.bench.figures import FIGURES, fig3
from repro.bench.__main__ import main as bench_main


def test_registry_covers_all_paper_figures():
    for name in ("fig3", "fig4", "fig5", "fig6", "fig7", "fig8"):
        assert name in FIGURES


def test_registry_has_ablations():
    assert sum(1 for n in FIGURES if n.startswith("ablation")) >= 4


@pytest.mark.parametrize("name", ["fig3", "ablation_sync", "ablation_o2o",
                                  "ablation_block"])
def test_quick_figures_return_plottable_results(name):
    result = FIGURES[name](True)
    assert result.series
    for s in result.series:
        assert s.points, f"{name}/{s.label} has no points"
        assert all(p.y >= 0 for p in s.points)
    assert result.format_table()


def test_fig3_quick_subset_of_full_xs():
    quick = fig3(True)
    assert set(quick.series[0].xs()) <= {16, 64, 128, 256, 512, 768, 1024,
                                         1536, 2048}


def test_cli_runs_and_writes_json(tmp_path, capsys):
    out = tmp_path / "out.json"
    rc = bench_main(["fig3", "--quick", "--json", str(out)])
    assert rc == 0
    printed = capsys.readouterr().out
    assert "Figure 3" in printed
    data = json.loads(out.read_text())
    assert data[0]["figure"] == "Figure 3"


def test_cli_plot_flag(capsys):
    rc = bench_main(["ablation_block", "--quick", "--plot"])
    assert rc == 0
    printed = capsys.readouterr().out
    assert "legend:" in printed


def test_cli_rejects_unknown_figure(capsys):
    with pytest.raises(SystemExit):
        bench_main(["nonsense"])
