"""Tests for the sweep harness, table formatting and ASCII plotting."""

import json

from repro.bench.harness import BenchPoint, Series, SweepResult, format_rate, run_series
from repro.bench.plot import ascii_plot


def sample_result():
    r = SweepResult("Figure X", "A demo sweep", "size", "rate")
    a = r.new_series("alpha")
    a.add(1, 100.0)
    a.add(2, 250.0, note="hi")
    b = r.new_series("beta")
    b.add(1, 50.0)
    b.add(4, 400.0)
    r.note("shape: up and to the right")
    return r


def test_series_accessors():
    s = Series("s")
    s.add(1, 2.0)
    s.add(3, 4.0)
    assert s.xs() == [1, 3]
    assert s.ys() == [2.0, 4.0]


def test_benchpoint_extra():
    p = BenchPoint(1, 2.0, {"faults": 7})
    assert p.extra["faults"] == 7


def test_format_rate():
    assert format_rate(0) == "0"
    assert format_rate(3.14159) == "3.14"
    assert format_rate(687245) == "687,245"


def test_table_contains_all_points_and_gaps():
    text = sample_result().format_table()
    assert "Figure X" in text
    assert "alpha" in text and "beta" in text
    assert "100" in text and "400" in text
    assert "-" in text  # x=2 missing from beta, x=4 from alpha
    assert "shape: up and to the right" in text


def test_table_rows_sorted_by_x():
    # Layout: title, y-label, header, separator, then data rows.
    lines = sample_result().format_table().splitlines()
    data = [ln.split()[0] for ln in lines[4:7]]
    assert data == ["1", "2", "4"]


def test_to_dict_json_roundtrip():
    d = sample_result().to_dict()
    parsed = json.loads(json.dumps(d))
    assert parsed["figure"] == "Figure X"
    assert len(parsed["series"]) == 2
    assert parsed["series"][0]["points"][1]["extra"] == {"note": "hi"}


def test_run_series_helper():
    r = SweepResult("F", "t", "x", "y")
    series = run_series(r, "squares", [1, 2, 3], lambda x: (x * x, {"x2": x}))
    assert series.ys() == [1, 4, 9]
    assert r.series[0] is series


def test_ascii_plot_renders_all_series():
    text = ascii_plot(sample_result(), width=40, height=10)
    assert "Figure X" in text
    assert "o=alpha" in text and "x=beta" in text
    body = [ln for ln in text.splitlines() if "|" in ln]
    assert len(body) == 10
    assert any("o" in ln for ln in body)
    assert any("x" in ln for ln in body)


def test_ascii_plot_empty():
    r = SweepResult("F", "t", "x", "y")
    assert "(no data)" in ascii_plot(r)


def test_ascii_plot_overlap_marker():
    r = SweepResult("F", "t", "x", "y")
    r.new_series("a").add(1, 10.0)
    r.new_series("b").add(1, 10.0)
    assert "*" in ascii_plot(r, width=10, height=5)
