"""Tests of the §4 synthetic benchmark programs themselves."""

import pytest

from repro.bench.workloads import (
    base_throughput,
    broadcast_throughput,
    fcfs_throughput,
    random_throughput,
)
from repro.machine.balance import BALANCE_21000


def test_base_counts_payload_once():
    m = base_throughput(100, messages=10)
    assert m.payload_bytes == 1000
    assert m.window > 0
    assert m.throughput == pytest.approx(1000 / m.window)


def test_base_deterministic():
    a = base_throughput(256, messages=8)
    b = base_throughput(256, messages=8)
    assert a.throughput == b.throughput


def test_base_leaves_clean_segment():
    m = base_throughput(64, messages=8)
    assert m.run.header["live_msgs"] == 0
    assert m.run.header["live_lnvcs"] == 0


def test_fcfs_total_traffic_accounted():
    n, L, msgs = 4, 64, 12
    m = fcfs_throughput(n, L, messages=msgs)
    # data messages + n sentinels, all of length L (sentinel same size).
    assert m.run.header["total_sends"] >= msgs + n
    assert m.payload_bytes == msgs * L


def test_fcfs_all_receivers_measured():
    m = fcfs_throughput(3, 128, messages=12)
    spans = [v for v in m.run.results.values() if isinstance(v, tuple)]
    assert len(spans) == 4  # sender + 3 receivers


def test_broadcast_counts_every_copy():
    n, L, msgs = 5, 64, 10
    m = broadcast_throughput(n, L, messages=msgs)
    assert m.payload_bytes == n * msgs * L
    # Every receiver copies every message; the two barriers add their
    # own bounded control traffic ((2n+2) receives each).
    receives = m.run.header["total_receives"]
    assert n * msgs <= receives <= n * msgs + 2 * (2 * n + 4)


def test_broadcast_faster_than_fcfs_at_same_shape():
    fc = fcfs_throughput(8, 1024, messages=24)
    bc = broadcast_throughput(8, 1024, messages=24)
    assert bc.throughput > 3 * fc.throughput


def test_random_needs_two_processes():
    with pytest.raises(ValueError):
        random_throughput(1, 64)


def test_random_deterministic_per_seed():
    a = random_throughput(4, 64, messages=8, seed=1)
    b = random_throughput(4, 64, messages=8, seed=1)
    c = random_throughput(4, 64, messages=8, seed=2)
    assert a.throughput == b.throughput
    assert a.throughput != c.throughput


def test_random_every_process_sends_quota():
    p, msgs = 5, 8
    m = random_throughput(p, 64, messages=msgs)
    # Quota data messages, the P*(P-1) done markers, and the two
    # barriers' control messages (P arrivals + 1 release each).
    expected = p * msgs + p * (p - 1) + 2 * (p + 1)
    assert m.run.header["total_sends"] == expected


def test_random_one_byte_messages():
    m = random_throughput(3, 1, messages=6)
    assert m.payload_bytes == 18
    assert m.throughput > 0


def test_machine_override_respected():
    slow = BALANCE_21000.with_cpus(20)
    fast_cpu = base_throughput(256, messages=8, machine=slow)
    slower_cpu = base_throughput(
        256, messages=8,
        machine=BALANCE_21000.with_cpus(20).__class__(cpu_hz=1e6),
    )
    assert slower_cpu.throughput < fast_cpu.throughput / 5
