"""Tests for the contention-profiling side of the figure harness:
``make_runtime``, per-point Recorder extras, the CONTENTION registry and
the ``python -m repro.bench trace`` subcommand."""

import json

import pytest

from repro.bench.__main__ import main
from repro.bench.figures import CONTENTION, fig4_contention
from repro.bench.harness import SweepResult
from repro.bench.workloads import fcfs_throughput, make_runtime
from repro.obs import Recorder
from repro.runtime.procs import ProcRuntime
from repro.runtime.sim import SimRuntime
from repro.runtime.threads import ThreadRuntime


def test_make_runtime_kinds():
    rec = Recorder()
    assert isinstance(make_runtime("sim", recorder=rec), SimRuntime)
    assert isinstance(make_runtime("threads", recorder=rec), ThreadRuntime)
    assert isinstance(make_runtime("procs", recorder=rec), ProcRuntime)
    for kind in ("sim", "threads", "procs"):
        assert make_runtime(kind, recorder=rec).recorder is rec
    with pytest.raises(ValueError, match="unknown runtime"):
        make_runtime("quantum")


def test_workload_records_into_recorder():
    rec = Recorder()
    m = fcfs_throughput(2, 16, messages=8, runtime="sim", recorder=rec)
    assert m.throughput > 0
    assert rec.clock == "sim"
    assert rec.circuit_lock_stats().acquires > 0


def test_lnvc_wait_grows_with_receivers_sim():
    """The acceptance criterion's simulator half: per-LNVC lock wait at
    16-byte messages grows with the receiver count."""
    waits = []
    for n in (1, 4, 8):
        rec = Recorder(limit=0)
        fcfs_throughput(n, 16, messages=16, runtime="sim", recorder=rec)
        waits.append(rec.circuit_lock_stats().wait_seconds)
    assert waits[0] < waits[1] < waits[2]


def test_contention_registry_and_result_shape():
    assert set(CONTENTION) == {"fig3", "fig4", "fig5"}
    result = fig4_contention(quick=True, runtimes=("sim",))
    assert isinstance(result, SweepResult)
    (series,) = result.series
    assert series.label == "sim"
    # Per-point extras carry the full circuit-lock aggregate.
    for p in series.points:
        assert {"acquires", "contended", "wait_ms", "hold_ms",
                "throughput"} <= set(p.extra)
    # The recorders dict allows exporting any point's full trace.
    assert set(result.recorders) == {("sim", p.x) for p in series.points}
    # The figure's own headline: wait per message grows with receivers.
    ys = series.ys()
    assert ys[-1] > ys[0]
    # Extras render as a table.
    extras = result.format_extras()
    assert "wait_ms" in extras and "sim" in extras


def test_trace_cli_prints_profile_and_writes_exports(tmp_path, capsys):
    chrome = tmp_path / "t.trace.json"
    jsonl = tmp_path / "t.jsonl"
    raw = tmp_path / "raw.json"
    rc = main(["trace", "fig4", "--quick", "--runtime", "sim",
               "--chrome", str(chrome), "--jsonl", str(jsonl),
               "--json", str(raw)])
    assert rc == 0
    out = capsys.readouterr().out
    assert "Figure 4 (contention)" in out
    assert "lock profile — sim runtime" in out
    assert "lnvc0" in out
    suffixed_chrome = tmp_path / "t.trace-sim.json"
    suffixed_jsonl = tmp_path / "t-sim.jsonl"
    assert "traceEvents" in json.loads(suffixed_chrome.read_text())
    assert suffixed_jsonl.read_text().splitlines()
    assert json.loads(raw.read_text())["figure"] == "Figure 4 (contention)"


def test_trace_cli_rejects_unknown_figure(capsys):
    with pytest.raises(SystemExit):
        main(["trace", "fig9"])
    assert "invalid choice" in capsys.readouterr().err


def test_fig4_points_carry_contention_extras():
    from repro.bench.figures import fig4

    result = fig4(quick=True)
    p = result.series[0].points[0]
    assert {"lnvc_wait_ms", "lnvc_contended", "lnvc_acquires"} <= set(p.extra)
    # 16B series: wait grows along the sweep (the paper's explanation).
    waits = [q.extra["lnvc_wait_ms"] for q in result.series[0].points]
    assert waits == sorted(waits) and waits[-1] > waits[0]
