"""``run_series(jobs=N)`` must be invisible in the results.

The parallel point runner farms sweep points out to a process pool; each
point is an independent deterministic simulation and the harness
reassembles results in sweep order, so a parallel sweep must produce the
*same object tree* (``SweepResult.to_dict()``) as a serial one — values,
extras, ordering, everything.  These tests pin that contract on a
reduced Figure 4 sweep (the contention variant, so per-point extras are
exercised too) and on a synthetic sweep whose points deliberately finish
out of order.
"""

import time
from functools import partial

import pytest

from repro.bench.figures import _receiver_point
from repro.bench.harness import SweepResult, run_series, shutdown_pool
from repro.bench.workloads import fcfs_throughput


@pytest.fixture(autouse=True)
def _teardown_pool():
    yield
    shutdown_pool()


def _reduced_fig4(jobs: int) -> SweepResult:
    """A shrunken Figure 4: two receiver counts, one message length."""
    result = SweepResult(
        "Figure 4 (reduced)", "fcfs benchmark", "receivers", "B/s"
    )
    run_series(
        result, "16B", (1, 2),
        partial(_receiver_point, fcfs_throughput, 16, 8, True),
        jobs=jobs,
    )
    return result


def test_parallel_fig4_sweep_matches_serial_exactly():
    serial = _reduced_fig4(jobs=1)
    parallel = _reduced_fig4(jobs=2)
    assert parallel.to_dict() == serial.to_dict()
    # The sweep actually measured something, including the lock extras.
    pts = parallel.series[0].points
    assert [p.x for p in pts] == [1, 2]
    assert all(p.y > 0 for p in pts)
    assert all("lnvc_acquires" in p.extra for p in pts)


def _skewed_point(x: float) -> tuple[float, dict]:
    # The first point sleeps so later points finish first; order of
    # completion must not leak into the series.
    if x == 1:
        time.sleep(0.2)
    return x * 10.0, {"tag": int(x)}


def test_parallel_results_reassembled_in_sweep_order():
    result = SweepResult("t", "t", "x", "y")
    series = run_series(result, "s", (1, 2, 3), _skewed_point, jobs=2)
    assert series.xs() == [1, 2, 3]
    assert series.ys() == [10.0, 20.0, 30.0]
    assert [p.extra["tag"] for p in series.points] == [1, 2, 3]


def test_single_point_sweep_stays_serial():
    # jobs > 1 with one point must not spin up a pool (nothing to
    # overlap); the serial path handles it.
    result = SweepResult("t", "t", "x", "y")
    series = run_series(result, "s", (5,), _skewed_point, jobs=4)
    assert series.ys() == [50.0]


def test_shutdown_pool_is_idempotent():
    shutdown_pool()
    shutdown_pool()
