"""The ``python -m repro.bench regress`` wall-clock trajectory gate.

Pins the envelope normalization (the BENCH_*.json schema drifted across
PRs), the trajectory ordering, the two-threshold flag logic (relative
AND absolute), and the CLI exit codes CI keys on.
"""

import json

import pytest

from repro.bench.regress import (
    compare_bench,
    load_bench,
    order_bench,
    regress_main,
)


def write(path, doc):
    path.write_text(json.dumps(doc))
    return str(path)


def test_load_bench_top_level_figures_envelope(tmp_path):
    p = write(tmp_path / "BENCH_seed.json",
              {"figures": {"fig3": 1.5, "fig4": 2.5}})
    doc = load_bench(p)
    assert doc["label"] == "seed"
    assert doc["figures"] == {"fig3": 1.5, "fig4": 2.5}
    assert doc["total"] == 4.0  # derived: no archived total


def test_load_bench_serial_envelope_with_rollup(tmp_path):
    # The later envelope: figures under $.serial and a sum_of_min_walls
    # roll-up folded INTO the figure dict (it must not become a row).
    p = write(tmp_path / "BENCH_pr9.json", {
        "serial": {"repeat": 3,
                   "figures": {"fig3": 1.0, "sum_of_min_walls": 9.9}},
    })
    doc = load_bench(p)
    assert doc["label"] == "pr9"
    assert doc["figures"] == {"fig3": 1.0}
    assert doc["total"] == 9.9  # the roll-up wins over the derived sum


def test_load_bench_rejects_figureless_doc(tmp_path):
    p = write(tmp_path / "BENCH_pr1.json", {"serial": {}})
    with pytest.raises(ValueError, match="no per-figure walls"):
        load_bench(p)


def test_order_bench_seed_first_then_numeric():
    paths = ["x/BENCH_pr10.json", "x/BENCH_seed.json", "x/BENCH_pr2.json",
             "x/BENCH_pr9.json", "x/not-a-bench.json"]
    assert order_bench(paths) == [
        "x/BENCH_seed.json", "x/BENCH_pr2.json", "x/BENCH_pr9.json",
        "x/BENCH_pr10.json",
    ]


def bench(label, **figures):
    return {"label": label, "path": label, "figures": figures,
            "total": sum(figures.values())}


def test_compare_bench_needs_both_thresholds():
    prior = bench("a", big=10.0, tiny=0.01, gone=1.0)
    newest = bench("b", big=16.0, tiny=0.08, new=1.0)
    rows, regressed = compare_bench(prior, newest, tolerance=0.5,
                                    min_delta=0.2)
    verdicts = {r["figure"]: r["verdict"] for r in rows}
    # big: +60% and +6s -> both thresholds crossed.
    assert verdicts["big"] == "REGRESSED" and regressed == ["big"]
    # tiny: 8x slower relatively but only +0.07s -> absolute floor holds.
    assert verdicts["tiny"] == "ok"
    assert verdicts["gone"] == "removed"
    assert verdicts["new"] == "added"


def test_compare_bench_within_tolerance_is_weather():
    prior, newest = bench("a", fig=10.0), bench("b", fig=11.0)
    rows, regressed = compare_bench(prior, newest, tolerance=0.5,
                                    min_delta=0.2)
    assert regressed == []
    assert rows[0]["ratio"] == pytest.approx(1.1)


def trajectory(tmp_path, newest_figures):
    write(tmp_path / "BENCH_seed.json", {"figures": {"fig3": 2.0}})
    write(tmp_path / "BENCH_pr1.json",
          {"serial": {"figures": {"fig3": 2.1}}})
    write(tmp_path / "BENCH_pr2.json",
          {"serial": {"figures": newest_figures}})
    return str(tmp_path)


def test_regress_main_passes_and_prints_drift_caveat(tmp_path, capsys):
    status = regress_main(["--dir", trajectory(tmp_path, {"fig3": 2.2})])
    out = capsys.readouterr().out
    assert status == 0
    assert "pr2 vs pr1" in out  # newest against predecessor, not seed
    assert "~10%" in out  # the host-drift caveat ships with the verdict
    assert "no figure regressed" in out


def test_regress_main_fails_on_regression(tmp_path, capsys):
    status = regress_main(["--dir", trajectory(tmp_path, {"fig3": 4.0})])
    out = capsys.readouterr().out
    assert status == 1
    assert "REGRESSED" in out and "REGRESSION: fig3" in out


def test_regress_main_tolerance_flags(tmp_path):
    d = trajectory(tmp_path, {"fig3": 2.5})
    assert regress_main(["--dir", d]) == 0  # +19%: inside default 50%
    assert regress_main(["--dir", d, "--tolerance", "0.1"]) == 1


def test_regress_main_with_too_few_snapshots(tmp_path, capsys):
    write(tmp_path / "BENCH_seed.json", {"figures": {"fig3": 1.0}})
    assert regress_main(["--dir", str(tmp_path)]) == 0
    assert "nothing to compare" in capsys.readouterr().out


def test_bench_cli_routes_regress_subcommand(tmp_path, capsys):
    from repro.bench.__main__ import main

    trajectory(tmp_path, {"fig3": 2.2})
    assert main(["regress", "--dir", str(tmp_path)]) == 0
    assert "bench regress" in capsys.readouterr().out
