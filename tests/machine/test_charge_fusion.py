"""Charge fusion (``prelude=``) must be invisible except in event count.

``env.check_receive(..., prelude=w)`` and ``env.message_send(...,
prelude=w)`` fuse compute-only application work with the primitive's
fixed cost into one :class:`~repro.core.effects.ChargeMany`, saving a
scheduler trip per call.  Semantically that must equal ``yield
Charge(w)`` immediately before the unfused call: same simulated elapsed
time (exact float equality — the engine charges each part at its own
accumulated absolute time), same results, and the same per-label
instruction totals in the Tracer's charge breakdown (the engine traces
ChargeMany per part as ordinary ``Charge`` lines).
"""

from repro.core.effects import Charge
from repro.core.protocol import FCFS
from repro.core.work import Work
from repro.machine.trace import Tracer
from repro.runtime.sim import SimRuntime

SEND_WORK = Work(instrs=53, label="app-send-prep")
POLL_WORK = Work(instrs=37, label="app-poll-step")
MSGS = 4


def _workers(fused: bool):
    def sender(env):
        sid = yield from env.open_send("fuse")
        for _ in range(MSGS):
            if fused:
                yield from env.message_send(sid, b"p" * 32, prelude=SEND_WORK)
            else:
                yield Charge(SEND_WORK)
                yield from env.message_send(sid, b"p" * 32)
        yield from env.close_send(sid)

    def poller(env):
        rid = yield from env.open_receive("fuse", FCFS)
        got = 0
        while got < MSGS:
            if fused:
                n = yield from env.check_receive(rid, prelude=POLL_WORK)
            else:
                yield Charge(POLL_WORK)
                n = yield from env.check_receive(rid)
            if n:
                data = yield from env.message_receive(rid)
                assert data == b"p" * 32
                got += 1
        yield from env.close_receive(rid)
        return got

    return [sender, poller]


def test_fusion_preserves_elapsed_and_results():
    unfused = SimRuntime().run(_workers(fused=False))
    fused = SimRuntime().run(_workers(fused=True))
    assert fused.elapsed == unfused.elapsed  # exact, not approximate
    assert fused.results == unfused.results


def test_fusion_preserves_charge_breakdown():
    t_unfused, t_fused = Tracer(), Tracer()
    SimRuntime(trace=t_unfused).run(_workers(fused=False))
    SimRuntime(trace=t_fused).run(_workers(fused=True))
    # Per-label totals agree exactly — fusion changes how work is
    # delivered to the engine, not how much of it there is.
    assert t_fused.charge_breakdown() == t_unfused.charge_breakdown()
    breakdown = t_fused.charge_breakdown()  # Counter: label -> instrs
    assert breakdown["app-send-prep"] == MSGS * SEND_WORK.instrs
    # The poller may spin more than MSGS times; the prelude is charged
    # once per poll either way.
    assert breakdown["app-poll-step"] >= MSGS * POLL_WORK.instrs
    assert breakdown["app-poll-step"] % POLL_WORK.instrs == 0


def test_fusion_preserves_per_process_event_streams():
    # ChargeMany is traced per part at the unfused timestamps, so each
    # process's own (time, text) event stream is identical.  Only the
    # *interleaving* in the global log may differ: a fused pair is logged
    # back-to-back, while in the unfused run another process's events can
    # land between the two charges.
    streams = []
    for fused in (False, True):
        t = Tracer()
        SimRuntime(trace=t).run(_workers(fused=fused))
        per_proc: dict[str, list] = {}
        for e in t.events:
            per_proc.setdefault(e.process, []).append((e.time, e.text))
        streams.append(per_proc)
    assert streams[0] == streams[1]
