"""Unit tests for the bus, VM, CPU timing and machine-config models."""

import pytest

from repro.core.costmodel import DEFAULT_COSTS
from repro.core.work import Work
from repro.machine.balance import BALANCE_21000, MachineConfig
from repro.machine.bus import BusModel
from repro.machine.cpu import BalanceTiming
from repro.machine.vm import VmModel


class TestBus:
    def test_idle_bus_no_slowdown(self):
        bus = BusModel(0.05)
        assert bus.slowdown() == 1.0

    def test_slowdown_grows_with_active_copiers(self):
        bus = BusModel(0.05)
        bus.started()
        bus.started()
        assert bus.slowdown() == pytest.approx(1.10)

    def test_finish_reduces_active(self):
        bus = BusModel(0.05)
        bus.started()
        bus.finished()
        assert bus.slowdown() == 1.0

    def test_peak_and_total_tracked(self):
        bus = BusModel(0.0)
        bus.started()
        bus.started()
        bus.finished()
        bus.started()
        assert bus.peak == 2
        assert bus.total_copies == 3

    def test_unbalanced_finish_rejected(self):
        bus = BusModel(0.0)
        with pytest.raises(RuntimeError):
            bus.finished()

    def test_negative_alpha_rejected(self):
        with pytest.raises(ValueError):
            BusModel(-0.1)


class TestVm:
    def make(self, resident=1000, fault=0.01, enabled=True):
        vm = VmModel(resident_bytes=resident, page_bytes=100,
                     fault_seconds=fault, enabled=enabled)
        return vm

    def test_under_budget_never_faults(self):
        vm = self.make()
        vm.set_demand_source(lambda: 500)
        assert vm.touch(10_000) == 0.0
        assert vm.faults == 0

    def test_over_budget_faults_proportionally(self):
        vm = self.make(resident=1000)
        vm.set_demand_source(lambda: 2000)  # fraction = 0.5
        dt = vm.touch(1000)  # 10 pages -> 5 faults
        assert dt == pytest.approx(5 * 0.01)
        assert vm.faults == 5

    def test_fraction_clamped_at_one(self):
        vm = self.make(resident=0)
        vm.set_demand_source(lambda: 10**9)
        assert vm.fault_fraction() == pytest.approx(1.0)

    def test_fractional_faults_carry_over(self):
        vm = self.make(resident=1000)
        vm.set_demand_source(lambda: 1250)  # fraction = 0.2
        total = sum(vm.touch(100) for _ in range(10))  # 1 page each
        assert total == pytest.approx(2 * 0.01)  # 10 pages * 0.2

    def test_disabled_model_is_free(self):
        vm = self.make(enabled=False)
        vm.set_demand_source(lambda: 10**9)
        assert vm.touch(10**6) == 0.0

    def test_zero_touch_is_free(self):
        vm = self.make()
        assert vm.touch(0) == 0.0

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            VmModel(resident_bytes=-1, page_bytes=1, fault_seconds=0)
        with pytest.raises(ValueError):
            VmModel(resident_bytes=0, page_bytes=0, fault_seconds=0)


class TestMachineConfig:
    def test_balance_preset_matches_paper(self):
        # Paper §4 hardware description.
        assert BALANCE_21000.n_cpus == 20
        assert BALANCE_21000.cpu_hz == 10e6
        assert BALANCE_21000.memory_bytes == 16 << 20
        assert BALANCE_21000.bus_bytes_per_second == 80e6
        assert BALANCE_21000.cache_bytes == 8 << 10

    def test_instr_seconds(self):
        assert BALANCE_21000.instr_seconds == pytest.approx(1e-6)

    def test_with_cpus(self):
        assert BALANCE_21000.with_cpus(4).n_cpus == 4
        assert BALANCE_21000.n_cpus == 20  # frozen original untouched

    def test_without_paging(self):
        assert BALANCE_21000.without_paging().paging_enabled is False


class TestBalanceTiming:
    def make(self, **kw):
        return BalanceTiming(MachineConfig(**kw), DEFAULT_COSTS)

    def test_instruction_pricing(self):
        t = self.make()
        assert t.price(Work(instrs=1000), running=1) == pytest.approx(1e-3)

    def test_flop_pricing(self):
        t = self.make()
        assert t.price(Work(flops=100), running=1) == pytest.approx(
            100 * MachineConfig().flop_seconds
        )

    def test_oversubscription_stretches(self):
        t = self.make(n_cpus=2)
        base = t.price(Work(instrs=100), running=2)
        stretched = t.price(Work(instrs=100), running=6)
        assert stretched == pytest.approx(3 * base)

    def test_copy_includes_bus_transfer_and_contention(self):
        t = self.make(bus_contention_alpha=0.5)
        solo = t.price(Work(instrs=100, copy_bytes=1000), running=1)
        t.copy_started()
        contended = t.price(Work(instrs=100, copy_bytes=1000), running=1)
        assert contended == pytest.approx(1.5 * solo)

    def test_paging_surcharge_added(self):
        t = self.make(resident_bytes=0, page_bytes=512,
                      page_fault_seconds=1.0)
        t.vm.set_demand_source(lambda: 10**9)  # fault fraction exactly 1
        dt = t.price(Work(page_bytes=1024), running=1)
        assert dt == pytest.approx(2.0)  # two whole pages fault

    def test_lock_costs_from_cost_model(self):
        t = self.make()
        assert t.acquire_cost() == pytest.approx(
            DEFAULT_COSTS.lock_acquire * 1e-6
        )
        assert t.release_cost() == pytest.approx(
            DEFAULT_COSTS.lock_release * 1e-6
        )

    def test_wake_cost_scales_with_waiters(self):
        t = self.make()
        assert t.wake_cost(10) > t.wake_cost(0)
