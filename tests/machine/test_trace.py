"""Tests for the execution tracer."""

from repro.core.protocol import FCFS
from repro.machine.trace import Tracer
from repro.runtime.sim import SimRuntime


def traced_run(workers, **kw):
    tracer = Tracer(**kw)
    result = SimRuntime(trace=tracer).run(workers)
    return tracer, result


def loopback(env):
    sid = yield from env.open_send("loop")
    rid = yield from env.open_receive("loop", FCFS)
    for _ in range(4):
        yield from env.message_send(sid, b"x" * 100)
        yield from env.message_receive(rid)
    yield from env.close_send(sid)
    yield from env.close_receive(rid)


def test_tracer_records_events():
    tracer, result = traced_run([loopback])
    assert tracer.total > 0
    assert tracer.total == len(tracer.events)
    assert result.report.events >= tracer.total


def test_events_time_ordered():
    tracer, _ = traced_run([loopback])
    times = [ev.time for ev in tracer.events]
    assert times == sorted(times)


def test_summary_counts_by_kind():
    tracer, _ = traced_run([loopback])
    summary = tracer.summary()["p0"]
    assert summary["Acquire"] == summary["Release"]
    assert summary["Wake"] == 4  # one per send
    assert summary["Charge"] > 8


def test_charge_breakdown_labels():
    tracer, _ = traced_run([loopback])
    breakdown = tracer.charge_breakdown()
    for label in ("send-fixed", "send-copy", "recv-fixed", "recv-copy",
                  "send-link", "open"):
        assert breakdown[label] > 0, f"missing label {label}"


def test_copy_dominates_for_large_messages():
    """The Figure 3 analysis, recovered from the trace: at large
    messages the copy labels outweigh the fixed labels."""

    def big(env):
        sid = yield from env.open_send("loop")
        rid = yield from env.open_receive("loop", FCFS)
        for _ in range(4):
            yield from env.message_send(sid, b"x" * 2048)
            yield from env.message_receive(rid)

    tracer, _ = traced_run([big])
    b = tracer.charge_breakdown()
    copies = b["send-copy"] + b["recv-copy"]
    fixed = b["send-fixed"] + b["recv-fixed"]
    assert copies > 3 * fixed


def test_fixed_dominates_for_small_messages():
    def small(env):
        sid = yield from env.open_send("loop")
        rid = yield from env.open_receive("loop", FCFS)
        for _ in range(4):
            yield from env.message_send(sid, b"x" * 10)
            yield from env.message_receive(rid)

    tracer, _ = traced_run([small])
    b = tracer.charge_breakdown()
    copies = b["send-copy"] + b["recv-copy"]
    fixed = b["send-fixed"] + b["recv-fixed"]
    assert fixed > 3 * copies


def test_lock_profile_counts_acquires():
    tracer, _ = traced_run([loopback])
    profile = tracer.lock_profile()
    assert sum(profile.values()) > 0
    assert all(isinstance(k, int) for k in profile)


def test_timeline_renders():
    tracer, _ = traced_run([loopback])
    text = tracer.timeline(first=10)
    lines = text.splitlines()
    assert "effect" in lines[0]
    assert len(lines) == 12  # header + 10 + "more" line
    assert "more events" in lines[-1]


def test_limit_caps_recording_not_counting():
    tracer, _ = traced_run([loopback], limit=5)
    assert len(tracer.events) == 5
    assert tracer.total > 5


def test_between_filters_window():
    tracer, result = traced_run([loopback])
    mid = result.elapsed / 2
    early = tracer.between(0.0, mid)
    late = tracer.between(mid, result.elapsed + 1)
    assert len(early) + len(late) == tracer.total
    assert all(ev.time < mid for ev in early)
