"""Cross-process epoch batching: the identity and bypass guarantees.

The epoch batcher (``machine/engine.py::_run_epoch``) retires whole
quiescent stretches of *several* processes without touching the event
heap, with ``MPF_EPOCH=off`` falling back to classic per-event heap
traffic.  Everything rides on byte-identity; this module pins it:

* randomized fcfs scenarios (both transports, fused protocol sections
  interleaved with classic effects) produce byte-identical measurements
  and identical causal event streams epoch on vs off;
* serving sweep points — the shed and the stall backpressure shape —
  are byte-identical on vs off;
* the heap-crossing counters prove the batching actually happened
  (events retired per pop collapses) and that controlled-scheduler
  runs never enter an epoch, so ``repro.check`` enumerates the exact
  same decision traces either way.
"""

import json
import random

import pytest

from repro.bench.figures import reset_run_cache
from repro.bench.workloads import fcfs_throughput
from repro.core.effects import (
    S_ACQ,
    S_CALL,
    S_CHARGE,
    S_MANY,
    S_REL,
    FusedSection,
    steps_horizon,
)
from repro.core.work import Work
from repro.machine import engine as engine_mod
from repro.machine.engine import Engine, ZeroTimingModel
from repro.obs import Recorder
from repro.serve.sweep import run_point
from repro.serve.topology import ServeShape


@pytest.fixture
def restore_epoch():
    prev = engine_mod.epoch_enabled()
    yield
    engine_mod.set_epoch(prev)
    reset_run_cache()


def _with_epoch(on: bool, fn):
    engine_mod.set_epoch(on)
    reset_run_cache()
    return fn()


# -- randomized scenario fuzz ------------------------------------------------


@pytest.mark.parametrize("transport", ["freelist", "ring"])
def test_randomized_fcfs_identical(transport, restore_epoch):
    """Seeded random fcfs shapes: measurements and causal streams match."""
    rng = random.Random(0xE90C + (transport == "ring"))
    for _ in range(4):
        n = rng.randint(2, 6)
        length = rng.choice((16, 64, 512))
        messages = rng.randint(8, 40)

        def run():
            rec = Recorder(causal=True)
            m = fcfs_throughput(n, length, messages=messages,
                                recorder=rec, transport=transport)
            return m, rec

        (m_on, rec_on) = _with_epoch(True, run)
        (m_off, rec_off) = _with_epoch(False, run)
        case = (transport, n, length, messages)
        assert m_on.throughput == m_off.throughput, case
        assert m_on.run.report.as_dict() == pytest.approx(
            {**m_off.run.report.as_dict(),
             # The crossing counters are *supposed* to differ: that is
             # the whole point of the batcher.
             "heap_pushes": m_on.run.report.heap_pushes,
             "heap_pops": m_on.run.report.heap_pops,
             "epoch_batches": m_on.run.report.epoch_batches,
             "epoch_events": m_on.run.report.epoch_events}), case
        assert rec_on.causal.events == rec_off.causal.events, case
        assert rec_on.causal.total == rec_off.causal.total, case


def test_fcfs_report_events_and_clock_exact(restore_epoch):
    """Events, sim clock and charge count match exactly (not approx)."""
    def run():
        m = fcfs_throughput(4, 64, messages=60)
        rep = m.run.report
        return (rep.sim_seconds, rep.events, rep.lock_acquires,
                rep.lock_contended, rep.wakes, rep.woken)

    assert _with_epoch(True, run) == _with_epoch(False, run)


# -- serving sweep shapes ----------------------------------------------------


@pytest.mark.parametrize("policy", ["shed", "stall"])
def test_serve_point_identical(policy, restore_epoch):
    """One overloaded serving point per backpressure policy, on vs off."""
    shape = ServeShape(clients=2, frontends=2, workers=2, queue_cap=4,
                       pool_batches=8, policy=policy)

    def run():
        point, _ = run_point(shape, rate=400.0, n_requests=40)
        return json.dumps(point, sort_keys=True)

    assert _with_epoch(True, run) == _with_epoch(False, run)


# -- the contention horizon --------------------------------------------------


def test_steps_horizon_pure_prefix():
    w = Work(instrs=5, label="a")
    many = (Work(instrs=1, label="b"), Work(instrs=2, flops=3, label="c"))
    steps = ((S_CHARGE, w), (S_MANY, many), (S_ACQ, 0),
             (S_CHARGE, w), (S_REL, 0))
    parts, stop_idx, stop_op = steps_horizon(steps)
    assert parts == (w,) + many  # flattened, one event per part
    assert stop_idx == 2
    assert stop_op == S_ACQ


def test_steps_horizon_stops_at_stateful_work():
    copy = Work(instrs=1, copy_bytes=64, label="copy")
    steps = ((S_CHARGE, Work(instrs=2, label="a")), (S_CHARGE, copy))
    parts, stop_idx, stop_op = steps_horizon(steps)
    assert len(parts) == 1 and stop_idx == 1 and stop_op == S_CHARGE
    # S_MANY with any stateful part contributes nothing.
    assert steps_horizon(((S_MANY, (copy,)),)) == ((), 0, S_MANY)
    # A call ends the horizon: its directive may splice anything.
    assert steps_horizon(((S_CALL, lambda: None),)) == ((), 0, S_CALL)


def test_contention_horizon_memoized():
    sec = FusedSection(((S_CHARGE, Work(instrs=3, label="x")), (S_ACQ, 1)))
    h1 = sec.contention_horizon()
    assert h1 == (( Work(instrs=3, label="x"),), 1, S_ACQ)
    assert sec.contention_horizon() is h1  # lazy memo, computed once


# -- counters: the jitter-proof evidence -------------------------------------


def _charge_heavy_engine(trace=None):
    """Eight timelines of pure fused charges: worst case for the heap."""
    class UnitTiming(ZeroTimingModel):
        def price(self, work, running):
            return work.instrs * 1e-6

    eng = Engine(n_locks=1, n_channels=0, timing=UnitTiming(), n_cpus=64,
                 trace=trace)
    sec = FusedSection(tuple(
        (S_CHARGE, Work(instrs=7, label="w")) for _ in range(10)))
    for p in range(8):
        def body(p=p):
            yield FusedSection(((S_CHARGE, Work(instrs=3 * p + 1,
                                                label="d")),))
            for _ in range(50):
                yield sec
        eng.spawn(f"p{p}", body())
    return eng


def test_counters_show_batching(restore_epoch):
    engine_mod.set_epoch(True)
    eng_on = _charge_heavy_engine()
    eng_on.run()
    engine_mod.set_epoch(False)
    eng_off = _charge_heavy_engine()
    eng_off.run()
    on, off = eng_on.stats, eng_off.stats
    assert (on.events, eng_on.now) == (off.events, eng_off.now)
    assert off.epoch_batches == 0 and off.epoch_events == 0
    assert on.epoch_batches >= 1
    assert on.epoch_events > 0.9 * on.events
    # The acceptance gate's shape: >= 2x fewer heap crossings.
    assert off.heap_pops >= 2 * max(1, on.heap_pops)
    assert on.heap_pushes == on.heap_pops  # crossings stay balanced


def test_epoch_off_env_knob(monkeypatch, restore_epoch):
    """MPF_EPOCH=off disables batching at import-default level."""
    engine_mod.set_epoch(True)
    assert engine_mod.epoch_enabled()
    engine_mod.set_epoch(False)
    assert not engine_mod.epoch_enabled()


# -- controlled-scheduler bypass ---------------------------------------------


def test_controlled_runs_never_batch(restore_epoch):
    """repro.check sees every decision point: same traces on vs off."""
    from repro.check.scenarios import SCENARIOS
    from repro.check.scheduler import RandomPolicy, run_schedule

    scenario = SCENARIOS["fcfs-race"]

    def run():
        out = run_schedule(scenario, RandomPolicy(seed=7))
        return out.status, out.decisions, out.widths, out.events

    a = _with_epoch(True, run)
    b = _with_epoch(False, run)
    assert a == b
    assert a[0] == "ok"


def test_traced_runs_never_batch(restore_epoch):
    """A trace hook forces the classic loop (epoch path emits no trace)."""
    engine_mod.set_epoch(True)
    events = []
    eng = _charge_heavy_engine(trace=lambda *a: events.append(a))
    eng.run()
    assert eng.stats.epoch_batches == 0
    assert events
