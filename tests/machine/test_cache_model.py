"""Tests for the write-through cache model."""

import pytest

from repro.machine.cache import CacheModel
from repro.machine.balance import BALANCE_21000


def make(cache=1000, miss=0.001, enabled=True):
    return CacheModel(cache_bytes=cache, miss_seconds=miss, enabled=enabled)


def test_small_working_set_never_stalls():
    c = make()
    c.set_demand_source(lambda: 500)
    assert c.penalty(100) == 0.0
    assert c.stall_time == 0.0


def test_overflowing_working_set_stalls_proportionally():
    c = make(cache=1000)
    c.set_demand_source(lambda: 2000)  # miss fraction 0.5
    dt = c.penalty(10)
    assert dt == pytest.approx(5 * 0.001)
    assert c.stalled_blocks == pytest.approx(5.0)


def test_miss_fraction_clamped():
    c = make(cache=1)
    c.set_demand_source(lambda: 10**9)
    assert c.miss_fraction() == pytest.approx(1.0, abs=1e-6)


def test_disabled_model_free():
    c = make(enabled=False)
    c.set_demand_source(lambda: 10**9)
    assert c.penalty(1000) == 0.0


def test_zero_blocks_free():
    c = make()
    c.set_demand_source(lambda: 10**9)
    assert c.penalty(0) == 0.0


def test_invalid_parameters():
    with pytest.raises(ValueError):
        CacheModel(cache_bytes=0, miss_seconds=0.1)
    with pytest.raises(ValueError):
        CacheModel(cache_bytes=8, miss_seconds=-1.0)


def test_machine_config_cache_switch():
    assert BALANCE_21000.cache_enabled
    assert not BALANCE_21000.without_cache().cache_enabled


def test_cache_effect_is_second_order_on_base():
    """The base benchmark's hot block reuse means the cache model must
    barely move its throughput — the design intent of the model."""
    from repro.bench.workloads import base_throughput

    on = base_throughput(1024, messages=24).throughput
    off = base_throughput(
        1024, messages=24, machine=BALANCE_21000.without_cache()
    ).throughput
    assert abs(on - off) / off < 0.05


def test_cache_stalls_reported_for_deep_queues():
    """A queued burst larger than 8 KB of blocks stalls its drain."""
    from repro.core.layout import MPFConfig
    from repro.core.protocol import FCFS
    from repro.runtime.sim import SimRuntime

    def burster(env):
        sid = yield from env.open_send("burst")
        rid = yield from env.open_receive("burst", FCFS)
        for _ in range(12):  # 12 x 103 blocks x 14 B ~ 17 KB live
            yield from env.message_send(sid, b"x" * 1024)
        for _ in range(12):
            yield from env.message_receive(rid)

    cfg = MPFConfig(max_lnvcs=4, max_processes=1, max_messages=32,
                    message_pool_bytes=1 << 18)
    result = SimRuntime().run([burster], cfg=cfg)
    assert result.report.cache_stalled_blocks > 100
