"""The Tracer extraction into ``repro.obs`` must be invisible.

``repro.machine.trace.Tracer`` is now a thin subclass of
``repro.obs.EffectLog``; these tests pin that the move changed nothing
observable — the event stream a sim run produces through either name is
byte-identical, and the Recorder's Tracer-compatible tables agree with
the Tracer itself on the same run.
"""

from repro.core.protocol import FCFS
from repro.machine.trace import Tracer, TraceEvent
from repro.obs import EffectLog, Recorder
from repro.obs.events import TraceEvent as ObsTraceEvent
from repro.runtime.sim import SimRuntime


def pingpong(env):
    sid = yield from env.open_send("loop")
    rid = yield from env.open_receive("loop", FCFS)
    for _ in range(3):
        yield from env.message_send(sid, b"y" * 48)
        yield from env.message_receive(rid)
    yield from env.close_send(sid)
    yield from env.close_receive(rid)


def fanout(env):
    if env.rank == 0:
        cid = yield from env.open_send("pipe")
        for _ in range(4):
            yield from env.message_send(cid, b"z" * 16)
        yield from env.message_send(cid, b"")
        yield from env.message_send(cid, b"")
        yield from env.close_send(cid)
    else:
        cid = yield from env.open_receive("pipe", FCFS)
        while (yield from env.message_receive(cid)):
            pass
        yield from env.close_receive(cid)


def test_tracer_is_effectlog():
    assert issubclass(Tracer, EffectLog)
    assert TraceEvent is ObsTraceEvent


def test_event_stream_byte_identical():
    """EffectLog passed as ``trace=`` records the exact same events the
    Tracer name records — same times, processes, texts, same order."""
    for workers in ([pingpong], [fanout, fanout, fanout]):
        tracer, log = Tracer(), EffectLog()
        SimRuntime(trace=tracer).run(workers)
        SimRuntime(trace=log).run(workers)
        assert tracer.total == log.total
        assert tracer.events == log.events
        assert repr(tracer.events[0]).replace("Tracer", "EffectLog") == repr(
            log.events[0]
        ).replace("Tracer", "EffectLog")


def test_derived_tables_identical():
    tracer, log = Tracer(), EffectLog()
    SimRuntime(trace=tracer).run([fanout, fanout, fanout])
    SimRuntime(trace=log).run([fanout, fanout, fanout])
    assert tracer.summary() == log.summary()
    assert tracer.lock_profile() == log.lock_profile()
    assert tracer.charge_breakdown() == log.charge_breakdown()
    assert tracer.timeline() == log.timeline()


def test_recorder_matches_tracer_on_same_run():
    """Tracer and Recorder attached to one run see the same effects."""
    tracer, rec = Tracer(), Recorder()
    SimRuntime(trace=tracer, recorder=rec).run([fanout, fanout, fanout])
    assert rec.summary() == tracer.summary()
    assert rec.lock_profile() == tracer.lock_profile()
    assert rec.charge_breakdown() == tracer.charge_breakdown()


def test_recording_does_not_perturb_timing():
    bare = SimRuntime().run([fanout, fanout, fanout])
    observed = SimRuntime(trace=Tracer(), recorder=Recorder()).run(
        [fanout, fanout, fanout]
    )
    assert observed.elapsed == bare.elapsed
    assert observed.results == bare.results
