"""Section fusion and epoch fast-forward: the identity guarantees.

The epoch-fused engine retires a whole uncontended protocol section as
one :class:`~repro.core.effects.FusedSection` effect and fast-forwards
the clock across steps no other process can observe.  All of it is
gated on byte-identity with classic stepping; this module pins the
three load-bearing guarantees:

* reduced fig4 + fig6 sweeps are byte-identical fused vs unfused;
* a causal tracer sees the identical event stream and sojourn
  quantiles with fusion on and off, on both transports;
* fusion never fires across an actual lock conflict — the fused
  section parks at the contended acquire and its remaining steps
  retire only after the holder's release, in the same order classic
  stepping produces.
"""

import json

import pytest

from repro.bench.figures import fig4, fig6, reset_run_cache
from repro.bench.workloads import fcfs_throughput
from repro.core import ops
from repro.core.costmodel import DEFAULT_COSTS
from repro.core.effects import (
    S_ACQ,
    S_CHARGE,
    S_REL,
    Acquire,
    Charge,
    FusedSection,
    Release,
)
from repro.core.work import Work
from repro.machine.balance import BALANCE_21000
from repro.machine.cpu import BalanceTiming
from repro.machine.engine import Engine
from repro.obs import Recorder, sojourn_stats


@pytest.fixture
def restore_fusion():
    prev = ops.fusion_enabled()
    yield
    ops.set_fusion(prev)
    reset_run_cache()


@pytest.mark.parametrize("fig", [fig4, fig6], ids=["fig4", "fig6"])
def test_reduced_figures_byte_identical(fig, restore_fusion):
    """The acceptance gate, in miniature: quick sweeps, fused vs not."""
    ops.set_fusion(True)
    reset_run_cache()
    fused = json.dumps(fig(quick=True).to_dict(), sort_keys=True)
    ops.set_fusion(False)
    reset_run_cache()
    classic = json.dumps(fig(quick=True).to_dict(), sort_keys=True)
    assert fused == classic


@pytest.mark.parametrize("transport", ["freelist", "ring"])
def test_causal_stream_and_sojourns_identical(transport, restore_fusion):
    """Fusion is invisible to the causal tracer, on both transports."""

    def run(fused):
        ops.set_fusion(fused)
        rec = Recorder(causal=True)
        fcfs_throughput(4, 64, messages=12, recorder=rec,
                        transport=transport)
        return rec

    a = run(True)
    b = run(False)
    assert a.causal.events == b.causal.events
    assert a.causal.total == b.causal.total
    sa, sb = sojourn_stats(a.causal), sojourn_stats(b.causal)
    assert set(sa) == set(sb)
    for key in sa:
        for stage in sa[key]:
            for q in ("p50", "p95"):
                assert getattr(sa[key][stage], q) == getattr(sb[key][stage], q)


def _conflict_program(eng, fused: bool):
    """P0 holds lock 2 for a long charge; P1 contends for it."""

    def holder():
        yield Acquire(2)
        yield Charge(Work(instrs=100_000, label="hold"))
        yield Release(2)

    def waiter():
        # Lead-in charge so the holder wins the race for the lock.
        yield Charge(Work(instrs=10, label="lead-in"))
        if fused:
            yield FusedSection((
                (S_ACQ, 2),
                (S_CHARGE, Work(instrs=50, label="crit")),
                (S_REL, 2),
            ))
        else:
            yield Acquire(2)
            yield Charge(Work(instrs=50, label="crit"))
            yield Release(2)

    eng.spawn("p0", holder())
    eng.spawn("p1", waiter())


def _run_conflict(fused: bool):
    lines = []
    eng = Engine(
        n_locks=4, n_channels=2,
        timing=BalanceTiming(BALANCE_21000, DEFAULT_COSTS), n_cpus=4,
        trace=lambda t, name, text: lines.append((t, name, text)),
    )
    _conflict_program(eng, fused)
    elapsed = eng.run()
    return elapsed, eng.stats, lines


def test_fusion_never_fires_across_lock_conflict(restore_fusion):
    """The contention guard: a fused section parks at a held lock.

    If the section retired atomically despite the conflict, P1's
    critical charge would land inside P0's hold window; instead it must
    start at (or after) P0's release, and the whole schedule — trace
    stream, event count, final clock — must equal classic stepping's.
    """
    f_elapsed, f_stats, f_lines = _run_conflict(fused=True)
    c_elapsed, c_stats, c_lines = _run_conflict(fused=False)

    t_release = next(t for (t, name, text) in f_lines
                     if name == "p0" and text == "Release(lock_id=2)")
    t_crit = next(t for (t, name, text) in f_lines
                  if name == "p1" and "crit" in text)
    assert t_crit >= t_release, (
        "fused critical section ran inside the holder's critical section"
    )

    # Fusion is an implementation detail: identical per-part trace
    # stream, identical accounting, identical clock.
    assert f_lines == c_lines
    assert f_elapsed == c_elapsed
    assert f_stats.events == c_stats.events
    assert f_stats.charges == c_stats.charges
