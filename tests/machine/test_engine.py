"""Unit tests for the discrete-event engine."""

import pytest

from repro.core.effects import Acquire, Charge, Release, WaitOn, Wake
from repro.core.work import Work
from repro.machine.engine import (
    DeadlockError,
    Engine,
    SimulationError,
    ZeroTimingModel,
)


class UnitTiming(ZeroTimingModel):
    """1 second per instruction; locks/wakes free.  Makes time countable."""

    def price(self, work, running):
        return float(work.instrs)


def make_engine(**kw):
    kw.setdefault("n_locks", 4)
    kw.setdefault("n_channels", 2)
    return Engine(**kw)


def test_single_process_runs_to_completion():
    eng = make_engine()

    def proc():
        yield Charge(Work(instrs=0))
        return "done"

    eng.spawn("p", proc())
    eng.run()
    assert eng.results() == {"p": "done"}


def test_charge_advances_clock():
    eng = make_engine(timing=UnitTiming())

    def proc():
        yield Charge(Work(instrs=5))
        yield Charge(Work(instrs=7))

    eng.spawn("p", proc())
    assert eng.run() == 12.0


def test_parallel_charges_overlap():
    eng = make_engine(timing=UnitTiming())

    def proc():
        yield Charge(Work(instrs=10))

    eng.spawn("a", proc())
    eng.spawn("b", proc())
    assert eng.run() == 10.0  # concurrent, not 20


def test_lock_serializes_critical_sections():
    eng = make_engine(timing=UnitTiming())
    order = []

    def proc(name):
        yield Acquire(0)
        order.append((name, eng.now))
        yield Charge(Work(instrs=10))
        yield Release(0)

    eng.spawn("a", proc("a"))
    eng.spawn("b", proc("b"))
    assert eng.run() >= 20.0
    # Second entrant starts only after first's 10-instr hold.
    assert order[1][1] >= order[0][1] + 10.0


def test_lock_waiters_fifo():
    eng = make_engine(timing=UnitTiming())
    order = []

    def holder():
        yield Acquire(0)
        yield Charge(Work(instrs=5))
        yield Release(0)

    def waiter(name):
        yield Charge(Work(instrs=1))  # ensure holder gets the lock first
        yield Acquire(0)
        order.append(name)
        yield Release(0)

    eng.spawn("h", holder())
    eng.spawn("w1", waiter("w1"))
    eng.spawn("w2", waiter("w2"))
    eng.run()
    assert order == ["w1", "w2"]


def test_wait_wake_roundtrip():
    eng = make_engine(timing=UnitTiming())
    log = []

    def sleeper():
        yield Acquire(1)
        yield WaitOn(0, 1)
        log.append(("woke", eng.now))
        yield Release(1)
        return "ok"

    def waker():
        yield Charge(Work(instrs=10))
        yield Wake(0)

    eng.spawn("s", sleeper())
    eng.spawn("w", waker())
    eng.run()
    assert eng.results()["s"] == "ok"
    assert log[0][1] >= 10.0


def test_wake_resumes_all_sleepers():
    eng = make_engine(timing=UnitTiming())
    woken = []

    def sleeper(name):
        yield Acquire(1)
        yield WaitOn(0, 1)
        woken.append(name)
        yield Release(1)

    def waker():
        yield Charge(Work(instrs=5))
        yield Wake(0)

    for n in ("s1", "s2", "s3"):
        eng.spawn(n, sleeper(n))
    eng.spawn("w", waker())
    eng.run()
    assert sorted(woken) == ["s1", "s2", "s3"]


def test_wake_with_no_sleepers_is_noop():
    eng = make_engine()

    def proc():
        yield Wake(0)

    eng.spawn("p", proc())
    eng.run()
    assert eng.stats.woken == 0


def test_deadlock_detected():
    eng = make_engine()

    def sleeper():
        yield Acquire(1)
        yield WaitOn(0, 1)

    eng.spawn("s", sleeper())
    with pytest.raises(DeadlockError, match="s"):
        eng.run()


def test_lock_order_deadlock_detected():
    eng = make_engine(timing=UnitTiming())

    def ab():
        yield Acquire(0)
        yield Charge(Work(instrs=5))
        yield Acquire(1)
        yield Release(1)
        yield Release(0)

    def ba():
        yield Acquire(1)
        yield Charge(Work(instrs=5))
        yield Acquire(0)
        yield Release(0)
        yield Release(1)

    eng.spawn("ab", ab())
    eng.spawn("ba", ba())
    with pytest.raises(DeadlockError):
        eng.run()


def test_self_deadlock_is_structural_error():
    eng = make_engine()

    def proc():
        yield Acquire(0)
        yield Acquire(0)

    eng.spawn("p", proc())
    with pytest.raises(SimulationError, match="re-acquired"):
        eng.run()


def test_release_unowned_lock_is_structural_error():
    eng = make_engine()

    def proc():
        yield Release(0)

    eng.spawn("p", proc())
    with pytest.raises(SimulationError, match="does not own"):
        eng.run()


def test_wait_without_lock_is_structural_error():
    eng = make_engine()

    def proc():
        yield WaitOn(0, 1)

    eng.spawn("p", proc())
    with pytest.raises(SimulationError, match="without holding"):
        eng.run()


def test_non_effect_yield_is_structural_error():
    eng = make_engine()

    def proc():
        yield 42

    eng.spawn("p", proc())
    with pytest.raises(SimulationError, match="non-effect"):
        eng.run()


def test_process_exception_propagates():
    eng = make_engine()

    def proc():
        yield Charge(Work())
        raise ValueError("boom")

    eng.spawn("p", proc())
    with pytest.raises(ValueError, match="boom"):
        eng.run()


def test_run_until_stops_early():
    eng = make_engine(timing=UnitTiming())

    def proc():
        for _ in range(100):
            yield Charge(Work(instrs=10))

    eng.spawn("p", proc())
    assert eng.run(until=55.0) == 55.0


def test_run_until_resumes_without_losing_events():
    eng = make_engine(timing=UnitTiming())

    def proc():
        for _ in range(10):
            yield Charge(Work(instrs=10))
        return "finished"

    eng.spawn("p", proc())
    eng.run(until=35.0)
    # Resume: the paused process must complete, not vanish.
    assert eng.run() == 100.0
    assert eng.results()["p"] == "finished"


def test_run_until_repeated_windows():
    eng = make_engine(timing=UnitTiming())

    def proc():
        for _ in range(6):
            yield Charge(Work(instrs=10))

    eng.spawn("p", proc())
    for deadline in (15.0, 30.0, 45.0):
        assert eng.run(until=deadline) == deadline
    assert eng.run() == 60.0


def test_determinism():
    def program(eng):
        def worker(k):
            yield Acquire(0)
            yield Charge(Work(instrs=k))
            yield Release(0)
            return eng.now

        for i in range(5):
            eng.spawn(f"p{i}", worker(i + 1))
        eng.run()
        return (eng.now, tuple(sorted(eng.results().items())))

    a = program(make_engine(timing=UnitTiming()))
    b = program(make_engine(timing=UnitTiming()))
    assert a == b


def test_lock_wait_time_accounted():
    eng = make_engine(timing=UnitTiming())

    def holder():
        yield Acquire(0)
        yield Charge(Work(instrs=20))
        yield Release(0)

    def waiter():
        yield Charge(Work(instrs=1))
        yield Acquire(0)
        yield Release(0)

    eng.spawn("h", holder())
    w = eng.spawn("w", waiter())
    eng.run()
    assert w.lock_wait_time == pytest.approx(19.0)


def test_event_budget_guard():
    eng = make_engine(max_events=10)

    def proc():
        while True:
            yield Charge(Work())

    eng.spawn("p", proc())
    with pytest.raises(SimulationError, match="exceeded"):
        eng.run()


def test_stats_counters():
    eng = make_engine(timing=UnitTiming())

    def proc():
        yield Acquire(0)
        yield Charge(Work(instrs=3))
        yield Release(0)

    eng.spawn("a", proc())
    eng.spawn("b", proc())
    eng.run()
    assert eng.stats.lock_acquires == 2
    assert eng.stats.lock_contended == 1
    assert eng.stats.charged_seconds == pytest.approx(6.0)
