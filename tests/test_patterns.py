"""Tests for the coordination patterns (on the deterministic simulator)."""

import struct

import pytest

from repro.core.inspect import check_invariants
from repro.machine.engine import DeadlockError
from repro.patterns import (
    Mailboxes,
    all_to_all,
    allreduce,
    barrier,
    broadcast,
    exchange,
    gather,
    reduce,
    scatter,
    tag,
    untag,
)
from repro.runtime.sim import SimRuntime


def run(workers, **kw):
    return SimRuntime().run(workers, **kw)


def test_tag_untag_roundtrip():
    assert untag(tag(7, b"payload")) == (7, b"payload")
    assert untag(tag(0, b"")) == (0, b"")


def test_barrier_synchronizes_times():
    def worker(env):
        # Stagger arrivals by rank.
        yield from env.compute(instrs=env.rank * 100_000)
        yield from barrier(env, "b", 4)
        return env.now()

    result = run([worker] * 4)
    times = result.result_list()
    # Everyone leaves the barrier at (nearly) the same simulated moment,
    # and not before the slowest arrival.
    assert max(times) - min(times) < 0.05
    assert min(times) >= 0.3


def test_barrier_reusable_with_distinct_names():
    def worker(env):
        for i in range(3):
            yield from barrier(env, f"b{i}", 3)
        return "ok"

    assert set(run([worker] * 3).results.values()) == {"ok"}


def test_gather_orders_by_rank():
    def worker(env):
        return (yield from gather(env, "g", 2, 5, f"r{env.rank}".encode()))

    result = run([worker] * 5)
    assert result.results["p2"] == [f"r{i}".encode() for i in range(5)]
    assert result.results["p0"] is None


def test_gather_rank_subset():
    # Participants need not be ranks 0..n-1 (e.g. workers without their
    # arbiter); ordering is by actual rank.
    def idle(env):
        yield from env.compute(instrs=1)

    def member(env):
        return (yield from gather(env, "g", 1, 3, bytes([env.rank])))

    result = run([idle, member, member, member])
    assert result.results["p1"] == [bytes([1]), bytes([2]), bytes([3])]


def test_scatter_delivers_own_part():
    def worker(env):
        parts = [f"part{i}".encode() for i in range(4)] if env.rank == 0 else None
        return (yield from scatter(env, "s", 0, parts))

    result = run([worker] * 4)
    assert result.result_list() == [f"part{i}".encode() for i in range(4)]


def test_scatter_requires_parts_at_root():
    def worker(env):
        return (yield from scatter(env, "s", 0, None))

    with pytest.raises(ValueError):
        run([worker])


def test_broadcast_from_nonzero_root():
    def worker(env):
        return (
            yield from broadcast(
                env, "bc", 3, 5, b"msg" if env.rank == 3 else None
            )
        )

    assert set(run([worker] * 5).results.values()) == {b"msg"}


def test_broadcast_single_process():
    def worker(env):
        return (yield from broadcast(env, "bc", 0, 1, b"self"))

    assert run([worker]).results["p0"] == b"self"


def test_reduce_folds_commutatively():
    def add(a, b):
        return struct.pack("<I", struct.unpack("<I", a)[0] + struct.unpack("<I", b)[0])

    def worker(env):
        return (
            yield from reduce(env, "r", 0, 6, struct.pack("<I", env.rank + 1), add)
        )

    result = run([worker] * 6)
    assert struct.unpack("<I", result.results["p0"])[0] == 21
    assert result.results["p3"] is None


def test_allreduce_everyone_gets_result():
    def cat(a, b):
        return bytes(sorted(a + b))

    def worker(env):
        return (yield from allreduce(env, "ar", 4, bytes([env.rank]), cat))

    result = run([worker] * 4)
    assert set(result.results.values()) == {bytes([0, 1, 2, 3])}


def test_all_to_all_full_exchange():
    n = 4

    def worker(env):
        parts = [bytes([env.rank, j]) for j in range(n)]
        return (yield from all_to_all(env, "x", n, parts))

    result = run([worker] * n)
    for j in range(n):
        assert result.results[f"p{j}"] == [bytes([i, j]) for i in range(n)]


def test_all_to_all_wrong_parts_length():
    def worker(env):
        return (yield from all_to_all(env, "x", 3, [b"a"]))

    with pytest.raises(ValueError):
        run([worker] * 3)


def test_exchange_pairwise():
    def worker(env):
        peer = 1 - env.rank
        return (yield from exchange(env, "e", peer, bytes([env.rank])))

    result = run([worker] * 2)
    assert result.results["p0"] == bytes([1])
    assert result.results["p1"] == bytes([0])


def test_mailboxes_repeated_swaps():
    iters = 5

    def worker(env):
        peer = 1 - env.rank
        boxes = Mailboxes(env, "m")
        yield from boxes.connect([peer])
        seen = []
        for i in range(iters):
            seen.append((yield from boxes.swap(peer, bytes([env.rank, i]))))
        yield from boxes.close()
        return seen

    result = run([worker] * 2)
    assert result.results["p0"] == [bytes([1, i]) for i in range(iters)]
    assert result.header["live_lnvcs"] == 0


def test_mailboxes_swap_all_ring():
    n = 4

    def worker(env):
        left, right = (env.rank - 1) % n, (env.rank + 1) % n
        boxes = Mailboxes(env, "ring")
        yield from boxes.connect([left, right])
        replies = yield from boxes.swap_all(
            {left: bytes([env.rank]), right: bytes([env.rank])}
        )
        yield from boxes.close()
        return replies

    result = run([worker] * n)
    for i in range(n):
        replies = result.results[f"p{i}"]
        assert replies[(i - 1) % n] == bytes([(i - 1) % n])
        assert replies[(i + 1) % n] == bytes([(i + 1) % n])


def test_patterns_leave_no_garbage():
    def worker(env):
        yield from barrier(env, "b", 3)
        yield from gather(env, "g", 0, 3, b"x")
        yield from broadcast(env, "bc", 0, 3, b"y" if env.rank == 0 else None)
        yield from all_to_all(env, "a", 3, [b"z"] * 3)

    rt = SimRuntime()
    result = rt.run([worker] * 3)
    assert result.header["total_sends"] > 0
    check_invariants(rt.last_view, expect_empty=True)


def test_mismatched_barrier_count_deadlocks():
    def worker(env):
        yield from barrier(env, "b", 4)  # but only 3 participants exist

    with pytest.raises(DeadlockError):
        run([worker] * 3)
