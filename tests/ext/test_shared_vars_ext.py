"""Tests for the shared-variable substrate (paradigm comparison)."""

import pytest

from repro.core.layout import MPFConfig
from repro.ext.shared_vars import CounterBarrier, LockedAccumulator, SharedDoubles
from repro.runtime.sim import SimRuntime
from repro.runtime.threads import ThreadRuntime


def cfg_for(slots=1, ext_bytes=256, nprocs=4):
    return MPFConfig(max_lnvcs=4, max_processes=nprocs,
                     ext_slots=slots, ext_bytes=ext_bytes)


def run_sim(workers, **kw):
    return SimRuntime().run(workers, cfg=cfg_for(nprocs=len(workers), **kw))


class TestSharedDoubles:
    def test_roundtrip(self):
        def worker(env):
            arr = SharedDoubles(env.view, 4)
            yield from arr.write(2, 3.25)
            return (yield from arr.read(2))

        assert run_sim([worker]).results["p0"] == 3.25

    def test_slices(self):
        def worker(env):
            arr = SharedDoubles(env.view, 8)
            yield from arr.write_slice(2, [1.0, 2.0, 3.0])
            return (yield from arr.read_slice(1, 6))

        assert run_sim([worker]).results["p0"] == [0.0, 1.0, 2.0, 3.0, 0.0]

    def test_visible_across_processes(self):
        def writer(env):
            arr = SharedDoubles(env.view, 2)
            yield from arr.write(0, 7.5)

        def reader(env):
            arr = SharedDoubles(env.view, 2)
            value = 0.0
            while value == 0.0:
                value = yield from arr.read(0)
            return value

        assert run_sim([writer, reader]).results["p1"] == 7.5

    def test_bounds_checked(self):
        def worker(env):
            arr = SharedDoubles(env.view, 2)
            yield from arr.read(5)

        with pytest.raises(IndexError):
            run_sim([worker])

    def test_reservation_checked(self):
        def worker(env):
            SharedDoubles(env.view, 1000)
            yield from env.compute(instrs=1)

        with pytest.raises(ValueError, match="ext_bytes"):
            run_sim([worker])


class TestLockedAccumulator:
    def test_concurrent_adds_all_land(self):
        n, each = 4, 10

        def worker(env):
            acc = LockedAccumulator(env.view, slot=0)
            for _ in range(each):
                yield from acc.add(1.0)
            return acc.peek()

        result = run_sim([worker] * n)
        finals = list(result.results.values())
        assert max(finals) == n * each

    def test_on_threads(self):
        n, each = 3, 25

        def worker(env):
            acc = LockedAccumulator(env.view, slot=0)
            for _ in range(each):
                yield from acc.add(1.0)

        runtime = ThreadRuntime(join_timeout=30)
        runtime.run([worker] * n, cfg=cfg_for(nprocs=n))
        acc = LockedAccumulator(runtime.last_view, slot=0)
        assert acc.peek() == n * each

    def test_needs_slot(self):
        def worker(env):
            LockedAccumulator(env.view, slot=5)
            yield from env.compute(instrs=1)

        with pytest.raises(ValueError, match="slot"):
            run_sim([worker])


class TestCounterBarrier:
    def test_synchronizes(self):
        def worker(env):
            bar = CounterBarrier(env.view, env.nprocs, slot=0)
            yield from env.compute(instrs=env.rank * 100_000)
            yield from bar.wait()
            return env.now()

        result = run_sim([worker] * 4)
        times = list(result.results.values())
        assert max(times) - min(times) < 0.01
        assert min(times) >= 0.3

    def test_reusable(self):
        def worker(env):
            bar = CounterBarrier(env.view, env.nprocs, slot=0)
            stamps = []
            for i in range(3):
                yield from env.compute(instrs=(env.rank + i) * 10_000)
                yield from bar.wait()
                stamps.append(env.now())
            return stamps

        result = run_sim([worker] * 3)
        for i in range(3):
            at = [v[i] for v in result.results.values()]
            assert max(at) - min(at) < 0.01

    def test_single_process_barrier_trivial(self):
        def worker(env):
            bar = CounterBarrier(env.view, 1, slot=0)
            yield from bar.wait()
            return "ok"

        assert run_sim([worker]).results["p0"] == "ok"

    def test_on_threads(self):
        def worker(env):
            bar = CounterBarrier(env.view, env.nprocs, slot=0)
            for _ in range(5):
                yield from bar.wait()
            return "ok"

        result = ThreadRuntime(join_timeout=30).run(
            [worker] * 4, cfg=cfg_for(nprocs=4)
        )
        assert set(result.results.values()) == {"ok"}
