"""Tests for the lock-free one-to-one ring channels."""

import pytest

from repro.core.layout import MPFConfig
from repro.ext.o2o import O2ORing
from repro.runtime.sim import SimRuntime
from repro.runtime.threads import ThreadRuntime


def cfg_for(nrings=1, capacity=8, slot=64, nprocs=2):
    return MPFConfig(
        max_lnvcs=8,
        max_processes=nprocs,
        ext_bytes=nrings * O2ORing.bytes_needed(capacity, slot),
    )


def run_sim(workers, **kw):
    return SimRuntime().run(workers, cfg=cfg_for(nprocs=len(workers), **kw))


def test_spsc_roundtrip_in_order():
    n = 20

    def producer(env):
        ring = O2ORing(env.view, 0, capacity=8, slot_bytes=64)
        for i in range(n):
            yield from ring.send(bytes([i]) * 3)

    def consumer(env):
        ring = O2ORing(env.view, 0, capacity=8, slot_bytes=64)
        got = []
        for _ in range(n):
            got.append((yield from ring.receive()))
        return got

    result = run_sim([producer, consumer])
    assert result.results["p1"] == [bytes([i]) * 3 for i in range(n)]


def test_producer_spins_when_full():
    """With a tiny ring and a slow consumer, the producer's completion
    time is governed by the consumer's drain rate (backpressure)."""

    def producer(env):
        ring = O2ORing(env.view, 0, capacity=2, slot_bytes=16)
        for i in range(10):
            yield from ring.send(bytes([i]))
        return env.now()

    def slow_consumer(env):
        ring = O2ORing(env.view, 0, capacity=2, slot_bytes=16)
        for _ in range(10):
            yield from env.compute(instrs=100_000)  # 0.1 s per message
            yield from ring.receive()

    result = run_sim([producer, slow_consumer], capacity=2, slot=16)
    assert result.results["p0"] >= 0.8  # waited for ~9 drains


def test_capacity_minus_one_fits_without_consumer():
    def producer(env):
        ring = O2ORing(env.view, 0, capacity=8, slot_bytes=16)
        for i in range(7):  # capacity - 1
            yield from ring.send(bytes([i]))
        return ring.size()

    assert run_sim([producer]).results["p0"] == 7


def test_oversized_message_rejected():
    def producer(env):
        ring = O2ORing(env.view, 0, capacity=4, slot_bytes=4)
        yield from ring.send(b"12345")

    with pytest.raises(ValueError, match="exceeds"):
        run_sim([producer], capacity=4, slot=4)


def test_unreserved_ext_bytes_rejected():
    def producer(env):
        O2ORing(env.view, 3, capacity=8, slot_bytes=64)  # only ring 0 fits
        yield from env.compute(instrs=1)

    with pytest.raises(ValueError, match="ext bytes"):
        run_sim([producer])


def test_two_rings_full_duplex():
    def left(env):
        a = O2ORing(env.view, 0, capacity=4, slot_bytes=16)
        b = O2ORing(env.view, 1, capacity=4, slot_bytes=16)
        yield from a.send(b"ping")
        return (yield from b.receive())

    def right(env):
        a = O2ORing(env.view, 0, capacity=4, slot_bytes=16)
        b = O2ORing(env.view, 1, capacity=4, slot_bytes=16)
        got = yield from a.receive()
        yield from b.send(got[::-1])
        return got

    result = SimRuntime().run(
        [left, right], cfg=cfg_for(nrings=2, capacity=4, slot=16)
    )
    assert result.results == {"p0": b"gnip", "p1": b"ping"}


def test_on_threads_runtime():
    n = 50

    def producer(env):
        ring = O2ORing(env.view, 0, capacity=8, slot_bytes=16)
        for i in range(n):
            yield from ring.send(i.to_bytes(2, "little"))

    def consumer(env):
        ring = O2ORing(env.view, 0, capacity=8, slot_bytes=16)
        got = []
        for _ in range(n):
            data = yield from ring.receive()
            got.append(int.from_bytes(data, "little"))
        return got

    result = ThreadRuntime(join_timeout=30).run(
        [producer, consumer], cfg=cfg_for()
    )
    assert result.results["p1"] == list(range(n))


def test_lock_free_cheaper_than_lnvc():
    """The §5 claim: removing locks and blocks beats the general path."""
    from repro.core.protocol import FCFS

    reps, L = 16, 48

    def ring_producer(env):
        ring = O2ORing(env.view, 0, capacity=8, slot_bytes=64)
        for _ in range(reps):
            yield from ring.send(b"x" * L)

    def ring_consumer(env):
        ring = O2ORing(env.view, 0, capacity=8, slot_bytes=64)
        for _ in range(reps):
            yield from ring.receive()
        return env.now()

    def lnvc_producer(env):
        cid = yield from env.open_send("c")
        for _ in range(reps):
            yield from env.message_send(cid, b"x" * L)

    def lnvc_consumer(env):
        cid = yield from env.open_receive("c", FCFS)
        for _ in range(reps):
            yield from env.message_receive(cid)
        return env.now()

    t_ring = run_sim([ring_producer, ring_consumer]).elapsed
    t_lnvc = SimRuntime().run([lnvc_producer, lnvc_consumer]).elapsed
    assert t_lnvc > 5 * t_ring
