"""Tests for the MPI-style communicator layer."""

import struct

import pytest

from repro.ext.mini_mpi import ANY_SOURCE, ANY_TAG, Comm
from repro.runtime.sim import SimRuntime
from repro.runtime.threads import ThreadRuntime


def run(workers, runtime=None):
    runtime = runtime or SimRuntime()
    return runtime.run(workers)


def with_comm(body):
    """Worker wrapper: connect, barrier, run body, barrier, close."""

    def worker(env):
        comm = Comm(env)
        yield from comm.connect()
        yield from comm.barrier()
        result = yield from body(comm)
        yield from comm.barrier()
        yield from comm.close()
        return result

    return worker


def test_send_recv_roundtrip():
    def body(comm):
        if comm.rank == 0:
            yield from comm.send(b"ping", dest=1, tag=7)
            msg = yield from comm.recv(source=1, tag=8)
            return msg.data
        msg = yield from comm.recv(source=0, tag=7)
        yield from comm.send(msg.data[::-1], dest=0, tag=8)
        return msg.data

    result = run([with_comm(body)] * 2)
    assert result.results == {"p0": b"gnip", "p1": b"ping"}


def test_tag_matching_out_of_order():
    """A receive for tag 2 skips an earlier tag-1 message, which a later
    receive for tag 1 still gets — MPI matching semantics."""

    def body(comm):
        if comm.rank == 0:
            yield from comm.send(b"first, tag1", dest=1, tag=1)
            yield from comm.send(b"second, tag2", dest=1, tag=2)
            return None
        m2 = yield from comm.recv(source=0, tag=2)
        m1 = yield from comm.recv(source=0, tag=1)
        return (m2.data, m1.data)

    result = run([with_comm(body)] * 2)
    assert result.results["p1"] == (b"second, tag2", b"first, tag1")


def test_any_source_any_tag():
    def body(comm):
        if comm.rank == 0:
            got = []
            for _ in range(2):
                msg = yield from comm.recv(ANY_SOURCE, ANY_TAG)
                got.append((msg.source, msg.tag, msg.data))
            return sorted(got)
        yield from comm.send(bytes([comm.rank]), dest=0, tag=comm.rank * 10)
        return None

    result = run([with_comm(body)] * 3)
    assert result.results["p0"] == [(1, 10, bytes([1])), (2, 20, bytes([2]))]


def test_per_pair_order_preserved():
    def body(comm):
        if comm.rank == 0:
            for i in range(5):
                yield from comm.send(bytes([i]), dest=1, tag=0)
            return None
        got = []
        for _ in range(5):
            msg = yield from comm.recv(source=0, tag=0)
            got.append(msg.data)
        return got

    result = run([with_comm(body)] * 2)
    assert result.results["p1"] == [bytes([i]) for i in range(5)]


def test_iprobe():
    def body(comm):
        if comm.rank == 0:
            # Nothing waiting yet.
            empty = yield from comm.iprobe()
            yield from comm.send(b"x", dest=1, tag=3)
            return empty
        while not (yield from comm.iprobe(source=0, tag=3)):
            yield from comm.env.compute(instrs=1000)
        wrong_tag = yield from comm.iprobe(source=0, tag=9)
        msg = yield from comm.recv(source=0, tag=3)
        return (wrong_tag, msg.data)

    result = run([with_comm(body)] * 2)
    assert result.results["p0"] is False
    assert result.results["p1"] == (False, b"x")


def test_sendrecv_pairwise():
    def body(comm):
        peer = 1 - comm.rank
        data = yield from comm.sendrecv(bytes([comm.rank]), peer)
        return data

    result = run([with_comm(body)] * 2)
    assert result.results["p0"] == bytes([1])
    assert result.results["p1"] == bytes([0])


def test_collectives():
    def body(comm):
        n = comm.size
        b = yield from comm.bcast(b"root says hi" if comm.rank == 0 else None)
        g = yield from comm.gather(bytes([comm.rank]))
        s = yield from comm.scatter(
            [bytes([10 + i]) for i in range(n)] if comm.rank == 0 else None
        )
        ar = yield from comm.allreduce(
            struct.pack("<I", comm.rank),
            lambda a, c: struct.pack(
                "<I", struct.unpack("<I", a)[0] + struct.unpack("<I", c)[0]
            ),
        )
        return (b, g, s, struct.unpack("<I", ar)[0])

    result = run([with_comm(body)] * 4)
    for rank in range(4):
        b, g, s, ar = result.results[f"p{rank}"]
        assert b == b"root says hi"
        assert s == bytes([10 + rank])
        assert ar == 6
        if rank == 0:
            assert g == [bytes([i]) for i in range(4)]
        else:
            assert g is None


def test_validation_errors():
    def bad_dest(comm):
        yield from comm.send(b"x", dest=99)

    with pytest.raises(ValueError, match="dest"):
        run([with_comm(bad_dest)])

    def bad_tag(comm):
        yield from comm.send(b"x", dest=0, tag=-2)

    with pytest.raises(ValueError, match="tags"):
        run([with_comm(bad_tag)])


def test_recv_before_connect_rejected():
    def worker(env):
        comm = Comm(env)
        yield from comm.recv()

    with pytest.raises(RuntimeError, match="not connected"):
        run([worker])


def test_on_threads_runtime():
    def body(comm):
        peer = (comm.rank + 1) % comm.size
        yield from comm.send(bytes([comm.rank]), dest=peer, tag=1)
        msg = yield from comm.recv(tag=1)
        return msg.source

    result = run([with_comm(body)] * 3, runtime=ThreadRuntime(join_timeout=60))
    assert result.results["p1"] == 0  # ring: 0 -> 1


def test_no_leaks_after_close():
    def body(comm):
        yield from comm.send(b"z", dest=(comm.rank + 1) % comm.size)
        yield from comm.recv()
        return "ok"

    result = run([with_comm(body)] * 3)
    assert result.header["live_msgs"] == 0
    assert result.header["live_lnvcs"] == 0
