"""Tests for synchronous (rendezvous) channels."""

import pytest

from repro.core.layout import MPFConfig
from repro.ext.sync_channel import SyncChannels
from repro.machine.engine import DeadlockError
from repro.runtime.sim import SimRuntime
from repro.runtime.threads import ThreadRuntime


def cfg_for(count=2, buf=256, nprocs=4):
    return MPFConfig(
        max_lnvcs=8,
        max_processes=nprocs,
        ext_slots=count,
        ext_bytes=SyncChannels.bytes_needed(count, buf),
    )


def run_sim(workers, count=2, buf=256):
    return SimRuntime().run(workers, cfg=cfg_for(count, buf, len(workers)))


def test_rendezvous_roundtrip():
    def sender(env):
        ch = SyncChannels(env.view, 2, 256)
        yield from ch.send(0, env.rank, b"direct!")
        return "sent"

    def receiver(env):
        ch = SyncChannels(env.view, 2, 256)
        got = yield from ch.receive(0, env.rank)
        return got

    result = run_sim([sender, receiver])
    assert result.results["p0"] == "sent"
    assert result.results["p1"] == (0, b"direct!")


def test_send_blocks_until_received():
    """True rendezvous: the sender's completion time tracks the
    receiver's arrival, not its own."""

    def sender(env):
        ch = SyncChannels(env.view, 1, 64)
        yield from ch.send(0, env.rank, b"x")
        return env.now()

    def lazy_receiver(env):
        ch = SyncChannels(env.view, 1, 64)
        yield from env.compute(instrs=500_000)  # 0.5 simulated seconds
        yield from ch.receive(0, env.rank)
        return env.now()

    result = run_sim([sender, lazy_receiver], count=1, buf=64)
    assert result.results["p0"] >= 0.5


def test_multiple_rendezvous_serialize():
    n_msgs = 5

    def sender(env):
        ch = SyncChannels(env.view, 1, 64)
        for i in range(n_msgs):
            yield from ch.send(0, env.rank, bytes([i]))

    def receiver(env):
        ch = SyncChannels(env.view, 1, 64)
        got = []
        for _ in range(n_msgs):
            _, data = yield from ch.receive(0, env.rank)
            got.append(data)
        return got

    result = run_sim([sender, receiver], count=1, buf=64)
    assert result.results["p1"] == [bytes([i]) for i in range(n_msgs)]


def test_two_channels_independent():
    def worker(env):
        ch = SyncChannels(env.view, 2, 64)
        if env.rank == 0:
            yield from ch.send(0, 0, b"zero")
            got = yield from ch.receive(1, 0)
            return got[1]
        got = yield from ch.receive(0, 1)
        yield from ch.send(1, 1, b"one")
        return got[1]

    result = run_sim([worker, worker])
    assert result.results == {"p0": b"one", "p1": b"zero"}


def test_oversized_message_rejected():
    def sender(env):
        ch = SyncChannels(env.view, 1, 8)
        yield from ch.send(0, env.rank, b"x" * 9)

    with pytest.raises(ValueError, match="exceeds"):
        run_sim([sender], count=1, buf=8)


def test_unreserved_slots_rejected():
    def worker(env):
        SyncChannels(env.view, 4, 64)  # only 1 slot reserved
        yield from env.compute(instrs=1)

    with pytest.raises(ValueError, match="ext_slots"):
        run_sim([worker], count=1, buf=64)


def test_sender_without_receiver_deadlocks():
    def sender(env):
        ch = SyncChannels(env.view, 1, 64)
        yield from ch.send(0, env.rank, b"x")

    with pytest.raises(DeadlockError):
        run_sim([sender], count=1, buf=64)


def test_on_threads_runtime():
    def sender(env):
        ch = SyncChannels(env.view, 1, 64)
        for i in range(3):
            yield from ch.send(0, env.rank, bytes([i]))

    def receiver(env):
        ch = SyncChannels(env.view, 1, 64)
        got = []
        for _ in range(3):
            _, data = yield from ch.receive(0, env.rank)
            got.append(data)
        return got

    result = ThreadRuntime(join_timeout=30).run(
        [sender, receiver], cfg=cfg_for(1, 64, 2)
    )
    assert result.results["p1"] == [bytes([i]) for i in range(3)]


def test_direct_copy_cheaper_than_lnvc():
    """The §5 claim, quantified: rendezvous transfer of a 1 KiB payload
    costs far less simulated time than the general facility's."""
    from repro.core.protocol import FCFS

    L, reps = 1024, 8

    def sync_sender(env):
        ch = SyncChannels(env.view, 1, 2048)
        for _ in range(reps):
            yield from ch.send(0, env.rank, b"x" * L)

    def sync_receiver(env):
        ch = SyncChannels(env.view, 1, 2048)
        for _ in range(reps):
            yield from ch.receive(0, env.rank)
        return env.now()

    def lnvc_sender(env):
        cid = yield from env.open_send("c")
        for _ in range(reps):
            yield from env.message_send(cid, b"x" * L)

    def lnvc_receiver(env):
        cid = yield from env.open_receive("c", FCFS)
        for _ in range(reps):
            yield from env.message_receive(cid)
        return env.now()

    t_sync = run_sim([sync_sender, sync_receiver], count=1, buf=2048).elapsed
    t_lnvc = SimRuntime().run([lnvc_sender, lnvc_receiver]).elapsed
    assert t_lnvc > 4 * t_sync
