"""Tests for distributed variables over LNVCs."""

import pytest

from repro.ext.dvars import DVarClient, dvar_server
from repro.runtime.sim import SimRuntime
from repro.runtime.threads import ThreadRuntime


def test_read_initial_value():
    def server(env):
        return (yield from dvar_server(env, "x", initial=b"init"))

    def client(env):
        dv = DVarClient(env, "x")
        yield from dv.connect()
        version, value = yield from dv.read()
        yield from dv.stop_server()
        yield from dv.close()
        return version, value

    result = SimRuntime().run([server, client])
    assert result.results["p1"] == (0, b"init")
    assert result.results["p0"] == (b"init", 0)


def test_write_bumps_version():
    def server(env):
        return (yield from dvar_server(env, "x"))

    def client(env):
        dv = DVarClient(env, "x")
        yield from dv.connect()
        v1 = yield from dv.write(b"a")
        v2 = yield from dv.write(b"b")
        _, val = yield from dv.read()
        yield from dv.stop_server()
        yield from dv.close()
        return v1, v2, val

    result = SimRuntime().run([server, client])
    assert result.results["p1"] == (1, 2, b"b")


def test_multiple_writers_serialized():
    """'a distributed variable permits multiple readers and writers':
    every write gets a distinct version; the final value is the last
    version's write."""
    n_clients, writes_each = 3, 4

    def server(env):
        return (yield from dvar_server(env, "shared"))

    def writer(env):
        dv = DVarClient(env, "shared")
        yield from dv.connect()
        versions = []
        for i in range(writes_each):
            versions.append(
                (yield from dv.write(bytes([env.rank, i])))
            )
        yield from dv.close()
        return versions

    def closer(env):
        dv = DVarClient(env, "shared")
        yield from dv.connect()
        # Wait until all writes happened, then stop.
        while True:
            version, _ = yield from dv.read()
            if version >= n_clients * writes_each:
                break
        yield from dv.stop_server()
        yield from dv.close()

    result = SimRuntime().run([server] + [writer] * n_clients + [closer])
    versions = sorted(
        v for k in ("p1", "p2", "p3") for v in result.results[k]
    )
    assert versions == list(range(1, n_clients * writes_each + 1))


def test_fetch_add_is_atomic_counter():
    n_clients, incs = 4, 5

    def server(env):
        return (yield from dvar_server(env, "ctr", initial=(0).to_bytes(8, "little", signed=True)))

    def bumper(env):
        dv = DVarClient(env, "ctr")
        yield from dv.connect()
        olds = []
        for _ in range(incs):
            olds.append((yield from dv.fetch_add(1)))
        yield from dv.close()
        return olds

    def closer(env):
        dv = DVarClient(env, "ctr")
        yield from dv.connect()
        while True:
            version, val = yield from dv.read()
            if version >= n_clients * incs:
                break
        yield from dv.stop_server()
        yield from dv.close()
        return int.from_bytes(val, "little", signed=True)

    workers = [server] + [bumper] * n_clients + [closer]
    result = SimRuntime().run(workers)
    # Every observed "old" value is unique: read-modify-write is atomic.
    olds = sorted(
        o for k in ("p1", "p2", "p3", "p4") for o in result.results[k]
    )
    assert olds == list(range(n_clients * incs))
    assert result.results["p5"] == n_clients * incs


def test_dvars_on_threads_runtime():
    def server(env):
        return (yield from dvar_server(env, "t", initial=b"0"))

    def client(env):
        dv = DVarClient(env, "t")
        yield from dv.connect()
        yield from dv.write(b"42")
        _, val = yield from dv.read()
        yield from dv.stop_server()
        yield from dv.close()
        return val

    result = ThreadRuntime(join_timeout=30).run([server, client])
    assert result.results["p1"] == b"42"
