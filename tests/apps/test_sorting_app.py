"""Tests for the odd-even transposition sort application."""

import numpy as np
import pytest

from repro.apps.sorting import (
    _blocks,
    make_keys,
    odd_even_sort_parallel,
    sort_speedup,
)
from repro.runtime.threads import ThreadRuntime


def test_blocks_cover_and_balance():
    for n, p in ((100, 7), (16, 4), (9, 9), (10, 3)):
        spans = _blocks(n, p)
        assert spans[0][0] == 0 and spans[-1][1] == n
        sizes = [hi - lo for lo, hi in spans]
        assert max(sizes) - min(sizes) <= 1


def test_make_keys_deterministic():
    assert np.array_equal(make_keys(32, seed=5), make_keys(32, seed=5))


@pytest.mark.parametrize("p", [1, 2, 3, 4, 5])
def test_parallel_sort_correct(p):
    keys = make_keys(60, seed=p)
    result = odd_even_sort_parallel(keys, p)
    assert np.array_equal(result.keys, np.sort(keys))


def test_sort_with_duplicates():
    keys = np.array([3.0, 1.0, 3.0, 2.0, 1.0, 2.0, 3.0, 0.0] * 4)
    result = odd_even_sort_parallel(keys, 4)
    assert np.array_equal(result.keys, np.sort(keys))


def test_sort_already_sorted_input():
    keys = np.arange(40, dtype=float)
    result = odd_even_sort_parallel(keys, 4)
    assert np.array_equal(result.keys, keys)


def test_sort_reverse_sorted_input():
    keys = np.arange(40, dtype=float)[::-1].copy()
    result = odd_even_sort_parallel(keys, 4)
    assert np.array_equal(result.keys, np.sort(keys))


def test_sort_uneven_blocks():
    keys = make_keys(47)
    result = odd_even_sort_parallel(keys, 5)
    assert np.array_equal(result.keys, np.sort(keys))


def test_sort_on_threads_runtime():
    keys = make_keys(30)
    result = odd_even_sort_parallel(
        keys, 3, runtime=ThreadRuntime(join_timeout=60)
    )
    assert np.array_equal(result.keys, np.sort(keys))


def test_sort_rejects_bad_p():
    keys = make_keys(8)
    with pytest.raises(ValueError):
        odd_even_sort_parallel(keys, 0)
    with pytest.raises(ValueError):
        odd_even_sort_parallel(keys, 9)


def test_speedup_positive_and_bounded():
    s = sort_speedup(512, 4)
    assert 0 < s < 4


def test_more_keys_better_speedup():
    # Constant comm/compute ratio per phase, but the P phases of block
    # exchange amortize better when merges are bigger.
    assert sort_speedup(2048, 4) > sort_speedup(128, 4)
