"""Tests for the Gauss–Jordan application (Figure 7)."""

import numpy as np
import pytest

from repro.apps.gauss_jordan import (
    _partition,
    gauss_jordan_parallel,
    gauss_jordan_sequential,
    gj_sequential_sim_time,
    gj_speedup,
    make_system,
)
from repro.runtime.threads import ThreadRuntime


def test_make_system_solvable():
    a, b = make_system(16)
    x = np.linalg.solve(a, b)
    assert np.all(np.isfinite(x))


def test_make_system_deterministic_per_seed():
    a1, b1 = make_system(8, seed=3)
    a2, b2 = make_system(8, seed=3)
    assert np.array_equal(a1, a2) and np.array_equal(b1, b2)


def test_partition_covers_all_rows():
    for n, p in ((10, 3), (16, 4), (7, 7), (9, 2)):
        spans = [_partition(n, p, w) for w in range(p)]
        assert spans[0][0] == 0 and spans[-1][1] == n
        for (a0, a1), (b0, b1) in zip(spans, spans[1:]):
            assert a1 == b0
        sizes = [hi - lo for lo, hi in spans]
        assert max(sizes) - min(sizes) <= 1  # "equal sized groups"


def test_sequential_matches_numpy():
    a, b = make_system(24)
    assert np.allclose(gauss_jordan_sequential(a, b), np.linalg.solve(a, b))


def test_sequential_rejects_singular():
    a = np.zeros((4, 4))
    with pytest.raises(np.linalg.LinAlgError):
        gauss_jordan_sequential(a, np.ones(4))


def test_sequential_needs_pivoting():
    # Zero on the diagonal forces a row interchange.
    a = np.array([[0.0, 2.0], [3.0, 1.0]])
    b = np.array([4.0, 5.0])
    assert np.allclose(gauss_jordan_sequential(a, b), np.linalg.solve(a, b))


@pytest.mark.parametrize("p", [1, 2, 3, 4])
def test_parallel_matches_numpy(p):
    a, b = make_system(20, seed=p)
    r = gauss_jordan_parallel(a, b, p)
    assert np.allclose(r.x, np.linalg.solve(a, b))
    assert r.elapsed > 0


def test_parallel_uneven_partition():
    a, b = make_system(17)  # 17 rows over 4 workers
    r = gauss_jordan_parallel(a, b, 4)
    assert np.allclose(r.x, np.linalg.solve(a, b))


def test_parallel_on_threads_runtime():
    a, b = make_system(12)
    r = gauss_jordan_parallel(a, b, 2, runtime=ThreadRuntime(join_timeout=60))
    assert np.allclose(r.x, np.linalg.solve(a, b))


def test_parallel_rejects_bad_p():
    a, b = make_system(4)
    with pytest.raises(ValueError):
        gauss_jordan_parallel(a, b, 0)
    with pytest.raises(ValueError):
        gauss_jordan_parallel(a, b, 5)


def test_sequential_sim_time_scales_with_n():
    assert gj_sequential_sim_time(32) < gj_sequential_sim_time(64) / 4


def test_speedup_shape_matches_paper():
    """Figure 7's qualitative claims, as assertions."""
    # "Speedup is greater with larger matrices."
    s_small = gj_speedup(24, 4)
    s_large = gj_speedup(64, 4)
    assert s_large > s_small
    # "real speedups can be obtained in the MPF environment."
    assert gj_speedup(64, 4) > 1.0
    # "excessive parallelization yields insufficient computation per
    # iteration, and speedup declines."
    assert gj_speedup(24, 12) < gj_speedup(24, 3)


def test_speedup_deterministic():
    assert gj_speedup(24, 3) == gj_speedup(24, 3)
