"""Tests for the SOR Poisson solver application (Figure 8)."""

import numpy as np
import pytest

from repro.apps.sor import (
    PoissonProblem,
    _block,
    poisson_reference,
    sor_parallel,
    sor_per_iteration_speedup,
    sor_sequential,
    sor_sequential_sim_time,
)
from repro.runtime.threads import ThreadRuntime


def test_problem_exact_solution_satisfies_boundary():
    u = poisson_reference(9)
    assert np.allclose(u[0, :], 0) and np.allclose(u[-1, :], 0)
    assert np.allclose(u[:, 0], 0) and np.allclose(u[:, -1], 0)


def test_omega_in_valid_sor_range():
    for m in (9, 17, 33, 65):
        om = PoissonProblem(m).omega_opt()
        assert 1.0 < om < 2.0


def test_block_decomposition_covers_interior():
    for mi, n in ((7, 2), (15, 4), (63, 3), (63, 4)):
        spans = [_block(mi, n, i) for i in range(n)]
        assert spans[0][0] == 0 and spans[-1][1] == mi
        for (a0, a1), (b0, b1) in zip(spans, spans[1:]):
            assert a1 == b0


def test_sequential_converges_to_analytic_solution():
    r = sor_sequential(17, tol=1e-7)
    assert r.converged
    err = np.max(np.abs(r.u - poisson_reference(17)))
    assert err < 5e-3  # discretization error at h = 1/16


def test_sequential_discretization_error_shrinks_with_h():
    e9 = np.max(np.abs(sor_sequential(9, tol=1e-9).u - poisson_reference(9)))
    e33 = np.max(np.abs(sor_sequential(33, tol=1e-9).u - poisson_reference(33)))
    assert e33 < e9 / 8  # second-order stencil: ~16x per 4x refinement


def test_sequential_iteration_budget_respected():
    r = sor_sequential(33, tol=1e-12, max_iters=5)
    assert not r.converged
    assert r.iterations == 5


@pytest.mark.parametrize("n", [1, 2, 3])
def test_parallel_equals_sequential_iterates(n):
    rs = sor_sequential(17, tol=0.0, max_iters=4)
    rp = sor_parallel(17, n, tol=0.0, max_iters=4)
    assert rp.iterations == 4
    assert np.allclose(rp.u, rs.u, atol=1e-12)


def test_parallel_converges_like_sequential():
    rs = sor_sequential(17, tol=1e-6)
    rp = sor_parallel(17, 2, tol=1e-6)
    assert rp.converged
    assert rp.iterations == rs.iterations  # identical iteration, same stop
    assert np.allclose(rp.u, rs.u, atol=1e-12)


def test_parallel_uneven_blocks():
    # 15 interior points over a 4x4 grid: blocks of 4 and 3.
    rp = sor_parallel(17, 4, tol=0.0, max_iters=3)
    rs = sor_sequential(17, tol=0.0, max_iters=3)
    assert np.allclose(rp.u, rs.u, atol=1e-12)


def test_parallel_on_threads_runtime():
    rp = sor_parallel(9, 2, tol=0.0, max_iters=3,
                      runtime=ThreadRuntime(join_timeout=60))
    rs = sor_sequential(9, tol=0.0, max_iters=3)
    assert np.allclose(rp.u, rs.u, atol=1e-12)


def test_parallel_rejects_oversized_grid_of_processes():
    with pytest.raises(ValueError):
        sor_parallel(9, 8)  # 7 interior points cannot host 8 blocks


def test_sequential_sim_time_linear_in_iterations():
    t2 = sor_sequential_sim_time(17, 2)
    t4 = sor_sequential_sim_time(17, 4)
    assert t4 == pytest.approx(2 * t2, rel=1e-6)


def test_per_iteration_speedup_shape_matches_paper():
    """Figure 8's qualitative claims, as assertions."""
    # Definitionally 1.0 at the N=2 baseline.
    assert sor_per_iteration_speedup(33, 2) == pytest.approx(1.0)
    # Large grids gain from more processors...
    assert sor_per_iteration_speedup(65, 4) > 1.5
    # ...small grids lose (communication dominates the tiny subgrids).
    assert sor_per_iteration_speedup(9, 4) < 1.0


def test_monitor_stops_all_workers_together():
    # Convergence broadcast: every worker runs the same iteration count.
    rp = sor_parallel(17, 3, tol=1e-5)
    assert rp.converged
