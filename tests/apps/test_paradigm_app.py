"""Tests for the message-passing vs shared-memory paradigm study."""

import numpy as np
import pytest

from repro.apps.paradigm import (
    global_sum_mp,
    global_sum_shm,
    jacobi_mp,
    jacobi_shm,
    paradigm_penalty,
)


def _jacobi_reference(u0, iterations):
    u = u0.astype(float).copy()
    for _ in range(iterations):
        u[1:-1] = 0.5 * (u[:-2] + u[2:])
    return u


@pytest.mark.parametrize("p", [1, 2, 4])
def test_global_sum_mp_correct(p):
    data = np.arange(40, dtype=float)
    r = global_sum_mp(data, p, rounds=2)
    assert r.value == pytest.approx(float(np.sum(data)))


@pytest.mark.parametrize("p", [1, 2, 4])
def test_global_sum_shm_correct(p):
    data = np.arange(40, dtype=float)
    r = global_sum_shm(data, p, rounds=2)
    assert r.value == pytest.approx(float(np.sum(data)))


@pytest.mark.parametrize("p", [1, 2, 3])
def test_jacobi_mp_matches_reference(p):
    u0 = np.random.default_rng(1).uniform(size=30)
    r = jacobi_mp(u0, p, iterations=6)
    assert np.allclose(r.value, _jacobi_reference(u0, 6))


@pytest.mark.parametrize("p", [1, 2, 3])
def test_jacobi_shm_matches_reference(p):
    u0 = np.random.default_rng(2).uniform(size=30)
    r = jacobi_shm(u0, p, iterations=6)
    assert np.allclose(r.value, _jacobi_reference(u0, 6))


def test_paradigms_numerically_identical():
    u0 = np.random.default_rng(3).uniform(size=26)
    mp = jacobi_mp(u0, 2, iterations=5)
    shm = jacobi_shm(u0, 2, iterations=5)
    assert np.allclose(mp.value, shm.value)


def test_message_passing_pays_a_penalty():
    """The paper's premise (§1): "this adaptation may incur a
    substantial performance penalty" — the MP formulation of a
    fine-grained kernel is slower than native shared variables."""
    _, _, penalty = paradigm_penalty("sum", n=64, p=4)
    assert penalty > 2.0
    _, _, penalty = paradigm_penalty("jacobi", n=64, p=4)
    assert penalty > 1.5


def test_penalty_shrinks_with_compute_grain():
    """More compute per coordination event dilutes the penalty — the
    compute/communication balance of Figures 7 and 8."""
    _, _, small = paradigm_penalty("jacobi", n=32, p=4)
    _, _, large = paradigm_penalty("jacobi", n=512, p=4)
    assert large < small


def test_penalty_kernel_validation():
    with pytest.raises(ValueError):
        paradigm_penalty("nonsense", 10, 2)
