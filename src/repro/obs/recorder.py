"""Runtime-agnostic metrics recording: counters, lock profiles, spans.

The old :class:`~repro.machine.trace.Tracer` could only observe the
simulator, because only the simulated engine produces a full effect
stream.  A :class:`Recorder` is the portable counterpart: runtimes call
a handful of *structured* hooks (``on_charge``, ``on_acquire``, ...)
with whatever clock they have — simulated seconds on
:class:`~repro.runtime.sim.SimRuntime`, wall-clock seconds everywhere
else — and the recorder maintains:

* per-lock acquisition counts, contention counts, wait/hold totals and
  log-scale histograms (:class:`LockStats`) — the Figure 4 evidence,
  now measurable on real threads and processes;
* a per-``Work``-label split (:class:`WorkStats`) — the Figure 3
  "where does the time go" decomposition (charged seconds on the
  simulator, instruction budgets on real runtimes where charges are
  free);
* per-process effect-kind counts matching ``Tracer.summary()``;
* a bounded list of structured :class:`Span` events feeding the JSONL
  and Chrome-trace exporters (:mod:`repro.obs.export`).

Recorders are *mergeable*: each worker records into its own child
recorder (no cross-thread contention perturbing the measurement), and
the parent merges picklable :meth:`snapshot` dicts afterwards — which is
also how measurements cross the fork boundary of
:class:`~repro.runtime.procs.ProcRuntime`.
"""

from __future__ import annotations

import math
import threading
from collections import Counter
from dataclasses import dataclass, field

from ..core.protocol import ALLOC_LOCK, FIRST_LNVC_LOCK, GLOBAL_LOCK

__all__ = ["Histogram", "LockStats", "WorkStats", "Span", "Recorder", "lock_name"]


def lock_name(lock_id: int) -> str:
    """Human name for a lock index (layout of :mod:`repro.core.protocol`)."""
    if lock_id == GLOBAL_LOCK:
        return "global"
    if lock_id == ALLOC_LOCK:
        return "alloc"
    return f"lnvc{lock_id - FIRST_LNVC_LOCK}"


class Histogram:
    """Log₂-bucketed duration histogram (microsecond scale).

    Bucket ``b`` counts durations in ``(2**(b-1), 2**b]`` microseconds;
    bucket 0 collects everything at or below 1 µs.  Log buckets keep the
    histogram tiny while separating the decades that matter (an
    uncontended acquire, a contended wait, a descheduled process).
    """

    __slots__ = ("counts",)

    def __init__(self, counts: dict[int, int] | None = None) -> None:
        self.counts: dict[int, int] = dict(counts or {})

    def add(self, seconds: float) -> None:
        us = seconds * 1e6
        b = 0 if us <= 1.0 else int(math.ceil(math.log2(us)))
        self.counts[b] = self.counts.get(b, 0) + 1

    def merge(self, counts: dict[int, int]) -> None:
        for b, n in counts.items():
            self.counts[b] = self.counts.get(b, 0) + n

    @property
    def total(self) -> int:
        return sum(self.counts.values())

    def buckets(self) -> list[tuple[str, int]]:
        """Sorted ``(upper-bound label, count)`` pairs."""
        out = []
        for b in sorted(self.counts):
            us = 2 ** b
            label = f"≤{us}µs" if us < 1000 else f"≤{us / 1000:g}ms"
            out.append((label, self.counts[b]))
        return out

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Histogram({dict(sorted(self.counts.items()))})"


@dataclass
class LockStats:
    """Everything recorded about one lock."""

    #: Explicit ``Acquire`` effects granted (matches ``Tracer.lock_profile``).
    acquires: int = 0
    #: Lock re-entries on the way out of a ``WaitOn`` sleep (not Acquires).
    reacquires: int = 0
    #: Grants that had to wait because the lock was held.
    contended: int = 0
    #: Total seconds grantees spent waiting for this lock.
    wait_seconds: float = 0.0
    #: Longest single wait.
    max_wait: float = 0.0
    #: Total seconds the lock was held (release time − grant time).
    hold_seconds: float = 0.0
    wait_hist: Histogram = field(default_factory=Histogram)
    hold_hist: Histogram = field(default_factory=Histogram)

    def as_dict(self) -> dict:
        return {
            "acquires": self.acquires,
            "reacquires": self.reacquires,
            "contended": self.contended,
            "wait_seconds": self.wait_seconds,
            "max_wait": self.max_wait,
            "hold_seconds": self.hold_seconds,
            "wait_hist": dict(self.wait_hist.counts),
            "hold_hist": dict(self.hold_hist.counts),
        }

    def merge(self, d: dict) -> None:
        self.acquires += d["acquires"]
        self.reacquires += d["reacquires"]
        self.contended += d["contended"]
        self.wait_seconds += d["wait_seconds"]
        self.max_wait = max(self.max_wait, d["max_wait"])
        self.hold_seconds += d["hold_seconds"]
        self.wait_hist.merge(d["wait_hist"])
        self.hold_hist.merge(d["hold_hist"])


@dataclass
class WorkStats:
    """Accumulated ``Charge`` activity for one work label."""

    count: int = 0
    instrs: int = 0
    flops: int = 0
    #: Priced simulated seconds; stays 0.0 on real runtimes (charges are
    #: free there — real time passes on its own).
    seconds: float = 0.0

    def as_dict(self) -> dict:
        return {"count": self.count, "instrs": self.instrs,
                "flops": self.flops, "seconds": self.seconds}

    def merge(self, d: dict) -> None:
        self.count += d["count"]
        self.instrs += d["instrs"]
        self.flops += d["flops"]
        self.seconds += d["seconds"]


@dataclass(frozen=True)
class Span:
    """One structured event, timestamped at its *end*.

    ``kind`` is one of ``charge``, ``acquire``, ``release``,
    ``chan-wait``, ``wake``; ``duration`` is the span length in seconds
    (charge time, lock wait, lock hold, channel sleep; 0 for wakes).
    """

    time: float
    process: str
    kind: str
    name: str
    duration: float = 0.0
    value: int = 0

    def as_dict(self) -> dict:
        return {"time": self.time, "process": self.process, "kind": self.kind,
                "name": self.name, "duration": self.duration, "value": self.value}


class Recorder:
    """Portable observability hooks; pass to any runtime.

    ``limit`` bounds the structured span list exactly as the Tracer's
    event limit does: counters keep counting, span recording stops, and
    :attr:`dropped_spans` counts what was not stored so truncated traces
    are never silently read as complete.
    ``clock`` names the timebase the producing runtime used (``"sim"``
    or ``"wall"``); runtimes set it at the start of a run.
    ``causal=True`` additionally attaches a
    :class:`~repro.obs.causal.CausalTracer` (or pass a pre-built tracer
    instance): the runtimes hand it to the ops layer, which records one
    lifecycle event per message send/receive/free.
    ``causal_max_events=N`` puts that tracer in bounded mode: stride
    sampling caps the stored events at ``N`` while an exact sketch keeps
    e2e latency quantiles precise — how million-message serve runs trace
    without unbounded memory (see docs/serving.md).
    ``timeline=True`` (or a pre-built
    :class:`~repro.obs.timeline.Timeline`) additionally slices the run
    into fixed-width time windows of counters, gauges and quantile
    digests — the time axis the post-hoc aggregates lack;
    ``timeline_width`` sets the window width in seconds (see
    docs/telemetry.md).
    """

    def __init__(self, limit: int = 100_000, causal=False,
                 causal_max_events: int | None = None,
                 timeline=False, timeline_width: float = 0.05) -> None:
        self.limit = limit
        self.clock = "wall"
        self.spans: list[Span] = []
        #: Total spans seen, including those past ``limit``.
        self.total = 0
        #: Spans not stored because ``limit`` was reached; the invariant
        #: ``total == len(spans) + dropped_spans`` always holds.
        self.dropped_spans = 0
        self.locks: dict[int, LockStats] = {}
        self.work: dict[str, WorkStats] = {}
        self.kinds: dict[str, Counter] = {}
        self.chan_waits: Counter = Counter()
        self.chan_wait_seconds: float = 0.0
        #: Simulated-engine counters (events, heap crossings, epoch
        #: batches) accumulated by SimRuntime after each run.
        self.machine: dict[str, int] = {}
        self._merge_mutex = threading.Lock()
        if causal:
            from .causal import CausalTracer

            self.causal = causal if isinstance(causal, CausalTracer) \
                else CausalTracer(max_events=causal_max_events)
        else:
            #: Optional :class:`~repro.obs.causal.CausalTracer`.
            self.causal = None
        if timeline:
            from .timeline import Timeline

            self.timeline = timeline if isinstance(timeline, Timeline) \
                else Timeline(width=timeline_width)
            if self.causal is not None:
                # The causal e2e sketch feeds the timeline's per-circuit
                # delivery-latency digests.
                self.causal.timeline = self.timeline
        else:
            #: Optional :class:`~repro.obs.timeline.Timeline`.
            self.timeline = None

    # -- hooks called by runtimes ---------------------------------------------

    def _span(self, span: Span) -> None:
        self.total += 1
        if len(self.spans) < self.limit:
            self.spans.append(span)
        else:
            self.dropped_spans += 1

    def _count(self, process: str, kind: str) -> None:
        try:
            self.kinds[process][kind] += 1
        except KeyError:
            self.kinds[process] = Counter({kind: 1})

    def on_charge(self, time: float, process: str, label: str,
                  seconds: float, instrs: int = 0, flops: int = 0) -> None:
        """A ``Charge`` effect was priced (sim) or skipped for free (real)."""
        self._count(process, "Charge")
        label = label or "(unlabeled)"
        ws = self.work.get(label)
        if ws is None:
            ws = self.work[label] = WorkStats()
        ws.count += 1
        ws.instrs += instrs
        ws.flops += flops
        ws.seconds += seconds
        self._span(Span(time, process, "charge", label, seconds, instrs))

    def on_acquire(self, time: float, process: str, lock_id: int,
                   wait_seconds: float, contended: bool,
                   counted: bool = True) -> None:
        """A lock was granted after ``wait_seconds`` of waiting.

        ``counted=False`` marks the implicit reacquisition on the way out
        of a ``WaitOn`` sleep: its wait time is real contention evidence,
        but it is not an ``Acquire`` effect, so it must not disturb the
        Tracer-compatible acquisition counts.
        """
        ls = self.locks.get(lock_id)
        if ls is None:
            ls = self.locks[lock_id] = LockStats()
        if counted:
            self._count(process, "Acquire")
            ls.acquires += 1
        else:
            ls.reacquires += 1
        if contended:
            ls.contended += 1
        ls.wait_seconds += wait_seconds
        if wait_seconds > ls.max_wait:
            ls.max_wait = wait_seconds
        ls.wait_hist.add(wait_seconds)
        if self.timeline is not None and counted:
            self.timeline.tap_lock(time, lock_id, wait_seconds, contended)
        self._span(Span(time, process, "acquire", lock_name(lock_id),
                        wait_seconds, lock_id))

    def on_release(self, time: float, process: str, lock_id: int,
                   hold_seconds: float, counted: bool = True) -> None:
        """A lock was released after being held ``hold_seconds``.

        ``counted=False`` marks the implicit release performed by a
        ``WaitOn`` (the effect protocol releases the circuit lock on the
        caller's behalf before sleeping).
        """
        ls = self.locks.get(lock_id)
        if ls is None:
            ls = self.locks[lock_id] = LockStats()
        if counted:
            self._count(process, "Release")
        ls.hold_seconds += hold_seconds
        ls.hold_hist.add(hold_seconds)
        self._span(Span(time, process, "release", lock_name(lock_id),
                        hold_seconds, lock_id))

    def on_chan_wait(self, time: float, process: str, chan: int,
                     wait_seconds: float) -> None:
        """A ``WaitOn`` sleep on channel ``chan`` ended after ``wait_seconds``."""
        self._count(process, "WaitOn")
        self.chan_waits[chan] += 1
        self.chan_wait_seconds += wait_seconds
        if self.timeline is not None:
            self.timeline.tap_chan(time, chan, wait_seconds)
        self._span(Span(time, process, "chan-wait", f"chan{chan}",
                        wait_seconds, chan))

    def on_wake(self, time: float, process: str, chan: int, woken: int) -> None:
        """A ``Wake`` on channel ``chan`` roused ``woken`` sleepers."""
        self._count(process, "Wake")
        self._span(Span(time, process, "wake", f"chan{chan}", 0.0, woken))

    # -- Tracer-compatible tables ----------------------------------------------

    def summary(self) -> dict[str, Counter]:
        """Per-process effect-kind counts (same shape as ``Tracer.summary``)."""
        return {p: Counter(c) for p, c in self.kinds.items()}

    def lock_profile(self) -> Counter:
        """Acquisitions per lock id (same shape as ``Tracer.lock_profile``)."""
        return Counter({lid: ls.acquires for lid, ls in self.locks.items()
                        if ls.acquires})

    def charge_breakdown(self) -> Counter:
        """Instruction budget per work label (``Tracer.charge_breakdown``)."""
        return Counter({label: ws.instrs for label, ws in self.work.items()
                        if ws.instrs})

    # -- aggregates -------------------------------------------------------------

    def lock_table(self) -> dict[int, LockStats]:
        """Per-lock statistics, keyed by lock id, sorted."""
        return {lid: self.locks[lid] for lid in sorted(self.locks)}

    def circuit_lock_stats(self) -> LockStats:
        """All per-LNVC circuit locks folded into one :class:`LockStats`.

        This is the Figure 4 headline number: the per-circuit locks are
        where FCFS receivers and the sender collide.
        """
        agg = LockStats()
        for lid, ls in self.locks.items():
            if lid >= FIRST_LNVC_LOCK:
                agg.merge(ls.as_dict())
        return agg

    # -- merge across workers / processes ---------------------------------------

    def child(self) -> "Recorder":
        """A fresh recorder for one worker; merge its snapshot when done.

        When this recorder carries a causal tracer the child gets its own
        fresh tracer (same limit), so per-worker causal events can ride
        home inside the child's picklable snapshot — how causal traces
        cross the :class:`~repro.runtime.procs.ProcRuntime` fork.
        """
        rec = Recorder(limit=self.limit)
        rec.clock = self.clock
        if self.causal is not None:
            from .causal import CausalTracer

            rec.causal = CausalTracer(limit=self.causal.limit,
                                      max_events=self.causal.max_events)
        if self.timeline is not None:
            rec.timeline = self.timeline.child()
            if rec.causal is not None:
                rec.causal.timeline = rec.timeline
        return rec

    def snapshot(self) -> dict:
        """Picklable plain-data form (crosses the fork boundary)."""
        return {
            "clock": self.clock,
            "total": self.total,
            "dropped_spans": self.dropped_spans,
            "spans": [s.as_dict() for s in self.spans],
            "locks": {lid: ls.as_dict() for lid, ls in self.locks.items()},
            "work": {label: ws.as_dict() for label, ws in self.work.items()},
            "kinds": {p: dict(c) for p, c in self.kinds.items()},
            "chan_waits": dict(self.chan_waits),
            "chan_wait_seconds": self.chan_wait_seconds,
            "machine": dict(self.machine),
            "causal": None if self.causal is None else self.causal.snapshot(),
            "timeline": None if self.timeline is None
            else self.timeline.snapshot(),
        }

    def merge(self, snap: dict) -> None:
        """Fold a :meth:`snapshot` into this recorder (thread-safe)."""
        with self._merge_mutex:
            self.total += snap["total"]
            spans = snap["spans"]
            room = self.limit - len(self.spans)
            fitted = min(len(spans), room) if room > 0 else 0
            self.spans.extend(Span(**d) for d in spans[:fitted])
            self.dropped_spans += (
                snap.get("dropped_spans", 0) + (len(spans) - fitted)
            )
            for lid, d in snap["locks"].items():
                lid = int(lid)
                ls = self.locks.get(lid)
                if ls is None:
                    ls = self.locks[lid] = LockStats()
                ls.merge(d)
            for label, d in snap["work"].items():
                ws = self.work.get(label)
                if ws is None:
                    ws = self.work[label] = WorkStats()
                ws.merge(d)
            for p, c in snap["kinds"].items():
                if p in self.kinds:
                    self.kinds[p].update(c)
                else:
                    self.kinds[p] = Counter(c)
            self.chan_waits.update(snap["chan_waits"])
            self.chan_wait_seconds += snap["chan_wait_seconds"]
            for key, n in snap.get("machine", {}).items():
                self.machine[key] = self.machine.get(key, 0) + n
            tl_snap = snap.get("timeline")
            if tl_snap is not None:
                if self.timeline is None:
                    from .timeline import Timeline

                    self.timeline = Timeline(width=tl_snap["width"])
                    self.timeline.clock_kind = tl_snap.get(
                        "clock_kind", "wall")
                self.timeline.merge(tl_snap)
            causal_snap = snap.get("causal")
            if causal_snap is not None:
                if self.causal is None:
                    from .causal import CausalTracer

                    self.causal = CausalTracer(
                        limit=causal_snap.get("limit", 200_000),
                        max_events=causal_snap.get("max_events"))
                self.causal.merge(causal_snap)

    # -- exporters (implemented in repro.obs.export) -----------------------------

    def format_lock_profile(self) -> str:
        """Aligned text table of :meth:`lock_table` (see ``repro.obs.export``)."""
        from .export import format_lock_profile

        return format_lock_profile(self)

    def format_summary(self) -> str:
        """Aligned text table of the per-label work split."""
        from .export import format_summary

        return format_summary(self)

    def jsonl(self) -> str:
        """Spans as JSON lines."""
        from .export import to_jsonl

        return to_jsonl(self)

    def chrome_trace(self) -> dict:
        """Spans as a ``chrome://tracing`` / Perfetto ``traceEvents`` dict."""
        from .export import chrome_trace

        return chrome_trace(self)

    def write_jsonl(self, path: str) -> None:
        from .export import write_jsonl

        write_jsonl(self, path)

    def write_chrome_trace(self, path: str) -> None:
        from .export import write_chrome_trace

        write_chrome_trace(self, path)

    def prometheus(self) -> str:
        """Metrics (and causal aggregates, if traced) as Prometheus text."""
        from .prom import prometheus_exposition

        return prometheus_exposition(self)
