"""Message flow graphs: pid → LNVC → pid edges with byte/message weights.

MP net-style reconstruction of a run's communication structure: processes
and circuits become nodes, send connections and receives become weighted
edges.  Two builders feed the same graph shape:

* :func:`flow_from_causal` — exact per-message weights from a
  :class:`~repro.obs.causal.CausalTracer` event stream (message counts
  and byte totals on every edge);
* :func:`flow_from_segment` — a point-in-time approximation from a
  :class:`~repro.core.inspect.SegmentInfo` snapshot (connection topology
  plus per-receiver read counts and currently queued messages), for
  segments that were never traced — this is what ``mpf-inspect --flow``
  prints.

Exports: Graphviz DOT (:func:`flow_dot`) and plain JSON
(:func:`flow_json`), both deterministic.  :func:`check_dot` is the
well-formedness gate used by the tests and the CI trace smoke.
"""

from __future__ import annotations

import json
import re
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..core.inspect import SegmentInfo
    from .causal import CausalTracer

__all__ = [
    "FlowGraph",
    "flow_from_causal",
    "flow_from_segment",
    "flow_dot",
    "flow_json",
    "check_dot",
]


@dataclass
class FlowGraph:
    """A bipartite pid/LNVC multigraph with message and byte weights.

    Keys: LNVC nodes are ``(slot, gen)`` pairs; edge keys pair a pid with
    an LNVC node.  Weights are ``[messages, bytes]`` lists (bytes stay 0
    where the builder cannot know them, e.g. segment-snapshot reads).
    """

    #: ``(slot, gen) -> label`` (circuit name when known).
    lnvcs: dict[tuple[int, int], str] = field(default_factory=dict)
    #: ``(pid, (slot, gen)) -> [messages, bytes]`` — pid sends into LNVC.
    sends: dict[tuple[int, tuple[int, int]], list[int]] = field(
        default_factory=dict)
    #: ``((slot, gen), pid) -> [messages, bytes]`` — pid receives from LNVC.
    recvs: dict[tuple[tuple[int, int], int], list[int]] = field(
        default_factory=dict)

    def add_send(self, pid: int, lnvc: tuple[int, int],
                 msgs: int = 0, nbytes: int = 0) -> None:
        w = self.sends.setdefault((pid, lnvc), [0, 0])
        w[0] += msgs
        w[1] += nbytes
        self.lnvcs.setdefault(lnvc, f"lnvc{lnvc[0]}")

    def add_recv(self, lnvc: tuple[int, int], pid: int,
                 msgs: int = 0, nbytes: int = 0) -> None:
        w = self.recvs.setdefault((lnvc, pid), [0, 0])
        w[0] += msgs
        w[1] += nbytes
        self.lnvcs.setdefault(lnvc, f"lnvc{lnvc[0]}")


def flow_from_causal(tracer: "CausalTracer") -> FlowGraph:
    """Exact flow weights from a causal event stream."""
    g = FlowGraph()
    for e in tracer.events:
        if e.kind == "send":
            g.add_send(e.pid, e.lnvc, 1, e.length)
        elif e.kind == "recv":
            g.add_recv(e.lnvc, e.pid, 1, e.length)
    return g


def flow_from_segment(info: "SegmentInfo") -> FlowGraph:
    """Point-in-time flow from an inspected segment.

    Topology comes from the connection lists (zero-weight edges keep
    unused connections visible); weights come from per-receiver read
    counts and the senders of currently queued messages.  Byte weights
    are known only for queued messages — past traffic left no per-pid
    byte trail in the segment.
    """
    from ..core.ops import decode_lnvc_id

    g = FlowGraph()
    for circ in info.circuits:
        lnvc = decode_lnvc_id(circ.lnvc_id)
        g.lnvcs[lnvc] = circ.name or f"lnvc{lnvc[0]}"
        for conn in circ.connections:
            if conn.kind == "send":
                g.add_send(conn.pid, lnvc)
            else:
                g.add_recv(lnvc, conn.pid, msgs=conn.reads)
        for msg in circ.messages:
            g.add_send(msg.sender, lnvc, 1, msg.length)
    return g


# ---------------------------------------------------------------------------
# exports
# ---------------------------------------------------------------------------


def _lnvc_node(lnvc: tuple[int, int]) -> str:
    return f"lnvc{lnvc[0]}.g{lnvc[1]}"


def _weight(w: list[int]) -> str:
    msgs, nbytes = w
    if nbytes:
        return f"{msgs} msg / {nbytes} B"
    return f"{msgs} msg"


def flow_dot(g: FlowGraph) -> str:
    """The graph as deterministic Graphviz DOT (``dot -Tsvg`` ready)."""
    pids = sorted({pid for pid, _ in g.sends} | {pid for _, pid in g.recvs})
    lines = [
        "digraph mpf_flow {",
        "  rankdir=LR;",
        '  node [shape=box, fontname="monospace"];',
    ]
    for pid in pids:
        lines.append(f'  "p{pid}";')
    for lnvc in sorted(g.lnvcs):
        label = g.lnvcs[lnvc].replace("\\", "\\\\").replace('"', '\\"')
        lines.append(
            f'  "{_lnvc_node(lnvc)}" [shape=ellipse, label="{label}"];'
        )
    for pid, lnvc in sorted(g.sends):
        w = _weight(g.sends[(pid, lnvc)])
        lines.append(
            f'  "p{pid}" -> "{_lnvc_node(lnvc)}" [label="{w}"];'
        )
    for lnvc, pid in sorted(g.recvs):
        w = _weight(g.recvs[(lnvc, pid)])
        lines.append(
            f'  "{_lnvc_node(lnvc)}" -> "p{pid}" [label="{w}"];'
        )
    lines.append("}")
    return "\n".join(lines) + "\n"


def flow_json(g: FlowGraph) -> str:
    """The graph as deterministic JSON (nodes + weighted edges)."""
    doc = {
        "lnvcs": [
            {"slot": slot, "gen": gen, "name": g.lnvcs[(slot, gen)]}
            for slot, gen in sorted(g.lnvcs)
        ],
        "edges": [
            {"from": f"p{pid}", "to": _lnvc_node(lnvc),
             "msgs": w[0], "bytes": w[1]}
            for (pid, lnvc), w in sorted(g.sends.items())
        ] + [
            {"from": _lnvc_node(lnvc), "to": f"p{pid}",
             "msgs": w[0], "bytes": w[1]}
            for (lnvc, pid), w in sorted(g.recvs.items())
        ],
    }
    return json.dumps(doc, indent=1, sort_keys=True) + "\n"


_NODE_LINE = re.compile(r'^"[^"]+"(\s*\[[^\]]*\])?;$')
_EDGE_LINE = re.compile(r'^"[^"]+"\s*->\s*"[^"]+"(\s*\[[^\]]*\])?;$')
_ATTR_LINE = re.compile(r"^[A-Za-z_][A-Za-z0-9_]*\s*=.*;$")
_SCOPE_LINE = re.compile(r"^(node|edge|graph)\s*\[[^\]]*\];$")


def check_dot(text: str) -> int:
    """Validate a DOT digraph; returns the edge count, raises ValueError.

    Not a full DOT parser — it accepts exactly the statement shapes
    :func:`flow_dot` emits (quoted nodes, quoted edges, attribute
    statements), which is what the CI smoke needs to assert.
    """
    lines = [ln.strip() for ln in text.strip().splitlines()]
    if not lines or not lines[0].startswith("digraph") or not lines[0].endswith("{"):
        raise ValueError("DOT: missing 'digraph ... {' header")
    if lines[-1] != "}":
        raise ValueError("DOT: missing closing '}'")
    edges = 0
    for ln in lines[1:-1]:
        if not ln:
            continue
        if _EDGE_LINE.match(ln):
            edges += 1
        elif not (_NODE_LINE.match(ln) or _ATTR_LINE.match(ln)
                  or _SCOPE_LINE.match(ln)):
            raise ValueError(f"DOT: unrecognized statement: {ln!r}")
    return edges
