"""Exporters for :class:`~repro.obs.recorder.Recorder` measurements.

Three output shapes, matching three audiences:

* :func:`format_lock_profile` / :func:`format_summary` — aligned text
  tables in the style of the Tracer analyses, for terminals and docs;
* :func:`to_jsonl` — one JSON object per span, for ad-hoc analysis
  (``pandas.read_json(..., lines=True)``);
* :func:`chrome_trace` — the Trace Event Format consumed by
  ``chrome://tracing`` and https://ui.perfetto.dev: each worker becomes
  a track, charges and lock holds become duration slices, lock waits
  and channel sleeps become their own slices, so Figure 4's "receivers
  serialize on the circuit lock" is literally visible as stacked
  ``wait lnvc0`` bars.

All exporters are observational and deterministic: exporting the same
recorder twice yields identical bytes.
"""

from __future__ import annotations

import json
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .recorder import Recorder

__all__ = [
    "format_lock_profile",
    "format_summary",
    "to_jsonl",
    "write_jsonl",
    "chrome_trace",
    "write_chrome_trace",
    "write_decision_trace",
    "read_decision_trace",
]


def _table(rows: list[list[str]]) -> str:
    """Right-align ``rows`` (first row is the header) into one string."""
    widths = [max(len(r[i]) for r in rows) for i in range(len(rows[0]))]
    lines = []
    for i, row in enumerate(rows):
        lines.append("  ".join(c.rjust(w) for c, w in zip(row, widths)))
        if i == 0:
            lines.append("-" * (sum(widths) + 2 * (len(widths) - 1)))
    return "\n".join(lines)


def _ms(seconds: float) -> str:
    return f"{seconds * 1e3:.3f}"


def format_lock_profile(rec: "Recorder") -> str:
    """Per-lock table: acquires, contention, wait and hold times (ms)."""
    from .recorder import lock_name

    unit = "sim-ms" if rec.clock == "sim" else "wall-ms"
    rows = [["lock", "name", "acquires", "reacq", "contended",
             f"wait {unit}", f"max {unit}", f"hold {unit}"]]
    for lid, ls in rec.lock_table().items():
        rows.append([
            str(lid), lock_name(lid), str(ls.acquires), str(ls.reacquires),
            str(ls.contended), _ms(ls.wait_seconds), _ms(ls.max_wait),
            _ms(ls.hold_seconds),
        ])
    if len(rows) == 1:
        return "(no lock activity recorded)"
    return _table(rows)


def format_summary(rec: "Recorder") -> str:
    """Per-work-label table plus per-process effect counts."""
    unit = "sim-ms" if rec.clock == "sim" else "wall-ms"
    rows = [["label", "count", "instrs", "flops", unit]]
    for label in sorted(rec.work, key=lambda k: -rec.work[k].instrs):
        ws = rec.work[label]
        rows.append([label, str(ws.count), str(ws.instrs), str(ws.flops),
                     _ms(ws.seconds)])
    parts = []
    if len(rows) > 1:
        parts.append(_table(rows))
    if rec.kinds:
        krows = [["process", "Acquire", "Release", "Charge", "WaitOn", "Wake"]]
        for p in sorted(rec.kinds):
            c = rec.kinds[p]
            krows.append([p] + [str(c.get(k, 0)) for k in
                                ("Acquire", "Release", "Charge", "WaitOn", "Wake")])
        parts.append(_table(krows))
    if rec.dropped_spans:
        parts.append(
            f"(!) {rec.dropped_spans} of {rec.total} spans dropped "
            f"(limit {rec.limit}) — span-based exports are truncated; "
            f"the counters above remain complete"
        )
    return "\n\n".join(parts) if parts else "(nothing recorded)"


def to_jsonl(rec: "Recorder") -> str:
    """Spans as JSON lines (time-ordered)."""
    spans = sorted(rec.spans, key=lambda s: (s.time, s.process))
    return "\n".join(
        json.dumps({"clock": rec.clock, **s.as_dict()}, sort_keys=True)
        for s in spans
    )


def write_jsonl(rec: "Recorder", path: str) -> None:
    text = to_jsonl(rec)
    with open(path, "w") as fh:
        fh.write(text + ("\n" if text else ""))


def chrome_trace(rec: "Recorder") -> dict:
    """Trace Event Format dict (load in chrome://tracing or Perfetto).

    Spans are timestamped at their *end*; the slice starts ``duration``
    earlier.  Zero-length events (wakes, free charges on real runtimes)
    become instant events so they stay visible.
    """
    tids = {p: i for i, p in enumerate(
        sorted({s.process for s in rec.spans} | set(rec.kinds)))}
    events: list[dict] = [
        {"ph": "M", "pid": 0, "tid": tid, "name": "thread_name",
         "args": {"name": proc}}
        for proc, tid in tids.items()
    ]
    names = {"charge": "{n}", "acquire": "wait {n}", "release": "hold {n}",
             "chan-wait": "sleep {n}", "wake": "wake {n}"}
    for s in sorted(rec.spans, key=lambda s: (s.time, s.process)):
        dur_us = s.duration * 1e6
        end_us = s.time * 1e6
        ev = {
            "pid": 0,
            "tid": tids[s.process],
            "cat": s.kind,
            # Unknown kinds fall back to the bare name instead of a
            # KeyError, so an exporter never rejects a newer recorder.
            "name": names.get(s.kind, "{n}").format(n=s.name),
        }
        if dur_us > 0:
            ev.update(ph="X", ts=round(end_us - dur_us, 3),
                      dur=round(dur_us, 3))
        else:
            ev.update(ph="i", ts=round(end_us, 3), s="t")
        if s.kind == "wake":
            ev["args"] = {"woken": s.value}
        events.append(ev)
    other = {"clock": rec.clock,
             "spans_recorded": len(rec.spans),
             "spans_dropped": rec.dropped_spans,
             "spans_total": rec.total}
    causal = getattr(rec, "causal", None)
    if causal is not None and causal.events:
        from .causal import causal_async_events

        events.extend(causal_async_events(causal))
        other["causal_events"] = len(causal.events)
        other["causal_dropped"] = causal.dropped
    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": other,
    }


def write_chrome_trace(rec: "Recorder", path: str) -> None:
    with open(path, "w") as fh:
        json.dump(chrome_trace(rec), fh)


def write_decision_trace(trace: dict, path: str) -> None:
    """Persist a :mod:`repro.check` schedule decision trace as JSON.

    A decision trace is the scheduling half of a controlled run: which
    candidate index was chosen at each multi-candidate point (plus the
    scenario/fault/policy metadata needed to rebuild the run).  The
    format is the dict produced by :func:`repro.check.replay.make_trace`;
    writing is centralized here with the other exporters so traces share
    the observability layer's determinism guarantee.
    """
    if trace.get("format") != 1:
        raise ValueError("not a decision trace (missing format: 1)")
    with open(path, "w") as fh:
        json.dump(trace, fh, indent=1, sort_keys=True)
        fh.write("\n")


def read_decision_trace(path: str) -> dict:
    """Load a decision trace written by :func:`write_decision_trace`."""
    with open(path) as fh:
        trace = json.load(fh)
    if not isinstance(trace, dict) or trace.get("format") != 1:
        raise ValueError(f"{path}: not a decision trace (format != 1)")
    return trace
