"""Online health attribution over a :class:`~repro.obs.timeline.Timeline`.

The ROADMAP's open serving observation — "traced stall findings show
mid-pipeline circuits falling behind (growing queue residency)" — names
a symptom but not a *place or time*.  The :class:`HealthEngine` folds
timeline windows as they close into structured :class:`Finding`\\ s that
do exactly that:

* ``queue-growth`` — a circuit whose sampled queue depth ramps through
  the run, localized to the circuit and its onset window;
* ``alloc-pressure`` — the shared block pool's live level ramping
  toward exhaustion (the paper's bounded 10-byte-block pool);
* ``saturating-tier`` — the first tier whose queues reach their high
  plateau, i.e. where the serving knee actually bites first;
* ``backpressure-order`` — the tier saturation sequence, which shows
  which direction pressure propagated across the pipeline.

:meth:`poll` is the *online* mode: it re-evaluates after each batch of
newly closed windows and emits each finding once, while the run is
still in flight (the live scrape endpoint's ``/findings`` view and the
threads-runtime poller use it).  :meth:`scan` is the terminal fold the
``mpf-serve-timeline/1`` document embeds.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .timeline import Timeline

__all__ = ["Finding", "HealthEngine", "serve_tier_of", "SERVE_TIER_ORDER"]

#: Pipeline order of the serve topology's tiers, upstream to downstream.
SERVE_TIER_ORDER = ("frontends", "workers", "aggregator")


def serve_tier_of(name: str) -> str | None:
    """Map a :mod:`repro.serve` circuit name to its pipeline tier."""
    if name.startswith("serve.front."):
        return "frontends"
    if name.startswith("serve.work."):
        return "workers"
    if name == "serve.agg":
        return "aggregator"
    return None  # barrier gates and foreign circuits


@dataclass
class Finding:
    """One structured health conclusion, localized in series and time."""

    kind: str
    severity: str
    series: str
    detail: str
    onset_window: int | None = None
    onset_time: float | None = None
    data: dict = field(default_factory=dict)

    def to_dict(self) -> dict:
        return {
            "kind": self.kind,
            "severity": self.severity,
            "series": self.series,
            "detail": self.detail,
            "onset_window": self.onset_window,
            "onset_time": self.onset_time,
            "data": self.data,
        }


def _avg_rows(rows: dict[int, list]) -> list[tuple[int, float]]:
    """Window-average gauge value per window, sorted by window index."""
    return sorted((idx, cell[1] / cell[0]) for idx, cell in rows.items()
                  if cell[0])


def _onset(seq: list[tuple[int, float]], threshold: float) -> tuple[int, float]:
    """First window at or above ``threshold`` (falls back to the peak)."""
    for idx, v in seq:
        if v >= threshold:
            return idx, v
    return max(seq, key=lambda p: p[1])[0], max(v for _, v in seq)


class HealthEngine:
    """Fold closed windows into findings, online or terminally.

    ``tier_of`` maps circuit names to tiers (e.g. :func:`serve_tier_of`);
    without it the tier-level detectors stay silent and only per-circuit
    and allocator findings fire.  ``tier_order`` orders tiers upstream →
    downstream for the propagation-direction verdict.  ``min_depth`` is
    the smallest window-average queue depth treated as saturation
    evidence; ``growth_ratio`` is the late/early ramp factor that
    declares growth.  ``emit`` (optional callable) receives each finding
    once, as soon as a :meth:`poll` first detects it — that is the
    "emitted during the run" path.
    """

    def __init__(self, timeline: Timeline, tier_of=None,
                 tier_order=SERVE_TIER_ORDER, min_depth: float = 2.0,
                 growth_ratio: float = 2.0, emit=None) -> None:
        self.timeline = timeline
        self.tier_of = tier_of
        self.tier_order = tuple(tier_order)
        self.min_depth = min_depth
        self.growth_ratio = growth_ratio
        self.emit = emit
        self._emitted: set[tuple[str, str]] = set()
        self.findings: list[Finding] = []

    # -- detectors -------------------------------------------------------------

    def _depth_series(self) -> dict[str, dict[int, list]]:
        out: dict[str, dict[int, list]] = {}
        for idx, win in self.timeline.windows.items():
            for k, cell in win["gauges"].items():
                if k.endswith("|depth") and k.startswith("circuit:"):
                    out.setdefault(k[:k.index("|")], {})[idx] = cell
        return out

    def _growth(self, rows: dict[int, list], floor: float):
        """(onset_window, peak, early, late) if the series ramps, else None."""
        seq = _avg_rows(rows)
        if len(seq) < 2:
            return None
        peak = max(v for _, v in seq)
        if peak < floor:
            return None
        third = max(1, len(seq) // 3)
        early = sum(v for _, v in seq[:third]) / third
        late = sum(v for _, v in seq[-third:]) / third
        if late < max(floor, early * self.growth_ratio):
            return None
        idx, _ = _onset(seq, peak / 2)
        return idx, peak, early, late

    def _circuit_findings(self) -> list[Finding]:
        out = []
        for series, rows in sorted(self._depth_series().items()):
            g = self._growth(rows, self.min_depth)
            if g is None:
                continue
            idx, peak, early, late = g
            label = self.timeline.series_label(series)
            out.append(Finding(
                kind="queue-growth", severity="warn", series=label,
                detail=(f"{label} queue residency grows {early:.1f} → "
                        f"{late:.1f} msgs (peak {peak:.1f}); onset at "
                        f"window {idx} (t≈{idx * self.timeline.width:.3g}s)"),
                onset_window=idx, onset_time=idx * self.timeline.width,
                data={"early_depth": early, "late_depth": late,
                      "peak_depth": peak}))
        return out

    def _pool_finding(self) -> list[Finding]:
        rows = {idx: win["gauges"]["pool|live_blocks"]
                for idx, win in self.timeline.windows.items()
                if "pool|live_blocks" in win["gauges"]}
        if not rows:
            return []
        g = self._growth(rows, floor=1.0)
        if g is None:
            return []
        idx, peak, early, late = g
        return [Finding(
            kind="alloc-pressure", severity="warn", series="pool",
            detail=(f"block-pool level ramps {early:.0f} → {late:.0f} live "
                    f"blocks (peak {peak:.0f}); onset at window {idx}"),
            onset_window=idx, onset_time=idx * self.timeline.width,
            data={"early_level": early, "late_level": late,
                  "peak_level": peak})]

    def _tier_findings(self) -> list[Finding]:
        if self.tier_of is None:
            return []
        tiers = self.timeline.tier_series(self.tier_of)
        onsets: list[tuple[int, float, str, float]] = []
        for tier, rows in tiers.items():
            seq = _avg_rows(rows)
            if not seq:
                continue
            peak = max(v for _, v in seq)
            if peak < self.min_depth:
                continue
            idx, v = _onset(seq, max(self.min_depth, 0.5 * peak))
            onsets.append((idx, idx * self.timeline.width, tier, peak))
        if not onsets:
            return []
        order_rank = {t: i for i, t in enumerate(self.tier_order)}
        onsets.sort(key=lambda o: (o[0], order_rank.get(o[2], 99)))
        idx, t, tier, peak = onsets[0]
        out = [Finding(
            kind="saturating-tier", severity="warn", series=f"tier:{tier}",
            detail=(f"{tier} is the first saturating tier: queue depth "
                    f"reaches its plateau (peak {peak:.1f} msgs/circuit) "
                    f"at window {idx} (t≈{t:.3g}s)"),
            onset_window=idx, onset_time=t,
            data={"tier": tier, "peak_depth": peak,
                  "saturated_tiers": [o[2] for o in onsets]})]
        if len(onsets) > 1:
            seqd = ", ".join(f"{o[2]}@w{o[0]}" for o in onsets)
            first, last = onsets[0][2], onsets[-1][2]
            direction = "downstream → upstream" if (
                order_rank.get(first, 0) > order_rank.get(last, 0)
            ) else "upstream → downstream"
            out.append(Finding(
                kind="backpressure-order", severity="info",
                series="pipeline",
                detail=f"tier saturation order: {seqd} ({direction})",
                onset_window=onsets[0][0], onset_time=onsets[0][1],
                data={"order": [{"tier": o[2], "window": o[0],
                                 "peak_depth": o[3]} for o in onsets],
                      "direction": direction}))
        return out

    # -- public API ------------------------------------------------------------

    def scan(self) -> list[Finding]:
        """Evaluate every detector over the whole timeline (idempotent)."""
        return (self._tier_findings() + self._circuit_findings()
                + self._pool_finding())

    def poll(self) -> list[Finding]:
        """Online fold: evaluate and emit findings not yet reported.

        Call periodically while the run is live (the scrape server's
        poller does); each distinct ``(kind, series)`` finding is
        emitted exactly once, with the evidence available at the time it
        first crossed its threshold.
        """
        fresh = []
        for f in self.scan():
            key = (f.kind, f.series)
            if key in self._emitted:
                continue
            self._emitted.add(key)
            self.findings.append(f)
            fresh.append(f)
            if self.emit is not None:
                self.emit(f)
        return fresh
