"""Raw effect-stream recording (the core extracted from the old Tracer).

An :class:`EffectLog` collects ``(time, process, effect_repr)`` callbacks
— the signature of the simulator's trace hook — and supports the
paper-style offline analyses (per-process effect counts, the Figure 3
charge breakdown, the Figure 4 lock-acquisition profile).  It is
runtime-agnostic: anything that can call it with a timestamp, a process
name and an effect string can be analysed, though in practice the
simulated engine is the only producer of full effect streams (real
runtimes use the cheaper structured :class:`~repro.obs.recorder.Recorder`
hooks instead of ``repr``-ing every effect).

:class:`repro.machine.trace.Tracer` is a thin subclass kept for backward
compatibility; its behaviour is byte-identical to the pre-refactor
implementation (tests/machine/test_trace_refactor.py pins this).
"""

from __future__ import annotations

import re
from collections import Counter, defaultdict
from dataclasses import dataclass, field

__all__ = ["TraceEvent", "EffectLog"]

_CHARGE_RE = re.compile(r"Charge\(work=Work\((.*)\)\)")
_FIELD_RE = re.compile(r"(\w+)=([^,)]+)")


@dataclass(frozen=True)
class TraceEvent:
    """One dispatched effect."""

    time: float
    process: str
    text: str

    @property
    def kind(self) -> str:
        """Effect class name (``Acquire``, ``Charge``, ...)."""
        return self.text.split("(", 1)[0]


@dataclass
class EffectLog:
    """Collects engine trace callbacks; pass as ``SimRuntime(trace=...)``.

    ``limit`` bounds memory: recording stops (but counting continues)
    after that many events.
    """

    limit: int = 100_000
    events: list[TraceEvent] = field(default_factory=list)
    #: Total events seen, including those past ``limit``.
    total: int = 0

    def __call__(self, time: float, process: str, text: str) -> None:
        self.total += 1
        if len(self.events) < self.limit:
            self.events.append(TraceEvent(time, process, text))

    # -- analyses --------------------------------------------------------------

    def summary(self) -> dict[str, Counter]:
        """Per-process effect-kind counts."""
        out: dict[str, Counter] = defaultdict(Counter)
        for ev in self.events:
            out[ev.process][ev.kind] += 1
        return dict(out)

    def charge_breakdown(self) -> Counter:
        """Total instruction budget per work label, across all processes.

        This is the "where does the time go" view: for the base
        benchmark it shows copy labels dominating at large messages and
        fixed labels dominating at small ones — the paper's Figure 3
        analysis, reproduced from the trace.
        """
        totals: Counter = Counter()
        for ev in self.events:
            m = _CHARGE_RE.match(ev.text)
            if not m:
                continue
            fields = dict(_FIELD_RE.findall(m.group(1)))
            label = fields.get("label", "''").strip("'\"") or "(unlabeled)"
            totals[label] += int(fields.get("instrs", "0"))
        return totals

    def lock_profile(self) -> Counter:
        """Acquisition attempts per lock id."""
        counts: Counter = Counter()
        for ev in self.events:
            if ev.kind == "Acquire":
                m = _FIELD_RE.search(ev.text)
                if m:
                    counts[int(m.group(2))] += 1
        return counts

    def timeline(self, first: int = 40) -> str:
        """Plain-text listing of the first ``first`` events."""
        lines = [f"{'time':>12}  {'process':<12} effect"]
        for ev in self.events[:first]:
            lines.append(f"{ev.time:>12.6f}  {ev.process:<12} {ev.text}")
        if self.total > first:
            lines.append(f"... ({self.total - first} more events)")
        return "\n".join(lines)

    def between(self, t0: float, t1: float) -> list[TraceEvent]:
        """Recorded events with ``t0 <= time < t1``."""
        return [ev for ev in self.events if t0 <= ev.time < t1]
