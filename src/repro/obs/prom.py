"""Prometheus text exposition of Recorder + causal-tracer metrics.

:func:`prometheus_exposition` renders a :class:`~repro.obs.Recorder`
(and its attached :class:`~repro.obs.causal.CausalTracer`, when causal
tracing was on) as the Prometheus text format — ``# HELP`` / ``# TYPE``
comment pairs followed by ``name{labels} value`` samples — so a figure
sweep or a long-running posix segment can be scraped or diffed with
standard tooling.  Output is deterministic: same recorder, same bytes.

:func:`parse_exposition` is the matching validator (a strict reader of
the subset we emit); the test suite and the ``make trace-smoke`` CI gate
use it to assert the exposition stays parseable.
"""

from __future__ import annotations

import re
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .recorder import Recorder

__all__ = ["prometheus_exposition", "parse_exposition"]

_QUANTILES = (0.5, 0.95, 0.99)


def _fmt(value: float) -> str:
    if isinstance(value, int) or float(value).is_integer():
        return str(int(value))
    return f"{value:.9g}"


class _Writer:
    def __init__(self) -> None:
        self.lines: list[str] = []

    def metric(self, name: str, mtype: str, help_: str,
               samples: list[tuple[dict, float]]) -> None:
        if not samples:
            return
        self.lines.append(f"# HELP {name} {help_}")
        self.lines.append(f"# TYPE {name} {mtype}")
        for labels, value in samples:
            if labels:
                body = ",".join(
                    f'{k}="{v}"' for k, v in sorted(labels.items())
                )
                self.lines.append(f"{name}{{{body}}} {_fmt(value)}")
            else:
                self.lines.append(f"{name} {_fmt(value)}")

    def text(self) -> str:
        return "\n".join(self.lines) + ("\n" if self.lines else "")


def prometheus_exposition(rec: "Recorder") -> str:
    """Render ``rec`` (and ``rec.causal`` if present) as Prometheus text."""
    from .recorder import lock_name

    w = _Writer()
    w.metric("mpf_spans_total", "counter",
             "Structured spans observed (including dropped).",
             [({}, rec.total)])
    w.metric("mpf_spans_dropped", "counter",
             "Spans not stored because the recorder limit was reached.",
             [({}, rec.dropped_spans)])
    locks = rec.lock_table()
    w.metric("mpf_lock_acquires_total", "counter",
             "Explicit lock acquisitions granted.",
             [({"lock": lock_name(lid)}, ls.acquires)
              for lid, ls in locks.items()])
    w.metric("mpf_lock_contended_total", "counter",
             "Acquisitions that had to wait.",
             [({"lock": lock_name(lid)}, ls.contended)
              for lid, ls in locks.items()])
    w.metric("mpf_lock_wait_seconds_total", "counter",
             "Total seconds spent waiting for each lock.",
             [({"lock": lock_name(lid)}, ls.wait_seconds)
              for lid, ls in locks.items()])
    w.metric("mpf_lock_hold_seconds_total", "counter",
             "Total seconds each lock was held.",
             [({"lock": lock_name(lid)}, ls.hold_seconds)
              for lid, ls in locks.items()])
    w.metric("mpf_work_charges_total", "counter",
             "Charge effects per work label.",
             [({"label": label}, ws.count)
              for label, ws in sorted(rec.work.items())])
    w.metric("mpf_work_instrs_total", "counter",
             "Instruction budget charged per work label.",
             [({"label": label}, ws.instrs)
              for label, ws in sorted(rec.work.items())])
    w.metric("mpf_work_seconds_total", "counter",
             "Priced simulated seconds per work label (0 on real runtimes).",
             [({"label": label}, ws.seconds)
              for label, ws in sorted(rec.work.items())])
    w.metric("mpf_chan_waits_total", "counter",
             "WaitOn sleeps per circuit wait channel.",
             [({"chan": str(chan)}, n)
              for chan, n in sorted(rec.chan_waits.items())])

    machine = getattr(rec, "machine", None)
    if machine:
        for key, help_ in (
            ("events", "Engine events retired (simulated runs)."),
            ("heap_pushes", "Events that travelled through the event heap "
                            "(pushes)."),
            ("heap_pops", "Events that travelled through the event heap "
                          "(pops)."),
            ("epoch_batches", "Quiescent cross-process epoch batches "
                              "entered."),
            ("epoch_events", "Events retired inside epoch batches."),
        ):
            if key in machine:
                w.metric(f"mpf_engine_{key}_total", "counter", help_,
                         [({}, machine[key])])

    timeline = getattr(rec, "timeline", None)
    if timeline is not None:
        from .timeline import digest_quantile

        totals = timeline.totals()

        def _tl(key: str) -> dict:
            series, metric = key.split("|", 1)
            return {"series": timeline.series_label(series),
                    "metric": metric}

        w.metric("mpf_timeline_windows", "gauge",
                 "Timeline windows recorded so far.",
                 [({}, len(timeline.windows))])
        w.metric("mpf_timeline_window_seconds", "gauge",
                 "Timeline window width (run timebase seconds).",
                 [({}, timeline.width)])
        w.metric("mpf_timeline_count_total", "counter",
                 "Whole-run timeline counter totals per series.",
                 [(_tl(k), n)
                  for k, n in sorted(totals["counters"].items())])
        w.metric("mpf_timeline_gauge_avg", "gauge",
                 "Sample-weighted mean of each timeline gauge.",
                 [(_tl(k), cell[1] / cell[0])
                  for k, cell in sorted(totals["gauges"].items())
                  if cell[0]])
        w.metric("mpf_timeline_gauge_max", "gauge",
                 "Peak sampled value of each timeline gauge.",
                 [(_tl(k), cell[3])
                  for k, cell in sorted(totals["gauges"].items())])
        w.metric("mpf_timeline_quantile_seconds", "summary",
                 "Whole-run latency quantiles from timeline digests.",
                 [({**_tl(k), "quantile": _fmt(q)}, digest_quantile(dig, q))
                  for k, dig in sorted(totals["digests"].items())
                  for q in _QUANTILES])

    tracer = rec.causal
    if tracer is not None:
        from .causal import peak_depth, sojourn_stats

        sent: dict[tuple[int, int], list[int]] = {}
        received: dict[tuple[int, int], list[int]] = {}
        for e in tracer.events:
            table = (sent if e.kind == "send"
                     else received if e.kind == "recv" else None)
            if table is not None:
                wgt = table.setdefault(e.lnvc, [0, 0])
                wgt[0] += 1
                wgt[1] += e.length
        lab = lambda key: {"lnvc": f"lnvc{key[0]}.g{key[1]}"}  # noqa: E731
        w.metric("mpf_messages_sent_total", "counter",
                 "Messages enqueued per circuit (causal trace).",
                 [(lab(k), v[0]) for k, v in sorted(sent.items())])
        w.metric("mpf_message_bytes_sent_total", "counter",
                 "Payload bytes enqueued per circuit (causal trace).",
                 [(lab(k), v[1]) for k, v in sorted(sent.items())])
        w.metric("mpf_messages_received_total", "counter",
                 "Receives completed per circuit (causal trace).",
                 [(lab(k), v[0]) for k, v in sorted(received.items())])
        w.metric("mpf_message_bytes_received_total", "counter",
                 "Payload bytes delivered per circuit (causal trace).",
                 [(lab(k), v[1]) for k, v in sorted(received.items())])
        w.metric("mpf_queue_depth_peak", "gauge",
                 "Peak message-queue depth per circuit (causal trace).",
                 [(lab(k), peak_depth(tracer, *k))
                  for k in tracer.lnvc_keys()])
        sojourn = [
            ({**lab(key), "stage": stage, "quantile": _fmt(q)},
             stats.quantile(q))
            for key, per in sorted(sojourn_stats(tracer).items())
            for stage, stats in sorted(per.items())
            for q in _QUANTILES
        ]
        w.metric("mpf_message_sojourn_seconds", "summary",
                 "Per-stage message latency quantiles (causal trace).",
                 sojourn)
        w.metric("mpf_pool_allocs_total", "counter",
                 "Successful free-list pops per pool head offset.",
                 [({"pool": str(off)}, n)
                  for off, n in sorted(tracer.pool_allocs.items())])
        w.metric("mpf_pool_alloc_failures_total", "counter",
                 "Free-list pops that found the pool exhausted.",
                 [({"pool": str(off)}, n)
                  for off, n in sorted(tracer.pool_failures.items())])
        w.metric("mpf_causal_events_total", "counter",
                 "Causal lifecycle events observed (including dropped).",
                 [({}, tracer.total)])
        w.metric("mpf_causal_events_dropped", "counter",
                 "Causal events not stored (tracer limit reached).",
                 [({}, tracer.dropped)])
    return w.text()


_NAME = r"[a-zA-Z_:][a-zA-Z0-9_:]*"
_HELP_RE = re.compile(rf"^# HELP ({_NAME}) (.*)$")
_TYPE_RE = re.compile(
    rf"^# TYPE ({_NAME}) (counter|gauge|summary|histogram|untyped)$"
)
_SAMPLE_RE = re.compile(rf"^({_NAME})(?:\{{([^}}]*)\}})? (\S+)$")
_LABEL_RE = re.compile(r'^([a-zA-Z_][a-zA-Z0-9_]*)="([^"]*)"$')


def parse_exposition(text: str) -> dict[str, list[tuple[dict, float]]]:
    """Parse (and validate) the subset of the text format we emit.

    Returns ``{metric_name: [(labels, value), ...]}``.  Raises
    :class:`ValueError` on any malformed line, on samples without a
    preceding ``# TYPE``, or on unparsable label pairs — this is the
    assertion the CI trace smoke runs.
    """
    out: dict[str, list[tuple[dict, float]]] = {}
    typed: set[str] = set()
    for lineno, line in enumerate(text.splitlines(), start=1):
        if not line.strip():
            continue
        if line.startswith("#"):
            if _HELP_RE.match(line):
                continue
            m = _TYPE_RE.match(line)
            if m:
                typed.add(m.group(1))
                continue
            raise ValueError(f"line {lineno}: malformed comment: {line!r}")
        m = _SAMPLE_RE.match(line)
        if not m:
            raise ValueError(f"line {lineno}: malformed sample: {line!r}")
        name, labelbody, value = m.groups()
        if name not in typed:
            raise ValueError(f"line {lineno}: sample {name!r} without # TYPE")
        labels: dict[str, str] = {}
        if labelbody:
            for pair in labelbody.split(","):
                lm = _LABEL_RE.match(pair)
                if not lm:
                    raise ValueError(
                        f"line {lineno}: malformed label pair: {pair!r}")
                labels[lm.group(1)] = lm.group(2)
        try:
            number = float(value)
        except ValueError:
            raise ValueError(
                f"line {lineno}: non-numeric value: {value!r}") from None
        out.setdefault(name, []).append((labels, number))
    return out
