"""Live telemetry: a stdlib HTTP scrape endpoint + the ``top`` view.

:class:`LiveTelemetryServer` serves a running :class:`~repro.obs.Recorder`
over plain ``http.server`` (no dependencies) so threads/procs/posix runs
can be scraped *mid-run* with standard tooling:

* ``GET /metrics``  — the Prometheus text exposition
  (:func:`repro.obs.prom.prometheus_exposition`), including the
  windowed timeline series when a timeline is attached;
* ``GET /findings`` — the health engine's current findings as JSON;
* ``GET /timeline`` — the timeline document fragment as JSON.

The server runs on a daemon thread; sharing the recorder with the
running workers is safe under the GIL, and a scrape racing a dict
mutation simply retries (bounded).  It is observational only — nothing
in the run waits on it.

``mpf-inspect top`` (:func:`top_main`) polls ``/metrics`` and redraws a
plain-text per-series table — curses-free, one ANSI clear per frame —
the live analogue of the post-hoc sojourn tables.
"""

from __future__ import annotations

import json
import threading
import urllib.request
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

from .prom import parse_exposition, prometheus_exposition

__all__ = ["LiveTelemetryServer", "fetch_metrics", "render_top", "top_main"]


class LiveTelemetryServer:
    """Scrape endpoint for a (possibly still running) recorder.

    ``health`` is an optional :class:`~repro.obs.health.HealthEngine`;
    when given, the server polls it on every ``/findings`` scrape (so
    findings are produced online) and serves the accumulated list.
    ``port=0`` binds an ephemeral port; read :attr:`url` after
    :meth:`start`.
    """

    def __init__(self, recorder, host: str = "127.0.0.1", port: int = 0,
                 health=None) -> None:
        self.recorder = recorder
        self.health = health
        self._host = host
        self._port = port
        self._httpd: ThreadingHTTPServer | None = None
        self._thread: threading.Thread | None = None
        self.url: str | None = None

    # -- lifecycle -------------------------------------------------------------

    def start(self) -> str:
        outer = self

        class Handler(BaseHTTPRequestHandler):
            def log_message(self, *args):  # quiet
                pass

            def _send(self, body: bytes, ctype: str) -> None:
                self.send_response(200)
                self.send_header("Content-Type", ctype)
                self.send_header("Content-Length", str(len(body)))
                self.end_headers()
                self.wfile.write(body)

            def do_GET(self):  # noqa: N802 - http.server API
                try:
                    if self.path == "/metrics":
                        self._send(outer._metrics().encode(),
                                   "text/plain; version=0.0.4")
                    elif self.path == "/findings":
                        self._send(json.dumps(outer._findings()).encode(),
                                   "application/json")
                    elif self.path == "/timeline":
                        self._send(json.dumps(outer._timeline()).encode(),
                                   "application/json")
                    else:
                        self.send_error(404, "unknown path")
                except BrokenPipeError:  # pragma: no cover - client gone
                    pass

        self._httpd = ThreadingHTTPServer((self._host, self._port), Handler)
        self._httpd.daemon_threads = True
        host, port = self._httpd.server_address[:2]
        self.url = f"http://{host}:{port}"
        self._thread = threading.Thread(
            target=self._httpd.serve_forever, name="mpf-live", daemon=True)
        self._thread.start()
        return self.url

    def stop(self) -> None:
        if self._httpd is not None:
            self._httpd.shutdown()
            self._httpd.server_close()
            self._httpd = None
        if self._thread is not None:
            self._thread.join(timeout=5)
            self._thread = None

    def __enter__(self) -> "LiveTelemetryServer":
        self.start()
        return self

    def __exit__(self, *exc) -> None:
        self.stop()

    # -- snapshots (retried: a scrape may race worker-side dict growth) --------

    def _retry(self, fn):
        for _ in range(8):
            try:
                return fn()
            except RuntimeError:  # dict mutated during iteration
                continue
        return fn()

    def _metrics(self) -> str:
        return self._retry(lambda: prometheus_exposition(self.recorder))

    def _findings(self) -> list[dict]:
        if self.health is None:
            return []
        self._retry(self.health.poll)
        return [f.to_dict() for f in self.health.findings]

    def _timeline(self) -> dict:
        tl = getattr(self.recorder, "timeline", None)
        if tl is None:
            return {}
        return self._retry(tl.to_doc)


# -- the live `top` table ------------------------------------------------------


def fetch_metrics(url: str, timeout: float = 5.0):
    """Scrape ``url`` (a server base or full /metrics URL) and parse it."""
    if not url.rstrip("/").endswith("/metrics"):
        url = url.rstrip("/") + "/metrics"
    with urllib.request.urlopen(url, timeout=timeout) as resp:
        text = resp.read().decode()
    return parse_exposition(text)


def _series_table(metrics) -> dict[str, dict[str, float]]:
    """Fold timeline samples into ``{series: {column: value}}`` rows."""
    rows: dict[str, dict[str, float]] = {}

    def put(series: str, col: str, value: float, add=False):
        row = rows.setdefault(series, {})
        row[col] = row.get(col, 0.0) + value if add else value

    for labels, value in metrics.get("mpf_timeline_count_total", []):
        metric = labels.get("metric", "")
        if metric in ("sent", "recv", "contended", "acquires"):
            put(labels.get("series", "?"), metric, value, add=True)
    for labels, value in metrics.get("mpf_timeline_gauge_max", []):
        if labels.get("metric") in ("depth", "live_blocks", "occupancy",
                                    "backlog"):
            put(labels.get("series", "?"), "peak", value)
    for labels, value in metrics.get("mpf_timeline_gauge_avg", []):
        if labels.get("metric") in ("depth", "live_blocks", "occupancy",
                                    "backlog"):
            put(labels.get("series", "?"), "avg", value)
    return rows


def render_top(metrics, clear: bool = False) -> str:
    """One plain-text frame of the live per-series table."""
    cols = ("sent", "recv", "acquires", "contended", "avg", "peak")
    rows = _series_table(metrics)
    lines = []
    if clear:
        lines.append("\x1b[2J\x1b[H")
    spans = next(iter(metrics.get("mpf_spans_total", [({}, 0)])))[1]
    events = next(iter(metrics.get("mpf_engine_events_total",
                                   [({}, 0)])))[1]
    head = f"mpf top — {int(spans)} spans"
    if events:
        head += f", {int(events)} engine events"
    lines.append(head)
    width = max([len(s) for s in rows] + [6])
    lines.append(" ".join([f"{'series':<{width}}"]
                          + [f"{c:>10}" for c in cols]))
    for series in sorted(rows):
        row = rows[series]
        cells = []
        for c in cols:
            v = row.get(c)
            if v is None:
                cells.append(f"{'-':>10}")
            elif float(v).is_integer():
                cells.append(f"{int(v):>10}")
            else:
                cells.append(f"{v:>10.2f}")
        lines.append(" ".join([f"{series:<{width}}"] + cells))
    if not rows:
        lines.append("(no timeline series yet — is a Timeline attached?)")
    return "\n".join(lines)


def top_main(url: str, interval: float = 1.0, iterations: int | None = None,
             out=print, clear: bool = True) -> int:
    """Poll ``url`` and redraw the live table; returns an exit status.

    ``iterations=None`` runs until interrupted; the CLI smoke tests pass
    a small count.  A scrape failure after at least one good frame exits
    0 (the run it watched simply finished and took the endpoint down).
    """
    import time as _time

    frames = 0
    while iterations is None or frames < iterations:
        try:
            metrics = fetch_metrics(url)
        except (OSError, ValueError) as exc:
            if frames:
                out(f"endpoint gone after {frames} frame(s): {exc}")
                return 0
            out(f"cannot scrape {url}: {exc}")
            return 1
        out(render_top(metrics, clear=clear))
        frames += 1
        if iterations is not None and frames >= iterations:
            break
        try:
            _time.sleep(interval)
        except KeyboardInterrupt:  # pragma: no cover - interactive
            break
    return 0
