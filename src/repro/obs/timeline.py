"""Windowed time-series telemetry: the run's metrics with a time axis.

Every earlier observability surface (Recorder histograms, causal
sojourns, Prometheus exposition) is a *post-hoc snapshot*: one aggregate
at end of run.  A :class:`Timeline` slices the run into fixed-width time
windows — simulated seconds on :class:`~repro.runtime.sim.SimRuntime`,
wall-clock seconds everywhere else — and each window holds, per series
key:

* **counters** (messages sent/received, bytes, lock acquisitions);
* **gauges** (queue depth, free-list level, backlog size, ring
  occupancy) folded as ``(n, sum, min, max)`` so merges stay exact;
* **quantile digests** — log₂-bucketed microsecond histograms (the same
  buckets as :class:`~repro.obs.recorder.Histogram`) that merge by
  bucket addition, so per-window latency quantiles survive rank-order
  child merges unchanged.

Series keys are ``"<series>|<metric>"`` strings: ``circuit:<slot>``,
``lock:<name>``, ``pool``, ``ring:<slot>``, and (after
:meth:`tier_series` aggregation) ``tier:<name>``.  Slot-numbered
circuit series are resolved to circuit names through :attr:`names`,
populated by the ``open_send``/``open_receive`` taps.

Feeding is attribute-gated exactly like causal tracing: the ops hot
paths test ``view.timeline is not None`` and call plain Python methods —
never a new effect — so a timeline-enabled simulation retires the
byte-identical schedule (pinned by tests/obs/test_timeline.py).
Timelines are mergeable across workers and processes the way Recorder
snapshots are: each child snapshots to plain picklable data and the
parent merges in rank order; the merge is associative and commutative,
so child order cannot change the result.
"""

from __future__ import annotations

import math
import threading
import time

from ..core.protocol import ALLOC_LOCK, FIRST_LNVC_LOCK, GLOBAL_LOCK

__all__ = ["Timeline", "digest_quantile", "merge_timelines"]


def _lock_series(lock_id: int) -> str:
    if lock_id == GLOBAL_LOCK:
        return "lock:global"
    if lock_id == ALLOC_LOCK:
        return "lock:alloc"
    return f"lock:lnvc{lock_id - FIRST_LNVC_LOCK}"


def _bucket(seconds: float) -> int:
    """Log₂ microsecond bucket; matches ``Histogram.add`` exactly."""
    us = seconds * 1e6
    return 0 if us <= 1.0 else int(math.ceil(math.log2(us)))


def digest_quantile(counts: dict[int, int], q: float) -> float:
    """Nearest-rank quantile over a log₂-µs bucket digest, in seconds.

    Returns the bucket's upper bound (``2**b`` µs), i.e. a conservative
    estimate with the histogram's native resolution.
    """
    total = sum(counts.values())
    if total == 0:
        return 0.0
    rank = max(1, math.ceil(q * total))
    seen = 0
    for b in sorted(counts):
        seen += counts[b]
        if seen >= rank:
            return (2 ** b) * 1e-6
    return (2 ** max(counts)) * 1e-6  # pragma: no cover - defensive


def _new_window() -> dict:
    return {"counters": {}, "gauges": {}, "digests": {}}


class Timeline:
    """Fixed-width windowed counters, gauges and quantile digests.

    ``width`` is the window width in the run's timebase (seconds).
    ``clock`` is a zero-argument callable returning "now"; runtimes
    attach the same clock they give the causal tracer (simulated time on
    sim, wall seconds since run start elsewhere).  Without one, the
    timeline self-anchors at the first tap using ``time.perf_counter``
    (the blocking posix client's behaviour).
    """

    def __init__(self, width: float = 0.05, clock=None) -> None:
        if width <= 0:
            raise ValueError("window width must be positive")
        self.width = float(width)
        #: Timebase tag, mirroring ``Recorder.clock``: ``"sim"`` or
        #: ``"wall"``; runtimes set it when they attach their clock.
        self.clock_kind = "wall"
        self.clock = clock
        self._t0: float | None = None
        #: window index -> {"counters": {key: n}, "gauges":
        #: {key: [n, sum, min, max]}, "digests": {key: {bucket: n}}}
        self.windows: dict[int, dict] = {}
        #: slot -> circuit name, filled by the open_send/open_receive taps.
        self.names: dict[int, str] = {}
        self._ck: dict[int, tuple] = {}
        self._merge_mutex = threading.Lock()

    # -- clocks & windows -----------------------------------------------------

    def _now(self) -> float:
        if self.clock is not None:
            return self.clock()
        if self._t0 is None:
            self._t0 = time.perf_counter()
        return time.perf_counter() - self._t0

    def window(self, t: float) -> dict:
        """The (created-on-demand) window containing time ``t``."""
        idx = int(t // self.width)
        win = self.windows.get(idx)
        if win is None:
            win = self.windows[idx] = _new_window()
        return win

    def window_indices(self) -> list[int]:
        return sorted(self.windows)

    # -- primitive recording --------------------------------------------------

    def count(self, t: float, key: str, n: float = 1.0) -> None:
        c = self.window(t)["counters"]
        c[key] = c.get(key, 0) + n

    def gauge(self, t: float, key: str, value: float) -> None:
        g = self.window(t)["gauges"]
        cell = g.get(key)
        if cell is None:
            g[key] = [1, value, value, value]
        else:
            cell[0] += 1
            cell[1] += value
            if value < cell[2]:
                cell[2] = value
            if value > cell[3]:
                cell[3] = value

    def observe(self, t: float, key: str, seconds: float) -> None:
        d = self.window(t)["digests"]
        dig = d.get(key)
        if dig is None:
            dig = d[key] = {}
        b = _bucket(seconds)
        dig[b] = dig.get(b, 0) + 1

    # -- ops-layer taps (attribute-gated in repro.core.ops/transport) ---------

    def _circuit_keys(self, slot: int) -> tuple:
        keys = self._ck.get(slot)
        if keys is None:
            s = f"circuit:{slot}"
            keys = self._ck[slot] = (
                s + "|sent", s + "|bytes_sent", s + "|depth",
                s + "|recv", s + "|bytes_recv", s + "|chan_wait",
                s + "|e2e",
            )
        return keys

    def name_slot(self, slot: int, name: str) -> None:
        """Remember the circuit name occupying ``slot`` (first name wins)."""
        self.names.setdefault(slot, name)

    def tap_send(self, slot: int, nbytes: int, depth: int) -> None:
        """A message was linked at the FIFO tail at queue depth ``depth``."""
        t = self._now()
        k = self._circuit_keys(slot)
        win = self.window(t)
        c = win["counters"]
        c[k[0]] = c.get(k[0], 0) + 1
        c[k[1]] = c.get(k[1], 0) + nbytes
        g = win["gauges"]
        cell = g.get(k[2])
        if cell is None:
            g[k[2]] = [1, depth, depth, depth]
        else:
            cell[0] += 1
            cell[1] += depth
            if depth < cell[2]:
                cell[2] = depth
            if depth > cell[3]:
                cell[3] = depth

    def tap_recv(self, slot: int, nbytes: int) -> None:
        """A receive completed (payload drained, pin dropped)."""
        t = self._now()
        k = self._circuit_keys(slot)
        c = self.window(t)["counters"]
        c[k[3]] = c.get(k[3], 0) + 1
        c[k[4]] = c.get(k[4], 0) + nbytes

    def tap_depth(self, slot: int, depth: int) -> None:
        """Queue-depth sample after a reap/retire drained messages."""
        self.gauge(self._now(), self._circuit_keys(slot)[2], depth)

    def tap_pool(self, live_blocks: int) -> None:
        """Free-list pressure sample: blocks live after an allocation."""
        self.gauge(self._now(), "pool|live_blocks", live_blocks)

    def tap_ring(self, slot: int, occupancy: int) -> None:
        """Ring-transport occupancy after a commit or consume."""
        self.gauge(self._now(), f"ring:{slot}|occupancy", occupancy)

    # -- recorder-layer taps (called from Recorder hooks with hook time) ------

    def tap_lock(self, t: float, lock_id: int, wait_seconds: float,
                 contended: bool) -> None:
        series = _lock_series(lock_id)
        win = self.window(t)
        c = win["counters"]
        ka = series + "|acquires"
        c[ka] = c.get(ka, 0) + 1
        if contended:
            kc = series + "|contended"
            c[kc] = c.get(kc, 0) + 1
        d = win["digests"]
        kw = series + "|wait"
        dig = d.get(kw)
        if dig is None:
            dig = d[kw] = {}
        b = _bucket(wait_seconds)
        dig[b] = dig.get(b, 0) + 1

    def tap_chan(self, t: float, chan: int, wait_seconds: float) -> None:
        k = self._circuit_keys(chan)[5]
        self.count(t, k)
        self.observe(t, k, wait_seconds)

    def tap_e2e(self, t: float, slot: int, seconds: float) -> None:
        """End-to-end delivery latency (fed by the causal e2e sketch)."""
        self.observe(t, self._circuit_keys(slot)[6], seconds)

    # -- folds ----------------------------------------------------------------

    def totals(self) -> dict:
        """Whole-run fold: ``{"counters", "gauges", "digests"}``."""
        counters: dict[str, float] = {}
        gauges: dict[str, list] = {}
        digests: dict[str, dict[int, int]] = {}
        for win in self.windows.values():
            for k, n in win["counters"].items():
                counters[k] = counters.get(k, 0) + n
            for k, cell in win["gauges"].items():
                agg = gauges.get(k)
                if agg is None:
                    gauges[k] = list(cell)
                else:
                    agg[0] += cell[0]
                    agg[1] += cell[1]
                    agg[2] = min(agg[2], cell[2])
                    agg[3] = max(agg[3], cell[3])
            for k, dig in win["digests"].items():
                out = digests.setdefault(k, {})
                for b, n in dig.items():
                    out[b] = out.get(b, 0) + n
        return {"counters": counters, "gauges": gauges, "digests": digests}

    def series_label(self, series: str) -> str:
        """Resolve ``circuit:<slot>`` to ``circuit:<name>`` when known."""
        if series.startswith("circuit:"):
            try:
                slot = int(series[8:])
            except ValueError:
                return series
            name = self.names.get(slot)
            if name is not None:
                return f"circuit:{name}"
        return series

    def tier_series(self, tier_of) -> dict[str, dict[int, list]]:
        """Per-tier queue-depth matrix: ``{tier: {window: [n,sum,min,max]}}``.

        ``tier_of(name)`` maps a circuit name to its tier (or ``None`` to
        drop it).  Unnamed slots are dropped.  Circuits in the same tier
        have their per-window gauge cells folded, so the tier's ``sum/n``
        is the average sampled depth across its circuits.
        """
        out: dict[str, dict[int, list]] = {}
        for idx, win in self.windows.items():
            for k, cell in win["gauges"].items():
                if not k.startswith("circuit:") or not k.endswith("|depth"):
                    continue
                slot = int(k[8:k.index("|")])
                name = self.names.get(slot)
                if name is None:
                    continue
                tier = tier_of(name)
                if tier is None:
                    continue
                rows = out.setdefault(tier, {})
                agg = rows.get(idx)
                if agg is None:
                    rows[idx] = list(cell)
                else:
                    agg[0] += cell[0]
                    agg[1] += cell[1]
                    agg[2] = min(agg[2], cell[2])
                    agg[3] = max(agg[3], cell[3])
        return out

    # -- merge / snapshot ------------------------------------------------------

    def child(self) -> "Timeline":
        """A fresh same-shape timeline for one worker (merge it back)."""
        tl = Timeline(width=self.width, clock=self.clock)
        tl.clock_kind = self.clock_kind
        return tl

    def snapshot(self) -> dict:
        """Picklable plain-data form (crosses the fork boundary)."""
        return {
            "width": self.width,
            "clock_kind": self.clock_kind,
            "names": dict(self.names),
            "windows": {
                idx: {
                    "counters": dict(win["counters"]),
                    "gauges": {k: list(v) for k, v in win["gauges"].items()},
                    "digests": {k: dict(v) for k, v in win["digests"].items()},
                }
                for idx, win in self.windows.items()
            },
        }

    def merge(self, snap: dict) -> None:
        """Fold a :meth:`snapshot` into this timeline (thread-safe).

        Counter addition, gauge ``(n, sum, min, max)`` folds and digest
        bucket addition are all associative and commutative, so merge
        order cannot change the merged timeline — the property the
        rank-order procs merge relies on (and tests pin).
        """
        if abs(snap["width"] - self.width) > 1e-12:
            raise ValueError(
                f"cannot merge timelines of width {snap['width']} "
                f"into width {self.width}")
        with self._merge_mutex:
            for slot, name in snap.get("names", {}).items():
                self.names.setdefault(int(slot), name)
            for idx, win in snap["windows"].items():
                idx = int(idx)
                mine = self.windows.get(idx)
                if mine is None:
                    mine = self.windows[idx] = _new_window()
                c = mine["counters"]
                for k, n in win["counters"].items():
                    c[k] = c.get(k, 0) + n
                g = mine["gauges"]
                for k, cell in win["gauges"].items():
                    agg = g.get(k)
                    if agg is None:
                        g[k] = list(cell)
                    else:
                        agg[0] += cell[0]
                        agg[1] += cell[1]
                        agg[2] = min(agg[2], cell[2])
                        agg[3] = max(agg[3], cell[3])
                d = mine["digests"]
                for k, dig in win["digests"].items():
                    out = d.setdefault(k, {})
                    for b, n in dig.items():
                        out[int(b)] = out.get(int(b), 0) + n

    # -- export ----------------------------------------------------------------

    def to_doc(self) -> dict:
        """JSON-safe document fragment (windows sorted by index)."""
        return {
            "width": self.width,
            "clock": self.clock_kind,
            "names": {str(s): n for s, n in sorted(self.names.items())},
            "windows": [
                {
                    "index": idx,
                    "start": idx * self.width,
                    "counters": {k: win["counters"][k]
                                 for k in sorted(win["counters"])},
                    "gauges": {
                        k: {"n": cell[0], "sum": cell[1],
                            "min": cell[2], "max": cell[3]}
                        for k, cell in sorted(win["gauges"].items())
                    },
                    "digests": {
                        k: {str(b): n for b, n in sorted(dig.items())}
                        for k, dig in sorted(win["digests"].items())
                    },
                }
                for idx, win in sorted(self.windows.items())
            ],
        }


def merge_timelines(snapshots, width: float | None = None) -> Timeline:
    """Fold an iterable of timeline snapshots into one fresh timeline."""
    out: Timeline | None = None
    for snap in snapshots:
        if out is None:
            out = Timeline(width=width if width is not None
                           else snap["width"])
            out.clock_kind = snap.get("clock_kind", "wall")
        out.merge(snap)
    return out if out is not None else Timeline(width=width or 0.05)
