"""Per-message causal tracing: lifecycle events, sojourn times, stalls.

The :class:`~repro.obs.recorder.Recorder` aggregates (per-lock waits,
per-``Work`` charges) answer "where did the run spend its time" but not
"where did *this message* spend its time".  The paper's analysis needs
the second question too: "for large messages ... message copying costs
dominate" is a per-message statement, and Figure 4's falling FCFS curve
is per-message queueing delay made visible.

A :class:`CausalTracer` records one :class:`MsgEvent` per lifecycle
transition of every message, keyed by the identity MPF already
maintains — the per-LNVC ``seq`` counter assigned under the circuit
lock in :func:`repro.core.ops.message_send` plus the circuit's
``(slot, generation)`` pair, so events from recycled slots never alias:

* ``send``  — one per :func:`message_send`, carrying four timestamps:
  primitive entry (``t0``), block allocation complete (``t1``), payload
  copy-in complete (``t2``), linked at the FIFO tail (``t3``), plus the
  queue depth the enqueue produced;
* ``recv``  — one per :func:`message_receive`: entry (``t0``), claim —
  the FCFS take or per-receiver BROADCAST visit (``t1``), copy-out
  complete (``t2``), retire/unpin done (``t3``);
* ``free``  — one when the message header returns to the free list,
  from FIFO-head reaping or circuit deletion (``discard=True``).

The hooks are plain attribute-gated calls inside the ops generators —
no new effects are yielded, so attaching a tracer never adds scheduler
round-trips and provably cannot perturb simulated timing (pinned by the
fig3 byte-identity test).  Free-list pressure is watched through
:meth:`CausalTracer.on_pool`, fed by :func:`repro.core.freelist.fl_alloc`.

Everything here is derived from the event list: per-stage sojourn
latency quantiles (:func:`sojourn_stats`), queue-depth timelines
(:func:`queue_depth_timeline`, cross-checkable against the circuit's
``hwm_nmsgs`` high-water mark), and a backpressure/stall detector
(:func:`detect_stalls`).  Flow graphs live in :mod:`repro.obs.flow`,
the Prometheus exposition in :mod:`repro.obs.prom`.
"""

from __future__ import annotations

import time
from array import array
from dataclasses import dataclass

from ..core.protocol import NIL

__all__ = [
    "MsgEvent",
    "CausalTracer",
    "StageStats",
    "sojourn_stats",
    "pair_deliveries",
    "queue_depth_timeline",
    "peak_depth",
    "busiest_lnvc",
    "detect_stalls",
    "format_sojourn",
    "format_causal_tail",
    "causal_async_events",
]

#: Default bound on the stored event list (see ``Recorder.limit``).
DEFAULT_LIMIT = 200_000

#: Lifecycle stages derived from a matched (send, recv) event pair, in
#: causal order.  ``alloc``/``copy_in``/``link`` come from the send
#: timestamps, ``resident`` is time spent queued between the link and
#: the claim, ``copy_out`` is the receiver-side drain, ``e2e`` spans
#: send entry to copy-out completion.
STAGES = ("alloc", "copy_in", "link", "resident", "copy_out", "e2e")


@dataclass(frozen=True)
class MsgEvent:
    """One lifecycle transition of one message.

    ``(slot, gen, seqno)`` is the message's causal identity; the four
    timestamps are in the producing runtime's clock (simulated seconds
    on the simulator, wall seconds elsewhere).  Fields not meaningful
    for a kind stay at their defaults (``free`` events only use ``t0``).
    For ``free`` events ``pid`` is the original *sender* (the header's
    ``sender`` field) — the reaper's identity is incidental.
    """

    kind: str          # "send" | "recv" | "free"
    pid: int
    slot: int
    gen: int
    seqno: int
    length: int
    t0: float
    t1: float = 0.0
    t2: float = 0.0
    t3: float = 0.0
    blocks: int = 0    # send: blocks allocated for the payload chain
    depth: int = 0     # send: queue depth after enqueue; free: after unlink
    fcfs: int = 1      # recv: 1 = FCFS take, 0 = BROADCAST visit
    discard: int = 0   # free: 1 = dropped by circuit deletion, 0 = reaped

    @property
    def key(self) -> tuple[int, int, int]:
        return (self.slot, self.gen, self.seqno)

    @property
    def lnvc(self) -> tuple[int, int]:
        return (self.slot, self.gen)

    def as_dict(self) -> dict:
        return {
            "kind": self.kind, "pid": self.pid, "slot": self.slot,
            "gen": self.gen, "seqno": self.seqno, "length": self.length,
            "t0": self.t0, "t1": self.t1, "t2": self.t2, "t3": self.t3,
            "blocks": self.blocks, "depth": self.depth,
            "fcfs": self.fcfs, "discard": self.discard,
        }


class CausalTracer:
    """Collects :class:`MsgEvent` records plus free-list pressure counts.

    Runtimes attach a tracer to the shared :class:`~repro.core.ops.MPFView`
    (``view.causal``) and point :attr:`clock` at the run's timebase; the
    ops generators then call the ``on_*`` hooks inline.  Like the
    Recorder, the event list is bounded: :attr:`total` keeps counting
    past :attr:`limit` and :attr:`dropped` says how many events were not
    stored, so a truncated trace is never silently read as complete.

    **Bounded mode** (``max_events=N``): instead of keeping a prefix and
    dropping the rest, the tracer keeps a deterministic *stride sample*
    — events whose ``seqno % stride == 0``, with the stride doubling
    (and the stored list re-pruned) whenever the store would exceed
    ``N``.  Sends and receives of the same message share a seqno, so
    sampled messages keep their complete lifecycle and every derived
    analysis still works, on a 1-in-``stride`` subset.  End-to-end
    latency is **not** sampled: an exact sketch pairs every send with
    its receives as they happen (8 bytes per delivery), so p50/p99/p999
    e2e quantiles over a million-message run stay exact while memory
    stays bounded.  :attr:`stride` is surfaced by the summary tables.
    """

    __slots__ = ("limit", "clock", "events", "total", "dropped",
                 "pool_allocs", "pool_failures",
                 "max_events", "stride", "e2e", "_pending", "_orphans",
                 "_grace", "timeline")

    def __init__(self, limit: int = DEFAULT_LIMIT, clock=None,
                 max_events: int | None = None) -> None:
        self.limit = limit
        #: Zero-argument callable returning "now" in the run's timebase.
        self.clock = clock if clock is not None else time.perf_counter
        self.events: list[MsgEvent] = []
        self.total = 0
        self.dropped = 0
        #: Successful free-list pops, keyed by pool head offset.
        self.pool_allocs: dict[int, int] = {}
        #: Pops that found the pool exhausted (returned NIL).
        self.pool_failures: dict[int, int] = {}
        #: Bounded-mode event cap (``None`` = classic prefix-keep mode).
        self.max_events = max_events
        #: Current sampling stride (1 = every message; bounded mode only).
        self.stride = 1
        if max_events is not None:
            if max_events < 1:
                raise ValueError("max_events must be >= 1")
            #: Exact e2e latency sketch, one float per delivery.
            self.e2e = array("d")
            self._pending: dict = {}   # key -> send t0, popped on free
            self._orphans: dict = {}   # key -> [recv t2], matched on merge
            self._grace: dict = {}     # recently freed key -> t0 (see below)
        else:
            self.e2e = None
            self._pending = None
            self._orphans = None
            self._grace = None
        #: Optional :class:`~repro.obs.timeline.Timeline` fed the exact
        #: e2e deliveries as per-circuit windowed latency digests
        #: (bounded mode only — the sketch is what pairs send to recv).
        self.timeline = None

    # -- hooks called inline by repro.core.ops ------------------------------

    def _emit(self, ev: MsgEvent) -> None:
        self.total += 1
        if self.max_events is None:
            if len(self.events) < self.limit:
                self.events.append(ev)
            else:
                self.dropped += 1
            return
        if ev.seqno % self.stride:
            self.dropped += 1
            return
        events = self.events
        if len(events) >= self.max_events:
            self.stride *= 2
            kept = [e for e in events if e.seqno % self.stride == 0]
            self.dropped += len(events) - len(kept)
            self.events = events = kept
            if ev.seqno % self.stride:
                self.dropped += 1
                return
        events.append(ev)

    def on_send(self, pid: int, slot: int, gen: int, seqno: int,
                length: int, blocks: int, depth: int,
                t0: float, t1: float, t2: float) -> None:
        """Message linked at the FIFO tail; ``t3`` is sampled here."""
        if self._pending is not None:
            self._pending[(slot, gen, seqno)] = t0
        self._emit(MsgEvent("send", pid, slot, gen, seqno, length,
                            t0, t1, t2, self.clock(),
                            blocks=blocks, depth=depth))

    def on_recv(self, pid: int, slot: int, gen: int, seqno: int,
                length: int, fcfs: int, t0: float, t1: float,
                t2: float) -> None:
        """Receive complete (busy pin dropped); ``t3`` is sampled here."""
        if self._pending is not None:
            key = (slot, gen, seqno)
            s0 = self._pending.get(key)
            if s0 is None:
                s0 = self._grace.pop(key, None)
            if s0 is not None:
                self.e2e.append(t2 - s0 if t2 > s0 else 0.0)
                if self.timeline is not None:
                    self.timeline.tap_e2e(
                        t2, slot, t2 - s0 if t2 > s0 else 0.0)
            elif len(self._orphans) < 65536:
                # Cross-process delivery (procs runtime): the send lives
                # in another child's tracer; matched at merge time.
                self._orphans.setdefault(key, []).append(t2)
        self._emit(MsgEvent("recv", pid, slot, gen, seqno, length,
                            t0, t1, t2, self.clock(), fcfs=1 if fcfs else 0))

    def on_free(self, sender: int, slot: int, gen: int, seqno: int,
                length: int, depth: int, discard: int = 0) -> None:
        """Message header returned to the free list."""
        if self._pending is not None:
            # The fused receive path reaps a just-retired message inside
            # the same section, *before* its own recv hook fires — so a
            # freed entry lingers briefly in a small grace buffer instead
            # of vanishing, keeping the e2e sketch complete.
            t0 = self._pending.pop((slot, gen, seqno), None)
            if t0 is not None:
                g = self._grace
                g[(slot, gen, seqno)] = t0
                while len(g) > 256:
                    del g[next(iter(g))]
        self._emit(MsgEvent("free", sender, slot, gen, seqno, length,
                            self.clock(), depth=depth,
                            discard=1 if discard else 0))

    def on_pool(self, head_off: int, off: int) -> None:
        """:func:`fl_alloc` watch hook: one pop attempt on one pool."""
        table = self.pool_failures if off == NIL else self.pool_allocs
        table[head_off] = table.get(head_off, 0) + 1

    def on_pool_bulk(self, head_off: int, n: int) -> None:
        """``n`` records popped outside :func:`fl_alloc` (block chains)."""
        self.pool_allocs[head_off] = self.pool_allocs.get(head_off, 0) + n

    # -- simple queries ------------------------------------------------------

    def sends(self) -> list[MsgEvent]:
        return [e for e in self.events if e.kind == "send"]

    def recvs(self) -> list[MsgEvent]:
        return [e for e in self.events if e.kind == "recv"]

    def frees(self) -> list[MsgEvent]:
        return [e for e in self.events if e.kind == "free"]

    def lnvc_keys(self) -> list[tuple[int, int]]:
        """Distinct ``(slot, gen)`` pairs seen, sorted."""
        return sorted({e.lnvc for e in self.events})

    def e2e_stats(self) -> "StageStats":
        """Quantiles over the exact e2e sketch (bounded mode only).

        In classic mode the sketch does not exist; callers should derive
        e2e from :func:`sojourn_stats` instead.
        """
        if self.e2e is None:
            raise ValueError(
                "e2e sketch requires bounded mode (max_events=N)")
        return StageStats(list(self.e2e))

    # -- merge across workers / processes ------------------------------------

    def snapshot(self) -> dict:
        """Picklable plain-data form (crosses the fork boundary)."""
        snap = {
            "limit": self.limit,
            "total": self.total,
            "events": [e.as_dict() for e in self.events],
            "pool_allocs": dict(self.pool_allocs),
            "pool_failures": dict(self.pool_failures),
        }
        if self.max_events is not None:
            snap["max_events"] = self.max_events
            snap["stride"] = self.stride
            snap["e2e"] = list(self.e2e)
            snap["pending"] = [list(k) + [t0]
                               for k, t0 in self._pending.items()]
            snap["pending"] += [list(k) + [t0]
                                for k, t0 in self._grace.items()]
            snap["orphans"] = [list(k) + [t2]
                               for k, ts in self._orphans.items()
                               for t2 in ts]
        return snap

    def merge(self, snap: dict) -> None:
        """Fold a :meth:`snapshot` into this tracer."""
        self.total += snap["total"]
        events = snap["events"]
        if self.max_events is not None:
            self.stride = max(self.stride, snap.get("stride", 1))
            incoming = [MsgEvent(**d) for d in events]
            merged = [e for e in self.events + incoming
                      if e.seqno % self.stride == 0]
            while len(merged) > self.max_events:
                self.stride *= 2
                merged = [e for e in merged if e.seqno % self.stride == 0]
            self.dropped += (snap["total"] - len(events)) + (
                len(self.events) + len(incoming) - len(merged))
            self.events = merged
            self.e2e.extend(snap.get("e2e", ()))
            # Match cross-process deliveries: a child's unmatched sends
            # against our orphan receives and vice versa.  BROADCAST
            # sends stay pending (later merges may hold more receives).
            for s, g, q, t0 in snap.get("pending", ()):
                key = (s, g, q)
                for t2 in self._orphans.pop(key, ()):
                    self.e2e.append(t2 - t0 if t2 > t0 else 0.0)
                self._pending[key] = t0
            for s, g, q, t2 in snap.get("orphans", ()):
                key = (s, g, q)
                t0 = self._pending.get(key)
                if t0 is not None:
                    self.e2e.append(t2 - t0 if t2 > t0 else 0.0)
                elif len(self._orphans) < 65536:
                    self._orphans.setdefault(key, []).append(t2)
        else:
            room = self.limit - len(self.events)
            fitted = min(len(events), room) if room > 0 else 0
            self.events.extend(MsgEvent(**d) for d in events[:fitted])
            self.dropped += (snap["total"] - len(events)) + (len(events) - fitted)
        for off, n in snap["pool_allocs"].items():
            off = int(off)
            self.pool_allocs[off] = self.pool_allocs.get(off, 0) + n
        for off, n in snap["pool_failures"].items():
            off = int(off)
            self.pool_failures[off] = self.pool_failures.get(off, 0) + n


# ---------------------------------------------------------------------------
# derived analyses
# ---------------------------------------------------------------------------


class StageStats:
    """Quantiles over one latency sample set (nearest-rank method)."""

    __slots__ = ("samples",)

    def __init__(self, samples: list[float]) -> None:
        self.samples = sorted(samples)

    @property
    def count(self) -> int:
        return len(self.samples)

    @property
    def mean(self) -> float:
        return sum(self.samples) / len(self.samples) if self.samples else 0.0

    def quantile(self, q: float) -> float:
        """Nearest-rank quantile; 0.0 on an empty sample set."""
        if not self.samples:
            return 0.0
        rank = max(1, -(-int(q * 100) * len(self.samples) // 100))
        return self.samples[min(rank, len(self.samples)) - 1]

    def quantile_fine(self, q: float) -> float:
        """Nearest-rank quantile at per-mille resolution.

        :meth:`quantile` truncates ``q`` to centiles (0.999 would
        silently degrade to p99); this variant resolves thousandths.
        Kept separate so the centile quantiles in archived expositions
        stay byte-identical.
        """
        if not self.samples:
            return 0.0
        rank = max(1, -(-round(q * 1000) * len(self.samples) // 1000))
        return self.samples[min(rank, len(self.samples)) - 1]

    @property
    def p50(self) -> float:
        return self.quantile(0.50)

    @property
    def p95(self) -> float:
        return self.quantile(0.95)

    @property
    def p99(self) -> float:
        return self.quantile(0.99)

    @property
    def p999(self) -> float:
        return self.quantile_fine(0.999)


def pair_deliveries(tracer: CausalTracer) -> list[tuple[MsgEvent, MsgEvent]]:
    """Match each ``recv`` event with its ``send`` by message identity.

    BROADCAST messages are received once per receiver, so one send may
    appear in several pairs.  Receives whose send fell outside the event
    bound are dropped (they cannot be timed end-to-end).
    """
    sends = {e.key: e for e in tracer.events if e.kind == "send"}
    out = []
    for e in tracer.events:
        if e.kind == "recv":
            s = sends.get(e.key)
            if s is not None:
                out.append((s, e))
    return out


def sojourn_stats(
    tracer: CausalTracer,
) -> dict[tuple[int, int], dict[str, StageStats]]:
    """Per-LNVC per-stage latency quantiles (see :data:`STAGES`).

    Stage durations clamp at zero: on real runtimes the claim is
    timestamped by the *receiving* process, so tiny negative residencies
    from cross-thread clock skew are noise, not signal.
    """
    samples: dict[tuple[int, int], dict[str, list[float]]] = {}
    for s, r in pair_deliveries(tracer):
        per = samples.setdefault(s.lnvc, {st: [] for st in STAGES})
        per["alloc"].append(max(0.0, s.t1 - s.t0))
        per["copy_in"].append(max(0.0, s.t2 - s.t1))
        per["link"].append(max(0.0, s.t3 - s.t2))
        per["resident"].append(max(0.0, r.t1 - s.t3))
        per["copy_out"].append(max(0.0, r.t2 - r.t1))
        per["e2e"].append(max(0.0, r.t2 - s.t0))
    return {
        key: {st: StageStats(vals) for st, vals in per.items()}
        for key, per in samples.items()
    }


def queue_depth_timeline(
    tracer: CausalTracer, slot: int, gen: int
) -> list[tuple[float, int]]:
    """``(time, depth)`` steps for one circuit's message queue.

    Depth changes on enqueue (``send`` events, at ``t3``) and on unlink
    (``free`` events); both carry the post-transition depth read under
    the circuit lock, so the timeline is exact, not inferred.  Ties in
    time (common under the model checker's zero-cost timing) keep event
    order.
    """
    steps = [
        (e.t3 if e.kind == "send" else e.t0, i, e.depth)
        for i, e in enumerate(tracer.events)
        if e.kind in ("send", "free") and e.lnvc == (slot, gen)
    ]
    steps.sort()
    return [(t, depth) for t, _, depth in steps]


def peak_depth(tracer: CausalTracer, slot: int, gen: int) -> int:
    """Maximum queue depth observed on one circuit (0 if never traced)."""
    return max(
        (d for _, d in queue_depth_timeline(tracer, slot, gen)), default=0
    )


def busiest_lnvc(tracer: CausalTracer) -> tuple[int, int] | None:
    """The ``(slot, gen)`` with the most send events (``None`` if no sends).

    Benchmarks run control traffic (barriers) over the same segment as
    the measured circuit; the measured circuit is the busiest one.
    """
    counts: dict[tuple[int, int], int] = {}
    for e in tracer.events:
        if e.kind == "send":
            counts[e.lnvc] = counts.get(e.lnvc, 0) + 1
    if not counts:
        return None
    return min(counts, key=lambda k: (-counts[k], k))


def detect_stalls(
    tracer: CausalTracer,
    *,
    growth_factor: float = 3.0,
    spike_factor: float = 20.0,
    depth_threshold: int = 4,
    min_samples: int = 8,
) -> list[str]:
    """Backpressure findings, one human-readable string per flagged LNVC.

    Flags, per circuit: queue residency whose second-half median grew
    ``growth_factor``× over the first half (consumers falling behind);
    a final queue depth still at ≥ half the peak with the peak at least
    ``depth_threshold`` (queue not draining); allocation latency whose
    p99 exceeds ``spike_factor``× its p50 (free-list convoy).  Pool
    exhaustion (failed pops) is flagged globally.
    """
    findings: list[str] = []
    stats = sojourn_stats(tracer)
    pairs = pair_deliveries(tracer)
    for key in tracer.lnvc_keys():
        slot, gen = key
        name = f"lnvc{slot}@g{gen}"
        per = stats.get(key)
        if per is not None and per["resident"].count >= min_samples:
            # StageStats sorts its samples; growth detection needs them
            # back in delivery order.
            ordered = [
                max(0.0, r.t1 - s.t3) for s, r in pairs if s.lnvc == key
            ]
            half = len(ordered) // 2
            first = StageStats(ordered[:half]).p50
            second = StageStats(ordered[half:]).p50
            if first > 0 and second > growth_factor * first:
                findings.append(
                    f"{name}: queue residency growing (p50 "
                    f"{first * 1e6:.1f}µs -> {second * 1e6:.1f}µs over the "
                    f"run) — consumers falling behind"
                )
        if per is not None and per["alloc"].count >= min_samples:
            p50, p99 = per["alloc"].p50, per["alloc"].p99
            if p50 > 0 and p99 > spike_factor * p50:
                findings.append(
                    f"{name}: allocation latency spikes (p50 "
                    f"{p50 * 1e6:.1f}µs, p99 {p99 * 1e6:.1f}µs) — free-list "
                    f"convoy under the allocator lock"
                )
        timeline = queue_depth_timeline(tracer, slot, gen)
        if timeline:
            peak = max(d for _, d in timeline)
            final = timeline[-1][1]
            if peak >= depth_threshold and final * 2 >= peak:
                findings.append(
                    f"{name}: queue not draining (peak depth {peak}, "
                    f"final depth {final})"
                )
    failed = sum(tracer.pool_failures.values())
    if failed:
        findings.append(
            f"shared pools exhausted {failed} time(s) — the init() sizing "
            f"estimate is too small for this workload"
        )
    return findings


# ---------------------------------------------------------------------------
# text / export surfaces
# ---------------------------------------------------------------------------


def _us(seconds: float) -> str:
    return f"{seconds * 1e6:.1f}"


def format_sojourn(tracer: CausalTracer) -> str:
    """Aligned per-LNVC table of per-stage p50s and end-to-end quantiles."""
    from .export import _table

    stats = sojourn_stats(tracer)
    if not stats:
        return "(no complete deliveries traced)"
    rows = [["lnvc", "deliv", "alloc-p50", "copyin-p50", "link-p50",
             "resid-p50", "copyout-p50", "e2e-p50", "e2e-p95", "e2e-p99"]]
    for key in sorted(stats):
        per = stats[key]
        rows.append([
            f"lnvc{key[0]}@g{key[1]}", str(per["e2e"].count),
            _us(per["alloc"].p50), _us(per["copy_in"].p50),
            _us(per["link"].p50), _us(per["resident"].p50),
            _us(per["copy_out"].p50), _us(per["e2e"].p50),
            _us(per["e2e"].p95), _us(per["e2e"].p99),
        ])
    lines = [_table(rows), "(latencies in µs)"]
    if tracer.max_events is not None:
        if tracer.stride > 1:
            lines.append(
                f"(~) bounded tracing: 1/{tracer.stride} stride sample "
                f"({len(tracer.events)} of {tracer.total} events stored); "
                f"per-stage quantiles cover the sample, e2e sketch stays "
                f"exact ({len(tracer.e2e)} deliveries)"
            )
    elif tracer.dropped:
        lines.append(
            f"(!) {tracer.dropped} of {tracer.total} causal events dropped "
            f"(limit {tracer.limit}); quantiles cover the recorded prefix"
        )
    return "\n".join(lines)


def format_causal_tail(tracer: CausalTracer, n: int = 12) -> str:
    """The last ``n`` lifecycle events, one line each (debugging aid)."""
    lines = []
    for e in tracer.events[-n:]:
        ident = f"lnvc{e.slot}@g{e.gen}#msg{e.seqno}"
        if e.kind == "send":
            detail = f"{e.length}B in {e.blocks} blk(s), depth -> {e.depth}"
        elif e.kind == "recv":
            detail = f"{e.length}B, {'fcfs take' if e.fcfs else 'bcast visit'}"
        else:
            detail = ("discarded (circuit deleted)" if e.discard
                      else f"reaped, depth -> {e.depth}")
        who = f"p{e.pid}" + (" (sender)" if e.kind == "free" else "")
        lines.append(f"  {e.kind:<4} {ident:<18} {who:<12} {detail}")
    if tracer.dropped:
        lines.append(f"  ... ({tracer.dropped} earlier events dropped)")
    return "\n".join(lines) if lines else "  (no causal events recorded)"


def causal_async_events(tracer: CausalTracer) -> list[dict]:
    """Chrome Trace Event Format *async* events for each traced message.

    Each message becomes one async track (``ph`` ``b``/``n``/``e`` with a
    shared ``id``): begin at send entry, instants at enqueue and each
    claim, end at the last observed lifecycle point.  Loaded alongside
    the Recorder's duration slices, Perfetto draws the message's whole
    journey as an arrow-spanning bar above the per-process tracks.
    """
    by_key: dict[tuple[int, int, int], list[MsgEvent]] = {}
    for e in tracer.events:
        by_key.setdefault(e.key, []).append(e)
    events: list[dict] = []
    for key in sorted(by_key):
        slot, gen, seqno = key
        name = f"msg lnvc{slot}#{seqno}"
        mid = f"{slot}.{gen}.{seqno}"
        evs = by_key[key]
        send = next((e for e in evs if e.kind == "send"), None)
        start = send.t0 if send is not None else min(e.t0 for e in evs)
        end = start
        common = {"pid": 0, "tid": 0, "cat": "msg", "id": mid, "name": name}
        events.append({**common, "ph": "b", "ts": round(start * 1e6, 3)})
        for e in evs:
            if e.kind == "send":
                events.append({
                    **common, "ph": "n", "ts": round(e.t3 * 1e6, 3),
                    "args": {"step": "enqueue", "depth": e.depth,
                             "bytes": e.length},
                })
                end = max(end, e.t3)
            elif e.kind == "recv":
                events.append({
                    **common, "ph": "n", "ts": round(e.t1 * 1e6, 3),
                    "args": {"step": "take" if e.fcfs else "visit",
                             "by": f"p{e.pid}"},
                })
                end = max(end, e.t3)
            else:
                events.append({
                    **common, "ph": "n", "ts": round(e.t0 * 1e6, 3),
                    "args": {"step": "discard" if e.discard else "free"},
                })
                end = max(end, e.t0)
        events.append({**common, "ph": "e", "ts": round(end * 1e6, 3)})
    return events
