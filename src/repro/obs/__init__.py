"""Observability: runtime-agnostic metrics, traces and exporters.

The paper's whole analysis rests on instrumentation ("Detailed
measurements show that, for large messages, LNVC updates are of
negligible cost.  Instead, message copying costs dominate").  This
package is the reproduction's measurement layer, usable on *every*
runtime rather than only the simulator:

* :class:`EffectLog` — the raw effect stream recorder extracted from
  the old ``repro.machine.trace.Tracer`` (which is now a compatibility
  subclass);
* :class:`Recorder` — structured counters: per-lock acquisition /
  contention / wait / hold statistics with histograms, a per-Work-label
  time split, and per-process effect counts.  The simulator feeds it
  simulated time; threads, procs and posix runtimes feed it wall-clock
  time measured inside :func:`repro.runtime.threads.drive`;
* exporters (:mod:`repro.obs.export`) — Tracer-style text tables, JSON
  lines, and the Chrome ``chrome://tracing`` Trace Event Format.

Attach a recorder with the runtime's ``recorder=`` parameter::

    from repro import Recorder, SimRuntime, ThreadRuntime

    rec = Recorder()
    SimRuntime(recorder=rec).run(workers)       # simulated seconds
    rec2 = Recorder()
    ThreadRuntime(recorder=rec2).run(workers)   # wall-clock seconds
    print(rec.format_lock_profile())

See docs/observability.md for the full guide.
"""

from .causal import (
    CausalTracer,
    MsgEvent,
    busiest_lnvc,
    causal_async_events,
    detect_stalls,
    format_causal_tail,
    format_sojourn,
    pair_deliveries,
    peak_depth,
    queue_depth_timeline,
    sojourn_stats,
)
from .events import EffectLog, TraceEvent
from .export import (
    chrome_trace,
    format_lock_profile,
    format_summary,
    read_decision_trace,
    to_jsonl,
    write_chrome_trace,
    write_decision_trace,
    write_jsonl,
)
from .flow import (
    FlowGraph,
    check_dot,
    flow_dot,
    flow_from_causal,
    flow_from_segment,
    flow_json,
)
from .health import SERVE_TIER_ORDER, Finding, HealthEngine, serve_tier_of
from .live import LiveTelemetryServer, fetch_metrics, render_top, top_main
from .prom import parse_exposition, prometheus_exposition
from .recorder import Histogram, LockStats, Recorder, Span, WorkStats, lock_name
from .timeline import Timeline, digest_quantile, merge_timelines

__all__ = [
    "EffectLog",
    "TraceEvent",
    "Recorder",
    "Span",
    "LockStats",
    "WorkStats",
    "Histogram",
    "lock_name",
    "CausalTracer",
    "MsgEvent",
    "busiest_lnvc",
    "causal_async_events",
    "detect_stalls",
    "format_causal_tail",
    "format_sojourn",
    "pair_deliveries",
    "peak_depth",
    "queue_depth_timeline",
    "sojourn_stats",
    "FlowGraph",
    "check_dot",
    "flow_dot",
    "flow_from_causal",
    "flow_from_segment",
    "flow_json",
    "Timeline",
    "digest_quantile",
    "merge_timelines",
    "Finding",
    "HealthEngine",
    "serve_tier_of",
    "SERVE_TIER_ORDER",
    "LiveTelemetryServer",
    "fetch_metrics",
    "render_top",
    "top_main",
    "parse_exposition",
    "prometheus_exposition",
    "format_lock_profile",
    "format_summary",
    "to_jsonl",
    "write_jsonl",
    "chrome_trace",
    "write_chrome_trace",
    "write_decision_trace",
    "read_decision_trace",
]
