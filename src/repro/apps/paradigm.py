"""Paradigm study: the same kernels, message passing vs shared memory.

This is the study the paper points to (§5: "One important research
issue with these systems is the effect of the parallel programming
paradigm (message passing or shared memory) on application
performance") and the premise of its introduction ("this adaptation may
incur a substantial performance penalty").

Two kernels, each written twice over identical compute charges, so the
measured difference is purely the coordination cost:

* **global sum** — every process contributes a partial sum of its slice;
  * MP: :func:`repro.patterns.reduce` over an FCFS circuit;
  * SHM: :class:`~repro.ext.shared_vars.LockedAccumulator` plus a
    counter barrier.
* **1-D Jacobi relaxation** — iterative nearest-neighbour smoothing;
  * MP: per-process local slices, boundary values exchanged through
    :class:`~repro.patterns.Mailboxes` each iteration;
  * SHM: one :class:`~repro.ext.shared_vars.SharedDoubles` array read
    and written in place, two barriers per iteration (the classic
    fork-join style).

Both versions of each kernel compute identical numerics (tests assert
it), so ``mp_time / shm_time`` is the paper's "performance penalty" of
the message-passing formulation on a shared-memory machine.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass

import numpy as np

from ..core.costmodel import Costs, DEFAULT_COSTS
from ..core.layout import MPFConfig
from ..ext.shared_vars import CounterBarrier, LockedAccumulator, SharedDoubles
from ..machine.balance import BALANCE_21000, MachineConfig
from ..patterns import Mailboxes, allreduce, barrier
from ..runtime.base import Env
from ..runtime.sim import SimRuntime

__all__ = [
    "ParadigmResult",
    "global_sum_mp",
    "global_sum_shm",
    "jacobi_mp",
    "jacobi_shm",
    "paradigm_penalty",
]

_F8 = struct.Struct("<d")

#: Flops charged per element in a partial sum.
_SUM_FLOPS = 1
#: Flops charged per point per Jacobi iteration.
_JACOBI_FLOPS = 3


@dataclass(frozen=True)
class ParadigmResult:
    """Outcome of one kernel run."""

    value: float | np.ndarray
    elapsed: float
    p: int


def _slices(n: int, p: int) -> list[tuple[int, int]]:
    base, rem = divmod(n, p)
    spans, lo = [], 0
    for w in range(p):
        hi = lo + base + (1 if w < rem else 0)
        spans.append((lo, hi))
        lo = hi
    return spans


# ---------------------------------------------------------------------------
# kernel 1: global sum
# ---------------------------------------------------------------------------


def global_sum_mp(
    data: np.ndarray,
    p: int,
    rounds: int = 8,
    machine: MachineConfig = BALANCE_21000,
    costs: Costs = DEFAULT_COSTS,
) -> ParadigmResult:
    """Global sum by message passing (allreduce), ``rounds`` times."""
    spans = _slices(len(data), p)

    def worker(env: Env):
        lo, hi = spans[env.rank]
        local = float(np.sum(data[lo:hi]))
        t0 = env.now()
        total = 0.0
        for k in range(rounds):
            yield from env.compute(flops=_SUM_FLOPS * (hi - lo))
            acc = yield from allreduce(
                env, f"gsum{k}", env.nprocs, _F8.pack(local),
                lambda a, b: _F8.pack(_F8.unpack(a)[0] + _F8.unpack(b)[0]),
            )
            total = _F8.unpack(acc)[0]
        return env.now() - t0, total

    result = SimRuntime(machine=machine).run(
        [worker] * p,
        cfg=MPFConfig(max_lnvcs=max(64, 6 * rounds + 8), max_processes=p,
                      max_messages=512),
        costs=costs,
    )
    elapsed = max(v[0] for v in result.results.values())
    return ParadigmResult(result.results["p0"][1], elapsed, p)


def global_sum_shm(
    data: np.ndarray,
    p: int,
    rounds: int = 8,
    machine: MachineConfig = BALANCE_21000,
    costs: Costs = DEFAULT_COSTS,
) -> ParadigmResult:
    """Global sum by shared accumulator + barrier, ``rounds`` times."""
    spans = _slices(len(data), p)
    cfg = MPFConfig(
        max_lnvcs=4,
        max_processes=p,
        ext_slots=2,  # accumulator lock + barrier
        ext_bytes=LockedAccumulator.bytes_needed()
        + CounterBarrier.bytes_needed()
        + SharedDoubles.bytes_needed(1),
    )

    def worker(env: Env):
        acc = LockedAccumulator(env.view, slot=0, byte_offset=0)
        bar = CounterBarrier(env.view, p, slot=1, byte_offset=8)
        out = SharedDoubles(env.view, 1, byte_offset=16)
        lo, hi = spans[env.rank]
        local = float(np.sum(data[lo:hi]))
        t0 = env.now()
        total = 0.0
        for _ in range(rounds):
            yield from env.compute(flops=_SUM_FLOPS * (hi - lo))
            yield from acc.add(local)
            yield from bar.wait()
            if env.rank == 0:
                yield from out.write(0, acc.peek())
                acc.reset()
            yield from bar.wait()
            total = yield from out.read(0)
            yield from bar.wait()
        return env.now() - t0, total

    result = SimRuntime(machine=machine).run([worker] * p, cfg=cfg, costs=costs)
    elapsed = max(v[0] for v in result.results.values())
    return ParadigmResult(result.results["p0"][1], elapsed, p)


# ---------------------------------------------------------------------------
# kernel 2: 1-D Jacobi relaxation
# ---------------------------------------------------------------------------


def jacobi_mp(
    u0: np.ndarray,
    p: int,
    iterations: int = 10,
    machine: MachineConfig = BALANCE_21000,
    costs: Costs = DEFAULT_COSTS,
) -> ParadigmResult:
    """1-D Jacobi with halo exchange over MPF circuits."""
    n = len(u0)
    spans = _slices(n - 2, p)  # interior points

    def worker(env: Env):
        lo, hi = spans[env.rank]
        left = env.rank - 1 if env.rank > 0 else None
        right = env.rank + 1 if env.rank < p - 1 else None
        # Local slice with a one-point halo on each side.
        u = u0[lo : hi + 2].astype(float).copy()
        boxes = Mailboxes(env, "halo")
        yield from boxes.connect([x for x in (left, right) if x is not None])
        t0 = env.now()
        for _ in range(iterations):
            payloads = {}
            if left is not None:
                payloads[left] = _F8.pack(u[1])
            if right is not None:
                payloads[right] = _F8.pack(u[-2])
            replies = yield from boxes.swap_all(payloads)
            if left is not None:
                u[0] = _F8.unpack(replies[left])[0]
            if right is not None:
                u[-1] = _F8.unpack(replies[right])[0]
            u[1:-1] = 0.5 * (u[:-2] + u[2:])
            yield from env.compute(flops=_JACOBI_FLOPS * (hi - lo))
        elapsed = env.now() - t0
        yield from boxes.close()
        from ..patterns import gather

        parts = yield from gather(env, "jout", 0, p, u[1:-1].tobytes())
        full = None
        if parts is not None:
            interior = np.concatenate([np.frombuffer(q) for q in parts])
            full = np.concatenate([[u0[0]], interior, [u0[-1]]])
        return elapsed, full

    result = SimRuntime(machine=machine).run(
        [worker] * p,
        cfg=MPFConfig(max_lnvcs=max(32, 4 * p + 8), max_processes=p,
                      max_messages=256,
                      message_pool_bytes=max(1 << 20, 32 * n)),
        costs=costs,
    )
    elapsed = max(v[0] for v in result.results.values())
    return ParadigmResult(result.results["p0"][1], elapsed, p)


def jacobi_shm(
    u0: np.ndarray,
    p: int,
    iterations: int = 10,
    machine: MachineConfig = BALANCE_21000,
    costs: Costs = DEFAULT_COSTS,
) -> ParadigmResult:
    """1-D Jacobi on one shared array with two barriers per iteration."""
    n = len(u0)
    spans = _slices(n - 2, p)
    cfg = MPFConfig(
        max_lnvcs=4,
        max_processes=p,
        ext_slots=1,
        ext_bytes=CounterBarrier.bytes_needed() + SharedDoubles.bytes_needed(2 * n),
    )

    def worker(env: Env):
        bar = CounterBarrier(env.view, p, slot=0, byte_offset=0)
        # Double buffer: cur and nxt alternate each iteration.
        bufs = [
            SharedDoubles(env.view, n, byte_offset=8),
            SharedDoubles(env.view, n, byte_offset=8 + 8 * n),
        ]
        if env.rank == 0:
            for i, v in enumerate(u0):
                bufs[0].poke(i, float(v))
                bufs[1].poke(i, float(v))
        lo, hi = spans[env.rank]
        t0 = env.now()
        for it in range(iterations):
            cur, nxt = bufs[it % 2], bufs[(it + 1) % 2]
            yield from bar.wait()  # everyone sees the current buffer
            window = yield from cur.read_slice(lo, hi + 2)
            w = np.asarray(window)
            yield from nxt.write_slice(1 + lo, 0.5 * (w[:-2] + w[2:]))
            yield from env.compute(flops=_JACOBI_FLOPS * (hi - lo))
            yield from bar.wait()  # everyone finished writing
        elapsed = env.now() - t0
        final = bufs[iterations % 2]
        full = np.array([final.peek(i) for i in range(n)]) if env.rank == 0 else None
        return elapsed, full

    result = SimRuntime(machine=machine).run([worker] * p, cfg=cfg, costs=costs)
    elapsed = max(v[0] for v in result.results.values())
    return ParadigmResult(result.results["p0"][1], elapsed, p)


def paradigm_penalty(
    kernel: str,
    n: int,
    p: int,
    machine: MachineConfig = BALANCE_21000,
    costs: Costs = DEFAULT_COSTS,
    seed: int = 3,
) -> tuple[float, float, float]:
    """Run one kernel both ways; returns ``(mp_time, shm_time, penalty)``.

    ``penalty`` is ``mp_time / shm_time`` — the paper's cross-paradigm
    port cost, ≥ 1 when the message-passing formulation is slower.
    """
    rng = np.random.default_rng(seed)
    if kernel == "sum":
        data = rng.uniform(0.0, 1.0, size=n)
        mp = global_sum_mp(data, p, machine=machine, costs=costs)
        shm = global_sum_shm(data, p, machine=machine, costs=costs)
        assert abs(mp.value - shm.value) < 1e-9 * max(1.0, abs(shm.value))
    elif kernel == "jacobi":
        u0 = rng.uniform(0.0, 1.0, size=n)
        mp = jacobi_mp(u0, p, machine=machine, costs=costs)
        shm = jacobi_shm(u0, p, machine=machine, costs=costs)
        assert np.allclose(mp.value, shm.value)
    else:
        raise ValueError("kernel must be 'sum' or 'jacobi'")
    return mp.elapsed, shm.elapsed, mp.elapsed / shm.elapsed
