"""Parallel SOR Poisson solver on an N×N process grid (paper §4, Fig. 8).

The paper ported a hypercube elliptic-PDE solver to MPF:

    "The solver iterates over a grid of points, using successive
    over-relaxation (SOR), until the grid converges ... If the grid of
    points contains P×P points, it is partitioned into N×N subgrids of
    size P/N × P/N.  Each subgrid is assigned to a processor, and each
    processor iterates over its subgrid.  On each iteration, the
    boundaries of each sub-grid must be exchanged with the four
    neighboring processors.  In addition, the processors determine if the
    local sub-grid has converged and send this status information to a
    monitoring process."

Structure here: rank 0 is the convergence monitor; ranks ``1..N²`` own
block subgrids.  Halo exchange uses per-neighbour-pair FCFS circuits
(:class:`~repro.patterns.Mailboxes` — "interprocess communication among
neighbors corresponds naturally to FCFS LNVC's") and the monitor's
continue/stop decision travels on a BROADCAST circuit ("BROADCAST LNVC's
were used to broadcast convergence information from the monitoring
process").

The sweep is red–black SOR with *global* point parity, so the
distributed iteration computes exactly the sequential iteration and the
parallel solver can be validated against both the sequential solver and
the analytic solution of the model problem.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass

import numpy as np

from ..core.costmodel import Costs, DEFAULT_COSTS
from ..core.layout import MPFConfig
from ..core.protocol import BROADCAST, FCFS
from ..machine.balance import BALANCE_21000, MachineConfig
from ..patterns import Mailboxes, barrier, gather, tag, untag
from ..runtime.base import Env
from ..runtime.sim import SimRuntime

__all__ = [
    "PoissonProblem",
    "poisson_reference",
    "sor_sequential",
    "sor_parallel",
    "sor_sequential_sim_time",
    "sor_per_iteration_speedup",
    "SORResult",
]

_STATUS = struct.Struct("<d")
_CTL_GO, _CTL_STOP = b"\x01", b"\x00"

#: Flops per point per red-black sweep (5-point stencil + relaxation).
_FLOPS_PER_POINT = 10


@dataclass(frozen=True)
class PoissonProblem:
    """−∇²u = f on the unit square with zero Dirichlet boundary.

    The model instance has the analytic solution
    ``u(x, y) = sin(πx)·sin(πy)`` with ``f = 2π²·sin(πx)·sin(πy)``,
    which makes correctness checks independent of any solver.
    """

    m: int  # grid points per side, boundary included

    @property
    def h(self) -> float:
        return 1.0 / (self.m - 1)

    def coords(self) -> tuple[np.ndarray, np.ndarray]:
        line = np.linspace(0.0, 1.0, self.m)
        return np.meshgrid(line, line, indexing="ij")

    def rhs(self) -> np.ndarray:
        x, y = self.coords()
        return 2.0 * np.pi**2 * np.sin(np.pi * x) * np.sin(np.pi * y)

    def exact(self) -> np.ndarray:
        x, y = self.coords()
        return np.sin(np.pi * x) * np.sin(np.pi * y)

    def omega_opt(self) -> float:
        """Optimal SOR relaxation factor for the 5-point Laplacian."""
        rho = np.cos(np.pi * self.h)
        return 2.0 / (1.0 + np.sqrt(1.0 - rho * rho))


def poisson_reference(m: int) -> np.ndarray:
    """The analytic solution sampled on the m×m grid."""
    return PoissonProblem(m).exact()


def _color_sweep(u: np.ndarray, f: np.ndarray, h2: float, omega: float,
                 i0: int, j0: int, color: int) -> float:
    """One color half-sweep of red-black SOR over the interior of ``u``.

    ``u`` carries a one-point halo ring; ``f`` matches the interior.
    ``(i0, j0)`` are the *global* coordinates of the first interior
    point, anchoring the red/black parity globally so block-distributed
    sweeps equal the sequential sweep point-for-point.  Returns the
    maximum absolute update of this half-sweep.
    """
    delta = 0.0
    ni, nj = f.shape
    # Global parity of point (i0 + a, j0 + b) is (i0 + j0 + a + b) % 2.
    for a0 in (0, 1):
        b0 = (color - i0 - j0 - a0) % 2
        core = u[1 + a0 : 1 + ni : 2, 1 + b0 : 1 + nj : 2]
        if core.size == 0:
            continue
        north = u[a0 : ni : 2, 1 + b0 : 1 + nj : 2]
        south = u[2 + a0 : 2 + ni : 2, 1 + b0 : 1 + nj : 2]
        west = u[1 + a0 : 1 + ni : 2, b0 : nj : 2]
        east = u[1 + a0 : 1 + ni : 2, 2 + b0 : 2 + nj : 2]
        rhs = f[a0::2, b0::2]
        upd = omega * 0.25 * (north + south + west + east + h2 * rhs - 4.0 * core)
        if upd.size:
            delta = max(delta, float(np.max(np.abs(upd))))
            core += upd
    return delta


def _rb_sweep(u: np.ndarray, f: np.ndarray, h2: float, omega: float,
              i0: int, j0: int) -> float:
    """A full red-then-black SOR sweep (both half-sweeps, no exchange)."""
    d0 = _color_sweep(u, f, h2, omega, i0, j0, 0)
    d1 = _color_sweep(u, f, h2, omega, i0, j0, 1)
    return max(d0, d1)


@dataclass(frozen=True)
class SORResult:
    """Outcome of one solver run."""

    u: np.ndarray | None
    iterations: int
    elapsed: float
    converged: bool


def sor_sequential(
    m: int,
    tol: float = 1e-6,
    max_iters: int = 10_000,
    omega: float | None = None,
) -> SORResult:
    """Sequential red-black SOR on the full grid (pure NumPy)."""
    prob = PoissonProblem(m)
    omega = prob.omega_opt() if omega is None else omega
    u = np.zeros((m, m))
    f = prob.rhs()[1:-1, 1:-1]
    h2 = prob.h**2
    for it in range(1, max_iters + 1):
        delta = _rb_sweep(u, f, h2, omega, 1, 1)
        if delta < tol:
            return SORResult(u=u, iterations=it, elapsed=0.0, converged=True)
    return SORResult(u=u, iterations=max_iters, elapsed=0.0, converged=False)


def _block(mi: int, n: int, idx: int) -> tuple[int, int]:
    """Interior slice [lo, hi) of dimension ``mi`` for block ``idx`` of ``n``."""
    base, rem = divmod(mi, n)
    lo = idx * base + min(idx, rem)
    return lo, lo + base + (1 if idx < rem else 0)


def _monitor(env: Env, nworkers: int, tol: float, max_iters: int):
    """Rank 0: reduce per-iteration convergence status, broadcast verdict."""
    status = yield from env.open_receive("sor.status", FCFS)
    ctl = yield from env.open_send("sor.ctl")
    yield from barrier(env, "sor.start", nworkers + 1)
    iterations = 0
    converged = False
    for _ in range(max_iters):
        worst = 0.0
        for _ in range(nworkers):
            (delta,) = _STATUS.unpack((yield from env.message_receive(status)))
            worst = max(worst, delta)
        iterations += 1
        converged = worst < tol
        yield from env.message_send(ctl, _CTL_STOP if converged else _CTL_GO)
        if converged:
            break
    yield from barrier(env, "sor.end", nworkers + 1)
    yield from env.close_receive(status)
    yield from env.close_send(ctl)
    return iterations, converged


def _sor_worker(env: Env, m: int, n: int, tol: float, max_iters: int,
                omega: float):
    """Ranks 1..N²: sweep a block, exchange halos, report status."""
    prob = PoissonProblem(m)
    w = env.rank - 1
    r, c = divmod(w, n)
    mi = m - 2  # interior points per side
    rlo, rhi = _block(mi, n, r)
    clo, chi = _block(mi, n, c)
    rows, cols = rhi - rlo, chi - clo

    # Local state: interior block plus a one-point halo ring.  Global
    # boundary parts of the ring hold the (zero) Dirichlet condition.
    u = np.zeros((rows + 2, cols + 2))
    f = prob.rhs()[1 + rlo : 1 + rhi, 1 + clo : 1 + chi]
    h2 = prob.h**2

    up = 1 + (r - 1) * n + c if r > 0 else None
    down = 1 + (r + 1) * n + c if r < n - 1 else None
    left = 1 + r * n + (c - 1) if c > 0 else None
    right = 1 + r * n + (c + 1) if c < n - 1 else None
    neighbours = [p for p in (up, down, left, right) if p is not None]

    boxes = Mailboxes(env, "sor.halo")
    yield from boxes.connect(neighbours)
    status = yield from env.open_send("sor.status")
    ctl = yield from env.open_receive("sor.ctl", BROADCAST)
    yield from barrier(env, "sor.start", n * n + 1)
    t0 = env.now()

    def halo_exchange():
        # "the boundaries of each sub-grid must be exchanged with the
        # four neighboring processors."
        payloads = {}
        if up is not None:
            payloads[up] = u[1, 1:-1].tobytes()
        if down is not None:
            payloads[down] = u[rows, 1:-1].tobytes()
        if left is not None:
            payloads[left] = np.ascontiguousarray(u[1:-1, 1]).tobytes()
        if right is not None:
            payloads[right] = np.ascontiguousarray(u[1:-1, cols]).tobytes()
        replies = yield from boxes.swap_all(payloads)
        if up is not None:
            u[0, 1:-1] = np.frombuffer(replies[up])
        if down is not None:
            u[rows + 1, 1:-1] = np.frombuffer(replies[down])
        if left is not None:
            u[1:-1, 0] = np.frombuffer(replies[left])
        if right is not None:
            u[1:-1, cols + 1] = np.frombuffer(replies[right])

    iterations = 0
    converged = False
    for _ in range(max_iters):
        # 1+2. Exchange halos before each half-sweep, so the black pass
        # reads the neighbours' freshly updated red points and the
        # distributed iteration equals the sequential one exactly.
        delta = 0.0
        for color in (0, 1):
            yield from halo_exchange()
            delta = max(
                delta,
                _color_sweep(u, f, h2, omega, 1 + rlo, 1 + clo, color),
            )
            yield from env.compute(
                flops=(_FLOPS_PER_POINT * rows * cols) // 2
            )

        # 3. Convergence status to the monitor; await the verdict.
        yield from env.message_send(status, _STATUS.pack(delta))
        verdict = yield from env.message_receive(ctl)
        iterations += 1
        if verdict == _CTL_STOP:
            converged = True
            break

    elapsed = env.now() - t0
    yield from barrier(env, "sor.end", n * n + 1)
    yield from boxes.close()
    yield from env.close_send(status)
    yield from env.close_receive(ctl)

    # Assemble the solution at worker 1 for verification.
    piece = np.zeros((m, m))
    piece[1 + rlo : 1 + rhi, 1 + clo : 1 + chi] = u[1:-1, 1:-1]
    parts = yield from gather(env, "sor.u", 1, n * n, piece.tobytes())
    full = None
    if parts is not None:
        full = np.sum(
            [np.frombuffer(q).reshape(m, m) for q in parts], axis=0
        )
    return elapsed, iterations, converged, full


def sor_parallel(
    m: int,
    n: int,
    tol: float = 1e-6,
    max_iters: int = 10_000,
    omega: float | None = None,
    machine: MachineConfig = BALANCE_21000,
    costs: Costs = DEFAULT_COSTS,
    runtime=None,
) -> SORResult:
    """Solve the model Poisson problem on an ``n×n`` process grid.

    Runs ``n² + 1`` processes (workers plus monitor).  Exchange halos,
    sweep, report, repeat — until the monitor broadcasts convergence or
    ``max_iters`` is reached.
    """
    if n < 1 or (m - 2) < n:
        raise ValueError(f"need 1 <= n <= {m - 2}")
    runtime = runtime or SimRuntime(machine=machine)
    om = PoissonProblem(m).omega_opt() if omega is None else omega
    nw = n * n

    def monitor(env: Env):
        return (yield from _monitor(env, nw, tol, max_iters))

    def worker(env: Env):
        return (yield from _sor_worker(env, m, n, tol, max_iters, om))

    cfg = MPFConfig(
        max_lnvcs=max(64, 8 * nw + 16),
        max_processes=nw + 1,
        max_messages=max(512, 16 * nw + 64),
        message_pool_bytes=max(1 << 20, 8 * nw * (8 * m + 64)),
    )
    result = runtime.run([monitor] + [worker] * nw, cfg=cfg, costs=costs)
    workers = [v for k, v in result.results.items() if k != "p0"]
    elapsed = max(v[0] for v in workers)
    iterations = max(v[1] for v in workers)
    converged = all(v[2] for v in workers)
    full = result.results["p1"][3]
    return SORResult(u=full, iterations=iterations, elapsed=elapsed,
                     converged=converged)


def sor_sequential_sim_time(
    m: int,
    iterations: int,
    machine: MachineConfig = BALANCE_21000,
    costs: Costs = DEFAULT_COSTS,
) -> float:
    """Simulated seconds for ``iterations`` sequential sweeps of the grid."""

    def worker(env: Env):
        t0 = env.now()
        for _ in range(iterations):
            yield from env.compute(flops=_FLOPS_PER_POINT * (m - 2) * (m - 2))
        return env.now() - t0

    result = SimRuntime(machine=machine).run(
        [worker], cfg=MPFConfig(max_lnvcs=2, max_processes=1), costs=costs
    )
    return result.results["p0"]


def sor_per_iteration_speedup(
    m: int,
    n: int,
    base_n: int = 2,
    iterations: int = 6,
    machine: MachineConfig = BALANCE_21000,
    costs: Costs = DEFAULT_COSTS,
) -> float:
    """Figure 8's metric: per-iteration speedup relative to ``base_n``.

    "Because no equivalent, sequential solver was available, all
    speedups are shown relative to the smallest parallel solver: 4
    processes" — i.e. the N=2 decomposition.  Both runs execute a fixed
    number of iterations (convergence disabled) and the ratio of
    per-iteration times is returned.
    """

    def per_iter(dim: int) -> float:
        res = sor_parallel(
            m, dim, tol=0.0, max_iters=iterations,
            machine=machine, costs=costs,
        )
        return res.elapsed / res.iterations

    return per_iter(base_n) / per_iter(n)
