"""Message-based parallel Gauss–Jordan elimination (paper §4, Figure 7).

The paper's description, reproduced exactly:

    "The parallel implementation of this algorithm partitions the matrix
    A into equal sized groups of contiguous rows; each partition is
    assigned to a process.  Each process searches for the maximum element
    in the current column, and sends this value to an arbiter process.
    The arbiter process identifies the maximum of the maxima, and advises
    the process holding this value.  The identified process broadcasts
    the selected pivot row to all other processes.  The processes then
    sweep the rows of their partition using this pivot row and begin a
    new iteration."

Process layout: rank 0 is the dedicated arbiter; ranks ``1..P`` hold the
row partitions.  Three kinds of circuit:

* ``gj.max`` — FCFS, workers → arbiter: the local column maxima.
* ``gj.advise.<w>`` — FCFS, arbiter → the winning worker only.
* ``gj.pivot`` — BROADCAST, winner → all workers (including itself): the
  normalized pivot row.

Because only the winner receives an advise, a worker cannot know in
advance whether to wait on its advise circuit or on the pivot broadcast.
MPF has no ``select``; the paper's interface offers ``check_receive``
for exactly this, so workers poll both circuits — the one place in the
evaluation suite that exercises the non-blocking primitive in anger.

Numerics run for real (each worker owns a NumPy slab of the matrix) and
the solution is checked against ``numpy.linalg.solve`` in the tests, so
the simulated timing and the arithmetic cannot drift apart.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass

import numpy as np

from ..core.costmodel import Costs, DEFAULT_COSTS
from ..core.layout import MPFConfig
from ..core.protocol import BROADCAST, FCFS
from ..core.work import Work
from ..machine.balance import BALANCE_21000, MachineConfig
from ..patterns import barrier, gather, select_receive
from ..runtime.base import Env
from ..runtime.sim import SimRuntime

__all__ = [
    "GJResult",
    "gauss_jordan_sequential",
    "gauss_jordan_parallel",
    "gj_sequential_sim_time",
    "gj_speedup",
    "make_system",
]

_MAX = struct.Struct("<dI")  # (local max abs value, global row index)
_SEL = struct.Struct("<I")   # selected pivot row index
_HDR = struct.Struct("<II")  # (iteration k, pivot row index)


def make_system(n: int, seed: int = 7) -> tuple[np.ndarray, np.ndarray]:
    """A well-conditioned random test system ``A x = b``.

    Diagonal dominance keeps partial pivoting honest but solvable for
    every size the paper sweeps (32–96).
    """
    rng = np.random.default_rng(seed)
    a = rng.uniform(-1.0, 1.0, size=(n, n))
    a += np.diag(np.sign(a.diagonal()) * n)
    x = rng.uniform(-1.0, 1.0, size=n)
    return a, a @ x


def _partition(n: int, p: int, w: int) -> tuple[int, int]:
    """Rows [lo, hi) owned by worker ``w`` of ``p`` (contiguous blocks)."""
    base, rem = divmod(n, p)
    lo = w * base + min(w, rem)
    return lo, lo + base + (1 if w < rem else 0)


def gauss_jordan_sequential(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Plain sequential Gauss–Jordan with partial pivoting.

    The correctness baseline: converts ``A x = b`` to ``A' x = b'`` with
    ``A'`` the identity (the paper's "equivalent linear system A'x = b'
    where A' is diagonal").
    """
    a = a.astype(float).copy()
    b = b.astype(float).copy()
    n = len(b)
    used = np.zeros(n, dtype=bool)
    order = np.empty(n, dtype=int)
    for k in range(n):
        candidates = np.flatnonzero(~used)
        r = candidates[np.argmax(np.abs(a[candidates, k]))]
        used[r] = True
        order[k] = r
        piv = a[r, k]
        if piv == 0.0:
            raise np.linalg.LinAlgError("singular matrix")
        a[r, k:] /= piv
        b[r] /= piv
        rows = np.flatnonzero(np.arange(n) != r)
        factors = a[rows, k].copy()
        a[rows, k:] -= np.outer(factors, a[r, k:])
        b[rows] -= factors * b[r]
    x = np.empty(n)
    for k in range(n):
        x[k] = b[order[k]]
    return x


def _seq_flops(n: int) -> list[int]:
    """Per-iteration flop counts of the sequential algorithm.

    Iteration ``k``: pivot scan over ``n - k`` candidates, pivot-row
    normalization over ``n - k + 1`` elements, and elimination of the
    remaining ``n - 1`` rows over ``n - k + 1`` columns at 2 flops each.
    The identical formula is charged by the parallel workers for their
    shares, so measured speedup isolates communication and imbalance.
    """
    return [
        (n - k) + (n - k + 1) + (n - 1) * (n - k + 1) * 2
        for k in range(n)
    ]


def gj_sequential_sim_time(
    n: int,
    machine: MachineConfig = BALANCE_21000,
    costs: Costs = DEFAULT_COSTS,
) -> float:
    """Simulated seconds for the sequential solver on the Balance 21000."""

    def worker(env: Env):
        t0 = env.now()
        for flops in _seq_flops(n):
            yield from env.compute(flops=flops)
        return env.now() - t0

    result = SimRuntime(machine=machine).run(
        [worker], cfg=MPFConfig(max_lnvcs=2, max_processes=1), costs=costs
    )
    return result.results["p0"]


@dataclass(frozen=True)
class GJResult:
    """Outcome of one parallel Gauss–Jordan run."""

    #: The solution vector.
    x: np.ndarray
    #: Simulated (or wall) seconds of the solve phase.
    elapsed: float
    #: Worker count (excluding the arbiter).
    p: int
    n: int


def _arbiter(env: Env, n: int, p: int):
    """Rank 0: collect local maxima, advise the winner each iteration."""
    max_id = yield from env.open_receive("gj.max", FCFS)
    advise = {}
    for w in range(1, p + 1):
        advise[w] = yield from env.open_send(f"gj.advise.{w}")
    yield from barrier(env, "gj.start", p + 1)
    for _ in range(n):
        best_val, best_row = -1.0, -1
        for _ in range(p):
            val, row = _MAX.unpack((yield from env.message_receive(max_id)))
            # Deterministic tie-break: larger magnitude, then lower row.
            if val > best_val or (val == best_val and row < best_row):
                best_val, best_row = val, row
        winner = 1 + _owner(n, p, best_row)
        # Compute charge fused into the send (identical simulated time,
        # one scheduler event instead of two).
        yield from env.message_send(
            advise[winner],
            _SEL.pack(best_row),
            prelude=Work(flops=p, label="app-compute"),
        )
    yield from barrier(env, "gj.end", p + 1)
    for cid in advise.values():
        yield from env.close_send(cid)
    yield from env.close_receive(max_id)
    return None


def _owner(n: int, p: int, row: int) -> int:
    for w in range(p):
        lo, hi = _partition(n, p, w)
        if lo <= row < hi:
            return w
    raise ValueError(f"row {row} outside matrix of {n}")


def _worker(env: Env, n: int, p: int, a_all: np.ndarray, b_all: np.ndarray):
    """Ranks 1..P: own a row block; pivot, broadcast, sweep."""
    w = env.rank - 1
    lo, hi = _partition(n, p, w)
    a = a_all[lo:hi].astype(float).copy()
    b = b_all[lo:hi].astype(float).copy()
    rows = hi - lo
    used = np.zeros(rows, dtype=bool)

    max_out = yield from env.open_send("gj.max")
    advise_in = yield from env.open_receive(f"gj.advise.{env.rank}", FCFS)
    pivot_in = yield from env.open_receive("gj.pivot", BROADCAST)
    pivot_out = yield from env.open_send("gj.pivot")
    yield from barrier(env, "gj.start", p + 1)
    t0 = env.now()

    for k in range(n):
        # 1. Local pivot search over not-yet-used rows of this partition.
        free = np.flatnonzero(~used)
        if len(free):
            i = free[np.argmax(np.abs(a[free, k]))]
            val, row = abs(float(a[i, k])), lo + int(i)
        else:
            val, row = -1.0, 0
        yield from env.message_send(
            max_out,
            _MAX.pack(val, row),
            prelude=Work(flops=max(1, len(free)), label="app-compute"),
        )

        # 2. Await either an advise (we won) or the pivot broadcast.  MPF
        #    has no select; poll both circuits with check_receive as the
        #    paper intends (select_receive codifies the idiom — safe
        #    here because the advise circuit has one receiver and the
        #    pivot circuit is BROADCAST).
        payload = None
        while payload is None:
            which, msg = yield from select_receive(
                env, (advise_in, pivot_in), backoff_instrs=400
            )
            if which == advise_in:
                sel = _SEL.unpack(msg)[0]
                i = sel - lo
                piv = a[i, k]
                a[i, k:] /= piv
                b[i] /= piv
                used[i] = True
                row = _HDR.pack(k, sel) + a[i, k:].tobytes() + b[i : i + 1].tobytes()
                yield from env.message_send(
                    pivot_out, row, prelude=Work(flops=(n - k + 1), label="app-compute")
                )
            else:
                payload = msg

        # 3. Sweep this partition's other rows with the pivot row.
        kk, sel = _HDR.unpack_from(payload)
        assert kk == k
        body = np.frombuffer(payload, dtype=float, offset=_HDR.size)
        prow, pb = body[:-1], body[-1]
        mask = np.arange(lo, hi) != sel
        if mask.any():
            factors = a[mask, k].copy()
            a[mask, k:] -= np.outer(factors, prow)
            b[mask] -= factors * pb
        yield from env.compute(flops=int(mask.sum()) * (n - k + 1) * 2)

    elapsed = env.now() - t0
    yield from barrier(env, "gj.end", p + 1)
    yield from env.close_send(max_out)
    yield from env.close_receive(advise_in)
    yield from env.close_send(pivot_out)
    yield from env.close_receive(pivot_in)

    # Diagonal system: each row i now reads x[i] = b[i].
    piece = np.zeros(n)
    piece[lo:hi] = b
    parts = yield from gather(env, "gj.x", 1, p, piece.tobytes())
    if parts is None:
        return elapsed, None
    x = np.sum([np.frombuffer(q) for q in parts], axis=0)
    return elapsed, x


def gauss_jordan_parallel(
    a: np.ndarray,
    b: np.ndarray,
    p: int,
    machine: MachineConfig = BALANCE_21000,
    costs: Costs = DEFAULT_COSTS,
    runtime=None,
) -> GJResult:
    """Solve ``A x = b`` with ``p`` worker processes plus an arbiter.

    ``runtime`` defaults to a fresh :class:`SimRuntime` on ``machine``;
    pass a :class:`~repro.runtime.threads.ThreadRuntime` to run the same
    program on real threads.
    """
    n = len(b)
    if not 1 <= p <= n:
        raise ValueError(f"need 1 <= p <= {n}")
    runtime = runtime or SimRuntime(machine=machine)

    def arbiter(env: Env):
        return (yield from _arbiter(env, n, p))

    def worker(env: Env):
        return (yield from _worker(env, n, p, a, b))

    cfg = MPFConfig(
        max_lnvcs=max(32, 2 * p + 16),
        max_processes=p + 1,
        max_messages=max(256, 4 * p + 64),
        message_pool_bytes=max(1 << 20, 4 * p * (8 * n + 64)),
    )
    result = runtime.run([arbiter] + [worker] * p, cfg=cfg, costs=costs)
    elapsed = max(
        v[0] for k, v in result.results.items() if k != "p0" and v is not None
    )
    x = result.results["p1"][1]
    return GJResult(x=x, elapsed=elapsed, p=p, n=n)


def gj_speedup(
    n: int,
    p: int,
    machine: MachineConfig = BALANCE_21000,
    costs: Costs = DEFAULT_COSTS,
    seed: int = 7,
) -> float:
    """Figure 7's metric: sequential simulated time over parallel.

    Both numerator and denominator charge the identical per-row flop
    formula, so the ratio isolates communication cost and load imbalance
    — the two effects the paper's Figure 7 discussion analyses.
    """
    a, b = make_system(n, seed)
    seq = gj_sequential_sim_time(n, machine, costs)
    par = gauss_jordan_parallel(a, b, p, machine, costs)
    return seq / par.elapsed
