"""Evaluation applications (paper §4, Figures 7 and 8).

* :mod:`~repro.apps.gauss_jordan` — message-based parallel Gauss–Jordan
  elimination with partial pivoting (arbiter + pivot-row broadcast),
* :mod:`~repro.apps.sor` — successive over-relaxation Poisson solver on
  an N×N process grid with halo exchange and a convergence monitor,
* :mod:`~repro.apps.sorting` — odd-even transposition sort on a line of
  processes (a §5-style message-passing prototype workload).
"""

from .gauss_jordan import (
    gauss_jordan_parallel,
    gauss_jordan_sequential,
    gj_sequential_sim_time,
    gj_speedup,
)
from .sor import (
    poisson_reference,
    sor_parallel,
    sor_sequential,
    sor_per_iteration_speedup,
)
from .sorting import make_keys, odd_even_sort_parallel, sort_speedup

__all__ = [
    "gauss_jordan_parallel",
    "gauss_jordan_sequential",
    "gj_sequential_sim_time",
    "gj_speedup",
    "poisson_reference",
    "sor_parallel",
    "sor_sequential",
    "sor_per_iteration_speedup",
    "make_keys",
    "odd_even_sort_parallel",
    "sort_speedup",
]
