"""Odd-even transposition sort on a line of MPF processes.

A third application in the spirit of paper §5 — "Programs destined for
message passing systems can be easily prototyped in the MPF
environment": the textbook distributed sorting network whose natural
home is a linear message-passing topology.

``P`` processes each hold a contiguous block of the keys, locally
sorted.  For ``P`` phases, alternating even/odd pairs of neighbours
exchange their whole blocks over per-pair FCFS circuits
(:class:`~repro.patterns.Mailboxes`); the left partner keeps the lower
half of the merge and the right partner the upper half.  After ``P``
phases the concatenation of blocks is globally sorted (the classic
odd-even transposition invariant).

Communication is block exchange (perimeter = whole block), computation
is the merge (also linear in the block) — unlike Figures 7/8 this app
has a *constant* computation-to-communication ratio, so speedup comes
only from overlapping the merges, a usefully different regime for
exercising the simulator.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.costmodel import Costs, DEFAULT_COSTS
from ..core.layout import MPFConfig
from ..machine.balance import BALANCE_21000, MachineConfig
from ..patterns import Mailboxes, gather
from ..runtime.base import Env
from ..runtime.sim import SimRuntime

__all__ = [
    "SortResult",
    "odd_even_sort_parallel",
    "sort_sequential_sim_time",
    "sort_speedup",
    "make_keys",
]

#: Charged instructions per element merged or compared.
_MERGE_INSTRS = 20
#: Charged instructions per element in the initial local sort, per
#: log-level (n log n with this constant per element-level).
_SORT_INSTRS = 24


def make_keys(n: int, seed: int = 11) -> np.ndarray:
    """Deterministic random float keys."""
    return np.random.default_rng(seed).uniform(0.0, 1.0, size=n)


def _blocks(n: int, p: int) -> list[tuple[int, int]]:
    base, rem = divmod(n, p)
    spans = []
    lo = 0
    for w in range(p):
        hi = lo + base + (1 if w < rem else 0)
        spans.append((lo, hi))
        lo = hi
    return spans


@dataclass(frozen=True)
class SortResult:
    """Outcome of one parallel sort run."""

    keys: np.ndarray | None
    elapsed: float
    p: int


def _worker(env: Env, keys: np.ndarray, p: int):
    w = env.rank
    lo, hi = _blocks(len(keys), p)[w]
    mine = np.sort(keys[lo:hi])
    size = hi - lo
    import math

    levels = max(1, int(math.ceil(math.log2(max(2, size)))))
    yield from env.compute(instrs=_SORT_INSTRS * size * levels)

    left = w - 1 if w > 0 else None
    right = w + 1 if w < p - 1 else None
    boxes = Mailboxes(env, "oes")
    yield from boxes.connect([x for x in (left, right) if x is not None])

    t0 = env.now()
    for phase in range(p):
        # Even phase pairs (0,1),(2,3),...; odd phase pairs (1,2),(3,4),...
        if phase % 2 == w % 2:
            partner, keep_low = right, True
        else:
            partner, keep_low = left, False
        if partner is None:
            continue
        theirs = np.frombuffer(
            (yield from boxes.swap(partner, mine.tobytes()))
        )
        merged = np.sort(np.concatenate([mine, theirs]))
        yield from env.compute(instrs=_MERGE_INSTRS * len(merged))
        mine = merged[:size] if keep_low else merged[len(merged) - size:]
    elapsed = env.now() - t0

    yield from boxes.close()
    parts = yield from gather(env, "oes.out", 0, p, mine.tobytes())
    result = None
    if parts is not None:
        result = np.concatenate([np.frombuffer(q) for q in parts])
    return elapsed, result


def odd_even_sort_parallel(
    keys: np.ndarray,
    p: int,
    machine: MachineConfig = BALANCE_21000,
    costs: Costs = DEFAULT_COSTS,
    runtime=None,
) -> SortResult:
    """Sort ``keys`` over ``p`` processes; returns the sorted array."""
    if not 1 <= p <= len(keys):
        raise ValueError(f"need 1 <= p <= {len(keys)}")
    runtime = runtime or SimRuntime(machine=machine)

    def worker(env: Env):
        return (yield from _worker(env, keys, p))

    cfg = MPFConfig(
        max_lnvcs=max(32, 4 * p + 8),
        max_processes=p,
        max_messages=max(128, 8 * p),
        message_pool_bytes=max(1 << 20, 16 * p * (8 * len(keys) // max(1, p) + 64)),
    )
    result = runtime.run([worker] * p, cfg=cfg, costs=costs)
    elapsed = max(v[0] for v in result.results.values())
    return SortResult(keys=result.results["p0"][1], elapsed=elapsed, p=p)


def sort_sequential_sim_time(
    n: int,
    machine: MachineConfig = BALANCE_21000,
    costs: Costs = DEFAULT_COSTS,
) -> float:
    """Simulated seconds for a sequential n·log n sort of ``n`` keys."""
    import math

    levels = max(1, int(math.ceil(math.log2(max(2, n)))))

    def worker(env: Env):
        t0 = env.now()
        yield from env.compute(instrs=_SORT_INSTRS * n * levels)
        return env.now() - t0

    result = SimRuntime(machine=machine).run(
        [worker], cfg=MPFConfig(max_lnvcs=2, max_processes=1), costs=costs
    )
    return result.results["p0"]


def sort_speedup(
    n: int,
    p: int,
    machine: MachineConfig = BALANCE_21000,
    costs: Costs = DEFAULT_COSTS,
    seed: int = 11,
) -> float:
    """Sequential simulated sort time over parallel phase time."""
    keys = make_keys(n, seed)
    seq = sort_sequential_sim_time(n, machine, costs)
    par = odd_even_sort_parallel(keys, p, machine, costs)
    return seq / par.elapsed
