"""The shared-memory paradigm, as a substrate for paradigm comparison.

Paper §1: "we have used the existing primitives on a shared memory
machine to develop a message passing facility ... the motivation for
this work is not merely to produce a message passing implementation,
but also to explore the problems and performance penalties of
cross-architecture algorithm ports."  §5 names the open question: "the
effect of the parallel programming paradigm (message passing or shared
memory) on application performance."

To *measure* that effect we need the competing paradigm under the same
cost model.  This module provides the native shared-memory idioms —
shared arrays, a lock-protected accumulator, and a counter barrier — as
effect generators over the segment's extension area, so the simulator
prices direct shared-variable access with the same machinery that
prices MPF messages.  ``apps/paradigm.py`` runs the same kernels both
ways; ``python -m repro.bench study_paradigm`` tabulates the gap.

All structures zero-initialize to a valid empty state.
"""

from __future__ import annotations

import struct

from ..core.effects import Acquire, Charge, Release, WaitOn, Wake
from ..core.ops import MPFView
from ..core.protocol import FIRST_LNVC_LOCK
from ..core.work import Work

__all__ = ["SharedDoubles", "LockedAccumulator", "CounterBarrier"]

_F8 = struct.Struct("<d")

#: Instructions per shared-variable access (load/store through the bus;
#: write-through cache makes writes and remote reads memory operations).
SHARED_REF_INSTRS = 3
#: Fixed instructions per critical section entry (beyond the lock itself).
CS_FIXED = 40


class SharedDoubles:
    """A shared array of float64 in the extension area.

    Reads and writes are direct memory access — no protocol, no copies.
    Bulk accessors charge per element; racing is the caller's problem,
    exactly as in the shared-variable paradigm (synchronize with
    :class:`CounterBarrier` or :class:`LockedAccumulator`).
    """

    def __init__(self, view: MPFView, count: int, byte_offset: int = 0) -> None:
        if count < 1:
            raise ValueError("need count >= 1")
        need = byte_offset + 8 * count
        if need > view.cfg.ext_bytes:
            raise ValueError(
                f"array needs {need} ext_bytes, config reserves "
                f"{view.cfg.ext_bytes}"
            )
        self.view = view
        self.count = count
        self.base = view.layout.ext_base + byte_offset

    @staticmethod
    def bytes_needed(count: int) -> int:
        """Extension bytes one array occupies."""
        return 8 * count

    def _off(self, i: int) -> int:
        if not 0 <= i < self.count:
            raise IndexError(f"index {i} outside array of {self.count}")
        return self.base + 8 * i

    # -- raw (uncharged) access, for assertions and result collection -------

    def peek(self, i: int) -> float:
        """Read without charging (test/diagnostic use)."""
        return _F8.unpack(self.view.region.read(self._off(i), 8))[0]

    def poke(self, i: int, value: float) -> None:
        """Write without charging (initialization before the run)."""
        self.view.region.write(self._off(i), _F8.pack(value))

    # -- charged access (effect generators) -----------------------------------

    def read(self, i: int):
        """Read element ``i``, charging one shared reference."""
        yield Charge(Work(instrs=SHARED_REF_INSTRS, label="shm-read"))
        return self.peek(i)

    def write(self, i: int, value: float):
        """Write element ``i``, charging one shared reference."""
        self.poke(i, value)
        yield Charge(Work(instrs=SHARED_REF_INSTRS, label="shm-write"))
        return None

    def read_slice(self, lo: int, hi: int):
        """Read ``[lo, hi)``, charging per element."""
        values = [self.peek(i) for i in range(lo, hi)]
        yield Charge(
            Work(instrs=SHARED_REF_INSTRS * max(0, hi - lo), label="shm-read")
        )
        return values

    def write_slice(self, lo: int, values):
        """Write ``values`` starting at ``lo``, charging per element."""
        for k, v in enumerate(values):
            self.poke(lo + k, v)
        yield Charge(
            Work(instrs=SHARED_REF_INSTRS * len(values), label="shm-write")
        )
        return None


class LockedAccumulator:
    """A lock-protected shared scalar: the shared-variable reduction idiom."""

    def __init__(self, view: MPFView, slot: int, byte_offset: int = 0) -> None:
        if slot >= view.cfg.ext_slots:
            raise ValueError(
                f"accumulator needs ext slot {slot}, config reserves "
                f"{view.cfg.ext_slots}"
            )
        if byte_offset + 8 > view.cfg.ext_bytes:
            raise ValueError("accumulator needs 8 ext_bytes")
        self.view = view
        self.base = view.layout.ext_base + byte_offset
        self._lock = FIRST_LNVC_LOCK + view.cfg.max_lnvcs + slot

    @staticmethod
    def bytes_needed() -> int:
        return 8

    def peek(self) -> float:
        """Read without charging (after the run)."""
        return _F8.unpack(self.view.region.read(self.base, 8))[0]

    def reset(self) -> None:
        """Zero without charging (before the run)."""
        self.view.region.write(self.base, _F8.pack(0.0))

    def add(self, delta: float):
        """Atomically add ``delta`` under the accumulator's lock."""
        yield Acquire(self._lock)
        value = _F8.unpack(self.view.region.read(self.base, 8))[0] + delta
        self.view.region.write(self.base, _F8.pack(value))
        yield Charge(
            Work(instrs=CS_FIXED + 2 * SHARED_REF_INSTRS, flops=1,
                 label="shm-accum")
        )
        yield Release(self._lock)
        return value


class CounterBarrier:
    """Sense-reversing counter barrier: the shared-variable barrier idiom.

    Uses one extension slot (lock + wait channel) and 8 extension bytes
    (count u32 + sense u32).  Reusable any number of times by the same
    fixed group of ``n`` processes.
    """

    def __init__(self, view: MPFView, n: int, slot: int,
                 byte_offset: int = 0) -> None:
        if n < 1:
            raise ValueError("need n >= 1")
        if slot >= view.cfg.ext_slots:
            raise ValueError(
                f"barrier needs ext slot {slot}, config reserves "
                f"{view.cfg.ext_slots}"
            )
        if byte_offset + 8 > view.cfg.ext_bytes:
            raise ValueError("barrier needs 8 ext_bytes")
        self.view = view
        self.n = n
        self.base = view.layout.ext_base + byte_offset
        self._slot = view.cfg.max_lnvcs + slot
        self._lock = FIRST_LNVC_LOCK + self._slot

    @staticmethod
    def bytes_needed() -> int:
        return 8

    def wait(self):
        """Arrive; resumes when all ``n`` processes have arrived."""
        r = self.view.region
        yield Acquire(self._lock)
        my_sense = r.u32(self.base + 4)
        arrived = r.u32(self.base) + 1
        yield Charge(Work(instrs=CS_FIXED, label="shm-barrier"))
        if arrived == self.n:
            r.set_u32(self.base, 0)
            r.set_u32(self.base + 4, my_sense ^ 1)
            yield Release(self._lock)
            yield Wake(self._slot)
            return None
        r.set_u32(self.base, arrived)
        while r.u32(self.base + 4) == my_sense:
            yield WaitOn(self._slot, self._lock)
        yield Release(self._lock)
        return None
