"""A rank-addressed, tag-matched communicator over LNVCs.

Paper §5: "Programs destined for message passing systems can be easily
prototyped in the MPF environment."  The lingua franca of such programs
is the MPI-style interface — ``send(data, dest, tag)`` /
``recv(source, tag)`` plus collectives — so this module provides exactly
that as a thin layer over MPF circuits, demonstrating the prototyping
claim for the interface real codes actually use.

Mapping:

* every rank owns one FCFS mailbox circuit ``<name>.mbox.<rank>``;
  senders hold an open send connection per destination (opened lazily,
  kept until :meth:`Comm.close` — the loss-free discipline);
* each message carries a ``(source, tag)`` envelope; :meth:`Comm.recv`
  matches envelopes against ``(source, tag)`` patterns, buffering
  non-matching messages locally until a later receive wants them —
  standard MPI out-of-order matching, implemented without any ``select``
  (MPF's FIFO mailbox plus a local pending list suffice);
* collectives delegate to :mod:`repro.patterns`.

Semantics notes: point-to-point order is preserved per (source,
destination) pair, like MPI; ``ANY_SOURCE``/``ANY_TAG`` wildcards are
supported; all operations are generators (``yield from``), usable on
every runtime.
"""

from __future__ import annotations

import struct

from ..core.protocol import FCFS
from ..patterns import allreduce as _allreduce
from ..patterns import barrier as _barrier
from ..patterns import broadcast as _broadcast
from ..patterns import gather as _gather
from ..patterns import scatter as _scatter
from ..runtime.base import Env

__all__ = ["ANY_SOURCE", "ANY_TAG", "Comm", "Message"]

#: Wildcard for :meth:`Comm.recv` source matching.
ANY_SOURCE = -1
#: Wildcard for :meth:`Comm.recv` tag matching.
ANY_TAG = -1

_ENV = struct.Struct("<II")


class Message:
    """A received message: payload plus its envelope."""

    __slots__ = ("source", "tag", "data")

    def __init__(self, source: int, tag: int, data: bytes) -> None:
        self.source = source
        self.tag = tag
        self.data = data

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Message(source={self.source}, tag={self.tag}, len={len(self.data)})"


class Comm:
    """A communicator over ``size`` ranks (``env.rank`` is this rank).

    Construct one per process with the same ``name`` and ``size``, then
    ``yield from comm.connect()`` before use and ``yield from
    comm.close()`` at the end (after a barrier or final exchange, per
    the loss-free discipline).
    """

    def __init__(self, env: Env, name: str = "mpi", size: int | None = None) -> None:
        self.env = env
        self.name = name
        self.size = size if size is not None else env.nprocs
        self.rank = env.rank
        self._mbox: int | None = None
        self._out: dict[int, int] = {}
        self._pending: list[Message] = []
        self._seq = 0

    # -- lifecycle ---------------------------------------------------------------

    def connect(self):
        """Open this rank's mailbox (receive side)."""
        self._mbox = yield from self.env.open_receive(
            f"{self.name}.mbox.{self.rank}", FCFS
        )

    def close(self):
        """Close every circuit this communicator opened."""
        for cid in self._out.values():
            yield from self.env.close_send(cid)
        self._out.clear()
        if self._mbox is not None:
            yield from self.env.close_receive(self._mbox)
            self._mbox = None

    # -- point to point -------------------------------------------------------------

    def send(self, data: bytes, dest: int, tag: int = 0):
        """Asynchronous tagged send to rank ``dest``."""
        if not 0 <= dest < self.size:
            raise ValueError(f"dest {dest} outside communicator of {self.size}")
        if tag < 0:
            raise ValueError("tags must be >= 0 (negative values are wildcards)")
        if dest not in self._out:
            self._out[dest] = yield from self.env.open_send(
                f"{self.name}.mbox.{dest}"
            )
        envelope = _ENV.pack(self.rank, tag)
        yield from self.env.message_send(self._out[dest], envelope + bytes(data))
        return None

    def recv(self, source: int = ANY_SOURCE, tag: int = ANY_TAG):
        """Blocking tagged receive; returns a :class:`Message`.

        Non-matching messages encountered while waiting are buffered and
        delivered to later matching receives in arrival order.
        """
        if self._mbox is None:
            raise RuntimeError("communicator not connected")
        for i, msg in enumerate(self._pending):
            if _matches(msg, source, tag):
                return self._pending.pop(i)
        while True:
            raw = yield from self.env.message_receive(self._mbox)
            src, t = _ENV.unpack_from(raw)
            msg = Message(src, t, raw[_ENV.size:])
            if _matches(msg, source, tag):
                return msg
            self._pending.append(msg)

    def iprobe(self, source: int = ANY_SOURCE, tag: int = ANY_TAG):
        """Non-blocking check: is a matching message available?

        Like MPI_Iprobe built on ``check_receive``: drains the mailbox
        into the pending buffer without blocking, then pattern-matches.
        """
        if self._mbox is None:
            raise RuntimeError("communicator not connected")
        while (yield from self.env.check_receive(self._mbox)):
            raw = yield from self.env.message_receive(self._mbox)
            src, t = _ENV.unpack_from(raw)
            self._pending.append(Message(src, t, raw[_ENV.size:]))
        return any(_matches(m, source, tag) for m in self._pending)

    def sendrecv(self, data: bytes, peer: int, tag: int = 0):
        """Symmetric exchange with ``peer``; returns the peer's payload."""
        yield from self.send(data, peer, tag)
        msg = yield from self.recv(source=peer, tag=tag)
        return msg.data

    # -- collectives ---------------------------------------------------------------

    def _coll_name(self, op: str) -> str:
        self._seq += 1
        return f"{self.name}.{op}.{self._seq}"

    def barrier(self):
        """Block until every rank has entered the barrier."""
        yield from _barrier(self.env, self._coll_name("bar"), self.size)

    def bcast(self, data: bytes | None, root: int = 0):
        """Broadcast ``data`` from ``root``; returns it on every rank."""
        result = yield from _broadcast(
            self.env, self._coll_name("bc"), root, self.size, data
        )
        return result

    def gather(self, data: bytes, root: int = 0):
        """Gather one payload per rank at ``root`` (rank-ordered list)."""
        result = yield from _gather(
            self.env, self._coll_name("ga"), root, self.size, data
        )
        return result

    def scatter(self, parts, root: int = 0):
        """Scatter ``parts[i]`` from ``root`` to rank ``i``."""
        result = yield from _scatter(self.env, self._coll_name("sc"), root, parts)
        return result

    def allreduce(self, data: bytes, op):
        """Reduce with ``op`` and deliver the result to every rank."""
        result = yield from _allreduce(
            self.env, self._coll_name("ar"), self.size, data, op
        )
        return result


def _matches(msg: Message, source: int, tag: int) -> bool:
    return (source == ANY_SOURCE or msg.source == source) and (
        tag == ANY_TAG or msg.tag == tag
    )
