"""The paper's §5 future-work systems, implemented.

    "One method to improve the performance of the MPF system is to
    restrict the generality of message communication and process
    interaction. ... For instance, to support synchronous message
    passing, copying of data from a sending buffer to a linked message
    buffer and then to the receiving buffer is unnecessary; direct data
    transfer is possible.  Furthermore, if only one-to-one communication
    is implemented, all locking associated with message handling is
    removed.  Studies of simplified message passing systems for shared
    memory multiprocessors are currently underway."

* :mod:`~repro.ext.sync_channel` — synchronous (rendezvous) channels
  with direct single-copy transfer,
* :mod:`~repro.ext.o2o` — one-to-one lock-free SPSC ring channels,
* :mod:`~repro.ext.dvars` — distributed variables ([Debe86]) layered on
  LNVCs, the second programming paradigm §1 cites as motivation.
"""

from .dvars import DVarClient, dvar_server
from .mini_mpi import ANY_SOURCE, ANY_TAG, Comm, Message
from .o2o import O2ORing
from .shared_vars import CounterBarrier, LockedAccumulator, SharedDoubles
from .sync_channel import SyncChannels

__all__ = [
    "SyncChannels",
    "O2ORing",
    "DVarClient",
    "dvar_server",
    "SharedDoubles",
    "LockedAccumulator",
    "CounterBarrier",
    "Comm",
    "Message",
    "ANY_SOURCE",
    "ANY_TAG",
]
