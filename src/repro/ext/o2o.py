"""One-to-one lock-free channels (single-producer / single-consumer).

Paper §5: "if only one-to-one communication is implemented, all locking
associated with message handling is removed."

An :class:`O2ORing` is a fixed-capacity ring of fixed-size slots in the
extension area.  The producer owns the ``tail`` index and the consumer
owns the ``head`` index; neither is ever written by the other side, so
no lock protects the data path — the restriction to exactly one process
per side is what buys this.  Blocking is by bounded spinning with a
charged backoff (on the simulated machine the spin advances virtual
time; on real runtimes it is a plain busy-wait, as the lock-free C
implementation's would be).

All-zero bytes (head == tail == 0) are the valid empty state.

Ring layout::

    head u32 | tail u32 | slot 0 | slot 1 | ... | slot cap-1
    slot: length u32 | data[slot_bytes]

The ablation benchmark (``python -m repro.bench ablation_o2o``) compares
this against a one-sender/one-FCFS-receiver LNVC to quantify what the
general facility pays for its locks, blocks and allocator.
"""

from __future__ import annotations

from ..core.effects import Charge
from ..core.ops import MPFView
from ..core.work import Work

__all__ = ["O2ORing"]

#: Fixed instruction budget per operation (call + index arithmetic).
O2O_FIXED = 150
#: Instructions per byte copied (contiguous slot copy).
O2O_COPY_BYTE = 1
#: Instructions charged per empty/full spin check.
SPIN_BACKOFF = 60


class O2ORing:
    """Ring ``index`` of a family laid out in the extension area.

    ``capacity`` is the number of slots (one is kept empty to
    distinguish full from empty, so ``capacity - 1`` messages fit);
    ``slot_bytes`` is the maximum message size.  Every process
    constructs an identical ring descriptor; only one may send and only
    one may receive.
    """

    def __init__(
        self,
        view: MPFView,
        index: int,
        capacity: int = 16,
        slot_bytes: int = 64,
        byte_offset: int = 0,
    ) -> None:
        if capacity < 2 or slot_bytes < 1:
            raise ValueError("need capacity >= 2 and slot_bytes >= 1")
        self.view = view
        self.capacity = capacity
        self.slot_bytes = slot_bytes
        size = self.bytes_needed(capacity, slot_bytes)
        self.base = view.layout.ext_base + byte_offset + index * size
        if self.base + size > view.layout.ext_base + view.cfg.ext_bytes:
            raise ValueError(
                f"ring {index} needs ext bytes up to "
                f"{self.base + size - view.layout.ext_base}, "
                f"config reserves {view.cfg.ext_bytes}"
            )

    @staticmethod
    def bytes_needed(capacity: int, slot_bytes: int) -> int:
        """Extension bytes one ring occupies."""
        return 8 + capacity * (4 + slot_bytes)

    # -- addressing -----------------------------------------------------------

    @property
    def _head_off(self) -> int:
        return self.base

    @property
    def _tail_off(self) -> int:
        return self.base + 4

    def _slot_off(self, i: int) -> int:
        return self.base + 8 + i * (4 + self.slot_bytes)

    def size(self) -> int:
        """Messages currently queued (racy snapshot, diagnostics only)."""
        r = self.view.region
        return (r.u32(self._tail_off) - r.u32(self._head_off)) % self.capacity

    # -- primitives -------------------------------------------------------------

    def send(self, data: bytes):
        """Enqueue ``data``; spins while the ring is full.  Lock-free."""
        data = bytes(data)
        if len(data) > self.slot_bytes:
            raise ValueError(
                f"message of {len(data)} exceeds slot size {self.slot_bytes}"
            )
        r = self.view.region
        yield Charge(Work(instrs=O2O_FIXED, label="o2o-send"))
        while True:
            head = r.u32(self._head_off)
            tail = r.u32(self._tail_off)
            if (tail + 1) % self.capacity != head:
                break
            yield Charge(Work(instrs=SPIN_BACKOFF, label="o2o-spin"))
        slot = self._slot_off(tail)
        r.set_u32(slot, len(data))
        r.write(slot + 4, data)
        yield Charge(
            Work(
                instrs=len(data) * O2O_COPY_BYTE,
                copy_bytes=len(data),
                label="o2o-copy",
            )
        )
        # Publish last: the consumer only reads a slot after seeing the
        # advanced tail.
        r.set_u32(self._tail_off, (tail + 1) % self.capacity)
        return None

    def receive(self):
        """Dequeue the oldest message; spins while the ring is empty."""
        r = self.view.region
        yield Charge(Work(instrs=O2O_FIXED, label="o2o-recv"))
        while True:
            head = r.u32(self._head_off)
            tail = r.u32(self._tail_off)
            if head != tail:
                break
            yield Charge(Work(instrs=SPIN_BACKOFF, label="o2o-spin"))
        slot = self._slot_off(head)
        length = r.u32(slot)
        data = r.read(slot + 4, length)
        yield Charge(
            Work(
                instrs=length * O2O_COPY_BYTE,
                copy_bytes=length,
                label="o2o-copy",
            )
        )
        r.set_u32(self._head_off, (head + 1) % self.capacity)
        return data
