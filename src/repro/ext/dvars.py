"""Distributed variables over LNVCs ([Debe86], cited in paper §1).

    "a distributed variable exists in a name space that is global to the
    processes but accessible only by a message passing protocol with
    associated read and write operations. ... Like LNVC's, a distributed
    variable permits multiple readers and writers."

The paper cites distributed variables as one of the two models that
justify the LNVC design; this module closes the loop by implementing
them *on* LNVCs.  One process runs :func:`dvar_server` for a variable;
any process holds a :class:`DVarClient`:

* requests travel to the server on the FCFS circuit ``dv.<name>`` —
  FCFS gives multiple-writer serialization for free, and the circuit's
  FIFO defines the variable's total write order;
* each client receives replies on its private FCFS circuit
  ``dv.<name>.<pid>``.

Operations: ``read``, ``write`` (returns the new version), and
``fetch_add`` (atomic read-modify-write of an 8-byte little-endian
integer — the shared-counter idiom, impossible with plain reads and
writes).  Versions make the write order observable and testable.
"""

from __future__ import annotations

import struct

from ..core.protocol import FCFS
from ..patterns import tag, untag
from ..runtime.base import Env

__all__ = ["dvar_server", "DVarClient"]

_OP_READ, _OP_WRITE, _OP_FETCH_ADD, _OP_STOP = 1, 2, 3, 4
_REQ = struct.Struct("<B")
_VER = struct.Struct("<Q")
_I64 = struct.Struct("<q")


def dvar_server(env: Env, name: str, initial: bytes = b""):
    """Serve the distributed variable ``name`` until a STOP request.

    Returns ``(final_value, version)``.  Run as (part of) one process's
    body; clients may start before or after the server thanks to FCFS
    message holding.
    """
    req_id = yield from env.open_receive(f"dv.{name}", FCFS)
    value, version = bytes(initial), 0
    reply_ids: dict[int, int] = {}
    while True:
        pid, body = untag((yield from env.message_receive(req_id)))
        (op,) = _REQ.unpack_from(body)
        payload = body[_REQ.size :]
        if op == _OP_STOP:
            break
        if op == _OP_WRITE:
            value, version = payload, version + 1
        elif op == _OP_FETCH_ADD:
            old = _I64.unpack(value)[0] if len(value) == 8 else 0
            value = _I64.pack(old + _I64.unpack(payload)[0])
            version += 1
            payload_out = _I64.pack(old)
        if pid not in reply_ids:
            reply_ids[pid] = yield from env.open_send(f"dv.{name}.{pid}")
        if op == _OP_FETCH_ADD:
            reply = _VER.pack(version) + payload_out
        else:
            reply = _VER.pack(version) + value
        yield from env.message_send(reply_ids[pid], reply)
    for cid in reply_ids.values():
        yield from env.close_send(cid)
    yield from env.close_receive(req_id)
    return value, version


class DVarClient:
    """Client handle for one distributed variable.

    All methods are generators (``yield from``), like every MPF
    operation.  Call :meth:`connect` once and :meth:`close` when done.
    """

    def __init__(self, env: Env, name: str) -> None:
        self.env = env
        self.name = name
        self._req: int | None = None
        self._rep: int | None = None

    def connect(self):
        """Open the request and private reply circuits."""
        env = self.env
        # Reply circuit first: the server only opens its send side after
        # our first request, so our receive connection anchors it.
        self._rep = yield from env.open_receive(
            f"dv.{self.name}.{env.rank}", FCFS
        )
        self._req = yield from env.open_send(f"dv.{self.name}")

    def _rpc(self, op: int, payload: bytes):
        env = self.env
        body = tag(env.rank, _REQ.pack(op) + payload)
        yield from env.message_send(self._req, body)
        reply = yield from env.message_receive(self._rep)
        version = _VER.unpack_from(reply)[0]
        return version, reply[_VER.size :]

    def read(self):
        """Return ``(version, value)``."""
        result = yield from self._rpc(_OP_READ, b"")
        return result

    def write(self, value: bytes):
        """Set the value; returns the new version number."""
        version, _ = yield from self._rpc(_OP_WRITE, bytes(value))
        return version

    def fetch_add(self, delta: int):
        """Atomically add ``delta`` to an integer variable; returns the
        previous value."""
        _, old = yield from self._rpc(_OP_FETCH_ADD, _I64.pack(delta))
        return _I64.unpack(old)[0]

    def stop_server(self):
        """Ask the server to shut down (any client may)."""
        yield from self.env.message_send(
            self._req, tag(self.env.rank, _REQ.pack(_OP_STOP))
        )

    def close(self):
        """Close both circuits."""
        yield from self.env.close_send(self._req)
        yield from self.env.close_receive(self._rep)
        self._req = self._rep = None
