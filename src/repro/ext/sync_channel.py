"""Synchronous (rendezvous) channels with direct single-copy transfer.

Paper §5: "to support synchronous message passing, copying of data from
a sending buffer to a linked message buffer and then to the receiving
buffer is unnecessary; direct data transfer is possible."

A :class:`SyncChannels` table lives in the segment's extension area (see
:class:`~repro.core.layout.MPFConfig` ``ext_slots``/``ext_bytes``).  Each
channel is one contiguous buffer plus a four-state word; every transition
is owned by exactly one side, so a fast back-to-back rendezvous can never
overwrite a state the other side still needs to observe:

    IDLE ──receiver──► RECV_WAIT ──sender──► DATA_READY
      ▲                                          │
      └──sender── PICKED ◄──receiver─────────────┘

The sender blocks until a receiver is waiting and again until the
receiver has taken the data (true rendezvous: ``send`` returning means
the message *was received*, the opposite of MPF's asynchronous
``message_send``).  Because the transfer is one contiguous copy with no
block-list manipulation, the per-byte cost is an order of magnitude
below the general facility's — the ablation benchmark
(``python -m repro.bench ablation_sync``) quantifies exactly the saving
the paper predicts.

Any number of processes may use one channel; the channel lock serializes
them into pairwise rendezvous.  All-zero bytes are the valid empty
state, so a freshly formatted segment needs no extra setup.
"""

from __future__ import annotations

from ..core.effects import Acquire, Charge, Release, WaitOn, Wake
from ..core.ops import MPFView
from ..core.protocol import FIRST_LNVC_LOCK
from ..core.work import Work

__all__ = ["SyncChannels"]

#: Channel states.
_IDLE, _RECV_WAIT, _DATA_READY, _PICKED = 0, 1, 2, 3

#: Record header: state u32, length u32, sender u32.
_HDR_BYTES = 12

#: Fixed instruction budget per rendezvous side (call + state machine).
SYNC_FIXED = 800
#: Instructions per byte of the single direct copy (contiguous memcpy).
DIRECT_COPY_BYTE = 1


class SyncChannels:
    """A table of ``count`` rendezvous channels of ``buf_bytes`` each.

    Channels use extension slots ``first_slot .. first_slot + count - 1``
    and extension bytes ``byte_offset ..``; the config must reserve them::

        cfg = MPFConfig(ext_slots=2, ext_bytes=SyncChannels.bytes_needed(2, 1024))

    Every process constructs an identical ``SyncChannels`` over the
    shared view (the table itself holds no local state).
    """

    def __init__(
        self,
        view: MPFView,
        count: int,
        buf_bytes: int,
        first_slot: int = 0,
        byte_offset: int = 0,
    ) -> None:
        cfg = view.cfg
        if count < 1 or buf_bytes < 1:
            raise ValueError("need count >= 1 and buf_bytes >= 1")
        if first_slot + count > cfg.ext_slots:
            raise ValueError(
                f"channels need {first_slot + count} ext_slots, "
                f"config reserves {cfg.ext_slots}"
            )
        need = byte_offset + self.bytes_needed(count, buf_bytes)
        if need > cfg.ext_bytes:
            raise ValueError(
                f"channels need {need} ext_bytes, config reserves {cfg.ext_bytes}"
            )
        self.view = view
        self.count = count
        self.buf_bytes = buf_bytes
        self.first_slot = first_slot
        self.base = view.layout.ext_base + byte_offset

    @staticmethod
    def bytes_needed(count: int, buf_bytes: int) -> int:
        """Extension bytes one table occupies."""
        return count * (_HDR_BYTES + buf_bytes)

    # -- addressing -----------------------------------------------------------

    def _rec(self, ch: int) -> int:
        if not 0 <= ch < self.count:
            raise IndexError(f"channel {ch} outside table of {self.count}")
        return self.base + ch * (_HDR_BYTES + self.buf_bytes)

    def _slot(self, ch: int) -> int:
        return self.view.cfg.max_lnvcs + self.first_slot + ch

    def _lock(self, ch: int) -> int:
        return FIRST_LNVC_LOCK + self._slot(ch)

    # -- primitives (effect generators, like the core ops) ---------------------

    def send(self, ch: int, pid: int, data: bytes):
        """Rendezvous send: returns only after a receiver took ``data``."""
        data = bytes(data)
        if len(data) > self.buf_bytes:
            raise ValueError(
                f"message of {len(data)} exceeds channel buffer {self.buf_bytes}"
            )
        r = self.view.region
        rec, slot, lock = self._rec(ch), self._slot(ch), self._lock(ch)
        yield Charge(Work(instrs=SYNC_FIXED, label="sync-send"))
        yield Acquire(lock)
        while r.u32(rec) != _RECV_WAIT:
            yield WaitOn(slot, lock)
        # Direct transfer: one contiguous copy, no blocks, no allocator.
        r.set_u32(rec + 4, len(data))
        r.set_u32(rec + 8, pid)
        r.write(rec + _HDR_BYTES, data)
        r.set_u32(rec, _DATA_READY)
        yield Charge(
            Work(
                instrs=len(data) * DIRECT_COPY_BYTE,
                copy_bytes=len(data),
                label="sync-copy",
            )
        )
        yield Release(lock)
        yield Wake(slot)
        # Synchronous completion: wait until the receiver consumed it,
        # then retire the channel to IDLE ourselves — only the sender may
        # perform PICKED -> IDLE, so the next rendezvous cannot start
        # before this one is fully observed by both sides.
        yield Acquire(lock)
        while r.u32(rec) != _PICKED:
            yield WaitOn(slot, lock)
        r.set_u32(rec, _IDLE)
        yield Release(lock)
        yield Wake(slot)
        return None

    def receive(self, ch: int, pid: int):
        """Rendezvous receive: returns ``(sender_pid, data)``."""
        r = self.view.region
        rec, slot, lock = self._rec(ch), self._slot(ch), self._lock(ch)
        yield Charge(Work(instrs=SYNC_FIXED, label="sync-recv"))
        yield Acquire(lock)
        # Wait for the channel to be free of any other rendezvous.
        while r.u32(rec) != _IDLE:
            yield WaitOn(slot, lock)
        r.set_u32(rec, _RECV_WAIT)
        yield Release(lock)
        yield Wake(slot)  # a blocked sender may now proceed
        yield Acquire(lock)
        while r.u32(rec) != _DATA_READY:
            yield WaitOn(slot, lock)
        length = r.u32(rec + 4)
        sender = r.u32(rec + 8)
        data = r.read(rec + _HDR_BYTES, length)
        r.set_u32(rec, _PICKED)
        yield Charge(Work(instrs=100, label="sync-pickup"))
        yield Release(lock)
        yield Wake(slot)  # release the sender; it retires PICKED -> IDLE
        return sender, data
