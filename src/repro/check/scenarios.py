"""Adversarial MPF programs for the schedule explorer.

Every scenario is deliberately *schedule-robust*: under the paper's
semantics a circuit is deleted (and its unread messages discarded) when
its last connection closes, so a carelessly written concurrent program
can deadlock legitimately under an adversarial schedule — which would
drown the checker in false alarms.  The scenarios avoid that with a
small **gate protocol** built from MPF itself:

* every participant that must be ready before traffic starts opens its
  receive connections first, then sends one *ready token* on a ``gate``
  circuit — and holds its gate send connection open until it finishes,
  so an in-flight token can never be discarded by circuit deletion;
* the *lead* process (rank 0) collects the tokens, then releases the
  others through per-process FCFS ``go`` messages (FCFS because a
  message sent into a circuit with no receivers is preserved for a
  future FCFS joiner — BROADCAST deliveries would be lost if the
  schedule ran the lead first).

With the gate in place, every interleaving of a clean scenario must
terminate with every oracle satisfied; any deadlock, invariant
violation, or oracle miss the explorer finds is a real bug (or a real
injected fault).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from ..core.layout import MPFConfig
from ..core.errors import OutOfMessageMemoryError
from ..core.protocol import Protocol
from ..runtime.base import Env, Worker
from .faults import drop_wake, unlocked_send
from .invariants import check_broadcast_delivery, check_fcfs_delivery

__all__ = ["Scenario", "SCENARIOS"]


@dataclass(frozen=True)
class Scenario:
    """One checkable MPF program: workers, sizing, oracle, faults."""

    name: str
    doc: str
    cfg: MPFConfig
    #: ``build(fault)`` returns the worker list; ``fault`` is ``None`` or
    #: a member of :attr:`faults`.
    build: Callable[[str | None], list[Worker]]
    #: ``oracle(results)`` returns violation strings (empty = clean);
    #: ``results`` maps process name to worker return value.
    oracle: Callable[[dict], list[str]]
    #: Fault names this scenario knows how to inject.
    faults: tuple[str, ...] = ()
    #: Whether a clean run must drain the segment completely.
    expect_empty: bool = True


def _maybe_torn(env: Env, lid: int, payload: bytes, fault: str | None):
    """Route one send through the torn-link mutant when injected."""
    if fault == "torn-send":
        return unlocked_send(env.view, env.rank, lid, payload)
    return env.message_send(lid, payload)


# ---------------------------------------------------------------------------
# fcfs-race: racing FCFS receivers against two senders
# ---------------------------------------------------------------------------

_RACE_SENDERS = 2
_RACE_RECEIVERS = 3
_RACE_MSGS = 4  # per sender
_RACE_QUOTA = (3, 3, 2)  # per receiver; sums to _RACE_SENDERS * _RACE_MSGS


def _race_build(fault: str | None) -> list[Worker]:
    def lead(env: Env):  # rank 0: sender + gate collector
        data = yield from env.open_send("data")
        gate = yield from env.open_receive("gate", Protocol.FCFS)
        for _ in range(_RACE_RECEIVERS + (_RACE_SENDERS - 1)):
            yield from env.message_receive(gate)
        go = yield from env.open_send("go")
        for _ in range(_RACE_SENDERS - 1):
            yield from env.message_send(go, b"go")
        for i in range(_RACE_MSGS):
            yield from _maybe_torn(env, data, bytes([env.rank, i]), fault)
        yield from env.close_receive(gate)
        yield from env.close_send(data)
        yield from env.close_send(go)
        return "lead"

    def sender(env: Env):  # rank 1
        data = yield from env.open_send("data")
        go = yield from env.open_receive("go", Protocol.FCFS)
        gate = yield from env.open_send("gate")
        yield from env.message_send(gate, b"ready")
        yield from env.message_receive(go)
        for i in range(_RACE_MSGS):
            yield from _maybe_torn(env, data, bytes([env.rank, i]), fault)
        yield from env.close_receive(go)
        yield from env.close_send(data)
        yield from env.close_send(gate)
        return "sender"

    def receiver(quota: int) -> Worker:
        def body(env: Env):
            data = yield from env.open_receive("data", Protocol.FCFS)
            gate = yield from env.open_send("gate")
            yield from env.message_send(gate, b"ready")
            got = []
            for _ in range(quota):
                msg = yield from env.message_receive(data)
                got.append(bytes(msg))
            yield from env.close_receive(data)
            yield from env.close_send(gate)
            return got

        return body

    return [lead, sender] + [receiver(q) for q in _RACE_QUOTA]


def _race_oracle(results: dict) -> list[str]:
    sent = [bytes([s, i]) for s in range(_RACE_SENDERS) for i in range(_RACE_MSGS)]
    received = [results[f"p{2 + k}"] for k in range(_RACE_RECEIVERS)]
    return check_fcfs_delivery(sent, received, senders=range(_RACE_SENDERS))


# ---------------------------------------------------------------------------
# connect-churn: open/close storms around a long-lived receiver
# ---------------------------------------------------------------------------

_CHURN_PROCS = 2
_CHURN_ROUNDS = 3
_CHURN_MSGS = 2  # per round


def _churn_build(fault: str | None) -> list[Worker]:
    total = _CHURN_PROCS * _CHURN_ROUNDS * _CHURN_MSGS

    def receiver(env: Env):  # rank 0: stable receiver, holds the circuit open
        data = yield from env.open_receive("data", Protocol.FCFS)
        go = yield from env.open_send("go")
        for _ in range(_CHURN_PROCS):
            yield from env.message_send(go, b"go")
        got = []
        for _ in range(total):
            msg = yield from env.message_receive(data)
            got.append(bytes(msg))
        yield from env.close_receive(data)
        yield from env.close_send(go)
        return got

    def churner(env: Env):  # ranks 1..: connect, send, disconnect, repeat
        go = yield from env.open_receive("go", Protocol.FCFS)
        yield from env.message_receive(go)
        yield from env.close_receive(go)
        for r in range(_CHURN_ROUNDS):
            data = yield from env.open_send("data")
            for i in range(_CHURN_MSGS):
                payload = bytes([env.rank, r, i])
                yield from _maybe_torn(env, data, payload, fault)
            yield from env.close_send(data)
        return _CHURN_ROUNDS

    return [receiver] + [churner] * _CHURN_PROCS


def _churn_oracle(results: dict) -> list[str]:
    out = []
    got = sorted(results["p0"])
    want = sorted(
        bytes([rank, r, i])
        for rank in range(1, 1 + _CHURN_PROCS)
        for r in range(_CHURN_ROUNDS)
        for i in range(_CHURN_MSGS)
    )
    if got != want:
        out.append(
            f"stable receiver saw {len(got)} payloads, expected the exact "
            f"multiset of {len(want)} sent"
        )
    return out


# ---------------------------------------------------------------------------
# freelist-churn: pool exhaustion, back off, retry
# ---------------------------------------------------------------------------

_POOL_SENDERS = 2
_POOL_MSGS = 5  # per sender
#: The back-off (``env.compute``) is free on the thread runtime, so a
#: sender can spin through hundreds of attempts inside one GIL slice
#: before the receiver is scheduled to drain; the cap must be generous
#: enough to ride that out.  It only exists as a last-ditch hang guard —
#: on the simulator a receiver-starving schedule trips the engine's
#: ``max_events`` bound (reported as livelock) long before the cap.
_POOL_RETRY_CAP = 100_000


def _pool_build(fault: str | None) -> list[Worker]:
    total = _POOL_SENDERS * _POOL_MSGS

    def receiver(env: Env):  # rank 0: drains, releasing pool capacity
        data = yield from env.open_receive("data", Protocol.FCFS)
        go = yield from env.open_send("go")
        for _ in range(_POOL_SENDERS):
            yield from env.message_send(go, b"g")
        got = 0
        for _ in range(total):
            yield from env.message_receive(data)
            got += 1
        yield from env.close_receive(data)
        yield from env.close_send(go)
        return got

    def sender(env: Env):
        go = yield from env.open_receive("go", Protocol.FCFS)
        yield from env.message_receive(go)
        yield from env.close_receive(go)
        data = yield from env.open_send("data")
        retries = 0
        for i in range(_POOL_MSGS):
            for attempt in range(_POOL_RETRY_CAP):
                try:
                    yield from env.message_send(data, bytes([env.rank, i]))
                    break
                except OutOfMessageMemoryError:
                    retries += 1
                    yield from env.compute(instrs=10)  # back off, then retry
            else:
                raise RuntimeError("retry cap exceeded (livelocked schedule?)")
        yield from env.close_send(data)
        return retries

    return [receiver] + [sender] * _POOL_SENDERS


def _pool_oracle(results: dict) -> list[str]:
    out = []
    if results["p0"] != _POOL_SENDERS * _POOL_MSGS:
        out.append(f"receiver drained {results['p0']} messages, "
                   f"expected {_POOL_SENDERS * _POOL_MSGS}")
    return out


# ---------------------------------------------------------------------------
# shard-steal: sharded pool, steal-on-empty racing concurrent frees
# ---------------------------------------------------------------------------

_STEAL_SENDERS = 2
_STEAL_MSGS = 4  # per sender
#: Payload sized to span several blocks, so one allocation commits
#: blocks from more than one shard whenever a steal happens mid-pop.
_STEAL_PAYLOAD = 30


def _steal_build(fault: str | None) -> list[Worker]:
    total = _STEAL_SENDERS * _STEAL_MSGS

    def receiver(env: Env):  # rank 0: drains, freeing blocks to home shards
        data = yield from env.open_receive("data", Protocol.FCFS)
        go = yield from env.open_send("go")
        for _ in range(_STEAL_SENDERS):
            yield from env.message_send(go, b"g")
        got = []
        for _ in range(total):
            msg = yield from env.message_receive(data)
            got.append(bytes(msg[:2]))
        yield from env.close_receive(data)
        yield from env.close_send(go)
        return got

    # Ranks 1 and 2 live on different home shards (pid % 2), so each
    # sender first drains its own shard, then steals from the other —
    # racing both the peer's allocations and the receiver's frees,
    # which always land back on a block's *home* shard.
    def sender(env: Env):
        go = yield from env.open_receive("go", Protocol.FCFS)
        yield from env.message_receive(go)
        yield from env.close_receive(go)
        data = yield from env.open_send("data")
        pad = b"\0" * (_STEAL_PAYLOAD - 2)
        retries = 0
        for i in range(_STEAL_MSGS):
            for _ in range(_POOL_RETRY_CAP):
                try:
                    yield from env.message_send(
                        data, bytes([env.rank, i]) + pad)
                    break
                except OutOfMessageMemoryError:
                    retries += 1
                    yield from env.compute(instrs=10)
            else:
                raise RuntimeError("retry cap exceeded (livelocked schedule?)")
        yield from env.close_send(data)
        return retries

    return [receiver] + [sender] * _STEAL_SENDERS


def _steal_oracle(results: dict) -> list[str]:
    out = []
    got = sorted(results["p0"])
    want = sorted(
        bytes([rank, i])
        for rank in range(1, 1 + _STEAL_SENDERS)
        for i in range(_STEAL_MSGS)
    )
    if got != want:
        out.append(
            f"receiver saw {len(got)} payload prefixes, expected the exact "
            f"multiset of {len(want)} sent across both shards"
        )
    return out


# ---------------------------------------------------------------------------
# mixed-protocol: FCFS and BROADCAST receivers on one circuit
# ---------------------------------------------------------------------------

_MIX_MSGS = 4
_MIX_FCFS = (2, 2)  # per-receiver quotas; sum to _MIX_MSGS
_MIX_BCAST = 2


def _mix_build(fault: str | None) -> list[Worker]:
    n_ready = len(_MIX_FCFS) + _MIX_BCAST

    def sender(env: Env):  # rank 0: lead
        data = yield from env.open_send("data")
        gate = yield from env.open_receive("gate", Protocol.FCFS)
        for _ in range(n_ready):
            yield from env.message_receive(gate)
        body = sender_body(env, data)
        if fault == "drop-wake":
            body = drop_wake(body)
        yield from body
        yield from env.close_receive(gate)
        yield from env.close_send(data)
        return "sender"

    def sender_body(env: Env, data: int):
        for i in range(_MIX_MSGS):
            yield from env.message_send(data, b"m%d" % i)

    def fcfs(quota: int) -> Worker:
        def body(env: Env):
            data = yield from env.open_receive("data", Protocol.FCFS)
            gate = yield from env.open_send("gate")
            yield from env.message_send(gate, b"ready")
            got = []
            for _ in range(quota):
                msg = yield from env.message_receive(data)
                got.append(bytes(msg))
            yield from env.close_receive(data)
            yield from env.close_send(gate)
            return got

        return body

    def bcast(env: Env):
        data = yield from env.open_receive("data", Protocol.BROADCAST)
        gate = yield from env.open_send("gate")
        yield from env.message_send(gate, b"ready")
        got = []
        for _ in range(_MIX_MSGS):
            msg = yield from env.message_receive(data)
            got.append(bytes(msg))
        yield from env.close_receive(data)
        yield from env.close_send(gate)
        return got

    return [sender] + [fcfs(q) for q in _MIX_FCFS] + [bcast] * _MIX_BCAST


def _mix_oracle(results: dict) -> list[str]:
    sent = [b"m%d" % i for i in range(_MIX_MSGS)]
    fcfs_got = [results[f"p{1 + k}"] for k in range(len(_MIX_FCFS))]
    out = check_fcfs_delivery(sent, fcfs_got)
    first_bcast = 1 + len(_MIX_FCFS)
    for k in range(_MIX_BCAST):
        out += check_broadcast_delivery(sent, results[f"p{first_bcast + k}"],
                                        who=f"p{first_bcast + k}")
    return out


# ---------------------------------------------------------------------------
# ring-wrap: slot reuse and generation aliasing on a tiny ring
# ---------------------------------------------------------------------------

_WRAP_SLOTS = 3
_WRAP_MSGS = 2 * _WRAP_SLOTS + 1  # every slot is reused at least twice
_WRAP_BCAST = 2


def _wrap_build(fault: str | None) -> list[Worker]:
    """Mixed receivers drain a ring small enough to wrap mid-run.

    With {_WRAP_SLOTS} slots and {_WRAP_MSGS} messages, every slot is
    claimed, retired and re-claimed under exploration, so the checker
    covers the cases a big ring never reaches: a BROADCAST reader's
    lock-free fast path observing a *stale* commit word (old generation:
    ``seq != cursor+1`` must fall through to the parking slow path, never
    deliver the old payload), the retire check with both a busy pin
    (FCFS) and pending bits (BROADCAST) on the same slot, and a sender
    parked on a full ring whose wake depends on the retire-gating rule
    (wake only when the retired slot is the one ``next_write`` points
    at).
    """
    n_ready = 1 + _WRAP_BCAST

    def sender(env: Env):  # rank 0: lead
        data = yield from env.open_send("data")
        gate = yield from env.open_receive("gate", Protocol.FCFS)
        for _ in range(n_ready):
            yield from env.message_receive(gate)
        body = sender_body(env, data)
        if fault == "drop-wake":
            body = drop_wake(body)
        yield from body
        yield from env.close_receive(gate)
        yield from env.close_send(data)
        return "sender"

    def sender_body(env: Env, data: int):
        for i in range(_WRAP_MSGS):
            yield from env.message_send(data, b"w%d" % i)

    def fcfs(env: Env):
        data = yield from env.open_receive("data", Protocol.FCFS)
        gate = yield from env.open_send("gate")
        yield from env.message_send(gate, b"ready")
        got = []
        for _ in range(_WRAP_MSGS):
            msg = yield from env.message_receive(data)
            got.append(bytes(msg))
        yield from env.close_receive(data)
        yield from env.close_send(gate)
        return got

    def bcast(env: Env):
        data = yield from env.open_receive("data", Protocol.BROADCAST)
        gate = yield from env.open_send("gate")
        yield from env.message_send(gate, b"ready")
        got = []
        for _ in range(_WRAP_MSGS):
            msg = yield from env.message_receive(data)
            got.append(bytes(msg))
        yield from env.close_receive(data)
        yield from env.close_send(gate)
        return got

    return [sender, fcfs] + [bcast] * _WRAP_BCAST


def _wrap_oracle(results: dict) -> list[str]:
    sent = [b"w%d" % i for i in range(_WRAP_MSGS)]
    out = check_fcfs_delivery(sent, [results["p1"]])
    for k in range(_WRAP_BCAST):
        out += check_broadcast_delivery(sent, results[f"p{2 + k}"],
                                        who=f"p{2 + k}")
    return out


# ---------------------------------------------------------------------------
# registry
# ---------------------------------------------------------------------------

SCENARIOS: dict[str, Scenario] = {
    s.name: s
    for s in (
        Scenario(
            name="fcfs-race",
            doc=f"{_RACE_SENDERS} senders race {_RACE_RECEIVERS} FCFS "
                "receivers on one circuit (exactly-once, FIFO per sender)",
            cfg=MPFConfig(max_lnvcs=4, max_processes=8, max_messages=32,
                          message_pool_bytes=1 << 12),
            build=_race_build,
            oracle=_race_oracle,
            faults=("torn-send",),
        ),
        Scenario(
            name="connect-churn",
            doc=f"{_CHURN_PROCS} senders churn open/send/close for "
                f"{_CHURN_ROUNDS} rounds against one stable receiver",
            cfg=MPFConfig(max_lnvcs=4, max_processes=8, max_messages=32,
                          message_pool_bytes=1 << 12),
            build=_churn_build,
            oracle=_churn_oracle,
            faults=("torn-send",),
        ),
        Scenario(
            name="freelist-churn",
            doc="senders exhaust a 3-header message pool, back off on "
                "OutOfMessageMemoryError and retry while a receiver drains",
            cfg=MPFConfig(max_lnvcs=4, max_processes=8, max_messages=3,
                          message_pool_bytes=1 << 10),
            build=_pool_build,
            oracle=_pool_oracle,
            faults=(),
        ),
        Scenario(
            name="shard-steal",
            doc=f"{_STEAL_SENDERS} senders on different home shards of a "
                "2-shard free list exhaust their own shard and steal from "
                "the other, racing the receiver's concurrent frees "
                "(cross-shard conservation, steal-then-rollback)",
            # 14 blocks across 2 shards of 7; 3-block messages, so the
            # pool holds 4 in flight and every sender must steal.
            cfg=MPFConfig(max_lnvcs=4, max_processes=8, max_messages=16,
                          message_pool_bytes=196, freelist_shards=2),
            build=_steal_build,
            oracle=_steal_oracle,
            faults=(),
        ),
        Scenario(
            name="ring-wrap",
            doc=f"ring transport: {_WRAP_MSGS} messages through a "
                f"{_WRAP_SLOTS}-slot ring with 1 FCFS + {_WRAP_BCAST} "
                "BROADCAST receivers (slot reuse, generation aliasing, "
                "full-ring backpressure)",
            cfg=MPFConfig(max_lnvcs=4, max_processes=8, max_messages=32,
                          message_pool_bytes=1 << 12, transport="ring",
                          ring_slots=_WRAP_SLOTS, ring_slot_bytes=16),
            build=_wrap_build,
            oracle=_wrap_oracle,
            faults=("drop-wake",),
        ),
        Scenario(
            name="mixed-protocol",
            doc=f"{len(_MIX_FCFS)} FCFS and {_MIX_BCAST} BROADCAST receivers "
                "share a circuit (exactly-once vs every-receiver delivery)",
            cfg=MPFConfig(max_lnvcs=4, max_processes=8, max_messages=32,
                          message_pool_bytes=1 << 12),
            build=_mix_build,
            oracle=_mix_oracle,
            faults=("drop-wake",),
        ),
    )
}
