"""Intentionally injected bugs, for proving the checker detects them.

A model checker that has never seen a failure proves nothing: the CI
smoke job and the acceptance tests run one *mutated* operation per
scenario and require the checker to flag it.  Two mutants cover the two
failure families a schedule explorer can surface:

* :func:`unlocked_send` — a clone of :func:`repro.core.ops.message_send`
  whose FIFO-link phase skips the circuit lock **and** yields between
  reading the tail and writing the link, opening a torn-update window.
  Two racing sends through the window orphan a message (allocated and
  counted, but unreachable from the FIFO) — exactly the corruption the
  per-circuit lock exists to prevent, caught by the structural
  invariants of :mod:`repro.core.inspect`.
* :func:`drop_wake` — an effect filter that swallows ``Wake`` effects,
  simulating a missed ``notify``.  Receivers already asleep never learn
  a message arrived: a *lost wakeup*, caught by
  :func:`repro.check.deadlock.analyze_stall` as sleepers on a circuit
  with deliverable traffic.

Both are deliberately broken; nothing outside :mod:`repro.check` and its
tests may import them.
"""

from __future__ import annotations

from typing import Generator

from ..core.effects import S_WAKE, Acquire, Charge, FusedSection, Release, Wake
from ..core.freelist import fl_alloc
from ..core.ops import (  # noqa: F401  (private ops internals, on purpose)
    _H_FREE_BLK,
    _H_FREE_MSG,
    _H_LIVE_BLOCKS,
    _H_LIVE_BYTES,
    _H_LIVE_MSGS,
    _L_FCFS_HEAD,
    _L_FIFO_HEAD,
    _L_FIFO_TAIL,
    _L_GEN,
    _L_HWM_NMSGS,
    _L_N_BCAST,
    _L_N_FCFS,
    _L_NMSGS,
    _L_SEQ,
    _SLOT_MASK,
    MPFView,
    OpGen,
)
from ..core.ops import (
    _F_FCFS_EXPECTED,
    _F_HAD_RECEIVERS,
    _M_BCAST_PENDING,
    _M_BUSY,
    _M_FIRST_BLK,
    _M_FLAGS,
    _M_LENGTH,
    _M_NBLOCKS,
    _M_NEXT_MSG,
    _M_SENDER,
    _M_SEQNO,
)
from ..core.protocol import ALLOC_LOCK, NIL
from ..core.structs import BLK_NEXT
from ..core.work import Work

__all__ = ["FAULTS", "drop_wake", "unlocked_send"]


def drop_wake(gen: Generator) -> Generator:
    """Forward every effect of ``gen`` except ``Wake`` (swallowed).

    Models a broken implementation that releases the circuit lock but
    forgets to notify the wait channel — the classic lost-wakeup bug.
    Fused sections have their ``S_WAKE`` steps stripped the same way;
    the fusion convention (wake steps are always static members of the
    yielded tuple, never spliced in later) makes them visible here.
    """
    value = None
    try:
        while True:
            effect = gen.send(value)
            if isinstance(effect, Wake):
                value = None  # swallowed: the injected bug
            elif isinstance(effect, FusedSection) and any(
                s[0] == S_WAKE for s in effect.steps
            ):
                value = yield FusedSection(tuple(
                    s for s in effect.steps if s[0] != S_WAKE
                ))
            else:
                value = yield effect
    except StopIteration as stop:
        return stop.value


def unlocked_send(view: MPFView, pid: int, lnvc_id: int, data: bytes) -> OpGen:
    """``message_send`` with the circuit lock removed and a torn window.

    Allocation (phase 1) and block fill (phase 2) are kept correct; the
    FIFO-link phase runs with **no** circuit lock and yields to the
    scheduler between reading ``fifo_tail`` and linking.  Two instances
    racing through that window both read the same tail; the second link
    overwrites the first, leaving a message counted in ``live_msgs`` and
    ``nmsgs`` but unreachable from the FIFO.
    """
    data = bytes(data)
    r = view.region
    u32 = r.u32
    set_u32 = r.set_u32
    lay = view.layout
    bs = view.cfg.block_size
    length = len(data)
    nblk = (length + bs - 1) // bs
    # Torn sends still report to the causal tracer: a failure's message
    # history must include the very sends that corrupt the segment.
    causal = view.causal
    t_entry = causal.clock() if causal is not None else 0.0

    # Phase 1: allocation, correctly under the allocator lock.
    yield Acquire(ALLOC_LOCK)
    hdr = fl_alloc(r, _H_FREE_MSG)
    assert hdr != NIL, "fault scenarios must size the pool generously"
    blocks: list[int] = []
    blk = u32(_H_FREE_BLK)
    while len(blocks) < nblk and blk != NIL:
        blocks.append(blk)
        blk = u32(blk + BLK_NEXT)
    assert len(blocks) == nblk, "fault scenarios must size the pool generously"
    set_u32(_H_FREE_BLK, blk)
    r.add_u32(_H_LIVE_MSGS, 1)
    r.add_u32(_H_LIVE_BLOCKS, nblk)
    r.add_u32(_H_LIVE_BYTES, length)
    yield Release(ALLOC_LOCK)

    # Phase 2: fill the private chain (correct: blocks are still private).
    last = nblk - 1
    for i, b in enumerate(blocks):
        set_u32(b + BLK_NEXT, blocks[i + 1] if i < last else NIL)
        r.write(b + 4, data[i * bs : min((i + 1) * bs, length)])

    # Phase 3: link at the FIFO tail -- THE BUG: no circuit lock, and a
    # scheduler yield splits the read-tail / write-link critical section.
    slot = lnvc_id & _SLOT_MASK
    base = lay.lnvc_off(slot)
    n_fcfs = u32(base + _L_N_FCFS)
    n_bcast = u32(base + _L_N_BCAST)
    flags = 0
    if n_fcfs:
        flags |= _F_FCFS_EXPECTED
    if n_fcfs or n_bcast:
        flags |= _F_HAD_RECEIVERS
    seqno = u32(base + _L_SEQ)
    tail = u32(base + _L_FIFO_TAIL)
    yield Charge(Work(instrs=1, label="fault-torn-window"))
    set_u32(base + _L_SEQ, seqno + 1)
    set_u32(hdr + _M_LENGTH, length)
    set_u32(hdr + _M_NBLOCKS, nblk)
    set_u32(hdr + _M_FIRST_BLK, blocks[0] if blocks else NIL)
    set_u32(hdr + _M_NEXT_MSG, NIL)
    set_u32(hdr + _M_BCAST_PENDING, n_bcast)
    set_u32(hdr + _M_BUSY, 0)
    set_u32(hdr + _M_FLAGS, flags)
    set_u32(hdr + _M_SEQNO, seqno)
    set_u32(hdr + _M_SENDER, pid)
    if tail == NIL:
        set_u32(base + _L_FIFO_HEAD, hdr)
    else:
        set_u32(tail + _M_NEXT_MSG, hdr)
    set_u32(base + _L_FIFO_TAIL, hdr)
    depth = r.add_u32(base + _L_NMSGS, 1)
    if depth > u32(base + _L_HWM_NMSGS):
        set_u32(base + _L_HWM_NMSGS, depth)
    if u32(base + _L_FCFS_HEAD) == NIL:
        set_u32(base + _L_FCFS_HEAD, hdr)
    if causal is not None:
        t = causal.clock()
        causal.on_send(pid, slot, u32(base + _L_GEN), seqno, length, nblk,
                       depth, t_entry, t, t)
    yield Wake(slot)
    return seqno


#: Injectable faults by CLI name.  ``torn-send`` reroutes a scenario's
#: sends through :func:`unlocked_send`; ``drop-wake`` wraps its senders'
#: whole generator in :func:`drop_wake`.
FAULTS = ("torn-send", "drop-wake")
