"""Record, replay, and minimize failing schedules.

A controlled run is fully determined by its scenario, its injected
fault, and the sequence of candidate indices chosen at each scheduling
decision.  That sequence *is* the bug report: persisting it
(:func:`make_trace` + :func:`repro.obs.write_decision_trace`) turns
"fails one run in two hundred" into "fails every time, in milliseconds".

Minimization is greedy delta-debugging over the decision list: first
binary-search the shortest failing prefix (everything beyond a trace's
prefix defaults to FIFO order), then zero out individual decisions while
the failure persists.  The result is typically a handful of non-default
choices — the preemptions that matter, human-readably few.
"""

from __future__ import annotations

from .scenarios import SCENARIOS, Scenario
from .scheduler import Outcome, PrefixPolicy, run_schedule

__all__ = ["make_trace", "replay_trace", "minimize_trace"]


#: Cap on lifecycle events embedded in a trace file by ``make_trace``:
#: enough for the failure neighborhood, bounded so trace files stay
#: hand-readable.
CAUSAL_TAIL_EVENTS = 200


def make_trace(
    scenario: Scenario,
    outcome: Outcome,
    fault: str | None = None,
    seed: int | None = None,
    policy: str = "random",
    causal=None,
) -> dict:
    """Bundle a run's decisions with the metadata needed to redo it.

    ``causal`` (a :class:`repro.obs.CausalTracer`, typically from a
    ``run_schedule(..., causal=True)`` replay of the same decisions)
    embeds the last :data:`CAUSAL_TAIL_EVENTS` message-lifecycle events
    under a ``causal_events`` key — extra context replay tools ignore
    (the format is tolerant of unknown keys) but humans read.
    """
    trace = {
        "format": 1,
        "scenario": scenario.name,
        "fault": fault,
        "policy": policy,
        "seed": seed,
        "decisions": list(outcome.decisions),
        "widths": list(outcome.widths),
        "status": outcome.status,
        "detail": outcome.detail.splitlines()[0] if outcome.detail else "",
    }
    if causal is not None and causal.events:
        trace["causal_events"] = [
            e.as_dict() for e in causal.events[-CAUSAL_TAIL_EVENTS:]
        ]
    return trace


def _scenario_of(trace: dict) -> Scenario:
    name = trace.get("scenario")
    if name not in SCENARIOS:
        raise ValueError(f"trace names unknown scenario {name!r}")
    return SCENARIOS[name]


def replay_trace(trace: dict, max_events: int = 50_000) -> Outcome:
    """Re-execute the schedule a trace records; returns the new outcome.

    Deterministic: replaying an unmodified trace reproduces the recorded
    status exactly (the decisions pin every scheduling choice; past the
    trace's end the engine follows default FIFO order).
    """
    return run_schedule(
        _scenario_of(trace),
        PrefixPolicy(trace["decisions"]),
        fault=trace.get("fault"),
        max_events=max_events,
    )


def minimize_trace(
    trace: dict, max_events: int = 50_000
) -> tuple[dict, dict]:
    """Shrink a failing trace; returns ``(minimized_trace, stats)``.

    The minimized trace reproduces the *same status* as the original.
    ``stats`` reports the original and final lengths, the number of
    non-default (non-zero) decisions remaining, and replays spent.
    """
    scenario = _scenario_of(trace)
    fault = trace.get("fault")
    target = trace["status"]
    decisions = list(trace["decisions"])
    replays = 0

    def fails(candidate: list[int]) -> Outcome | None:
        nonlocal replays
        replays += 1
        out = run_schedule(scenario, PrefixPolicy(candidate), fault=fault,
                           max_events=max_events)
        return out if out.status == target else None

    if fails(decisions) is None:
        raise ValueError(
            f"trace does not reproduce status {target!r}; nothing to minimize"
        )

    # Pass 1: shortest failing prefix, by binary search.  The predicate
    # is not guaranteed monotone over prefix length, so the result is
    # verified (and the search is only an accelerator, not an oracle).
    lo, hi = 0, len(decisions)
    while lo < hi:
        mid = (lo + hi) // 2
        if fails(decisions[:mid]) is not None:
            hi = mid
        else:
            lo = mid + 1
    if fails(decisions[:hi]) is not None:
        decisions = decisions[:hi]

    # Pass 2: zero out decisions (0 = default FIFO choice) while the
    # failure persists; repeat to a fixpoint.
    changed = True
    while changed:
        changed = False
        for i in range(len(decisions)):
            if decisions[i] == 0:
                continue
            candidate = decisions[:i] + [0] + decisions[i + 1:]
            if fails(candidate) is not None:
                decisions = candidate
                changed = True
        # Trailing zeros are implicit (PrefixPolicy defaults to 0).
        while decisions and decisions[-1] == 0:
            decisions.pop()

    final = fails(decisions)
    assert final is not None, "minimized trace must still fail"
    minimized = dict(trace)
    minimized["decisions"] = decisions
    minimized["widths"] = final.widths[:len(decisions)]
    minimized["detail"] = (final.detail.splitlines()[0]
                           if final.detail else "")
    minimized["minimized_from"] = len(trace["decisions"])
    stats = {
        "original_decisions": len(trace["decisions"]),
        "minimized_decisions": len(decisions),
        "nondefault_decisions": sum(1 for d in decisions if d),
        "replays": replays,
    }
    return minimized, stats
