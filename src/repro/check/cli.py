"""``python -m repro.check`` — explore, replay, and minimize schedules.

Subcommands::

    list                       show scenarios and their injectable faults
    explore  --scenario NAME   hunt for a failing schedule
    replay   --trace FILE      re-run a recorded schedule
    minimize --trace FILE      delta-debug a failing schedule

Exit status: ``explore`` exits 0 when the verdict matches expectation
(clean normally, failing under ``--expect-fail``) and 1 otherwise;
``replay`` exits 0 iff the recorded status reproduces; ``minimize``
exits 0 on success.  The CI ``check-smoke`` job runs three clean
explorations plus one ``--fault ... --expect-fail`` run, so a checker
that stops detecting bugs fails CI.
"""

from __future__ import annotations

import argparse
import sys
import time

from ..obs import format_causal_tail, read_decision_trace, write_decision_trace
from .replay import make_trace, minimize_trace, replay_trace
from .scenarios import SCENARIOS
from .scheduler import PrefixPolicy, explore, explore_dfs, run_schedule, run_threads

__all__ = ["main"]


def _add_explore(sub) -> None:
    p = sub.add_parser("explore", help="hunt for a failing schedule")
    p.add_argument("--scenario", required=True, choices=sorted(SCENARIOS))
    p.add_argument("--seeds", type=int, default=100,
                   help="number of seeded walks (default 100)")
    p.add_argument("--seed0", type=int, default=0,
                   help="first seed (default 0)")
    p.add_argument("--policy", choices=("random", "bounded", "dfs"),
                   default="random")
    p.add_argument("--bound", type=int, default=2,
                   help="preemption budget for --policy bounded")
    p.add_argument("--fault", default=None,
                   help="inject a fault (see `list` for names)")
    p.add_argument("--max-events", type=int, default=50_000)
    p.add_argument("--no-check-steady", action="store_true",
                   help="skip steady-tier invariant probes (faster)")
    p.add_argument("--trace", default=None, metavar="FILE",
                   help="write the first failing schedule here")
    p.add_argument("--minimize", action="store_true",
                   help="minimize the failing schedule before writing")
    p.add_argument("--expect-fail", action="store_true",
                   help="exit 0 iff a failure IS found (fault-injection CI)")
    p.add_argument("--runtime", choices=("sim", "threads"), default="sim",
                   help="threads: cross-validate on the real thread runtime")
    p.add_argument("--repeats", type=int, default=20,
                   help="thread-runtime repetitions (--runtime threads)")


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.check",
        description="systematic schedule exploration for MPF programs",
    )
    sub = parser.add_subparsers(dest="cmd", required=True)
    sub.add_parser("list", help="show scenarios and faults")
    _add_explore(sub)
    p = sub.add_parser("replay", help="re-run a recorded schedule")
    p.add_argument("--trace", required=True, metavar="FILE")
    p.add_argument("--max-events", type=int, default=50_000)
    p = sub.add_parser("minimize", help="delta-debug a failing schedule")
    p.add_argument("--trace", required=True, metavar="FILE")
    p.add_argument("--out", default=None, metavar="FILE",
                   help="write the minimized trace here (default: stdout)")
    p.add_argument("--max-events", type=int, default=50_000)
    args = parser.parse_args(argv)

    if args.cmd == "list":
        for name in sorted(SCENARIOS):
            s = SCENARIOS[name]
            faults = ", ".join(s.faults) if s.faults else "-"
            print(f"{name:16s} faults: {faults:12s} {s.doc}")
        return 0

    if args.cmd == "explore":
        return _explore(args)

    if args.cmd == "replay":
        t0 = time.perf_counter()
        trace = read_decision_trace(args.trace)
        outcome = replay_trace(trace, max_events=args.max_events)
        dt = time.perf_counter() - t0
        print(f"replayed {trace['scenario']}"
              + (f" fault={trace['fault']}" if trace.get("fault") else "")
              + f": {outcome.status} in {dt * 1e3:.0f} ms "
              f"({outcome.events} events, {len(outcome.decisions)} decisions)")
        if outcome.detail:
            print(outcome.detail)
        if outcome.status != trace["status"]:
            print(f"MISMATCH: trace recorded status {trace['status']!r}")
            return 1
        return 0

    if args.cmd == "minimize":
        trace = read_decision_trace(args.trace)
        minimized, stats = minimize_trace(trace, max_events=args.max_events)
        print(f"{stats['original_decisions']} -> "
              f"{stats['minimized_decisions']} decisions "
              f"({stats['nondefault_decisions']} non-default) "
              f"in {stats['replays']} replays")
        if args.out:
            write_decision_trace(minimized, args.out)
            print(f"wrote {args.out}")
        else:
            print(minimized)
        return 0

    raise AssertionError(args.cmd)


def _explore(args) -> int:
    scenario = SCENARIOS[args.scenario]
    if args.fault is not None and args.fault not in scenario.faults:
        print(f"scenario {scenario.name!r} does not support fault "
              f"{args.fault!r} (has: {', '.join(scenario.faults) or 'none'})")
        return 2

    if args.runtime == "threads":
        violations = run_threads(scenario, fault=args.fault,
                                 repeats=args.repeats)
        if violations:
            print(f"{scenario.name} [threads]: FAIL")
            for v in violations:
                print("  " + v)
            return 0 if args.expect_fail else 1
        print(f"{scenario.name} [threads]: clean over {args.repeats} runs")
        return 1 if args.expect_fail else 0

    t0 = time.perf_counter()
    if args.policy == "dfs":
        result = explore_dfs(
            scenario, fault=args.fault, max_runs=args.seeds,
            max_events=args.max_events,
            check_steady=not args.no_check_steady,
        )
        seed = None
    else:
        result = explore(
            scenario, seeds=range(args.seed0, args.seed0 + args.seeds),
            fault=args.fault, policy=args.policy, bound=args.bound,
            max_events=args.max_events,
            check_steady=not args.no_check_steady,
        )
        seed = result.failure_seed
    dt = time.perf_counter() - t0
    counts = ", ".join(f"{k}: {v}" for k, v in sorted(result.by_status.items()))
    print(f"{scenario.name}"
          + (f" fault={args.fault}" if args.fault else "")
          + f" [{args.policy}]: {result.runs} runs in {dt:.2f}s ({counts})")

    if result.failure is not None:
        outcome = result.failure
        print(f"FAILING SCHEDULE found"
              + (f" (seed {seed})" if seed is not None else "")
              + f": {outcome.status}")
        print(outcome.detail)
        # Replay the failing decisions with lifecycle tracing on: the
        # message history of the exact failing schedule (deterministic,
        # so the replay reproduces it) reads next to the decision trace.
        causal_out = run_schedule(
            scenario, PrefixPolicy(outcome.decisions), fault=args.fault,
            max_events=args.max_events, causal=True,
        )
        if causal_out.causal is not None and causal_out.causal.events:
            print()
            print("message lifecycle tail of the failing schedule:")
            print(format_causal_tail(causal_out.causal))
        if args.trace:
            trace = make_trace(scenario, outcome, fault=args.fault,
                               seed=seed, policy=args.policy,
                               causal=causal_out.causal)
            if args.minimize:
                trace, stats = minimize_trace(trace,
                                              max_events=args.max_events)
                print(f"minimized {stats['original_decisions']} -> "
                      f"{stats['minimized_decisions']} decisions "
                      f"in {stats['replays']} replays")
            write_decision_trace(trace, args.trace)
            print(f"wrote {args.trace}")
        return 0 if args.expect_fail else 1
    return 1 if args.expect_fail else 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
