"""Post-mortem analysis of a stalled controlled run.

When the engine raises :class:`~repro.machine.engine.DeadlockError`, the
checker wants more than "everyone is blocked": it classifies the stall
and renders a wait-for report.

* **lock cycle** — processes blocked on locks whose owners are blocked
  in turn; the classic deadlock.  MPF's global lock order makes this
  impossible in the unmutated library, so seeing one means a fault.
* **lost wakeup** — a process asleep on a circuit's wait channel while
  the circuit holds traffic it could consume (an FCFS sleeper with a
  non-NIL shared FCFS head, a BROADCAST sleeper whose descriptor head
  is non-NIL).  The wake that should have resumed it was dropped.
* **lost message** — sleepers with genuinely nothing to consume: the
  paper's §3.2 programming hazard (senders closed before receivers
  joined, discarding the traffic), or a counting bug in the program.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..core.ops import MPFView
from ..core.protocol import NIL, Protocol
from ..core.structs import LNVC, RECV

__all__ = ["BlockedInfo", "StallReport", "analyze_stall"]


@dataclass
class BlockedInfo:
    """One blocked process in the stall."""

    name: str
    pid: int
    state: str  # "wait-lock" | "wait-chan"
    #: Lock waited for ("wait-lock") or to be reacquired after the
    #: channel sleep ("wait-chan").
    lock_id: int | None
    #: Wait channel (= circuit slot) for "wait-chan" blocks.
    chan: int | None
    #: Name of the process owning the awaited lock, if any.
    owner: str | None
    #: Receive protocol of the sleeper's connection, if resolvable.
    proto: str | None = None
    #: True if the sleeper's circuit holds traffic it could consume.
    deliverable: bool = False


@dataclass
class StallReport:
    """Classified wait-for picture of a stalled run."""

    blocked: list[BlockedInfo]
    #: ``"lock-cycle"`` | ``"lost-wakeup"`` | ``"lost-message"`` | ``"stall"``
    kind: str
    #: Lock wait-for cycle as process names, when one exists.
    cycle: list[str] = field(default_factory=list)

    @property
    def all_wait_chan(self) -> bool:
        """True when every blocked process sleeps on a wait channel.

        Channel sleepers sit *between* operations (a receiver parks
        before claiming anything), so an all-``wait-chan`` stall is a
        quiescent segment: final-tier invariants may be evaluated.
        """
        return all(b.state == "wait-chan" for b in self.blocked)

    def render(self) -> str:
        lines = [f"stalled: {self.kind} ({len(self.blocked)} blocked)"]
        for b in self.blocked:
            if b.state == "wait-chan":
                extra = f"sleeping on circuit {b.chan}"
                if b.proto:
                    extra += f" as {b.proto}"
                if b.deliverable:
                    extra += " WITH DELIVERABLE TRAFFIC (lost wakeup)"
            else:
                extra = f"waiting for lock {b.lock_id}"
                if b.owner:
                    extra += f" held by {b.owner}"
            lines.append(f"  {b.name}: {extra}")
        if self.cycle:
            lines.append("  lock cycle: " + " -> ".join(self.cycle))
        return "\n".join(lines)


def _sleeper_status(view: MPFView, slot: int, pid: int) -> tuple[str | None, bool]:
    """(protocol name, has-deliverable-traffic) for a channel sleeper."""
    r = view.region
    if slot >= view.cfg.max_lnvcs:
        return None, False
    base = view.layout.lnvc_off(slot)
    if not LNVC.get(r, base, "in_use"):
        return None, False
    desc = LNVC.get(r, base, "recv_list")
    while desc != NIL:
        if RECV.get(r, desc, "pid") == pid:
            proto = Protocol(RECV.get(r, desc, "proto"))
            if proto is Protocol.FCFS:
                return "FCFS", LNVC.get(r, base, "fcfs_head") != NIL
            return "BROADCAST", RECV.get(r, desc, "head") != NIL
        desc = RECV.get(r, desc, "next")
    return None, False


def analyze_stall(engine, view: MPFView) -> StallReport:
    """Build a :class:`StallReport` from a stalled engine.

    Relies on the engine/runtime convention that process ``pid`` equals
    the worker's MPF rank (both count spawn order).
    """
    blocked: list[BlockedInfo] = []
    chan_of = {}
    for chan, channel in enumerate(engine.channels):
        for sleeper in channel.sleepers:
            chan_of[sleeper.pid] = chan
    for proc in engine.processes:
        if proc.state == "wait-lock":
            lock = engine.locks[proc._wait_lock]
            blocked.append(BlockedInfo(
                name=proc.name, pid=proc.pid, state="wait-lock",
                lock_id=proc._wait_lock, chan=None,
                owner=lock.owner.name if lock.owner is not None else None,
            ))
        elif proc.state == "wait-chan":
            chan = chan_of.get(proc.pid)
            proto, deliverable = (
                _sleeper_status(view, chan, proc.pid)
                if chan is not None else (None, False)
            )
            blocked.append(BlockedInfo(
                name=proc.name, pid=proc.pid, state="wait-chan",
                lock_id=proc._wait_lock, chan=chan, owner=None,
                proto=proto, deliverable=deliverable,
            ))

    # Lock wait-for cycle: edge waiter -> owner, both blocked.
    by_name = {b.name: b for b in blocked}
    cycle: list[str] = []
    for start in blocked:
        seen: list[str] = []
        cur: BlockedInfo | None = start
        while cur is not None and cur.state == "wait-lock" and cur.owner:
            if cur.name in seen:
                cycle = seen[seen.index(cur.name):] + [cur.name]
                break
            seen.append(cur.name)
            cur = by_name.get(cur.owner)
        if cycle:
            break

    if cycle:
        kind = "lock-cycle"
    elif any(b.deliverable for b in blocked):
        kind = "lost-wakeup"
    elif blocked and all(b.state == "wait-chan" for b in blocked):
        kind = "lost-message"
    else:
        kind = "stall"
    return StallReport(blocked=blocked, kind=kind, cycle=cycle)
