"""Invariants the checker evaluates, and when it is safe to do so.

The *structural* invariants of the shared segment (allocator
conservation, FIFO shape, descriptor-cache coherence, ...) live in
:func:`repro.core.inspect.check_invariants` so the ordinary test suite
shares them.  This module adds the two pieces that are specific to
model checking:

* **quiescence classification** — deciding at which points of a
  controlled run each invariant tier may be evaluated without false
  alarms (see :func:`segment_quiescent` and :class:`SteadyProbe`);
* **delivery oracles** — end-to-end contracts (FCFS exactly-once and
  per-sender FIFO order, BROADCAST every-receiver in-order delivery,
  paper §2) evaluated on worker return values after a run.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from ..core.inspect import (
    InvariantViolation,
    check_invariants,
    collect_violations,
)

__all__ = [
    "InvariantViolation",
    "check_invariants",
    "collect_violations",
    "segment_quiescent",
    "SteadyProbe",
    "check_fcfs_delivery",
    "check_broadcast_delivery",
]


def segment_quiescent(engine) -> bool:
    """True when no simulated process holds any lock.

    Every MPF primitive mutates shared bytes only in chunks bracketed by
    lock acquire/release effects, so "no lock held" means no mutation of
    a locked structure is in flight — the *steady*-tier invariants hold
    at exactly these points.  (An operation may still be mid-flight in a
    benign sense: a send between its allocation and link phases holds an
    allocated-but-unlinked header, which the steady tier tolerates.)
    """
    return all(lock.owner is None for lock in engine.locks)


class SteadyProbe:
    """Evaluate steady-tier invariants at quiescent decision points.

    Installed by ``run_schedule`` into the controlled scheduler: at each
    scheduling decision where no lock is held, the probe re-checks the
    segment and raises :class:`InvariantViolation` on the spot — so a
    corruption is reported at (or near) the decision that exposed it,
    not thousands of events later at the end of the run.
    """

    def __init__(self, view) -> None:
        self.view = view
        self.checks = 0

    def __call__(self, engine) -> None:
        if segment_quiescent(engine):
            self.checks += 1
            check_invariants(self.view, level="steady")


def check_fcfs_delivery(
    sent: Sequence[bytes],
    received: Sequence[Sequence[bytes]],
    senders: Iterable[int] | None = None,
) -> list[str]:
    """FCFS contract: exactly-once delivery, FIFO order per sender.

    ``sent`` is the full multiset of payloads enqueued (in per-sender
    order); ``received`` holds each FCFS receiver's payloads in receive
    order.  With ``senders`` given, payloads are ``bytes([sender, i])``
    and FIFO order is checked per sender; without, ``sent`` is one
    sender's sequence and each receiver's takes must respect its order.
    """
    out: list[str] = []
    union = [m for got in received for m in got]
    if sorted(union) != sorted(sent):
        missing = set(sent) - set(union)
        extra = [m for m in union if m not in set(sent)]
        dupes = len(union) - len(set(union))
        out.append(
            "FCFS exactly-once broken: "
            f"{len(union)} received vs {len(sent)} sent"
            + (f", missing {sorted(missing)}" if missing else "")
            + (f", unexpected {extra}" if extra else "")
            + (f", {dupes} duplicate(s)" if dupes else "")
        )
    if senders is not None:
        for ri, got in enumerate(received):
            for s in senders:
                idxs = [m[1] for m in got if m and m[0] == s]
                if idxs != sorted(idxs):
                    out.append(
                        f"FCFS order broken: receiver {ri} saw sender {s}'s "
                        f"messages as {idxs}"
                    )
    else:
        pos = {m: i for i, m in enumerate(sent)}
        for ri, got in enumerate(received):
            idxs = [pos[m] for m in got if m in pos]
            if idxs != sorted(idxs):
                out.append(
                    f"FCFS order broken: receiver {ri} took send positions "
                    f"{idxs}"
                )
    return out


def check_broadcast_delivery(
    sent: Sequence[bytes], got: Sequence[bytes], who: str = "receiver"
) -> list[str]:
    """BROADCAST contract: every receiver sees every message, in order."""
    if list(got) != list(sent):
        return [
            f"BROADCAST delivery broken: {who} saw {list(got)!r}, "
            f"expected {list(sent)!r}"
        ]
    return []
