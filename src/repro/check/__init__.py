"""Systematic schedule exploration for MPF programs (a model checker).

The deterministic simulation engine resolves same-time event ties FIFO;
this package replaces that tie-break with a *policy* and turns the
simulator into a stateless model checker: every interleaving of the
program's effect boundaries is a schedule some policy can choose, each
run is deterministic given its decisions, and a failing run is therefore
a replayable, minimizable artifact rather than a flaky repro.

Pieces:

* :mod:`~repro.check.scheduler` — policies (seeded random walk,
  preemption-bounded walk, exhaustive DFS), the controlled-run driver,
  and thread-runtime cross-validation;
* :mod:`~repro.check.invariants` — quiescence tiers plus delivery
  oracles, over the structural checks of :mod:`repro.core.inspect`;
* :mod:`~repro.check.deadlock` — stall classification (lock cycle,
  lost wakeup, the paper's §3.2 lost-message hazard) with a wait-for
  report;
* :mod:`~repro.check.replay` — decision-trace record/replay and greedy
  minimization;
* :mod:`~repro.check.scenarios` — adversarial programs (racing FCFS
  receivers, connect/disconnect churn, free-list exhaustion,
  mixed-protocol circuits);
* :mod:`~repro.check.faults` — intentionally broken operations proving
  the checker detects what it claims to detect.

CLI: ``python -m repro.check {list,explore,replay,minimize}``.
See docs/checking.md.
"""

from .deadlock import BlockedInfo, StallReport, analyze_stall
from .invariants import (
    InvariantViolation,
    SteadyProbe,
    check_broadcast_delivery,
    check_fcfs_delivery,
    check_invariants,
    collect_violations,
    segment_quiescent,
)
from .replay import make_trace, minimize_trace, replay_trace
from .scenarios import SCENARIOS, Scenario
from .scheduler import (
    BoundedPolicy,
    ControlledPolicy,
    ExploreResult,
    Outcome,
    PrefixPolicy,
    RandomPolicy,
    explore,
    explore_dfs,
    run_schedule,
    run_threads,
)

__all__ = [
    "SCENARIOS",
    "Scenario",
    "Outcome",
    "ExploreResult",
    "RandomPolicy",
    "BoundedPolicy",
    "PrefixPolicy",
    "ControlledPolicy",
    "run_schedule",
    "explore",
    "explore_dfs",
    "run_threads",
    "make_trace",
    "replay_trace",
    "minimize_trace",
    "analyze_stall",
    "StallReport",
    "BlockedInfo",
    "InvariantViolation",
    "check_invariants",
    "collect_violations",
    "segment_quiescent",
    "SteadyProbe",
    "check_fcfs_delivery",
    "check_broadcast_delivery",
]
