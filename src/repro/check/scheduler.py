"""Schedule policies and the controlled-run driver.

The simulated engine resolves ties in simulated time FIFO by sequence
number; under :class:`~repro.machine.engine.ZeroTimingModel` *every*
pending event is a tie, so the set of schedules a policy can induce is
exactly the set of interleavings of the program's effect boundaries.
:func:`run_schedule` executes one scenario under one policy and
classifies the outcome; :func:`explore` and :func:`explore_dfs` drive
many runs (seeded random walks, preemption-bounded walks, exhaustive
DFS) hunting for a failing schedule.

Every run records its **decision trace** — the chosen candidate index at
each >1-candidate scheduling point, plus the candidate-set width — which
makes any outcome replayable and minimizable (:mod:`repro.check.replay`).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable, Iterable, Sequence

from ..core.costmodel import DEFAULT_COSTS
from ..core.errors import DeadlockSuspectedError, MPFError
from ..core.layout import SegmentLayout, format_region
from ..core.ops import MPFView, fusion_enabled
from ..core.region import SharedRegion
from ..machine.engine import DeadlockError, Engine, SimulationError, ZeroTimingModel
from ..runtime.base import Env
from .deadlock import StallReport, analyze_stall
from .invariants import (
    InvariantViolation,
    SteadyProbe,
    collect_violations,
)
from .scenarios import Scenario

__all__ = [
    "Outcome",
    "RandomPolicy",
    "BoundedPolicy",
    "PrefixPolicy",
    "ControlledPolicy",
    "run_schedule",
    "explore",
    "explore_dfs",
    "run_threads",
]


class RandomPolicy:
    """Uniform seeded random walk over the interleaving space."""

    def __init__(self, seed: int) -> None:
        self.seed = seed
        self._rng = random.Random(seed)

    def choose(self, now: float, procs: Sequence) -> int:
        return self._rng.randrange(len(procs))


class BoundedPolicy:
    """Preemption-bounded random walk.

    Switching away from the last-run process *while it is still
    runnable* is a preemption; classic results show most concurrency
    bugs need only a few.  This policy spends at most ``bound``
    preemptions, then degrades to run-to-completion order — focusing the
    walk on the low-preemption schedules where bugs live.
    """

    def __init__(self, seed: int, bound: int = 2) -> None:
        self.seed = seed
        self.bound = bound
        self._rng = random.Random(seed)
        self._last: int | None = None
        self._left = bound

    def choose(self, now: float, procs: Sequence) -> int:
        pids = [p.pid for p in procs]
        if self._last in pids:
            stay = pids.index(self._last)
            if self._left > 0 and self._rng.random() < 0.5:
                idx = self._rng.randrange(len(procs))
                if idx != stay:
                    self._left -= 1
            else:
                idx = stay
        else:
            idx = self._rng.randrange(len(procs))
        self._last = procs[idx].pid
        return idx


class PrefixPolicy:
    """Follow a fixed decision prefix, then default to FIFO (index 0).

    The workhorse of both replay (prefix = a recorded trace) and DFS
    (prefix = the next branch to force).  Out-of-range decisions clamp
    to the last candidate, keeping stale traces harmless.
    """

    def __init__(self, prefix: Sequence[int]) -> None:
        self.prefix = list(prefix)
        self._i = 0

    def choose(self, now: float, procs: Sequence) -> int:
        i = self._i
        self._i += 1
        if i < len(self.prefix):
            return min(self.prefix[i], len(procs) - 1)
        return 0


class ControlledPolicy:
    """Record an inner policy's decisions; optionally probe invariants.

    This is what actually gets installed as ``Engine(scheduler=...)``:
    it forwards ``choose`` to ``inner``, clamps the answer, appends
    ``(decision, width)`` to the trace, and — when a probe is given —
    evaluates it first, so invariant violations surface at the decision
    point that exposed them.
    """

    def __init__(self, inner, probe: Callable | None = None) -> None:
        self.inner = inner
        self.probe = probe
        self.decisions: list[int] = []
        self.widths: list[int] = []
        self.engine = None

    def attach(self, engine) -> None:
        self.engine = engine
        attach = getattr(self.inner, "attach", None)
        if attach is not None:
            attach(engine)

    def choose(self, now: float, procs: Sequence) -> int:
        if self.probe is not None:
            self.probe(self.engine)
        idx = self.inner.choose(now, procs)
        if not 0 <= idx < len(procs):
            idx = 0
        self.decisions.append(idx)
        self.widths.append(len(procs))
        return idx


@dataclass
class Outcome:
    """Everything one controlled run produced."""

    #: ``"ok"`` | ``"invariant"`` | ``"deadlock"`` | ``"crash"`` | ``"livelock"``
    status: str
    detail: str
    #: Decision trace: chosen candidate index per >1-candidate point.
    decisions: list[int]
    #: Candidate-set width at each decision (for DFS/minimization).
    widths: list[int]
    events: int
    results: dict | None = None
    report: StallReport | None = None
    view: MPFView | None = None
    #: Steady-tier invariant evaluations performed during the run.
    steady_checks: int = 0
    #: Causal tracer (``run_schedule(causal=True)``): the per-message
    #: lifecycle record of this run, for printing next to the decision
    #: trace when a schedule fails.
    causal: object | None = None

    @property
    def failed(self) -> bool:
        return self.status != "ok"


def run_schedule(
    scenario: Scenario,
    policy,
    fault: str | None = None,
    max_events: int = 50_000,
    check_steady: bool = True,
    causal: bool = False,
) -> Outcome:
    """Run ``scenario`` once under ``policy``; classify what happened.

    Deterministic: the same scenario, fault, and policy decisions always
    produce the same outcome (the engine itself is deterministic; the
    policy is the only source of variation).  ``causal=True`` attaches a
    :class:`repro.obs.CausalTracer` to the run's view — under
    ``ZeroTimingModel`` the timestamps are all zero but the *event
    order* is meaningful, so a failing schedule's message history reads
    next to its decision trace.
    """
    cfg = scenario.cfg
    workers = scenario.build(fault)
    region = SharedRegion(bytearray(SegmentLayout(cfg).total_size))
    layout = format_region(region, cfg)
    view = MPFView(region, layout, DEFAULT_COSTS)
    # Fusion stays on under the controlled scheduler: the engine parks
    # every fused step as its own heap event there, so the policy sees
    # the identical choice points (and decision traces replay) either
    # way — while the checker exercises the same fused code paths the
    # figure runs use.
    view.fuse = fusion_enabled()
    probe = SteadyProbe(view) if check_steady else None
    ctl = ControlledPolicy(policy, probe=probe)
    engine = Engine(
        n_locks=cfg.n_locks,
        n_channels=cfg.n_channels,
        timing=ZeroTimingModel(),
        max_events=max_events,
        scheduler=ctl,
    )
    clock = lambda: engine.now  # noqa: E731
    tracer = None
    if causal:
        from ..obs import CausalTracer

        tracer = CausalTracer(clock=clock)
        view.causal = tracer
    nprocs = len(workers)
    for rank, worker in enumerate(workers):
        engine.spawn(f"p{rank}", worker(Env(view, rank, nprocs, clock)))

    def out(status: str, detail: str, results=None, report=None) -> Outcome:
        return Outcome(
            status=status, detail=detail,
            decisions=list(ctl.decisions), widths=list(ctl.widths),
            events=engine.stats.events, results=results, report=report,
            view=view, steady_checks=probe.checks if probe else 0,
            causal=tracer,
        )

    try:
        engine.run()
    except InvariantViolation as exc:
        return out("invariant", str(exc))
    except DeadlockError as exc:
        report = analyze_stall(engine, view)
        if report.all_wait_chan:
            # Channel sleepers park between operations, so the segment is
            # quiescent: the stall may *be* the symptom of a structural
            # corruption (e.g. a torn link hiding a message).  Check.
            violations = collect_violations(view, level="final")
            if violations:
                return out(
                    "invariant",
                    "stalled with corrupted segment:\n  "
                    + "\n  ".join(violations) + "\n" + report.render(),
                    report=report,
                )
        return out("deadlock", f"{exc}\n{report.render()}", report=report)
    except SimulationError as exc:
        if "exceeded" in str(exc):
            return out("livelock", str(exc))
        return out("crash", f"{type(exc).__name__}: {exc}")
    except MPFError as exc:
        return out("crash", f"{type(exc).__name__}: {exc}")
    except (RuntimeError, AssertionError) as exc:
        return out("crash", f"{type(exc).__name__}: {exc}")

    results = engine.results()
    violations = collect_violations(
        view, level="final", expect_empty=scenario.expect_empty
    )
    violations += scenario.oracle(results)
    if violations:
        return out("invariant", "\n".join(violations), results=results)
    return out("ok", f"clean ({engine.stats.events} events)", results=results)


@dataclass
class ExploreResult:
    """Summary of a multi-run exploration."""

    runs: int
    by_status: dict = field(default_factory=dict)
    #: First failing outcome, with the policy parameters that found it.
    failure: Outcome | None = None
    failure_seed: int | None = None

    @property
    def found(self) -> bool:
        return self.failure is not None


def explore(
    scenario: Scenario,
    seeds: Iterable[int],
    fault: str | None = None,
    policy: str = "random",
    bound: int = 2,
    max_events: int = 50_000,
    check_steady: bool = True,
    stop_on_failure: bool = True,
    on_run: Callable[[int, Outcome], None] | None = None,
) -> ExploreResult:
    """Random (or preemption-bounded) walk over many seeds."""
    res = ExploreResult(runs=0)
    for seed in seeds:
        if policy == "bounded":
            pol = BoundedPolicy(seed, bound=bound)
        else:
            pol = RandomPolicy(seed)
        outcome = run_schedule(scenario, pol, fault=fault,
                               max_events=max_events,
                               check_steady=check_steady)
        res.runs += 1
        res.by_status[outcome.status] = res.by_status.get(outcome.status, 0) + 1
        if on_run is not None:
            on_run(seed, outcome)
        if outcome.failed and res.failure is None:
            res.failure = outcome
            res.failure_seed = seed
            if stop_on_failure:
                break
    return res


def explore_dfs(
    scenario: Scenario,
    fault: str | None = None,
    max_runs: int = 2_000,
    max_events: int = 50_000,
    check_steady: bool = True,
    stop_on_failure: bool = True,
    on_run: Callable[[int, Outcome], None] | None = None,
) -> ExploreResult:
    """Exhaustive depth-first enumeration of schedules (small spaces).

    Each completed run's trace yields the next branch: advance the
    deepest decision that still has an unexplored sibling, truncate, and
    re-run.  Exhausts the entire interleaving space of scenarios whose
    traces are short enough; ``max_runs`` bounds the rest.
    """
    res = ExploreResult(runs=0)
    prefix: list[int] = []
    while res.runs < max_runs:
        outcome = run_schedule(scenario, PrefixPolicy(prefix), fault=fault,
                               max_events=max_events,
                               check_steady=check_steady)
        res.runs += 1
        if on_run is not None:
            on_run(res.runs - 1, outcome)
        res.by_status[outcome.status] = res.by_status.get(outcome.status, 0) + 1
        if outcome.failed and res.failure is None:
            res.failure = outcome
            if stop_on_failure:
                return res
        d, w = outcome.decisions, outcome.widths
        i = len(d) - 1
        while i >= 0 and d[i] + 1 >= w[i]:
            i -= 1
        if i < 0:
            break  # space exhausted
        prefix = d[:i] + [d[i] + 1]
    return res


def run_threads(
    scenario: Scenario,
    fault: str | None = None,
    repeats: int = 20,
    join_timeout: float = 10.0,
) -> list[str]:
    """Cross-validate the scenario on the real thread runtime.

    The thread scheduler explores interleavings the controlled engine
    may never pick (real preemption is not aligned to effect
    boundaries), so a clean sim exploration is re-validated here: run
    the same workers ``repeats`` times on
    :class:`~repro.runtime.threads.ThreadRuntime` and apply the same
    final invariants and delivery oracle.  Returns violation strings.
    """
    from ..runtime.threads import ThreadRuntime

    out: list[str] = []
    for rep in range(repeats):
        rt = ThreadRuntime(join_timeout=join_timeout)
        try:
            result = rt.run(scenario.build(fault), cfg=scenario.cfg)
        except DeadlockSuspectedError as exc:
            out.append(f"run {rep}: suspected deadlock: {exc}")
            break
        except MPFError as exc:
            out.append(f"run {rep}: {type(exc).__name__}: {exc}")
            break
        violations = collect_violations(
            rt.last_view, level="final", expect_empty=scenario.expect_empty
        )
        violations += scenario.oracle(result.results)
        if violations:
            out.append(f"run {rep}: " + "; ".join(violations))
            break
    return out
