"""The simulated-machine runtime: MPF on a modelled Balance 21000.

This is the primary experimental substrate of the reproduction (see
DESIGN.md §2): programs run as coroutines on the deterministic
discrete-event engine, MPF effects are priced by the calibrated
:class:`~repro.machine.cpu.BalanceTiming`, and ``RunResult.elapsed`` is
*simulated* seconds — directly comparable to the paper's measured times.
"""

from __future__ import annotations

from typing import Sequence

from ..core.costmodel import Costs, DEFAULT_COSTS
from ..core.layout import HDR, MPFConfig, SegmentLayout, format_region
from ..core.ops import MPFView, fusion_enabled
from ..core.region import SharedRegion
from ..machine.balance import BALANCE_21000, MachineConfig
from ..machine.cpu import BalanceTiming
from ..machine.engine import Engine
from ..machine.stats import collect_report
from .base import Env, RunResult, Runtime, Worker, snapshot_header

__all__ = ["SimRuntime"]


class SimRuntime(Runtime):
    """Run MPF programs on the simulated Sequent Balance 21000."""

    kind = "sim"

    def __init__(
        self,
        machine: MachineConfig = BALANCE_21000,
        trace=None,
        until: float | None = None,
        recorder=None,
        fusion: bool | None = None,
    ) -> None:
        self.machine = machine
        self._trace = trace
        self._until = until
        #: Section fusion override: ``None`` follows the module default
        #: (:func:`repro.core.ops.fusion_enabled`, MPF_FUSION env knob);
        #: tests pass an explicit bool for fused-vs-unfused A/B runs.
        self.fusion = fusion
        #: Optional :class:`repro.obs.Recorder` fed simulated-time
        #: metrics (lock wait/hold, per-label charges) during runs.
        self.recorder = recorder
        #: Populated after each :meth:`run` for post-mortem inspection.
        self.last_engine: Engine | None = None
        self.last_view: MPFView | None = None

    def run(
        self,
        workers: Sequence[Worker],
        cfg: MPFConfig | None = None,
        costs: Costs = DEFAULT_COSTS,
        names: Sequence[str] | None = None,
    ) -> RunResult:
        nprocs = len(workers)
        cfg = self.default_config(nprocs, cfg)
        names = self.process_names(nprocs, names)

        region = SharedRegion(bytearray(SegmentLayout(cfg).total_size))
        layout = format_region(region, cfg)
        view = MPFView(region, layout, costs)
        view.fuse = fusion_enabled() if self.fusion is None else self.fusion

        timing = BalanceTiming(self.machine, costs)
        timing.vm.set_demand_source(lambda: HDR.get(region, "live_bytes"))
        stride = layout.blk_stride
        timing.cache.set_demand_source(
            lambda: HDR.get(region, "live_blocks") * stride
        )
        if self.recorder is not None:
            self.recorder.clock = "sim"
        engine = Engine(
            n_locks=cfg.n_locks,
            n_channels=cfg.n_channels,
            timing=timing,
            n_cpus=self.machine.n_cpus,
            trace=self._trace,
            recorder=self.recorder,
        )
        clock = lambda: engine.now  # noqa: E731 - tiny closure
        causal = getattr(self.recorder, "causal", None)
        if causal is not None:
            # Causal hooks are inline calls in the ops generators (no
            # effects), so attaching the tracer reads the simulated clock
            # without ever perturbing the simulated schedule.
            causal.clock = clock
            view.causal = causal
        timeline = getattr(self.recorder, "timeline", None)
        if timeline is not None:
            # Same contract as the causal tracer: plain inline calls, a
            # read-only clock, zero new effects — timeline-enabled runs
            # retire the byte-identical schedule (pinned by tests).
            timeline.clock = clock
            timeline.clock_kind = "sim"
            view.timeline = timeline
        for rank, (name, worker) in enumerate(zip(names, workers)):
            env = Env(view, rank, nprocs, clock)
            engine.spawn(name, worker(env))
        elapsed = engine.run(until=self._until)
        self.last_engine = engine
        self.last_view = view
        report = collect_report(engine, timing)
        if self.recorder is not None:
            # Surface the engine's heap-crossing economics (PR 9) on the
            # recorder so the Prometheus exposition and bench trace can
            # report them without holding the engine itself.
            m = self.recorder.machine
            for k in ("events", "heap_pushes", "heap_pops",
                      "epoch_batches", "epoch_events"):
                m[k] = m.get(k, 0) + getattr(report, k)
        return RunResult(
            results=engine.results(),
            elapsed=elapsed,
            kind=self.kind,
            header=snapshot_header(view),
            report=report,
        )
