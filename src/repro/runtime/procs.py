"""The process runtime: MPF over ``multiprocessing.shared_memory``.

This is the closest analogue of the paper's deployment: "parallel
programs consist of a group of Unix processes ... The shared memory used
by MPF is implemented by mapping a region of physical memory into the
virtual address space of each process" (§4).  Here the region is a POSIX
shared-memory segment, locks are ``multiprocessing.Lock`` and wait
channels ``multiprocessing.Condition`` objects, and workers are forked
Unix processes.

Requires the ``fork`` start method (workers may be closures and inherit
the open segment); the runtime raises a clear error on platforms without
it.  Worker return values travel back over a ``SimpleQueue`` and must be
picklable.
"""

from __future__ import annotations

import multiprocessing as mp
import time
from multiprocessing import shared_memory
from typing import Sequence

from ..core.costmodel import Costs, DEFAULT_COSTS
from ..core.layout import MPFConfig, SegmentLayout, format_region
from ..core.ops import MPFView
from ..core.region import SharedRegion
from .base import Env, RunResult, Runtime, Worker, snapshot_header
from .threads import RealSync, drive

__all__ = ["ProcRuntime"]


class ProcRuntime(Runtime):
    """Run each worker in its own forked Unix process."""

    kind = "procs"

    def __init__(self, join_timeout: float | None = 120.0, recorder=None) -> None:
        self.join_timeout = join_timeout
        #: Optional :class:`repro.obs.Recorder`.  Each forked worker
        #: records into a private child recorder whose picklable
        #: snapshot rides home on the result queue; the parent merges
        #: the snapshots in rank order after the join.
        self.recorder = recorder

    def run(
        self,
        workers: Sequence[Worker],
        cfg: MPFConfig | None = None,
        costs: Costs = DEFAULT_COSTS,
        names: Sequence[str] | None = None,
    ) -> RunResult:
        try:
            ctx = mp.get_context("fork")
        except ValueError as exc:  # pragma: no cover - non-POSIX platforms
            raise RuntimeError(
                "ProcRuntime requires the 'fork' start method (POSIX only)"
            ) from exc

        nprocs = len(workers)
        cfg = self.default_config(nprocs, cfg)
        names = self.process_names(nprocs, names)

        shm = shared_memory.SharedMemory(create=True, size=SegmentLayout(cfg).total_size)
        region = SharedRegion(shm.buf)
        try:
            layout = format_region(region, cfg)
            view = MPFView(region, layout, costs)
            sync = RealSync(cfg, ctx.Lock, ctx.Condition)
            outq = ctx.SimpleQueue()

            t0 = time.perf_counter()
            clock = lambda: time.perf_counter() - t0  # noqa: E731
            if self.recorder is not None:
                self.recorder.clock = "wall"
            recording = self.recorder is not None

            def body(name: str, rank: int, worker: Worker) -> None:
                env = Env(view, rank, nprocs, clock)
                rec = self.recorder.child() if recording else None
                if rec is not None and rec.causal is not None:
                    # Post-fork the view object is this process's private
                    # copy, so attaching the child's tracer here records
                    # only this worker's lifecycle events; they ride home
                    # inside the child snapshot like every other metric.
                    rec.causal.clock = clock
                    view.causal = rec.causal
                if rec is not None and rec.timeline is not None:
                    # Same post-fork privacy: the child timeline rides
                    # home in the snapshot and the parent merges the
                    # children in rank order — the merge is associative
                    # and commutative, so rank order is a convention,
                    # not a correctness requirement.
                    rec.timeline.clock = clock
                    rec.timeline.clock_kind = "wall"
                    view.timeline = rec.timeline
                try:
                    value = drive(worker(env), sync, recorder=rec,
                                  process=name, clock=clock)
                    outq.put((name, True, value,
                              rec.snapshot() if rec else None))
                except BaseException as exc:
                    outq.put((name, False, repr(exc),
                              rec.snapshot() if rec else None))

            procs = [
                ctx.Process(target=body, args=(n, i, w), name=n, daemon=True)
                for i, (n, w) in enumerate(zip(names, workers))
            ]
            for p in procs:
                p.start()

            results: dict[str, object] = {}
            failures: dict[str, str] = {}
            snapshots: dict[str, dict] = {}
            deadline = None if self.join_timeout is None else t0 + self.join_timeout
            for _ in procs:
                if deadline is not None and time.perf_counter() > deadline:
                    break
                name, ok, payload, snap = outq.get()
                if snap is not None:
                    snapshots[name] = snap
                if ok:
                    results[name] = payload
                else:
                    failures[name] = payload
            for p in procs:
                p.join(1.0)
                if p.is_alive():
                    p.terminate()
                    p.join(1.0)
                    if p.name not in results and p.name not in failures:
                        failures[p.name] = "worker did not finish (blocked receive?)"
            if self.recorder is not None:
                for name in names:  # deterministic merge order
                    if name in snapshots:
                        self.recorder.merge(snapshots[name])
            if failures:
                name = sorted(failures)[0]
                raise RuntimeError(f"worker {name!r} failed: {failures[name]}")
            header = snapshot_header(view)
            return RunResult(
                results=results,
                elapsed=time.perf_counter() - t0,
                kind=self.kind,
                header=header,
            )
        finally:
            region.release()
            shm.close()
            shm.unlink()
