"""Runtimes: the paper's "system dependent" part, three ways.

* :class:`~repro.runtime.sim.SimRuntime` — the simulated Balance 21000
  (all performance figures),
* :class:`~repro.runtime.threads.ThreadRuntime` — real OS threads
  (races and functional portability),
* :class:`~repro.runtime.procs.ProcRuntime` — forked Unix processes over
  POSIX shared memory (the paper's actual deployment shape),
* :class:`~repro.runtime.blocking.MPFSystem` — a plain blocking API for
  thread code not written in generator style.
"""

from .base import Env, RunResult, Runtime, Worker
from .blocking import BlockingMPF, MPFSystem
from .posix import PosixSegment
from .procs import ProcRuntime
from .sim import SimRuntime
from .threads import ThreadRuntime

__all__ = [
    "Env",
    "RunResult",
    "Runtime",
    "Worker",
    "SimRuntime",
    "ThreadRuntime",
    "ProcRuntime",
    "MPFSystem",
    "BlockingMPF",
    "PosixSegment",
]
