"""The thread runtime: MPF over real ``threading`` primitives.

Here the shared region is a plain ``bytearray`` visible to every thread,
locks are ``threading.Lock`` objects and the per-circuit wait channels are
``threading.Condition`` objects built *on the circuit's lock* — which
gives :class:`~repro.core.effects.WaitOn` its atomic
release-sleep-reacquire semantics for free.

The GIL means threads cannot add parallel *speed* (and on this repo's
reference host there is one CPU anyway), but they add real *concurrency*:
preemption points interleave the byte-level data-structure manipulation
arbitrarily, so this runtime is the one that stress-tests the locking
discipline of :mod:`repro.core.ops` against real races.
"""

from __future__ import annotations

import threading
import time
from typing import Generator, Sequence

from ..core.costmodel import Costs, DEFAULT_COSTS
from ..core.effects import Acquire, Charge, ChargeMany, Release, WaitOn, Wake
from ..core.errors import DeadlockSuspectedError
from ..core.layout import MPFConfig, SegmentLayout, format_region
from ..core.ops import MPFView
from ..core.protocol import FIRST_LNVC_LOCK
from ..core.region import SharedRegion
from .base import Env, RunResult, Runtime, Worker, snapshot_header

__all__ = ["ThreadRuntime", "drive", "RealSync", "ThreadState"]


class ThreadState:
    """What one driven worker is doing right now, for deadlock dumps.

    Updated by :func:`drive` *before* each blocking call, so when a join
    timeout fires the runtime can report what every stuck thread was
    last waiting on and which locks it still holds.  Plain attribute
    writes only — cheap enough to keep on the uninstrumented path.
    """

    __slots__ = ("blocked_on", "held")

    def __init__(self) -> None:
        #: ``("lock", lock_id)`` / ``("chan", chan)`` while blocking,
        #: ``None`` while running, ``("done",)`` after return.
        self.blocked_on: tuple | None = None
        #: lock ids currently held, in acquisition order.
        self.held: list[int] = []

    def dump(self) -> dict:
        return {"blocked_on": self.blocked_on, "held": list(self.held)}


class RealSync:
    """Locks and conditions for a real (non-simulated) runtime.

    ``conditions[slot]`` shares the lock object of circuit ``slot``; a
    ``WaitOn(chan=slot, lock_id=FIRST_LNVC_LOCK + slot)`` maps directly to
    ``conditions[slot].wait()``.
    """

    def __init__(self, cfg: MPFConfig, lock_factory, condition_factory) -> None:
        self.locks = [lock_factory() for _ in range(cfg.n_locks)]
        self.conditions = [
            condition_factory(self.locks[FIRST_LNVC_LOCK + slot])
            for slot in range(cfg.n_channels)
        ]


def drive(
    gen: Generator,
    sync: RealSync,
    recorder=None,
    process: str = "p0",
    clock=None,
    state: ThreadState | None = None,
) -> object:
    """Trampoline: run an effect generator against real primitives.

    Returns the generator's return value.  ``Charge`` effects are free —
    real time passes on its own.

    With a :class:`repro.obs.Recorder` attached, the trampoline measures
    each blocking primitive with ``clock`` (default
    ``time.perf_counter``): lock wait time (via a non-blocking first
    attempt where the lock supports it), lock hold time, and condition
    sleep time — the same profile the simulated engine records in
    simulated time.  ``Charge`` labels are tallied by instruction budget
    (their wall time is zero: real compute takes real time by itself).
    """
    if state is None:
        state = ThreadState()
    if recorder is None:
        value: object = None
        while True:
            try:
                effect = gen.send(value)
            except StopIteration as stop:
                state.blocked_on = ("done",)
                return stop.value
            value = None
            if isinstance(effect, (Charge, ChargeMany)):
                continue
            if isinstance(effect, Acquire):
                state.blocked_on = ("lock", effect.lock_id)
                sync.locks[effect.lock_id].acquire()
                state.blocked_on = None
                state.held.append(effect.lock_id)
            elif isinstance(effect, Release):
                sync.locks[effect.lock_id].release()
                state.held.remove(effect.lock_id)
            elif isinstance(effect, WaitOn):
                expected = FIRST_LNVC_LOCK + effect.chan
                if effect.lock_id != expected:
                    raise RuntimeError(
                        f"WaitOn(chan={effect.chan}) under lock {effect.lock_id}; "
                        f"expected circuit lock {expected}"
                    )
                # The caller holds the circuit lock, which is exactly the
                # condition's lock: wait() releases and reacquires atomically.
                state.blocked_on = ("chan", effect.chan)
                state.held.remove(effect.lock_id)
                sync.conditions[effect.chan].wait()
                state.blocked_on = None
                state.held.append(effect.lock_id)
            elif isinstance(effect, Wake):
                cond = sync.conditions[effect.chan]
                # MPF wakes after releasing the circuit lock, so take the
                # condition's lock briefly to notify.
                with cond:
                    cond.notify_all()
            else:
                raise RuntimeError(
                    f"non-effect {effect!r} yielded to real runtime"
                )
    return _drive_recorded(gen, sync, recorder, process,
                           clock or time.perf_counter, state)


def _drive_recorded(gen: Generator, sync: RealSync, recorder,
                    process: str, clock, state: ThreadState) -> object:
    """The instrumented twin of :func:`drive` (kept separate so the
    common uninstrumented path stays allocation-free)."""
    held_since: dict[int, float] = {}
    value: object = None
    while True:
        try:
            effect = gen.send(value)
        except StopIteration as stop:
            state.blocked_on = ("done",)
            return stop.value
        value = None
        if isinstance(effect, Charge):
            w = effect.work
            recorder.on_charge(clock(), process, w.label, 0.0,
                               w.instrs, w.flops)
        elif isinstance(effect, ChargeMany):
            now = clock()
            for w in effect.works:
                recorder.on_charge(now, process, w.label, 0.0,
                                   w.instrs, w.flops)
        elif isinstance(effect, Acquire):
            lock = sync.locks[effect.lock_id]
            contended = False
            try:
                got = lock.acquire(False)
            except TypeError:  # lock type without a non-blocking mode
                got = False
            if not got:
                state.blocked_on = ("lock", effect.lock_id)
                t0 = clock()
                lock.acquire()
                wait = clock() - t0
                contended = True
            else:
                wait = 0.0
            state.blocked_on = None
            state.held.append(effect.lock_id)
            now = clock()
            recorder.on_acquire(now, process, effect.lock_id, wait, contended)
            held_since[effect.lock_id] = now
        elif isinstance(effect, Release):
            lock = sync.locks[effect.lock_id]
            lock.release()
            state.held.remove(effect.lock_id)
            now = clock()
            recorder.on_release(now, process, effect.lock_id,
                                now - held_since.pop(effect.lock_id, now))
        elif isinstance(effect, WaitOn):
            expected = FIRST_LNVC_LOCK + effect.chan
            if effect.lock_id != expected:
                raise RuntimeError(
                    f"WaitOn(chan={effect.chan}) under lock {effect.lock_id}; "
                    f"expected circuit lock {expected}"
                )
            t0 = clock()
            recorder.on_release(t0, process, effect.lock_id,
                                t0 - held_since.pop(effect.lock_id, t0),
                                counted=False)
            state.blocked_on = ("chan", effect.chan)
            state.held.remove(effect.lock_id)
            sync.conditions[effect.chan].wait()
            state.blocked_on = None
            state.held.append(effect.lock_id)
            now = clock()
            recorder.on_chan_wait(now, process, effect.chan, now - t0)
            # wait() returns with the circuit lock re-held: a new hold
            # span starts, without counting an Acquire effect.
            recorder.on_acquire(now, process, effect.lock_id, 0.0,
                                contended=False, counted=False)
            held_since[effect.lock_id] = now
        elif isinstance(effect, Wake):
            cond = sync.conditions[effect.chan]
            with cond:
                cond.notify_all()
            # Real conditions do not report how many sleepers they woke.
            recorder.on_wake(clock(), process, effect.chan, 0)
        else:
            raise RuntimeError(f"non-effect {effect!r} yielded to real runtime")


class ThreadRuntime(Runtime):
    """Run each worker in its own OS thread."""

    kind = "threads"

    def __init__(self, join_timeout: float | None = 120.0, recorder=None) -> None:
        #: Seconds to wait for worker threads; ``None`` waits forever.  A
        #: blocked-forever receive (paper §3.2's lost-message hazard)
        #: surfaces as a timeout error instead of a hang.
        self.join_timeout = join_timeout
        #: Optional :class:`repro.obs.Recorder`.  Each worker thread
        #: records into a private child recorder (so measurement adds no
        #: cross-thread contention of its own) merged after the join.
        self.recorder = recorder
        self.last_view: MPFView | None = None

    def run(
        self,
        workers: Sequence[Worker],
        cfg: MPFConfig | None = None,
        costs: Costs = DEFAULT_COSTS,
        names: Sequence[str] | None = None,
    ) -> RunResult:
        nprocs = len(workers)
        cfg = self.default_config(nprocs, cfg)
        names = self.process_names(nprocs, names)

        region = SharedRegion(bytearray(SegmentLayout(cfg).total_size))
        layout = format_region(region, cfg)
        view = MPFView(region, layout, costs)
        sync = RealSync(cfg, threading.Lock, threading.Condition)

        t0 = time.perf_counter()
        clock = lambda: time.perf_counter() - t0  # noqa: E731

        results: dict[str, object] = {}
        errors: dict[str, BaseException] = {}
        locals_: dict[str, object] = {}
        if self.recorder is not None:
            self.recorder.clock = "wall"
            causal = getattr(self.recorder, "causal", None)
            if causal is not None:
                # One shared tracer on the shared view: list appends are
                # GIL-atomic, and the parent tracer receiving events
                # directly means the (empty) child tracers merge as
                # no-ops after the join.
                causal.clock = clock
                view.causal = causal
            timeline = getattr(self.recorder, "timeline", None)
            if timeline is not None:
                # One shared timeline on the shared view: dict updates to
                # monotonic counters are GIL-atomic (the causal-tracer
                # compromise), while recorder-hook taps (lock waits) land
                # on per-thread child timelines merged in name order
                # after the join.
                timeline.clock = clock
                view.timeline = timeline

        states = {name: ThreadState() for name in names}

        def body(name: str, rank: int, worker: Worker) -> None:
            env = Env(view, rank, nprocs, clock)
            rec = None
            if self.recorder is not None:
                rec = locals_[name] = self.recorder.child()
            try:
                results[name] = drive(worker(env), sync, recorder=rec,
                                      process=name, clock=clock,
                                      state=states[name])
            except BaseException as exc:  # surfaced after join
                errors[name] = exc

        threads = [
            threading.Thread(target=body, args=(n, i, w), name=n, daemon=True)
            for i, (n, w) in enumerate(zip(names, workers))
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join(self.join_timeout)
            if t.is_alive():
                stuck = {
                    th.name: states[th.name].dump()
                    for th in threads if th.is_alive()
                }
                lines = [
                    f"  {n}: blocked_on={d['blocked_on']} held={d['held']}"
                    for n, d in sorted(stuck.items())
                ]
                # A worker that died early (its peers now wait forever on
                # it) is the likelier root cause than a true deadlock —
                # name those errors instead of masking them.
                lines += [
                    f"  {n}: died with {errors[n]!r}"
                    for n in sorted(errors)
                ]
                raise DeadlockSuspectedError(
                    f"worker {t.name!r} did not finish within "
                    f"{self.join_timeout}s (blocked receive?); "
                    f"{len(stuck)} thread(s) still alive:\n"
                    + "\n".join(lines),
                    threads=stuck,
                )
        if self.recorder is not None:
            for name in names:  # deterministic merge order
                rec = locals_.get(name)
                if rec is not None:
                    self.recorder.merge(rec.snapshot())
        if errors:
            name = sorted(errors)[0]
            raise errors[name]
        self.last_view = view
        return RunResult(
            results=results,
            elapsed=time.perf_counter() - t0,
            kind=self.kind,
            header=snapshot_header(view),
        )
