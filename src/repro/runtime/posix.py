"""MPF for *independent* OS processes over a named POSIX segment.

The paper's deployment (§4): "parallel programs consist of a group of
Unix processes ... The shared memory used by MPF is implemented by
mapping a region of physical memory into the virtual address space of
each process."  :class:`ProcRuntime` forks its workers; this module
covers the stronger case — processes that were *not* forked from a
common parent (separate ``python`` invocations, different scripts)
rendezvousing purely by name:

* the segment is a named POSIX shared-memory object
  (``/dev/shm/<name>``),
* each MPF lock is an ``flock``-ed file under a per-segment directory,
* the blocking-receive wait channel degrades to polling (release the
  lock, sleep briefly, reacquire, recheck) — correct against the
  ``WaitOn`` contract, merely less efficient than a condition variable.
  This is exactly the spirit of the paper's portability claim: any
  system with "locking and memory sharing between concurrently
  executing processes" can host MPF, trading elegance for reach.

Creator side::

    seg = PosixSegment.create("demo", MPFConfig(max_lnvcs=8, max_processes=4))
    mpf = seg.client(pid=0)
    ...
    seg.unlink()          # when the whole application is done

Attacher side (any other process)::

    seg = PosixSegment.attach("demo", MPFConfig(max_lnvcs=8, max_processes=4))
    mpf = seg.client(pid=1)
"""

from __future__ import annotations

import fcntl
import os
import tempfile
import time
from multiprocessing import shared_memory

from ..core.costmodel import Costs, DEFAULT_COSTS
from ..core.layout import MPFConfig, SegmentLayout, check_region, format_region
from ..core.ops import MPFView
from ..core.protocol import FIRST_LNVC_LOCK
from ..core.region import SharedRegion
from .blocking import BlockingMPF

__all__ = ["FileLock", "PollingCondition", "FlockSync", "PosixSegment"]


class FileLock:
    """An exclusive ``flock`` on one file; one instance per process."""

    __slots__ = ("path", "_fh")

    def __init__(self, path: str) -> None:
        self.path = path
        self._fh = open(path, "a+b")  # noqa: SIM115 - held for object lifetime

    def acquire(self, blocking: bool = True) -> bool:
        if not blocking:
            try:
                fcntl.flock(self._fh, fcntl.LOCK_EX | fcntl.LOCK_NB)
            except OSError:
                return False
            return True
        fcntl.flock(self._fh, fcntl.LOCK_EX)
        return True

    def release(self) -> None:
        fcntl.flock(self._fh, fcntl.LOCK_UN)

    def __enter__(self) -> "FileLock":
        self.acquire()
        return self

    def __exit__(self, *exc) -> None:
        self.release()

    def close(self) -> None:
        self._fh.close()


class PollingCondition:
    """Degraded condition variable: wait = unlock, nap, relock.

    Satisfies the ``WaitOn`` contract (the caller re-holds the lock on
    return and re-checks its predicate in a loop); ``notify_all`` is a
    no-op because sleepers poll.  ``interval`` bounds wake-up latency.
    """

    __slots__ = ("lock", "interval")

    def __init__(self, lock: FileLock, interval: float = 0.002) -> None:
        self.lock = lock
        self.interval = interval

    def wait(self) -> None:
        self.lock.release()
        time.sleep(self.interval)
        self.lock.acquire()

    def notify_all(self) -> None:  # sleepers poll; nothing to do
        pass

    def __enter__(self) -> "PollingCondition":
        self.lock.acquire()
        return self

    def __exit__(self, *exc) -> None:
        self.lock.release()


class FlockSync:
    """Drop-in for :class:`~repro.runtime.threads.RealSync` over flocks."""

    def __init__(self, lock_dir: str, cfg: MPFConfig,
                 poll_interval: float = 0.002) -> None:
        self.locks = [
            FileLock(os.path.join(lock_dir, f"lock{i}"))
            for i in range(cfg.n_locks)
        ]
        self.conditions = [
            PollingCondition(self.locks[FIRST_LNVC_LOCK + slot], poll_interval)
            for slot in range(cfg.n_channels)
        ]

    def close(self) -> None:
        for lock in self.locks:
            lock.close()


def _lock_dir(name: str) -> str:
    return os.path.join(tempfile.gettempdir(), f"mpf-{name}.locks")


class PosixSegment:
    """A named MPF segment shared by unrelated processes."""

    def __init__(self, name: str, cfg: MPFConfig, shm, view: MPFView,
                 sync: FlockSync, owner: bool) -> None:
        self.name = name
        self.cfg = cfg
        self._shm = shm
        self.view = view
        self._sync = sync
        self._owner = owner

    # -- lifecycle --------------------------------------------------------------

    @classmethod
    def create(cls, name: str, cfg: MPFConfig | None = None,
               costs: Costs = DEFAULT_COSTS,
               poll_interval: float = 0.002) -> "PosixSegment":
        """Create and format the named segment and its lock files."""
        cfg = cfg or MPFConfig()
        lock_dir = _lock_dir(name)
        os.makedirs(lock_dir, exist_ok=True)
        for i in range(cfg.n_locks):
            open(os.path.join(lock_dir, f"lock{i}"), "a").close()
        shm = shared_memory.SharedMemory(
            create=True, name=name, size=SegmentLayout(cfg).total_size
        )
        region = SharedRegion(shm.buf)
        layout = format_region(region, cfg)
        view = MPFView(region, layout, costs)
        sync = FlockSync(lock_dir, cfg, poll_interval)
        return cls(name, cfg, shm, view, sync, owner=True)

    @classmethod
    def attach(cls, name: str, cfg: MPFConfig | None = None,
               costs: Costs = DEFAULT_COSTS,
               poll_interval: float = 0.002) -> "PosixSegment":
        """Attach to an existing named segment; validates the format."""
        cfg = cfg or MPFConfig()
        shm = shared_memory.SharedMemory(name=name)
        # Only the creator owns the segment's lifetime; stop this
        # process's resource tracker from also trying to unlink it.
        try:
            from multiprocessing import resource_tracker

            resource_tracker.unregister(shm._name, "shared_memory")
        except Exception:  # pragma: no cover - tracker internals moved
            pass
        region = SharedRegion(shm.buf)
        try:
            layout = check_region(region, cfg)
        except Exception:
            region.release()
            shm.close()
            raise
        view = MPFView(region, layout, costs)
        sync = FlockSync(_lock_dir(name), cfg, poll_interval)
        return cls(name, cfg, shm, view, sync, owner=False)

    def client(self, pid: int, recorder=None) -> BlockingMPF:
        """A blocking MPF client bound to process id ``pid``.

        ``recorder`` (a :class:`repro.obs.Recorder`) makes this client
        record wall-clock lock-contention and work metrics — over flock
        files the non-blocking first attempt uses ``LOCK_NB``, so
        contended and uncontended acquisitions are distinguished exactly
        as with in-process locks.
        """
        if not 0 <= pid < self.cfg.max_processes:
            raise ValueError(f"pid {pid} outside [0, {self.cfg.max_processes})")
        return BlockingMPF(self.view, self._sync, pid, recorder=recorder)

    def close(self) -> None:
        """Detach this process (the segment itself survives)."""
        self._sync.close()
        self.view.region.release()
        self._shm.close()

    def unlink(self) -> None:
        """Destroy the segment and its lock files (creator, at the end)."""
        self.close()
        try:
            self._shm.unlink()
        except FileNotFoundError:  # pragma: no cover - already gone
            pass
        lock_dir = _lock_dir(self.name)
        for i in range(self.cfg.n_locks):
            try:
                os.unlink(os.path.join(lock_dir, f"lock{i}"))
            except FileNotFoundError:  # pragma: no cover
                pass
        try:
            os.rmdir(lock_dir)
        except OSError:  # pragma: no cover - leftover foreign files
            pass

    def __enter__(self) -> "PosixSegment":
        return self

    def __exit__(self, *exc) -> None:
        if self._owner:
            self.unlink()
        else:
            self.close()
