"""Runtime interface: the paper's "system dependent" boundary.

Paper §5: "the implementation is completely portable between shared
memory multiprocessors that provide locking and memory sharing between
concurrently executing processes."  A :class:`Runtime` is exactly that
pair of facilities — a shared region plus locks/conditions — together
with a way to run a set of processes.

User programs are *generator functions* receiving an :class:`Env`::

    def worker(env: Env):
        cid = yield from env.open_send("results")
        yield from env.message_send(cid, b"hello")
        yield from env.close_send(cid)

The generator style is what lets one program run unchanged on the
simulated Balance 21000 (where blocking must suspend a coroutine) and on
real threads or processes (where the trampoline simply drives the
generator to completion).  Real-runtime users who prefer ordinary
blocking calls can use :class:`repro.runtime.blocking.BlockingMPF`.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Callable, Generator, Sequence

from ..core import ops
from ..core.costmodel import Costs, DEFAULT_COSTS
from ..core.effects import Charge
from ..core.layout import HDR, MPFConfig
from ..core.ops import MPFView
from ..core.protocol import Protocol
from ..core.work import Work

__all__ = ["Env", "Worker", "RunResult", "Runtime"]

#: A process body: a generator function taking its :class:`Env`.
Worker = Callable[["Env"], Generator]


class Env:
    """Per-process handle to MPF and the machine.

    Every MPF method is a *generator*; call it with ``yield from``.  The
    method set mirrors the paper's §2 interface one-to-one, with
    ``process_id`` bound to this environment's rank.
    """

    __slots__ = ("view", "rank", "nprocs", "_clock")

    def __init__(
        self,
        view: MPFView,
        rank: int,
        nprocs: int,
        clock: Callable[[], float],
    ) -> None:
        self.view = view
        #: This process's identifier (the paper's ``process_id``).
        self.rank = rank
        #: Number of processes in the program.
        self.nprocs = nprocs
        self._clock = clock

    # -- the eight MPF primitives (paper §2) ---------------------------------

    def open_send(self, name: str):
        """Open a send connection on the circuit ``name`` (creates it)."""
        return ops.open_send(self.view, self.rank, name)

    def open_receive(self, name: str, protocol: Protocol):
        """Open a receive connection with the FCFS or BROADCAST protocol."""
        return ops.open_receive(self.view, self.rank, name, protocol)

    def close_send(self, lnvc_id: int):
        """Close this process's send connection on the circuit."""
        return ops.close_send(self.view, self.rank, lnvc_id)

    def close_receive(self, lnvc_id: int):
        """Close this process's receive connection on the circuit."""
        return ops.close_receive(self.view, self.rank, lnvc_id)

    def message_send(self, lnvc_id: int, data: bytes, prelude: Work | None = None):
        """Asynchronously send ``data``; returns the message sequence number.

        ``prelude`` fuses compute-only application work with the send's
        entry charge (one scheduler event instead of two) — equivalent to
        ``yield from env.compute(...)`` immediately before the call.
        """
        return ops.message_send(self.view, self.rank, lnvc_id, data, prelude)

    def message_receive(self, lnvc_id: int, max_len: int | None = None):
        """Blocking receive; returns the payload bytes."""
        return ops.message_receive(self.view, self.rank, lnvc_id, max_len)

    def check_receive(self, lnvc_id: int, prelude: Work | None = None):
        """Count messages currently available to this process (advisory).

        ``prelude`` fuses compute-only application work with the check's
        entry charge, as in :meth:`message_send`.
        """
        return ops.check_receive(self.view, self.rank, lnvc_id, prelude)

    # -- machine interaction ---------------------------------------------------

    def compute(self, *, flops: int = 0, instrs: int = 0):
        """Account for application compute between communications.

        On the simulated machine this advances the virtual clock (the
        Gauss–Jordan and SOR figures depend on it); on real runtimes it is
        free — real compute takes real time by itself.
        """
        yield Charge(Work(flops=flops, instrs=instrs, label="app-compute"))

    def now(self) -> float:
        """Current time: simulated seconds or wall-clock seconds."""
        return self._clock()

    def gauge(self, series: str, value: float) -> None:
        """Sample an application-level gauge onto the run's timeline.

        ``series`` is a ``"<series>|<metric>"`` key (the serve topology
        samples ``"tier:frontends|backlog"`` and friends).  A no-op —
        not even a clock read — unless a timeline is attached, so
        instrumented programs cost nothing to run unobserved.
        """
        tl = self.view.timeline
        if tl is not None:
            tl.gauge(self._clock(), series, value)


@dataclass
class RunResult:
    """Outcome of one program run."""

    #: Map process name → generator return value.
    results: dict[str, object]
    #: Simulated seconds (sim runtime) or wall seconds (real runtimes).
    elapsed: float
    #: Which runtime produced this: ``"sim"``, ``"threads"`` or ``"procs"``.
    kind: str
    #: Final segment statistics (header counters).
    header: dict[str, int] = field(default_factory=dict)
    #: Machine counters; sim runtime only.
    report: object | None = None

    def result_list(self) -> list[object]:
        """Return values ordered by process rank (``p0``, ``p1``, ...)."""
        return [self.results[k] for k in sorted(self.results, key=_rank_key)]


def _rank_key(name: str) -> tuple[int, str]:
    digits = "".join(ch for ch in name if ch.isdigit())
    return (int(digits) if digits else 0, name)


def snapshot_header(view: MPFView) -> dict[str, int]:
    """Read every header counter (for :attr:`RunResult.header`)."""
    fields = list(HDR.u32) + list(HDR.u64)
    return {f: HDR.get(view.region, f) for f in fields}


class Runtime(abc.ABC):
    """A way to run MPF programs: shared memory + locks + processes."""

    #: Human-readable runtime kind.
    kind: str = "abstract"

    #: Optional :class:`repro.obs.Recorder` attached at construction
    #: (``SimRuntime(recorder=...)``, ``ThreadRuntime(recorder=...)``,
    #: ``ProcRuntime(recorder=...)``).  Runtimes feed it the same
    #: structured metrics — per-lock wait/hold, per-Work-label split —
    #: in whatever timebase they have: simulated seconds on the
    #: simulator, wall-clock seconds on real threads and processes.
    #: Recording is observational; ``None`` costs nothing.
    recorder = None

    @abc.abstractmethod
    def run(
        self,
        workers: Sequence[Worker],
        cfg: MPFConfig | None = None,
        costs: Costs = DEFAULT_COSTS,
        names: Sequence[str] | None = None,
    ) -> RunResult:
        """Run one worker process per element of ``workers``.

        ``cfg`` sizes the shared segment (defaults derive
        ``max_processes`` from ``len(workers)``).  ``names`` labels the
        processes; default ``p0 .. pN-1``.
        """

    @staticmethod
    def default_config(nprocs: int, cfg: MPFConfig | None) -> MPFConfig:
        """Fill in a config when the caller did not pass one."""
        if cfg is not None:
            return cfg
        return MPFConfig(max_lnvcs=max(32, 2 * nprocs), max_processes=max(2, nprocs))

    @staticmethod
    def process_names(n: int, names: Sequence[str] | None) -> list[str]:
        if names is None:
            return [f"p{i}" for i in range(n)]
        if len(names) != n:
            raise ValueError("names must match workers")
        if len(set(names)) != n:
            raise ValueError("process names must be unique")
        return list(names)
