"""Blocking convenience facade for real runtimes.

The coroutine (``yield from``) API exists so one program can run on the
simulated machine; code that only targets real threads or processes can
use :class:`BlockingMPF`, whose methods are ordinary blocking calls — the
closest Python rendering of the paper's C interface (§2).

Typical use::

    system = MPFSystem(MPFConfig(max_lnvcs=8, max_processes=4))
    mpf = system.client(pid=0)          # one client per thread/process
    cid = mpf.open_send("results")
    mpf.message_send(cid, b"hello")
    mpf.close_send(cid)

A :class:`MPFSystem` owns the shared segment and the synchronization
objects; clients are cheap views bound to a process id.
"""

from __future__ import annotations

import threading

from ..core import ops
from ..core.costmodel import Costs, DEFAULT_COSTS
from ..core.layout import MPFConfig, SegmentLayout, format_region
from ..core.ops import MPFView
from ..core.protocol import Protocol
from ..core.region import SharedRegion
from .threads import RealSync, drive

__all__ = ["MPFSystem", "BlockingMPF"]


class MPFSystem:
    """A shared MPF segment plus real synchronization, for threads.

    This is the blocking-API analogue of the paper's ``init()``: it
    allocates and formats the shared memory and creates the locks.
    """

    def __init__(self, cfg: MPFConfig | None = None, costs: Costs = DEFAULT_COSTS) -> None:
        self.cfg = cfg or MPFConfig()
        region = SharedRegion(bytearray(SegmentLayout(self.cfg).total_size))
        layout = format_region(region, self.cfg)
        self.view = MPFView(region, layout, costs)
        self.sync = RealSync(self.cfg, threading.Lock, threading.Condition)

    def client(self, pid: int, recorder=None) -> "BlockingMPF":
        """A blocking client bound to process id ``pid``.

        Each concurrent thread must use its own ``pid`` — process ids are
        the identity MPF uses for connections, exactly as in the paper.
        ``recorder`` (a :class:`repro.obs.Recorder`) makes every call of
        this client record wall-clock lock and work metrics.
        """
        if not 0 <= pid < self.cfg.max_processes:
            raise ValueError(f"pid {pid} outside [0, {self.cfg.max_processes})")
        return BlockingMPF(self.view, self.sync, pid, recorder=recorder)


class BlockingMPF:
    """The eight MPF primitives as plain blocking calls."""

    __slots__ = ("view", "sync", "pid", "recorder", "process")

    def __init__(self, view: MPFView, sync: RealSync, pid: int,
                 recorder=None, process: str | None = None) -> None:
        self.view = view
        self.sync = sync
        self.pid = pid
        #: Optional :class:`repro.obs.Recorder` (wall-clock metrics).
        self.recorder = recorder
        #: Process label used in recorded metrics; defaults to ``p<pid>``.
        self.process = process or f"p{pid}"
        causal = getattr(recorder, "causal", None)
        if causal is not None:
            # A causal recorder makes this client's view emit lifecycle
            # events (wall clock).  One tracer serves the whole segment
            # in this process; clients of one segment should share a
            # recorder — the last attached tracer wins otherwise.
            self.view.causal = causal
        timeline = getattr(recorder, "timeline", None)
        if timeline is not None:
            # A timeline-enabled recorder windows this client's traffic
            # on wall seconds (the timeline self-anchors at its first
            # tap); same last-attached-wins sharing rule as the tracer.
            self.view.timeline = timeline

    def _drive(self, gen) -> object:
        return drive(gen, self.sync, recorder=self.recorder,
                     process=self.process)

    def open_send(self, name: str) -> int:
        """Open (creating if needed) a send connection; returns the circuit id."""
        return self._drive(ops.open_send(self.view, self.pid, name))

    def open_receive(self, name: str, protocol: Protocol) -> int:
        """Open a receive connection with the given protocol."""
        return self._drive(ops.open_receive(self.view, self.pid, name, protocol))

    def close_send(self, lnvc_id: int) -> None:
        """Close this process's send connection."""
        self._drive(ops.close_send(self.view, self.pid, lnvc_id))

    def close_receive(self, lnvc_id: int) -> None:
        """Close this process's receive connection."""
        self._drive(ops.close_receive(self.view, self.pid, lnvc_id))

    def message_send(self, lnvc_id: int, data: bytes) -> int:
        """Send asynchronously; returns the message sequence number."""
        return self._drive(ops.message_send(self.view, self.pid, lnvc_id, data))

    def message_receive(self, lnvc_id: int, max_len: int | None = None) -> bytes:
        """Blocking receive; returns the payload."""
        return self._drive(
            ops.message_receive(self.view, self.pid, lnvc_id, max_len)
        )

    def check_receive(self, lnvc_id: int) -> int:
        """Count messages currently available to this process."""
        return self._drive(ops.check_receive(self.view, self.pid, lnvc_id))
