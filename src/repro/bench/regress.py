"""``python -m repro.bench regress`` — the wall-time trajectory gate.

Every PR archives its figure wall clocks as ``BENCH_<label>.json`` (the
``--timings`` output, wrapped in whatever envelope that PR used).  This
tool loads the whole trajectory, compares the newest snapshot against
its predecessor figure-by-figure, and exits nonzero when a figure got
slower by more than the noise-aware threshold — the CI step that keeps
"the interpreter got 40% slower" from landing silently.

The threshold is deliberately generous: BENCH_pr9.json documents that
wall clocks on the virtualized 1-CPU CI/dev hosts drift by ~10% on the
timescale of a full run, so single-digit-percent deltas are weather,
not signal.  A figure is flagged only when it is BOTH ``--tolerance``
(default 50%) slower relatively AND ``--min-delta`` (default 0.2s)
slower absolutely — tiny figures jitter wildly in relative terms while
staying irrelevant in absolute ones.
"""

from __future__ import annotations

import argparse
import glob
import json
import os
import re

__all__ = ["load_bench", "order_bench", "compare_bench", "regress_main"]

_LABEL_RE = re.compile(r"BENCH_(?:pr)?(\d+|seed)\.json$")


def load_bench(path: str) -> dict:
    """Normalize one ``BENCH_*.json`` into ``{label, figures, total}``.

    The envelope drifted across PRs — per-figure walls live at
    ``$.figures`` in the earliest files and at ``$.serial.figures``
    later — so this reader accepts both and derives a total when none
    was archived.
    """
    with open(path) as fh:
        doc = json.load(fh)
    serial = doc.get("serial") if isinstance(doc.get("serial"), dict) \
        else {}
    figures = serial.get("figures") or doc.get("figures") or {}
    if not isinstance(figures, dict) or not figures:
        raise ValueError(f"{path}: no per-figure walls found")
    # Some envelopes fold a roll-up key into the figure dict itself.
    rollup = figures.pop("sum_of_min_walls", None)
    figures = {name: float(wall) for name, wall in figures.items()}
    total = (rollup or serial.get("total_seconds")
             or doc.get("total_seconds") or doc.get("total_wall_seconds")
             or round(sum(figures.values()), 2))
    m = _LABEL_RE.search(os.path.basename(path))
    label = doc.get("label") or (f"pr{m.group(1)}" if m and m.group(1)
                                 != "seed" else "seed")
    return {"label": label, "path": path, "figures": figures,
            "total": float(total)}


def _seq(path: str) -> int:
    m = _LABEL_RE.search(os.path.basename(path))
    if not m:
        return -1
    return 0 if m.group(1) == "seed" else int(m.group(1))


def order_bench(paths: list[str]) -> list[str]:
    """Trajectory order: ``BENCH_seed`` first, then ``BENCH_prN`` by N."""
    known = [p for p in paths if _LABEL_RE.search(os.path.basename(p))]
    return sorted(known, key=_seq)


def compare_bench(prior: dict, newest: dict, tolerance: float,
                  min_delta: float) -> tuple[list[dict], list[str]]:
    """Figure-by-figure rows plus the list of regressed figure names."""
    rows, regressed = [], []
    for name in sorted(set(prior["figures"]) | set(newest["figures"])):
        old = prior["figures"].get(name)
        new = newest["figures"].get(name)
        row = {"figure": name, "prior": old, "newest": new}
        if old is None or new is None:
            row["verdict"] = "added" if old is None else "removed"
        else:
            ratio = new / old if old > 0 else float("inf")
            row["ratio"] = ratio
            slow = ratio > 1.0 + tolerance and new - old > min_delta
            row["verdict"] = "REGRESSED" if slow else "ok"
            if slow:
                regressed.append(name)
        rows.append(row)
    return rows, regressed


def regress_main(argv: list[str]) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench regress",
        description="Compare the newest BENCH_*.json wall-clock snapshot "
        "against its predecessor and fail on figure-level regressions.",
    )
    parser.add_argument(
        "--dir", default=".", metavar="PATH",
        help="directory holding the BENCH_*.json trajectory (default .)",
    )
    parser.add_argument(
        "--tolerance", type=float, default=0.5, metavar="FRAC",
        help="relative slowdown that counts as a regression (default "
        "0.5 = 50%%; the archived runs document ~10%% ambient host "
        "drift, so keep this comfortably above that)",
    )
    parser.add_argument(
        "--min-delta", type=float, default=0.2, metavar="SECONDS",
        help="absolute slowdown floor (default 0.2s): sub-second "
        "figures jitter hugely in relative terms",
    )
    args = parser.parse_args(argv)

    paths = order_bench(glob.glob(os.path.join(args.dir, "BENCH_*.json")))
    if len(paths) < 2:
        print(f"bench regress: need at least two BENCH_*.json snapshots "
              f"in {args.dir!r}, found {len(paths)} — nothing to compare")
        return 0
    prior, newest = load_bench(paths[-2]), load_bench(paths[-1])
    rows, regressed = compare_bench(prior, newest, args.tolerance,
                                    args.min_delta)

    print(f"bench regress: {newest['label']} vs {prior['label']} "
          f"(tolerance +{100 * args.tolerance:g}%, "
          f"floor {args.min_delta:g}s)")
    width = max(len(r["figure"]) for r in rows)
    print(f"  {'figure':<{width}} {'prior s':>9} {'newest s':>9} "
          f"{'ratio':>7}  verdict")
    for r in rows:
        old = "-" if r["prior"] is None else f"{r['prior']:.2f}"
        new = "-" if r["newest"] is None else f"{r['newest']:.2f}"
        ratio = f"{r['ratio']:.2f}x" if "ratio" in r else "-"
        print(f"  {r['figure']:<{width}} {old:>9} {new:>9} {ratio:>7}  "
              f"{r['verdict']}")
    print(f"  {'TOTAL':<{width}} {prior['total']:>9.2f} "
          f"{newest['total']:>9.2f}")
    print("  note: walls on the archived virtualized 1-CPU hosts drift "
          "by ~10% run-to-run (see BENCH_pr9.json); deltas inside the "
          "tolerance are weather, not signal.")
    if regressed:
        print(f"  REGRESSION: {', '.join(regressed)} slowed past the "
              "threshold — investigate before merging (or re-measure "
              "interleaved, as BENCH_pr9.json did, if host drift is "
              "suspected).")
        return 1
    print("  no figure regressed past the threshold.")
    return 0
