"""Plain-text plots of benchmark series (no plotting dependencies).

Renders a :class:`~repro.bench.harness.SweepResult` as an ASCII scatter
chart whose shape is directly comparable to the paper's figures.  Each
series is drawn with its own marker; shared points get ``*``.

    python -m repro.bench fig5 --plot
"""

from __future__ import annotations

from .harness import SweepResult

__all__ = ["ascii_plot"]

_MARKERS = "ox+#@%&$"


def ascii_plot(result: SweepResult, width: int = 64, height: int = 18) -> str:
    """Render ``result`` as a text chart of ``width`` x ``height`` cells."""
    points = [(s.label, p.x, p.y) for s in result.series for p in s.points]
    if not points:
        return f"{result.figure}: (no data)"
    xs = [p[1] for p in points]
    ys = [p[2] for p in points]
    x0, x1 = min(xs), max(xs)
    y0, y1 = 0.0, max(ys) * 1.05 or 1.0
    xspan = (x1 - x0) or 1.0

    grid = [[" "] * width for _ in range(height)]
    markers = {s.label: _MARKERS[i % len(_MARKERS)]
               for i, s in enumerate(result.series)}
    for label, x, y in points:
        col = int((x - x0) / xspan * (width - 1))
        row = height - 1 - int((y - y0) / (y1 - y0) * (height - 1))
        row = min(max(row, 0), height - 1)
        cell = grid[row][col]
        grid[row][col] = markers[label] if cell in (" ", markers[label]) else "*"

    lines = [f"{result.figure}: {result.title}"]
    for i, row in enumerate(grid):
        if i == 0:
            ylab = f"{y1:,.0f}" if y1 >= 100 else f"{y1:.2f}"
        elif i == height - 1:
            ylab = f"{y0:,.0f}" if y1 >= 100 else f"{y0:.2f}"
        else:
            ylab = ""
        lines.append(f"{ylab:>10} |{''.join(row)}|")
    x0lab = f"{x0:g}"
    x1lab = f"{x1:g}"
    pad = width - len(x0lab) - len(x1lab)
    lines.append(" " * 11 + "+" + "-" * width + "+")
    lines.append(" " * 12 + x0lab + " " * max(1, pad) + x1lab)
    lines.append(" " * 12 + f"({result.x_label})")
    legend = "  ".join(f"{m}={label}" for label, m in markers.items())
    lines.append(f"  legend: {legend}   (* = overlap)")
    return "\n".join(lines)
