"""Command-line entry for the figure harness.

Usage::

    python -m repro.bench fig3 fig7        # selected figures
    python -m repro.bench all              # everything (full sweeps)
    python -m repro.bench all --quick      # reduced sweeps
    python -m repro.bench fig6 --json out.json

Each figure prints the table of series the paper plots; ``--json``
archives the raw points.
"""

from __future__ import annotations

import argparse
import json
import sys
import time

from .figures import FIGURES


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench",
        description="Regenerate the MPF paper's figures on the simulated "
        "Sequent Balance 21000.",
    )
    parser.add_argument(
        "figures",
        nargs="+",
        help=f"figure names ({', '.join(FIGURES)}) or 'all'",
    )
    parser.add_argument(
        "--quick", action="store_true", help="reduced sweeps (for CI)"
    )
    parser.add_argument(
        "--json", metavar="PATH", help="also write raw results as JSON"
    )
    parser.add_argument(
        "--plot", action="store_true", help="also render ASCII charts"
    )
    args = parser.parse_args(argv)

    names = list(FIGURES) if "all" in args.figures else args.figures
    unknown = [n for n in names if n not in FIGURES]
    if unknown:
        parser.error(f"unknown figure(s): {', '.join(unknown)}")

    outputs = []
    for name in names:
        t0 = time.perf_counter()
        result = FIGURES[name](args.quick)
        wall = time.perf_counter() - t0
        print(result.format_table())
        if args.plot:
            from .plot import ascii_plot

            print()
            print(ascii_plot(result))
        print(f"  [{wall:.1f}s wall]")
        print()
        outputs.append(result.to_dict())

    if args.json:
        with open(args.json, "w") as fh:
            json.dump(outputs, fh, indent=2)
        print(f"wrote {args.json}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
