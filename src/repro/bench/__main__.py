"""Command-line entry for the figure harness.

Usage::

    python -m repro.bench fig3 fig7        # selected figures
    python -m repro.bench all              # everything (full sweeps)
    python -m repro.bench all --jobs 4     # parallel point runners
    python -m repro.bench all --quick      # reduced sweeps
    python -m repro.bench fig6 --json out.json
    python -m repro.bench fig4 --transport ring   # ring instead of free list
    python -m repro.bench all --repeat 3   # interleaved min-of-3 walls

Each figure prints the table of series the paper plots; ``--json``
archives the raw points.  ``--transport ring`` reruns the workload
figures (fig3-fig6) over the ring transport (docs/transport.md); the
dedicated head-to-head entries are ``ablation_transport_fcfs`` /
``_bcast`` / ``_random``.  ``--jobs N`` measures sweep points on a pool
of N worker processes; every point is an independent deterministic
simulation and results are reassembled in sweep order, so the output is
byte-identical to a serial run.  ``--timings PATH`` archives per-figure
wall times as JSON (how BENCH_*.json files are produced).

The ``profile`` subcommand runs one figure under :mod:`cProfile` and
prints the hottest functions — the tool that guided the interpreter
fast path::

    python -m repro.bench profile fig7 --quick --limit 25

The ``trace`` subcommand profiles a figure's lock contention with a
:class:`repro.obs.Recorder` across runtimes (simulator and/or real
threads/processes)::

    python -m repro.bench trace fig4 --quick
    python -m repro.bench trace fig4 --runtime sim --runtime procs
    python -m repro.bench trace fig4 --chrome fig4.trace.json --jsonl fig4.jsonl
    python -m repro.bench trace fig4 --quick --causal --flow fig4.dot

The ``serve`` subcommand runs the open-loop serving sweep
(:mod:`repro.serve`) — goodput and SLO latency vs offered load for the
unbatched baseline against send batching and the sharded free list;
``--timeline`` adds the windowed-telemetry document and health findings
and ``--live`` a mid-run scrape endpoint (docs/telemetry.md)::

    python -m repro.bench serve --quick
    python -m repro.bench serve --jobs 4 --json slo.json --prom serve.prom
    python -m repro.bench serve --quick --timeline serve-timeline.json

The ``regress`` subcommand compares the newest archived
``BENCH_*.json`` wall-clock snapshot against its predecessor and exits
nonzero when a figure slowed past the noise-aware threshold::

    python -m repro.bench regress --dir . --tolerance 0.5

``--chrome`` writes one ``chrome://tracing`` file per runtime (open via
the "Load" button there or in https://ui.perfetto.dev), ``--jsonl`` one
JSON-lines event dump per runtime; both describe the largest swept
receiver count.  ``--causal`` turns on per-message lifecycle tracing
(sojourn latency columns in the table, a stage breakdown and stall
report per runtime, async message spans in ``--chrome`` output);
``--flow`` then writes the message flow graph as Graphviz DOT and
``--prom`` the metrics in Prometheus text exposition format.
"""

from __future__ import annotations

import argparse
import json
import sys
import time

from .figures import CONTENTION, FIGURES


def _suffixed(path: str, kind: str) -> str:
    """``fig4.trace.json`` + ``procs`` -> ``fig4.trace-procs.json``."""
    if "." in path.rsplit("/", 1)[-1]:
        stem, ext = path.rsplit(".", 1)
        return f"{stem}-{kind}.{ext}"
    return f"{path}-{kind}"


def trace_main(argv: list[str]) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench trace",
        description="Profile a figure's lock contention across runtimes "
        "with a Recorder.",
    )
    parser.add_argument(
        "figure", choices=sorted(CONTENTION),
        help="figure to profile",
    )
    parser.add_argument(
        "--quick", action="store_true", help="reduced sweeps (for CI)"
    )
    parser.add_argument(
        "--transport", default="freelist", choices=("freelist", "ring"),
        help="payload transport for every circuit of the profiled "
        "workload (default: freelist, the paper's path)",
    )
    parser.add_argument(
        "--runtime", action="append", dest="runtimes",
        choices=("sim", "threads", "procs"), metavar="KIND",
        help="runtime(s) to profile on: sim, threads or procs "
        "(repeatable; default: sim and procs)",
    )
    parser.add_argument(
        "--json", metavar="PATH", help="also write raw results as JSON"
    )
    parser.add_argument(
        "--jsonl", metavar="PATH",
        help="write the largest point's events as JSON lines, one file "
        "per runtime (PATH gets a -<runtime> suffix)",
    )
    parser.add_argument(
        "--chrome", metavar="PATH",
        help="write the largest point's chrome://tracing file, one per "
        "runtime (PATH gets a -<runtime> suffix)",
    )
    parser.add_argument(
        "--causal", action="store_true",
        help="also trace per-message lifecycles: sojourn latency columns, "
        "a per-LNVC stage breakdown and a stall report per runtime",
    )
    parser.add_argument(
        "--prom", metavar="PATH",
        help="write the largest point's metrics in Prometheus text "
        "exposition format, one file per runtime (PATH gets a -<runtime> "
        "suffix); message metrics appear with --causal",
    )
    parser.add_argument(
        "--flow", metavar="PATH",
        help="write the largest point's message flow graph as Graphviz "
        "DOT, one file per runtime (PATH gets a -<runtime> suffix); "
        "requires --causal",
    )
    args = parser.parse_args(argv)
    if args.flow and not args.causal:
        parser.error("--flow requires --causal (the graph is built from "
                     "lifecycle events)")
    kinds = tuple(args.runtimes) if args.runtimes else ("sim", "procs")

    t0 = time.perf_counter()
    result = CONTENTION[args.figure](args.quick, kinds, causal=args.causal,
                                     transport=args.transport)
    wall = time.perf_counter() - t0
    print(result.format_table())
    print()
    print(result.format_extras())

    for kind in kinds:
        ns = [n for (k, n) in result.recorders if k == kind]
        if not ns:
            continue
        top = max(ns)
        rec = result.recorders[(kind, top)]
        print()
        unit = result.x_label.split(" ", 1)[0]
        print(f"{args.figure} lock profile — {kind} runtime, "
              f"{unit}={top}:")
        print(rec.format_lock_profile())
        if rec.machine:
            ev = rec.machine.get("events", 0)
            pops = rec.machine.get("heap_pops", 0)
            batches = rec.machine.get("epoch_batches", 0)
            print(f"  heap crossings: {ev:,} events, "
                  f"{rec.machine.get('heap_pushes', 0):,} pushes, "
                  f"{pops:,} pops "
                  f"({ev / pops if pops else float('inf'):,.1f} events/pop); "
                  f"{batches:,} epoch batches retiring "
                  f"{rec.machine.get('epoch_events', 0):,} events")
        if args.causal and rec.causal is not None:
            from ..obs import (
                detect_stalls, flow_dot, flow_from_causal, format_sojourn,
            )

            print()
            print(f"{args.figure} message sojourn — {kind} runtime, "
                  f"largest point:")
            print(format_sojourn(rec.causal))
            stalls = detect_stalls(rec.causal)
            if stalls:
                print()
                print("backpressure/stall findings:")
                for s in stalls:
                    print(f"  (!) {s}")
            if args.flow:
                path = _suffixed(args.flow, kind)
                with open(path, "w") as fh:
                    fh.write(flow_dot(flow_from_causal(rec.causal)))
                print(f"wrote {path}")
        if args.prom:
            path = _suffixed(args.prom, kind)
            with open(path, "w") as fh:
                fh.write(rec.prometheus())
            print(f"wrote {path}")
        if args.jsonl:
            path = _suffixed(args.jsonl, kind)
            rec.write_jsonl(path)
            print(f"wrote {path}")
        if args.chrome:
            path = _suffixed(args.chrome, kind)
            rec.write_chrome_trace(path)
            print(f"wrote {path}")

    print(f"\n  [{wall:.1f}s wall]")
    if args.json:
        with open(args.json, "w") as fh:
            json.dump(result.to_dict(), fh, indent=2)
        print(f"wrote {args.json}")
    return 0


def profile_main(argv: list[str]) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench profile",
        description="Run one figure under cProfile and print the hottest "
        "functions (sorted by internal time).",
    )
    parser.add_argument(
        "figure", choices=sorted(FIGURES), help="figure to profile"
    )
    parser.add_argument(
        "--quick", action="store_true", help="reduced sweeps (for CI)"
    )
    parser.add_argument(
        "--limit", type=int, default=25, metavar="N",
        help="number of rows to print (default 25)",
    )
    parser.add_argument(
        "--sort", default="tottime", choices=("tottime", "cumtime", "ncalls"),
        help="pstats sort key (default tottime)",
    )
    parser.add_argument(
        "--out", metavar="PATH",
        help="also dump raw profile stats (readable with pstats)",
    )
    parser.add_argument(
        "--top", type=int, default=0, metavar="N",
        help="also report the N hottest effect labels (charge count and "
        "charged simulated seconds across every engine the figure runs)",
    )
    args = parser.parse_args(argv)

    import cProfile
    import pstats

    from ..machine.engine import disable_label_profile, enable_label_profile
    from ..machine.stats import disable_report_profile, enable_report_profile

    labels = enable_label_profile() if args.top else None
    crossings = enable_report_profile() if args.top else None
    pr = cProfile.Profile()
    t0 = time.perf_counter()
    pr.enable()
    try:
        result = FIGURES[args.figure](args.quick)  # profiling is always serial
    finally:
        pr.disable()
        if labels is not None:
            disable_label_profile()
        if crossings is not None:
            disable_report_profile()
    wall = time.perf_counter() - t0
    print(result.format_table())
    print(f"  [{wall:.1f}s wall under the profiler]\n")
    stats = pstats.Stats(pr)
    stats.sort_stats(args.sort).print_stats(args.limit)
    if labels is not None:
        total_n = sum(v[0] for v in labels.values()) or 1
        total_s = sum(v[1] for v in labels.values()) or 1.0
        print(f"hottest effect labels ({args.figure}):")
        print(f"  {'label':<16} {'charges':>10} {'%':>6} "
              f"{'sim seconds':>12} {'%':>6}")
        ranked = sorted(labels.items(), key=lambda kv: kv[1][1], reverse=True)
        for label, (n, secs) in ranked[: args.top]:
            print(f"  {label:<16} {n:>10} {100 * n / total_n:>5.1f}% "
                  f"{secs:>12.6f} {100 * secs / total_s:>5.1f}%")
    if crossings is not None and crossings["runs"]:
        ev = crossings["events"]
        pops = crossings["heap_pops"]
        batches = crossings["epoch_batches"]
        print(f"\nheap crossings ({args.figure}, summed over "
              f"{crossings['runs']} simulations):")
        print(f"  events {ev:,}  heap pushes {crossings['heap_pushes']:,}  "
              f"pops {pops:,}  events/pop {ev / pops if pops else float('inf'):,.1f}")
        print(f"  epoch batches {batches:,}  epoch events "
              f"{crossings['epoch_events']:,}  mean batch "
              f"{crossings['epoch_events'] / batches if batches else 0.0:,.1f}")
    if args.out:
        stats.dump_stats(args.out)
        print(f"wrote {args.out}")
    return 0


def main(argv: list[str] | None = None) -> int:
    argv = sys.argv[1:] if argv is None else argv
    if argv and argv[0] == "trace":
        return trace_main(argv[1:])
    if argv and argv[0] == "profile":
        return profile_main(argv[1:])
    if argv and argv[0] == "serve":
        from ..serve.cli import serve_main

        return serve_main(argv[1:])
    if argv and argv[0] == "regress":
        from .regress import regress_main

        return regress_main(argv[1:])
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench",
        description="Regenerate the MPF paper's figures on the simulated "
        "Sequent Balance 21000.",
    )
    parser.add_argument(
        "figures",
        nargs="+",
        help=f"figure names ({', '.join(FIGURES)}) or 'all'",
    )
    parser.add_argument(
        "--quick", action="store_true", help="reduced sweeps (for CI)"
    )
    parser.add_argument(
        "--json", metavar="PATH", help="also write raw results as JSON"
    )
    parser.add_argument(
        "--plot", action="store_true", help="also render ASCII charts"
    )
    parser.add_argument(
        "--jobs", type=int, default=1, metavar="N",
        help="measure sweep points on N worker processes (default 1: "
        "serial; output is identical either way)",
    )
    parser.add_argument(
        "--transport", default="freelist", choices=("freelist", "ring"),
        help="payload transport for figures that sweep an MPF workload "
        "(fig3-fig6; other figures ignore it); default: freelist, "
        "the paper's path",
    )
    parser.add_argument(
        "--timings", metavar="PATH",
        help="write per-figure wall seconds as JSON",
    )
    parser.add_argument(
        "--repeat", type=int, default=1, metavar="N",
        help="measure each figure N times in interleaved rounds and "
        "report the per-figure minimum wall (results come from round "
        "one; the runs are deterministic).  Interleaving keeps minima "
        "comparable across figures and across bench invocations under "
        "machine-load drift — use this for A/B timing claims",
    )
    args = parser.parse_args(argv)
    if args.jobs < 1:
        parser.error("--jobs must be >= 1")
    if args.repeat < 1:
        parser.error("--repeat must be >= 1")

    names = list(FIGURES) if "all" in args.figures else args.figures
    unknown = [n for n in names if n not in FIGURES]
    if unknown:
        parser.error(f"unknown figure(s): {', '.join(unknown)}")

    import inspect as _inspect

    def _kwargs_for(name: str) -> dict:
        kwargs = {}
        if "transport" in _inspect.signature(FIGURES[name]).parameters:
            kwargs["transport"] = args.transport
        elif args.transport != "freelist":
            print(f"({name} has no transport knob; running as-is)")
        return kwargs

    def _emit(result, wall: float) -> None:
        print(result.format_table())
        extras = result.format_extras()
        if extras:
            print()
            print(extras)
        if args.plot:
            from .plot import ascii_plot

            print()
            print(ascii_plot(result))
        tag = f" (min of {args.repeat})" if args.repeat > 1 else ""
        print(f"  [{wall:.1f}s wall{tag}]")
        print()

    outputs = []
    timings: dict[str, float] = {}
    total0 = time.perf_counter()
    if args.repeat > 1:
        from functools import partial

        from .figures import reset_run_cache
        from .harness import interleaved_rounds

        runners = {
            name: partial(FIGURES[name], args.quick, args.jobs,
                          **_kwargs_for(name))
            for name in names
        }
        rounds = interleaved_rounds(runners, args.repeat,
                                    before_round=reset_run_cache)
        for name in names:
            wall, result = rounds[name]
            timings[name] = round(wall, 2)
            _emit(result, wall)
            outputs.append(result.to_dict())
    else:
        for name in names:
            kwargs = _kwargs_for(name)
            t0 = time.perf_counter()
            result = FIGURES[name](args.quick, args.jobs, **kwargs)
            wall = time.perf_counter() - t0
            timings[name] = round(wall, 2)
            _emit(result, wall)
            outputs.append(result.to_dict())
    total = time.perf_counter() - total0

    if args.json:
        with open(args.json, "w") as fh:
            json.dump(outputs, fh, indent=2)
        print(f"wrote {args.json}")
    if args.timings:
        payload = {
            "jobs": args.jobs,
            "quick": args.quick,
            "repeat": args.repeat,
            "figures": timings,
            "total_seconds": round(total, 2),
        }
        with open(args.timings, "w") as fh:
            json.dump(payload, fh, indent=2)
            fh.write("\n")
        print(f"wrote {args.timings}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
