"""One entry per paper figure, plus design-choice ablations.

Each ``figN`` function runs the corresponding experiment sweep on the
simulated Balance 21000 and returns a
:class:`~repro.bench.harness.SweepResult` whose table is directly
comparable to the published curve.  ``quick=True`` shrinks the sweeps
for CI; the full sweeps are what EXPERIMENTS.md records.

Run from the command line::

    python -m repro.bench fig3          # one figure
    python -m repro.bench all --quick   # everything, reduced sweeps
"""

from __future__ import annotations

from typing import Callable

from ..apps.gauss_jordan import gj_speedup
from ..apps.sor import sor_per_iteration_speedup
from ..core.costmodel import DEFAULT_COSTS
from ..core.layout import MPFConfig
from ..core.protocol import FCFS
from ..ext.o2o import O2ORing
from ..ext.sync_channel import SyncChannels
from ..machine.balance import BALANCE_21000
from ..obs import Recorder
from ..runtime.sim import SimRuntime
from .harness import SweepResult
from .workloads import (
    base_throughput,
    broadcast_throughput,
    fcfs_throughput,
    random_throughput,
)

__all__ = [
    "fig3",
    "fig4",
    "fig5",
    "fig6",
    "fig7",
    "fig8",
    "fig4_contention",
    "fig5_contention",
    "ablation_sync",
    "ablation_o2o",
    "ablation_block",
    "ablation_paging",
    "ablation_cache",
    "study_paradigm",
    "FIGURES",
    "CONTENTION",
]


def fig3(quick: bool = False) -> SweepResult:
    """Figure 3: base benchmark, loop-back throughput vs message length."""
    result = SweepResult(
        "Figure 3", "Base benchmark: throughput vs. message length",
        "bytes", "throughput (bytes/second of simulated time)",
    )
    lengths = (64, 256, 1024, 2048) if quick else (16, 64, 128, 256, 512, 768, 1024, 1536, 2048)
    msgs = 24 if quick else 64
    series = result.new_series("base")
    for length in lengths:
        m = base_throughput(length, messages=msgs)
        series.add(length, m.throughput)
    result.note("paper: rises toward a ~22-25 KB/s asymptote; memory/copy bound")
    return result


def _receiver_sweep(kind: str, fn, quick: bool,
                    contention: bool = False) -> SweepResult:
    result = SweepResult(
        "Figure 4" if kind == "fcfs" else "Figure 5",
        f"{kind} benchmark: throughput vs. receiving processes",
        "receivers", "throughput (bytes/second of simulated time)",
    )
    counts = (1, 4, 8, 16) if quick else (1, 2, 4, 6, 8, 10, 12, 14, 16)
    msgs = 32 if quick else 96
    for length in (16, 128, 1024):
        series = result.new_series(f"{length}B")
        for n in counts:
            extra = {}
            rec = None
            if contention:
                # Counters only (limit=0 skips span recording); the
                # circuit-lock aggregate becomes the row's extras.
                rec = Recorder(limit=0)
            m = fn(n, length, messages=msgs, recorder=rec)
            if rec is not None:
                agg = rec.circuit_lock_stats()
                extra = {
                    "lnvc_wait_ms": round(1e3 * agg.wait_seconds, 3),
                    "lnvc_contended": agg.contended,
                    "lnvc_acquires": agg.acquires,
                }
            series.add(n, m.throughput, **extra)
    return result


def fig4(quick: bool = False) -> SweepResult:
    """Figure 4: one sender, N FCFS receivers."""
    result = _receiver_sweep("fcfs", fcfs_throughput, quick, contention=True)
    result.note("paper: 1024B roughly flat ~40-50 KB/s; small messages decline "
                "with receivers (LNVC lock contention)")
    result.note("extras per point: lnvc_wait_ms (total simulated ms spent "
                "waiting on circuit locks), lnvc_contended / lnvc_acquires")
    return result


def fig5(quick: bool = False) -> SweepResult:
    """Figure 5: one sender, N BROADCAST receivers."""
    result = _receiver_sweep("broadcast", broadcast_throughput, quick)
    result.note("paper: near-linear scaling; 687,245 B/s at 16 receivers x 1024B "
                "(concurrent receive copies)")
    return result


def _contention_sweep(figure: str, bench_name: str, fn, quick: bool,
                      runtimes: tuple[str, ...], length: int) -> SweepResult:
    result = SweepResult(
        figure,
        f"{bench_name} benchmark: circuit-lock contention vs. receiving "
        f"processes ({length}B messages)",
        "receivers",
        "LNVC lock wait per message (microseconds; sim: simulated, "
        "threads/procs: wall-clock)",
    )
    counts = (1, 2, 4, 8) if quick else (1, 2, 4, 8, 16)
    msgs = 24 if quick else 64
    result.recorders = {}
    for kind in runtimes:
        series = result.new_series(kind)
        for n in counts:
            rec = Recorder()
            m = fn(n, length, messages=msgs, runtime=kind, recorder=rec)
            agg = rec.circuit_lock_stats()
            series.add(
                n, 1e6 * agg.wait_seconds / msgs,
                acquires=agg.acquires,
                contended=agg.contended,
                wait_ms=round(1e3 * agg.wait_seconds, 3),
                max_wait_ms=round(1e3 * agg.max_wait, 3),
                hold_ms=round(1e3 * agg.hold_seconds, 3),
                throughput=round(m.throughput),
            )
            result.recorders[(kind, n)] = rec
    result.note("sim waits are simulated seconds (deterministic); threads/"
                "procs waits are wall-clock and vary run to run")
    result.note("paper's Figure 4 story: at small messages the per-circuit "
                "lock serializes sender and receivers, so wait grows with N")
    return result


def fig4_contention(quick: bool = False,
                    runtimes: tuple[str, ...] = ("sim", "procs")) -> SweepResult:
    """Figure 4's mechanism, profiled: FCFS circuit-lock wait vs receivers.

    Runs the `fcfs` benchmark at 16-byte messages under a
    :class:`repro.obs.Recorder` on each requested runtime and reports the
    per-message LNVC lock wait.  The returned result carries a
    ``recorders`` dict keyed ``(runtime, n)`` for exporting full traces.
    """
    return _contention_sweep("Figure 4 (contention)", "fcfs",
                             fcfs_throughput, quick, runtimes, length=16)


def fig5_contention(quick: bool = False,
                    runtimes: tuple[str, ...] = ("sim", "procs")) -> SweepResult:
    """Figure 5's counterpart: BROADCAST circuit-lock wait vs receivers."""
    return _contention_sweep("Figure 5 (contention)", "broadcast",
                             broadcast_throughput, quick, runtimes, length=16)


def fig6(quick: bool = False) -> SweepResult:
    """Figure 6: fully connected random traffic, throughput vs processes."""
    result = SweepResult(
        "Figure 6", "Random benchmark: throughput vs. processes",
        "processes", "throughput (bytes/second of simulated time)",
    )
    procs = (2, 6, 10, 14, 20) if quick else (2, 4, 6, 8, 10, 12, 14, 17, 20)
    msgs = 16 if quick else 40
    lengths = (8, 256, 1024) if quick else (1, 8, 64, 256, 1024)
    for length in lengths:
        series = result.new_series(f"{length}B")
        for p in procs:
            m = random_throughput(p, length, messages=msgs)
            series.add(p, m.throughput,
                       faults=m.run.report.page_faults)
    result.note("paper: grows with processes at decreasing slope; 1024B bends "
                "down past ~10 processes (paging), 256B only near 20")
    return result


def fig7(quick: bool = False) -> SweepResult:
    """Figure 7: Gauss-Jordan speedup vs worker processes."""
    result = SweepResult(
        "Figure 7", "Gauss-Jordan with partial pivoting: speedup vs. processes",
        "processes", "speedup over the sequential solver (simulated time)",
    )
    procs = (1, 4, 8, 16) if quick else (1, 2, 4, 8, 12, 16)
    sizes = (32, 96) if quick else (32, 48, 64, 96)
    for n in sizes:
        series = result.new_series(f"{n}x{n}")
        for p in procs:
            series.add(p, gj_speedup(n, p))
    result.note("paper: larger matrices give higher speedup; small matrices "
                "peak early then decline (communication dominates)")
    return result


def fig8(quick: bool = False) -> SweepResult:
    """Figure 8: SOR per-iteration speedup vs processor-grid dimension."""
    result = SweepResult(
        "Figure 8", "SOR Poisson solver: per-iteration speedup vs. dimension N",
        "N (NxN processors)", "per-iteration speedup relative to N=2 (4 processes)",
    )
    dims = (2, 4) if quick else (1, 2, 3, 4)
    grids = (17, 65) if quick else (9, 17, 33, 65)
    iters = 4 if quick else 6
    for m in grids:
        series = result.new_series(f"{m}x{m}")
        for n in dims:
            series.add(n, sor_per_iteration_speedup(m, n, iterations=iters))
    result.note("paper: speedups relative to the smallest parallel solver "
                "(4 processes); large grids gain, 9x9 loses")
    return result


# ---------------------------------------------------------------------------
# Ablations (design choices the paper discusses but does not measure)
# ---------------------------------------------------------------------------


def _pair_time(make_workers, cfg) -> float:
    return SimRuntime().run(make_workers(), cfg=cfg).elapsed


def ablation_sync(quick: bool = False) -> SweepResult:
    """§5 ablation: general LNVC vs synchronous direct-transfer channel.

    Per-message transfer time as a function of message length, one
    sender and one receiver.  Quantifies the double-copy + block-
    manipulation overhead the paper predicts synchronous passing
    removes.
    """
    result = SweepResult(
        "Ablation A", "General LNVC vs. synchronous channel: time per message",
        "bytes", "microseconds per message (simulated)",
    )
    lengths = (16, 256, 2048) if quick else (16, 64, 256, 1024, 2048)
    reps = 8 if quick else 16
    lnvc = result.new_series("LNVC (async, double copy)")
    sync = result.new_series("sync channel (rendezvous, direct)")
    for length in lengths:
        payload = b"x" * length

        def lnvc_pair():
            def sender(env):
                cid = yield from env.open_send("c")
                for _ in range(reps):
                    yield from env.message_send(cid, payload)

            def receiver(env):
                cid = yield from env.open_receive("c", FCFS)
                for _ in range(reps):
                    yield from env.message_receive(cid)

            return [sender, receiver]

        def sync_pair():
            def sender(env):
                ch = SyncChannels(env.view, 1, 2 * length)
                for _ in range(reps):
                    yield from ch.send(0, env.rank, payload)

            def receiver(env):
                ch = SyncChannels(env.view, 1, 2 * length)
                for _ in range(reps):
                    yield from ch.receive(0, env.rank)

            return [sender, receiver]

        t1 = _pair_time(lnvc_pair, MPFConfig(max_lnvcs=4, max_processes=2))
        t2 = _pair_time(
            sync_pair,
            MPFConfig(max_lnvcs=4, max_processes=2, ext_slots=1,
                      ext_bytes=SyncChannels.bytes_needed(1, 2 * length)),
        )
        lnvc.add(length, 1e6 * t1 / reps)
        sync.add(length, 1e6 * t2 / reps)
    result.note("the gap grows with length: per-10-byte-block costs vs one "
                "contiguous copy")
    return result


def ablation_o2o(quick: bool = False) -> SweepResult:
    """§5 ablation: general LNVC vs lock-free one-to-one ring."""
    result = SweepResult(
        "Ablation B", "General LNVC vs. lock-free 1:1 ring: time per message",
        "bytes", "microseconds per message (simulated)",
    )
    lengths = (16, 64) if quick else (4, 16, 48, 64)
    reps = 12 if quick else 32
    lnvc = result.new_series("LNVC (locks + blocks + allocator)")
    ring = result.new_series("O2O ring (lock-free)")
    for length in lengths:
        payload = b"x" * length

        def lnvc_pair():
            def sender(env):
                cid = yield from env.open_send("c")
                for _ in range(reps):
                    yield from env.message_send(cid, payload)

            def receiver(env):
                cid = yield from env.open_receive("c", FCFS)
                for _ in range(reps):
                    yield from env.message_receive(cid)

            return [sender, receiver]

        def ring_pair():
            def producer(env):
                r = O2ORing(env.view, 0, capacity=16, slot_bytes=64)
                for _ in range(reps):
                    yield from r.send(payload)

            def consumer(env):
                r = O2ORing(env.view, 0, capacity=16, slot_bytes=64)
                for _ in range(reps):
                    yield from r.receive()

            return [producer, consumer]

        t1 = _pair_time(lnvc_pair, MPFConfig(max_lnvcs=4, max_processes=2))
        t2 = _pair_time(
            ring_pair,
            MPFConfig(max_lnvcs=4, max_processes=2,
                      ext_bytes=O2ORing.bytes_needed(16, 64)),
        )
        lnvc.add(length, 1e6 * t1 / reps)
        ring.add(length, 1e6 * t2 / reps)
    result.note('"if only one-to-one communication is implemented, all '
                'locking associated with message handling is removed"')
    return result


def ablation_block(quick: bool = False) -> SweepResult:
    """Design ablation: message block size (the paper fixed 10 bytes).

    Base-benchmark throughput at 1024-byte messages as the block size
    varies.  Bigger blocks amortize per-block list costs — the knob the
    paper's Figure 3 analysis implies but never sweeps.
    """
    result = SweepResult(
        "Ablation C", "Block size vs. base throughput (1024B messages)",
        "block bytes", "throughput (bytes/second of simulated time)",
    )
    sizes = (10, 64, 256) if quick else (4, 10, 32, 64, 128, 256)
    msgs = 24 if quick else 48
    series = result.new_series("base @1024B")
    for bs in sizes:
        from ..core.protocol import FCFS as _FCFS

        def worker(env):
            sid = yield from env.open_send("loop")
            rid = yield from env.open_receive("loop", _FCFS)
            t0 = env.now()
            for _ in range(msgs):
                yield from env.message_send(sid, b"x" * 1024)
                yield from env.message_receive(rid)
            return env.now() - t0

        cfg = MPFConfig(max_lnvcs=4, max_processes=2, block_size=bs,
                        max_messages=8, message_pool_bytes=1 << 18)
        run = SimRuntime().run([worker], cfg=cfg)
        series.add(bs, msgs * 1024 / run.results["p0"])
    result.note("10-byte blocks (the paper's choice) sit far below the "
                "large-block ceiling; generality of tiny messages traded "
                "against bulk throughput")
    return result


def ablation_paging(quick: bool = False) -> SweepResult:
    """Model ablation: Figure 6's random benchmark with paging disabled.

    Separates queueing/lock contention from virtual-memory overhead —
    the decomposition the paper asserts verbally ("this is the reason
    for the decrease in observed throughput").
    """
    result = SweepResult(
        "Ablation D", "Random benchmark (1024B) with and without paging",
        "processes", "throughput (bytes/second of simulated time)",
    )
    procs = (2, 10, 20) if quick else (2, 6, 10, 14, 17, 20)
    msgs = 16 if quick else 32
    with_vm = result.new_series("paging on (Balance 21000)")
    without = result.new_series("paging off")
    for p in procs:
        m1 = random_throughput(p, 1024, messages=msgs)
        m2 = random_throughput(p, 1024, messages=msgs,
                               machine=BALANCE_21000.without_paging())
        with_vm.add(p, m1.throughput, faults=m1.run.report.page_faults)
        without.add(p, m2.throughput)
    result.note("the gap between the curves is exactly the simulated VM "
                "overhead; without paging throughput keeps growing")
    return result


def ablation_cache(quick: bool = False) -> SweepResult:
    """Model ablation: the write-through cache's read-miss stalls.

    The broadcast benchmark cycles the deepest block working sets, so it
    is where the cache could matter most; the ablation shows the effect
    is second-order — consistent with the paper's analysis never
    mentioning the cache at all.
    """
    result = SweepResult(
        "Ablation E", "Broadcast benchmark (1024B) with and without the cache model",
        "receivers", "throughput (bytes/second of simulated time)",
    )
    counts = (4, 16) if quick else (1, 4, 8, 16)
    msgs = 24 if quick else 64
    on = result.new_series("cache model on")
    off = result.new_series("cache model off")
    for n in counts:
        m1 = broadcast_throughput(n, 1024, messages=msgs)
        m2 = broadcast_throughput(
            n, 1024, messages=msgs, machine=BALANCE_21000.without_cache()
        )
        on.add(n, m1.throughput,
               stalls=m1.run.report.cache_stalled_blocks)
        off.add(n, m2.throughput)
    result.note("a few percent at most: MPF is software-cost bound, not "
                "cache bound — matching the paper's silence about caches")
    return result


def study_paradigm(quick: bool = False) -> SweepResult:
    """The §5 research question, measured: message passing vs shared
    memory on the same kernels.

    Plots the *penalty* (message-passing time over shared-memory time,
    identical compute charges) against process count for the global-sum
    and 1-D Jacobi kernels.  Values above 1 are the cost of the
    cross-paradigm port the introduction warns about.
    """
    from ..apps.paradigm import paradigm_penalty

    result = SweepResult(
        "Study P", "Cross-paradigm penalty: message passing / shared memory",
        "processes", "time ratio (MP / SHM, simulated)",
    )
    procs = (2, 4) if quick else (1, 2, 4, 8)
    sizes = {"sum": 64 if quick else 256, "jacobi": 64 if quick else 256}
    for kernel in ("sum", "jacobi"):
        series = result.new_series(f"{kernel} (n={sizes[kernel]})")
        for p in procs:
            mp_t, shm_t, penalty = paradigm_penalty(kernel, sizes[kernel], p)
            series.add(p, penalty, mp_seconds=mp_t, shm_seconds=shm_t)
    result.note('paper §1: "this adaptation may incur a substantial '
                'performance penalty" — quantified')
    return result


#: Registry used by ``python -m repro.bench``.
FIGURES: dict[str, Callable[[bool], SweepResult]] = {
    "fig3": fig3,
    "fig4": fig4,
    "fig5": fig5,
    "fig6": fig6,
    "fig7": fig7,
    "fig8": fig8,
    "ablation_sync": ablation_sync,
    "ablation_o2o": ablation_o2o,
    "ablation_block": ablation_block,
    "ablation_paging": ablation_paging,
    "ablation_cache": ablation_cache,
    "study_paradigm": study_paradigm,
}

#: Registry used by ``python -m repro.bench trace <fig>``: figures whose
#: mechanism can be profiled with a Recorder across runtimes.
CONTENTION: dict[str, Callable[..., SweepResult]] = {
    "fig4": fig4_contention,
    "fig5": fig5_contention,
}
