"""One entry per paper figure, plus design-choice ablations.

Each ``figN`` function runs the corresponding experiment sweep on the
simulated Balance 21000 and returns a
:class:`~repro.bench.harness.SweepResult` whose table is directly
comparable to the published curve.  ``quick=True`` shrinks the sweeps
for CI; the full sweeps are what EXPERIMENTS.md records.

Every sweep goes through :func:`~repro.bench.harness.run_series` with a
*module-level* point function (bound with :func:`functools.partial`), so
``jobs > 1`` can farm points out to a process pool: each point is an
independent deterministic simulation, and the harness reassembles results
in sweep order, making parallel output byte-identical to serial.

Run from the command line::

    python -m repro.bench fig3            # one figure
    python -m repro.bench all --jobs 4    # everything, 4 point-runner processes
    python -m repro.bench all --quick     # everything, reduced sweeps
"""

from __future__ import annotations

from functools import partial
from typing import Callable

from ..apps.gauss_jordan import gj_speedup
from ..apps.sor import sor_per_iteration_speedup
from ..core.costmodel import DEFAULT_COSTS
from ..core.layout import MPFConfig
from ..core.protocol import FCFS
from ..ext.o2o import O2ORing
from ..ext.sync_channel import SyncChannels
from ..machine.balance import BALANCE_21000
from ..obs import Recorder, busiest_lnvc, sojourn_stats
from ..runtime.sim import SimRuntime
from .harness import SweepResult, run_series
from .workloads import (
    base_throughput,
    broadcast_throughput,
    fcfs_throughput,
    random_throughput,
)

__all__ = [
    "fig3",
    "fig4",
    "fig5",
    "fig6",
    "fig7",
    "fig8",
    "fig3_contention",
    "fig4_contention",
    "fig5_contention",
    "ablation_sync",
    "ablation_o2o",
    "ablation_block",
    "ablation_paging",
    "ablation_cache",
    "ablation_transport_fcfs",
    "ablation_transport_bcast",
    "ablation_transport_random",
    "study_paradigm",
    "reset_run_cache",
    "FIGURES",
    "CONTENTION",
]


# ---------------------------------------------------------------------------
# Point functions.  Module-level (hence picklable) measurements of one
# sweep point each; ``run_series`` binds the sweep constants with
# ``functools.partial`` and maps them over the swept parameter.
# ---------------------------------------------------------------------------


def _causal_extras(tracer) -> dict:
    """Latency columns from a causal trace: per-stage p50s plus the
    end-to-end tail, in microseconds, for the busiest LNVC (the data
    circuit — barrier control traffic carries far fewer sends)."""
    key = busiest_lnvc(tracer)
    if key is None:
        return {}
    stats = sojourn_stats(tracer)[key]

    def us(stage: str, q: str) -> float:
        return round(1e6 * getattr(stats[stage], q), 2)

    return {
        "alloc_p50_us": us("alloc", "p50"),
        "copyin_p50_us": us("copy_in", "p50"),
        "resid_p50_us": us("resident", "p50"),
        "copyout_p50_us": us("copy_out", "p50"),
        "e2e_p50_us": us("e2e", "p50"),
        "e2e_p95_us": us("e2e", "p95"),
    }


# ---------------------------------------------------------------------------
# Shared-run sweep runner (the vectorized layer of the epoch-fused
# engine work).  Several sweeps describe the *same* simulation and
# differ only in which columns they report: ablation_transport_fcfs's
# free-list points are fig4's points re-measured, _bcast's are fig5's,
# _random's 1024B column is fig6's.  Recorders are observational —
# attaching one never changes simulated timing (the fig3 causal
# acceptance check pins this) — so the runner executes each distinct
# schedule ONCE with the superset instrumentation
# (``Recorder(limit=0, causal=True)``) and every figure derives its own
# columns (throughput, lock waits, causal latencies, page faults) from
# the cached run.  The memo is per process: with ``--jobs`` each pool
# worker keeps its own, so sharing degrades gracefully but output stays
# byte-identical.
# ---------------------------------------------------------------------------

_RUN_MEMO: dict = {}

#: Instrumentation levels, ordered so a cached higher-level run can
#: always serve a lower-level request (recorders are observational).
_REC_NONE, _REC_LOCK, _REC_CAUSAL = 0, 1, 2


def reset_run_cache() -> None:
    """Drop memoized measurement runs (tests re-measure after toggles)."""
    _RUN_MEMO.clear()


def _measured_run(fn, n: int, length: int, msgs: int, transport: str,
                  level: int):
    """One simulation per distinct sweep point, instrumented to order.

    Returns ``(m, recorder_or_None)`` for ``fn(n, length, ...)`` on the
    default machine, memoized on the complete simulation identity.  A
    cached run instrumented at ``level`` or higher is served as-is; a
    request for *more* instrumentation re-runs and upgrades the entry
    (figures that know a later sweep will revisit their points request
    the union level up front, so upgrades are rare).  Only points on
    the stock :data:`BALANCE_21000` go through here — machine-variant
    sweeps (paging/cache ablations) keep their direct calls.
    """
    key = (fn.__name__, n, length, msgs, transport)
    hit = _RUN_MEMO.get(key)
    if hit is None or hit[0] < level:
        rec = None
        if level == _REC_LOCK:
            rec = Recorder(limit=0)
        elif level == _REC_CAUSAL:
            rec = Recorder(limit=0, causal=True)
        m = fn(n, length, messages=msgs, recorder=rec, transport=transport)
        hit = _RUN_MEMO[key] = (level, m, rec)
    return hit[1], hit[2]


def _fig3_point(msgs: int, length: int, causal: bool = False,
                timeline: bool = False,
                transport: str = "freelist") -> tuple[float, dict]:
    # With causal=True a tracer rides along (limit=0 skips span
    # recording) but the returned point is unchanged: the acceptance
    # check that traced fig3 output is byte-identical to untraced.
    # timeline=True windows the run's telemetry under the same pin.
    rec = Recorder(limit=0, causal=causal, timeline=timeline) \
        if (causal or timeline) else None
    m = base_throughput(length, messages=msgs, recorder=rec,
                        transport=transport)
    return m.throughput, {}


def _receiver_point(fn, length: int, msgs: int, contention: bool,
                    n: int, transport: str = "freelist",
                    share=frozenset()) -> tuple[float, dict]:
    # ``share`` lists the (n, length) pairs the transport ablations will
    # revisit: those run at causal level so the later sweep is a cache
    # hit instead of a re-simulation.
    if (n, length) in share:
        level = _REC_CAUSAL
    else:
        level = _REC_LOCK if contention else _REC_NONE
    m, rec = _measured_run(fn, n, length, msgs, transport, level)
    extra = {}
    if contention:
        # The circuit-lock aggregate becomes the row's extras.
        agg = rec.circuit_lock_stats()
        extra = {
            "lnvc_wait_ms": round(1e3 * agg.wait_seconds, 3),
            "lnvc_contended": agg.contended,
            "lnvc_acquires": agg.acquires,
        }
    return m.throughput, extra


def _fig6_point(msgs: int, length: int, p: int,
                transport: str = "freelist") -> tuple[float, dict]:
    m, _ = _measured_run(random_throughput, p, length, msgs, transport,
                         _REC_NONE)
    return m.throughput, {"faults": m.run.report.page_faults}


def _fig7_point(n: int, p: int) -> tuple[float, dict]:
    return gj_speedup(n, p), {}


def _fig8_point(m: int, iters: int, n: int) -> tuple[float, dict]:
    return sor_per_iteration_speedup(m, n, iterations=iters), {}


def fig3(quick: bool = False, jobs: int = 1, causal: bool = False,
         timeline: bool = False,
         transport: str = "freelist") -> SweepResult:
    """Figure 3: base benchmark, loop-back throughput vs message length."""
    result = SweepResult(
        "Figure 3", "Base benchmark: throughput vs. message length",
        "bytes", "throughput (bytes/second of simulated time)",
    )
    lengths = (64, 256, 1024, 2048) if quick else (16, 64, 128, 256, 512, 768, 1024, 1536, 2048)
    msgs = 24 if quick else 64
    run_series(result, "base", lengths,
               partial(_fig3_point, msgs, causal=causal, timeline=timeline,
                       transport=transport),
               jobs=jobs)
    result.note("paper: rises toward a ~22-25 KB/s asymptote; memory/copy bound")
    if transport != "freelist":
        result.note(f"transport: {transport} (not the paper's free-list path)")
    return result


def _receiver_sweep(kind: str, fn, quick: bool, jobs: int,
                    contention: bool = False,
                    transport: str = "freelist") -> SweepResult:
    result = SweepResult(
        "Figure 4" if kind == "fcfs" else "Figure 5",
        f"{kind} benchmark: throughput vs. receiving processes",
        "receivers", "throughput (bytes/second of simulated time)",
    )
    counts = (1, 4, 8, 16) if quick else (1, 2, 4, 6, 8, 10, 12, 14, 16)
    msgs = 32 if quick else 96
    # The transport ablations (_transport_sweep) re-measure this sweep's
    # free-list points at these (n, length) pairs; pre-instrumenting
    # them at causal level turns the ablation's half into cache hits.
    abl_counts = (1, 4, 8, 16) if quick else (1, 2, 4, 8, 12, 16)
    share = frozenset(
        (n, length) for n in abl_counts for length in (16, 1024)
    ) if transport == "freelist" else frozenset()
    for length in (16, 128, 1024):
        run_series(
            result, f"{length}B", counts,
            partial(_receiver_point, fn, length, msgs, contention,
                    transport=transport, share=share),
            jobs=jobs,
        )
    if transport != "freelist":
        result.note(f"transport: {transport} (not the paper's free-list path)")
    return result


def fig4(quick: bool = False, jobs: int = 1,
         transport: str = "freelist") -> SweepResult:
    """Figure 4: one sender, N FCFS receivers."""
    result = _receiver_sweep("fcfs", fcfs_throughput, quick, jobs,
                             contention=True, transport=transport)
    result.note("paper: 1024B roughly flat ~40-50 KB/s; small messages decline "
                "with receivers (LNVC lock contention)")
    result.note("extras per point: lnvc_wait_ms (total simulated ms spent "
                "waiting on circuit locks), lnvc_contended / lnvc_acquires")
    return result


def fig5(quick: bool = False, jobs: int = 1,
         transport: str = "freelist") -> SweepResult:
    """Figure 5: one sender, N BROADCAST receivers."""
    result = _receiver_sweep("broadcast", broadcast_throughput, quick, jobs,
                             transport=transport)
    result.note("paper: near-linear scaling; 687,245 B/s at 16 receivers x 1024B "
                "(concurrent receive copies)")
    return result


def _contention_sweep(figure: str, bench_name: str, fn, quick: bool,
                      runtimes: tuple[str, ...], length: int,
                      causal: bool = False,
                      transport: str = "freelist") -> SweepResult:
    result = SweepResult(
        figure,
        f"{bench_name} benchmark: circuit-lock contention vs. receiving "
        f"processes ({length}B messages)",
        "receivers",
        "LNVC lock wait per message (microseconds; sim: simulated, "
        "threads/procs: wall-clock)",
    )
    counts = (1, 2, 4, 8) if quick else (1, 2, 4, 8, 16)
    msgs = 24 if quick else 64
    result.recorders = {}
    for kind in runtimes:
        series = result.new_series(kind)
        for n in counts:
            rec = Recorder(causal=causal)
            m = fn(n, length, messages=msgs, runtime=kind, recorder=rec,
                   transport=transport)
            agg = rec.circuit_lock_stats()
            extra = {}
            if causal:
                extra = _causal_extras(rec.causal)
            series.add(
                n, 1e6 * agg.wait_seconds / msgs,
                acquires=agg.acquires,
                contended=agg.contended,
                wait_ms=round(1e3 * agg.wait_seconds, 3),
                max_wait_ms=round(1e3 * agg.max_wait, 3),
                hold_ms=round(1e3 * agg.hold_seconds, 3),
                throughput=round(m.throughput),
                **extra,
            )
            result.recorders[(kind, n)] = rec
    result.note("sim waits are simulated seconds (deterministic); threads/"
                "procs waits are wall-clock and vary run to run")
    result.note("paper's Figure 4 story: at small messages the per-circuit "
                "lock serializes sender and receivers, so wait grows with N")
    if transport != "freelist":
        result.note(f"transport: {transport} (not the paper's free-list path)")
    if causal:
        result.note("causal extras per point: per-stage sojourn p50s and "
                    "end-to-end p50/p95 (microseconds) on the busiest LNVC — "
                    "resid_p50_us is queue wait (lock + scheduling), "
                    "copyin/copyout are the two data copies")
    return result


def fig4_contention(quick: bool = False,
                    runtimes: tuple[str, ...] = ("sim", "procs"),
                    causal: bool = False,
                    transport: str = "freelist") -> SweepResult:
    """Figure 4's mechanism, profiled: FCFS circuit-lock wait vs receivers.

    Runs the `fcfs` benchmark at 16-byte messages under a
    :class:`repro.obs.Recorder` on each requested runtime and reports the
    per-message LNVC lock wait.  ``causal=True`` adds per-message sojourn
    latency columns (stage p50s, e2e p50/p95) from a
    :class:`repro.obs.CausalTracer`.  The returned result carries a
    ``recorders`` dict keyed ``(runtime, n)`` for exporting full traces.
    Always serial: it keeps whole Recorder objects (not picklable cheap)
    and itself spawns a process runtime.
    """
    return _contention_sweep("Figure 4 (contention)", "fcfs",
                             fcfs_throughput, quick, runtimes, length=16,
                             causal=causal, transport=transport)


def fig5_contention(quick: bool = False,
                    runtimes: tuple[str, ...] = ("sim", "procs"),
                    causal: bool = False,
                    transport: str = "freelist") -> SweepResult:
    """Figure 5's counterpart: BROADCAST circuit-lock wait vs receivers."""
    return _contention_sweep("Figure 5 (contention)", "broadcast",
                             broadcast_throughput, quick, runtimes, length=16,
                             causal=causal, transport=transport)


def fig3_contention(quick: bool = False,
                    runtimes: tuple[str, ...] = ("sim", "procs"),
                    causal: bool = False,
                    transport: str = "freelist") -> SweepResult:
    """Figure 3's loop-back benchmark under the tracer, across runtimes.

    Sweeps message *length* (the figure's x axis) instead of receiver
    count; with ``causal=True`` the extras decompose each length's
    per-message latency into allocation, the two copies, and queue
    residency — the split behind the paper's claim that copy costs
    dominate at large lengths.
    """
    result = SweepResult(
        "Figure 3 (trace)",
        "base benchmark: per-message latency vs. message length",
        "bytes",
        "LNVC lock wait per message (microseconds; sim: simulated, "
        "threads/procs: wall-clock)",
    )
    lengths = (64, 1024) if quick else (16, 256, 1024, 2048)
    msgs = 24 if quick else 64
    result.recorders = {}
    for kind in runtimes:
        series = result.new_series(kind)
        for length in lengths:
            rec = Recorder(causal=causal)
            m = base_throughput(length, messages=msgs, runtime=kind,
                                recorder=rec, transport=transport)
            agg = rec.circuit_lock_stats()
            extra = {}
            if causal:
                extra = _causal_extras(rec.causal)
            series.add(
                length, 1e6 * agg.wait_seconds / msgs,
                acquires=agg.acquires,
                contended=agg.contended,
                wait_ms=round(1e3 * agg.wait_seconds, 3),
                throughput=round(m.throughput),
                **extra,
            )
            result.recorders[(kind, length)] = rec
    result.note("loop-back means the sender is its own receiver: lock wait "
                "stays near zero, the causal stage split is the signal")
    if transport != "freelist":
        result.note(f"transport: {transport} (not the paper's free-list path)")
    if causal:
        result.note("causal extras per point: copyin/copyout p50 should grow "
                    "linearly with length while alloc and residency stay flat")
    return result


def fig6(quick: bool = False, jobs: int = 1,
         transport: str = "freelist") -> SweepResult:
    """Figure 6: fully connected random traffic, throughput vs processes."""
    result = SweepResult(
        "Figure 6", "Random benchmark: throughput vs. processes",
        "processes", "throughput (bytes/second of simulated time)",
    )
    procs = (2, 6, 10, 14, 20) if quick else (2, 4, 6, 8, 10, 12, 14, 17, 20)
    msgs = 16 if quick else 40
    lengths = (8, 256, 1024) if quick else (1, 8, 64, 256, 1024)
    for length in lengths:
        run_series(result, f"{length}B", procs,
                   partial(_fig6_point, msgs, length, transport=transport),
                   jobs=jobs)
    result.note("paper: grows with processes at decreasing slope; 1024B bends "
                "down past ~10 processes (paging), 256B only near 20")
    if transport != "freelist":
        result.note(f"transport: {transport} (not the paper's free-list path)")
    return result


def fig7(quick: bool = False, jobs: int = 1) -> SweepResult:
    """Figure 7: Gauss-Jordan speedup vs worker processes."""
    result = SweepResult(
        "Figure 7", "Gauss-Jordan with partial pivoting: speedup vs. processes",
        "processes", "speedup over the sequential solver (simulated time)",
    )
    procs = (1, 4, 8, 16) if quick else (1, 2, 4, 8, 12, 16)
    sizes = (32, 96) if quick else (32, 48, 64, 96)
    for n in sizes:
        run_series(result, f"{n}x{n}", procs, partial(_fig7_point, n),
                   jobs=jobs)
    result.note("paper: larger matrices give higher speedup; small matrices "
                "peak early then decline (communication dominates)")
    return result


def fig8(quick: bool = False, jobs: int = 1) -> SweepResult:
    """Figure 8: SOR per-iteration speedup vs processor-grid dimension."""
    result = SweepResult(
        "Figure 8", "SOR Poisson solver: per-iteration speedup vs. dimension N",
        "N (NxN processors)", "per-iteration speedup relative to N=2 (4 processes)",
    )
    dims = (2, 4) if quick else (1, 2, 3, 4)
    grids = (17, 65) if quick else (9, 17, 33, 65)
    iters = 4 if quick else 6
    for m in grids:
        run_series(result, f"{m}x{m}", dims, partial(_fig8_point, m, iters),
                   jobs=jobs)
    result.note("paper: speedups relative to the smallest parallel solver "
                "(4 processes); large grids gain, 9x9 loses")
    return result


# ---------------------------------------------------------------------------
# Ablations (design choices the paper discusses but does not measure)
# ---------------------------------------------------------------------------


def _pair_time(make_workers, cfg) -> float:
    return SimRuntime().run(make_workers(), cfg=cfg).elapsed


def _ablation_sync_lnvc_point(reps: int, length: int) -> tuple[float, dict]:
    payload = b"x" * length

    def lnvc_pair():
        def sender(env):
            cid = yield from env.open_send("c")
            for _ in range(reps):
                yield from env.message_send(cid, payload)

        def receiver(env):
            cid = yield from env.open_receive("c", FCFS)
            for _ in range(reps):
                yield from env.message_receive(cid)

        return [sender, receiver]

    t = _pair_time(lnvc_pair, MPFConfig(max_lnvcs=4, max_processes=2))
    return 1e6 * t / reps, {}


def _ablation_sync_chan_point(reps: int, length: int) -> tuple[float, dict]:
    payload = b"x" * length

    def sync_pair():
        def sender(env):
            ch = SyncChannels(env.view, 1, 2 * length)
            for _ in range(reps):
                yield from ch.send(0, env.rank, payload)

        def receiver(env):
            ch = SyncChannels(env.view, 1, 2 * length)
            for _ in range(reps):
                yield from ch.receive(0, env.rank)

        return [sender, receiver]

    t = _pair_time(
        sync_pair,
        MPFConfig(max_lnvcs=4, max_processes=2, ext_slots=1,
                  ext_bytes=SyncChannels.bytes_needed(1, 2 * length)),
    )
    return 1e6 * t / reps, {}


def ablation_sync(quick: bool = False, jobs: int = 1) -> SweepResult:
    """§5 ablation: general LNVC vs synchronous direct-transfer channel.

    Per-message transfer time as a function of message length, one
    sender and one receiver.  Quantifies the double-copy + block-
    manipulation overhead the paper predicts synchronous passing
    removes.
    """
    result = SweepResult(
        "Ablation A", "General LNVC vs. synchronous channel: time per message",
        "bytes", "microseconds per message (simulated)",
    )
    lengths = (16, 256, 2048) if quick else (16, 64, 256, 1024, 2048)
    reps = 8 if quick else 16
    run_series(result, "LNVC (async, double copy)", lengths,
               partial(_ablation_sync_lnvc_point, reps), jobs=jobs)
    run_series(result, "sync channel (rendezvous, direct)", lengths,
               partial(_ablation_sync_chan_point, reps), jobs=jobs)
    result.note("the gap grows with length: per-10-byte-block costs vs one "
                "contiguous copy")
    return result


def _ablation_o2o_lnvc_point(reps: int, length: int) -> tuple[float, dict]:
    payload = b"x" * length

    def lnvc_pair():
        def sender(env):
            cid = yield from env.open_send("c")
            for _ in range(reps):
                yield from env.message_send(cid, payload)

        def receiver(env):
            cid = yield from env.open_receive("c", FCFS)
            for _ in range(reps):
                yield from env.message_receive(cid)

        return [sender, receiver]

    t = _pair_time(lnvc_pair, MPFConfig(max_lnvcs=4, max_processes=2))
    return 1e6 * t / reps, {}


def _ablation_o2o_ring_point(reps: int, length: int) -> tuple[float, dict]:
    payload = b"x" * length

    def ring_pair():
        def producer(env):
            r = O2ORing(env.view, 0, capacity=16, slot_bytes=64)
            for _ in range(reps):
                yield from r.send(payload)

        def consumer(env):
            r = O2ORing(env.view, 0, capacity=16, slot_bytes=64)
            for _ in range(reps):
                yield from r.receive()

        return [producer, consumer]

    t = _pair_time(
        ring_pair,
        MPFConfig(max_lnvcs=4, max_processes=2,
                  ext_bytes=O2ORing.bytes_needed(16, 64)),
    )
    return 1e6 * t / reps, {}


def ablation_o2o(quick: bool = False, jobs: int = 1) -> SweepResult:
    """§5 ablation: general LNVC vs lock-free one-to-one ring."""
    result = SweepResult(
        "Ablation B", "General LNVC vs. lock-free 1:1 ring: time per message",
        "bytes", "microseconds per message (simulated)",
    )
    lengths = (16, 64) if quick else (4, 16, 48, 64)
    reps = 12 if quick else 32
    run_series(result, "LNVC (locks + blocks + allocator)", lengths,
               partial(_ablation_o2o_lnvc_point, reps), jobs=jobs)
    run_series(result, "O2O ring (lock-free)", lengths,
               partial(_ablation_o2o_ring_point, reps), jobs=jobs)
    result.note('"if only one-to-one communication is implemented, all '
                'locking associated with message handling is removed"')
    return result


def _ablation_block_point(msgs: int, bs: int) -> tuple[float, dict]:
    def worker(env):
        sid = yield from env.open_send("loop")
        rid = yield from env.open_receive("loop", FCFS)
        t0 = env.now()
        for _ in range(msgs):
            yield from env.message_send(sid, b"x" * 1024)
            yield from env.message_receive(rid)
        return env.now() - t0

    cfg = MPFConfig(max_lnvcs=4, max_processes=2, block_size=bs,
                    max_messages=8, message_pool_bytes=1 << 18)
    run = SimRuntime().run([worker], cfg=cfg)
    return msgs * 1024 / run.results["p0"], {}


def ablation_block(quick: bool = False, jobs: int = 1) -> SweepResult:
    """Design ablation: message block size (the paper fixed 10 bytes).

    Base-benchmark throughput at 1024-byte messages as the block size
    varies.  Bigger blocks amortize per-block list costs — the knob the
    paper's Figure 3 analysis implies but never sweeps.
    """
    result = SweepResult(
        "Ablation C", "Block size vs. base throughput (1024B messages)",
        "block bytes", "throughput (bytes/second of simulated time)",
    )
    sizes = (10, 64, 256) if quick else (4, 10, 32, 64, 128, 256)
    msgs = 24 if quick else 48
    run_series(result, "base @1024B", sizes, partial(_ablation_block_point, msgs),
               jobs=jobs)
    result.note("10-byte blocks (the paper's choice) sit far below the "
                "large-block ceiling; generality of tiny messages traded "
                "against bulk throughput")
    return result


def _ablation_paging_point(msgs: int, paging: bool, p: int) -> tuple[float, dict]:
    if paging:
        m = random_throughput(p, 1024, messages=msgs)
        return m.throughput, {"faults": m.run.report.page_faults}
    m = random_throughput(p, 1024, messages=msgs,
                          machine=BALANCE_21000.without_paging())
    return m.throughput, {}


def ablation_paging(quick: bool = False, jobs: int = 1) -> SweepResult:
    """Model ablation: Figure 6's random benchmark with paging disabled.

    Separates queueing/lock contention from virtual-memory overhead —
    the decomposition the paper asserts verbally ("this is the reason
    for the decrease in observed throughput").
    """
    result = SweepResult(
        "Ablation D", "Random benchmark (1024B) with and without paging",
        "processes", "throughput (bytes/second of simulated time)",
    )
    procs = (2, 10, 20) if quick else (2, 6, 10, 14, 17, 20)
    msgs = 16 if quick else 32
    run_series(result, "paging on (Balance 21000)", procs,
               partial(_ablation_paging_point, msgs, True), jobs=jobs)
    run_series(result, "paging off", procs,
               partial(_ablation_paging_point, msgs, False), jobs=jobs)
    result.note("the gap between the curves is exactly the simulated VM "
                "overhead; without paging throughput keeps growing")
    return result


def _ablation_cache_point(msgs: int, cache_on: bool, n: int) -> tuple[float, dict]:
    if cache_on:
        m = broadcast_throughput(n, 1024, messages=msgs)
        return m.throughput, {"stalls": m.run.report.cache_stalled_blocks}
    m = broadcast_throughput(n, 1024, messages=msgs,
                             machine=BALANCE_21000.without_cache())
    return m.throughput, {}


def ablation_cache(quick: bool = False, jobs: int = 1) -> SweepResult:
    """Model ablation: the write-through cache's read-miss stalls.

    The broadcast benchmark cycles the deepest block working sets, so it
    is where the cache could matter most; the ablation shows the effect
    is second-order — consistent with the paper's analysis never
    mentioning the cache at all.
    """
    result = SweepResult(
        "Ablation E", "Broadcast benchmark (1024B) with and without the cache model",
        "receivers", "throughput (bytes/second of simulated time)",
    )
    counts = (4, 16) if quick else (1, 4, 8, 16)
    msgs = 24 if quick else 64
    run_series(result, "cache model on", counts,
               partial(_ablation_cache_point, msgs, True), jobs=jobs)
    run_series(result, "cache model off", counts,
               partial(_ablation_cache_point, msgs, False), jobs=jobs)
    result.note("a few percent at most: MPF is software-cost bound, not "
                "cache bound — matching the paper's silence about caches")
    return result


def _transport_point(fn, length: int, msgs: int, transport: str,
                     n: int) -> tuple[float, dict]:
    """One head-to-head point: throughput plus the lock-wait and causal
    latency columns that explain it (simulator only)."""
    m, rec = _measured_run(fn, n, length, msgs, transport, _REC_CAUSAL)
    agg = rec.circuit_lock_stats()
    extra = {
        "lnvc_wait_ms": round(1e3 * agg.wait_seconds, 3),
        "lnvc_contended": agg.contended,
        "lnvc_acquires": agg.acquires,
        **_causal_extras(rec.causal),
    }
    return m.throughput, extra


def _transport_random_point(msgs: int, length: int, transport: str,
                            p: int) -> tuple[float, dict]:
    m, _ = _measured_run(random_throughput, p, length, msgs, transport,
                         _REC_NONE)
    return m.throughput, {"faults": m.run.report.page_faults}


def _transport_sweep(figure: str, title: str, fn, quick: bool,
                     jobs: int, lengths: tuple[int, ...]) -> SweepResult:
    result = SweepResult(
        figure, title,
        "receivers", "throughput (bytes/second of simulated time)",
    )
    counts = (1, 4, 8, 16) if quick else (1, 2, 4, 8, 12, 16)
    msgs = 32 if quick else 96
    for length in lengths:
        for transport in ("freelist", "ring"):
            run_series(
                result, f"{length}B {transport}", counts,
                partial(_transport_point, fn, length, msgs, transport),
                jobs=jobs,
            )
    result.note("extras per point: circuit-lock wait/contention plus causal "
                "per-stage p50s and e2e p50/p95 on the busiest LNVC")
    return result


def ablation_transport_fcfs(quick: bool = False, jobs: int = 1) -> SweepResult:
    """Transport ablation: Figure 4's fcfs sweep, free list vs ring.

    Same workload, same cost model; only the payload path changes.  The
    free-list sender's critical section grows with N (it walks the
    receive-descriptor list and the allocator serializes block chains),
    while the ring sender's critical section is a constant-size index
    claim — so the gap widens with fan-in, the paper's §4 contention
    analysis re-run with the contended work removed.
    """
    result = _transport_sweep(
        "Ablation F",
        "fcfs benchmark, free-list vs. ring transport",
        fcfs_throughput, quick, jobs, (16, 1024),
    )
    result.note("free-list send cost grows with receivers (descriptor walk "
                "under the circuit lock); ring send cost is flat")
    return result


def ablation_transport_bcast(quick: bool = False, jobs: int = 1) -> SweepResult:
    """Transport ablation: Figure 5's broadcast sweep, free list vs ring.

    BROADCAST is where the ring's per-reader cursors pay off: readers
    advance private cache-line-padded cursors instead of a shared FIFO
    head walk, and completion is one bit clear in the slot's bitmap
    instead of retirement bookkeeping on a shared message header.
    """
    return _transport_sweep(
        "Ablation G",
        "broadcast benchmark, free-list vs. ring transport",
        broadcast_throughput, quick, jobs, (16, 1024),
    )


def ablation_transport_random(quick: bool = False, jobs: int = 1) -> SweepResult:
    """Transport ablation: Figure 6's random traffic, free list vs ring.

    Ring slots are statically resident per circuit, so the allocator-
    driven working-set growth that bends the 1024-byte free-list curve
    (paging) never happens: the `faults` column drops to the fixed
    footprint's residual.
    """
    result = SweepResult(
        "Ablation H",
        "random benchmark (1024B), free-list vs. ring transport",
        "processes", "throughput (bytes/second of simulated time)",
    )
    procs = (2, 10, 20) if quick else (2, 6, 10, 14, 17, 20)
    msgs = 16 if quick else 40
    for transport in ("freelist", "ring"):
        run_series(result, f"1024B {transport}", procs,
                   partial(_transport_random_point, msgs, 1024, transport),
                   jobs=jobs)
    result.note("rings pre-reserve their slot memory, so the VM model sees a "
                "fixed footprint: the free-list curve's paging bend vanishes")
    return result


def _paradigm_point(kernel: str, size: int, p: int) -> tuple[float, dict]:
    from ..apps.paradigm import paradigm_penalty

    mp_t, shm_t, penalty = paradigm_penalty(kernel, size, p)
    return penalty, {"mp_seconds": mp_t, "shm_seconds": shm_t}


def study_paradigm(quick: bool = False, jobs: int = 1) -> SweepResult:
    """The §5 research question, measured: message passing vs shared
    memory on the same kernels.

    Plots the *penalty* (message-passing time over shared-memory time,
    identical compute charges) against process count for the global-sum
    and 1-D Jacobi kernels.  Values above 1 are the cost of the
    cross-paradigm port the introduction warns about.
    """
    result = SweepResult(
        "Study P", "Cross-paradigm penalty: message passing / shared memory",
        "processes", "time ratio (MP / SHM, simulated)",
    )
    procs = (2, 4) if quick else (1, 2, 4, 8)
    sizes = {"sum": 64 if quick else 256, "jacobi": 64 if quick else 256}
    for kernel in ("sum", "jacobi"):
        run_series(result, f"{kernel} (n={sizes[kernel]})", procs,
                   partial(_paradigm_point, kernel, sizes[kernel]), jobs=jobs)
    result.note('paper §1: "this adaptation may incur a substantial '
                'performance penalty" — quantified')
    return result


#: Registry used by ``python -m repro.bench``.  Every entry accepts
#: ``(quick=False, jobs=1)``.
FIGURES: dict[str, Callable[..., SweepResult]] = {
    "fig3": fig3,
    "fig4": fig4,
    "fig5": fig5,
    "fig6": fig6,
    "fig7": fig7,
    "fig8": fig8,
    "ablation_sync": ablation_sync,
    "ablation_o2o": ablation_o2o,
    "ablation_block": ablation_block,
    "ablation_paging": ablation_paging,
    "ablation_cache": ablation_cache,
    "ablation_transport_fcfs": ablation_transport_fcfs,
    "ablation_transport_bcast": ablation_transport_bcast,
    "ablation_transport_random": ablation_transport_random,
    "study_paradigm": study_paradigm,
}

#: Registry used by ``python -m repro.bench trace <fig>``: figures whose
#: mechanism can be profiled with a Recorder across runtimes.  These stay
#: serial (they keep live Recorder objects and spawn process runtimes).
CONTENTION: dict[str, Callable[..., SweepResult]] = {
    "fig3": fig3_contention,
    "fig4": fig4_contention,
    "fig5": fig5_contention,
}
