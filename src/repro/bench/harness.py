"""Sweep runner and table formatting for the figure harness.

The paper reports its evaluation as six figures of throughput/speedup
series.  A :class:`SweepResult` holds one figure's worth of series and
formats them as the rows the paper plots, so ``python -m repro.bench
fig4`` prints a table whose columns are directly comparable to the
published curves.  EXPERIMENTS.md is generated from these tables.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Callable, Iterable, Sequence

__all__ = [
    "BenchPoint",
    "Series",
    "SweepResult",
    "run_series",
    "interleaved_rounds",
    "format_rate",
    "shutdown_pool",
]


@dataclass(frozen=True)
class BenchPoint:
    """One measured point of one series."""

    #: The swept parameter (message length, receiver count, ...).
    x: float
    #: The measured value (bytes/s or speedup).
    y: float
    #: Free-form extras (machine counters worth reporting).
    extra: dict = field(default_factory=dict)


@dataclass
class Series:
    """One curve of a figure."""

    label: str
    points: list[BenchPoint] = field(default_factory=list)

    def add(self, x: float, y: float, **extra) -> None:
        self.points.append(BenchPoint(x, y, dict(extra)))

    def ys(self) -> list[float]:
        return [p.y for p in self.points]

    def xs(self) -> list[float]:
        return [p.x for p in self.points]


@dataclass
class SweepResult:
    """All series of one figure, plus labels for presentation."""

    figure: str
    title: str
    x_label: str
    y_label: str
    series: list[Series] = field(default_factory=list)
    notes: list[str] = field(default_factory=list)

    def new_series(self, label: str) -> Series:
        s = Series(label)
        self.series.append(s)
        return s

    def note(self, text: str) -> None:
        self.notes.append(text)

    # -- presentation -------------------------------------------------------

    def format_table(self) -> str:
        """Render the figure as an aligned text table (x rows, series columns)."""
        xs = sorted({p.x for s in self.series for p in s.points})
        by = {
            s.label: {p.x: p.y for p in s.points}
            for s in self.series
        }
        head = [self.x_label] + [s.label for s in self.series]
        rows = [head]
        for x in xs:
            row = [_fmt_x(x)]
            for s in self.series:
                y = by[s.label].get(x)
                row.append("-" if y is None else format_rate(y))
            rows.append(row)
        widths = [max(len(r[i]) for r in rows) for i in range(len(head))]
        lines = [
            f"{self.figure}: {self.title}",
            f"  ({self.y_label})",
        ]
        for i, row in enumerate(rows):
            lines.append("  " + "  ".join(c.rjust(w) for c, w in zip(row, widths)))
            if i == 0:
                lines.append("  " + "-" * (sum(widths) + 2 * (len(widths) - 1)))
        for note in self.notes:
            lines.append(f"  note: {note}")
        return "\n".join(lines)

    def format_extras(self) -> str:
        """Render per-point extras as one aligned table per series.

        Returns an empty string when no point carries extras.  Columns
        appear in first-seen order, so sweeps that record the same keys
        for every point get a stable layout.
        """
        parts = []
        for s in self.series:
            keys: list[str] = []
            for p in s.points:
                for k in p.extra:
                    if k not in keys:
                        keys.append(k)
            if not keys:
                continue
            rows = [[self.x_label] + keys]
            for p in s.points:
                rows.append(
                    [_fmt_x(p.x)] + [_fmt_extra(p.extra.get(k)) for k in keys]
                )
            widths = [max(len(r[i]) for r in rows) for i in range(len(rows[0]))]
            lines = [f"{self.figure} extras — {s.label}:"]
            for i, row in enumerate(rows):
                lines.append(
                    "  " + "  ".join(c.rjust(w) for c, w in zip(row, widths))
                )
                if i == 0:
                    lines.append("  " + "-" * (sum(widths) + 2 * (len(widths) - 1)))
            parts.append("\n".join(lines))
        return "\n\n".join(parts)

    def to_dict(self) -> dict:
        """JSON-serializable form (used to archive experiment outputs)."""
        return {
            "figure": self.figure,
            "title": self.title,
            "x_label": self.x_label,
            "y_label": self.y_label,
            "series": [
                {
                    "label": s.label,
                    "points": [
                        {"x": p.x, "y": p.y, **({"extra": p.extra} if p.extra else {})}
                        for p in s.points
                    ],
                }
                for s in self.series
            ],
            "notes": self.notes,
        }

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), indent=2)


def _fmt_x(x: float) -> str:
    return str(int(x)) if float(x).is_integer() else f"{x:g}"


def _fmt_extra(v: object) -> str:
    if v is None:
        return "-"
    if isinstance(v, bool):
        return str(v)
    if isinstance(v, float):
        return f"{v:g}"
    return str(v)


def format_rate(y: float) -> str:
    """Human-scale number: speedups keep decimals, rates round to integers."""
    if y == 0:
        return "0"
    if abs(y) < 100:
        return f"{y:.2f}"
    return f"{y:,.0f}"


# One process pool shared by every series of a bench invocation, created
# lazily on the first ``jobs > 1`` sweep.  Worker startup costs ~100 ms;
# paying it once per run instead of once per series keeps small sweeps
# worth parallelizing.
_POOL = None
_POOL_JOBS = 0


def _pool(jobs: int):
    global _POOL, _POOL_JOBS
    if _POOL is None or _POOL_JOBS != jobs:
        shutdown_pool()
        from concurrent.futures import ProcessPoolExecutor

        _POOL = ProcessPoolExecutor(max_workers=jobs)
        _POOL_JOBS = jobs
    return _POOL


def shutdown_pool() -> None:
    """Tear down the shared measurement pool (idempotent)."""
    global _POOL, _POOL_JOBS
    if _POOL is not None:
        _POOL.shutdown()
        _POOL = None
        _POOL_JOBS = 0


def interleaved_rounds(
    runners: "dict[str, Callable[[], object]]",
    rounds: int,
    before_round: Callable[[], None] | None = None,
) -> "dict[str, tuple[float, object]]":
    """Wall-time labeled runs as interleaved min-of-N rounds.

    Runs every runner once per round, round-robin — A B C, A B C, … —
    and returns ``{label: (best_wall_seconds, first_round_result)}``.
    Interleaving is what makes the minima comparable *between* labels:
    machine-load drift (CPU frequency, cache pressure, a background
    process) hits all labels of a round roughly equally instead of
    biasing whichever config happened to run during the slow stretch,
    and the min-of-N discards the rounds that drift inflated.  Results
    are taken from round one; the runs are deterministic, so later
    rounds only re-measure time, never change answers.

    ``before_round`` runs before each round — the hook for dropping
    memo caches so every round re-measures real work.
    """
    import time as _time

    best: dict[str, tuple[float, object]] = {}
    for rnd in range(max(1, rounds)):
        if before_round is not None:
            before_round()
        for label, fn in runners.items():
            t0 = _time.perf_counter()
            result = fn()
            wall = _time.perf_counter() - t0
            prev = best.get(label)
            if prev is None:
                best[label] = (wall, result)
            elif wall < prev[0]:
                best[label] = (wall, prev[1])
    return best


def run_series(
    result: SweepResult,
    label: str,
    xs: Iterable[float],
    measure: Callable[[float], tuple[float, dict]],
    jobs: int = 1,
) -> Series:
    """Measure ``xs`` points into a new series of ``result``.

    ``measure(x)`` returns ``(y, extras)``.  With ``jobs > 1`` the points
    are measured concurrently in a process pool (``measure`` must then be
    picklable: a module-level function or a ``functools.partial`` over
    one).  Results are reassembled in sweep order, so the produced series
    — tables, archives, EXPERIMENTS.md — is identical to a serial run no
    matter how the points interleave; each point is its own deterministic
    simulation, so the values themselves cannot differ.
    """
    series = result.new_series(label)
    xs = list(xs)
    if jobs > 1 and len(xs) > 1:
        for x, (y, extra) in zip(xs, _pool(jobs).map(measure, xs)):
            series.add(x, y, **extra)
    else:
        for x in xs:
            y, extra = measure(x)
            series.add(x, y, **extra)
    return series
