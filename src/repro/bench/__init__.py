"""Benchmark workloads and the figure-regeneration harness.

* :mod:`~repro.bench.workloads` — the paper's four synthetic programs
  (`base`, `fcfs`, `broadcast`, `random`; §4, Figures 3–6),
* :mod:`~repro.bench.harness` — sweep runner and table printing,
* :mod:`~repro.bench.figures` — one entry per paper figure plus
  ablations; ``python -m repro.bench fig3`` regenerates a figure's data.
"""

from .harness import BenchPoint, Series, SweepResult, run_series
from .workloads import (
    base_throughput,
    broadcast_throughput,
    fcfs_throughput,
    random_throughput,
)

__all__ = [
    "BenchPoint",
    "Series",
    "SweepResult",
    "run_series",
    "base_throughput",
    "fcfs_throughput",
    "broadcast_throughput",
    "random_throughput",
]
