"""The paper's four synthetic benchmark programs (§4).

Each function builds the worker set for one benchmark, runs it on a
runtime (default: the simulated Balance 21000,
:class:`~repro.runtime.sim.SimRuntime`) and returns measured throughput
in bytes/second — of *simulated* time on the simulator, of wall-clock
time on the real runtimes — the same metric the paper plots:

* :func:`base_throughput` — Figure 3: one process loop-back, alternating
  ``message_send`` / ``message_receive`` of fixed-length messages.
* :func:`fcfs_throughput` — Figure 4: one sender, N FCFS receivers;
  throughput counts each payload once (one receiver consumes it).
* :func:`broadcast_throughput` — Figure 5: one sender, N BROADCAST
  receivers; throughput counts each payload N times (every receiver
  copies it), the paper's "effective throughput".
* :func:`random_throughput` — Figure 6: P fully connected processes,
  each with its own FCFS mailbox circuit; each process repeatedly sends
  a fixed-length message to a randomly selected peer and then drains its
  own mailbox.

Timing windows exclude setup: workers synchronize on a barrier, record
``env.now()``, run the measured phase, and record ``env.now()`` again;
the throughput denominator is ``max(end) - min(start)`` across workers.

Every benchmark accepts ``runtime=`` (``"sim"``, ``"threads"`` or
``"procs"``) and ``recorder=`` (a :class:`repro.obs.Recorder`), so the
same workload can be profiled for lock contention on the simulator and
on real threads or forked processes — the basis of the
``python -m repro.bench trace`` subcommand.  ``machine`` and ``costs``
only influence the ``"sim"`` runtime; real runtimes take however long
they take.

Every benchmark also accepts ``transport=`` (``"freelist"`` or
``"ring"``), selecting how every circuit of the run carries payloads
(see docs/transport.md); ``"ring"`` swaps the shared block pool for
fixed per-circuit slot rings, which turns pool exhaustion into sender
backpressure, so the same workloads run unmodified on either.
"""

from __future__ import annotations

import random as _random
from dataclasses import dataclass

from ..core.costmodel import Costs, DEFAULT_COSTS
from ..core.layout import MPFConfig
from ..core.protocol import BROADCAST, FCFS
from ..machine.balance import BALANCE_21000, MachineConfig
from ..patterns import barrier
from ..runtime.base import Env, RunResult, Runtime
from ..runtime.sim import SimRuntime

__all__ = [
    "Measurement",
    "make_runtime",
    "base_throughput",
    "fcfs_throughput",
    "broadcast_throughput",
    "random_throughput",
]

#: Message type markers for the random benchmark (first payload byte).
_DATA, _DONE = 0x01, 0x02


@dataclass(frozen=True)
class Measurement:
    """One benchmark point."""

    #: Payload bytes counted toward throughput.
    payload_bytes: int
    #: Simulated seconds of the measured window.
    window: float
    #: The full run result (machine report, header stats).
    run: RunResult

    @property
    def throughput(self) -> float:
        """Bytes per simulated second."""
        return self.payload_bytes / self.window if self.window > 0 else 0.0


def _window(result: RunResult) -> float:
    spans = [v for v in result.results.values() if isinstance(v, tuple)]
    start = min(t0 for t0, _ in spans)
    end = max(t1 for _, t1 in spans)
    return end - start


def make_runtime(kind: str, machine: MachineConfig = BALANCE_21000,
                 recorder=None) -> Runtime:
    """Build the runtime a benchmark should run on.

    ``kind`` is ``"sim"`` (simulated Balance 21000 — deterministic,
    virtual time), ``"threads"`` (real Python threads, wall clock) or
    ``"procs"`` (forked Unix processes over POSIX shared memory, wall
    clock).  ``recorder`` is attached to whichever runtime is built, so
    lock-contention profiles are comparable across the three.
    """
    if kind == "sim":
        return SimRuntime(machine=machine, recorder=recorder)
    if kind == "threads":
        from ..runtime.threads import ThreadRuntime

        return ThreadRuntime(recorder=recorder)
    if kind == "procs":
        from ..runtime.procs import ProcRuntime

        return ProcRuntime(recorder=recorder)
    raise ValueError(f"unknown runtime kind {kind!r} "
                     "(expected 'sim', 'threads' or 'procs')")


def base_throughput(
    length: int,
    messages: int = 64,
    machine: MachineConfig = BALANCE_21000,
    costs: Costs = DEFAULT_COSTS,
    runtime: str = "sim",
    recorder=None,
    transport: str = "freelist",
) -> Measurement:
    """Figure 3's `base` program: single-process loop-back throughput.

    "a simple program, base, that establishes a loop-back connection
    through an LNVC for a single process, and then alternates between
    sending and receiving fixed-length messages."
    """
    payload = bytes([0xA5]) * length

    def worker(env: Env):
        sid = yield from env.open_send("loop")
        rid = yield from env.open_receive("loop", FCFS)
        t0 = env.now()
        for _ in range(messages):
            yield from env.message_send(sid, payload)
            got = yield from env.message_receive(rid)
            assert len(got) == length
        t1 = env.now()
        yield from env.close_send(sid)
        yield from env.close_receive(rid)
        return (t0, t1)

    cfg = MPFConfig(max_lnvcs=4, max_processes=2,
                    max_messages=16, message_pool_bytes=1 << 18,
                    transport=transport,
                    ring_slot_bytes=max(64, length))
    result = make_runtime(runtime, machine, recorder).run(
        [worker], cfg=cfg, costs=costs)
    return Measurement(messages * length, _window(result), result)


def fcfs_throughput(
    n_receivers: int,
    length: int,
    messages: int = 96,
    machine: MachineConfig = BALANCE_21000,
    costs: Costs = DEFAULT_COSTS,
    runtime: str = "sim",
    recorder=None,
    transport: str = "freelist",
) -> Measurement:
    """Figure 4's `fcfs` program: one sender, N FCFS receivers.

    "The program fcfs uses one process to send messages of length K to an
    LNVC with N FCFS receiving processes."  Each payload is consumed by
    exactly one receiver, so total throughput is bounded by the sender's
    transmission rate; small messages *lose* throughput as receivers are
    added because the woken receivers' lock traffic delays the sender.
    """
    n = n_receivers
    payload = bytes(0x5A for _ in range(length))
    stop = bytes([0x00]) * max(1, length)  # sentinel, same length

    def sender(env: Env):
        cid = yield from env.open_send("pipe")
        yield from barrier(env, "go", n + 1)
        t0 = env.now()
        for _ in range(messages):
            yield from env.message_send(cid, payload)
        for _ in range(n):
            yield from env.message_send(cid, stop)
        t1 = env.now()
        yield from barrier(env, "done", n + 1)
        yield from env.close_send(cid)
        return (t0, t1)

    def receiver(env: Env):
        cid = yield from env.open_receive("pipe", FCFS)
        yield from barrier(env, "go", n + 1)
        t0 = env.now()
        while True:
            got = yield from env.message_receive(cid)
            if got == stop:
                break
        t1 = env.now()
        yield from barrier(env, "done", n + 1)
        yield from env.close_receive(cid)
        return (t0, t1)

    cfg = MPFConfig(
        max_lnvcs=16,
        max_processes=n + 1,
        max_messages=max(256, messages + n + 8),
        message_pool_bytes=max(1 << 18, 2 * (messages + n) * (length + 16)),
        transport=transport,
        # Like max_messages above: deep enough that the sender never
        # blocks, so both transports are measured in the same regime.
        ring_slots=max(64, messages + n + 8),
        ring_slot_bytes=max(64, length),
    )
    result = make_runtime(runtime, machine, recorder).run(
        [sender] + [receiver] * n, cfg=cfg, costs=costs)
    return Measurement(messages * length, _window(result), result)


def broadcast_throughput(
    n_receivers: int,
    length: int,
    messages: int = 96,
    machine: MachineConfig = BALANCE_21000,
    costs: Costs = DEFAULT_COSTS,
    runtime: str = "sim",
    recorder=None,
    transport: str = "freelist",
) -> Measurement:
    """Figure 5's `broadcast` program: one sender, N BROADCAST receivers.

    "all message receivers obtain a copy of each message.  Thus, by
    allowing the receiver processes to copy messages concurrently, higher
    throughputs can be achieved."  Throughput counts every delivered
    copy: N × messages × length bytes over the window.
    """
    n = n_receivers
    payload = bytes(0x3C for _ in range(length))

    def sender(env: Env):
        cid = yield from env.open_send("wave")
        yield from barrier(env, "go", n + 1)
        t0 = env.now()
        for _ in range(messages):
            yield from env.message_send(cid, payload)
        t1 = env.now()
        yield from barrier(env, "done", n + 1)
        yield from env.close_send(cid)
        return (t0, t1)

    def receiver(env: Env):
        cid = yield from env.open_receive("wave", BROADCAST)
        yield from barrier(env, "go", n + 1)
        t0 = env.now()
        for _ in range(messages):
            got = yield from env.message_receive(cid)
            assert len(got) == length
        t1 = env.now()
        yield from barrier(env, "done", n + 1)
        yield from env.close_receive(cid)
        return (t0, t1)

    cfg = MPFConfig(
        max_lnvcs=16,
        max_processes=n + 1,
        max_messages=max(256, messages + 8),
        message_pool_bytes=max(1 << 18, 2 * messages * (length + 16)),
        transport=transport,
        # Like max_messages above: deep enough that the sender never
        # blocks, so both transports are measured in the same regime.
        ring_slots=max(64, messages + 8),
        ring_slot_bytes=max(64, length),
    )
    result = make_runtime(runtime, machine, recorder).run(
        [sender] + [receiver] * n, cfg=cfg, costs=costs)
    return Measurement(n * messages * length, _window(result), result)


def random_throughput(
    n_processes: int,
    length: int,
    messages: int = 48,
    machine: MachineConfig = BALANCE_21000,
    costs: Costs = DEFAULT_COSTS,
    seed: int = 1987,
    runtime: str = "sim",
    recorder=None,
    transport: str = "freelist",
) -> Measurement:
    """Figure 6's `random` program: fully connected random traffic.

    "The communications pattern is fully-connected with a FCFS LNVC
    defined for each destination process. ... each process sends a
    specified number of fixed-length messages; destinations are selected
    randomly.  Each time a process executes a message_send(), it then
    receives all messages that are queued in its LNVC."

    Every process owns one FCFS mailbox circuit and holds open send
    connections to all others.  Destination choice uses a per-process
    seeded PRNG so the simulation stays deterministic.  After its quota a
    process floods a DONE marker to every mailbox and drains its own
    mailbox until all peers' markers arrived.  Throughput counts data
    payloads only.
    """
    p = n_processes
    if p < 2:
        raise ValueError("random benchmark needs at least 2 processes")
    body = bytes([_DATA]) + bytes(0x77 for _ in range(length - 1))
    done = bytes([_DONE]) + bytes(length - 1)

    def worker(env: Env):
        rng = _random.Random(seed * 7919 + env.rank)
        mine = yield from env.open_receive(f"mbox.{env.rank}", FCFS)
        outs = {}
        for dest in range(p):
            if dest != env.rank:
                outs[dest] = yield from env.open_send(f"mbox.{dest}")
        yield from barrier(env, "go", p)
        t0 = env.now()
        dones = 0
        for _ in range(messages):
            dest = rng.randrange(p - 1)
            if dest >= env.rank:
                dest += 1
            yield from env.message_send(outs[dest], body)
            while (yield from env.check_receive(mine)):
                got = yield from env.message_receive(mine)
                if got[0] == _DONE:
                    dones += 1
        for dest, cid in outs.items():
            yield from env.message_send(cid, done)
        while dones < p - 1:
            got = yield from env.message_receive(mine)
            if got[0] == _DONE:
                dones += 1
        t1 = env.now()
        yield from barrier(env, "bye", p)
        for cid in outs.values():
            yield from env.close_send(cid)
        yield from env.close_receive(mine)
        return (t0, t1)

    cfg = MPFConfig(
        max_lnvcs=2 * p + 8,
        max_processes=p,
        max_messages=max(512, p * messages + p * p + 16),
        message_pool_bytes=max(1 << 19, 2 * p * messages * (length + 16)),
        transport=transport,
        # Deep rings: a mailbox can briefly hold one in-flight burst per
        # peer, and a cycle of backpressured senders must stay impossible.
        ring_slots=256,
        ring_slot_bytes=max(64, length),
    )
    result = make_runtime(runtime, machine, recorder).run(
        [worker] * p, cfg=cfg, costs=costs)
    return Measurement(p * messages * length, _window(result), result)
