"""Compare two archived figure-harness JSON files.

Long-lived performance work needs regression tooling: run
``python -m repro.bench all --json before.json``, change the code, run
again, and diff::

    python -m repro.bench.compare before.json after.json [--tolerance 0.05]

Reports, per figure and series, the worst relative change, and exits
nonzero when any point moved more than the tolerance — suitable as a CI
gate on the calibrated model.
"""

from __future__ import annotations

import argparse
import json
import sys
from dataclasses import dataclass

__all__ = ["PointDelta", "compare_archives", "main"]


@dataclass(frozen=True)
class PointDelta:
    """One point's movement between archives."""

    figure: str
    series: str
    x: float
    before: float
    after: float

    @property
    def rel(self) -> float:
        """Relative change (after vs before); inf when before == 0."""
        if self.before == 0:
            return float("inf") if self.after else 0.0
        return (self.after - self.before) / self.before


def _index(archive: list[dict]) -> dict[tuple[str, str, float], float]:
    out = {}
    for fig in archive:
        for series in fig["series"]:
            for point in series["points"]:
                out[(fig["figure"], series["label"], point["x"])] = point["y"]
    return out


def compare_archives(
    before: list[dict], after: list[dict]
) -> tuple[list[PointDelta], list[tuple[str, str, float]]]:
    """Diff two archives.

    Returns ``(deltas, missing)``: a delta per point present in both,
    and the keys present in exactly one archive.
    """
    a, b = _index(before), _index(after)
    deltas = [
        PointDelta(fig, series, x, a[(fig, series, x)], b[(fig, series, x)])
        for (fig, series, x) in sorted(a.keys() & b.keys())
    ]
    missing = sorted(a.keys() ^ b.keys())
    return deltas, missing


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench.compare",
        description="Diff two figure-harness JSON archives.",
    )
    parser.add_argument("before")
    parser.add_argument("after")
    parser.add_argument("--tolerance", type=float, default=0.05,
                        help="max allowed relative change (default 0.05)")
    args = parser.parse_args(argv)

    with open(args.before) as fh:
        before = json.load(fh)
    with open(args.after) as fh:
        after = json.load(fh)
    deltas, missing = compare_archives(before, after)

    bad = [d for d in deltas if abs(d.rel) > args.tolerance]
    worst: dict[tuple[str, str], PointDelta] = {}
    for d in deltas:
        key = (d.figure, d.series)
        if key not in worst or abs(d.rel) > abs(worst[key].rel):
            worst[key] = d
    for (figure, series), d in sorted(worst.items()):
        flag = "  <-- exceeds tolerance" if abs(d.rel) > args.tolerance else ""
        print(f"{figure} / {series}: worst at x={d.x:g}: "
              f"{d.before:,.2f} -> {d.after:,.2f} ({d.rel:+.1%}){flag}")
    for key in missing:
        print(f"only in one archive: {key}")
    print(f"{len(deltas)} points compared, {len(bad)} over tolerance, "
          f"{len(missing)} unmatched")
    return 1 if bad or missing else 0


if __name__ == "__main__":
    sys.exit(main())
