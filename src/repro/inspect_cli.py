"""``mpf-inspect`` — dump the live state of a named MPF segment.

Operational counterpart of :mod:`repro.core.inspect`: attach read-only
to a segment created by :class:`repro.runtime.posix.PosixSegment` from
any terminal and print its circuits, connections, queues and pool
occupancy::

    mpf-inspect myapp --max-lnvcs 8 --max-processes 4

The config flags must match the creator's ``MPFConfig`` (the segment
header is validated against them, so a mismatch is an error, not a
garbled dump).  The attach takes no locks; on a busy segment the
snapshot may be torn — see the consistency caveat in
:mod:`repro.core.inspect`.

With ``--replay TRACE`` the tool instead re-executes a decision trace
recorded by ``python -m repro.check`` and dumps the segment the failing
schedule leaves behind — the same inspector, pointed at a reproduced
bug instead of a live segment::

    mpf-inspect --replay fail.json

``--flow`` adds the message flow graph (pid -> LNVC -> pid) in Graphviz
DOT, built from queue state and connection read counts for a live
segment, or from the full lifecycle trace for a replay::

    mpf-inspect myapp --flow | dot -Tsvg > flow.svg

``mpf-inspect top`` is the live mode: point it at a run serving
telemetry (:class:`repro.obs.LiveTelemetryServer`, e.g. ``python -m
repro.bench serve --quick --live``) and it polls ``/metrics`` and
redraws a plain-text per-series table — curses-free, one ANSI clear per
frame::

    mpf-inspect top --url http://127.0.0.1:9377 --interval 0.5
"""

from __future__ import annotations

import argparse
import sys
from multiprocessing import shared_memory

from .core.inspect import inspect_segment, render_segment
from .core.layout import MPFConfig, check_region
from .core.ops import MPFView
from .core.region import SharedRegion


def _top(argv: list[str]) -> int:
    parser = argparse.ArgumentParser(
        prog="mpf-inspect top",
        description="Poll a live telemetry endpoint and redraw the "
        "per-series table (the live analogue of the sojourn tables).",
    )
    parser.add_argument("--url", required=True,
                        help="endpoint base URL or full /metrics URL")
    parser.add_argument("--interval", type=float, default=1.0, metavar="S",
                        help="seconds between frames (default 1.0)")
    parser.add_argument("--iterations", type=int, default=None, metavar="N",
                        help="frames to draw (default: until interrupted)")
    parser.add_argument("--no-clear", action="store_true",
                        help="append frames instead of redrawing in place")
    args = parser.parse_args(argv)
    from .obs.live import top_main

    return top_main(args.url, interval=args.interval,
                    iterations=args.iterations, clear=not args.no_clear)


def main(argv: list[str] | None = None) -> int:
    argv = sys.argv[1:] if argv is None else argv
    if argv and argv[0] == "top":
        return _top(argv[1:])
    parser = argparse.ArgumentParser(
        prog="mpf-inspect",
        description="Dump the live state of a named MPF shared segment.",
    )
    parser.add_argument("name", nargs="?", default=None,
                        help="segment name (as passed to PosixSegment.create)")
    parser.add_argument("--replay", default=None, metavar="TRACE",
                        help="replay a repro.check decision trace and dump "
                             "the segment it leaves behind")
    parser.add_argument("--max-lnvcs", type=int, default=32)
    parser.add_argument("--max-processes", type=int, default=32)
    parser.add_argument("--block-size", type=int, default=10)
    parser.add_argument("--max-messages", type=int, default=1024)
    parser.add_argument("--message-pool-bytes", type=int, default=1 << 20)
    parser.add_argument("--ext-slots", type=int, default=0)
    parser.add_argument("--ext-bytes", type=int, default=0)
    parser.add_argument("--flow", action="store_true",
                        help="also print the message flow graph "
                             "(pid -> LNVC -> pid) as Graphviz DOT")
    args = parser.parse_args(argv)

    if args.replay is not None:
        return _replay(args.replay, flow=args.flow)
    if args.name is None:
        parser.error("a segment name is required (or use --replay TRACE)")

    cfg = MPFConfig(
        max_lnvcs=args.max_lnvcs,
        max_processes=args.max_processes,
        block_size=args.block_size,
        max_messages=args.max_messages,
        message_pool_bytes=args.message_pool_bytes,
        ext_slots=args.ext_slots,
        ext_bytes=args.ext_bytes,
    )
    try:
        shm = shared_memory.SharedMemory(name=args.name)
    except FileNotFoundError:
        print(f"error: no shared segment named {args.name!r}", file=sys.stderr)
        return 2
    try:
        from multiprocessing import resource_tracker

        resource_tracker.unregister(shm._name, "shared_memory")
    except Exception:  # pragma: no cover - tracker internals moved
        pass
    region = SharedRegion(shm.buf)
    try:
        layout = check_region(region, cfg)
        view = MPFView(region, layout)
        info = inspect_segment(view)
        print(render_segment(info))
        if args.flow:
            from .obs import flow_dot, flow_from_segment

            print()
            print(flow_dot(flow_from_segment(info)))
        return 0
    except Exception as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    finally:
        region.release()
        shm.close()


def _replay(path: str, flow: bool = False) -> int:
    """Re-run a recorded schedule and dump the segment it produces."""
    from .check.scenarios import SCENARIOS
    from .check.scheduler import PrefixPolicy, run_schedule
    from .obs import read_decision_trace

    try:
        trace = read_decision_trace(path)
    except (OSError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    name = trace.get("scenario")
    if name not in SCENARIOS:
        print(f"error: trace names unknown scenario {name!r}", file=sys.stderr)
        return 2
    # Re-run through run_schedule directly (not replay_trace) so --flow
    # can trace the replay's message lifecycles.
    outcome = run_schedule(
        SCENARIOS[name], PrefixPolicy(trace["decisions"]),
        fault=trace.get("fault"), causal=flow,
    )
    print(f"replayed {trace['scenario']}"
          + (f" fault={trace['fault']}" if trace.get("fault") else "")
          + f": {outcome.status} ({outcome.events} events)")
    if outcome.detail:
        print(outcome.detail)
    print()
    print(render_segment(inspect_segment(outcome.view)))
    if flow and outcome.causal is not None:
        from .obs import flow_dot, flow_from_causal

        print()
        print(flow_dot(flow_from_causal(outcome.causal)))
    return 0 if outcome.status == trace["status"] else 1


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
