"""Typed error hierarchy for the MPF library.

The original MPF library (Malony, Reed & McGuire, ICPP 1987) reported
failures through integer return codes, as was idiomatic for 1987 C.  This
reproduction maps each failure class onto an exception type so callers can
discriminate programmatically.  Every exception derives from :class:`MPFError`
so ``except MPFError`` catches anything the library itself raises.

The distinction between *configuration* errors (pool exhaustion — the caller
under-provisioned ``init``) and *usage* errors (operating on circuits one is
not connected to, violating the receive-protocol restriction) mirrors the
paper's separation between ``init()``-time sizing and per-primitive semantics.
"""

from __future__ import annotations

__all__ = [
    "MPFError",
    "MPFConfigError",
    "MPFNameError",
    "UnknownLNVCError",
    "NotConnectedError",
    "DuplicateConnectionError",
    "ProtocolViolationError",
    "NoFreeLNVCError",
    "OutOfDescriptorsError",
    "OutOfMessageMemoryError",
    "BufferOverflowError",
    "RegionFormatError",
    "DeadlockSuspectedError",
]


class MPFError(Exception):
    """Base class for every error raised by the MPF library."""


class MPFConfigError(MPFError, ValueError):
    """An :class:`~repro.core.layout.MPFConfig` parameter is invalid.

    Raised at ``init`` time, before any shared state is touched.
    """


class MPFNameError(MPFError, ValueError):
    """An LNVC name is empty, too long, or not encodable.

    LNVC names are the rendezvous mechanism of the conversation model
    (paper §1): participants join a conversation by its mutually selected
    unique name, so malformed names are rejected eagerly.
    """


class UnknownLNVCError(MPFError, LookupError):
    """The given LNVC identifier does not name a live circuit.

    LNVCs exist only while at least one process is connected (paper §3.2);
    an identifier obtained before the circuit was deleted is stale.
    """


class NotConnectedError(MPFError, LookupError):
    """The calling process holds no matching connection on the LNVC.

    ``message_send`` requires an open send connection and
    ``message_receive``/``check_receive`` an open receive connection, per
    the paper's primitive descriptions (§2).
    """


class DuplicateConnectionError(MPFError, ValueError):
    """The process already holds an identical connection on this LNVC."""


class ProtocolViolationError(MPFError, ValueError):
    """A receiving process tried to use both FCFS and BROADCAST.

    Paper §1, footnote 3: "The only restriction is that a receiving process
    of an LNVC cannot use both FCFS and BROADCAST protocols."
    """


class NoFreeLNVCError(MPFError, RuntimeError):
    """The LNVC table is full (``max_lnvcs`` circuits already live)."""


class OutOfDescriptorsError(MPFError, RuntimeError):
    """The send- or receive-descriptor pool is exhausted."""


class OutOfMessageMemoryError(MPFError, RuntimeError):
    """The message header or message block free list is exhausted.

    The paper sizes shared memory from the ``init()`` parameters and
    observes (Figure 6 discussion) that large resident message populations
    stress memory; this error is the hard edge of that same budget.
    """


class BufferOverflowError(MPFError, ValueError):
    """A received message is longer than the caller's declared buffer.

    In the C interface the caller passes ``receive_buffer``/``buffer_length``
    and MPF fills in the transferred length; a Python caller that passes
    ``max_len`` gets this error instead of silent truncation.
    """


class RegionFormatError(MPFError, RuntimeError):
    """The shared region does not contain a validly formatted MPF segment."""


class DeadlockSuspectedError(MPFError, TimeoutError):
    """A real runtime's workers did not finish within ``join_timeout``.

    Unlike the simulated engine, real runtimes cannot *prove* a deadlock
    (a thread may just be slow), so expiry of the join timeout raises
    this suspicion instead of returning a truncated result.  ``threads``
    maps each still-alive worker name to a dict with its last observed
    effect (``"blocked_on"``) and the lock ids it holds (``"held"``),
    giving the wait-for picture the paper's §3.2 lost-message discussion
    warns about.  Subclasses :class:`TimeoutError` so existing
    ``except TimeoutError`` callers keep working.
    """

    def __init__(self, msg: str, threads: dict | None = None) -> None:
        super().__init__(msg)
        #: per-thread dump: ``{name: {"blocked_on": ..., "held": [...]}}``
        self.threads = threads or {}
