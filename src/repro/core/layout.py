"""Shared-segment sizing and layout.

Paper §2: "``init(maxLNVC's, max_processes)`` ... The parameters
``maxLNVC's`` and ``max_processes``, the maximum number of LNVC's and
processes, respectively, are used to estimate the amount of shared memory
necessary."

:class:`MPFConfig` captures those two parameters plus the tunables the
paper fixes implicitly (block size = 10 bytes, pool sizes), and
:class:`SegmentLayout` turns a config into concrete byte offsets for every
pool.  :func:`format_region` writes a fresh segment: header, empty LNVC
table, and the four free lists (send descriptors, receive descriptors,
message headers, message blocks) threaded through their pools.

Segment map (all offsets 4-byte aligned)::

    +-----------------------+  0
    | header                |  magic/version/config echo/free-list heads/stats
    +-----------------------+  lnvc_base
    | LNVC table            |  max_lnvcs x LNVC.size
    +-----------------------+  send_base
    | send descriptor pool  |  send_descriptors x SEND.size
    +-----------------------+  recv_base
    | recv descriptor pool  |  recv_descriptors x RECV.size
    +-----------------------+  msg_base
    | message header pool   |  max_messages x MSG.size
    +-----------------------+  blk_base
    | message block pool    |  n_blocks x (4 + block_size)
    +-----------------------+  ring_ctrl_base   (cache-line aligned)
    | ring control pool     |  n_rings x RING.size (one line each)
    +-----------------------+  ring_cur_base
    | ring cursor pool      |  n_rings x RING_READERS x RCUR.size
    +-----------------------+  ring_data_base
    | ring slot pool        |  n_rings x ring_slots x ring_stride
    +-----------------------+  total_size

The three ring pools exist only when the config selects the ring
transport for at least one circuit (``n_rings`` is zero otherwise), so a
pure free-list segment is laid out byte-for-byte as before.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .errors import MPFConfigError, RegionFormatError
from .freelist import init_freelist
from .protocol import FIRST_LNVC_LOCK, MAGIC, VERSION
from .region import SharedRegion
from .structs import (
    LNVC,
    MSG,
    RECV,
    RCUR,
    RING,
    RING_READERS,
    SEND,
    block_stride,
    ring_slot_stride,
)

__all__ = ["MPFConfig", "HDR", "SegmentLayout", "format_region", "check_region"]


def _align(n: int, a: int = 8) -> int:
    return (n + a - 1) & ~(a - 1)


@dataclass(frozen=True)
class MPFConfig:
    """Sizing parameters for one MPF segment.

    ``max_lnvcs`` and ``max_processes`` are the two arguments of the
    paper's ``init()``; everything else defaults to values derived from
    them (or to the paper's constants, e.g. 10-byte blocks) but can be
    pinned explicitly for experiments.
    """

    #: Maximum simultaneously live circuits (size of the LNVC table).
    max_lnvcs: int = 32
    #: Maximum participating processes.  Used to derive descriptor pools.
    max_processes: int = 32
    #: Data bytes per message block.  The paper used 10 in all experiments.
    block_size: int = 10
    #: Send-descriptor pool size; 0 means "derive from the two maxima".
    send_descriptors: int = 0
    #: Receive-descriptor pool size; 0 means "derive from the two maxima".
    recv_descriptors: int = 0
    #: Message-header pool size (maximum queued messages segment-wide).
    max_messages: int = 1024
    #: Bytes reserved for the message block pool.
    message_pool_bytes: int = 1 << 20
    #: Extra lock/wait-channel slots for the §5 extension facilities
    #: (synchronous channels).  Extension slot ``k`` uses lock
    #: ``FIRST_LNVC_LOCK + max_lnvcs + k`` and wait channel
    #: ``max_lnvcs + k`` — the same lock↔channel pairing as circuits.
    ext_slots: int = 0
    #: Raw bytes reserved after the block pool for extension facilities.
    #: Zero-initialized, and every extension defines all-zeroes as its
    #: valid empty state, so no post-format setup hook is needed.
    ext_bytes: int = 0
    #: Default transport for new circuits: ``"freelist"`` (the paper's
    #: locked FIFO over the global block pool) or ``"ring"`` (the
    #: mpsoc-style lock-free ring; see docs/transport.md).
    transport: str = "freelist"
    #: Per-circuit overrides of :attr:`transport`, as ``(name, kind)``
    #: pairs matched against the LNVC name at first open.
    transports: tuple = ()
    #: Ring pool size; 0 derives it (``max_lnvcs`` when any circuit may
    #: select the ring transport, else no pool at all).
    ring_lnvcs: int = 0
    #: Slots per ring.  A full ring blocks senders until a slot retires,
    #: the analogue of the free-list transport's empty block pool.
    ring_slots: int = 64
    #: Payload capacity of one ring slot.  Ring messages are bounded —
    #: the price of fixed-size slots — where free-list messages are only
    #: bounded by the block pool.
    ring_slot_bytes: int = 1024
    #: Shards of the message block pool (the serving optimisation; see
    #: docs/serving.md).  ``1`` — the default — is the paper's single
    #: global free list under ``ALLOC_LOCK``, byte-identical to every
    #: archived figure.  ``S > 1`` splits the block pool into ``S``
    #: contiguous shards, each with its own head word and its own lock;
    #: an allocator prefers shard ``pid % S`` and steals from the other
    #: shards when its own runs dry.  Blocks always free back to their
    #: *home* shard, so conservation is per-shard-summable.
    freelist_shards: int = 1

    def __post_init__(self) -> None:
        if self.max_lnvcs < 1:
            raise MPFConfigError("max_lnvcs must be >= 1")
        if self.max_processes < 1:
            raise MPFConfigError("max_processes must be >= 1")
        if self.block_size < 1:
            raise MPFConfigError("block_size must be >= 1")
        if self.max_messages < 1:
            raise MPFConfigError("max_messages must be >= 1")
        if self.send_descriptors < 0 or self.recv_descriptors < 0:
            raise MPFConfigError("descriptor pool sizes must be >= 0")
        if self.message_pool_bytes < block_stride(self.block_size):
            raise MPFConfigError("message_pool_bytes smaller than one block")
        if self.ext_slots < 0 or self.ext_bytes < 0:
            raise MPFConfigError("extension reservations must be >= 0")
        if self.transport not in ("freelist", "ring"):
            raise MPFConfigError(f"unknown transport {self.transport!r}")
        for pair in self.transports:
            if len(pair) != 2 or pair[1] not in ("freelist", "ring"):
                raise MPFConfigError(f"bad transport override {pair!r}")
        if self.ring_lnvcs < 0:
            raise MPFConfigError("ring_lnvcs must be >= 0")
        if self.ring_slots < 2:
            raise MPFConfigError("ring_slots must be >= 2")
        if self.ring_slot_bytes < 1:
            raise MPFConfigError("ring_slot_bytes must be >= 1")
        if self.freelist_shards < 1:
            raise MPFConfigError("freelist_shards must be >= 1")
        if self.freelist_shards > self.n_blocks:
            raise MPFConfigError(
                "freelist_shards exceeds the number of message blocks")

    @property
    def n_send(self) -> int:
        """Effective send-descriptor pool size."""
        if self.send_descriptors:
            return self.send_descriptors
        return min(self.max_processes * self.max_lnvcs, 65536)

    @property
    def n_recv(self) -> int:
        """Effective receive-descriptor pool size."""
        if self.recv_descriptors:
            return self.recv_descriptors
        return min(self.max_processes * self.max_lnvcs, 65536)

    @property
    def n_blocks(self) -> int:
        """Message blocks carved out of ``message_pool_bytes``."""
        return self.message_pool_bytes // block_stride(self.block_size)

    @property
    def n_rings(self) -> int:
        """Effective ring pool size: 0 unless a circuit may use rings."""
        if self.ring_lnvcs:
            return self.ring_lnvcs
        if self.transport == "ring" or any(k == "ring" for _, k in self.transports):
            return self.max_lnvcs
        return 0

    def transport_for(self, name: str) -> str:
        """Transport kind a circuit called ``name`` will use."""
        for pat, kind in self.transports:
            if pat == name:
                return kind
        return self.transport

    @property
    def n_locks(self) -> int:
        """Locks the runtime must provide: global, allocator, one per
        LNVC, one per extension slot, and — when the block pool is
        sharded — one per shard (innermost in the locking order)."""
        return (FIRST_LNVC_LOCK + self.max_lnvcs + self.ext_slots
                + (self.freelist_shards if self.freelist_shards > 1 else 0))

    def shard_lock(self, shard: int) -> int:
        """Lock id guarding block-pool shard ``shard``.

        Shard locks sit after the extension locks and are the innermost
        tier of the locking order (``GLOBAL`` → circuit → ``ALLOC`` →
        shard); at most one shard lock is ever held at a time.
        """
        return FIRST_LNVC_LOCK + self.max_lnvcs + self.ext_slots + shard

    @property
    def n_channels(self) -> int:
        """Wait channels: one per LNVC slot plus one per extension slot."""
        return self.max_lnvcs + self.ext_slots


class _Header:
    """Field offsets of the segment header.

    u32 fields first, then 8-byte-aligned u64 statistics counters.  The
    statistics exist so benchmarks and tests can observe allocator and
    traffic behaviour without instrumenting call sites.
    """

    _U32_FIELDS = (
        "magic",
        "version",
        "max_lnvcs",
        "max_processes",
        "block_size",
        "n_send",
        "n_recv",
        "n_msgs",
        "n_blocks",
        "free_send",   # free-list heads
        "free_recv",
        "free_msg",
        "free_blk",
        "live_msgs",   # message headers currently allocated
        "live_blocks", # message blocks currently allocated
        "live_bytes",  # payload bytes currently queued (VM model input)
        "live_lnvcs",  # circuits currently in use
        "n_rings",     # ring transport pool (0 on pure free-list segments)
        "free_ring",   # ring free-list head
        "live_rings",  # rings currently bound to circuits
    )
    _U64_FIELDS = (
        "total_sends",
        "total_receives",
        "total_bytes_sent",
        "total_bytes_received",
        "hwm_live_bytes",  # high-water mark of live_bytes
        "hwm_live_msgs",
    )

    def __init__(self) -> None:
        self.u32 = {f: 4 * i for i, f in enumerate(self._U32_FIELDS)}
        base = _align(4 * len(self._U32_FIELDS))
        self.u64 = {f: base + 8 * i for i, f in enumerate(self._U64_FIELDS)}
        self.size = base + 8 * len(self._U64_FIELDS)

    def get(self, region: SharedRegion, f: str) -> int:
        if f in self.u32:
            return region.u32(self.u32[f])
        return region.u64(self.u64[f])

    def set(self, region: SharedRegion, f: str, v: int) -> None:
        if f in self.u32:
            region.set_u32(self.u32[f], v)
        else:
            region.set_u64(self.u64[f], v)

    def add(self, region: SharedRegion, f: str, d: int) -> int:
        if f in self.u32:
            return region.add_u32(self.u32[f], d)
        return region.add_u64(self.u64[f], d)


#: Singleton header descriptor.
HDR = _Header()


@dataclass(frozen=True)
class SegmentLayout:
    """Concrete byte offsets for every pool of one segment."""

    cfg: MPFConfig
    lnvc_base: int = field(init=False)
    send_base: int = field(init=False)
    recv_base: int = field(init=False)
    msg_base: int = field(init=False)
    blk_base: int = field(init=False)
    blk_stride: int = field(init=False)
    ring_ctrl_base: int = field(init=False)
    ring_cur_base: int = field(init=False)
    ring_data_base: int = field(init=False)
    ring_stride: int = field(init=False)
    shard_base: int = field(init=False)
    ext_base: int = field(init=False)
    total_size: int = field(init=False)

    def __post_init__(self) -> None:
        cfg = self.cfg
        off = _align(HDR.size)
        object.__setattr__(self, "lnvc_base", off)
        off = _align(off + cfg.max_lnvcs * LNVC.size)
        object.__setattr__(self, "send_base", off)
        off = _align(off + cfg.n_send * SEND.size)
        object.__setattr__(self, "recv_base", off)
        off = _align(off + cfg.n_recv * RECV.size)
        object.__setattr__(self, "msg_base", off)
        off = _align(off + cfg.max_messages * MSG.size)
        object.__setattr__(self, "blk_base", off)
        object.__setattr__(self, "blk_stride", block_stride(cfg.block_size))
        off = _align(off + cfg.n_blocks * self.blk_stride)
        # Ring pools: cache-line aligned, zero-sized on pure free-list
        # segments so those keep their historical layout byte-for-byte.
        object.__setattr__(self, "ring_stride", ring_slot_stride(cfg.ring_slot_bytes))
        off = _align(off, 64) if cfg.n_rings else off
        object.__setattr__(self, "ring_ctrl_base", off)
        off += cfg.n_rings * RING.size
        object.__setattr__(self, "ring_cur_base", off)
        off += cfg.n_rings * RING_READERS * RCUR.size
        object.__setattr__(self, "ring_data_base", off)
        off = _align(off + cfg.n_rings * cfg.ring_slots * self.ring_stride)
        # Shard-head pool: one u32 head per extra block-pool shard.
        # Shard 0 reuses the header's ``free_blk`` word, and the pool is
        # zero-sized on unsharded segments, so those keep their
        # historical layout byte-for-byte.
        object.__setattr__(self, "shard_base", off)
        if cfg.freelist_shards > 1:
            off = _align(off + 4 * (cfg.freelist_shards - 1))
        object.__setattr__(self, "ext_base", off)
        off = _align(off + cfg.ext_bytes)
        object.__setattr__(self, "total_size", off)

    def lnvc_off(self, slot: int) -> int:
        """Byte offset of LNVC table slot ``slot``."""
        return self.lnvc_base + slot * LNVC.size

    def lnvc_slot(self, off: int) -> int:
        """Inverse of :meth:`lnvc_off`."""
        return (off - self.lnvc_base) // LNVC.size

    def ring_index(self, ctrl_off: int) -> int:
        """Pool index of the ring control block at ``ctrl_off``."""
        return (ctrl_off - self.ring_ctrl_base) // RING.size

    def ring_cur_off(self, ring_idx: int, reader_bit: int) -> int:
        """Byte offset of BROADCAST reader ``reader_bit``'s cursor."""
        return self.ring_cur_base + (ring_idx * RING_READERS + reader_bit) * RCUR.size

    def ring_slot_off(self, ring_idx: int, slot: int) -> int:
        """Byte offset of slot ``slot`` of ring ``ring_idx``."""
        return (
            self.ring_data_base
            + ring_idx * self.cfg.ring_slots * self.ring_stride
            + slot * self.ring_stride
        )

    @property
    def shard_heads(self) -> tuple:
        """Head-word offsets of every block-pool shard.

        Shard 0 is the header's ``free_blk`` word (so unsharded segments
        are unchanged); shards 1..S-1 live in the shard-head pool.
        """
        s = self.cfg.freelist_shards
        if s <= 1:
            return (HDR.u32["free_blk"],)
        return (HDR.u32["free_blk"],) + tuple(
            self.shard_base + 4 * k for k in range(s - 1)
        )

    def shard_counts(self) -> tuple:
        """Blocks owned by each shard (contiguous ranges; remainder to
        the low shards)."""
        cfg = self.cfg
        per, extra = divmod(cfg.n_blocks, cfg.freelist_shards)
        return tuple(
            per + (1 if k < extra else 0) for k in range(cfg.freelist_shards)
        )

    def blk_shard(self, off: int) -> int:
        """Home shard of the block at byte offset ``off``."""
        cfg = self.cfg
        s = cfg.freelist_shards
        if s <= 1:
            return 0
        i = (off - self.blk_base) // self.blk_stride
        per, extra = divmod(cfg.n_blocks, s)
        hi = extra * (per + 1)
        if i < hi:
            return i // (per + 1)
        return extra + (i - hi) // per


def format_region(region: SharedRegion, cfg: MPFConfig) -> SegmentLayout:
    """Initialize ``region`` as a fresh MPF segment for ``cfg``.

    This is the architecture-independent half of the paper's ``init()``;
    runtimes perform the architecture-specific half (allocating the shared
    memory itself and creating locks) before calling this.
    """
    layout = SegmentLayout(cfg)
    if region.size < layout.total_size:
        raise MPFConfigError(
            f"region of {region.size} bytes too small; "
            f"config requires {layout.total_size}"
        )
    region.fill(0, layout.total_size, 0)
    HDR.set(region, "magic", MAGIC)
    HDR.set(region, "version", VERSION)
    HDR.set(region, "max_lnvcs", cfg.max_lnvcs)
    HDR.set(region, "max_processes", cfg.max_processes)
    HDR.set(region, "block_size", cfg.block_size)
    HDR.set(region, "n_send", cfg.n_send)
    HDR.set(region, "n_recv", cfg.n_recv)
    HDR.set(region, "n_msgs", cfg.max_messages)
    HDR.set(region, "n_blocks", cfg.n_blocks)
    init_freelist(region, HDR.u32["free_send"], layout.send_base, SEND.size, cfg.n_send)
    init_freelist(region, HDR.u32["free_recv"], layout.recv_base, RECV.size, cfg.n_recv)
    init_freelist(region, HDR.u32["free_msg"], layout.msg_base, MSG.size, cfg.max_messages)
    if cfg.freelist_shards > 1:
        base = layout.blk_base
        for head, count in zip(layout.shard_heads, layout.shard_counts()):
            init_freelist(region, head, base, layout.blk_stride, count)
            base += count * layout.blk_stride
    else:
        init_freelist(region, HDR.u32["free_blk"], layout.blk_base, layout.blk_stride, cfg.n_blocks)
    HDR.set(region, "n_rings", cfg.n_rings)
    init_freelist(
        region, HDR.u32["free_ring"], layout.ring_ctrl_base, RING.size, cfg.n_rings
    )
    return layout


def check_region(region: SharedRegion, cfg: MPFConfig) -> SegmentLayout:
    """Validate that ``region`` holds a segment formatted for ``cfg``.

    Used by runtimes that attach to an existing segment (the process
    runtime's children) instead of formatting a fresh one.
    """
    if region.size < HDR.size:
        raise RegionFormatError("region smaller than the MPF header")
    if HDR.get(region, "magic") != MAGIC:
        raise RegionFormatError("bad magic: region is not an MPF segment")
    if HDR.get(region, "version") != VERSION:
        raise RegionFormatError("MPF segment version mismatch")
    for f, want in (
        ("max_lnvcs", cfg.max_lnvcs),
        ("max_processes", cfg.max_processes),
        ("block_size", cfg.block_size),
        ("n_msgs", cfg.max_messages),
        ("n_blocks", cfg.n_blocks),
        ("n_rings", cfg.n_rings),
    ):
        if HDR.get(region, f) != want:
            raise RegionFormatError(f"segment {f} does not match config")
    return SegmentLayout(cfg)
