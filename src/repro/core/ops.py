"""The eight MPF primitives, written once as effect-yielding generators.

This module is the reproduction of the paper's contribution: the LNVC
(logical, named virtual circuit) message-passing primitives of §2,
implemented over the shared-segment data structures of §3.1 with the
close/retirement semantics of §3.2.

Every primitive is a generator over :mod:`repro.core.effects` objects.  A
runtime drives the generator, interpreting each effect (lock, unlock,
charge simulated time, sleep, wake); the generator's return value is the
primitive's result.  Data-structure mutation happens inline — the shared
region is visible to all runtimes identically — so the primitives contain
the *entire* algorithm and the runtimes contain only "shared memory
allocation and synchronization", the paper's definition of the system
dependent part.

Locking discipline (deadlock-free by global order):

1. ``GLOBAL_LOCK`` — only for open/close (name-table structure),
2. the per-circuit lock ``FIRST_LNVC_LOCK + slot``,
3. ``ALLOC_LOCK`` — free lists, always innermost.

Payload copies (block fill on send, block drain on receive) happen
*outside* the circuit lock.  This is the property that lets BROADCAST
receivers copy the same message concurrently and produces Figure 5's
near-linear scaling ("by allowing the receiver processes to copy messages
concurrently, higher throughputs can be achieved").
"""

from __future__ import annotations

import os
from typing import Generator, Iterable

from .costmodel import DEFAULT_COSTS, Costs
from .effects import (
    D_BAIL,
    D_RESULT_SPLICE,
    D_SPLICE,
    S_CALL,
    S_CHARGE,
    S_MANY,
    Acquire,
    Charge,
    ChargeMany,
    Effect,
    FusedSection,
    Release,
    WaitOn,
    Wake,
)
from .errors import (
    BufferOverflowError,
    DuplicateConnectionError,
    MPFNameError,
    NoFreeLNVCError,
    NotConnectedError,
    OutOfDescriptorsError,
    OutOfMessageMemoryError,
    ProtocolViolationError,
    UnknownLNVCError,
)
from .freelist import fl_alloc, fl_free
from .layout import HDR, MPFConfig, SegmentLayout
from .protocol import (
    ALLOC_LOCK,
    FIRST_LNVC_LOCK,
    GLOBAL_LOCK,
    NAME_MAX,
    NIL,
    MsgFlags,
    Protocol,
)
from .region import SharedRegion
from .structs import BLK_NEXT, LNVC, MSG, RECV, SEND
from .transport import (
    ring_attach,
    ring_check,
    ring_receive,
    ring_register_reader,
    ring_release,
    ring_send,
    ring_unregister_reader,
)
from .work import Work

__all__ = [
    "MPFView",
    "open_send",
    "open_receive",
    "close_send",
    "close_receive",
    "message_send",
    "message_receive",
    "check_receive",
    "encode_lnvc_id",
    "decode_lnvc_id",
    "SLOT_BITS",
    "fusion_enabled",
    "set_fusion",
]

# Section fusion default for the *simulated* runtimes.  The primitives
# below yield FusedSection fast paths only when ``view.fuse`` is set;
# SimRuntime and the model checker set it from this flag, so the real
# runtimes (threads/procs/posix), which interpret classic effects, are
# never exposed.  ``MPF_FUSION=off`` is the debugging escape hatch: it
# forces the unfused effect-per-event paths, which are byte-identical.
_fusion_default = os.environ.get("MPF_FUSION", "").lower() not in (
    "0", "off", "false", "no",
)


def fusion_enabled() -> bool:
    """Whether sim runtimes fuse protocol sections (MPF_FUSION env knob)."""
    return _fusion_default


def set_fusion(on: bool) -> None:
    """Override the fusion default (tests and A/B comparisons)."""
    global _fusion_default
    _fusion_default = bool(on)

OpGen = Generator[Effect, None, object]

#: Bits of an LNVC identifier that address the table slot; the remaining
#: high bits carry the slot's generation so identifiers from a deleted
#: circuit are detected instead of silently aliasing a new one.
SLOT_BITS = 10
_SLOT_MASK = (1 << SLOT_BITS) - 1

# Field offsets resolved once at import time.  The hot primitives
# (message_send / message_receive / check_receive and their helpers) run
# millions of times per figure sweep; going through ``Record.get``'s dict
# lookup and bound-method call was about a third of interpreter time in
# profiles.  The hot paths below read fields as ``r.u32(base + _L_X)`` —
# the same pointer-plus-field-offset arithmetic, with the offset folded
# to a constant exactly as a C compiler folds ``lnvc->fifo_head``.  Cold
# paths (open/close) keep the self-describing Record accessors.
_L_IN_USE = LNVC.offsets["in_use"]
_L_GEN = LNVC.offsets["gen"]
_L_NMSGS = LNVC.offsets["nmsgs"]
_L_FIFO_HEAD = LNVC.offsets["fifo_head"]
_L_FIFO_TAIL = LNVC.offsets["fifo_tail"]
_L_FCFS_HEAD = LNVC.offsets["fcfs_head"]
_L_SEND_LIST = LNVC.offsets["send_list"]
_L_RECV_LIST = LNVC.offsets["recv_list"]
_L_N_FCFS = LNVC.offsets["n_fcfs"]
_L_N_BCAST = LNVC.offsets["n_bcast"]
_L_SEQ = LNVC.offsets["seq"]
_L_HWM_NMSGS = LNVC.offsets["hwm_nmsgs"]
_L_CONN_EPOCH = LNVC.offsets["conn_epoch"]
_L_TRANSPORT = LNVC.offsets["transport"]

_S_PID = SEND.offsets["pid"]
_S_NEXT = SEND.offsets["next"]

_R_PID = RECV.offsets["pid"]
_R_PROTO = RECV.offsets["proto"]
_R_HEAD = RECV.offsets["head"]
_R_NEXT = RECV.offsets["next"]
_R_NREADS = RECV.offsets["nreads"]

_M_LENGTH = MSG.offsets["length"]
_M_NBLOCKS = MSG.offsets["nblocks"]
_M_FIRST_BLK = MSG.offsets["first_blk"]
_M_NEXT_MSG = MSG.offsets["next_msg"]
_M_BCAST_PENDING = MSG.offsets["bcast_pending"]
_M_BUSY = MSG.offsets["busy"]
_M_FLAGS = MSG.offsets["flags"]
_M_SEQNO = MSG.offsets["seqno"]
_M_SENDER = MSG.offsets["sender"]

_H_FREE_MSG = HDR.u32["free_msg"]
_H_FREE_BLK = HDR.u32["free_blk"]
_H_LIVE_MSGS = HDR.u32["live_msgs"]
_H_LIVE_BLOCKS = HDR.u32["live_blocks"]
_H_LIVE_BYTES = HDR.u32["live_bytes"]
_H_TOTAL_SENDS = HDR.u64["total_sends"]
_H_TOTAL_RECEIVES = HDR.u64["total_receives"]
_H_TOTAL_BYTES_SENT = HDR.u64["total_bytes_sent"]
_H_TOTAL_BYTES_RECEIVED = HDR.u64["total_bytes_received"]
_H_HWM_LIVE_BYTES = HDR.u64["hwm_live_bytes"]
_H_HWM_LIVE_MSGS = HDR.u64["hwm_live_msgs"]

# Enum values as plain ints: constructing MsgFlags/Protocol instances per
# field read is pure overhead when only bit tests are needed.
_P_FCFS = int(Protocol.FCFS)
_F_RETIRED = int(MsgFlags.RETIRED)
_F_FCFS_TAKEN = int(MsgFlags.FCFS_TAKEN)
_F_FCFS_EXPECTED = int(MsgFlags.FCFS_EXPECTED)
_F_HAD_RECEIVERS = int(MsgFlags.HAD_RECEIVERS)


def encode_lnvc_id(slot: int, gen: int) -> int:
    """Pack a table slot and its generation into a public identifier."""
    return (gen << SLOT_BITS) | slot


def decode_lnvc_id(lnvc_id: int) -> tuple[int, int]:
    """Unpack a public identifier into ``(slot, generation)``."""
    return lnvc_id & _SLOT_MASK, lnvc_id >> SLOT_BITS


class MPFView:
    """A formatted segment plus its layout and cost model.

    One view is shared by every process of a program (the paper's mapped
    region); it is immutable and carries no per-process state.

    The view also pre-builds the effect objects the hot primitives yield
    on every call: per-circuit ``Acquire``/``Release``/``Wake``/``WaitOn``
    and the fixed-cost ``Charge`` effects whose work never varies.
    Effects are frozen dataclasses, so one instance per lock/channel can
    be yielded forever instead of allocating a fresh object per call.
    """

    __slots__ = (
        "region",
        "layout",
        "cfg",
        "costs",
        "_acq",
        "_rel",
        "_wake",
        "_waiton",
        "_alloc_acq",
        "_alloc_rel",
        "_blk_heads",
        "_shard_acq",
        "_shard_rel",
        "_send_fixed_work",
        "_send_fixed",
        "_recv_fixed",
        "_check_fixed_work",
        "_check_fixed",
        "_recv_retire",
        "_recv_wakeup",
        "_recv_find",
        "_check_walk",
        "_ring_send_fixed_work",
        "_ring_send_fixed",
        "_ring_recv_fixed",
        "_ring_claim",
        "_ring_cursor",
        "_ring_commit",
        "_ring_consume",
        "_send_cache",
        "_recv_cache",
        "causal",
        "timeline",
        "fuse",
        "_fs_acq",
        "_fs_rel",
        "_fs_wake",
        "_fs_alloc_acq",
        "_fs_alloc_rel",
        "_fs_send_fixed",
        "_fs_recv_fixed",
        "_fs_check_fixed",
        "_fs_recv_retire",
        "_fs_recv_find",
        "_fs_check_walk",
        "_fs_ring_send_fixed",
        "_fs_ring_recv_fixed",
        "_fs_ring_claim",
        "_fs_ring_cursor",
        "_fs_ring_commit",
        "_fs_ring_consume",
        "_fs_check_cache",
        "_fs_send_sec",
        "_fs_recv_sec",
    )

    def __init__(
        self,
        region: SharedRegion,
        layout: SegmentLayout,
        costs: Costs = DEFAULT_COSTS,
    ) -> None:
        self.region = region
        self.layout = layout
        self.cfg: MPFConfig = layout.cfg
        self.costs = costs
        n = self.cfg.max_lnvcs
        self._acq = tuple(Acquire(FIRST_LNVC_LOCK + s) for s in range(n))
        self._rel = tuple(Release(FIRST_LNVC_LOCK + s) for s in range(n))
        self._wake = tuple(Wake(s) for s in range(n))
        self._waiton = tuple(WaitOn(s, FIRST_LNVC_LOCK + s) for s in range(n))
        self._alloc_acq = Acquire(ALLOC_LOCK)
        self._alloc_rel = Release(ALLOC_LOCK)
        # Sharded block pool (serving optimisation; off by default).
        # ``_blk_heads is None`` selects the paper's single-list code
        # paths untouched; a tuple of per-shard head offsets selects the
        # sharded allocator with per-shard locks (innermost tier of the
        # locking order, at most one held at a time).
        shards = self.cfg.freelist_shards
        if shards > 1:
            self._blk_heads = layout.shard_heads
            self._shard_acq = tuple(
                Acquire(self.cfg.shard_lock(s)) for s in range(shards)
            )
            self._shard_rel = tuple(
                Release(self.cfg.shard_lock(s)) for s in range(shards)
            )
        else:
            self._blk_heads = None
            self._shard_acq = ()
            self._shard_rel = ()
        self._send_fixed_work = Work(instrs=costs.send_fixed, label="send-fixed")
        self._send_fixed = Charge(self._send_fixed_work)
        self._recv_fixed = Charge(Work(instrs=costs.recv_fixed, label="recv-fixed"))
        self._check_fixed_work = Work(instrs=costs.check_fixed, label="check-fixed")
        self._check_fixed = Charge(self._check_fixed_work)
        self._recv_retire = Charge(Work(instrs=costs.msg_retire, label="recv-retire"))
        self._recv_wakeup = Charge(
            Work(instrs=costs.waiter_wakeup, label="recv-wakeup")
        )
        # Small-step variable charges: descriptor lists are almost always
        # one or two entries deep, so cache the first few step counts.
        self._recv_find = tuple(
            Charge(Work(instrs=k * costs.list_step, label="recv-find"))
            for k in range(8)
        )
        self._check_walk = tuple(
            Charge(Work(instrs=k * costs.list_step, label="check-walk"))
            for k in range(8)
        )
        # Ring transport fixed charges (see repro.core.transport).  The
        # claim/commit/consume charges each include one cacheline_xfer:
        # the shared control or header line is hot in another CPU's
        # cache whenever the circuit is actually contended.
        self._ring_send_fixed_work = Work(
            instrs=costs.ring_send_fixed, label="ring-send-fixed"
        )
        self._ring_send_fixed = Charge(self._ring_send_fixed_work)
        self._ring_recv_fixed = Charge(
            Work(instrs=costs.ring_recv_fixed, label="ring-recv-fixed")
        )
        self._ring_claim = Charge(
            Work(instrs=costs.ring_claim + costs.cacheline_xfer, label="ring-claim")
        )
        self._ring_cursor = Charge(
            Work(instrs=costs.ring_cursor + costs.cacheline_xfer,
                 label="ring-cursor")
        )
        self._ring_commit = Charge(
            Work(instrs=costs.ring_publish + costs.cacheline_xfer, label="ring-commit")
        )
        self._ring_consume = Charge(
            Work(instrs=costs.ring_consume + costs.cacheline_xfer, label="ring-consume")
        )
        # Connection-descriptor lookup caches: (slot, pid) -> (desc_off,
        # steps, gen, conn_epoch).  The circuit's ``conn_epoch`` field is
        # bumped (under the circuit lock) on every send/recv list
        # mutation, and ``gen`` changes when the slot is recycled, so an
        # entry matching both is exactly what walking the list would find
        # — including the walk length that feeds the cost model.  The
        # region fields are shared, so the cache stays correct even when
        # other views (processes) reshape the lists.
        self._send_cache: dict = {}
        self._recv_cache: dict = {}
        # Fused-section caches, (slot, pid) -> cache entry (see
        # _make_check_section / _make_send_section / _make_recv_section).
        # The hot primitives build their section tuples and closures once
        # per connection instead of per call — per-call state travels
        # through a small mutable context list the cached closures share
        # with the generator.  A generation mismatch (slot recycled)
        # rebuilds the entry.
        self._fs_check_cache: dict = {}
        self._fs_send_sec: dict = {}
        self._fs_recv_sec: dict = {}
        #: Optional :class:`repro.obs.causal.CausalTracer` attached by a
        #: runtime.  When set, the hot primitives call its hooks inline —
        #: plain attribute-gated Python calls, never new effects, so the
        #: simulated schedule is untouched by observation.
        self.causal = None
        #: Optional :class:`repro.obs.timeline.Timeline` attached by a
        #: runtime.  Same contract as ``causal``: the hot paths gate on
        #: ``is not None`` and feed windowed counters/gauges with plain
        #: calls — never a new effect — so telemetry cannot perturb a
        #: simulated schedule.
        self.timeline = None
        #: Section fusion opt-in (sim engine only; see
        #: :class:`~repro.core.effects.FusedSection`).  Off by default so
        #: real runtimes never see a fused effect; SimRuntime and the
        #: model checker set it from :func:`fusion_enabled`.
        self.fuse = False
        # Fused-step twins of the prebuilt effects above: ``(opcode,
        # arg)`` pairs sharing the same Work instances, assembled once so
        # the hot paths build a FusedSection from cached parts.
        self._fs_acq = tuple((2, FIRST_LNVC_LOCK + s) for s in range(n))
        self._fs_rel = tuple((3, FIRST_LNVC_LOCK + s) for s in range(n))
        self._fs_wake = tuple((4, s) for s in range(n))
        self._fs_alloc_acq = (2, ALLOC_LOCK)
        self._fs_alloc_rel = (3, ALLOC_LOCK)
        self._fs_send_fixed = (S_CHARGE, self._send_fixed_work)
        self._fs_recv_fixed = (S_CHARGE, self._recv_fixed.work)
        self._fs_check_fixed = (S_CHARGE, self._check_fixed_work)
        self._fs_recv_retire = (S_CHARGE, self._recv_retire.work)
        self._fs_recv_find = tuple((S_CHARGE, ch.work) for ch in self._recv_find)
        self._fs_check_walk = tuple((S_CHARGE, ch.work) for ch in self._check_walk)
        self._fs_ring_send_fixed = (S_CHARGE, self._ring_send_fixed_work)
        self._fs_ring_recv_fixed = (S_CHARGE, self._ring_recv_fixed.work)
        self._fs_ring_claim = (S_CHARGE, self._ring_claim.work)
        self._fs_ring_cursor = (S_CHARGE, self._ring_cursor.work)
        self._fs_ring_commit = (S_CHARGE, self._ring_commit.work)
        self._fs_ring_consume = (S_CHARGE, self._ring_consume.work)

    # -- names -------------------------------------------------------------

    @staticmethod
    def encode_name(name: str) -> bytes:
        """Validate and UTF-8 encode an LNVC name."""
        if not isinstance(name, str) or not name:
            raise MPFNameError("LNVC name must be a non-empty string")
        data = name.encode("utf-8")
        if len(data) > NAME_MAX:
            raise MPFNameError(f"LNVC name exceeds {NAME_MAX} bytes")
        return data

    def read_name(self, slot: int) -> bytes:
        base = self.layout.lnvc_off(slot)
        n = LNVC.get(self.region, base, "name_len")
        return self.region.read(base + LNVC.tail_off, n)

    def write_name(self, slot: int, data: bytes) -> None:
        base = self.layout.lnvc_off(slot)
        LNVC.set(self.region, base, "name_len", len(data))
        self.region.write(base + LNVC.tail_off, data)

    # -- addressing ---------------------------------------------------------

    def lnvc_lock(self, slot: int) -> int:
        """Lock index guarding LNVC table slot ``slot``."""
        return FIRST_LNVC_LOCK + slot

    def resolve(self, lnvc_id: int) -> int:
        """Map a public identifier to a live slot or raise.

        Caller must hold either the global lock or the slot's lock.
        """
        slot = lnvc_id & _SLOT_MASK
        if slot >= self.cfg.max_lnvcs:
            raise UnknownLNVCError(f"lnvc id {lnvc_id}: no such slot")
        base = self.layout.lnvc_off(slot)
        u32 = self.region.u32
        if not u32(base + _L_IN_USE):
            raise UnknownLNVCError(f"lnvc id {lnvc_id}: circuit deleted")
        if u32(base + _L_GEN) != lnvc_id >> SLOT_BITS:
            raise UnknownLNVCError(f"lnvc id {lnvc_id}: stale generation")
        return slot

    # -- table search (caller holds GLOBAL_LOCK) ----------------------------

    def find_by_name(self, data: bytes) -> tuple[int | None, int]:
        """Scan the table for a live circuit named ``data``.

        Returns ``(slot_or_None, slots_examined)``; the examination count
        feeds the cost model.
        """
        r, lay = self.region, self.layout
        steps = 0
        for slot in range(self.cfg.max_lnvcs):
            steps += 1
            base = lay.lnvc_off(slot)
            if LNVC.get(r, base, "in_use") and self.read_name(slot) == data:
                return slot, steps
        return None, steps

    def find_free_slot(self) -> tuple[int | None, int]:
        """Scan for an unused table slot; returns ``(slot_or_None, steps)``."""
        r, lay = self.region, self.layout
        steps = 0
        for slot in range(self.cfg.max_lnvcs):
            steps += 1
            if not LNVC.get(r, lay.lnvc_off(slot), "in_use"):
                return slot, steps
        return None, steps


# ---------------------------------------------------------------------------
# internal helpers (all expect the documented locks to be held)
# ---------------------------------------------------------------------------


#: Fused-section bail sentinels.  A section closure bails with an
#: exception instance for error paths (the generator releases the held
#: locks and raises) or with one of these to fall back to a classic
#: unfused continuation that fusion cannot express (wait loops).
_OK = object()
_EMPTY = object()


def _release_and_raise(locks: Iterable[int], exc: Exception) -> OpGen:
    """Release ``locks`` (outermost last) and raise ``exc``."""
    for lock in locks:
        yield Release(lock)
    raise exc


def _find_send(view: MPFView, base: int, pid: int) -> tuple[int, int, int]:
    """Locate ``pid``'s send descriptor: ``(desc_off|NIL, prev_off|NIL, steps)``."""
    u32 = view.region.u32
    prev, off, steps = NIL, u32(base + _L_SEND_LIST), 0
    while off != NIL:
        steps += 1
        if u32(off + _S_PID) == pid:
            return off, prev, steps
        prev, off = off, u32(off + _S_NEXT)
    return NIL, NIL, steps


def _find_recv(view: MPFView, base: int, pid: int) -> tuple[int, int, int]:
    """Locate ``pid``'s receive descriptor: ``(desc_off|NIL, prev_off|NIL, steps)``."""
    u32 = view.region.u32
    prev, off, steps = NIL, u32(base + _L_RECV_LIST), 0
    while off != NIL:
        steps += 1
        if u32(off + _R_PID) == pid:
            return off, prev, steps
        prev, off = off, u32(off + _R_NEXT)
    return NIL, NIL, steps


def _conn_count(view: MPFView, base: int) -> int:
    r = view.region
    return (
        LNVC.get(r, base, "n_senders")
        + LNVC.get(r, base, "n_fcfs")
        + LNVC.get(r, base, "n_bcast")
    )


def _retire_check(view: MPFView, msg: int) -> bool:
    """Apply the retirement rule to one message header.

    A message retires (becomes reclaimable) when no broadcast receiver
    still owes it a read, nobody is copying out of it, and its FCFS
    obligation is discharged: either an FCFS receiver took it, or it never
    had an FCFS obligation *and* some receiver existed at enqueue time.
    Messages enqueued into an empty conversation are preserved for a
    future FCFS joiner (paper §3.2).
    """
    r = view.region
    flags = r.u32(msg + _M_FLAGS)
    if flags & _F_RETIRED:
        return True
    if r.u32(msg + _M_BCAST_PENDING) or r.u32(msg + _M_BUSY):
        return False
    if flags & _F_FCFS_TAKEN:
        pass
    elif (flags & _F_HAD_RECEIVERS) and not (flags & _F_FCFS_EXPECTED):
        pass
    else:
        return False
    r.set_u32(msg + _M_FLAGS, flags | _F_RETIRED)
    return True


def _free_chain(view: MPFView, msg: int) -> int:
    """Return a message header and its block chain to the free lists.

    Caller holds ``ALLOC_LOCK``.  Returns the number of blocks freed.
    """
    r = view.region
    u32 = r.u32
    set_u32 = r.set_u32
    nblk = 0
    blk = u32(msg + _M_FIRST_BLK)
    # Inlined fl_free: push each block onto the free list head.
    head = u32(_H_FREE_BLK)
    while blk != NIL:
        nxt = u32(blk + BLK_NEXT)
        set_u32(blk, head)
        head = blk
        blk = nxt
        nblk += 1
    set_u32(_H_FREE_BLK, head)
    length = u32(msg + _M_LENGTH)
    fl_free(r, _H_FREE_MSG, msg)
    r.add_u32(_H_LIVE_MSGS, -1)
    r.add_u32(_H_LIVE_BLOCKS, -nblk)
    r.add_u32(_H_LIVE_BYTES, -length)
    return nblk


def _shard_alloc(view: MPFView, pid: int, nblk: int, blocks: list) -> OpGen:
    """Pop ``nblk`` blocks from the sharded pool into ``blocks``.

    Prefers the caller's home shard (``pid % S``) and steals from the
    other shards round-robin when it runs dry.  Each shard is visited
    under its own lock; the live-block counter moves with each pop in
    the same scheduler step, so pool conservation holds at every yield
    point.  Returns True on success; on shortfall every pop already
    committed is rolled back (to its home shard) and False is returned.
    """
    r = view.region
    u32 = r.u32
    set_u32 = r.set_u32
    causal = view.causal
    heads = view._blk_heads
    nshards = len(heads)
    c_alloc = view.costs.blk_alloc
    home = pid % nshards
    taken = 0
    for k in range(nshards):
        if taken == nblk:
            break
        s = (home + k) % nshards
        head_off = heads[s]
        yield view._shard_acq[s]
        got = 0
        blk = u32(head_off)
        while taken + got < nblk and blk != NIL:
            blocks.append(blk)
            got += 1
            blk = u32(blk + BLK_NEXT)
        if got:
            set_u32(head_off, blk)
            r.add_u32(_H_LIVE_BLOCKS, got)
            taken += got
            if causal is not None:
                causal.on_pool_bulk(head_off, got)
            yield Charge(Work(instrs=got * c_alloc, label="send-alloc"))
        elif causal is not None:
            causal.on_pool(head_off, NIL)
        yield view._shard_rel[s]
    if taken == nblk:
        return True
    yield from _shard_free(view, blocks)
    del blocks[:]
    return False


def _shard_free(view: MPFView, blocks: list) -> OpGen:
    """Push ``blocks`` back to their home shards.

    Groups by home shard and visits each group under that shard's lock
    (ascending order, one at a time); the live-block counter moves with
    each group in the same scheduler step.  Safe to call with or
    without ``ALLOC_LOCK`` held — shard locks are strictly inner.
    """
    if not blocks:
        return
    lay = view.layout
    heads = view._blk_heads
    by_shard: dict = {}
    for b in blocks:
        by_shard.setdefault(lay.blk_shard(b), []).append(b)
    r = view.region
    for s in sorted(by_shard):
        group = by_shard[s]
        yield view._shard_acq[s]
        for b in group:
            fl_free(r, heads[s], b)
        r.add_u32(_H_LIVE_BLOCKS, -len(group))
        yield view._shard_rel[s]


def _free_chain_sharded(view: MPFView, msg: int) -> OpGen:
    """Sharded twin of :func:`_free_chain` (caller holds ``ALLOC_LOCK``).

    Blocks go back to their home shards under the per-shard locks
    (consistent with the ALLOC → shard order); the header free and the
    message/byte counters stay under the caller's ``ALLOC_LOCK``.
    Returns the number of blocks freed.
    """
    r = view.region
    u32 = r.u32
    blocks: list[int] = []
    blk = u32(msg + _M_FIRST_BLK)
    while blk != NIL:
        blocks.append(blk)
        blk = u32(blk + BLK_NEXT)
    yield from _shard_free(view, blocks)
    length = u32(msg + _M_LENGTH)
    fl_free(r, _H_FREE_MSG, msg)
    r.add_u32(_H_LIVE_MSGS, -1)
    r.add_u32(_H_LIVE_BYTES, -length)
    return len(blocks)


def _reap_head(view: MPFView, base: int) -> OpGen:
    """Unlink and free retired messages at the FIFO head.

    Retirement marks messages lazily; physical reclamation happens here,
    only from the head, so the singly linked FIFO never needs a backward
    unlink — our answer to the paper's "particularly vexing" problem.
    Caller holds the circuit lock.
    """
    r = view.region
    c = view.costs
    u32 = r.u32
    set_u32 = r.set_u32
    doomed: list[int] = []
    head = u32(base + _L_FIFO_HEAD)
    while head != NIL and (u32(head + _M_FLAGS) & _F_RETIRED):
        doomed.append(head)
        head = u32(head + _M_NEXT_MSG)
    if not doomed:
        return 0
    set_u32(base + _L_FIFO_HEAD, head)
    if head == NIL:
        set_u32(base + _L_FIFO_TAIL, NIL)
    depth_after = r.add_u32(base + _L_NMSGS, -len(doomed))
    if view.timeline is not None:
        view.timeline.tap_depth(view.layout.lnvc_slot(base), depth_after)
    # The shared FCFS head can never point *behind* the new physical head:
    # if it pointed at a reaped message, advance it to the first survivor
    # that is not FCFS-taken.
    fcfs = u32(base + _L_FCFS_HEAD)
    if fcfs in doomed:
        set_u32(base + _L_FCFS_HEAD, _first_untaken(view, head))
    nblk = 0
    yield view._alloc_acq
    causal = view.causal
    if causal is not None:
        # Header fields must be read before _free_chain overwrites the
        # record's first word with the free-list link.
        slot = view.layout.lnvc_slot(base)
        gen = u32(base + _L_GEN)
        depth = depth_after + len(doomed)
        for msg in doomed:
            depth -= 1
            causal.on_free(u32(msg + _M_SENDER), slot, gen,
                           u32(msg + _M_SEQNO), u32(msg + _M_LENGTH), depth)
    if view._blk_heads is None:
        for msg in doomed:
            nblk += _free_chain(view, msg)
    else:
        for msg in doomed:
            nblk += yield from _free_chain_sharded(view, msg)
    yield view._alloc_rel
    yield Charge(
        Work(instrs=len(doomed) * c.msg_discard + nblk * c.blk_free, label="reap")
    )
    return len(doomed)


def _first_untaken(view: MPFView, msg: int) -> int:
    """First message at or after ``msg`` not yet FCFS-taken (or NIL)."""
    u32 = view.region.u32
    while msg != NIL and (u32(msg + _M_FLAGS) & _F_FCFS_TAKEN):
        msg = u32(msg + _M_NEXT_MSG)
    return msg


def _delete_lnvc(view: MPFView, slot: int) -> OpGen:
    """Discard a circuit whose last connection just closed.

    Paper §2: "If this is the last process connected to lnvc_id, the LNVC
    is deleted and all unread messages are discarded."  Caller holds the
    global lock and the circuit lock.
    """
    r = view.region
    c = view.costs
    base = view.layout.lnvc_off(slot)
    msgs: list[int] = []
    msg = LNVC.get(r, base, "fifo_head")
    while msg != NIL:
        msgs.append(msg)
        msg = MSG.get(r, msg, "next_msg")
    nblk = 0
    if msgs:
        yield Acquire(ALLOC_LOCK)
        causal = view.causal
        if causal is not None:
            cur_gen = LNVC.get(r, base, "gen")
            depth = len(msgs)
            for m in msgs:
                depth -= 1
                causal.on_free(MSG.get(r, m, "sender"), slot, cur_gen,
                               MSG.get(r, m, "seqno"),
                               MSG.get(r, m, "length"), depth, discard=1)
        if view._blk_heads is None:
            for m in msgs:
                nblk += _free_chain(view, m)
        else:
            for m in msgs:
                nblk += yield from _free_chain_sharded(view, m)
        yield Release(ALLOC_LOCK)
    if LNVC.get(r, base, "transport"):
        # Ring circuits have no FIFO to discard (msgs is empty above);
        # unread slots die with the ring, which returns to the pool.
        yield from ring_release(view, base)
    gen = LNVC.get(r, base, "gen")
    LNVC.clear(r, base)
    LNVC.set(r, base, "gen", (gen + 1) & 0x3FFFFF)
    LNVC.set(r, base, "fifo_head", NIL)
    LNVC.set(r, base, "fifo_tail", NIL)
    LNVC.set(r, base, "fcfs_head", NIL)
    LNVC.set(r, base, "send_list", NIL)
    LNVC.set(r, base, "recv_list", NIL)
    HDR.add(r, "live_lnvcs", -1)
    yield Charge(
        Work(
            instrs=len(msgs) * c.msg_discard + nblk * c.blk_free + c.close_fixed // 2,
            label="lnvc-delete",
        )
    )
    return len(msgs)


def _open_common(view: MPFView, data: bytes) -> OpGen:
    """Find or create the circuit named ``data`` (pre-encoded); returns its slot.

    Caller holds the global lock.  On failure releases it and raises.
    """
    r = view.region
    c = view.costs
    slot, steps = view.find_by_name(data)
    if slot is None:
        slot, steps2 = view.find_free_slot()
        steps += steps2
        if slot is None:
            yield from _release_and_raise(
                [GLOBAL_LOCK],
                NoFreeLNVCError(f"all {view.cfg.max_lnvcs} LNVC slots in use"),
            )
        base = view.layout.lnvc_off(slot)
        gen = LNVC.get(r, base, "gen")
        LNVC.clear(r, base)
        LNVC.set(r, base, "gen", gen)
        LNVC.set(r, base, "in_use", 1)
        LNVC.set(r, base, "fifo_head", NIL)
        LNVC.set(r, base, "fifo_tail", NIL)
        LNVC.set(r, base, "fcfs_head", NIL)
        LNVC.set(r, base, "send_list", NIL)
        LNVC.set(r, base, "recv_list", NIL)
        view.write_name(slot, data)
        HDR.add(r, "live_lnvcs", 1)
        if view.cfg.transport_for(data.decode("utf-8")) == "ring":
            yield from ring_attach(view, slot, base)
    yield Charge(Work(instrs=c.open_fixed + steps * c.list_step, label="open"))
    return slot


# ---------------------------------------------------------------------------
# public primitives
# ---------------------------------------------------------------------------


def open_send(view: MPFView, pid: int, name: str) -> OpGen:
    """Establish a send connection for ``pid`` on the circuit ``name``.

    Creates the circuit if it does not exist.  Returns the circuit's
    public identifier for use with :func:`message_send` and
    :func:`close_send` (paper §2, ``open_send``).
    """
    r = view.region
    c = view.costs
    data = view.encode_name(name)  # validate before touching any lock
    yield Acquire(GLOBAL_LOCK)
    slot = yield from _open_common(view, data)
    if view.timeline is not None:
        view.timeline.name_slot(slot, name)
    base = view.layout.lnvc_off(slot)
    lock = view.lnvc_lock(slot)
    yield Acquire(lock)
    desc, _, steps = _find_send(view, base, pid)
    if desc != NIL:
        yield from _release_and_raise(
            [lock, GLOBAL_LOCK],
            DuplicateConnectionError(f"pid {pid} already sends on '{name}'"),
        )
    yield Acquire(ALLOC_LOCK)
    desc = fl_alloc(r, HDR.u32["free_send"])
    yield Release(ALLOC_LOCK)
    if desc == NIL:
        yield from _release_and_raise(
            [lock, GLOBAL_LOCK],
            OutOfDescriptorsError("send descriptor pool exhausted"),
        )
    SEND.set(r, desc, "pid", pid)
    SEND.set(r, desc, "next", LNVC.get(r, base, "send_list"))
    LNVC.set(r, base, "send_list", desc)
    LNVC.add(r, base, "n_senders", 1)
    LNVC.add(r, base, "conn_epoch", 1)
    yield Charge(Work(instrs=steps * c.list_step + 4 * c.list_step, label="open_send"))
    yield Release(lock)
    yield Release(GLOBAL_LOCK)
    return encode_lnvc_id(slot, LNVC.get(r, base, "gen"))


def open_receive(view: MPFView, pid: int, name: str, protocol: Protocol) -> OpGen:
    """Establish a receive connection with the given protocol.

    ``protocol`` is :data:`~repro.core.protocol.FCFS` or
    :data:`~repro.core.protocol.BROADCAST`.  A process may not hold both
    kinds on one circuit (paper §1 footnote 3).  A BROADCAST connection
    starts at the current FIFO tail: the receiver hears only messages sent
    after it joined the conversation.  Returns the circuit identifier.
    """
    proto = Protocol(protocol)
    r = view.region
    c = view.costs
    data = view.encode_name(name)  # validate before touching any lock
    yield Acquire(GLOBAL_LOCK)
    slot = yield from _open_common(view, data)
    if view.timeline is not None:
        view.timeline.name_slot(slot, name)
    base = view.layout.lnvc_off(slot)
    lock = view.lnvc_lock(slot)
    yield Acquire(lock)
    desc, _, steps = _find_recv(view, base, pid)
    if desc != NIL:
        have = Protocol(RECV.get(r, desc, "proto"))
        exc: Exception
        if have == proto:
            exc = DuplicateConnectionError(
                f"pid {pid} already receives ({have.name}) on '{name}'"
            )
        else:
            exc = ProtocolViolationError(
                f"pid {pid} cannot mix FCFS and BROADCAST on '{name}'"
            )
        yield from _release_and_raise([lock, GLOBAL_LOCK], exc)
    yield Acquire(ALLOC_LOCK)
    desc = fl_alloc(r, HDR.u32["free_recv"])
    yield Release(ALLOC_LOCK)
    if desc == NIL:
        yield from _release_and_raise(
            [lock, GLOBAL_LOCK],
            OutOfDescriptorsError("receive descriptor pool exhausted"),
        )
    RECV.set(r, desc, "pid", pid)
    RECV.set(r, desc, "proto", proto)
    RECV.set(r, desc, "head", NIL)
    RECV.set(r, desc, "nreads", 0)
    if proto is Protocol.BROADCAST and LNVC.get(r, base, "transport"):
        try:
            # Ring circuits: claim a reader-bitmap index and a tail
            # cursor instead of an individual FIFO head pointer.
            ring_register_reader(view, base, desc)
        except OutOfDescriptorsError as exc:
            yield Acquire(ALLOC_LOCK)
            fl_free(r, HDR.u32["free_recv"], desc)
            yield Release(ALLOC_LOCK)
            yield from _release_and_raise([lock, GLOBAL_LOCK], exc)
    RECV.set(r, desc, "next", LNVC.get(r, base, "recv_list"))
    LNVC.set(r, base, "recv_list", desc)
    LNVC.add(r, base, "n_fcfs" if proto is Protocol.FCFS else "n_bcast", 1)
    LNVC.add(r, base, "conn_epoch", 1)
    yield Charge(
        Work(instrs=steps * c.list_step + 4 * c.list_step, label="open_receive")
    )
    yield Release(lock)
    yield Release(GLOBAL_LOCK)
    return encode_lnvc_id(slot, LNVC.get(r, base, "gen"))


def close_send(view: MPFView, pid: int, lnvc_id: int) -> OpGen:
    """Remove ``pid``'s send connection from the circuit.

    If this was the last connection of any kind, the circuit is deleted
    and all unread messages are discarded (paper §2).
    """
    r = view.region
    c = view.costs
    yield Acquire(GLOBAL_LOCK)
    try:
        slot = view.resolve(lnvc_id)
    except UnknownLNVCError as exc:
        yield from _release_and_raise([GLOBAL_LOCK], exc)
    base = view.layout.lnvc_off(slot)
    lock = view.lnvc_lock(slot)
    yield Acquire(lock)
    desc, prev, steps = _find_send(view, base, pid)
    if desc == NIL:
        yield from _release_and_raise(
            [lock, GLOBAL_LOCK],
            NotConnectedError(f"pid {pid} holds no send connection here"),
        )
    nxt = SEND.get(r, desc, "next")
    if prev == NIL:
        LNVC.set(r, base, "send_list", nxt)
    else:
        SEND.set(r, prev, "next", nxt)
    LNVC.add(r, base, "conn_epoch", 1)
    yield Acquire(ALLOC_LOCK)
    fl_free(r, HDR.u32["free_send"], desc)
    yield Release(ALLOC_LOCK)
    LNVC.add(r, base, "n_senders", -1)
    yield Charge(Work(instrs=c.close_fixed + steps * c.list_step, label="close_send"))
    if _conn_count(view, base) == 0:
        yield from _delete_lnvc(view, slot)
    yield Release(lock)
    yield Release(GLOBAL_LOCK)
    # A receiver blocked on this circuit cannot be woken by future sends
    # if the circuit was just deleted; it stays blocked, exactly as the C
    # implementation would leave it.  (The simulator's deadlock detector
    # surfaces this programming error; see paper §3.2 on lost messages.)
    return None


def close_receive(view: MPFView, pid: int, lnvc_id: int) -> OpGen:
    """Remove ``pid``'s receive connection from the circuit.

    For a BROADCAST receiver, every message it had not yet read sheds one
    pending reader — the "particularly vexing" bookkeeping of paper §3.2,
    done here with per-message counters instead of head-pointer
    comparisons.  Deletes the circuit if this was the last connection.
    """
    r = view.region
    c = view.costs
    yield Acquire(GLOBAL_LOCK)
    try:
        slot = view.resolve(lnvc_id)
    except UnknownLNVCError as exc:
        yield from _release_and_raise([GLOBAL_LOCK], exc)
    base = view.layout.lnvc_off(slot)
    lock = view.lnvc_lock(slot)
    yield Acquire(lock)
    desc, prev, steps = _find_recv(view, base, pid)
    if desc == NIL:
        yield from _release_and_raise(
            [lock, GLOBAL_LOCK],
            NotConnectedError(f"pid {pid} holds no receive connection here"),
        )
    proto = Protocol(RECV.get(r, desc, "proto"))
    is_ring = bool(LNVC.get(r, base, "transport"))
    walked = 0
    ring_retired = False
    if proto is Protocol.BROADCAST:
        if is_ring:
            ring_retired = ring_unregister_reader(view, base, desc)
            walked = view.cfg.ring_slots
        else:
            msg = RECV.get(r, desc, "head")
            while msg != NIL:
                MSG.add(r, msg, "bcast_pending", -1)
                _retire_check(view, msg)
                msg = MSG.get(r, msg, "next_msg")
                walked += 1
        LNVC.add(r, base, "n_bcast", -1)
    else:
        LNVC.add(r, base, "n_fcfs", -1)
    nxt = RECV.get(r, desc, "next")
    if prev == NIL:
        LNVC.set(r, base, "recv_list", nxt)
    else:
        RECV.set(r, prev, "next", nxt)
    LNVC.add(r, base, "conn_epoch", 1)
    yield Acquire(ALLOC_LOCK)
    fl_free(r, HDR.u32["free_recv"], desc)
    yield Release(ALLOC_LOCK)
    yield Charge(
        Work(
            instrs=c.close_fixed + (steps + walked) * c.list_step,
            label="close_receive",
        )
    )
    if not is_ring:
        yield from _reap_head(view, base)
    if _conn_count(view, base) == 0:
        yield from _delete_lnvc(view, slot)
    yield Release(lock)
    yield Release(GLOBAL_LOCK)
    if ring_retired:
        # Shedding this reader's pending bits retired at least one slot:
        # senders blocked on a full ring can now reuse it.
        yield view._wake[slot]
    return None


# Context-list indices for the cached fused send closures (see
# _make_send_section): one mutable list per connection carries the
# per-call values the reusable closures read and write, replacing the
# per-call closure cells the first fused implementation allocated on
# every send.
_SX_LEN, _SX_NBLK, _SX_HDR, _SX_BLOCKS, _SX_SEQNO, _SX_DEPTH, \
    _SX_T_ENTRY, _SX_T_ALLOC, _SX_T_FILL = range(9)


def _make_send_section(view, slot, pid, gen, lnvc_id):
    """Build a fused :func:`message_send` cache entry for
    ``view._fs_send_sec``.

    Returns ``[gen, ctx, section1, prelude_obj, prelude_section1,
    section2_memo, alloc_call, link_call, tfill_call]``.  The closures
    are the same statements as the classic generator body; per-call
    state (payload length, allocated header/blocks, link results,
    causal timestamps) travels through ``ctx``.  The variable-cost
    charge steps are memoized by their cost inputs — equal-valued
    :class:`Work` prices identically, so reuse is exact.
    """
    r = view.region
    u32 = r.u32
    set_u32 = r.set_u32
    c = view.costs
    causal = view.causal
    base = view.layout.lnvc_off(slot)
    send_cache = view._send_cache
    skey = (slot, pid)
    ctx: list = [None] * 9
    alloc_splices: dict = {}
    link_splices: dict = {}

    def _alloc():
        nblk = ctx[_SX_NBLK]
        blocks = ctx[_SX_BLOCKS]
        hdr = fl_alloc(r, _H_FREE_MSG,
                       causal.on_pool if causal is not None else None)
        ctx[_SX_HDR] = hdr
        if hdr == NIL:
            return (D_BAIL,
                    OutOfMessageMemoryError("message header pool exhausted"))
        blk = u32(_H_FREE_BLK)
        while len(blocks) < nblk and blk != NIL:
            blocks.append(blk)
            blk = u32(blk + BLK_NEXT)
        if len(blocks) < nblk:
            fl_free(r, _H_FREE_MSG, hdr)
            if causal is not None:
                causal.on_pool(_H_FREE_BLK, NIL)
            return (D_BAIL, OutOfMessageMemoryError(
                f"block pool exhausted ({nblk}-block message)"))
        set_u32(_H_FREE_BLK, blk)
        if causal is not None:
            causal.on_pool_bulk(_H_FREE_BLK, nblk)
        r.add_u32(_H_LIVE_MSGS, 1)
        live_blk = r.add_u32(_H_LIVE_BLOCKS, nblk)
        tl = view.timeline
        if tl is not None:
            tl.tap_pool(live_blk)
        live = r.add_u32(_H_LIVE_BYTES, ctx[_SX_LEN])
        if live > r.u64(_H_HWM_LIVE_BYTES):
            r.set_u64(_H_HWM_LIVE_BYTES, live)
        live_msgs = u32(_H_LIVE_MSGS)
        if live_msgs > r.u64(_H_HWM_LIVE_MSGS):
            r.set_u64(_H_HWM_LIVE_MSGS, live_msgs)
        spl = alloc_splices.get(nblk)
        if spl is None:
            spl = alloc_splices[nblk] = (
                (S_CHARGE, Work(instrs=(nblk + 1) * c.blk_alloc,
                                label="send-alloc")),
                view._fs_alloc_rel,
            )
        return (D_RESULT_SPLICE, _OK, spl)

    def _tfill():
        ctx[_SX_T_FILL] = causal.clock()

    def _onsend():
        causal.on_send(pid, slot, gen, ctx[_SX_SEQNO], ctx[_SX_LEN],
                       ctx[_SX_NBLK], ctx[_SX_DEPTH], ctx[_SX_T_ENTRY],
                       ctx[_SX_T_ALLOC], ctx[_SX_T_FILL])

    def _link():
        hdr = ctx[_SX_HDR]
        length = ctx[_SX_LEN]
        nblk = ctx[_SX_NBLK]
        blocks = ctx[_SX_BLOCKS]
        try:
            if not u32(base + _L_IN_USE) or u32(base + _L_GEN) != gen:
                view.resolve(lnvc_id)  # raises with the precise message
            epoch = u32(base + _L_CONN_EPOCH)
            hit = send_cache.get(skey)
            if hit is not None and hit[2] == gen and hit[3] == epoch:
                steps = hit[1]
            else:
                sd, _, steps = _find_send(view, base, pid)
                if sd == NIL:
                    raise NotConnectedError(
                        f"pid {pid} holds no send connection here"
                    )
                send_cache[skey] = (sd, steps, gen, epoch)
        except (UnknownLNVCError, NotConnectedError) as exc:
            return (D_BAIL, exc)
        n_fcfs = u32(base + _L_N_FCFS)
        n_bcast = u32(base + _L_N_BCAST)
        flags = 0
        if n_fcfs:
            flags |= _F_FCFS_EXPECTED
        if n_fcfs or n_bcast:
            flags |= _F_HAD_RECEIVERS
        seqno = u32(base + _L_SEQ)
        ctx[_SX_SEQNO] = seqno
        set_u32(base + _L_SEQ, seqno + 1)
        set_u32(hdr + _M_LENGTH, length)
        set_u32(hdr + _M_NBLOCKS, nblk)
        set_u32(hdr + _M_FIRST_BLK, blocks[0] if blocks else NIL)
        set_u32(hdr + _M_NEXT_MSG, NIL)
        set_u32(hdr + _M_BCAST_PENDING, n_bcast)
        set_u32(hdr + _M_BUSY, 0)
        set_u32(hdr + _M_FLAGS, flags)
        set_u32(hdr + _M_SEQNO, seqno)
        set_u32(hdr + _M_SENDER, pid)
        tail = u32(base + _L_FIFO_TAIL)
        if tail == NIL:
            set_u32(base + _L_FIFO_HEAD, hdr)
        else:
            set_u32(tail + _M_NEXT_MSG, hdr)
        set_u32(base + _L_FIFO_TAIL, hdr)
        depth = r.add_u32(base + _L_NMSGS, 1)
        ctx[_SX_DEPTH] = depth
        if depth > u32(base + _L_HWM_NMSGS):
            set_u32(base + _L_HWM_NMSGS, depth)
        if u32(base + _L_FCFS_HEAD) == NIL:
            set_u32(base + _L_FCFS_HEAD, hdr)
        rsteps = 0
        desc = u32(base + _L_RECV_LIST)
        while desc != NIL:
            rsteps += 1
            if u32(desc + _R_PROTO) != _P_FCFS and u32(desc + _R_HEAD) == NIL:
                set_u32(desc + _R_HEAD, hdr)
            desc = u32(desc + _R_NEXT)
        r.add_u64(_H_TOTAL_SENDS, 1)
        r.add_u64(_H_TOTAL_BYTES_SENT, length)
        tl = view.timeline
        if tl is not None:
            tl.tap_send(slot, length, depth)
        total = steps + rsteps
        spl = link_splices.get(total)
        if spl is None:
            lst = [(S_CHARGE, Work(
                instrs=c.msg_link + total * c.list_step,
                label="send-link",
            ))]
            if causal is not None:
                lst.append((S_CALL, _onsend))
            lst.append(view._fs_rel[slot])
            spl = link_splices[total] = tuple(lst)
        return (D_RESULT_SPLICE, seqno, spl)

    alloc_call = (S_CALL, _alloc)
    section1 = FusedSection(
        (view._fs_send_fixed, view._fs_alloc_acq, alloc_call)
    )
    # Warm the epoch batcher's horizon memo while the section is being
    # cached (here and below): one flattening per (slot, pid) cache
    # entry instead of a lazy fill on the first simulated send.
    section1.contention_horizon()
    return [gen, ctx, section1, None, None, {},
            alloc_call, (S_CALL, _link), (S_CALL, _tfill)]


def _send_fused(
    view: MPFView,
    pid: int,
    lnvc_id: int,
    data: bytes,
    prelude: Work | None,
    slot: int,
    gen: int,
    lock: int,
    nblk: int,
    length: int,
    t_entry: float,
) -> OpGen:
    """Fused twin of :func:`message_send`'s free-list path (sim only).

    Two fused sections replace the nine classic effects: (entry charge,
    allocator acquire, alloc closure → alloc charge + allocator release)
    and (copy charge, circuit acquire, link closure → link charge +
    causal hook + release, wake).  The closures — cached per connection
    by :func:`_make_send_section` — are the same statements as the
    classic generator body, executed at the same simulated instants;
    error paths bail back to the classic rollback sequences with the
    held lock intact, so failure behavior is also identical.
    """
    r = view.region
    causal = view.causal
    skey = (slot, pid)
    ent = view._fs_send_sec.get(skey)
    if ent is None or ent[0] != gen:
        ent = _make_send_section(view, slot, pid, gen, lnvc_id)
        view._fs_send_sec[skey] = ent
    ctx = ent[1]
    ctx[_SX_LEN] = length
    ctx[_SX_NBLK] = nblk
    blocks: list[int] = []
    ctx[_SX_BLOCKS] = blocks
    ctx[_SX_T_ENTRY] = t_entry

    if prelude is None:
        section1 = ent[2]
    elif prelude is ent[3]:
        section1 = ent[4]
    else:
        section1 = FusedSection((
            (S_MANY, (prelude, view._send_fixed_work)),
            view._fs_alloc_acq,
            ent[6],
        ))
        section1.contention_horizon()
        ent[3] = prelude
        ent[4] = section1
    res = yield section1
    if res is not _OK:
        yield from _release_and_raise([ALLOC_LOCK], res)
    if causal is not None:
        ctx[_SX_T_ALLOC] = causal.clock()
    hdr = ctx[_SX_HDR]

    # Fill the private chain — outside every lock, same as classic.
    set_u32 = r.set_u32
    write = r.write
    bs = view.cfg.block_size
    last = nblk - 1
    for i, blk in enumerate(blocks):
        set_u32(blk + BLK_NEXT, blocks[i + 1] if i < last else NIL)
        write(blk + 4, data[i * bs : min((i + 1) * bs, length)])

    sec2_memo = ent[5]
    section2 = sec2_memo.get(length)
    if section2 is None:
        c = view.costs
        lay = view.layout
        steps2 = [(S_CHARGE, Work(
            instrs=nblk * c.blk_fill + length * c.copy_byte,
            copy_bytes=length,
            blocks=nblk,
            page_bytes=nblk * lay.blk_stride + MSG.size,
            label="send-copy",
        ))]
        if causal is not None:
            steps2.append(ent[8])
        steps2 += [view._fs_acq[slot], ent[7], view._fs_wake[slot]]
        section2 = sec2_memo[length] = FusedSection(tuple(steps2))
        section2.contention_horizon()
    res = yield section2
    if res.__class__ is int:
        return res
    # Validation failed at the link step: the circuit lock is still
    # held; roll the allocation back exactly as the classic path does.
    yield Release(lock)
    yield Acquire(ALLOC_LOCK)
    for b in blocks:
        fl_free(r, _H_FREE_BLK, b)
    fl_free(r, _H_FREE_MSG, hdr)
    r.add_u32(_H_LIVE_MSGS, -1)
    r.add_u32(_H_LIVE_BLOCKS, -nblk)
    r.add_u32(_H_LIVE_BYTES, -length)
    yield from _release_and_raise([ALLOC_LOCK], res)


def message_send(
    view: MPFView,
    pid: int,
    lnvc_id: int,
    data: bytes,
    prelude: Work | None = None,
) -> OpGen:
    """Asynchronously send ``data`` to the circuit.

    The payload is copied into a chain of fixed-size message blocks
    allocated from the shared free list, then the chain is linked at the
    FIFO tail and waiting receivers are woken.  The sender continues as
    soon as the message is queued ("Message sending is asynchronous,
    allowing a process to proceed before the message reaches its
    destination(s)", paper §2).  Returns the message's sequence number on
    the circuit.

    ``prelude`` optionally carries compute-only application work to be
    fused with the primitive's fixed entry charge as one
    :class:`~repro.core.effects.ChargeMany` — semantically identical to
    ``yield Charge(prelude)`` immediately before the call, one scheduler
    round-trip cheaper.

    Raises :class:`OutOfMessageMemoryError` when the header or block pool
    is exhausted — the hard edge of the ``init()`` sizing estimate.
    """
    # Transport dispatch on a plain u32 read: no effect is yielded, so
    # free-list circuits keep a bit-identical simulated schedule.  A
    # stale identifier is caught by the generation check either way.
    slot = lnvc_id & _SLOT_MASK
    if slot < view.cfg.max_lnvcs and view.region.u32(
        view.layout.lnvc_off(slot) + _L_TRANSPORT
    ):
        return (yield from ring_send(view, pid, lnvc_id, data, prelude))
    if not isinstance(data, (bytes, bytearray, memoryview)):
        raise TypeError("message payload must be bytes-like")
    data = bytes(data)
    r = view.region
    u32 = r.u32
    set_u32 = r.set_u32
    c = view.costs
    lay = view.layout
    bs = view.cfg.block_size
    length = len(data)
    nblk = (length + bs - 1) // bs
    causal = view.causal
    t_entry = causal.clock() if causal is not None else 0.0
    slot = lnvc_id & _SLOT_MASK
    gen = lnvc_id >> SLOT_BITS
    in_table = slot < view.cfg.max_lnvcs
    lock = FIRST_LNVC_LOCK + slot if in_table else GLOBAL_LOCK

    # Fused sections bake in the single-list allocator, so a sharded
    # pool always takes the classic generator paths.
    if view.fuse and in_table and view._blk_heads is None:
        return (yield from _send_fused(
            view, pid, lnvc_id, data, prelude, slot, gen, lock,
            nblk, length, t_entry))

    if prelude is None:
        yield view._send_fixed
    else:
        yield ChargeMany((prelude, view._send_fixed_work))

    # Phase 1: allocation.  Blocks are private until linked, so only the
    # free lists need the allocator lock.
    yield view._alloc_acq
    hdr = fl_alloc(r, _H_FREE_MSG,
                   causal.on_pool if causal is not None else None)
    if hdr == NIL:
        yield from _release_and_raise(
            [ALLOC_LOCK], OutOfMessageMemoryError("message header pool exhausted")
        )
    blocks: list[int] = []
    if view._blk_heads is not None:
        # Sharded pool: the allocator section covers only the header pop
        # and the message/byte counters; block pops move under the
        # per-shard locks (same total charge, split across sections).
        r.add_u32(_H_LIVE_MSGS, 1)
        live = r.add_u32(_H_LIVE_BYTES, length)
        if live > r.u64(_H_HWM_LIVE_BYTES):
            r.set_u64(_H_HWM_LIVE_BYTES, live)
        live_msgs = u32(_H_LIVE_MSGS)
        if live_msgs > r.u64(_H_HWM_LIVE_MSGS):
            r.set_u64(_H_HWM_LIVE_MSGS, live_msgs)
        yield Charge(Work(instrs=c.blk_alloc, label="send-alloc"))
        yield view._alloc_rel
        if not (yield from _shard_alloc(view, pid, nblk, blocks)):
            yield view._alloc_acq
            fl_free(r, _H_FREE_MSG, hdr)
            r.add_u32(_H_LIVE_MSGS, -1)
            r.add_u32(_H_LIVE_BYTES, -length)
            yield from _release_and_raise(
                [ALLOC_LOCK],
                OutOfMessageMemoryError(
                    f"block pool exhausted ({nblk}-block message)"),
            )
    else:
        # Pop the whole chain in one walk (the free list is only mutated on
        # shortfall once the full count is known, so no rollback is needed).
        blk = u32(_H_FREE_BLK)
        while len(blocks) < nblk and blk != NIL:
            blocks.append(blk)
            blk = u32(blk + BLK_NEXT)
        if len(blocks) < nblk:
            fl_free(r, _H_FREE_MSG, hdr)
            if causal is not None:
                causal.on_pool(_H_FREE_BLK, NIL)
            yield from _release_and_raise(
                [ALLOC_LOCK],
                OutOfMessageMemoryError(f"block pool exhausted ({nblk}-block message)"),
            )
        set_u32(_H_FREE_BLK, blk)
        if causal is not None:
            causal.on_pool_bulk(_H_FREE_BLK, nblk)
        r.add_u32(_H_LIVE_MSGS, 1)
        live_blk = r.add_u32(_H_LIVE_BLOCKS, nblk)
        if view.timeline is not None:
            view.timeline.tap_pool(live_blk)
        live = r.add_u32(_H_LIVE_BYTES, length)
        if live > r.u64(_H_HWM_LIVE_BYTES):
            r.set_u64(_H_HWM_LIVE_BYTES, live)
        live_msgs = u32(_H_LIVE_MSGS)
        if live_msgs > r.u64(_H_HWM_LIVE_MSGS):
            r.set_u64(_H_HWM_LIVE_MSGS, live_msgs)
        yield Charge(Work(instrs=(nblk + 1) * c.blk_alloc, label="send-alloc"))
        yield view._alloc_rel
    t_alloc = causal.clock() if causal is not None else 0.0

    # Phase 2: fill the private chain — outside every lock.
    write = r.write
    last = nblk - 1
    for i, blk in enumerate(blocks):
        set_u32(blk + BLK_NEXT, blocks[i + 1] if i < last else NIL)
        write(blk + 4, data[i * bs : min((i + 1) * bs, length)])
    yield Charge(
        Work(
            instrs=nblk * c.blk_fill + length * c.copy_byte,
            copy_bytes=length,
            blocks=nblk,
            page_bytes=nblk * lay.blk_stride + MSG.size,
            label="send-copy",
        )
    )
    t_fill = causal.clock() if causal is not None else 0.0

    # Phase 3: link at the FIFO tail under the circuit lock.
    yield view._acq[slot] if in_table else Acquire(lock)
    try:
        base = lay.lnvc_off(slot)
        if (
            not in_table
            or not u32(base + _L_IN_USE)
            or u32(base + _L_GEN) != gen
        ):
            view.resolve(lnvc_id)  # raises with the precise message
        epoch = u32(base + _L_CONN_EPOCH)
        hit = view._send_cache.get((slot, pid))
        if hit is not None and hit[2] == gen and hit[3] == epoch:
            steps = hit[1]
        else:
            sd, _, steps = _find_send(view, base, pid)
            if sd == NIL:
                raise NotConnectedError(
                    f"pid {pid} holds no send connection here"
                )
            view._send_cache[(slot, pid)] = (sd, steps, gen, epoch)
    except (UnknownLNVCError, NotConnectedError) as exc:
        yield Release(lock)
        if view._blk_heads is not None:
            yield from _shard_free(view, blocks)
            yield Acquire(ALLOC_LOCK)
            fl_free(r, _H_FREE_MSG, hdr)
            r.add_u32(_H_LIVE_MSGS, -1)
            r.add_u32(_H_LIVE_BYTES, -length)
            yield from _release_and_raise([ALLOC_LOCK], exc)
        yield Acquire(ALLOC_LOCK)
        for b in blocks:
            fl_free(r, _H_FREE_BLK, b)
        fl_free(r, _H_FREE_MSG, hdr)
        r.add_u32(_H_LIVE_MSGS, -1)
        r.add_u32(_H_LIVE_BLOCKS, -nblk)
        r.add_u32(_H_LIVE_BYTES, -length)
        yield from _release_and_raise([ALLOC_LOCK], exc)

    n_fcfs = u32(base + _L_N_FCFS)
    n_bcast = u32(base + _L_N_BCAST)
    flags = 0
    if n_fcfs:
        flags |= _F_FCFS_EXPECTED
    if n_fcfs or n_bcast:
        flags |= _F_HAD_RECEIVERS
    seqno = u32(base + _L_SEQ)
    set_u32(base + _L_SEQ, seqno + 1)
    set_u32(hdr + _M_LENGTH, length)
    set_u32(hdr + _M_NBLOCKS, nblk)
    set_u32(hdr + _M_FIRST_BLK, blocks[0] if blocks else NIL)
    set_u32(hdr + _M_NEXT_MSG, NIL)
    set_u32(hdr + _M_BCAST_PENDING, n_bcast)
    set_u32(hdr + _M_BUSY, 0)
    set_u32(hdr + _M_FLAGS, flags)
    set_u32(hdr + _M_SEQNO, seqno)
    set_u32(hdr + _M_SENDER, pid)
    tail = u32(base + _L_FIFO_TAIL)
    if tail == NIL:
        set_u32(base + _L_FIFO_HEAD, hdr)
    else:
        set_u32(tail + _M_NEXT_MSG, hdr)
    set_u32(base + _L_FIFO_TAIL, hdr)
    depth = r.add_u32(base + _L_NMSGS, 1)
    if depth > u32(base + _L_HWM_NMSGS):
        set_u32(base + _L_HWM_NMSGS, depth)
    if u32(base + _L_FCFS_HEAD) == NIL:
        set_u32(base + _L_FCFS_HEAD, hdr)
    # Point every caught-up BROADCAST receiver at the new message.
    rsteps = 0
    desc = u32(base + _L_RECV_LIST)
    while desc != NIL:
        rsteps += 1
        if u32(desc + _R_PROTO) != _P_FCFS and u32(desc + _R_HEAD) == NIL:
            set_u32(desc + _R_HEAD, hdr)
        desc = u32(desc + _R_NEXT)
    r.add_u64(_H_TOTAL_SENDS, 1)
    r.add_u64(_H_TOTAL_BYTES_SENT, length)
    yield Charge(
        Work(
            instrs=c.msg_link + (steps + rsteps) * c.list_step,
            label="send-link",
        )
    )
    if causal is not None:
        causal.on_send(pid, slot, gen, seqno, length, nblk, depth,
                       t_entry, t_alloc, t_fill)
    if view.timeline is not None:
        view.timeline.tap_send(slot, length, depth)
    yield view._rel[slot] if in_table else Release(lock)
    yield view._wake[slot] if in_table else Wake(slot)
    return seqno


# Context-list indices for the cached fused receive closures (see
# _make_recv_section) — the receive-side analogue of the _SX_* slots.
_RX_DESC, _RX_FCFS, _RX_MSG, _RX_LEN, _RX_NBLK, _RX_FIRST, _RX_T_CLAIM, \
    _RX_SEQNO, _RX_CLAIMED, _RX_MAXLEN, _RX_T_DRAIN = range(11)


def _make_recv_section(view, slot, pid, gen, lnvc_id):
    """Build a fused :func:`message_receive` cache entry for
    ``view._fs_recv_sec``.

    Returns ``[gen, ctx, entry_section, completion_memo, tdrain_call,
    done_call]``.  The closures are the same statements as the classic
    generator body; per-call state (descriptor, claimed message, copy
    geometry, causal timestamps) travels through ``ctx``.  Find/reap
    charge splices are memoized by their cost inputs, the completion
    section by ``(length, nblk)`` — equal-valued :class:`Work` prices
    identically, so reuse is exact.
    """
    r = view.region
    u32 = r.u32
    set_u32 = r.set_u32
    c = view.costs
    causal = view.causal
    base = view.layout.lnvc_off(slot)
    recv_cache = view._recv_cache
    rkey = (slot, pid)
    fs_find = view._fs_recv_find
    fs_rel = view._fs_rel[slot]
    ctx: list = [None] * 11
    find_splices: dict = {}
    reap_splices: dict = {}
    reap_state: list = []

    def _find():
        if not u32(base + _L_IN_USE) or u32(base + _L_GEN) != gen:
            try:
                view.resolve(lnvc_id)  # raises with the precise message
            except UnknownLNVCError as exc:
                return (D_BAIL, exc)
        epoch = u32(base + _L_CONN_EPOCH)
        hit = recv_cache.get(rkey)
        if hit is not None and hit[2] == gen and hit[3] == epoch:
            desc = hit[0]
            steps = hit[1]
        else:
            desc, _, steps = _find_recv(view, base, pid)
            if desc == NIL:
                return (D_BAIL, NotConnectedError(
                    f"pid {pid} holds no receive connection here"))
            recv_cache[rkey] = (desc, steps, gen, epoch)
        ctx[_RX_DESC] = desc
        ctx[_RX_FCFS] = u32(desc + _R_PROTO) == _P_FCFS
        spl = find_splices.get(steps)
        if spl is None:
            fstep = fs_find[steps] if steps < 8 else (
                S_CHARGE, Work(instrs=steps * c.list_step, label="recv-find"))
            spl = find_splices[steps] = (fstep, headcheck_call)
        return (D_SPLICE, spl)

    def _headcheck():
        desc = ctx[_RX_DESC]
        is_fcfs = ctx[_RX_FCFS]
        msg = u32(base + _L_FCFS_HEAD) if is_fcfs else u32(desc + _R_HEAD)
        if msg == NIL:
            return (D_BAIL, _EMPTY)
        ctx[_RX_MSG] = msg
        length = u32(msg + _M_LENGTH)
        ctx[_RX_LEN] = length
        max_len = ctx[_RX_MAXLEN]
        if max_len is not None and length > max_len:
            return (D_BAIL, BufferOverflowError(
                f"next message is {length} bytes, buffer holds {max_len}"))
        r.add_u32(msg + _M_BUSY, 1)
        if is_fcfs:
            set_u32(msg + _M_FLAGS, u32(msg + _M_FLAGS) | _F_FCFS_TAKEN)
            set_u32(base + _L_FCFS_HEAD,
                    _first_untaken(view, u32(msg + _M_NEXT_MSG)))
        else:
            set_u32(desc + _R_HEAD, u32(msg + _M_NEXT_MSG))
        r.add_u32(desc + _R_NREADS, 1)
        ctx[_RX_NBLK] = u32(msg + _M_NBLOCKS)
        ctx[_RX_FIRST] = u32(msg + _M_FIRST_BLK)
        if causal is not None:
            ctx[_RX_T_CLAIM] = causal.clock()
            ctx[_RX_SEQNO] = u32(msg + _M_SEQNO)
        ctx[_RX_CLAIMED] = True
        return (D_SPLICE, rel_splice)

    def _tdrain():
        ctx[_RX_T_DRAIN] = causal.clock()

    def _done():
        msg = ctx[_RX_MSG]
        r.add_u32(msg + _M_BUSY, -1)
        if not ctx[_RX_FCFS]:
            r.add_u32(msg + _M_BCAST_PENDING, -1)
        _retire_check(view, msg)
        return (D_SPLICE, done_splice)

    def _reap1():
        doomed: list[int] = []
        head = u32(base + _L_FIFO_HEAD)
        while head != NIL and (u32(head + _M_FLAGS) & _F_RETIRED):
            doomed.append(head)
            head = u32(head + _M_NEXT_MSG)
        if not doomed:
            _totals()
            return (D_SPLICE, rel_splice)
        set_u32(base + _L_FIFO_HEAD, head)
        if head == NIL:
            set_u32(base + _L_FIFO_TAIL, NIL)
        depth_after = r.add_u32(base + _L_NMSGS, -len(doomed))
        tl = view.timeline
        if tl is not None:
            tl.tap_depth(slot, depth_after)
        fcfs = u32(base + _L_FCFS_HEAD)
        if fcfs in doomed:
            set_u32(base + _L_FCFS_HEAD, _first_untaken(view, head))
        reap_state.append((doomed, depth_after))
        return (D_SPLICE, reapacq_splice)

    def _reap2():
        doomed, depth_after = reap_state.pop()
        if causal is not None:
            cur_gen = u32(base + _L_GEN)
            depth = depth_after + len(doomed)
            for m in doomed:
                depth -= 1
                causal.on_free(u32(m + _M_SENDER), slot, cur_gen,
                               u32(m + _M_SEQNO), u32(m + _M_LENGTH),
                               depth)
        nblk_f = 0
        for m in doomed:
            nblk_f += _free_chain(view, m)
        key = (len(doomed), nblk_f)
        spl = reap_splices.get(key)
        if spl is None:
            spl = reap_splices[key] = (
                view._fs_alloc_rel,
                (S_CHARGE, Work(
                    instrs=len(doomed) * c.msg_discard + nblk_f * c.blk_free,
                    label="reap",
                )),
                totals_call,
                fs_rel,
            )
        return (D_SPLICE, spl)

    def _totals():
        r.add_u64(_H_TOTAL_RECEIVES, 1)
        r.add_u64(_H_TOTAL_BYTES_RECEIVED, ctx[_RX_LEN])

    headcheck_call = (S_CALL, _headcheck)
    totals_call = (S_CALL, _totals)
    rel_splice = (fs_rel,)
    done_splice = (view._fs_recv_retire, (S_CALL, _reap1))
    reapacq_splice = (view._fs_alloc_acq, (S_CALL, _reap2))
    entry_sec = FusedSection(
        (view._fs_recv_fixed, view._fs_acq[slot], (S_CALL, _find))
    )
    entry_sec.contention_horizon()
    return [gen, ctx, entry_sec, {}, (S_CALL, _tdrain), (S_CALL, _done)]


def message_receive(
    view: MPFView, pid: int, lnvc_id: int, max_len: int | None = None
) -> OpGen:
    """Receive the next message for ``pid`` from the circuit; blocking.

    FCFS connections consume the oldest message not yet taken by any FCFS
    receiver; BROADCAST connections read the oldest message past their
    individual head pointer.  The payload copy out of the block chain
    happens outside the circuit lock, so concurrent receivers overlap
    (Figure 5).  Returns the payload bytes.

    If ``max_len`` is given and the next message is longer, raises
    :class:`BufferOverflowError` *without* consuming the message — the
    safe analogue of the C interface's caller-supplied buffer.
    """
    slot = lnvc_id & _SLOT_MASK
    if slot < view.cfg.max_lnvcs and view.region.u32(
        view.layout.lnvc_off(slot) + _L_TRANSPORT
    ):
        return (yield from ring_receive(view, pid, lnvc_id, max_len))
    r = view.region
    u32 = r.u32
    set_u32 = r.set_u32
    c = view.costs
    causal = view.causal
    t_entry = causal.clock() if causal is not None else 0.0
    slot = lnvc_id & _SLOT_MASK
    gen = lnvc_id >> SLOT_BITS
    in_table = slot < view.cfg.max_lnvcs
    lock = FIRST_LNVC_LOCK + slot if in_table else GLOBAL_LOCK
    base = view.layout.lnvc_off(slot)
    fuse = view.fuse and in_table and view._blk_heads is None

    desc = NIL
    is_fcfs = False
    msg = NIL
    length = 0
    nblk = 0
    first = NIL
    t_claim = 0.0
    claimed_seqno = 0
    claimed = False

    ent = None
    if fuse:
        # Fused fast path: (entry charge, acquire, validate/find closure
        # → find charge + head-check closure → claim + release) as one
        # effect when a message is already queued.  An empty queue bails
        # to the classic WaitOn loop below with the lock held — fusion
        # never spans a sleep.  The closures are cached per connection
        # (_make_recv_section); this call's state rides in ``ctx``.
        rkey = (slot, pid)
        ent = view._fs_recv_sec.get(rkey)
        if ent is None or ent[0] != gen:
            ent = _make_recv_section(view, slot, pid, gen, lnvc_id)
            view._fs_recv_sec[rkey] = ent
        ctx = ent[1]
        ctx[_RX_MAXLEN] = max_len
        ctx[_RX_CLAIMED] = False
        res = yield ent[2]
        if res is not None and res is not _EMPTY:
            yield from _release_and_raise([lock], res)
        desc = ctx[_RX_DESC]
        is_fcfs = ctx[_RX_FCFS]
        if ctx[_RX_CLAIMED]:
            claimed = True
            msg = ctx[_RX_MSG]
            length = ctx[_RX_LEN]
            nblk = ctx[_RX_NBLK]
            first = ctx[_RX_FIRST]
            if causal is not None:
                t_claim = ctx[_RX_T_CLAIM]
                claimed_seqno = ctx[_RX_SEQNO]
    else:
        yield view._recv_fixed
        yield view._acq[slot] if in_table else Acquire(lock)
        if not in_table:
            try:
                view.resolve(lnvc_id)
            except UnknownLNVCError as exc:
                yield from _release_and_raise([lock], exc)
        if not u32(base + _L_IN_USE) or u32(base + _L_GEN) != gen:
            try:
                view.resolve(lnvc_id)  # raises with the precise message
            except UnknownLNVCError as exc:
                yield from _release_and_raise([lock], exc)
        epoch = u32(base + _L_CONN_EPOCH)
        hit = view._recv_cache.get((slot, pid))
        if hit is not None and hit[2] == gen and hit[3] == epoch:
            desc = hit[0]
            steps = hit[1]
        else:
            desc, _, steps = _find_recv(view, base, pid)
            if desc == NIL:
                yield from _release_and_raise(
                    [lock],
                    NotConnectedError(f"pid {pid} holds no receive connection here"),
                )
            view._recv_cache[(slot, pid)] = (desc, steps, gen, epoch)
        is_fcfs = u32(desc + _R_PROTO) == _P_FCFS
        yield view._recv_find[steps] if steps < 8 else Charge(
            Work(instrs=steps * c.list_step, label="recv-find")
        )

    if not claimed:
        # Fused entry already observed an empty queue at this instant,
        # so it starts with the sleep; the classic entry checks first.
        skip_check = fuse
        while True:
            if not skip_check:
                if is_fcfs:
                    msg = u32(base + _L_FCFS_HEAD)
                else:
                    msg = u32(desc + _R_HEAD)
                if msg != NIL:
                    break
            skip_check = False
            # Nothing available: sleep on the circuit's wait channel.  WaitOn
            # atomically releases the lock and reacquires it on wake, closing
            # the lost wake-up window.
            yield view._waiton[slot]
            yield view._recv_wakeup

        length = u32(msg + _M_LENGTH)
        if max_len is not None and length > max_len:
            yield from _release_and_raise(
                [lock],
                BufferOverflowError(
                    f"next message is {length} bytes, buffer holds {max_len}"
                ),
            )

        # Claim the message under the lock, then copy outside it.
        r.add_u32(msg + _M_BUSY, 1)
        if is_fcfs:
            set_u32(msg + _M_FLAGS, u32(msg + _M_FLAGS) | _F_FCFS_TAKEN)
            set_u32(
                base + _L_FCFS_HEAD, _first_untaken(view, u32(msg + _M_NEXT_MSG))
            )
        else:
            set_u32(desc + _R_HEAD, u32(msg + _M_NEXT_MSG))
        r.add_u32(desc + _R_NREADS, 1)
        nblk = u32(msg + _M_NBLOCKS)
        first = u32(msg + _M_FIRST_BLK)
        if causal is not None:
            t_claim = causal.clock()
            claimed_seqno = u32(msg + _M_SEQNO)
        yield view._rel[slot] if in_table else Release(lock)

    # Copy phase — concurrent with other receivers of the same message.
    bs = view.cfg.block_size
    read = r.read
    parts: list[bytes] = []
    blk, remaining = first, length
    while blk != NIL and remaining > 0:
        take = bs if remaining > bs else remaining
        parts.append(read(blk + 4, take))
        remaining -= take
        blk = u32(blk + BLK_NEXT)
    payload = b"".join(parts)

    if fuse:
        # Fused completion: (copy charge, acquire, unpin/retire closure
        # → retire charge + reap closures + release) as one effect; the
        # reap's allocator excursion splices in only when messages
        # actually retire, mirroring _reap_head's conditional yields.
        # The section (including the copy-cost Work) is memoized by the
        # copy geometry; the wait-loop path may have claimed classically,
        # so the claim results are (re)written into ctx first.
        ctx = ent[1]
        ctx[_RX_MSG] = msg
        ctx[_RX_FCFS] = is_fcfs
        ctx[_RX_LEN] = length
        comp_memo = ent[3]
        section = comp_memo.get((length, nblk))
        if section is None:
            steps_b: list = [(S_CHARGE, Work(
                instrs=nblk * c.blk_drain + length * c.copy_byte,
                copy_bytes=length,
                blocks=nblk,
                label="recv-copy",
            ))]
            if causal is not None:
                steps_b.append(ent[4])
            steps_b += [view._fs_acq[slot], ent[5]]
            section = comp_memo[(length, nblk)] = FusedSection(tuple(steps_b))
            section.contention_horizon()
        yield section
        t_drain = ctx[_RX_T_DRAIN] if causal is not None else 0.0
    else:
        yield Charge(Work(
            instrs=nblk * c.blk_drain + length * c.copy_byte,
            copy_bytes=length,
            blocks=nblk,
            label="recv-copy",
        ))
        t_drain = causal.clock() if causal is not None else 0.0

        # Completion: drop the busy pin, account the read, retire and reap.
        yield view._acq[slot] if in_table else Acquire(lock)
        r.add_u32(msg + _M_BUSY, -1)
        if not is_fcfs:
            r.add_u32(msg + _M_BCAST_PENDING, -1)
        _retire_check(view, msg)
        yield view._recv_retire
        yield from _reap_head(view, base)
        r.add_u64(_H_TOTAL_RECEIVES, 1)
        r.add_u64(_H_TOTAL_BYTES_RECEIVED, length)
        yield view._rel[slot] if in_table else Release(lock)
    if causal is not None:
        causal.on_recv(pid, slot, gen, claimed_seqno, length, is_fcfs,
                       t_entry, t_claim, t_drain)
    if view.timeline is not None:
        view.timeline.tap_recv(slot, length)
    return payload


def _make_check_section(view, slot, pid, gen, lnvc_id):
    """Build a :func:`check_receive` fused-section cache entry.

    Returns ``[gen, walk_closure, section, prelude_obj, prelude_section]``
    for ``view._fs_check_cache``.  Everything the walk closure touches is
    hoisted into its cells once, here, instead of per call — and the
    closure itself is reused for every check on this connection until
    the slot's generation changes.
    """
    r = view.region
    u32 = r.u32
    c = view.costs
    base = view.layout.lnvc_off(slot)
    recv_cache = view._recv_cache
    rkey = (slot, pid)
    fs_walk = view._fs_check_walk
    fs_rel = view._fs_rel[slot]

    def _walk():
        if not u32(base + _L_IN_USE) or u32(base + _L_GEN) != gen:
            try:
                view.resolve(lnvc_id)  # raises with the precise message
            except UnknownLNVCError as exc:
                return (D_BAIL, exc)
        epoch = u32(base + _L_CONN_EPOCH)
        hit = recv_cache.get(rkey)
        if hit is not None and hit[2] == gen and hit[3] == epoch:
            desc = hit[0]
            steps = hit[1]
        else:
            desc, _, steps = _find_recv(view, base, pid)
            if desc == NIL:
                return (D_BAIL, NotConnectedError(
                    f"pid {pid} holds no receive connection here"))
            recv_cache[rkey] = (desc, steps, gen, epoch)
        if u32(desc + _R_PROTO) == _P_FCFS:
            msg = u32(base + _L_FCFS_HEAD)
        else:
            msg = u32(desc + _R_HEAD)
        count = 0
        while msg != NIL:
            count += 1
            msg = u32(msg + _M_NEXT_MSG)
        walked = steps + count
        wstep = fs_walk[walked] if walked < 8 else (
            S_CHARGE, Work(instrs=walked * c.list_step, label="check-walk"))
        return (D_RESULT_SPLICE, count, (wstep, fs_rel))

    section = FusedSection(
        (view._fs_check_fixed, view._fs_acq[slot], (S_CALL, _walk))
    )
    section.contention_horizon()
    return [gen, _walk, section, None, None]


def check_receive(
    view: MPFView, pid: int, lnvc_id: int, prelude: Work | None = None
) -> OpGen:
    """Count the messages currently available to ``pid`` on the circuit.

    Returns 0 when nothing is queued for this receiver.  For an FCFS
    connection the count is advisory only: another FCFS receiver "may
    acquire the message before the checking process can receive the
    message" (paper §2) — the count can be stale the moment the lock is
    released.  For BROADCAST the counted messages are guaranteed to be
    deliverable to this receiver.

    ``prelude`` optionally carries compute-only application work to be
    fused with the primitive's fixed entry charge as one
    :class:`~repro.core.effects.ChargeMany` — the fast path for polling
    loops that back off with compute between rounds (see
    :func:`repro.patterns.select_receive`).
    """
    slot = lnvc_id & _SLOT_MASK
    if slot < view.cfg.max_lnvcs and view.region.u32(
        view.layout.lnvc_off(slot) + _L_TRANSPORT
    ):
        return (yield from ring_check(view, pid, lnvc_id, prelude))
    r = view.region
    u32 = r.u32
    c = view.costs
    slot = lnvc_id & _SLOT_MASK
    gen = lnvc_id >> SLOT_BITS
    in_table = slot < view.cfg.max_lnvcs
    lock = FIRST_LNVC_LOCK + slot if in_table else GLOBAL_LOCK

    if view.fuse and in_table:
        # Fused fast path: entry charge + acquire + (validate, walk,
        # walk charge, release) retire as one engine effect.  Same
        # code, clock arithmetic and error behavior as the classic
        # sequence below — the closure runs at the acquire-grant
        # instant, exactly when the unfused generator body would.
        # Section and closure come from the per-connection cache; the
        # prelude variant is memoized by object identity because poll
        # loops (select_receive) reuse one backoff Work for their whole
        # lifetime.
        ckey = (slot, pid)
        ent = view._fs_check_cache.get(ckey)
        if ent is None or ent[0] != gen:
            ent = _make_check_section(view, slot, pid, gen, lnvc_id)
            view._fs_check_cache[ckey] = ent
        if prelude is None:
            section = ent[2]
        elif prelude is ent[3]:
            section = ent[4]
        else:
            section = FusedSection((
                (S_MANY, (prelude, view._check_fixed_work)),
                view._fs_acq[slot],
                (S_CALL, ent[1]),
            ))
            section.contention_horizon()
            ent[3] = prelude
            ent[4] = section
        res = yield section
        if res.__class__ is int:
            return res
        yield from _release_and_raise([lock], res)

    if prelude is None:
        yield view._check_fixed
    else:
        yield ChargeMany((prelude, view._check_fixed_work))
    yield view._acq[slot] if in_table else Acquire(lock)
    if not in_table:
        try:
            view.resolve(lnvc_id)
        except UnknownLNVCError as exc:
            yield from _release_and_raise([lock], exc)
    base = view.layout.lnvc_off(slot)
    if not u32(base + _L_IN_USE) or u32(base + _L_GEN) != gen:
        try:
            view.resolve(lnvc_id)  # raises with the precise message
        except UnknownLNVCError as exc:
            yield from _release_and_raise([lock], exc)
    epoch = u32(base + _L_CONN_EPOCH)
    hit = view._recv_cache.get((slot, pid))
    if hit is not None and hit[2] == gen and hit[3] == epoch:
        desc = hit[0]
        steps = hit[1]
    else:
        desc, _, steps = _find_recv(view, base, pid)
        if desc == NIL:
            yield from _release_and_raise(
                [lock],
                NotConnectedError(f"pid {pid} holds no receive connection here"),
            )
        view._recv_cache[(slot, pid)] = (desc, steps, gen, epoch)
    if u32(desc + _R_PROTO) == _P_FCFS:
        msg = u32(base + _L_FCFS_HEAD)
    else:
        msg = u32(desc + _R_HEAD)
    count = 0
    while msg != NIL:
        count += 1
        msg = u32(msg + _M_NEXT_MSG)
    walked = steps + count
    yield view._check_walk[walked] if walked < 8 else Charge(
        Work(instrs=walked * c.list_step, label="check-walk")
    )
    yield view._rel[slot] if in_table else Release(lock)
    return count
