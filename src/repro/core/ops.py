"""The eight MPF primitives, written once as effect-yielding generators.

This module is the reproduction of the paper's contribution: the LNVC
(logical, named virtual circuit) message-passing primitives of §2,
implemented over the shared-segment data structures of §3.1 with the
close/retirement semantics of §3.2.

Every primitive is a generator over :mod:`repro.core.effects` objects.  A
runtime drives the generator, interpreting each effect (lock, unlock,
charge simulated time, sleep, wake); the generator's return value is the
primitive's result.  Data-structure mutation happens inline — the shared
region is visible to all runtimes identically — so the primitives contain
the *entire* algorithm and the runtimes contain only "shared memory
allocation and synchronization", the paper's definition of the system
dependent part.

Locking discipline (deadlock-free by global order):

1. ``GLOBAL_LOCK`` — only for open/close (name-table structure),
2. the per-circuit lock ``FIRST_LNVC_LOCK + slot``,
3. ``ALLOC_LOCK`` — free lists, always innermost.

Payload copies (block fill on send, block drain on receive) happen
*outside* the circuit lock.  This is the property that lets BROADCAST
receivers copy the same message concurrently and produces Figure 5's
near-linear scaling ("by allowing the receiver processes to copy messages
concurrently, higher throughputs can be achieved").
"""

from __future__ import annotations

from typing import Generator, Iterable

from .costmodel import DEFAULT_COSTS, Costs
from .effects import Acquire, Charge, Effect, Release, WaitOn, Wake
from .errors import (
    BufferOverflowError,
    DuplicateConnectionError,
    MPFNameError,
    NoFreeLNVCError,
    NotConnectedError,
    OutOfDescriptorsError,
    OutOfMessageMemoryError,
    ProtocolViolationError,
    UnknownLNVCError,
)
from .freelist import fl_alloc, fl_free
from .layout import HDR, MPFConfig, SegmentLayout
from .protocol import (
    ALLOC_LOCK,
    FIRST_LNVC_LOCK,
    GLOBAL_LOCK,
    NAME_MAX,
    NIL,
    MsgFlags,
    Protocol,
)
from .region import SharedRegion
from .structs import BLK_NEXT, LNVC, MSG, RECV, SEND
from .work import Work

__all__ = [
    "MPFView",
    "open_send",
    "open_receive",
    "close_send",
    "close_receive",
    "message_send",
    "message_receive",
    "check_receive",
    "encode_lnvc_id",
    "decode_lnvc_id",
    "SLOT_BITS",
]

OpGen = Generator[Effect, None, object]

#: Bits of an LNVC identifier that address the table slot; the remaining
#: high bits carry the slot's generation so identifiers from a deleted
#: circuit are detected instead of silently aliasing a new one.
SLOT_BITS = 10
_SLOT_MASK = (1 << SLOT_BITS) - 1


def encode_lnvc_id(slot: int, gen: int) -> int:
    """Pack a table slot and its generation into a public identifier."""
    return (gen << SLOT_BITS) | slot


def decode_lnvc_id(lnvc_id: int) -> tuple[int, int]:
    """Unpack a public identifier into ``(slot, generation)``."""
    return lnvc_id & _SLOT_MASK, lnvc_id >> SLOT_BITS


class MPFView:
    """A formatted segment plus its layout and cost model.

    One view is shared by every process of a program (the paper's mapped
    region); it is immutable and carries no per-process state.
    """

    __slots__ = ("region", "layout", "cfg", "costs")

    def __init__(
        self,
        region: SharedRegion,
        layout: SegmentLayout,
        costs: Costs = DEFAULT_COSTS,
    ) -> None:
        self.region = region
        self.layout = layout
        self.cfg: MPFConfig = layout.cfg
        self.costs = costs

    # -- names -------------------------------------------------------------

    @staticmethod
    def encode_name(name: str) -> bytes:
        """Validate and UTF-8 encode an LNVC name."""
        if not isinstance(name, str) or not name:
            raise MPFNameError("LNVC name must be a non-empty string")
        data = name.encode("utf-8")
        if len(data) > NAME_MAX:
            raise MPFNameError(f"LNVC name exceeds {NAME_MAX} bytes")
        return data

    def read_name(self, slot: int) -> bytes:
        base = self.layout.lnvc_off(slot)
        n = LNVC.get(self.region, base, "name_len")
        return self.region.read(base + LNVC.tail_off, n)

    def write_name(self, slot: int, data: bytes) -> None:
        base = self.layout.lnvc_off(slot)
        LNVC.set(self.region, base, "name_len", len(data))
        self.region.write(base + LNVC.tail_off, data)

    # -- addressing ---------------------------------------------------------

    def lnvc_lock(self, slot: int) -> int:
        """Lock index guarding LNVC table slot ``slot``."""
        return FIRST_LNVC_LOCK + slot

    def resolve(self, lnvc_id: int) -> int:
        """Map a public identifier to a live slot or raise.

        Caller must hold either the global lock or the slot's lock.
        """
        slot, gen = decode_lnvc_id(lnvc_id)
        if slot >= self.cfg.max_lnvcs:
            raise UnknownLNVCError(f"lnvc id {lnvc_id}: no such slot")
        base = self.layout.lnvc_off(slot)
        if not LNVC.get(self.region, base, "in_use"):
            raise UnknownLNVCError(f"lnvc id {lnvc_id}: circuit deleted")
        if LNVC.get(self.region, base, "gen") != gen:
            raise UnknownLNVCError(f"lnvc id {lnvc_id}: stale generation")
        return slot

    # -- table search (caller holds GLOBAL_LOCK) ----------------------------

    def find_by_name(self, data: bytes) -> tuple[int | None, int]:
        """Scan the table for a live circuit named ``data``.

        Returns ``(slot_or_None, slots_examined)``; the examination count
        feeds the cost model.
        """
        r, lay = self.region, self.layout
        steps = 0
        for slot in range(self.cfg.max_lnvcs):
            steps += 1
            base = lay.lnvc_off(slot)
            if LNVC.get(r, base, "in_use") and self.read_name(slot) == data:
                return slot, steps
        return None, steps

    def find_free_slot(self) -> tuple[int | None, int]:
        """Scan for an unused table slot; returns ``(slot_or_None, steps)``."""
        r, lay = self.region, self.layout
        steps = 0
        for slot in range(self.cfg.max_lnvcs):
            steps += 1
            if not LNVC.get(r, lay.lnvc_off(slot), "in_use"):
                return slot, steps
        return None, steps


# ---------------------------------------------------------------------------
# internal helpers (all expect the documented locks to be held)
# ---------------------------------------------------------------------------


def _release_and_raise(locks: Iterable[int], exc: Exception) -> OpGen:
    """Release ``locks`` (outermost last) and raise ``exc``."""
    for lock in locks:
        yield Release(lock)
    raise exc


def _find_send(view: MPFView, base: int, pid: int) -> tuple[int, int, int]:
    """Locate ``pid``'s send descriptor: ``(desc_off|NIL, prev_off|NIL, steps)``."""
    r = view.region
    prev, off, steps = NIL, LNVC.get(r, base, "send_list"), 0
    while off != NIL:
        steps += 1
        if SEND.get(r, off, "pid") == pid:
            return off, prev, steps
        prev, off = off, SEND.get(r, off, "next")
    return NIL, NIL, steps


def _find_recv(view: MPFView, base: int, pid: int) -> tuple[int, int, int]:
    """Locate ``pid``'s receive descriptor: ``(desc_off|NIL, prev_off|NIL, steps)``."""
    r = view.region
    prev, off, steps = NIL, LNVC.get(r, base, "recv_list"), 0
    while off != NIL:
        steps += 1
        if RECV.get(r, off, "pid") == pid:
            return off, prev, steps
        prev, off = off, RECV.get(r, off, "next")
    return NIL, NIL, steps


def _conn_count(view: MPFView, base: int) -> int:
    r = view.region
    return (
        LNVC.get(r, base, "n_senders")
        + LNVC.get(r, base, "n_fcfs")
        + LNVC.get(r, base, "n_bcast")
    )


def _retire_check(view: MPFView, msg: int) -> bool:
    """Apply the retirement rule to one message header.

    A message retires (becomes reclaimable) when no broadcast receiver
    still owes it a read, nobody is copying out of it, and its FCFS
    obligation is discharged: either an FCFS receiver took it, or it never
    had an FCFS obligation *and* some receiver existed at enqueue time.
    Messages enqueued into an empty conversation are preserved for a
    future FCFS joiner (paper §3.2).
    """
    r = view.region
    flags = MsgFlags(MSG.get(r, msg, "flags"))
    if flags & MsgFlags.RETIRED:
        return True
    if MSG.get(r, msg, "bcast_pending") or MSG.get(r, msg, "busy"):
        return False
    if flags & MsgFlags.FCFS_TAKEN:
        pass
    elif (flags & MsgFlags.HAD_RECEIVERS) and not (flags & MsgFlags.FCFS_EXPECTED):
        pass
    else:
        return False
    MSG.set(r, msg, "flags", flags | MsgFlags.RETIRED)
    return True


def _free_chain(view: MPFView, msg: int) -> int:
    """Return a message header and its block chain to the free lists.

    Caller holds ``ALLOC_LOCK``.  Returns the number of blocks freed.
    """
    r = view.region
    nblk = 0
    blk = MSG.get(r, msg, "first_blk")
    while blk != NIL:
        nxt = r.u32(blk + BLK_NEXT)
        fl_free(r, HDR.u32["free_blk"], blk)
        blk = nxt
        nblk += 1
    length = MSG.get(r, msg, "length")
    fl_free(r, HDR.u32["free_msg"], msg)
    HDR.add(r, "live_msgs", -1)
    HDR.add(r, "live_blocks", -nblk)
    HDR.add(r, "live_bytes", -length)
    return nblk


def _reap_head(view: MPFView, base: int) -> OpGen:
    """Unlink and free retired messages at the FIFO head.

    Retirement marks messages lazily; physical reclamation happens here,
    only from the head, so the singly linked FIFO never needs a backward
    unlink — our answer to the paper's "particularly vexing" problem.
    Caller holds the circuit lock.
    """
    r = view.region
    c = view.costs
    doomed: list[int] = []
    head = LNVC.get(r, base, "fifo_head")
    while head != NIL and (MSG.get(r, head, "flags") & MsgFlags.RETIRED):
        doomed.append(head)
        head = MSG.get(r, head, "next_msg")
    if not doomed:
        return 0
    LNVC.set(r, base, "fifo_head", head)
    if head == NIL:
        LNVC.set(r, base, "fifo_tail", NIL)
    LNVC.add(r, base, "nmsgs", -len(doomed))
    # The shared FCFS head can never point *behind* the new physical head:
    # if it pointed at a reaped message, advance it to the first survivor
    # that is not FCFS-taken.
    fcfs = LNVC.get(r, base, "fcfs_head")
    if fcfs in doomed:
        LNVC.set(r, base, "fcfs_head", _first_untaken(view, head))
    nblk = 0
    yield Acquire(ALLOC_LOCK)
    for msg in doomed:
        nblk += _free_chain(view, msg)
    yield Release(ALLOC_LOCK)
    yield Charge(
        Work(instrs=len(doomed) * c.msg_discard + nblk * c.blk_free, label="reap")
    )
    return len(doomed)


def _first_untaken(view: MPFView, msg: int) -> int:
    """First message at or after ``msg`` not yet FCFS-taken (or NIL)."""
    r = view.region
    while msg != NIL and (MSG.get(r, msg, "flags") & MsgFlags.FCFS_TAKEN):
        msg = MSG.get(r, msg, "next_msg")
    return msg


def _delete_lnvc(view: MPFView, slot: int) -> OpGen:
    """Discard a circuit whose last connection just closed.

    Paper §2: "If this is the last process connected to lnvc_id, the LNVC
    is deleted and all unread messages are discarded."  Caller holds the
    global lock and the circuit lock.
    """
    r = view.region
    c = view.costs
    base = view.layout.lnvc_off(slot)
    msgs: list[int] = []
    msg = LNVC.get(r, base, "fifo_head")
    while msg != NIL:
        msgs.append(msg)
        msg = MSG.get(r, msg, "next_msg")
    nblk = 0
    if msgs:
        yield Acquire(ALLOC_LOCK)
        for m in msgs:
            nblk += _free_chain(view, m)
        yield Release(ALLOC_LOCK)
    gen = LNVC.get(r, base, "gen")
    LNVC.clear(r, base)
    LNVC.set(r, base, "gen", (gen + 1) & 0x3FFFFF)
    LNVC.set(r, base, "fifo_head", NIL)
    LNVC.set(r, base, "fifo_tail", NIL)
    LNVC.set(r, base, "fcfs_head", NIL)
    LNVC.set(r, base, "send_list", NIL)
    LNVC.set(r, base, "recv_list", NIL)
    HDR.add(r, "live_lnvcs", -1)
    yield Charge(
        Work(
            instrs=len(msgs) * c.msg_discard + nblk * c.blk_free + c.close_fixed // 2,
            label="lnvc-delete",
        )
    )
    return len(msgs)


def _open_common(view: MPFView, data: bytes) -> OpGen:
    """Find or create the circuit named ``data`` (pre-encoded); returns its slot.

    Caller holds the global lock.  On failure releases it and raises.
    """
    r = view.region
    c = view.costs
    slot, steps = view.find_by_name(data)
    if slot is None:
        slot, steps2 = view.find_free_slot()
        steps += steps2
        if slot is None:
            yield from _release_and_raise(
                [GLOBAL_LOCK],
                NoFreeLNVCError(f"all {view.cfg.max_lnvcs} LNVC slots in use"),
            )
        base = view.layout.lnvc_off(slot)
        gen = LNVC.get(r, base, "gen")
        LNVC.clear(r, base)
        LNVC.set(r, base, "gen", gen)
        LNVC.set(r, base, "in_use", 1)
        LNVC.set(r, base, "fifo_head", NIL)
        LNVC.set(r, base, "fifo_tail", NIL)
        LNVC.set(r, base, "fcfs_head", NIL)
        LNVC.set(r, base, "send_list", NIL)
        LNVC.set(r, base, "recv_list", NIL)
        view.write_name(slot, data)
        HDR.add(r, "live_lnvcs", 1)
    yield Charge(Work(instrs=c.open_fixed + steps * c.list_step, label="open"))
    return slot


# ---------------------------------------------------------------------------
# public primitives
# ---------------------------------------------------------------------------


def open_send(view: MPFView, pid: int, name: str) -> OpGen:
    """Establish a send connection for ``pid`` on the circuit ``name``.

    Creates the circuit if it does not exist.  Returns the circuit's
    public identifier for use with :func:`message_send` and
    :func:`close_send` (paper §2, ``open_send``).
    """
    r = view.region
    c = view.costs
    data = view.encode_name(name)  # validate before touching any lock
    yield Acquire(GLOBAL_LOCK)
    slot = yield from _open_common(view, data)
    base = view.layout.lnvc_off(slot)
    lock = view.lnvc_lock(slot)
    yield Acquire(lock)
    desc, _, steps = _find_send(view, base, pid)
    if desc != NIL:
        yield from _release_and_raise(
            [lock, GLOBAL_LOCK],
            DuplicateConnectionError(f"pid {pid} already sends on '{name}'"),
        )
    yield Acquire(ALLOC_LOCK)
    desc = fl_alloc(r, HDR.u32["free_send"])
    yield Release(ALLOC_LOCK)
    if desc == NIL:
        yield from _release_and_raise(
            [lock, GLOBAL_LOCK],
            OutOfDescriptorsError("send descriptor pool exhausted"),
        )
    SEND.set(r, desc, "pid", pid)
    SEND.set(r, desc, "next", LNVC.get(r, base, "send_list"))
    LNVC.set(r, base, "send_list", desc)
    LNVC.add(r, base, "n_senders", 1)
    yield Charge(Work(instrs=steps * c.list_step + 4 * c.list_step, label="open_send"))
    yield Release(lock)
    yield Release(GLOBAL_LOCK)
    return encode_lnvc_id(slot, LNVC.get(r, base, "gen"))


def open_receive(view: MPFView, pid: int, name: str, protocol: Protocol) -> OpGen:
    """Establish a receive connection with the given protocol.

    ``protocol`` is :data:`~repro.core.protocol.FCFS` or
    :data:`~repro.core.protocol.BROADCAST`.  A process may not hold both
    kinds on one circuit (paper §1 footnote 3).  A BROADCAST connection
    starts at the current FIFO tail: the receiver hears only messages sent
    after it joined the conversation.  Returns the circuit identifier.
    """
    proto = Protocol(protocol)
    r = view.region
    c = view.costs
    data = view.encode_name(name)  # validate before touching any lock
    yield Acquire(GLOBAL_LOCK)
    slot = yield from _open_common(view, data)
    base = view.layout.lnvc_off(slot)
    lock = view.lnvc_lock(slot)
    yield Acquire(lock)
    desc, _, steps = _find_recv(view, base, pid)
    if desc != NIL:
        have = Protocol(RECV.get(r, desc, "proto"))
        exc: Exception
        if have == proto:
            exc = DuplicateConnectionError(
                f"pid {pid} already receives ({have.name}) on '{name}'"
            )
        else:
            exc = ProtocolViolationError(
                f"pid {pid} cannot mix FCFS and BROADCAST on '{name}'"
            )
        yield from _release_and_raise([lock, GLOBAL_LOCK], exc)
    yield Acquire(ALLOC_LOCK)
    desc = fl_alloc(r, HDR.u32["free_recv"])
    yield Release(ALLOC_LOCK)
    if desc == NIL:
        yield from _release_and_raise(
            [lock, GLOBAL_LOCK],
            OutOfDescriptorsError("receive descriptor pool exhausted"),
        )
    RECV.set(r, desc, "pid", pid)
    RECV.set(r, desc, "proto", proto)
    RECV.set(r, desc, "head", NIL)
    RECV.set(r, desc, "nreads", 0)
    RECV.set(r, desc, "next", LNVC.get(r, base, "recv_list"))
    LNVC.set(r, base, "recv_list", desc)
    LNVC.add(r, base, "n_fcfs" if proto is Protocol.FCFS else "n_bcast", 1)
    yield Charge(
        Work(instrs=steps * c.list_step + 4 * c.list_step, label="open_receive")
    )
    yield Release(lock)
    yield Release(GLOBAL_LOCK)
    return encode_lnvc_id(slot, LNVC.get(r, base, "gen"))


def close_send(view: MPFView, pid: int, lnvc_id: int) -> OpGen:
    """Remove ``pid``'s send connection from the circuit.

    If this was the last connection of any kind, the circuit is deleted
    and all unread messages are discarded (paper §2).
    """
    r = view.region
    c = view.costs
    yield Acquire(GLOBAL_LOCK)
    try:
        slot = view.resolve(lnvc_id)
    except UnknownLNVCError as exc:
        yield from _release_and_raise([GLOBAL_LOCK], exc)
    base = view.layout.lnvc_off(slot)
    lock = view.lnvc_lock(slot)
    yield Acquire(lock)
    desc, prev, steps = _find_send(view, base, pid)
    if desc == NIL:
        yield from _release_and_raise(
            [lock, GLOBAL_LOCK],
            NotConnectedError(f"pid {pid} holds no send connection here"),
        )
    nxt = SEND.get(r, desc, "next")
    if prev == NIL:
        LNVC.set(r, base, "send_list", nxt)
    else:
        SEND.set(r, prev, "next", nxt)
    yield Acquire(ALLOC_LOCK)
    fl_free(r, HDR.u32["free_send"], desc)
    yield Release(ALLOC_LOCK)
    LNVC.add(r, base, "n_senders", -1)
    yield Charge(Work(instrs=c.close_fixed + steps * c.list_step, label="close_send"))
    if _conn_count(view, base) == 0:
        yield from _delete_lnvc(view, slot)
    yield Release(lock)
    yield Release(GLOBAL_LOCK)
    # A receiver blocked on this circuit cannot be woken by future sends
    # if the circuit was just deleted; it stays blocked, exactly as the C
    # implementation would leave it.  (The simulator's deadlock detector
    # surfaces this programming error; see paper §3.2 on lost messages.)
    return None


def close_receive(view: MPFView, pid: int, lnvc_id: int) -> OpGen:
    """Remove ``pid``'s receive connection from the circuit.

    For a BROADCAST receiver, every message it had not yet read sheds one
    pending reader — the "particularly vexing" bookkeeping of paper §3.2,
    done here with per-message counters instead of head-pointer
    comparisons.  Deletes the circuit if this was the last connection.
    """
    r = view.region
    c = view.costs
    yield Acquire(GLOBAL_LOCK)
    try:
        slot = view.resolve(lnvc_id)
    except UnknownLNVCError as exc:
        yield from _release_and_raise([GLOBAL_LOCK], exc)
    base = view.layout.lnvc_off(slot)
    lock = view.lnvc_lock(slot)
    yield Acquire(lock)
    desc, prev, steps = _find_recv(view, base, pid)
    if desc == NIL:
        yield from _release_and_raise(
            [lock, GLOBAL_LOCK],
            NotConnectedError(f"pid {pid} holds no receive connection here"),
        )
    proto = Protocol(RECV.get(r, desc, "proto"))
    walked = 0
    if proto is Protocol.BROADCAST:
        msg = RECV.get(r, desc, "head")
        while msg != NIL:
            MSG.add(r, msg, "bcast_pending", -1)
            _retire_check(view, msg)
            msg = MSG.get(r, msg, "next_msg")
            walked += 1
        LNVC.add(r, base, "n_bcast", -1)
    else:
        LNVC.add(r, base, "n_fcfs", -1)
    nxt = RECV.get(r, desc, "next")
    if prev == NIL:
        LNVC.set(r, base, "recv_list", nxt)
    else:
        RECV.set(r, prev, "next", nxt)
    yield Acquire(ALLOC_LOCK)
    fl_free(r, HDR.u32["free_recv"], desc)
    yield Release(ALLOC_LOCK)
    yield Charge(
        Work(
            instrs=c.close_fixed + (steps + walked) * c.list_step,
            label="close_receive",
        )
    )
    yield from _reap_head(view, base)
    if _conn_count(view, base) == 0:
        yield from _delete_lnvc(view, slot)
    yield Release(lock)
    yield Release(GLOBAL_LOCK)
    return None


def message_send(view: MPFView, pid: int, lnvc_id: int, data: bytes) -> OpGen:
    """Asynchronously send ``data`` to the circuit.

    The payload is copied into a chain of fixed-size message blocks
    allocated from the shared free list, then the chain is linked at the
    FIFO tail and waiting receivers are woken.  The sender continues as
    soon as the message is queued ("Message sending is asynchronous,
    allowing a process to proceed before the message reaches its
    destination(s)", paper §2).  Returns the message's sequence number on
    the circuit.

    Raises :class:`OutOfMessageMemoryError` when the header or block pool
    is exhausted — the hard edge of the ``init()`` sizing estimate.
    """
    if not isinstance(data, (bytes, bytearray, memoryview)):
        raise TypeError("message payload must be bytes-like")
    data = bytes(data)
    r = view.region
    c = view.costs
    lay = view.layout
    bs = view.cfg.block_size
    length = len(data)
    nblk = (length + bs - 1) // bs
    yield Charge(Work(instrs=c.send_fixed, label="send-fixed"))

    # Phase 1: allocation.  Blocks are private until linked, so only the
    # free lists need the allocator lock.
    yield Acquire(ALLOC_LOCK)
    hdr = fl_alloc(r, HDR.u32["free_msg"])
    if hdr == NIL:
        yield from _release_and_raise(
            [ALLOC_LOCK], OutOfMessageMemoryError("message header pool exhausted")
        )
    blocks: list[int] = []
    for _ in range(nblk):
        blk = fl_alloc(r, HDR.u32["free_blk"])
        if blk == NIL:
            for b in blocks:
                fl_free(r, HDR.u32["free_blk"], b)
            fl_free(r, HDR.u32["free_msg"], hdr)
            yield from _release_and_raise(
                [ALLOC_LOCK],
                OutOfMessageMemoryError(
                    f"block pool exhausted ({nblk}-block message)"
                ),
            )
        blocks.append(blk)
    HDR.add(r, "live_msgs", 1)
    HDR.add(r, "live_blocks", nblk)
    live = HDR.add(r, "live_bytes", length)
    if live > HDR.get(r, "hwm_live_bytes"):
        HDR.set(r, "hwm_live_bytes", live)
    live_msgs = HDR.get(r, "live_msgs")
    if live_msgs > HDR.get(r, "hwm_live_msgs"):
        HDR.set(r, "hwm_live_msgs", live_msgs)
    yield Charge(Work(instrs=(nblk + 1) * c.blk_alloc, label="send-alloc"))
    yield Release(ALLOC_LOCK)

    # Phase 2: fill the private chain — outside every lock.
    for i, blk in enumerate(blocks):
        nxt = blocks[i + 1] if i + 1 < nblk else NIL
        r.set_u32(blk + BLK_NEXT, nxt)
        r.write(blk + 4, data[i * bs : min((i + 1) * bs, length)])
    yield Charge(
        Work(
            instrs=nblk * c.blk_fill + length * c.copy_byte,
            copy_bytes=length,
            blocks=nblk,
            page_bytes=nblk * lay.blk_stride + MSG.size,
            label="send-copy",
        )
    )

    # Phase 3: link at the FIFO tail under the circuit lock.
    slot, gen = decode_lnvc_id(lnvc_id)
    lock = view.lnvc_lock(slot) if slot < view.cfg.max_lnvcs else GLOBAL_LOCK
    yield Acquire(lock)
    try:
        view.resolve(lnvc_id)
        base = lay.lnvc_off(slot)
        sd, _, steps = _find_send(view, base, pid)
        if sd == NIL:
            raise NotConnectedError(f"pid {pid} holds no send connection here")
    except (UnknownLNVCError, NotConnectedError) as exc:
        yield Release(lock)
        yield Acquire(ALLOC_LOCK)
        for b in blocks:
            fl_free(r, HDR.u32["free_blk"], b)
        fl_free(r, HDR.u32["free_msg"], hdr)
        HDR.add(r, "live_msgs", -1)
        HDR.add(r, "live_blocks", -nblk)
        HDR.add(r, "live_bytes", -length)
        yield from _release_and_raise([ALLOC_LOCK], exc)

    n_fcfs = LNVC.get(r, base, "n_fcfs")
    n_bcast = LNVC.get(r, base, "n_bcast")
    flags = MsgFlags.NONE
    if n_fcfs:
        flags |= MsgFlags.FCFS_EXPECTED
    if n_fcfs or n_bcast:
        flags |= MsgFlags.HAD_RECEIVERS
    seqno = LNVC.get(r, base, "seq")
    LNVC.set(r, base, "seq", seqno + 1)
    MSG.set(r, hdr, "length", length)
    MSG.set(r, hdr, "nblocks", nblk)
    MSG.set(r, hdr, "first_blk", blocks[0] if blocks else NIL)
    MSG.set(r, hdr, "next_msg", NIL)
    MSG.set(r, hdr, "bcast_pending", n_bcast)
    MSG.set(r, hdr, "busy", 0)
    MSG.set(r, hdr, "flags", flags)
    MSG.set(r, hdr, "seqno", seqno)
    MSG.set(r, hdr, "sender", pid)
    tail = LNVC.get(r, base, "fifo_tail")
    if tail == NIL:
        LNVC.set(r, base, "fifo_head", hdr)
    else:
        MSG.set(r, tail, "next_msg", hdr)
    LNVC.set(r, base, "fifo_tail", hdr)
    depth = LNVC.add(r, base, "nmsgs", 1)
    if depth > LNVC.get(r, base, "hwm_nmsgs"):
        LNVC.set(r, base, "hwm_nmsgs", depth)
    if LNVC.get(r, base, "fcfs_head") == NIL:
        LNVC.set(r, base, "fcfs_head", hdr)
    # Point every caught-up BROADCAST receiver at the new message.
    rsteps = 0
    desc = LNVC.get(r, base, "recv_list")
    while desc != NIL:
        rsteps += 1
        if (
            Protocol(RECV.get(r, desc, "proto")) is Protocol.BROADCAST
            and RECV.get(r, desc, "head") == NIL
        ):
            RECV.set(r, desc, "head", hdr)
        desc = RECV.get(r, desc, "next")
    HDR.add(r, "total_sends", 1)
    HDR.add(r, "total_bytes_sent", length)
    yield Charge(
        Work(
            instrs=c.msg_link + (steps + rsteps) * c.list_step,
            label="send-link",
        )
    )
    yield Release(lock)
    yield Wake(slot)
    return seqno


def message_receive(
    view: MPFView, pid: int, lnvc_id: int, max_len: int | None = None
) -> OpGen:
    """Receive the next message for ``pid`` from the circuit; blocking.

    FCFS connections consume the oldest message not yet taken by any FCFS
    receiver; BROADCAST connections read the oldest message past their
    individual head pointer.  The payload copy out of the block chain
    happens outside the circuit lock, so concurrent receivers overlap
    (Figure 5).  Returns the payload bytes.

    If ``max_len`` is given and the next message is longer, raises
    :class:`BufferOverflowError` *without* consuming the message — the
    safe analogue of the C interface's caller-supplied buffer.
    """
    r = view.region
    c = view.costs
    yield Charge(Work(instrs=c.recv_fixed, label="recv-fixed"))
    slot, gen = decode_lnvc_id(lnvc_id)
    lock = view.lnvc_lock(slot) if slot < view.cfg.max_lnvcs else GLOBAL_LOCK
    yield Acquire(lock)
    try:
        view.resolve(lnvc_id)
    except UnknownLNVCError as exc:
        yield from _release_and_raise([lock], exc)
    base = view.layout.lnvc_off(slot)
    desc, _, steps = _find_recv(view, base, pid)
    if desc == NIL:
        yield from _release_and_raise(
            [lock], NotConnectedError(f"pid {pid} holds no receive connection here")
        )
    proto = Protocol(RECV.get(r, desc, "proto"))
    yield Charge(Work(instrs=steps * c.list_step, label="recv-find"))

    msg = NIL
    while True:
        if proto is Protocol.FCFS:
            msg = LNVC.get(r, base, "fcfs_head")
        else:
            msg = RECV.get(r, desc, "head")
        if msg != NIL:
            break
        # Nothing available: sleep on the circuit's wait channel.  WaitOn
        # atomically releases the lock and reacquires it on wake, closing
        # the lost wake-up window.
        yield WaitOn(slot, lock)
        yield Charge(Work(instrs=c.waiter_wakeup, label="recv-wakeup"))

    length = MSG.get(r, msg, "length")
    if max_len is not None and length > max_len:
        yield from _release_and_raise(
            [lock],
            BufferOverflowError(
                f"next message is {length} bytes, buffer holds {max_len}"
            ),
        )

    # Claim the message under the lock, then copy outside it.
    MSG.add(r, msg, "busy", 1)
    if proto is Protocol.FCFS:
        MSG.set(r, msg, "flags", MSG.get(r, msg, "flags") | MsgFlags.FCFS_TAKEN)
        LNVC.set(
            r, base, "fcfs_head", _first_untaken(view, MSG.get(r, msg, "next_msg"))
        )
    else:
        RECV.set(r, desc, "head", MSG.get(r, msg, "next_msg"))
    RECV.add(r, desc, "nreads", 1)
    nblk = MSG.get(r, msg, "nblocks")
    first = MSG.get(r, msg, "first_blk")
    yield Release(lock)

    # Copy phase — concurrent with other receivers of the same message.
    bs = view.cfg.block_size
    parts: list[bytes] = []
    blk, remaining = first, length
    while blk != NIL and remaining > 0:
        take = min(bs, remaining)
        parts.append(r.read(blk + 4, take))
        remaining -= take
        blk = r.u32(blk + BLK_NEXT)
    payload = b"".join(parts)
    yield Charge(
        Work(
            instrs=nblk * c.blk_drain + length * c.copy_byte,
            copy_bytes=length,
            blocks=nblk,
            label="recv-copy",
        )
    )

    # Completion: drop the busy pin, account the read, retire and reap.
    yield Acquire(lock)
    MSG.add(r, msg, "busy", -1)
    if proto is Protocol.BROADCAST:
        MSG.add(r, msg, "bcast_pending", -1)
    _retire_check(view, msg)
    yield Charge(Work(instrs=c.msg_retire, label="recv-retire"))
    yield from _reap_head(view, base)
    HDR.add(r, "total_receives", 1)
    HDR.add(r, "total_bytes_received", length)
    yield Release(lock)
    return payload


def check_receive(view: MPFView, pid: int, lnvc_id: int) -> OpGen:
    """Count the messages currently available to ``pid`` on the circuit.

    Returns 0 when nothing is queued for this receiver.  For an FCFS
    connection the count is advisory only: another FCFS receiver "may
    acquire the message before the checking process can receive the
    message" (paper §2) — the count can be stale the moment the lock is
    released.  For BROADCAST the counted messages are guaranteed to be
    deliverable to this receiver.
    """
    r = view.region
    c = view.costs
    yield Charge(Work(instrs=c.check_fixed, label="check-fixed"))
    slot, gen = decode_lnvc_id(lnvc_id)
    lock = view.lnvc_lock(slot) if slot < view.cfg.max_lnvcs else GLOBAL_LOCK
    yield Acquire(lock)
    try:
        view.resolve(lnvc_id)
    except UnknownLNVCError as exc:
        yield from _release_and_raise([lock], exc)
    base = view.layout.lnvc_off(slot)
    desc, _, steps = _find_recv(view, base, pid)
    if desc == NIL:
        yield from _release_and_raise(
            [lock], NotConnectedError(f"pid {pid} holds no receive connection here")
        )
    proto = Protocol(RECV.get(r, desc, "proto"))
    if proto is Protocol.FCFS:
        msg = LNVC.get(r, base, "fcfs_head")
    else:
        msg = RECV.get(r, desc, "head")
    count = 0
    while msg != NIL:
        count += 1
        msg = MSG.get(r, msg, "next_msg")
    yield Charge(
        Work(instrs=(steps + count) * c.list_step, label="check-walk")
    )
    yield Release(lock)
    return count
