"""Effect objects yielded by MPF primitives.

The paper's portability claim — "the only system dependent code involves
shared memory allocation and synchronization" — is realized here as an
*effect protocol*.  MPF primitives are written once, as generators that
mutate the shared region directly but **yield** every system-dependent
action as a small effect object.  Each runtime interprets the effects:

====================  ============================  =========================
effect                simulated machine              real runtimes
====================  ============================  =========================
:class:`Acquire`      queue on a simulated lock,    ``lock.acquire()``
                      advancing the virtual clock
:class:`Release`      hand the lock to the next     ``lock.release()``
                      waiter
:class:`Charge`       price the work and advance    ignored (time passes on
                      the clock                     its own)
:class:`WaitOn`       atomically release the lock,  ``condition.wait()``
                      sleep on a channel, reacquire
                      on wake
:class:`Wake`         wake every channel sleeper    ``condition.notify_all()``
====================  ============================  =========================

``WaitOn`` has condition-variable semantics: the caller must hold
``lock_id``; on resumption the lock is held again.  This closes the lost
wake-up window between "queue is empty" and "go to sleep" on every
runtime, which is the classic hazard of the blocking
``message_receive`` primitive (paper §2: "Message_receive() is blocking;
it returns only after a message has been received").
"""

from __future__ import annotations

from dataclasses import dataclass

from .work import Work

__all__ = ["Acquire", "Release", "Charge", "ChargeMany", "WaitOn", "Wake", "Effect"]


@dataclass(frozen=True, slots=True)
class Acquire:
    """Take exclusive ownership of lock ``lock_id`` (blocking)."""

    lock_id: int


@dataclass(frozen=True, slots=True)
class Release:
    """Give up ownership of lock ``lock_id``."""

    lock_id: int


@dataclass(frozen=True, slots=True)
class Charge:
    """Account for ``work`` units of machine activity."""

    work: Work


@dataclass(frozen=True, slots=True)
class ChargeMany:
    """Account for several adjacent pieces of work in one effect.

    Semantically equivalent to yielding one :class:`Charge` per element
    of ``works`` back to back, but costs a single scheduler round-trip —
    the fast path for hot sections that interleave application compute
    with a primitive's fixed cost (e.g. a poll loop's backoff charge
    followed by ``check_receive``'s entry charge).

    Each part keeps its own :class:`~repro.core.work.Work` label, so
    per-label accounting (Tracer tables, Recorder charge splits) is
    unchanged.  Restriction: parts must be instruction/flop-only work
    (no ``copy_bytes``/``blocks``/``page_bytes``), because those feed
    stateful bus/cache/VM models whose inputs may move between two
    separate charge events; pure compute prices identically either way
    as long as the run is not oversubscribed (more runnable processes
    than simulated CPUs) — which none of the paper's workloads are.
    """

    works: tuple[Work, ...]


@dataclass(frozen=True, slots=True)
class WaitOn:
    """Sleep on wait channel ``chan``; caller holds ``lock_id``.

    The runtime releases ``lock_id``, suspends the process until another
    process executes :class:`Wake` on the same channel, then reacquires
    ``lock_id`` before resuming the caller — exactly a condition variable
    built over the LNVC's lock.
    """

    chan: int
    lock_id: int


@dataclass(frozen=True, slots=True)
class Wake:
    """Wake every process sleeping on wait channel ``chan``.

    Wake-all (rather than wake-one) is deliberate: with several FCFS
    receivers parked on one circuit, all of them race for the message and
    exactly one wins — the same race the paper documents for
    ``check_receive`` (§2) and blames for the small-message throughput
    decline of Figure 4.
    """

    chan: int


Effect = Acquire | Release | Charge | ChargeMany | WaitOn | Wake
