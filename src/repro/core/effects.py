"""Effect objects yielded by MPF primitives.

The paper's portability claim — "the only system dependent code involves
shared memory allocation and synchronization" — is realized here as an
*effect protocol*.  MPF primitives are written once, as generators that
mutate the shared region directly but **yield** every system-dependent
action as a small effect object.  Each runtime interprets the effects:

====================  ============================  =========================
effect                simulated machine              real runtimes
====================  ============================  =========================
:class:`Acquire`      queue on a simulated lock,    ``lock.acquire()``
                      advancing the virtual clock
:class:`Release`      hand the lock to the next     ``lock.release()``
                      waiter
:class:`Charge`       price the work and advance    ignored (time passes on
                      the clock                     its own)
:class:`WaitOn`       atomically release the lock,  ``condition.wait()``
                      sleep on a channel, reacquire
                      on wake
:class:`Wake`         wake every channel sleeper    ``condition.notify_all()``
====================  ============================  =========================

``WaitOn`` has condition-variable semantics: the caller must hold
``lock_id``; on resumption the lock is held again.  This closes the lost
wake-up window between "queue is empty" and "go to sleep" on every
runtime, which is the classic hazard of the blocking
``message_receive`` primitive (paper §2: "Message_receive() is blocking;
it returns only after a message has been received").
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .work import Work

__all__ = [
    "Acquire",
    "Release",
    "Charge",
    "ChargeMany",
    "WaitOn",
    "Wake",
    "FusedSection",
    "Effect",
    "steps_horizon",
    "S_CHARGE",
    "S_MANY",
    "S_ACQ",
    "S_REL",
    "S_WAKE",
    "S_CALL",
    "D_RESULT",
    "D_SPLICE",
    "D_RESULT_SPLICE",
    "D_BAIL",
]

# -- fused-section step opcodes and call directives -------------------------
#
# A FusedSection's ``steps`` are small ``(opcode, arg)`` tuples.  Plain
# ints (not an Enum) keep the simulator's per-step dispatch at a couple of
# machine comparisons — these run once per protocol step, millions of
# times per figure sweep.

#: ``(S_CHARGE, work)`` — one :class:`Charge` event.
S_CHARGE = 0
#: ``(S_MANY, works)`` — one :class:`ChargeMany` event (compute-only parts).
S_MANY = 1
#: ``(S_ACQ, lock_id)`` — one :class:`Acquire` event (may block).
S_ACQ = 2
#: ``(S_REL, lock_id)`` — one :class:`Release` event.
S_REL = 3
#: ``(S_WAKE, chan)`` — one :class:`Wake` event.
S_WAKE = 4
#: ``(S_CALL, fn)`` — run ``fn()`` at the current instant (no event, no
#: simulated time): the generator-body code that would execute between
#: two yields in the unfused sequence.  ``fn`` returns ``None`` or a
#: directive tuple (below).
S_CALL = 5

#: ``(D_RESULT, value)`` — set the section's result (sent into the
#: generator when the section completes).
D_RESULT = 0
#: ``(D_SPLICE, steps)`` — splice more steps right after the call;
#: how a body whose continuation depends on shared state (list walks,
#: retirement reaps) extends the section it is part of.
D_SPLICE = 1
#: ``(D_RESULT_SPLICE, value, steps)`` — both at once.
D_RESULT_SPLICE = 2
#: ``(D_BAIL, value)`` — abandon the remaining steps and resume the
#: generator *now* with ``value``.  The fusion guard: any precondition
#: the fused fast path cannot handle (queue empty and a WaitOn must
#: fire, a validation error, a full ring) bails back to the generator's
#: classic unfused code with all acquired locks still held.
D_BAIL = 3


@dataclass(frozen=True, slots=True)
class Acquire:
    """Take exclusive ownership of lock ``lock_id`` (blocking)."""

    lock_id: int


@dataclass(frozen=True, slots=True)
class Release:
    """Give up ownership of lock ``lock_id``."""

    lock_id: int


@dataclass(frozen=True, slots=True)
class Charge:
    """Account for ``work`` units of machine activity."""

    work: Work


@dataclass(frozen=True, slots=True)
class ChargeMany:
    """Account for several adjacent pieces of work in one effect.

    Semantically equivalent to yielding one :class:`Charge` per element
    of ``works`` back to back, but costs a single scheduler round-trip —
    the fast path for hot sections that interleave application compute
    with a primitive's fixed cost (e.g. a poll loop's backoff charge
    followed by ``check_receive``'s entry charge).

    Each part keeps its own :class:`~repro.core.work.Work` label, so
    per-label accounting (Tracer tables, Recorder charge splits) is
    unchanged.  Restriction: parts must be instruction/flop-only work
    (no ``copy_bytes``/``blocks``/``page_bytes``), because those feed
    stateful bus/cache/VM models whose inputs may move between two
    separate charge events; pure compute prices identically either way
    as long as the run is not oversubscribed (more runnable processes
    than simulated CPUs) — which none of the paper's workloads are.
    """

    works: tuple[Work, ...]


@dataclass(frozen=True, slots=True)
class WaitOn:
    """Sleep on wait channel ``chan``; caller holds ``lock_id``.

    The runtime releases ``lock_id``, suspends the process until another
    process executes :class:`Wake` on the same channel, then reacquires
    ``lock_id`` before resuming the caller — exactly a condition variable
    built over the LNVC's lock.
    """

    chan: int
    lock_id: int


@dataclass(frozen=True, slots=True)
class Wake:
    """Wake every process sleeping on wait channel ``chan``.

    Wake-all (rather than wake-one) is deliberate: with several FCFS
    receivers parked on one circuit, all of them race for the message and
    exactly one wins — the same race the paper documents for
    ``check_receive`` (§2) and blames for the small-message throughput
    decline of Figure 4.
    """

    chan: int


@dataclass(frozen=True, slots=True)
class FusedSection:
    """An entire protocol section retired as one effect (sim engine only).

    ``steps`` is a tuple of ``(opcode, arg)`` pairs (see the ``S_*``
    constants above): the acquire + fixed charges + list/copy work +
    release of one uncontended protocol step, interleaved with
    ``S_CALL`` closures holding the generator-body code that runs
    between the unfused yields.  The simulated engine executes the
    whole section inline while no other process can interact — same
    events, same clock arithmetic, same recorder/trace stream as the
    unfused sequence, but one generator round-trip instead of ~10 —
    and falls back to event-at-a-time stepping on lock contention, in
    controlled-scheduler runs, or when a call bails (``D_BAIL``).

    Conventions that keep fused and unfused runs byte-identical:

    * Only the sim engine sees this effect.  Primitives consult
      ``view.fuse`` (set by :class:`~repro.runtime.sim.SimRuntime` and
      the model checker only) and yield classic effects on the real
      runtimes — and when ``MPF_FUSION=off``.
    * ``S_WAKE`` steps must appear *statically* in ``steps`` as yielded
      — never introduced by a splice — so fault injectors
      (:func:`repro.check.faults.drop_wake`) can strip them; a wake
      whose firing is conditional stays a classic :class:`Wake` yield.
    * Copy charges (``copy_bytes > 0``) are allowed: the engine opens
      and closes the bus-tracking copy phase at the same instants as
      the unfused charge.
    """

    steps: tuple
    #: Memoized :func:`steps_horizon` of ``steps`` (lazy; excluded from
    #: equality/hash so memoized sections stay interchangeable).
    _hzn: object = field(default=None, compare=False, repr=False)
    #: Priced-horizon memo owned by the sim engine's epoch batcher
    #: (``machine/engine.py``): ``(analytic_key, parts, stop_idx,
    #: base_dts, base_total)`` where ``base_dts`` are the horizon parts'
    #: un-oversubscribed durations under ``analytic_key``'s timing
    #: constants.  Keyed by the timing model's ``analytic_charge`` tuple
    #: (identity-checked) so a section can never be replayed under
    #: constants it was not priced for.
    _priced: object = field(default=None, compare=False, repr=False)

    def contention_horizon(self):
        """The section's analytically-priceable prefix, memoized.

        Returns ``(parts, stop_idx, stop_op)`` — see :func:`steps_horizon`.
        Sections are cached per ``(slot, pid)`` in ``core/ops.py`` /
        ``core/transport.py`` and reused across millions of events, so
        the flattening runs once per cached section, not once per send.
        The memo only ever describes the *static* ``steps`` tuple: a
        spliced continuation replaces the interpreter's local steps
        list, never this object's field.
        """
        h = self._hzn
        if h is None:
            h = steps_horizon(self.steps)
            object.__setattr__(self, "_hzn", h)
        return h


def steps_horizon(steps: tuple, idx: int = 0):
    """Flatten the pure-compute prefix of a fused-section step list.

    Scans ``steps`` from ``idx`` collecting ``S_CHARGE``/``S_MANY`` parts
    whose :class:`~repro.core.work.Work` is instruction/flop-only —
    exactly the work the engine can price with the closed-form
    expression ``instrs*t_instr + flops*t_flop`` (× the oversubscription
    stretch), bit-for-bit what ``BalanceTiming.price`` computes for it.
    The scan stops at the first step that can interact with anything
    outside the process: a lock acquire/release, a wake, a call (whose
    directive may splice), or a charge carrying ``copy_bytes`` /
    ``blocks`` / ``page_bytes`` (stateful bus/cache/VM inputs).

    Returns ``(parts, stop_idx, stop_op)`` where ``parts`` is the flat
    tuple of :class:`Work` parts (one simulated event each — the flat
    length IS the event count, since ``S_MANY`` with ``k`` parts retires
    ``k`` events), ``stop_idx`` indexes the first unconsumed step, and
    ``stop_op`` is its opcode (``None`` if the section ends first).
    This is the "contention horizon" of the epoch batcher
    (``machine/engine.py``): until ``stop_idx`` the process provably
    cannot contend, so its timeline may be advanced in one batch.
    """
    parts: list = []
    i = idx
    n = len(steps)
    while i < n:
        op, arg = steps[i]
        if op == S_CHARGE:
            if arg.copy_bytes or arg.blocks or arg.page_bytes:
                break
            parts.append(arg)
        elif op == S_MANY:
            if not arg or any(
                    w.copy_bytes or w.blocks or w.page_bytes for w in arg):
                break
            parts.extend(arg)
        else:
            break
        i += 1
    return tuple(parts), i, (steps[i][0] if i < n else None)


Effect = Acquire | Release | Charge | ChargeMany | WaitOn | Wake | FusedSection
