"""Flat shared byte region with typed accessors.

All MPF state — LNVC descriptors, connection descriptors, message headers
and 10-byte message blocks — lives in one contiguous byte region, addressed
by 32-bit byte offsets, exactly as the paper's C implementation lays its
structures out in a mapped shared-memory segment (§3.1, §4: "shared memory
used by MPF is implemented by mapping a region of physical memory into the
virtual address space of each process").

A :class:`SharedRegion` wraps any writable buffer:

* a ``bytearray`` for the thread runtime and the simulated machine,
* the ``buf`` of a ``multiprocessing.shared_memory.SharedMemory`` for the
  process runtime.

Keeping the structures byte-level (rather than Python objects) is what
makes the three runtimes share one implementation: bytes are the only data
model that a forked process, a thread and a simulated processor can all
address identically.
"""

from __future__ import annotations

import struct

__all__ = ["SharedRegion"]

_U32 = struct.Struct("<I")
_U64 = struct.Struct("<Q")


class SharedRegion:
    """A byte-addressable shared segment.

    Parameters
    ----------
    buf:
        Any object satisfying the writable buffer protocol with a stable
        length (``bytearray``, ``memoryview``, ``mmap``, shared memory).
    """

    __slots__ = ("_mv", "size", "u32", "set_u32")

    def __init__(self, buf) -> None:
        mv = memoryview(buf).cast("B")
        if mv.readonly:
            raise ValueError("SharedRegion requires a writable buffer")
        self._mv = mv
        self.size = len(mv)

        # -- 32-bit words -------------------------------------------------
        # ``u32`` / ``set_u32`` run millions of times per figure sweep.
        # They are bound as per-instance closures over the memoryview
        # rather than methods: a closure call skips the descriptor lookup
        # and the ``self`` rebinding a bound method pays on every call.
        unpack_from = _U32.unpack_from
        pack_into = _U32.pack_into

        def u32(off: int) -> int:
            """Read the little-endian u32 at byte offset ``off``."""
            return unpack_from(mv, off)[0]

        def set_u32(off: int, value: int) -> None:
            """Write ``value`` as a little-endian u32 at byte offset ``off``."""
            pack_into(mv, off, value & 0xFFFFFFFF)

        self.u32 = u32
        self.set_u32 = set_u32

    def add_u32(self, off: int, delta: int) -> int:
        """Add ``delta`` (may be negative) to the u32 at ``off``.

        Returns the new value.  This is *not* atomic with respect to other
        processes — callers must hold the lock that guards the word, just
        as the C implementation serializes access with its synchronization
        variables.
        """
        value = (self.u32(off) + delta) & 0xFFFFFFFF
        self.set_u32(off, value)
        return value

    # -- 64-bit words (statistics counters only) --------------------------

    def u64(self, off: int) -> int:
        """Read the little-endian u64 at byte offset ``off``."""
        return _U64.unpack_from(self._mv, off)[0]

    def set_u64(self, off: int, value: int) -> None:
        """Write ``value`` as a little-endian u64 at byte offset ``off``."""
        _U64.pack_into(self._mv, off, value & 0xFFFFFFFFFFFFFFFF)

    def add_u64(self, off: int, delta: int) -> int:
        """Add ``delta`` to the u64 at ``off`` (non-atomic; hold a lock)."""
        value = (self.u64(off) + delta) & 0xFFFFFFFFFFFFFFFF
        self.set_u64(off, value)
        return value

    # -- raw bytes ---------------------------------------------------------

    def read(self, off: int, n: int) -> bytes:
        """Copy ``n`` bytes starting at ``off`` out of the region."""
        if off < 0 or off + n > self.size:
            raise IndexError(f"read [{off}, {off + n}) outside region of {self.size}")
        return bytes(self._mv[off : off + n])

    def write(self, off: int, data: bytes) -> None:
        """Copy ``data`` into the region starting at ``off``."""
        end = off + len(data)
        if off < 0 or end > self.size:
            raise IndexError(f"write [{off}, {end}) outside region of {self.size}")
        self._mv[off:end] = data

    def fill(self, off: int, n: int, byte: int = 0) -> None:
        """Set ``n`` bytes starting at ``off`` to ``byte``."""
        self._mv[off : off + n] = bytes([byte]) * n

    def release(self) -> None:
        """Release the underlying memoryview.

        Required before a ``SharedMemory`` segment can be closed; harmless
        for plain ``bytearray`` regions.
        """
        self._mv.release()

    def __len__(self) -> int:
        return self.size

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SharedRegion(size={self.size})"
