"""Receive-protocol constants and shared-segment constants.

Paper §1: each receiver joining an LNVC conversation declares itself either
FCFS (first-come, first-serve — every message is consumed by exactly one
FCFS receiver) or BROADCAST (every broadcast receiver sees every message).
Both kinds may coexist on one circuit; a single process may not hold both
kinds of receive connection on the same circuit (footnote 3).
"""

from __future__ import annotations

import enum

__all__ = [
    "Protocol",
    "FCFS",
    "BROADCAST",
    "NIL",
    "MAGIC",
    "VERSION",
    "NAME_MAX",
    "GLOBAL_LOCK",
    "ALLOC_LOCK",
    "FIRST_LNVC_LOCK",
    "MsgFlags",
]


class Protocol(enum.IntEnum):
    """Receive protocol declared at :func:`~repro.core.ops.open_receive`."""

    #: First-come, first-serve: each message delivered to exactly one
    #: FCFS receiver (plus every BROADCAST receiver).
    FCFS = 1
    #: Broadcast: every BROADCAST receiver sees every message, in order.
    BROADCAST = 2


#: Convenience aliases so user code can write ``mpf.FCFS``.
FCFS = Protocol.FCFS
BROADCAST = Protocol.BROADCAST

#: Null "pointer" value.  All links inside the shared segment are 32-bit
#: byte offsets; ``NIL`` marks the end of a list, exactly as a NULL pointer
#: does in the paper's C implementation.
NIL = 0xFFFFFFFF

#: Magic word written at offset 0 of a formatted segment ("MPF!" little-endian).
MAGIC = 0x4D504621

#: On-disk/in-memory format version of the segment layout.  v2 added the
#: ring transport pools (control blocks, reader cursors, slot arrays)
#: after the message block pool.
VERSION = 2

#: Maximum LNVC name length in bytes (UTF-8 encoded).
NAME_MAX = 63

#: Lock index protecting the LNVC name table (open/close operations).
GLOBAL_LOCK = 0

#: Lock index protecting the shared free lists (headers, blocks, descriptors).
ALLOC_LOCK = 1

#: Index of the first per-LNVC lock; LNVC slot ``i`` uses lock
#: ``FIRST_LNVC_LOCK + i``.
FIRST_LNVC_LOCK = 2


class MsgFlags(enum.IntFlag):
    """Per-message state bits (``flags`` field of a message header).

    These implement the retirement rule from DESIGN.md §4, which resolves
    the paper's "particularly vexing" ``close_receive`` garbage problem
    (§3.2) with enqueue-time snapshots instead of head-pointer comparisons.
    """

    NONE = 0
    #: At enqueue time, at least one FCFS receiver was connected; the message
    #: must be taken by an FCFS receiver before it may retire.
    FCFS_EXPECTED = 1
    #: An FCFS receiver has consumed (or is consuming) this message.
    FCFS_TAKEN = 2
    #: At enqueue time, at least one receiver of either kind was connected.
    #: Messages enqueued into an empty conversation are held for a future
    #: FCFS joiner (paper §3.2 lost-message discussion).
    HAD_RECEIVERS = 4
    #: Fully consumed; may be unlinked and freed once it reaches the FIFO head.
    RETIRED = 8
