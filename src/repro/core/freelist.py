"""Intrusive free lists over fixed-size slots in the shared region.

Paper §3.1: "During MPF initialization, a free list of linked message
blocks is created in shared memory. ... Like message blocks, LNVC, send,
and receive descriptors are linked into free lists when not in use."

Each pool is a contiguous run of equally sized records.  While a record is
free, its *first* 32-bit word is reused as the link to the next free record
(records carry no meaning when free, so this aliasing is safe — the same
trick the C implementation plays with its ``next`` pointers).  The head of
each free list is itself a u32 cell inside the segment header, so forked
processes see one shared allocator state.

Free-list operations are **not** internally synchronized; callers hold the
segment's allocation lock (``ALLOC_LOCK``), mirroring the paper's
"synchronization variables are initialized for exclusive access to internal
data structures".
"""

from __future__ import annotations

from .protocol import NIL
from .region import SharedRegion

__all__ = ["init_freelist", "fl_alloc", "fl_free", "fl_count"]


def init_freelist(region: SharedRegion, head_off: int, base: int, stride: int, count: int) -> None:
    """Thread ``count`` records of ``stride`` bytes starting at ``base``.

    Leaves the list head (stored at ``head_off``) pointing at ``base`` and
    links the records in address order; an empty pool (``count == 0``)
    leaves the head ``NIL``.
    """
    if count <= 0:
        region.set_u32(head_off, NIL)
        return
    for i in range(count - 1):
        region.set_u32(base + i * stride, base + (i + 1) * stride)
    region.set_u32(base + (count - 1) * stride, NIL)
    region.set_u32(head_off, base)


def fl_alloc(region: SharedRegion, head_off: int) -> int:
    """Pop one record; returns its byte offset, or ``NIL`` if exhausted."""
    head = region.u32(head_off)
    if head == NIL:
        return NIL
    region.set_u32(head_off, region.u32(head))
    return head


def fl_free(region: SharedRegion, head_off: int, off: int) -> None:
    """Push the record at ``off`` back onto the free list."""
    region.set_u32(off, region.u32(head_off))
    region.set_u32(head_off, off)


def fl_count(region: SharedRegion, head_off: int, limit: int = 1 << 32) -> int:
    """Walk the list and count free records (diagnostics and tests only).

    ``limit`` bounds the walk so a corrupted (cyclic) list raises instead
    of hanging.
    """
    n = 0
    off = region.u32(head_off)
    while off != NIL:
        n += 1
        if n > limit:
            raise RuntimeError("free list cycle detected")
        off = region.u32(off)
    return n
