"""Intrusive free lists over fixed-size slots in the shared region.

Paper §3.1: "During MPF initialization, a free list of linked message
blocks is created in shared memory. ... Like message blocks, LNVC, send,
and receive descriptors are linked into free lists when not in use."

Each pool is a contiguous run of equally sized records.  While a record is
free, its *first* 32-bit word is reused as the link to the next free record
(records carry no meaning when free, so this aliasing is safe — the same
trick the C implementation plays with its ``next`` pointers).  The head of
each free list is itself a u32 cell inside the segment header, so forked
processes see one shared allocator state.

Free-list operations are **not** internally synchronized; callers hold the
segment's allocation lock (``ALLOC_LOCK``), mirroring the paper's
"synchronization variables are initialized for exclusive access to internal
data structures".
"""

from __future__ import annotations

import struct
from functools import lru_cache

from .protocol import NIL
from .region import SharedRegion

__all__ = ["init_freelist", "fl_alloc", "fl_free", "fl_count"]

_U32 = struct.Struct("<I")


@lru_cache(maxsize=8)
def _pool_image(base: int, stride: int, count: int) -> bytes:
    """The byte image of a freshly threaded pool (memoized).

    Figure sweeps format one region per measured point with a handful of
    distinct geometries, so the image for a given ``(base, stride,
    count)`` is rebuilt constantly; caching it turns re-formatting into a
    single ``memcpy``.
    """
    pack = _U32.pack
    pad = bytes(stride - 4)
    image = [pack(base + i * stride) + pad for i in range(1, count)]
    image.append(pack(NIL) + pad)
    return b"".join(image)


def init_freelist(region: SharedRegion, head_off: int, base: int, stride: int, count: int) -> None:
    """Thread ``count`` records of ``stride`` bytes starting at ``base``.

    Leaves the list head (stored at ``head_off``) pointing at ``base`` and
    links the records in address order; an empty pool (``count == 0``)
    leaves the head ``NIL``.

    The whole pool is written as one contiguous image (link word plus
    zeroed payload per record) instead of one ``set_u32`` per record:
    free records carry no meaning beyond their link, so blanking the
    payload bytes is harmless, and bulk-writing makes segment formatting
    ~10× cheaper — it was a visible share of short simulations' setup.
    """
    if count <= 0:
        region.set_u32(head_off, NIL)
        return
    region.write(base, _pool_image(base, stride, count))
    region.set_u32(head_off, base)


def fl_alloc(region: SharedRegion, head_off: int, watch=None) -> int:
    """Pop one record; returns its byte offset, or ``NIL`` if exhausted.

    ``watch``, when given, is called as ``watch(head_off, result)`` after
    every pop attempt — including exhausted ones, which return ``NIL``.
    This is the observation point the causal tracer
    (:class:`repro.obs.causal.CausalTracer`) uses to spot free-list
    pressure; the default ``None`` keeps the hot path branch-free beyond
    a single falsy test.
    """
    head = region.u32(head_off)
    if head == NIL:
        if watch is not None:
            watch(head_off, NIL)
        return NIL
    region.set_u32(head_off, region.u32(head))
    if watch is not None:
        watch(head_off, head)
    return head


def fl_free(region: SharedRegion, head_off: int, off: int) -> None:
    """Push the record at ``off`` back onto the free list."""
    region.set_u32(off, region.u32(head_off))
    region.set_u32(head_off, off)


def fl_count(region: SharedRegion, head_off: int, limit: int = 1 << 32) -> int:
    """Walk the list and count free records (diagnostics and tests only).

    ``limit`` bounds the walk so a corrupted (cyclic) list raises instead
    of hanging.
    """
    n = 0
    off = region.u32(head_off)
    while off != NIL:
        n += 1
        if n > limit:
            raise RuntimeError("free list cycle detected")
        off = region.u32(off)
    return n
