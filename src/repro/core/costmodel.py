"""Instruction-count model of the 1987 C implementation.

The primitives in :mod:`repro.core.ops` describe their own cost in
*instructions* of the paper's target CPU (a 10 MHz National Semiconductor
NS32032, roughly 1 MIPS on this kind of pointer-chasing C code).  The
constants below are the per-activity instruction budgets; converting
instructions to seconds is the simulated machine's job
(:class:`repro.machine.cpu.CpuModel`).

Calibration
-----------
The constants were fit to the paper's measured curves (see EXPERIMENTS.md
for the resulting paper-vs-measured comparison):

* The **asymptote** of the base benchmark (Figure 3, ≈22–25 KB/s) pins the
  marginal per-byte cost.  With 10-byte blocks a round trip moves each
  byte twice (user buffer → blocks → user buffer) and manipulates
  ``2·L/10`` blocks, so per-block costs dominate:
  ``blk_alloc + blk_fill + blk_drain + blk_free + 2·10·copy_byte`` ≈ 380
  instructions per block ⇒ ≈38 µs per payload byte ⇒ ≈26 KB/s ceiling.
* The **curvature** of Figure 3 (throughput still rising at 1–2 KB
  messages) pins the fixed per-primitive cost at several thousand
  instructions — the 1987 library call, descriptor search, queue update
  and lock traffic.
* The FCFS plateau of Figure 4 (~45 KB/s at 1024 B) follows from the
  sender-side share of the same constants, and the broadcast ceiling of
  Figure 5 (687,245 B/s at 16×1024 B) from receive copies overlapping.

The numbers are *model parameters*, not measurements of this Python code;
they are deliberately kept in one frozen dataclass so ablations can vary
them (see ``repro.bench.figures`` ablation entries).
"""

from __future__ import annotations

from dataclasses import dataclass, replace

__all__ = ["Costs", "DEFAULT_COSTS", "free_costs"]


@dataclass(frozen=True, slots=True)
class Costs:
    """Instruction budgets for every activity of the MPF implementation."""

    # -- synchronization ---------------------------------------------------
    #: Successful lock acquisition (uninterlocked path).
    lock_acquire: int = 25
    #: Lock release.
    lock_release: int = 15
    #: Executing a wake on a channel (scan + unblock).
    wake: int = 60
    #: Charged to a woken process when it resumes (context switch + recheck).
    waiter_wakeup: int = 120

    # -- fixed per-primitive overhead ---------------------------------------
    #: ``open_send``/``open_receive``: name hash, table search framing,
    #: descriptor setup.
    open_fixed: int = 900
    #: ``close_send``/``close_receive`` framing.
    close_fixed: int = 900
    #: ``message_send`` fixed path (call, validation, queue bookkeeping).
    send_fixed: int = 3500
    #: ``message_receive`` fixed path.
    recv_fixed: int = 3000
    #: ``check_receive`` fixed path.
    check_fixed: int = 250

    # -- per message block --------------------------------------------------
    # The split between the allocation constants (charged *inside* the
    # allocator lock) and the fill/drain constants (charged outside every
    # lock) matters: only the former serialize the whole facility.  A
    # free-list pop is a couple of loads and a store; the expensive part
    # of block handling is the copy loop, which runs unlocked.
    #: Pop one block from the shared free list (under ALLOC_LOCK).
    blk_alloc: int = 15
    #: Push one block back (under ALLOC_LOCK).
    blk_free: int = 10
    #: Loop/linkage overhead to fill one block on send (no lock held).
    blk_fill: int = 155
    #: Loop/linkage overhead to drain one block on receive (no lock held).
    blk_drain: int = 145
    #: Per payload byte moved (each direction).
    copy_byte: int = 2

    # -- ring transport -----------------------------------------------------
    # The ring's fixed costs sit slightly below the free-list path's: no
    # descriptor-list walk on send, no allocator round trip, no per-block
    # loop.  Its *contention* profile is what really differs — a sender
    # takes the circuit lock exactly once per message (claim+fill+commit
    # in one section) and never touches a global lock, so the modeled
    # coherence charges below (one per cache line touched by another CPU
    # since we last owned it) dominate at high fan-in instead of lock
    # convoys.
    #: ``message_send`` fixed path on a ring circuit.
    ring_send_fixed: int = 3000
    #: ``message_receive`` fixed path on a ring circuit.
    ring_recv_fixed: int = 2600
    #: Claiming a write index / snapshotting the reader mask (start of
    #: the sender's single circuit-lock section).
    ring_claim: int = 60
    #: Publishing a committed slot (commit-word store + state bits).
    ring_publish: int = 80
    #: BROADCAST reader taking a committed slot on the lock-free fast
    #: path: commit-word check plus private-cursor bump.  No descriptor
    #: walk and no lock — the per-reader cursor is the whole point of
    #: the mpsoc read side, so this is charged *outside* any section.
    ring_cursor: int = 30
    #: Consuming a slot: pending-bit clear, retire check.
    ring_consume: int = 90
    #: Bus cost of pulling one cache line whose last writer was another
    #: CPU (slot header, bitmap line, or shared control line).
    cacheline_xfer: int = 25

    # -- list manipulation --------------------------------------------------
    #: Per element examined in any linked-list or table walk.
    list_step: int = 12
    #: Linking a message at the FIFO tail + head-pointer updates.
    msg_link: int = 150
    #: Retirement bookkeeping per message at receive completion.
    msg_retire: int = 80
    #: Per message discarded when a circuit is deleted or reaped.
    msg_discard: int = 60

    def scaled(self, factor: float) -> "Costs":
        """Return a copy with every budget multiplied by ``factor``.

        Used by ablation benchmarks to explore a faster or slower
        implementation without touching individual constants.
        """
        kwargs = {
            f: max(0, int(round(getattr(self, f) * factor)))
            for f in self.__dataclass_fields__
        }
        return Costs(**kwargs)


#: The calibrated default model.
DEFAULT_COSTS = Costs()


def free_costs() -> Costs:
    """A zero-cost model: every budget is 0.

    Real runtimes do not price instruction budgets at all, but tests use
    this to assert that op *logic* never depends on cost constants.
    """
    return Costs(**{f: 0 for f in Costs.__dataclass_fields__})


def costs_with(**overrides: int) -> Costs:
    """The default model with selected budgets overridden."""
    return replace(DEFAULT_COSTS, **overrides)


__all__.append("costs_with")
